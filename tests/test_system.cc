/**
 * @file
 * System-level invariants: address interleaving, scheme configuration,
 * persist-order monotonicity across MCs (trace-hook verified), stale
 * loads, warmup resets, context switching with more threads than cores,
 * and cross-scheme sanity orderings.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "compiler/compiler.hh"
#include "core/system.hh"
#include "harness/runner.hh"
#include "workloads/generator.hh"

using namespace lwsp;
using namespace lwsp::core;

namespace {

workloads::WorkloadProfile
tiny(unsigned threads = 1, bool locked = false)
{
    workloads::WorkloadProfile p;
    p.name = "tiny";
    p.suite = "TEST";
    p.threads = threads;
    p.footprintBytes = 64 * 1024;
    p.hotBytes = 8 * 1024;
    p.locality = 0.7;
    p.branchMissRate = 0.0;
    workloads::PhaseSpec ph;
    ph.loads = 2;
    ph.stores = 2;
    ph.alus = 4;
    ph.trip = 64;
    ph.reps = 2;
    ph.pattern = workloads::PhaseSpec::Pattern::Random;
    ph.lockedRmw = locked;
    p.phases.push_back(ph);
    return p;
}

} // namespace

TEST(System, McInterleavingByCacheline)
{
    setLogQuiet(true);
    auto w = workloads::generate(tiny());
    auto prog = compiler::makeUncompiled(std::move(w.module));
    SystemConfig cfg;
    cfg.scheme = Scheme::Baseline;
    cfg.applySchemeDefaults();
    System sys(cfg, prog, 1);
    EXPECT_EQ(sys.mcForAddr(0x0000), 0u);
    EXPECT_EQ(sys.mcForAddr(0x0040), 1u);
    EXPECT_EQ(sys.mcForAddr(0x0080), 0u);
    EXPECT_EQ(sys.mcForAddr(0x0038), 0u);  // same line as 0x0000
}

TEST(System, SchemeDefaultsAreConsistent)
{
    for (Scheme s : {Scheme::Baseline, Scheme::PspIdeal, Scheme::LightWsp,
                     Scheme::NaiveSfence, Scheme::Ppa, Scheme::Capri,
                     Scheme::Cwsp}) {
        SystemConfig cfg;
        cfg.scheme = s;
        cfg.applySchemeDefaults();
        EXPECT_EQ(cfg.core.persistPathEnabled, schemeHasPersistPath(s));
        if (s == Scheme::LightWsp || s == Scheme::NaiveSfence) {
            EXPECT_EQ(cfg.mc.gatingEnabled, s == Scheme::LightWsp);
        }
        if (s == Scheme::PspIdeal) {
            EXPECT_FALSE(cfg.mc.dramCacheEnabled);
        }
        if (s == Scheme::Capri) {
            EXPECT_DOUBLE_EQ(cfg.core.trafficAmplification, 8.0);
        }
    }
}

TEST(System, FlushOrderMonotoneInRegionIdPerMc)
{
    setLogQuiet(true);
    auto w = workloads::generate(tiny(4));
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(w.module));
    SystemConfig cfg;
    cfg.scheme = Scheme::LightWsp;
    cfg.numCores = 4;
    cfg.applySchemeDefaults();
    System sys(cfg, prog, 4);

    // Normal (non-fallback) flushes must never go backwards in region id
    // on any single MC — the WAW-ordering invariant of §IV-B.
    std::vector<RegionId> last(2, 0);
    bool violated = false;
    for (McId m = 0; m < 2; ++m) {
        sys.mcAt(m).setFlushTraceHook(
            [&, m](int kind, Addr, std::uint64_t, RegionId region) {
                if (kind == 0) {  // normal flush
                    if (region < last[m])
                        violated = true;
                    last[m] = std::max(last[m], region);
                }
            });
    }
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    EXPECT_FALSE(violated);
    EXPECT_GT(r.wpqFlushedEntries, 0u);
}

TEST(System, StaleLoadsOnlyWithoutSnooping)
{
    setLogQuiet(true);
    auto run_policy = [&](mem::VictimPolicy v) {
        auto w = workloads::generate(tiny(4));
        compiler::LightWspCompiler comp;
        auto prog = comp.compile(std::move(w.module));
        SystemConfig cfg;
        cfg.scheme = Scheme::LightWsp;
        cfg.numCores = 4;
        cfg.applySchemeDefaults();
        cfg.victimPolicy = v;
        System sys(cfg, prog, 4);
        auto r = sys.run();
        EXPECT_TRUE(r.completed);
        return r;
    };
    auto with_snoop = run_policy(mem::VictimPolicy::Full);
    EXPECT_EQ(with_snoop.staleLoads, 0u);
    auto without = run_policy(mem::VictimPolicy::None);
    // Stale loads may or may not occur on this small run, but the
    // snooping configuration must never report any.
    (void)without;
}

TEST(System, WarmupResetsStatistics)
{
    setLogQuiet(true);
    auto mk = [] {
        auto w = workloads::generate(tiny());
        compiler::LightWspCompiler comp;
        return comp.compile(std::move(w.module));
    };
    auto prog_cold = mk();
    SystemConfig cold;
    cold.scheme = Scheme::LightWsp;
    cold.applySchemeDefaults();
    System sys_cold(cold, prog_cold, 1);
    auto r_cold = sys_cold.run();

    auto prog_warm = mk();
    SystemConfig warm = cold;
    warm.warmupInsts = r_cold.instsRetired / 2;
    System sys_warm(warm, prog_warm, 1);
    auto r_warm = sys_warm.run();

    EXPECT_LT(r_warm.instsRetired, r_cold.instsRetired);
    EXPECT_LT(r_warm.cycles, r_cold.cycles);
    EXPECT_TRUE(r_warm.completed);
}

TEST(System, MoreThreadsThanCoresContextSwitch)
{
    setLogQuiet(true);
    auto w = workloads::generate(tiny(8, true));
    auto lock_addrs = w.lockAddrs;
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(w.module));
    SystemConfig cfg;
    cfg.scheme = Scheme::LightWsp;
    cfg.numCores = 2;  // 8 threads on 2 cores
    cfg.ctxQuantum = 2000;
    cfg.applySchemeDefaults();
    System sys(cfg, prog, 8);
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    // All threads finished and every store persisted.
    auto diffs = sys.pmImage().diff(sys.execImage());
    EXPECT_TRUE(diffs.empty());
}

TEST(System, PmNeverAheadOfExecDuringRun)
{
    // Sample mid-run: any value in PM must be one the execution image
    // has already produced for that address (redo semantics: PM holds a
    // prefix, never speculation beyond execution). We check the final
    // states of a staged run instead of every cycle for speed.
    setLogQuiet(true);
    auto w = workloads::generate(tiny());
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(w.module));
    SystemConfig cfg;
    cfg.scheme = Scheme::LightWsp;
    cfg.applySchemeDefaults();
    System sys(cfg, prog, 1);
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(sys.pmImage().diff(sys.execImage()).empty());
}

TEST(System, SlowdownOrderingAcrossSchemes)
{
    setLogQuiet(true);
    harness::Runner runner;
    harness::RunSpec spec;
    spec.workload = "lbm";

    spec.scheme = Scheme::LightWsp;
    double lwsp = runner.slowdownVsBaseline(spec);
    spec.scheme = Scheme::Capri;
    double capri = runner.slowdownVsBaseline(spec);
    spec.scheme = Scheme::NaiveSfence;
    double sfence = runner.slowdownVsBaseline(spec);
    spec.scheme = Scheme::PspIdeal;
    double psp = runner.slowdownVsBaseline(spec);

    // The paper's qualitative ordering for a memory-intensive app.
    EXPECT_GT(lwsp, 1.0);
    EXPECT_LT(lwsp, 1.5);
    EXPECT_GT(capri, lwsp);
    EXPECT_GT(sfence, lwsp);
    EXPECT_GT(psp, 1.5);  // no DRAM cache hurts badly here
}

TEST(System, DumpStatsEmitsEveryComponent)
{
    setLogQuiet(true);
    auto w = workloads::generate(tiny());
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(w.module));
    SystemConfig cfg;
    cfg.scheme = Scheme::LightWsp;
    cfg.applySchemeDefaults();
    System sys(cfg, prog, 1);
    sys.run();
    std::ostringstream os;
    sys.dumpStats(os);
    std::string s = os.str();
    EXPECT_NE(s.find("core0.instsRetired"), std::string::npos);
    EXPECT_NE(s.find("core0.l1d.hits"), std::string::npos);
    EXPECT_NE(s.find("l2.misses"), std::string::npos);
    EXPECT_NE(s.find("mc0.flushedEntries"), std::string::npos);
    EXPECT_NE(s.find("mc1.flushId"), std::string::npos);
    EXPECT_NE(s.find("noc.boundariesBroadcast"), std::string::npos);
}

TEST(System, WpqSizeSensitivityDirection)
{
    setLogQuiet(true);
    harness::Runner runner;
    harness::RunSpec big;
    big.workload = "rb";
    big.scheme = Scheme::LightWsp;
    big.wpqEntries = 256;
    harness::RunSpec small = big;
    small.wpqEntries = 64;
    // Larger WPQ never hurts (paper Fig. 11).
    EXPECT_LE(runner.slowdownVsBaseline(big),
              runner.slowdownVsBaseline(small) * 1.05);
}
