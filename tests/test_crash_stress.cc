/**
 * @file
 * Adversarial crash-recovery stress: tiny WPQs force the deadlock
 * fallback (undo-logged overflow, §IV-D) onto the hot path, and the
 * strict flush-ACK commit mode is swept as well. Recovery must still
 * reproduce the golden state from every crash point.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "compiler/compiler.hh"
#include "core/system.hh"
#include "harness/sweep.hh"
#include "workloads/generator.hh"

using namespace lwsp;

namespace {

workloads::Workload
stressWorkload(unsigned threads)
{
    workloads::WorkloadProfile p;
    p.name = "stress";
    p.suite = "TEST";
    p.threads = threads;
    p.footprintBytes = 32 * 1024;
    p.hotBytes = 8 * 1024;
    p.locality = 0.5;
    p.branchMissRate = 0.0;
    workloads::PhaseSpec ph;
    ph.pattern = workloads::PhaseSpec::Pattern::Random;
    ph.loads = 1;
    ph.stores = 3;  // store-dense: WPQ pressure
    ph.alus = 2;
    ph.trip = 64;
    ph.reps = 2;
    ph.lockedRmw = threads > 1;
    p.phases.push_back(ph);
    return workloads::generate(p);
}

void
crashSweep(core::SystemConfig cfg, unsigned threads, unsigned threshold,
           bool expect_fallback)
{
    setLogQuiet(true);
    auto w = stressWorkload(threads);
    auto lock_addrs = w.lockAddrs;
    std::size_t footprint = w.profile.footprintBytes;

    compiler::CompilerConfig ccfg;
    ccfg.storeThreshold = threshold;
    compiler::LightWspCompiler comp(ccfg);
    auto prog = comp.compile(std::move(w.module));

    core::System golden(cfg, prog, threads);
    auto gr = golden.run();
    ASSERT_TRUE(gr.completed);
    if (expect_fallback) {
        EXPECT_GT(gr.wpqFallbackFlushes + gr.wpqOverflowEvents, 0u)
            << "stress config did not exercise the fallback";
    }

    // Each crash fraction is an independent (victim, recovery) pair, so
    // they fan out across worker threads. gtest assertions are not
    // thread-safe; workers record failures as strings checked after the
    // join.
    const std::vector<double> fracs = {0.05, 0.2,  0.35, 0.5,
                                       0.65, 0.8,  0.95};
    std::vector<std::string> errors(fracs.size());
    harness::parallelFor(0, fracs.size(), [&](std::size_t i) {
        double f = fracs[i];
        core::System victim(cfg, prog, threads);
        auto vr =
            victim.runWithPowerFailure(static_cast<Tick>(f * gr.cycles));
        if (vr.completed)
            return;
        auto rec = core::System::recover(cfg, prog, threads,
                                         victim.pmImage(), lock_addrs);
        auto rr = rec->run();
        if (!rr.completed) {
            errors[i] = "recovery stuck at f=" + std::to_string(f);
            return;
        }

        std::ostringstream err;
        Addr lo = workloads::Workload::heapBase;
        Addr hi = lo + static_cast<Addr>(threads) * footprint;
        auto heap = rec->pmImage().diffInRange(golden.pmImage(), lo, hi);
        if (!heap.empty())
            err << "heap diff at f=" << f << " addr=0x" << std::hex
                << heap[0] << std::dec << '\n';
        Addr sh = workloads::Workload::sharedBase;
        if (!rec->pmImage()
                 .diffInRange(golden.pmImage(), sh, sh + 4096)
                 .empty())
            err << "shared diff at f=" << f << '\n';
        errors[i] = err.str();
    });
    for (std::size_t i = 0; i < fracs.size(); ++i)
        EXPECT_TRUE(errors[i].empty()) << errors[i];
}

} // namespace

TEST(CrashStress, TinyWpqSingleThread)
{
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 1;
    cfg.mc.wpqEntries = 8;
    cfg.core.febEntries = 8;
    cfg.maxCycles = 50'000'000;
    cfg.applySchemeDefaults();
    crashSweep(cfg, 1, /*threshold=*/4, /*expect_fallback=*/false);
}

TEST(CrashStress, TinyWpqFourThreadsForcesFallback)
{
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 4;
    cfg.mc.wpqEntries = 8;
    cfg.core.febEntries = 8;
    cfg.maxCycles = 50'000'000;
    cfg.applySchemeDefaults();
    crashSweep(cfg, 4, /*threshold=*/4, /*expect_fallback=*/true);
}

TEST(CrashStress, StrictFlushAckMode)
{
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 4;
    cfg.mc.strictFlushAcks = true;
    cfg.maxCycles = 50'000'000;
    cfg.applySchemeDefaults();
    cfg.mc.strictFlushAcks = true;
    crashSweep(cfg, 4, /*threshold=*/16, /*expect_fallback=*/false);
}

TEST(CrashStress, SingleMcConfiguration)
{
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 4;
    cfg.numMcs = 1;
    cfg.maxCycles = 50'000'000;
    cfg.applySchemeDefaults();
    crashSweep(cfg, 4, /*threshold=*/16, /*expect_fallback=*/false);
}

TEST(CrashStress, FourMcConfiguration)
{
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 4;
    cfg.numMcs = 4;
    cfg.maxCycles = 50'000'000;
    cfg.applySchemeDefaults();
    crashSweep(cfg, 4, /*threshold=*/16, /*expect_fallback=*/false);
}

TEST(CrashStress, OversubscribedThreads)
{
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 2;  // 6 threads on 2 cores: context switching
    cfg.ctxQuantum = 1500;
    cfg.maxCycles = 50'000'000;
    cfg.applySchemeDefaults();
    crashSweep(cfg, 6, /*threshold=*/16, /*expect_fallback=*/false);
}
