/**
 * @file
 * Adversarial crash-recovery stress: tiny WPQs force the deadlock
 * fallback (undo-logged overflow, §IV-D) onto the hot path, and the
 * strict flush-ACK commit mode is swept as well. Recovery must still
 * reproduce the golden state from every crash point.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "compiler/compiler.hh"
#include "core/system.hh"
#include "harness/sweep.hh"
#include "workloads/generator.hh"

using namespace lwsp;

namespace {

/**
 * Stress seed from the LWSP_TEST_SEED environment variable (0 = the
 * fixed default workload). Every failure message carries the active
 * seed, so a CI hit reproduces with
 * `LWSP_TEST_SEED=<n> ./test_crash_stress`.
 */
std::uint64_t
testSeed()
{
    const char *env = std::getenv("LWSP_TEST_SEED");
    return env ? std::strtoull(env, nullptr, 10) : 0;
}

workloads::Workload
stressWorkload(unsigned threads)
{
    workloads::WorkloadProfile p;
    p.name = "stress";
    p.suite = "TEST";
    p.threads = threads;
    p.footprintBytes = 32 * 1024;
    p.hotBytes = 8 * 1024;
    p.locality = 0.5;
    p.branchMissRate = 0.0;
    workloads::PhaseSpec ph;
    ph.pattern = workloads::PhaseSpec::Pattern::Random;
    ph.loads = 1;
    ph.stores = 3;  // store-dense: WPQ pressure
    ph.alus = 2;
    ph.trip = 64;
    ph.reps = 2;
    ph.lockedRmw = threads > 1;

    // A nonzero seed perturbs the workload shape while keeping the
    // store-dense character (and hence the WPQ pressure) intact.
    if (std::uint64_t seed = testSeed()) {
        Rng rng(seed ^ 0x73747265737373ull /* "stresss" */);
        p.footprintBytes = (16u << rng.below(2)) * 1024;
        p.hotBytes = p.footprintBytes / 4;
        p.locality = 0.25 + 0.125 * rng.below(5);
        ph.loads = 1 + static_cast<unsigned>(rng.below(2));
        ph.stores = 2 + static_cast<unsigned>(rng.below(3));
        ph.trip = 32 + 16 * static_cast<unsigned>(rng.below(5));
        static const workloads::PhaseSpec::Pattern pats[] = {
            workloads::PhaseSpec::Pattern::Random,
            workloads::PhaseSpec::Pattern::Sequential,
            workloads::PhaseSpec::Pattern::Random,
        };
        ph.pattern = pats[rng.below(3)];
    }
    p.phases.push_back(ph);
    return workloads::generate(p);
}

void
crashSweep(core::SystemConfig cfg, unsigned threads, unsigned threshold,
           bool expect_fallback)
{
    SCOPED_TRACE("LWSP_TEST_SEED=" + std::to_string(testSeed()));
    setLogQuiet(true);
    cfg.oraclesEnabled = true;  // LRPO invariants live on every run
    auto w = stressWorkload(threads);
    auto lock_addrs = w.lockAddrs;
    std::size_t footprint = w.profile.footprintBytes;

    compiler::CompilerConfig ccfg;
    ccfg.storeThreshold = threshold;
    compiler::LightWspCompiler comp(ccfg);
    auto prog = comp.compile(std::move(w.module));

    core::System golden(cfg, prog, threads);
    auto gr = golden.run();
    ASSERT_TRUE(gr.completed);
    ASSERT_TRUE(golden.oracle() != nullptr);
    EXPECT_TRUE(golden.oracle()->ok())
        << golden.oracle()->firstViolation();
    if (expect_fallback) {
        EXPECT_GT(gr.wpqFallbackFlushes + gr.wpqOverflowEvents, 0u)
            << "stress config did not exercise the fallback";
    }

    // Each crash fraction is an independent (victim, recovery) pair, so
    // they fan out across worker threads. gtest assertions are not
    // thread-safe; workers record failures as strings checked after the
    // join.
    const std::vector<double> fracs = {0.05, 0.2,  0.35, 0.5,
                                       0.65, 0.8,  0.95};
    std::vector<std::string> errors(fracs.size());
    harness::parallelFor(0, fracs.size(), [&](std::size_t i) {
        double f = fracs[i];
        core::System victim(cfg, prog, threads);
        auto vr =
            victim.runWithPowerFailure(static_cast<Tick>(f * gr.cycles));
        if (vr.completed)
            return;
        if (victim.oracle() && !victim.oracle()->ok()) {
            errors[i] = "victim oracle at f=" + std::to_string(f) +
                        ": " + victim.oracle()->firstViolation();
            return;
        }
        auto rec = core::System::recover(cfg, prog, threads,
                                         victim.pmImage(), lock_addrs);
        auto rr = rec->run();
        if (!rr.completed) {
            errors[i] = "recovery stuck at f=" + std::to_string(f);
            return;
        }
        if (rec->oracle() && !rec->oracle()->ok()) {
            errors[i] = "recovery oracle at f=" + std::to_string(f) +
                        ": " + rec->oracle()->firstViolation();
            return;
        }

        std::ostringstream err;
        Addr lo = workloads::Workload::heapBase;
        Addr hi = lo + static_cast<Addr>(threads) * footprint;
        auto heap = rec->pmImage().diffInRange(golden.pmImage(), lo, hi);
        if (!heap.empty())
            err << "heap diff at f=" << f << " addr=0x" << std::hex
                << heap[0] << std::dec << '\n';
        Addr sh = workloads::Workload::sharedBase;
        if (!rec->pmImage()
                 .diffInRange(golden.pmImage(), sh, sh + 4096)
                 .empty())
            err << "shared diff at f=" << f << '\n';
        errors[i] = err.str();
    });
    for (std::size_t i = 0; i < fracs.size(); ++i)
        EXPECT_TRUE(errors[i].empty()) << errors[i];
}

} // namespace

TEST(CrashStress, TinyWpqSingleThread)
{
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 1;
    cfg.mc.wpqEntries = 8;
    cfg.core.febEntries = 8;
    cfg.maxCycles = 50'000'000;
    cfg.applySchemeDefaults();
    crashSweep(cfg, 1, /*threshold=*/4, /*expect_fallback=*/false);
}

TEST(CrashStress, TinyWpqFourThreadsForcesFallback)
{
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 4;
    cfg.mc.wpqEntries = 8;
    cfg.core.febEntries = 8;
    cfg.maxCycles = 50'000'000;
    cfg.applySchemeDefaults();
    crashSweep(cfg, 4, /*threshold=*/4, /*expect_fallback=*/true);
}

TEST(CrashStress, StrictFlushAckMode)
{
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 4;
    cfg.mc.strictFlushAcks = true;
    cfg.maxCycles = 50'000'000;
    cfg.applySchemeDefaults();
    cfg.mc.strictFlushAcks = true;
    crashSweep(cfg, 4, /*threshold=*/16, /*expect_fallback=*/false);
}

TEST(CrashStress, SingleMcConfiguration)
{
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 4;
    cfg.numMcs = 1;
    cfg.maxCycles = 50'000'000;
    cfg.applySchemeDefaults();
    crashSweep(cfg, 4, /*threshold=*/16, /*expect_fallback=*/false);
}

TEST(CrashStress, FourMcConfiguration)
{
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 4;
    cfg.numMcs = 4;
    cfg.maxCycles = 50'000'000;
    cfg.applySchemeDefaults();
    crashSweep(cfg, 4, /*threshold=*/16, /*expect_fallback=*/false);
}

TEST(CrashStress, OversubscribedThreads)
{
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 2;  // 6 threads on 2 cores: context switching
    cfg.ctxQuantum = 1500;
    cfg.maxCycles = 50'000'000;
    cfg.applySchemeDefaults();
    crashSweep(cfg, 6, /*threshold=*/16, /*expect_fallback=*/false);
}
