/**
 * @file
 * Hardware fault-injection subsystem tests.
 *
 * Covers the three contracts the fault layer makes:
 *
 *  1. Zero cost when off: with the layer disabled — and with it armed
 *     but every axis at its default — cycles, stats and event traces
 *     are bit-identical to the unhardened machine; the hardened
 *     checkpoint format changes persisted word *values* only, never
 *     timing.
 *  2. Hardening works: lost/pinned-lost broadcasts converge through
 *     the ack/retry protocol; checkpoint-area WPQ damage degrades to
 *     the previous persisted epoch; an MC stall is absorbed by the
 *     drain; a double failure during the retry window still recovers.
 *  3. Never silent: poisoned PC slots, unmaskable poisoned register
 *     slots and silent (ECC-escaping) register flips are *detected* —
 *     classified DetectedUnrecoverable — and every recovery that does
 *     complete reproduces the golden application state exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "compiler/compiler.hh"
#include "core/system.hh"
#include "fault/fault.hh"
#include "fuzz/campaign.hh"
#include "noc/noc.hh"
#include "workloads/generator.hh"

using namespace lwsp;

namespace {

workloads::WorkloadProfile
tinyProfile(unsigned threads)
{
    workloads::WorkloadProfile p;
    p.name = "tiny-fault";
    p.suite = "TEST";
    p.threads = threads;
    p.footprintBytes = 32 * 1024;
    p.hotBytes = 8 * 1024;
    p.locality = 0.7;
    p.branchMissRate = 0.0;
    workloads::PhaseSpec ph;
    ph.loads = 2;
    ph.stores = 2;
    ph.alus = 4;
    ph.trip = 64;
    ph.reps = 2;
    ph.pattern = workloads::PhaseSpec::Pattern::Random;
    p.phases.push_back(ph);
    return p;
}

core::SystemConfig
testConfig(unsigned threads)
{
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = std::min(8u, threads);
    cfg.maxCycles = 30'000'000;
    cfg.oraclesEnabled = true;
    cfg.applySchemeDefaults();
    return cfg;
}

struct Built
{
    compiler::CompiledProgram prog;
    std::vector<Addr> lockAddrs;
    std::size_t footprint = 0;
    unsigned threads = 0;
};

Built
build(unsigned threads)
{
    setLogQuiet(true);
    auto prof = tinyProfile(threads);
    auto w = workloads::generate(prof);
    Built b;
    b.lockAddrs = w.lockAddrs;
    b.footprint = prof.footprintBytes;
    b.threads = threads;
    compiler::LightWspCompiler comp;
    b.prog = comp.compile(std::move(w.module));
    return b;
}

void
expectAppStateEqual(const mem::MemImage &got, const mem::MemImage &want,
                    const Built &b, const std::string &what)
{
    Addr lo = workloads::Workload::heapBase;
    Addr hi = lo + static_cast<Addr>(b.threads) * b.footprint;
    auto diffs = got.diffInRange(want, lo, hi);
    EXPECT_TRUE(diffs.empty())
        << what << ": heap differs at " << diffs.size() << " words";
    Addr sh = workloads::Workload::sharedBase;
    EXPECT_TRUE(got.diffInRange(want, sh, sh + 4096).empty())
        << what << ": shared page differs";
}

void
expectOracleClean(const core::System &sys, const std::string &what)
{
    ASSERT_NE(sys.oracle(), nullptr) << what;
    EXPECT_TRUE(sys.oracle()->ok())
        << what << ": " << sys.oracle()->firstViolation();
}

/** Mid-run boundary-broadcast ticks mined from a golden run's oracle. */
std::vector<Tick>
boundaryTicks(const Built &b, const core::SystemConfig &cfg)
{
    core::System golden(cfg, b.prog, b.threads);
    golden.run();
    const auto *o = golden.oracle();
    return o ? o->boundaryTicks() : std::vector<Tick>{};
}

} // namespace

// ---- Spec round-trips ------------------------------------------------------

TEST(FaultSpec, ToStringParseRoundTripsEveryAxis)
{
    const char *specs[] = {
        "seed=7,loss=150",
        "seed=7,delay=200,delayc=240,dup=100",
        "seed=7,losspin=1500",
        "seed=7,flip=1,tear=1",
        "seed=7,ckpt=1,stall=2",
        "seed=7,poison=2,silent=1",
        "loss=1000",
        "",
    };
    for (const char *s : specs) {
        fault::FaultConfig fc;
        std::string err;
        ASSERT_TRUE(fault::FaultConfig::parse(s, fc, err))
            << s << ": " << err;
        EXPECT_EQ(fc.toString(), s);
        // Parse the canonical form again: fixpoint.
        fault::FaultConfig fc2;
        ASSERT_TRUE(fault::FaultConfig::parse(fc.toString(), fc2, err));
        EXPECT_EQ(fc2.toString(), fc.toString());
    }
    EXPECT_FALSE(fault::FaultConfig().anyArmed());
    fault::FaultConfig armed;
    armed.wpqBitFlip = true;
    EXPECT_TRUE(armed.anyArmed());
}

TEST(FaultSpec, ParseRejectsGarbage)
{
    fault::FaultConfig fc;
    std::string err;
    for (const char *bad :
         {"loss", "loss=", "loss=abc", "loss=1001", "dup=2000",
          "unknown=1", "=5", "loss=100,,ckpt"}) {
        EXPECT_FALSE(fault::FaultConfig::parse(bad, fc, err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(FaultSpec, CaseSpecCarriesFaultsThroughReplayString)
{
    fuzz::CaseSpec spec;
    spec.seed = 42;
    spec.mode = fuzz::CrashMode::Single;
    spec.crashAt = 1234;
    spec.faults.seed = 42;
    spec.faults.bcastLossPm = 150;
    spec.faults.pmPoisonWords = 2;

    std::string s = spec.toString();
    EXPECT_NE(s.find("faults=seed=42,loss=150,poison=2"),
              std::string::npos)
        << s;

    fuzz::CaseSpec back;
    std::string err;
    ASSERT_TRUE(fuzz::CaseSpec::parse(s, back, err)) << err;
    EXPECT_EQ(back.toString(), s);
    EXPECT_EQ(back.faults.bcastLossPm, 150u);
    EXPECT_EQ(back.faults.pmPoisonWords, 2u);
    EXPECT_EQ(back.faults.seed, 42u);
}

// ---- Zero-overhead A/B -----------------------------------------------------

TEST(FaultAB, ArmedButInertIsBitIdentical)
{
    Built b = build(4);
    auto run = [&](bool enabled, bool hardened) {
        core::SystemConfig cfg = testConfig(4);
        cfg.traceEnabled = true;
        cfg.faults.enabled = enabled;
        cfg.faults.hardenedCkpt = hardened;
        core::System sys(cfg, b.prog, b.threads);
        auto r = sys.run();
        return std::make_tuple(r, sys.traceSink()->snapshot(),
                               mem::MemImage(sys.execImage()));
    };

    auto [r_off, ev_off, img_off] = run(false, false);
    auto [r_inert, ev_inert, img_inert] = run(true, false);
    auto [r_hard, ev_hard, img_hard] = run(true, true);

    // Armed-but-inert: everything identical, trace included.
    EXPECT_EQ(r_inert.cycles, r_off.cycles);
    EXPECT_EQ(r_inert.instsRetired, r_off.instsRetired);
    EXPECT_EQ(r_inert.boundaries, r_off.boundaries);
    EXPECT_EQ(r_inert.wpqFlushedEntries, r_off.wpqFlushedEntries);
    ASSERT_EQ(ev_inert.size(), ev_off.size());
    for (std::size_t i = 0; i < ev_off.size(); ++i) {
        const auto &a = ev_off[i];
        const auto &c = ev_inert[i];
        ASSERT_TRUE(a.tick == c.tick && a.type == c.type &&
                    a.unit == c.unit && a.thread == c.thread &&
                    a.region == c.region && a.addr == c.addr &&
                    a.value == c.value && a.aux == c.aux)
            << "event " << i << " differs";
    }
    EXPECT_TRUE(img_inert.diffInRange(img_off, 0, ~0ull).empty());

    // Hardened checkpoints: timing untouched; only PC-slot word values
    // (checksum in the upper half) may differ.
    EXPECT_EQ(r_hard.cycles, r_off.cycles);
    EXPECT_EQ(r_hard.instsRetired, r_off.instsRetired);
    EXPECT_EQ(r_hard.boundaries, r_off.boundaries);
    ASSERT_EQ(ev_hard.size(), ev_off.size());
    for (std::size_t i = 0; i < ev_off.size(); ++i) {
        EXPECT_EQ(ev_hard[i].tick, ev_off[i].tick) << "event " << i;
        EXPECT_EQ(ev_hard[i].type, ev_off[i].type) << "event " << i;
    }
    Addr heap = workloads::Workload::heapBase;
    EXPECT_TRUE(img_hard
                    .diffInRange(img_off, heap,
                                 heap + static_cast<Addr>(b.threads) *
                                            b.footprint)
                    .empty());
}

// ---- Broadcast loss / retry ------------------------------------------------

TEST(FaultNoc, LostBroadcastsRetryAndConverge)
{
    Built b = build(4);
    core::SystemConfig cfg = testConfig(4);
    core::System clean(cfg, b.prog, b.threads);
    auto cr = clean.run();
    ASSERT_TRUE(cr.completed);

    core::SystemConfig fcfg = cfg;
    fcfg.traceEnabled = true;
    fcfg.faults.enabled = true;
    fcfg.faults.seed = 7;
    fcfg.faults.bcastLossPm = 300;
    core::System faulty(fcfg, b.prog, b.threads);
    auto fr = faulty.run();

    ASSERT_TRUE(fr.completed) << "lossy run must still converge";
    const auto *inj = faulty.faultInjector();
    ASSERT_NE(inj, nullptr);
    EXPECT_GT(inj->bcastDrops, 0u);
    EXPECT_GT(inj->bcastRetries, 0u);
    EXPECT_EQ(faulty.nocNet().bcastRetries(), inj->bcastRetries);
    expectOracleClean(faulty, "lossy run");
    expectAppStateEqual(faulty.execImage(), clean.execImage(), b,
                        "lossy run");

    // Retries are visible in the trace (Perfetto visualisation hook).
    auto events = faulty.traceSink()->snapshot();
    EXPECT_TRUE(std::any_of(events.begin(), events.end(),
                            [](const trace::Event &e) {
                                return e.type ==
                                       trace::EventType::BcastRetry;
                            }));
}

namespace {

/** Bare McEndpoint that records every delivered message. */
struct CapturingEndpoint : mem::McEndpoint
{
    std::vector<mem::McMsg> got;
    void receive(const mem::McMsg &msg, Tick) override
    {
        got.push_back(msg);
    }
};

} // namespace

// Audit of the retry path's message rebuild: a copy re-sent after the
// timeout must be field-for-field identical to the original broadcast —
// same type, region, sender and bcastId. The router stores the original
// McMsg in its pending entry and re-sends it verbatim; this pins that
// contract on both fabrics (a reconstruction bug would surface as a
// mismatched field at whichever MC only ever saw the retried copy).
TEST(FaultNoc, RetriedCopyEqualsOriginalFieldForField)
{
    for (bool tree : {false, true}) {
        noc::TopologyConfig topo;
        if (tree) {
            topo.kind = noc::TopologyConfig::Kind::Tree;
            topo.radix = 2;
        }
        constexpr unsigned kMcs = 4;
        constexpr Tick kHop = 5;
        noc::Noc net(kMcs, kHop, topo);
        fault::FaultConfig fc;
        fc.enabled = true;
        fc.seed = 1;
        fc.bcastLossPinTick = 0;  // drop every copy of the broadcast
        fault::FaultInjector inj(fc, 1);
        net.setFaultInjector(&inj);

        std::vector<CapturingEndpoint> eps(kMcs);
        std::vector<mem::McEndpoint *> ptrs;
        for (auto &e : eps)
            ptrs.push_back(&e);
        net.attach(ptrs);

        const RegionId region = 42;
        net.broadcastBoundary(region, 0);
        EXPECT_EQ(inj.bcastDrops, tree ? 2u : kMcs)
            << "pinned drop must kill the initial descent per link";

        for (Tick t = 1; t <= 4096; ++t)
            net.tick(t);

        EXPECT_GT(net.bcastRetries(), 0u);
        for (unsigned mc = 0; mc < kMcs; ++mc) {
            ASSERT_EQ(eps[mc].got.size(), 1u)
                << (tree ? "tree" : "flat") << " MC " << mc
                << ": want exactly one delivery";
            const mem::McMsg &m = eps[mc].got[0];
            EXPECT_EQ(m.type, mem::McMsg::Type::BdryArrival);
            EXPECT_EQ(m.region, region);
            EXPECT_EQ(m.from, McId(0));
            EXPECT_EQ(m.bcastId, 1u)
                << "retried copy must carry the original bcastId";
        }
    }
}

TEST(FaultNoc, PinnedLossConvergesViaRetry)
{
    Built b = build(2);
    core::SystemConfig cfg = testConfig(2);
    core::System clean(cfg, b.prog, b.threads);
    auto cr = clean.run();
    ASSERT_TRUE(cr.completed);

    core::SystemConfig fcfg = cfg;
    fcfg.faults.enabled = true;
    fcfg.faults.seed = 3;
    fcfg.faults.bcastLossPinTick = cr.cycles / 2;
    core::System faulty(fcfg, b.prog, b.threads);
    auto fr = faulty.run();

    ASSERT_TRUE(fr.completed);
    const auto *inj = faulty.faultInjector();
    EXPECT_GT(inj->bcastDrops, 0u) << "pin should have fired";
    EXPECT_GT(inj->bcastRetries, 0u);
    expectOracleClean(faulty, "pinned-loss run");
    expectAppStateEqual(faulty.execImage(), clean.execImage(), b,
                        "pinned-loss run");
}

// ---- Crash-time hardware damage --------------------------------------------

TEST(FaultCrash, CkptDamageFallsBackOneEpochAndConverges)
{
    Built b = build(4);
    core::SystemConfig cfg = testConfig(4);
    core::System golden(cfg, b.prog, b.threads);
    auto gr = golden.run();
    ASSERT_TRUE(gr.completed);
    auto ticks = boundaryTicks(b, cfg);
    ASSERT_FALSE(ticks.empty());

    core::SystemConfig rcfg = cfg;
    rcfg.faults.hardenedCkpt = true;

    bool damaged_once = false;
    unsigned degraded = 0;
    // Crash right after mid-run boundary broadcasts so the PC-store of
    // the just-ended region is likely still queued in a WPQ.
    for (std::size_t i = ticks.size() / 4;
         i < ticks.size() && degraded < 2; i += ticks.size() / 8 + 1) {
        core::SystemConfig vcfg = cfg;
        vcfg.faults.enabled = true;
        vcfg.faults.hardenedCkpt = true;
        vcfg.faults.seed = 11 + static_cast<std::uint64_t>(i);
        vcfg.faults.ckptEntryDamage = true;
        core::System victim(vcfg, b.prog, b.threads);
        auto vr = victim.runWithPowerFailure(ticks[i] + 1);
        if (vr.completed)
            continue;
        expectOracleClean(victim, "ckpt-damage victim");
        const auto &rep = victim.crashReport();
        auto res = core::System::recoverChecked(rcfg, b.prog, b.threads,
                                                victim.pmImage(),
                                                b.lockAddrs, &rep);
        if (rep.wpqDamaged > 0) {
            damaged_once = true;
            if (rep.truncationHazard) {
                EXPECT_EQ(res.outcome,
                          core::RecoveryOutcome::DetectedUnrecoverable);
                continue;
            }
            ASSERT_NE(rep.corruptBarrier, invalidRegion);
            EXPECT_EQ(res.outcome,
                      core::RecoveryOutcome::RecoveredDegraded);
        }
        if (res.outcome == core::RecoveryOutcome::DetectedUnrecoverable)
            continue;
        if (res.outcome == core::RecoveryOutcome::RecoveredDegraded)
            ++degraded;
        auto rr = res.sys->run();
        ASSERT_TRUE(rr.completed);
        expectOracleClean(*res.sys, "ckpt-damage recovery");
        expectAppStateEqual(res.sys->pmImage(), golden.pmImage(), b,
                            "ckpt-damage recovery");
    }
    EXPECT_TRUE(damaged_once)
        << "no crash point caught a checkpoint entry in a WPQ";
    EXPECT_GT(degraded, 0u)
        << "expected at least one fall-back to an older epoch";
}

TEST(FaultCrash, McStallIsAbsorbedByTheDrain)
{
    Built b = build(2);
    core::SystemConfig cfg = testConfig(2);
    core::System golden(cfg, b.prog, b.threads);
    auto gr = golden.run();
    ASSERT_TRUE(gr.completed);

    core::SystemConfig vcfg = cfg;
    vcfg.faults.enabled = true;
    vcfg.faults.seed = 5;
    vcfg.faults.mcStallIters = 3;
    core::System victim(vcfg, b.prog, b.threads);
    auto vr = victim.runWithPowerFailure(gr.cycles / 2);
    ASSERT_FALSE(vr.completed);
    ASSERT_TRUE(victim.crashed());
    EXPECT_EQ(victim.crashReport().stallsInjected, 3u);
    expectOracleClean(victim, "stalled victim");

    auto res = core::System::recoverChecked(cfg, b.prog, b.threads,
                                            victim.pmImage(),
                                            b.lockAddrs,
                                            &victim.crashReport());
    ASSERT_EQ(res.outcome, core::RecoveryOutcome::Recovered)
        << res.detail;
    auto rr = res.sys->run();
    ASSERT_TRUE(rr.completed);
    expectAppStateEqual(res.sys->pmImage(), golden.pmImage(), b,
                        "stall recovery");
}

TEST(FaultCrash, DoubleFailureDuringRetryWindowStaysSound)
{
    Built b = build(4);
    core::SystemConfig cfg = testConfig(4);
    core::System golden(cfg, b.prog, b.threads);
    auto gr = golden.run();
    ASSERT_TRUE(gr.completed);
    auto ticks = boundaryTicks(b, cfg);
    ASSERT_FALSE(ticks.empty());
    Tick pin = ticks[ticks.size() / 2];

    // Pin-drop a mid-run broadcast, then cut power inside its retry
    // window (timeout is 8 hops = 160 cycles at default latency) with a
    // second failure interrupting the drain itself. The router is not
    // battery-backed: the copies are gone, the drain truncates at that
    // region, recovery degrades to the older epoch — and still matches
    // golden after re-execution.
    core::SystemConfig vcfg = cfg;
    vcfg.faults.enabled = true;
    vcfg.faults.hardenedCkpt = true;
    vcfg.faults.seed = 9;
    vcfg.faults.bcastLossPinTick = pin;
    core::System victim(vcfg, b.prog, b.threads);
    auto vr = victim.runWithDoubleFailureDuringDrain(pin + 60, 1);
    ASSERT_FALSE(vr.completed);
    ASSERT_TRUE(victim.crashed());
    expectOracleClean(victim, "retry-window victim");

    const auto &rep = victim.crashReport();
    core::SystemConfig rcfg = cfg;
    rcfg.faults.hardenedCkpt = true;
    auto res = core::System::recoverChecked(rcfg, b.prog, b.threads,
                                            victim.pmImage(),
                                            b.lockAddrs, &rep);
    ASSERT_NE(res.outcome, core::RecoveryOutcome::DetectedUnrecoverable)
        << res.detail;
    if (rep.bcastLostAtCrash > 0) {
        EXPECT_EQ(res.outcome,
                  core::RecoveryOutcome::RecoveredDegraded);
    }
    auto rr = res.sys->run();
    ASSERT_TRUE(rr.completed);
    expectOracleClean(*res.sys, "retry-window recovery");
    expectAppStateEqual(res.sys->pmImage(), golden.pmImage(), b,
                        "retry-window recovery");
}

// ---- Recovery-time validation ----------------------------------------------

namespace {

/** Crash mid-run with hardened checkpoints; out_t = a thread resumed at
 *  a real boundary site. Returns the victim system (kept alive by the
 *  caller via unique_ptr) or null if no thread has a real site. */
std::unique_ptr<core::System>
crashedVictim(const Built &b, const core::SystemConfig &cfg,
              ThreadId &out_t)
{
    core::SystemConfig vcfg = cfg;
    vcfg.faults.enabled = true;
    vcfg.faults.hardenedCkpt = true;
    auto victim =
        std::make_unique<core::System>(vcfg, b.prog, b.threads);
    core::System probe(cfg, b.prog, b.threads);
    auto pr = probe.run();
    auto vr = victim->runWithPowerFailure(pr.cycles / 2);
    if (vr.completed)
        return nullptr;
    for (ThreadId t = 0; t < b.threads; ++t) {
        std::uint32_t site = cpu::ckptSiteOf(
            victim->pmImage().read(b.prog.layout.pcSlot(t)));
        if (site != static_cast<std::uint32_t>(core::noSiteSentinel) &&
            site != cpu::haltSite) {
            out_t = t;
            return victim;
        }
    }
    return nullptr;
}

} // namespace

TEST(FaultRecovery, PoisonedPcSlotIsUnrecoverable)
{
    Built b = build(4);
    core::SystemConfig cfg = testConfig(4);
    ThreadId t = 0;
    auto victim = crashedVictim(b, cfg, t);
    ASSERT_NE(victim, nullptr);

    mem::MemImage pm = victim->pmImage();
    pm.poison(b.prog.layout.pcSlot(t));
    core::SystemConfig rcfg = cfg;
    rcfg.faults.hardenedCkpt = true;
    auto res = core::System::recoverChecked(rcfg, b.prog, b.threads, pm,
                                            b.lockAddrs);
    EXPECT_EQ(res.outcome, core::RecoveryOutcome::DetectedUnrecoverable);
    EXPECT_EQ(res.sys, nullptr);
    EXPECT_NE(res.detail.find("PC slot"), std::string::npos)
        << res.detail;
}

TEST(FaultRecovery, PoisonedRegisterSlotsClassifyByRecipe)
{
    Built b = build(4);
    core::SystemConfig cfg = testConfig(4);
    ThreadId t = 0;
    auto victim = crashedVictim(b, cfg, t);
    ASSERT_NE(victim, nullptr);
    core::SystemConfig rcfg = cfg;
    rcfg.faults.hardenedCkpt = true;

    std::uint32_t site = cpu::ckptSiteOf(
        victim->pmImage().read(b.prog.layout.pcSlot(t)));
    const auto &recipes = b.prog.site(site).recipes;

    // An unmasked register slot (no recipe covers it) must refuse.
    ir::Reg uncovered = ir::numGprs;
    for (ir::Reg r = 0; r < ir::numGprs; ++r) {
        bool covered = std::any_of(
            recipes.begin(), recipes.end(),
            [r](const compiler::CkptRecipe &rc) { return rc.reg == r; });
        if (!covered) {
            uncovered = r;
            break;
        }
    }
    ASSERT_LT(uncovered, ir::numGprs);
    {
        mem::MemImage pm = victim->pmImage();
        pm.poison(b.prog.layout.regSlot(t, uncovered));
        auto res = core::System::recoverChecked(rcfg, b.prog, b.threads,
                                                pm, b.lockAddrs);
        EXPECT_EQ(res.outcome,
                  core::RecoveryOutcome::DetectedUnrecoverable);
        EXPECT_NE(res.detail.find("no masking recipe"),
                  std::string::npos)
            << res.detail;
    }

    // A Const-recipe register is reconstructed without reading its
    // slot: poison there is masked and recovery merely degrades.
    auto it = std::find_if(recipes.begin(), recipes.end(),
                           [](const compiler::CkptRecipe &rc) {
                               return rc.kind ==
                                      compiler::CkptRecipe::Kind::Const;
                           });
    if (it == recipes.end())
        GTEST_SKIP() << "site " << site << " has no Const recipe";
    {
        mem::MemImage pm = victim->pmImage();
        pm.poison(b.prog.layout.regSlot(t, it->reg));
        auto res = core::System::recoverChecked(rcfg, b.prog, b.threads,
                                                pm, b.lockAddrs);
        ASSERT_EQ(res.outcome,
                  core::RecoveryOutcome::RecoveredDegraded)
            << res.detail;
        EXPECT_EQ(res.maskedPoisonRegs, 1u);
        ASSERT_NE(res.sys, nullptr);
        EXPECT_TRUE(res.sys->run().completed);
    }
}

TEST(FaultRecovery, SilentRegisterFlipCaughtByHardenedChecksum)
{
    Built b = build(4);
    core::SystemConfig cfg = testConfig(4);
    ThreadId t = 0;
    auto victim = crashedVictim(b, cfg, t);
    ASSERT_NE(victim, nullptr);
    core::SystemConfig rcfg = cfg;
    rcfg.faults.hardenedCkpt = true;

    // Sanity: the undamaged image recovers.
    auto clean = core::System::recoverChecked(
        rcfg, b.prog, b.threads, victim->pmImage(), b.lockAddrs);
    ASSERT_EQ(clean.outcome, core::RecoveryOutcome::Recovered)
        << clean.detail;

    // Flip one bit in a register slot — no poison flag, no ECC: only
    // the checksum in the hardened PC-slot word can catch this.
    mem::MemImage pm = victim->pmImage();
    Addr slot = b.prog.layout.regSlot(t, 3);
    pm.write(slot, pm.read(slot) ^ (1ull << 17));
    auto res = core::System::recoverChecked(rcfg, b.prog, b.threads, pm,
                                            b.lockAddrs);
    EXPECT_EQ(res.outcome, core::RecoveryOutcome::DetectedUnrecoverable);
    EXPECT_NE(res.detail.find("checksum"), std::string::npos)
        << res.detail;
}

TEST(FaultRecovery, InjectedSilentFlipIsDetectedEndToEnd)
{
    Built b = build(4);
    core::SystemConfig cfg = testConfig(4);
    core::System probe(cfg, b.prog, b.threads);
    auto pr = probe.run();

    core::SystemConfig vcfg = cfg;
    vcfg.faults.enabled = true;
    vcfg.faults.hardenedCkpt = true;
    vcfg.faults.seed = 21;
    vcfg.faults.silentCkptFlip = true;
    core::System victim(vcfg, b.prog, b.threads);
    auto vr = victim.runWithPowerFailure(pr.cycles / 2);
    ASSERT_FALSE(vr.completed);
    if (victim.crashReport().silentFlips == 0)
        GTEST_SKIP() << "no thread had a live checkpoint at the crash";

    core::SystemConfig rcfg = cfg;
    rcfg.faults.hardenedCkpt = true;
    auto res = core::System::recoverChecked(rcfg, b.prog, b.threads,
                                            victim.pmImage(),
                                            b.lockAddrs,
                                            &victim.crashReport());
    EXPECT_EQ(res.outcome, core::RecoveryOutcome::DetectedUnrecoverable)
        << res.detail;
}

// ---- Campaign integration --------------------------------------------------

TEST(FaultFuzz, FaultArmedCampaignNeverSilentlyCorrupts)
{
    fuzz::CampaignOptions opt;
    opt.minCrashPoints = 4;
    fuzz::CaseSpec spec;
    spec.seed = 13;
    spec.faults.seed = 13;
    spec.faults.ckptEntryDamage = true;
    spec.faults.pmPoisonWords = 1;
    auto res = fuzz::runCampaign(spec, opt);
    EXPECT_TRUE(res.passed) << res.failure;
    EXPECT_GT(res.pointsTried, 0u);
    EXPECT_GT(res.recoveredExact + res.recoveredDegraded +
                  res.detectedUnrecoverable,
              0u);
}
