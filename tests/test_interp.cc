/**
 * @file
 * Interpreter (ThreadContext) tests: opcode semantics, the call/return
 * stack in persisted memory, lock blocking, fused sync-op region
 * semantics, halts and recovery repositioning.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "cpu/thread_context.hh"
#include "ir/program.hh"

using namespace lwsp;
using namespace lwsp::ir;
using namespace lwsp::cpu;

namespace {

struct Rig
{
    compiler::CompiledProgram prog;
    mem::MemImage mem;
    LockTable locks;
    RegionAllocator alloc;
    std::unique_ptr<ThreadContext> tc;

    explicit Rig(std::unique_ptr<Module> m, ThreadId tid = 0)
        : prog(compiler::makeUncompiled(std::move(m)))
    {
        for (const auto &[a, v] : prog.module->initialData())
            mem.write(a, v);
        tc = std::make_unique<ThreadContext>(prog, tid, mem, locks,
                                             alloc);
        tc->reset(0);
    }

    ExecRecord
    step()
    {
        ExecRecord rec;
        EXPECT_EQ(tc->step(rec), StepStatus::Ok);
        return rec;
    }

    /** Run to halt; returns executed instruction count. */
    std::uint64_t
    runToHalt()
    {
        ExecRecord rec;
        std::uint64_t guard = 0;
        while (!tc->halted()) {
            EXPECT_EQ(tc->step(rec), StepStatus::Ok);
            ASSERT_2(guard);
        }
        return tc->instsExecuted();
    }

    static void
    ASSERT_2(std::uint64_t &g)
    {
        ASSERT_LT(++g, 100000u) << "interpreter diverged";
    }
};

std::unique_ptr<Module>
moduleWith(std::vector<Instruction> insts)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    for (auto &i : insts)
        b.append(i);
    b.append(Instruction::simple(Opcode::Halt));
    return m;
}

} // namespace

TEST(Interp, AluSemantics)
{
    Rig rig(moduleWith({
        Instruction::movi(1, 12),
        Instruction::movi(2, 5),
        Instruction::alu(Opcode::Add, 3, 1, 2),   // 17
        Instruction::alu(Opcode::Sub, 4, 1, 2),   // 7
        Instruction::alu(Opcode::Mul, 5, 1, 2),   // 60
        Instruction::alu(Opcode::Div, 6, 1, 2),   // 2
        Instruction::alu(Opcode::And, 7, 1, 2),   // 4
        Instruction::alu(Opcode::Or, 8, 1, 2),    // 13
        Instruction::alu(Opcode::Xor, 9, 1, 2),   // 9
        Instruction::alu(Opcode::Shl, 10, 1, 2),  // 12<<5 = 384
        Instruction::alu(Opcode::Shr, 11, 1, 2),  // 0
        Instruction::aluImm(Opcode::AddI, 12, 1, -2),  // 10
        Instruction::aluImm(Opcode::MulI, 13, 2, 3),   // 15
    }));
    rig.runToHalt();
    EXPECT_EQ(rig.tc->reg(3), 17u);
    EXPECT_EQ(rig.tc->reg(4), 7u);
    EXPECT_EQ(rig.tc->reg(5), 60u);
    EXPECT_EQ(rig.tc->reg(6), 2u);
    EXPECT_EQ(rig.tc->reg(7), 4u);
    EXPECT_EQ(rig.tc->reg(8), 13u);
    EXPECT_EQ(rig.tc->reg(9), 9u);
    EXPECT_EQ(rig.tc->reg(10), 384u);
    EXPECT_EQ(rig.tc->reg(11), 0u);
    EXPECT_EQ(rig.tc->reg(12), 10u);
    EXPECT_EQ(rig.tc->reg(13), 15u);
}

TEST(Interp, DivByZeroYieldsZero)
{
    Rig rig(moduleWith({
        Instruction::movi(1, 12),
        Instruction::movi(2, 0),
        Instruction::alu(Opcode::Div, 3, 1, 2),
    }));
    rig.runToHalt();
    EXPECT_EQ(rig.tc->reg(3), 0u);
}

TEST(Interp, LoadStoreRoundTrip)
{
    auto m = moduleWith({
        Instruction::movi(1, 0x4000),
        Instruction::movi(2, 0xabc),
        Instruction::store(1, 8, 2),
        Instruction::load(3, 1, 8),
    });
    Rig rig(std::move(m));
    rig.runToHalt();
    EXPECT_EQ(rig.mem.read(0x4008), 0xabcu);
    EXPECT_EQ(rig.tc->reg(3), 0xabcu);
}

TEST(Interp, StoreRecordCarriesRegionTag)
{
    Rig rig(moduleWith({
        Instruction::movi(1, 0x4000),
        Instruction::store(1, 0, 1),
    }));
    rig.step();  // movi
    auto rec = rig.step();
    EXPECT_TRUE(rec.isStore);
    EXPECT_EQ(rec.addr, 0x4000u);
    EXPECT_EQ(rec.region, rig.tc->currentRegion());
}

TEST(Interp, CallPushesReturnAddressToStackMemory)
{
    auto m = std::make_unique<Module>();
    Function &main = m->addFunction("main");
    Function &callee = m->addFunction("callee");
    {
        BasicBlock &b = callee.addBlock();
        b.append(Instruction::movi(4, 77));
        b.append(Instruction::simple(Opcode::Ret));
    }
    {
        BasicBlock &b = main.addBlock();
        b.append(Instruction::call(callee.id()));
        b.append(Instruction::simple(Opcode::Halt));
    }
    Rig rig(std::move(m));
    std::uint64_t sp0 = rig.tc->reg(15);

    auto call_rec = rig.step();
    EXPECT_TRUE(call_rec.isStore);           // the return-address push
    EXPECT_EQ(call_rec.addr, sp0 - 8);
    EXPECT_EQ(rig.tc->reg(15), sp0 - 8);
    EXPECT_EQ(rig.mem.read(sp0 - 8), call_rec.value);

    rig.step();                               // movi in callee
    auto ret_rec = rig.step();                // ret pops
    EXPECT_TRUE(ret_rec.isLoad);
    EXPECT_EQ(rig.tc->reg(15), sp0);
    rig.runToHalt();
    EXPECT_EQ(rig.tc->reg(4), 77u);
}

TEST(Interp, LockBlocksSecondThread)
{
    auto mk = [] {
        return moduleWith({
            Instruction::movi(1, 0x5000),
            Instruction::lockOp(Opcode::LockAcq, 1, 0),
            Instruction::lockOp(Opcode::LockRel, 1, 0),
        });
    };
    auto prog = compiler::makeUncompiled(mk());
    mem::MemImage mem;
    LockTable locks;
    RegionAllocator alloc;
    ThreadContext t0(prog, 0, mem, locks, alloc);
    ThreadContext t1(prog, 1, mem, locks, alloc);
    t0.reset(0);
    t1.reset(0);

    ExecRecord rec;
    ASSERT_EQ(t0.step(rec), StepStatus::Ok);  // movi
    ASSERT_EQ(t0.step(rec), StepStatus::Ok);  // acquire
    EXPECT_EQ(mem.read(0x5000), 1u);          // owner 0 -> word 1

    ASSERT_EQ(t1.step(rec), StepStatus::Ok);  // movi
    EXPECT_EQ(t1.step(rec), StepStatus::Blocked);
    EXPECT_EQ(t1.step(rec), StepStatus::Blocked);  // still blocked

    ASSERT_EQ(t0.step(rec), StepStatus::Ok);  // release
    EXPECT_EQ(mem.read(0x5000), 0u);
    EXPECT_EQ(t1.step(rec), StepStatus::Ok);  // now acquires
    EXPECT_EQ(mem.read(0x5000), 2u);          // owner 1 -> word 2
}

TEST(Interp, SyncOpsAreFusedBoundaries)
{
    Rig rig(moduleWith({
        Instruction::movi(1, 0x5000),
        Instruction::lockOp(Opcode::LockAcq, 1, 0),
        Instruction::lockOp(Opcode::LockRel, 1, 0),
    }));
    rig.step();  // movi
    RegionId before = rig.tc->currentRegion();
    auto acq = rig.step();
    EXPECT_TRUE(acq.isBoundary);
    EXPECT_EQ(acq.broadcastRegion, before);          // ends old region
    EXPECT_GT(rig.tc->currentRegion(), before);      // fresh ID taken
    EXPECT_EQ(acq.region, rig.tc->currentRegion());  // store tagged new

    RegionId mid = rig.tc->currentRegion();
    auto rel = rig.step();
    EXPECT_TRUE(rel.isBoundary);
    EXPECT_EQ(rel.broadcastRegion, mid);
    EXPECT_GT(rig.tc->currentRegion(), mid);
}

TEST(Interp, AtomicAddIsFusedBoundaryAndAtomic)
{
    auto m = moduleWith({
        Instruction::movi(1, 0x5100),
        Instruction::movi(2, 3),
        Instruction::atomicAdd(1, 0, 2),
        Instruction::atomicAdd(1, 0, 2),
    });
    Rig rig(std::move(m));
    rig.step();
    rig.step();
    RegionId before = rig.tc->currentRegion();
    auto rec = rig.step();
    EXPECT_TRUE(rec.isBoundary);
    EXPECT_TRUE(rec.isStore);
    EXPECT_TRUE(rec.isLoad);
    EXPECT_EQ(rec.broadcastRegion, before);
    EXPECT_EQ(rec.value, 3u);
    rig.step();
    EXPECT_EQ(rig.mem.read(0x5100), 6u);
}

TEST(Interp, FenceEmitsMarkerStore)
{
    Rig rig(moduleWith({Instruction::simple(Opcode::Fence)}));
    RegionId before = rig.tc->currentRegion();
    auto rec = rig.step();
    EXPECT_TRUE(rec.isBoundary);
    EXPECT_TRUE(rec.isStore);  // rides the persist path for ordering
    EXPECT_EQ(rec.broadcastRegion, before);
}

TEST(Interp, HaltBroadcastsFinalRegion)
{
    Rig rig(moduleWith({}));
    RegionId r = rig.tc->currentRegion();
    ExecRecord rec;
    EXPECT_EQ(rig.tc->step(rec), StepStatus::Ok);
    EXPECT_TRUE(rec.isHalt);
    EXPECT_TRUE(rec.isBoundary);
    EXPECT_EQ(rec.broadcastRegion, r);
    EXPECT_EQ(rec.value, haltSite);
    EXPECT_TRUE(rig.tc->halted());
    EXPECT_EQ(rig.tc->step(rec), StepStatus::Halted);
}

TEST(Interp, BranchesFollowConditions)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b0 = f.addBlock();
    BasicBlock &b1 = f.addBlock();
    BasicBlock &b2 = f.addBlock();
    b0.append(Instruction::movi(1, 5));
    b0.append(Instruction::movi(2, 5));
    b0.append(Instruction::branch(Opcode::Beq, 1, 2, b2.id(), b1.id()));
    b1.append(Instruction::movi(3, 111));  // not taken
    b1.append(Instruction::simple(Opcode::Halt));
    b2.append(Instruction::movi(3, 222));
    b2.append(Instruction::simple(Opcode::Halt));
    Rig rig(std::move(m));
    rig.runToHalt();
    EXPECT_EQ(rig.tc->reg(3), 222u);
}

TEST(Interp, RecoverAtRestoresRegistersAndRecipes)
{
    // Compile a real program so boundary sites exist, then recover at a
    // site and verify slots + recipes are applied. The loop keeps r5
    // live across boundaries so its pruned checkpoint needs a recipe.
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b0 = f.addBlock();
    BasicBlock &b1 = f.addBlock();
    BasicBlock &b2 = f.addBlock();
    b0.append(Instruction::movi(1, 0x4000));
    b0.append(Instruction::movi(5, 42));  // const, pruned at boundaries
    b0.append(Instruction::movi(3, 0));
    b0.append(Instruction::movi(7, 4));
    b0.append(Instruction::jmp(b1.id()));
    b1.append(Instruction::alu(Opcode::Add, 6, 5, 3));
    b1.append(Instruction::store(1, 0, 6));
    b1.append(Instruction::aluImm(Opcode::AddI, 3, 3, 1));
    b1.append(Instruction::branch(Opcode::Blt, 3, 7, b1.id(), b2.id()));
    b2.append(Instruction::simple(Opcode::Halt));

    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(m));

    mem::MemImage pm;
    // Fake checkpoint storage: r1's slot holds its value; r5 pruned.
    pm.write(prog.layout.regSlot(0, 1), 0x4000);

    mem::MemImage exec;
    LockTable locks;
    RegionAllocator alloc;
    ThreadContext tc(prog, 0, exec, locks, alloc);
    tc.reset(0);

    // Find a site with a Const recipe for r5.
    const compiler::BoundarySite *site_with_recipe = nullptr;
    for (const auto &s : prog.sites) {
        for (const auto &r : s.recipes) {
            if (r.reg == 5)
                site_with_recipe = &s;
        }
    }
    ASSERT_NE(site_with_recipe, nullptr);

    tc.recoverAt(site_with_recipe->id, pm);
    EXPECT_EQ(tc.reg(1), 0x4000u);  // from slot
    EXPECT_EQ(tc.reg(5), 42u);      // from recipe
    EXPECT_FALSE(tc.halted());
}
