/**
 * @file
 * Fuzzer self-tests: spec-string round-trips, clean campaigns on both
 * program sources, and the fault-injection path — a deliberately broken
 * release ordering must be caught by an oracle, shrunk, and reproduced
 * exactly from the reported spec string.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"
#include "fuzz/campaign.hh"

using namespace lwsp;
using namespace lwsp::fuzz;

namespace {

CaseSpec
parseOk(const std::string &s)
{
    CaseSpec spec;
    std::string err;
    EXPECT_TRUE(CaseSpec::parse(s, spec, err)) << s << ": " << err;
    return spec;
}

} // namespace

TEST(FuzzSpec, RoundTripsCampaignSpec)
{
    CaseSpec spec;
    spec.source = CaseSpec::Source::Ir;
    spec.seed = 12345;
    spec.shrink = 3;
    CaseSpec back = parseOk(spec.toString());
    EXPECT_EQ(back.toString(), spec.toString());
    EXPECT_EQ(back.source, CaseSpec::Source::Ir);
    EXPECT_EQ(back.seed, 12345u);
    EXPECT_EQ(back.shrink, 3u);
    EXPECT_EQ(back.mode, CrashMode::None);
    EXPECT_FALSE(back.fault);
}

TEST(FuzzSpec, RoundTripsEveryCrashMode)
{
    CaseSpec spec;
    spec.source = CaseSpec::Source::Workload;
    spec.seed = 7;
    spec.fault = true;

    spec.mode = CrashMode::Single;
    spec.crashAt = 4242;
    CaseSpec single = parseOk(spec.toString());
    EXPECT_EQ(single.mode, CrashMode::Single);
    EXPECT_EQ(single.crashAt, 4242u);
    EXPECT_TRUE(single.fault);

    spec.mode = CrashMode::DoubleRecovery;
    spec.crashAt2 = 99;
    CaseSpec dblrec = parseOk(spec.toString());
    EXPECT_EQ(dblrec.mode, CrashMode::DoubleRecovery);
    EXPECT_EQ(dblrec.crashAt2, 99u);

    spec.mode = CrashMode::DoubleDrain;
    spec.drainIters = 2;
    CaseSpec dbldrain = parseOk(spec.toString());
    EXPECT_EQ(dbldrain.mode, CrashMode::DoubleDrain);
    EXPECT_EQ(dbldrain.drainIters, 2u);
}

TEST(FuzzSpec, RejectsMalformedSpecs)
{
    CaseSpec spec;
    std::string err;
    EXPECT_FALSE(CaseSpec::parse("", spec, err));
    EXPECT_FALSE(CaseSpec::parse("lwsp-fuzz:v2:wl:seed=1", spec, err));
    EXPECT_FALSE(CaseSpec::parse("lwsp-fuzz:v1:xx:seed=1", spec, err));
    EXPECT_FALSE(
        CaseSpec::parse("lwsp-fuzz:v1:wl:seed=1:bogus=3", spec, err));
    EXPECT_FALSE(err.empty());
}

TEST(FuzzSpec, RoundTripsMachineShapeTokens)
{
    CaseSpec spec;
    spec.source = CaseSpec::Source::Pds;
    spec.seed = 9;

    // Default shape: no mcs=/topo= tokens, so pre-scale-out specs and
    // their reproducers are unchanged byte-for-byte.
    std::string plain = spec.toString();
    EXPECT_EQ(plain.find(":mcs="), std::string::npos) << plain;
    EXPECT_EQ(plain.find(":topo="), std::string::npos) << plain;

    spec.mcs = 65;
    spec.topo.kind = noc::TopologyConfig::Kind::Tree;
    spec.topo.radix = 4;
    std::string s = spec.toString();
    EXPECT_NE(s.find(":mcs=65"), std::string::npos) << s;
    EXPECT_NE(s.find(":topo=tree4"), std::string::npos) << s;
    CaseSpec back = parseOk(s);
    EXPECT_EQ(back.mcs, 65u);
    EXPECT_TRUE(back.topo.isTree());
    EXPECT_EQ(back.topo.radix, 4u);
    EXPECT_EQ(back.toString(), s);

    std::string err;
    EXPECT_FALSE(
        CaseSpec::parse("lwsp-fuzz:v1:pds:seed=9:mcs=0", back, err));
    EXPECT_FALSE(
        CaseSpec::parse("lwsp-fuzz:v1:pds:seed=9:topo=ring4", back, err));
}

// The scale-out path end-to-end: a pds crash campaign pinned to a
// 65-MC radix-4 tree (past the old uint64_t delivery-mask boundary)
// must mine, crash, recover and oracle-check cleanly through exactly
// the spec machinery a reproducer would use.
TEST(FuzzCampaign, PdsCampaignPassesOn65McTree)
{
    setLogQuiet(true);
    CaseSpec spec;
    spec.source = CaseSpec::Source::Pds;
    spec.seed = 1;
    spec.mcs = 65;
    spec.topo.kind = noc::TopologyConfig::Kind::Tree;
    spec.topo.radix = 4;
    auto res = runCampaign(spec);
    EXPECT_TRUE(res.passed) << res.failure;
    EXPECT_GE(res.pointsTried, 4u);
    EXPECT_GT(res.oracleChecks, 0u);
}

TEST(FuzzCampaign, WorkloadCampaignPassesCleanly)
{
    setLogQuiet(true);
    CaseSpec spec;
    spec.source = CaseSpec::Source::Workload;
    spec.seed = 1;
    auto res = runCampaign(spec);
    EXPECT_TRUE(res.passed) << res.failure;
    EXPECT_GE(res.pointsTried, 8u);
    EXPECT_GT(res.runsExecuted, res.pointsTried);  // golden + recoveries
    EXPECT_GT(res.oracleChecks, 0u);
}

TEST(FuzzCampaign, IrCampaignPassesCleanly)
{
    setLogQuiet(true);
    CaseSpec spec;
    spec.source = CaseSpec::Source::Ir;
    spec.seed = 1;
    auto res = runCampaign(spec);
    EXPECT_TRUE(res.passed) << res.failure;
    EXPECT_GE(res.pointsTried, 8u);
    EXPECT_GT(res.oracleChecks, 0u);
}

TEST(FuzzCampaign, FaultInjectionIsCaughtShrunkAndReplayable)
{
    setLogQuiet(true);
    CaseSpec spec;
    spec.source = CaseSpec::Source::Workload;
    spec.seed = 1;
    spec.fault = true;  // MC releases WPQ entries ahead of the boundary

    auto res = runCampaign(spec);
    ASSERT_FALSE(res.passed)
        << "early-release fault escaped every oracle";
    EXPECT_NE(res.failure.find("oracle"), std::string::npos)
        << "fault was not caught by an invariant oracle: "
        << res.failure;

    // The reproducer pins a concrete injection and keeps the fault knob.
    ASSERT_NE(res.reproducer.mode, CrashMode::None);
    EXPECT_TRUE(res.reproducer.fault);

    // Replaying the reported spec string reproduces the failure...
    CaseSpec replay = parseOk(res.reproducer.toString());
    auto rep = runCampaign(replay);
    EXPECT_FALSE(rep.passed) << "reproducer did not reproduce";

    // ...and the same injection without the fault knob is clean,
    // pinning the failure on the fault rather than the crash point.
    replay.fault = false;
    auto clean = runCampaign(replay);
    EXPECT_TRUE(clean.passed) << clean.failure;
}
