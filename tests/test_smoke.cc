/**
 * @file
 * End-to-end smoke tests: compile a small workload, run it under every
 * scheme, and sanity-check the results. These run first; deeper
 * behaviour is covered by the per-module suites.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "compiler/compiler.hh"
#include "core/system.hh"
#include "harness/runner.hh"
#include "workloads/generator.hh"

using namespace lwsp;

namespace {

workloads::WorkloadProfile
tinyProfile(unsigned threads = 1)
{
    workloads::WorkloadProfile p;
    p.name = "tiny";
    p.suite = "TEST";
    p.threads = threads;
    p.footprintBytes = 64 * 1024;
    p.hotBytes = 8 * 1024;
    p.locality = 0.8;
    p.branchMissRate = 0.0;
    workloads::PhaseSpec ph;
    ph.pattern = workloads::PhaseSpec::Pattern::Sequential;
    ph.loads = 2;
    ph.stores = 1;
    ph.alus = 6;
    ph.trip = 64;
    ph.reps = 2;
    p.phases.push_back(ph);
    return p;
}

} // namespace

TEST(Smoke, BaselineRunsToCompletion)
{
    setLogQuiet(true);
    auto w = workloads::generate(tinyProfile());
    auto prog = compiler::makeUncompiled(std::move(w.module));

    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::Baseline;
    cfg.applySchemeDefaults();

    core::System sys(cfg, prog, 1);
    auto r = sys.run();
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.instsRetired, 1000u);
    EXPECT_GT(r.storesRetired, 100u);
    EXPECT_GT(r.ipc, 0.1);
}

TEST(Smoke, LightWspRunsToCompletion)
{
    setLogQuiet(true);
    auto w = workloads::generate(tinyProfile());
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(w.module));
    EXPECT_GT(prog.stats.boundaries, 0u);

    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.applySchemeDefaults();

    core::System sys(cfg, prog, 1);
    auto r = sys.run();
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.boundaries, 0u);
    EXPECT_GT(r.wpqFlushedEntries, 0u);
}

TEST(Smoke, PmMatchesExecMemAfterCleanLightWspRun)
{
    setLogQuiet(true);
    auto w = workloads::generate(tinyProfile());
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(w.module));

    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.applySchemeDefaults();

    core::System sys(cfg, prog, 1);
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    // Every store persisted: the PM image must equal the execution image.
    auto diffs = sys.pmImage().diff(sys.execImage());
    EXPECT_TRUE(diffs.empty())
        << "first diff at 0x" << std::hex
        << (diffs.empty() ? 0 : diffs[0]);
}

TEST(Smoke, AllSchemesComplete)
{
    setLogQuiet(true);
    for (core::Scheme s :
         {core::Scheme::Baseline, core::Scheme::PspIdeal,
          core::Scheme::LightWsp, core::Scheme::NaiveSfence,
          core::Scheme::Ppa, core::Scheme::Capri, core::Scheme::Cwsp}) {
        auto w = workloads::generate(tinyProfile());
        harness::RunSpec spec;
        spec.workload = "tiny";
        spec.scheme = s;
        auto cfg = harness::makeConfig(w.profile, spec);
        auto prog = harness::prepareProgram(std::move(w), spec);
        core::System sys(cfg, prog, 1);
        auto r = sys.run();
        EXPECT_TRUE(r.completed) << core::schemeName(s);
    }
}

TEST(Smoke, MultithreadedLightWspCompletes)
{
    setLogQuiet(true);
    auto profile = tinyProfile(4);
    workloads::PhaseSpec txn;
    txn.pattern = workloads::PhaseSpec::Pattern::Random;
    txn.loads = 1;
    txn.stores = 1;
    txn.alus = 4;
    txn.trip = 32;
    txn.reps = 1;
    txn.lockedRmw = true;
    profile.phases.push_back(txn);

    auto w = workloads::generate(profile);
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(w.module));

    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 4;
    cfg.applySchemeDefaults();

    core::System sys(cfg, prog, 4);
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    // 4 threads x (trip/syncEvery) outer transactions, each incrementing
    // the first shared cell once.
    EXPECT_EQ(sys.execImage().read(workloads::Workload::sharedBase + 8),
              4u * (32u / 16u));
    auto diffs = sys.pmImage().diff(sys.execImage());
    EXPECT_TRUE(diffs.empty());
}
