/**
 * @file
 * Timing-core tests against a scripted MemPort: dependence-tracked
 * completion, store-buffer and FEB back-pressure, boundary stall
 * policies and the persist-path launch/egress pipeline.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "cpu/core.hh"
#include "sim/simulator.hh"

using namespace lwsp;
using namespace lwsp::ir;
using namespace lwsp::cpu;

namespace {

/** Scriptable memory port. */
class TestPort : public MemPort
{
  public:
    Tick loadLat = 4;
    bool acceptPersists = true;
    bool durable = true;
    std::vector<mem::PersistEntry> accepted;
    std::vector<RegionId> broadcasts;

    Tick
    loadLatency(CoreId, Addr, Tick) override
    {
        return loadLat;
    }
    bool storeAccess(CoreId, Addr, Tick) override { return true; }
    bool
    tryPersistAccept(const mem::PersistEntry &e, Tick) override
    {
        if (!acceptPersists)
            return false;
        accepted.push_back(e);
        return true;
    }
    void
    broadcastBoundary(RegionId r, Tick) override
    {
        broadcasts.push_back(r);
    }
    bool regionDurable(CoreId, RegionId) override { return durable; }
    bool persistsDrained(CoreId) override { return durable; }
};

struct Rig
{
    compiler::CompiledProgram prog;
    mem::MemImage mem;
    LockTable locks;
    RegionAllocator alloc;
    TestPort port;
    CoreConfig cfg;
    std::unique_ptr<ThreadContext> tc;
    std::unique_ptr<Core> core;
    Tick now = 0;

    explicit Rig(std::unique_ptr<Module> m, CoreConfig c = {})
        : prog(compiler::makeUncompiled(std::move(m))), cfg(c)
    {
        cfg.branchMissRate = 0.0;
        core = std::make_unique<Core>(0, cfg, port);
        tc = std::make_unique<ThreadContext>(prog, 0, mem, locks, alloc);
        tc->reset(0);
        core->setThread(tc.get());
    }

    /** Tick until the thread halts and the core drains (bounded). */
    Tick
    runToDrain(Tick limit = 100000)
    {
        while ((!tc->halted() || !core->drained()) && now < limit)
            core->tick(now++);
        EXPECT_TRUE(tc->halted());
        EXPECT_TRUE(core->drained());
        return now;
    }
};

std::unique_ptr<Module>
storesModule(unsigned n)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    b.append(Instruction::movi(1, 0x4000));
    for (unsigned i = 0; i < n; ++i)
        b.append(
            Instruction::store(1, static_cast<std::int64_t>(i) * 8, 1));
    b.append(Instruction::simple(Opcode::Halt));
    return m;
}

} // namespace

TEST(CoreTiming, ExecutesAndDrains)
{
    Rig rig(storesModule(10));
    rig.runToDrain();
    EXPECT_EQ(rig.core->instsRetired(), 12u);  // movi + 10 st + halt
    EXPECT_EQ(rig.core->storesRetired(), 11u); // halt's PC store counts
    // Every persist-path entry was delivered.
    EXPECT_EQ(rig.port.accepted.size(), 11u);
    // Halt's implicit boundary broadcast the final region.
    EXPECT_EQ(rig.port.broadcasts.size(), 1u);
}

TEST(CoreTiming, PersistPathDisabledSendsNothing)
{
    CoreConfig cfg;
    cfg.persistPathEnabled = false;
    Rig rig(storesModule(5), cfg);
    rig.runToDrain();
    EXPECT_TRUE(rig.port.accepted.empty());
}

TEST(CoreTiming, PathBandwidthPacesLaunches)
{
    CoreConfig slow;
    slow.pathCyclesPerEntry = 16;
    CoreConfig fast;
    fast.pathCyclesPerEntry = 1;

    Rig a(storesModule(32), slow);
    Tick t_slow = a.runToDrain();
    Rig b(storesModule(32), fast);
    Tick t_fast = b.runToDrain();
    EXPECT_GT(t_slow, t_fast + 32 * 10);
}

TEST(CoreTiming, BlockedWpqBacksUpToRetirement)
{
    CoreConfig cfg;
    cfg.febEntries = 4;
    cfg.sbEntries = 4;
    Rig rig(storesModule(30), cfg);
    rig.port.acceptPersists = false;
    for (Tick t = 0; t < 2000; ++t)
        rig.core->tick(rig.now++);
    // Everything is wedged behind the refusing WPQ.
    EXPECT_GT(rig.core->pathBlockedCycles(), 0u);
    EXPECT_GT(rig.core->febFullCycles(), 0u);
    EXPECT_GT(rig.core->sbFullCycles(), 0u);
    EXPECT_FALSE(rig.core->drained());
    // Un-wedge and finish.
    rig.port.acceptPersists = true;
    rig.runToDrain();
}

TEST(CoreTiming, FebCamSeesInFlightLines)
{
    CoreConfig cfg;
    Rig rig(storesModule(8), cfg);
    rig.port.acceptPersists = false;
    for (Tick t = 0; t < 200; ++t)
        rig.core->tick(rig.now++);
    EXPECT_TRUE(rig.core->febContainsLine(0x4000));
    EXPECT_FALSE(rig.core->febContainsLine(0x8000));
    EXPECT_NE(rig.core->febMinRegion(), invalidRegion);
    rig.port.acceptPersists = true;
    rig.runToDrain();
    EXPECT_FALSE(rig.core->febContainsLine(0x4000));
}

TEST(CoreTiming, LoadLatencyGatesDependents)
{
    auto mk = [] {
        auto m = std::make_unique<Module>();
        Function &f = m->addFunction("main");
        BasicBlock &b = f.addBlock();
        b.append(Instruction::movi(1, 0x4000));
        // A chain of 16 dependent loads.
        for (int i = 0; i < 16; ++i) {
            b.append(Instruction::load(2, 1, 0));
            b.append(Instruction::alu(Opcode::Add, 1, 1, 2));
        }
        b.append(Instruction::simple(Opcode::Halt));
        return m;
    };
    CoreConfig cfg;
    Rig fast(mk(), cfg);
    fast.port.loadLat = 4;
    Tick t_fast = fast.runToDrain();

    Rig slow(mk(), cfg);
    slow.port.loadLat = 200;
    Tick t_slow = slow.runToDrain();
    EXPECT_GT(t_slow, t_fast + 16 * 150);
}

TEST(CoreTiming, StallUntilDurableWaitsAtBoundaries)
{
    // Compile so real Boundary instructions exist.
    auto m = storesModule(12);
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(m));

    mem::MemImage memi;
    LockTable locks;
    RegionAllocator alloc;
    TestPort port;
    port.durable = false;

    CoreConfig cfg;
    cfg.boundaryPolicy = CoreConfig::BoundaryPolicy::StallUntilDurable;
    cfg.branchMissRate = 0.0;
    Core core(0, cfg, port);
    ThreadContext tc(prog, 0, memi, locks, alloc);
    tc.reset(0);
    core.setThread(&tc);

    Tick now = 0;
    for (; now < 3000; ++now)
        core.tick(now);
    EXPECT_GT(core.boundaryWaitCycles(), 1000u);
    EXPECT_FALSE(tc.halted() && core.drained());

    port.durable = true;
    while ((!tc.halted() || !core.drained()) && now < 100000)
        core.tick(now++);
    EXPECT_TRUE(tc.halted());
}

TEST(CoreTiming, HwImplicitRegionsWaitEveryNStores)
{
    TestPort port;
    CoreConfig cfg;
    cfg.boundaryPolicy = CoreConfig::BoundaryPolicy::HwImplicit;
    cfg.hwRegionStores = 4;
    cfg.branchMissRate = 0.0;
    auto prog = compiler::makeUncompiled(storesModule(16));
    mem::MemImage memi;
    LockTable locks;
    RegionAllocator alloc;
    Core core(0, cfg, port);
    ThreadContext tc(prog, 0, memi, locks, alloc);
    tc.reset(0);
    core.setThread(&tc);
    Tick now = 0;
    while ((!tc.halted() || !core.drained()) && now < 100000)
        core.tick(now++);
    // 16 data stores / 4 per region = 4 implicit boundaries.
    EXPECT_GE(core.boundariesRetired(), 4u);
}

TEST(CoreTiming, RegionStatsSampled)
{
    auto m = storesModule(40);
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(m));
    mem::MemImage memi;
    LockTable locks;
    RegionAllocator alloc;
    TestPort port;
    CoreConfig cfg;
    cfg.branchMissRate = 0.0;
    Core core(0, cfg, port);
    ThreadContext tc(prog, 0, memi, locks, alloc);
    tc.reset(0);
    core.setThread(&tc);
    Tick now = 0;
    while ((!tc.halted() || !core.drained()) && now < 100000)
        core.tick(now++);
    EXPECT_GT(core.regionInsts().summary().count(), 0u);
    EXPECT_GT(core.regionStores().summary().mean(), 0.0);
}

TEST(CoreTiming, ContextSwitchClearsState)
{
    Rig rig(storesModule(4));
    rig.core->applyContextSwitch(100, 500);
    // Dispatch is blocked for the penalty window.
    for (Tick t = 100; t < 600; ++t)
        rig.core->tick(t);
    EXPECT_EQ(rig.core->instsRetired(), 0u);
}

TEST(CoreTiming, ResetStatsZeroesCounters)
{
    Rig rig(storesModule(6));
    rig.runToDrain();
    EXPECT_GT(rig.core->instsRetired(), 0u);
    rig.core->resetStats();
    EXPECT_EQ(rig.core->instsRetired(), 0u);
    EXPECT_EQ(rig.core->storesRetired(), 0u);
    EXPECT_EQ(rig.core->regionInsts().summary().count(), 0u);
}
