/**
 * @file
 * WPQ (write-pending-queue) unit tests: capacity, overflow permission,
 * CAM search semantics, region queries and FIFO-within-region order.
 */

#include <gtest/gtest.h>

#include "mem/wpq.hh"

using namespace lwsp;
using namespace lwsp::mem;

namespace {

PersistEntry
entry(Addr addr, std::uint64_t value, RegionId region)
{
    PersistEntry e;
    e.addr = addr;
    e.value = value;
    e.region = region;
    return e;
}

} // namespace

TEST(Wpq, CapacityAndOverflow)
{
    Wpq q(2);
    q.push(entry(0, 1, 1));
    q.push(entry(8, 2, 1));
    EXPECT_TRUE(q.full());
    EXPECT_THROW(q.push(entry(16, 3, 1)), PanicError);
    q.push(entry(16, 3, 1), /*allow_overflow=*/true);
    EXPECT_EQ(q.size(), 3u);
}

TEST(Wpq, CapacityOneQueue)
{
    Wpq q(1);
    EXPECT_FALSE(q.full());
    q.push(entry(0, 1, 1));
    EXPECT_TRUE(q.full());
    EXPECT_THROW(q.push(entry(8, 2, 1)), PanicError);
    auto e = q.popFront();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->value, 1u);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    q.push(entry(8, 2, 2));  // reusable after drain
    EXPECT_EQ(q.size(), 1u);
}

TEST(Wpq, EmptyQueueOperations)
{
    Wpq q(4);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.popFront().has_value());
    EXPECT_FALSE(q.popRegion(1).has_value());
    EXPECT_EQ(q.minRegion(), invalidRegion);
    EXPECT_FALSE(q.hasRegion(0));
    EXPECT_FALSE(q.search(0).has_value());
    EXPECT_EQ(q.discardRegionsAbove(0), 0u);
    unsigned visited = 0;
    q.forEach([&](const PersistEntry &) { ++visited; });
    EXPECT_EQ(visited, 0u);
}

TEST(Wpq, CamSearchReturnsNewestMatch)
{
    Wpq q(8);
    q.push(entry(0x100, 1, 1));
    q.push(entry(0x100, 2, 2));
    q.push(entry(0x108, 3, 2));
    auto hit = q.search(0x100);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 2u);  // newest value for the address
    EXPECT_FALSE(q.search(0x200).has_value());
}

TEST(Wpq, ContainsLineMatchesAnyGranuleInLine)
{
    Wpq q(8);
    q.push(entry(0x1038, 1, 1));  // line 0x1000
    EXPECT_TRUE(q.containsLine(0x1000));
    EXPECT_FALSE(q.containsLine(0x1040));
}

TEST(Wpq, MinRegionAndHasRegion)
{
    Wpq q(8);
    EXPECT_EQ(q.minRegion(), invalidRegion);
    q.push(entry(0, 1, 5));
    q.push(entry(8, 2, 3));
    q.push(entry(16, 3, 9));
    EXPECT_EQ(q.minRegion(), 3u);
    EXPECT_TRUE(q.hasRegion(5));
    EXPECT_FALSE(q.hasRegion(4));
}

TEST(Wpq, PopRegionIsFifoWithinRegion)
{
    Wpq q(8);
    q.push(entry(0, 1, 1));
    q.push(entry(8, 2, 2));
    q.push(entry(16, 3, 1));
    auto a = q.popRegion(1);
    auto b = q.popRegion(1);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->addr, 0u);
    EXPECT_EQ(b->addr, 16u);
    EXPECT_FALSE(q.popRegion(1).has_value());
    EXPECT_TRUE(q.hasRegion(2));
}

TEST(Wpq, PopFrontIsGlobalFifo)
{
    Wpq q(8);
    q.push(entry(0, 1, 9));
    q.push(entry(8, 2, 3));
    auto a = q.popFront();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->region, 9u);
}

TEST(Wpq, DiscardRegionsAbove)
{
    Wpq q(8);
    q.push(entry(0, 1, 1));
    q.push(entry(8, 2, 2));
    q.push(entry(16, 3, 3));
    EXPECT_EQ(q.discardRegionsAbove(1), 2u);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_TRUE(q.hasRegion(1));
}

TEST(Wpq, ForEachVisitsOldestFirst)
{
    Wpq q(8);
    q.push(entry(0, 1, 1));
    q.push(entry(8, 2, 2));
    std::vector<Addr> order;
    q.forEach([&](const PersistEntry &e) { order.push_back(e.addr); });
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0u);
    EXPECT_EQ(order[1], 8u);
}
