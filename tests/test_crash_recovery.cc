/**
 * @file
 * Crash-injection sweeps: the system's flagship correctness property.
 *
 * For a grid of power-failure cycles spanning the whole execution, we
 * (1) cut power, (2) run the §IV-F drain protocol, (3) recover a fresh
 * system from the post-crash PM image and run it to completion, and
 * (4) require the recovered application state to equal a golden
 * crash-free run's. Workloads are confluent (final state independent of
 * interleaving), so the equality is exact. Double-crash variants inject
 * a second failure into the recovery run itself.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "compiler/compiler.hh"
#include "core/system.hh"
#include "workloads/generator.hh"

using namespace lwsp;

namespace {

struct CrashCase
{
    const char *name;
    unsigned threads;
    bool locked;          ///< add a lock-protected shared RMW phase
    bool randomPattern;
    unsigned trip;
};

workloads::Workload
buildWorkload(const CrashCase &c)
{
    workloads::WorkloadProfile p;
    p.name = c.name;
    p.suite = "TEST";
    p.threads = c.threads;
    p.footprintBytes = 32 * 1024;
    p.hotBytes = 8 * 1024;
    p.locality = 0.7;
    p.branchMissRate = 0.0;

    workloads::PhaseSpec ph;
    ph.pattern = c.randomPattern
                     ? workloads::PhaseSpec::Pattern::Random
                     : workloads::PhaseSpec::Pattern::Sequential;
    ph.loads = 2;
    ph.stores = 2;
    ph.alus = 4;
    ph.trip = c.trip;
    ph.reps = 2;
    p.phases.push_back(ph);

    if (c.locked) {
        workloads::PhaseSpec txn;
        txn.pattern = workloads::PhaseSpec::Pattern::Random;
        txn.loads = 1;
        txn.stores = 1;
        txn.alus = 2;
        txn.trip = c.trip / 2;
        txn.reps = 1;
        txn.lockedRmw = true;
        p.phases.push_back(txn);
    }
    return workloads::generate(p);
}

core::SystemConfig
testConfig(unsigned threads)
{
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = std::min(8u, threads);
    cfg.maxCycles = 30'000'000;
    cfg.oraclesEnabled = true;  // LRPO invariants checked on every run
    cfg.applySchemeDefaults();
    return cfg;
}

/** Require a clean oracle verdict (and that the oracle exists at all). */
void
expectOracleClean(const core::System &sys, const std::string &what)
{
    ASSERT_TRUE(sys.oracle() != nullptr) << what << ": oracle missing";
    EXPECT_TRUE(sys.oracle()->ok())
        << what << ": " << sys.oracle()->firstViolation();
}

/** App-visible state: per-thread partitions + the shared page. */
void
expectAppStateEqual(const mem::MemImage &got, const mem::MemImage &want,
                    unsigned threads, std::size_t footprint,
                    const std::string &what)
{
    Addr heap_lo = workloads::Workload::heapBase;
    Addr heap_hi = heap_lo + static_cast<Addr>(threads) * footprint;
    auto heap_diffs = got.diffInRange(want, heap_lo, heap_hi);
    EXPECT_TRUE(heap_diffs.empty())
        << what << ": heap differs at 0x" << std::hex
        << (heap_diffs.empty() ? 0 : heap_diffs[0]);

    Addr sh = workloads::Workload::sharedBase;
    auto shared_diffs = got.diffInRange(want, sh, sh + 4096);
    EXPECT_TRUE(shared_diffs.empty())
        << what << ": shared page differs at 0x" << std::hex
        << (shared_diffs.empty() ? 0 : shared_diffs[0]);
}

class CrashSweep
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
  protected:
    static const CrashCase &
    caseAt(int idx)
    {
        static const CrashCase cases[] = {
            {"st-seq", 1, false, false, 96},
            {"st-rand", 1, false, true, 96},
            {"mt-plain", 4, false, true, 48},
            {"mt-locked", 4, true, false, 48},
        };
        return cases[idx];
    }
};

} // namespace

TEST_P(CrashSweep, RecoveryReproducesGoldenState)
{
    setLogQuiet(true);
    const CrashCase &c = caseAt(std::get<0>(GetParam()));
    double fraction = std::get<1>(GetParam());

    compiler::LightWspCompiler comp;

    // Golden run.
    auto wg = buildWorkload(c);
    auto lock_addrs = wg.lockAddrs;
    auto prog = comp.compile(std::move(wg.module));
    core::SystemConfig cfg = testConfig(c.threads);

    core::System golden(cfg, prog, c.threads);
    auto gr = golden.run();
    ASSERT_TRUE(gr.completed);
    expectOracleClean(golden, "golden");

    // Crash run at the chosen fraction of the golden duration.
    Tick fail_at = static_cast<Tick>(fraction * gr.cycles);
    core::System victim(cfg, prog, c.threads);
    auto vr = victim.runWithPowerFailure(fail_at);
    if (vr.completed) {
        // Finished before the failure point: nothing to recover.
        expectAppStateEqual(victim.pmImage(), golden.pmImage(),
                            c.threads, 32 * 1024, "no-crash");
        return;
    }
    ASSERT_TRUE(victim.crashed());
    expectOracleClean(victim, "victim");

    // Recover and run to completion.
    auto recovered = core::System::recover(cfg, prog, c.threads,
                                           victim.pmImage(), lock_addrs);
    auto rr = recovered->run();
    ASSERT_TRUE(rr.completed) << "recovery run did not finish";
    expectOracleClean(*recovered, "recovery");

    expectAppStateEqual(recovered->pmImage(), golden.pmImage(), c.threads,
                        32 * 1024, "recovered");
}

namespace {

using CrashParam = std::tuple<int, double>;

std::string
crashCaseName(const ::testing::TestParamInfo<CrashParam> &info)
{
    static const char *names[] = {"StSeq", "StRand", "MtPlain",
                                  "MtLocked"};
    int pct = static_cast<int>(std::get<1>(info.param) * 100);
    return std::string(names[std::get<0>(info.param)]) + "At" +
           std::to_string(pct);
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0.02, 0.1, 0.25, 0.4, 0.55, 0.7,
                                         0.85, 0.97)),
    crashCaseName);

TEST(CrashRecovery, DoubleCrashStillRecovers)
{
    setLogQuiet(true);
    const CrashCase c{"mt-locked2", 4, true, false, 48};
    compiler::LightWspCompiler comp;

    auto wg = buildWorkload(c);
    auto lock_addrs = wg.lockAddrs;
    auto prog = comp.compile(std::move(wg.module));
    core::SystemConfig cfg = testConfig(c.threads);

    core::System golden(cfg, prog, c.threads);
    auto gr = golden.run();
    ASSERT_TRUE(gr.completed);

    core::System victim(cfg, prog, c.threads);
    auto vr = victim.runWithPowerFailure(gr.cycles / 3);
    ASSERT_FALSE(vr.completed);

    auto rec1 = core::System::recover(cfg, prog, c.threads,
                                      victim.pmImage(), lock_addrs);
    auto r1 = rec1->runWithPowerFailure(gr.cycles / 3);
    if (!r1.completed) {
        auto rec2 = core::System::recover(cfg, prog, c.threads,
                                          rec1->pmImage(), lock_addrs);
        auto r2 = rec2->run();
        ASSERT_TRUE(r2.completed);
        expectAppStateEqual(rec2->pmImage(), golden.pmImage(), c.threads,
                            32 * 1024, "double-crash");
    } else {
        expectAppStateEqual(rec1->pmImage(), golden.pmImage(), c.threads,
                            32 * 1024, "single-crash");
    }
}

/**
 * Second power failure while the §IV-F drain itself is running: the
 * battery-backed WPQ and MC registers survive, so the resumed drain
 * must finish the job and recovery must be indistinguishable from a
 * single failure at the same cycle. Swept over how far the first drain
 * got before the lights went out again (0 = before any flush/ACK
 * iteration), with the LRPO oracles armed throughout.
 */
TEST(CrashRecovery, DoubleFailureDuringDrainRecovers)
{
    setLogQuiet(true);
    const CrashCase c{"mt-drain2", 4, true, false, 48};
    compiler::LightWspCompiler comp;

    auto wg = buildWorkload(c);
    auto lock_addrs = wg.lockAddrs;
    auto prog = comp.compile(std::move(wg.module));
    core::SystemConfig cfg = testConfig(c.threads);

    core::System golden(cfg, prog, c.threads);
    auto gr = golden.run();
    ASSERT_TRUE(gr.completed);
    expectOracleClean(golden, "golden");

    const double fracs[] = {0.15, 0.45, 0.75};
    const unsigned drain_iters[] = {0, 1, 2, 5};
    for (double f : fracs) {
        Tick fail_at = static_cast<Tick>(f * gr.cycles);

        // Reference: a single failure at the same cycle.
        core::System single(cfg, prog, c.threads);
        auto sr = single.runWithPowerFailure(fail_at);
        if (sr.completed)
            continue;  // finished before the failure point

        for (unsigned iters : drain_iters) {
            SCOPED_TRACE("f=" + std::to_string(f) +
                         " drain_iters=" + std::to_string(iters));
            core::System victim(cfg, prog, c.threads);
            auto vr =
                victim.runWithDoubleFailureDuringDrain(fail_at, iters);
            ASSERT_FALSE(vr.completed);
            ASSERT_TRUE(victim.crashed());
            expectOracleClean(victim, "double-failure victim");

            // The interrupted drain must be invisible: the post-crash
            // PM image matches the single-failure image exactly.
            auto diffs = victim.pmImage().diffInRange(
                single.pmImage(), 0, ~static_cast<Addr>(0));
            EXPECT_TRUE(diffs.empty())
                << "double-failure PM image diverges from "
                   "single-failure at 0x"
                << std::hex << (diffs.empty() ? 0 : diffs[0]);

            auto rec = core::System::recover(
                cfg, prog, c.threads, victim.pmImage(), lock_addrs);
            auto rr = rec->run();
            ASSERT_TRUE(rr.completed);
            expectOracleClean(*rec, "post-double-failure recovery");
            expectAppStateEqual(rec->pmImage(), golden.pmImage(),
                                c.threads, 32 * 1024, "double-drain");
        }
    }
}

TEST(CrashRecovery, CrashAtCycleZeroRestartsCleanly)
{
    setLogQuiet(true);
    const CrashCase c{"st-zero", 1, false, false, 64};
    compiler::LightWspCompiler comp;

    auto wg = buildWorkload(c);
    auto prog = comp.compile(std::move(wg.module));
    core::SystemConfig cfg = testConfig(1);

    core::System golden(cfg, prog, 1);
    auto gr = golden.run();
    ASSERT_TRUE(gr.completed);

    core::System victim(cfg, prog, 1);
    auto vr = victim.runWithPowerFailure(0);
    ASSERT_FALSE(vr.completed);

    auto recovered =
        core::System::recover(cfg, prog, 1, victim.pmImage(), {});
    auto rr = recovered->run();
    ASSERT_TRUE(rr.completed);
    expectAppStateEqual(recovered->pmImage(), golden.pmImage(), 1,
                        32 * 1024, "from-zero");
}
