/**
 * @file
 * Unit tests for the common substrate: RNG determinism, statistics,
 * integer math, logging and unit conversions.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"

using namespace lwsp;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        auto v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceZeroAndOne)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(IntMath, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(96));
}

TEST(IntMath, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
    EXPECT_THROW(floorLog2(0), PanicError);
}

TEST(IntMath, Alignment)
{
    EXPECT_EQ(alignDown(0x12345, 64), 0x12340u);
    EXPECT_EQ(alignUp(0x12345, 64), 0x12380u);
    EXPECT_EQ(alignDown(0x100, 64), 0x100u);
    EXPECT_EQ(alignUp(0x100, 64), 0x100u);
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
}

TEST(Types, NsToCycles)
{
    EXPECT_EQ(nsToCycles(20.0), 40u);   // 20 ns @ 2 GHz
    EXPECT_EQ(nsToCycles(0.99), 2u);    // CAM search rounds up
    EXPECT_EQ(nsToCycles(175.0), 350u); // PM read
}

TEST(Types, BandwidthToCycles)
{
    // 8B at 4 GB/s = 2 ns = 4 cycles at 2 GHz.
    EXPECT_EQ(bandwidthToCyclesPerGranule(4.0), 4u);
    EXPECT_EQ(bandwidthToCyclesPerGranule(2.0), 8u);
    EXPECT_EQ(bandwidthToCyclesPerGranule(1.0), 16u);
    EXPECT_GE(bandwidthToCyclesPerGranule(1000.0), 1u);  // floor of 1
}

TEST(Logging, PanicAndFatalThrow)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
    EXPECT_THROW(fatal("bad config"), FatalError);
    try {
        panic("value=", 7);
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("value=7"),
                  std::string::npos);
    }
}

TEST(Stats, ScalarBasics)
{
    stats::Scalar s;
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Stats, AverageTracksMinMaxMean)
{
    stats::Average a;
    a.sample(2);
    a.sample(8);
    a.sample(5);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 8.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, DistributionBuckets)
{
    stats::Distribution d(0, 100, 10);
    d.sample(-5);
    d.sample(5);
    d.sample(15);
    d.sample(95);
    d.sample(150);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[1], 1u);
    EXPECT_EQ(d.buckets()[9], 1u);
    EXPECT_EQ(d.summary().count(), 5u);
    d.reset();
    EXPECT_EQ(d.summary().count(), 0u);
}

TEST(Stats, GeomeanKnownValues)
{
    EXPECT_NEAR(stats::geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(stats::geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    EXPECT_THROW(stats::geomean({}), PanicError);
    EXPECT_THROW(stats::geomean({1.0, -1.0}), PanicError);
}

TEST(Stats, StatGroupDumpAndLookup)
{
    stats::StatGroup g("mc0");
    stats::Scalar s;
    s += 7;
    g.addScalar("flushes", &s, "WPQ flushes");
    EXPECT_DOUBLE_EQ(g.scalarValue("flushes"), 7.0);
    EXPECT_THROW(g.scalarValue("nope"), PanicError);

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("mc0.flushes 7"), std::string::npos);
    EXPECT_NE(os.str().find("WPQ flushes"), std::string::npos);
}

TEST(Stats, PercentilesNearestRank)
{
    stats::Percentiles p;
    // 1..100: nearest-rank pX is exactly X for this population.
    for (int i = 1; i <= 100; ++i)
        p.sample(i);
    EXPECT_DOUBLE_EQ(p.p50(), 50.0);
    EXPECT_DOUBLE_EQ(p.p90(), 90.0);
    EXPECT_DOUBLE_EQ(p.p99(), 99.0);
    EXPECT_DOUBLE_EQ(p.p999(), 100.0); // ceil(0.999*100)=100
    EXPECT_DOUBLE_EQ(p.max(), 100.0);
    EXPECT_DOUBLE_EQ(p.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.percentile(1.0), 100.0);
    EXPECT_EQ(p.count(), 100u);
    EXPECT_NEAR(p.mean(), 50.5, 1e-12);
}

TEST(Stats, PercentilesInsertionOrderIrrelevant)
{
    stats::Percentiles fwd, rev;
    for (int i = 0; i < 1000; ++i)
        fwd.sample(i);
    for (int i = 999; i >= 0; --i)
        rev.sample(i);
    EXPECT_DOUBLE_EQ(fwd.p50(), rev.p50());
    EXPECT_DOUBLE_EQ(fwd.p99(), rev.p99());
    EXPECT_DOUBLE_EQ(fwd.p999(), rev.p999());
    EXPECT_DOUBLE_EQ(fwd.max(), rev.max());
}

TEST(Stats, PercentilesEmptyAndSampleAfterQuery)
{
    stats::Percentiles p;
    EXPECT_DOUBLE_EQ(p.p50(), 0.0);
    EXPECT_DOUBLE_EQ(p.max(), 0.0);
    EXPECT_EQ(p.count(), 0u);

    p.sample(10);
    EXPECT_DOUBLE_EQ(p.p50(), 10.0); // triggers the lazy sort
    p.sample(1);                     // must invalidate sorted state
    EXPECT_DOUBLE_EQ(p.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.max(), 10.0);
    p.reset();
    EXPECT_EQ(p.count(), 0u);
    EXPECT_DOUBLE_EQ(p.p99(), 0.0);
}

TEST(Stats, PercentilesHeavyTailPopulation)
{
    // 989 fast samples + 11 slow ones: under nearest-rank, the p99
    // sample (rank ceil(0.99*1000) = 990) is the first slow one.
    stats::Percentiles p;
    for (int i = 0; i < 989; ++i)
        p.sample(100);
    for (int i = 0; i < 11; ++i)
        p.sample(10000 + i);
    EXPECT_DOUBLE_EQ(p.p50(), 100.0);
    EXPECT_DOUBLE_EQ(p.p99(), 10000.0);
    EXPECT_DOUBLE_EQ(p.p999(), 10009.0);
    EXPECT_DOUBLE_EQ(p.max(), 10010.0);
}

TEST(Stats, PercentilesInStatGroupDumps)
{
    stats::StatGroup g("serve");
    stats::Percentiles p;
    for (int i = 1; i <= 10; ++i)
        p.sample(i);
    g.addPercentiles("latency", &p, "request latency");

    std::ostringstream txt;
    g.dump(txt);
    EXPECT_NE(txt.str().find("serve.latency.p50 5"), std::string::npos);
    EXPECT_NE(txt.str().find("serve.latency.p999 10"), std::string::npos);
    EXPECT_NE(txt.str().find("serve.latency.count 10"), std::string::npos);

    std::ostringstream js;
    g.dumpJson(js);
    EXPECT_NE(js.str().find("\"latency\":{\"p50\":5"), std::string::npos);
    EXPECT_NE(js.str().find("\"count\":10}"), std::string::npos);
}
