/**
 * @file
 * Memory substrate tests: functional image, set-associative cache with
 * LRU and the buffer-snooping victim policies.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/mem_image.hh"

using namespace lwsp;
using namespace lwsp::mem;

// ---- MemImage -----------------------------------------------------------

TEST(MemImage, ReadWriteRoundTrip)
{
    MemImage m;
    EXPECT_EQ(m.read(0x1000), 0u);  // untouched reads as zero
    m.write(0x1000, 0xdeadbeef);
    EXPECT_EQ(m.read(0x1000), 0xdeadbeefu);
    m.write(0x1000, 1);
    EXPECT_EQ(m.read(0x1000), 1u);
}

TEST(MemImage, UnalignedAccessPanics)
{
    MemImage m;
    EXPECT_THROW(m.read(0x1001), PanicError);
    EXPECT_THROW(m.write(0x1004, 1), PanicError);
}

TEST(MemImage, CloneIsDeep)
{
    MemImage a;
    a.write(0x2000, 7);
    MemImage b = a.clone();
    b.write(0x2000, 9);
    EXPECT_EQ(a.read(0x2000), 7u);
    EXPECT_EQ(b.read(0x2000), 9u);
}

TEST(MemImage, DiffFindsBothDirections)
{
    MemImage a, b;
    a.write(0x1000, 1);       // only in a
    b.write(0x555000, 2);     // only in b (different page)
    a.write(0x3000, 3);
    b.write(0x3000, 4);       // differs
    auto diffs = a.diff(b, 100);
    EXPECT_EQ(diffs.size(), 3u);
}

TEST(MemImage, DiffInRangeFilters)
{
    MemImage a, b;
    a.write(0x1000, 1);
    a.write(0x9000, 2);
    auto diffs = a.diffInRange(b, 0x8000, 0xa000);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_EQ(diffs[0], 0x9000u);
}

TEST(MemImage, EqualImagesHaveNoDiff)
{
    MemImage a;
    for (Addr addr = 0; addr < 4096; addr += 8)
        a.write(0x7000 + addr, addr);
    MemImage b = a.clone();
    EXPECT_TRUE(a.diff(b).empty());
}

// ---- Cache -----------------------------------------------------------------

namespace {

CacheConfig
smallCache(unsigned assoc = 2)
{
    CacheConfig cfg;
    cfg.sizeBytes = 1024;  // 16 lines
    cfg.assoc = assoc;
    cfg.latency = 4;
    return cfg;
}

} // namespace

TEST(Cache, HitAfterFill)
{
    Cache c("t", smallCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1038, false).hit);  // same 64B line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictsOldest)
{
    Cache c("t", smallCache(2));
    // Set has 2 ways; three conflicting lines (set stride = 8 lines).
    Addr a = 0x0000, b = 0x0200, d = 0x0400;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);    // a most recent
    c.access(d, false);    // evicts b
    EXPECT_TRUE(c.present(a));
    EXPECT_FALSE(c.present(b));
    EXPECT_TRUE(c.present(d));
}

TEST(Cache, DirtyEvictionReported)
{
    Cache c("t", smallCache(1));
    auto r1 = c.access(0x0000, true);
    EXPECT_FALSE(r1.evictedDirty);
    auto r2 = c.access(0x0400, false);  // conflicts, evicts dirty line
    EXPECT_TRUE(r2.evictedDirty);
    EXPECT_EQ(r2.evictedLine, 0x0000u);
}

TEST(Cache, InvalidateDropsLine)
{
    Cache c("t", smallCache());
    c.access(0x3000, true);
    EXPECT_TRUE(c.present(0x3000));
    c.invalidate(0x3000);
    EXPECT_FALSE(c.present(0x3000));
    c.access(0x3000, false);
    c.invalidateAll();
    EXPECT_FALSE(c.present(0x3000));
}

TEST(Cache, FullPolicyDivertsConflictingVictim)
{
    Cache c("t", smallCache(2));
    Addr protected_line = 0x0000;
    c.setEvictionFilter(VictimPolicy::Full, [&](Addr line) {
        return line != protected_line;
    });
    c.access(0x0000, true);   // dirty, protected
    c.access(0x0200, true);   // dirty
    auto r = c.access(0x0400, false);  // must not evict 0x0000
    EXPECT_FALSE(r.blocked);
    EXPECT_TRUE(r.victimDiverted);
    EXPECT_TRUE(c.present(protected_line));
    EXPECT_FALSE(c.present(0x0200));
    EXPECT_GE(c.bufferConflicts(), 1u);
    EXPECT_EQ(c.divertedVictims(), 1u);
}

TEST(Cache, ZeroPolicyBlocksOnConflict)
{
    Cache c("t", smallCache(2));
    c.setEvictionFilter(VictimPolicy::Zero, [](Addr) { return false; });
    c.access(0x0000, true);
    c.access(0x0200, true);
    auto r = c.access(0x0400, false);
    EXPECT_TRUE(r.blocked);
    EXPECT_FALSE(c.present(0x0400));
}

TEST(Cache, ZeroPolicyOnlyBlocksDirtyVictims)
{
    Cache c("t", smallCache(2));
    c.setEvictionFilter(VictimPolicy::Zero, [](Addr) { return false; });
    c.access(0x0000, false);  // clean
    c.access(0x0200, false);  // clean
    auto r = c.access(0x0400, false);  // clean victims evict freely
    EXPECT_FALSE(r.blocked);
}

TEST(Cache, HalfPolicyScansHalfTheWays)
{
    Cache c("t", smallCache(4));
    // All four ways dirty and vetoed: Half scans 2, fails -> blocked.
    c.setEvictionFilter(VictimPolicy::Half, [](Addr) { return false; });
    for (Addr a : {0x0000, 0x0400, 0x0800, 0x0c00})
        c.access(a, true);
    auto r = c.access(0x1000, false);
    EXPECT_TRUE(r.blocked);
}

TEST(Cache, NonePolicyIgnoresFilter)
{
    Cache c("t", smallCache(2));
    c.setEvictionFilter(VictimPolicy::None, [](Addr) { return false; });
    c.access(0x0000, true);
    c.access(0x0200, true);
    auto r = c.access(0x0400, false);
    EXPECT_FALSE(r.blocked);
    EXPECT_EQ(c.bufferConflicts(), 0u);
}

TEST(Cache, MissRateAndReset)
{
    Cache c("t", smallCache());
    c.access(0x0000, false);
    c.access(0x0000, false);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
    c.resetStats();
    EXPECT_EQ(c.hits() + c.misses(), 0u);
}

TEST(Cache, RejectsBadGeometry)
{
    CacheConfig cfg;
    cfg.sizeBytes = 1000;  // not divisible into sets
    cfg.assoc = 3;
    EXPECT_THROW(Cache("bad", cfg), PanicError);
}
