/**
 * @file
 * Telemetry subsystem tests: binary round-trip, Perfetto JSON schema
 * validation (with a small self-contained JSON parser), category
 * filtering at both the sink and exporter layers, ring-buffer wrap,
 * golden/deterministic traces on a tiny workload, the zero-overhead
 * A/B contract (tracing off leaves cycle counts untouched — and
 * tracing ON does too, since the sink is off the timed path), the
 * fuzz-replay trace/oracle cross-check and the stats registry's JSON
 * dump.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "compiler/compiler.hh"
#include "core/system.hh"
#include "fuzz/campaign.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "trace/export.hh"
#include "trace/sink.hh"
#include "workloads/generator.hh"

using namespace lwsp;
using namespace lwsp::trace;

namespace {

// ---- Minimal JSON syntax checker ------------------------------------------
// Recursive-descent validator for the exporters' output: verifies the
// document is one complete, well-formed JSON value (objects, arrays,
// strings with escapes, numbers, literals) with nothing trailing.

class JsonChecker
{
  public:
    explicit JsonChecker(std::string s) : s_(std::move(s)) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return i_ == s_.size();
    }

  private:
    void
    skipWs()
    {
        while (i_ < s_.size() &&
               (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
                s_[i_] == '\r')) {
            ++i_;
        }
    }

    bool
    lit(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (s_.compare(i_, n, word) != 0)
            return false;
        i_ += n;
        return true;
    }

    bool
    string()
    {
        if (i_ >= s_.size() || s_[i_] != '"')
            return false;
        ++i_;
        while (i_ < s_.size() && s_[i_] != '"') {
            if (s_[i_] == '\\') {
                ++i_;
                if (i_ >= s_.size())
                    return false;
            }
            ++i_;
        }
        if (i_ >= s_.size())
            return false;
        ++i_; // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = i_;
        if (i_ < s_.size() && s_[i_] == '-')
            ++i_;
        while (i_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
                s_[i_] == '+' || s_[i_] == '-')) {
            ++i_;
        }
        return i_ > start;
    }

    bool
    object()
    {
        ++i_; // '{'
        skipWs();
        if (i_ < s_.size() && s_[i_] == '}') {
            ++i_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (i_ >= s_.size() || s_[i_] != ':')
                return false;
            ++i_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (i_ < s_.size() && s_[i_] == ',') {
                ++i_;
                continue;
            }
            break;
        }
        if (i_ >= s_.size() || s_[i_] != '}')
            return false;
        ++i_;
        return true;
    }

    bool
    array()
    {
        ++i_; // '['
        skipWs();
        if (i_ < s_.size() && s_[i_] == ']') {
            ++i_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (i_ < s_.size() && s_[i_] == ',') {
                ++i_;
                continue;
            }
            break;
        }
        if (i_ >= s_.size() || s_[i_] != ']')
            return false;
        ++i_;
        return true;
    }

    bool
    value()
    {
        if (i_ >= s_.size())
            return false;
        char c = s_[i_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return lit("true");
        if (c == 'f')
            return lit("false");
        if (c == 'n')
            return lit("null");
        return number();
    }

    std::string s_;
    std::size_t i_ = 0;
};

std::vector<Event>
syntheticEvents()
{
    std::vector<Event> ev;
    ev.push_back({0, EventType::RegionBegin, 0, 0, 1, 0, 0, 0});
    ev.push_back({10, EventType::WpqEnqueue, 1, 2, 3, 0xdeadbeef,
                  0x1122334455667788ull, 7});
    ev.push_back({11, EventType::WpqRelease, 1, 0, 3, 0x40, 9,
                  packReleaseAux(12, 3)});
    ev.push_back({20, EventType::RegionClose, 2, 5, 4, 0, 0, 100});
    ev.push_back({25, EventType::BoundaryAck, 0, 0, 4, 0, 0, 1});
    ev.push_back({30, EventType::CacheWriteback, -1, 0, invalidRegion,
                  0xffff'ffff'ffff'ffc0ull, 0, 0});
    ev.push_back({90, EventType::PowerFailure, -1, 0, 0, 0, 0, 2});
    ev.push_back({91, EventType::CtxSwitch, 3, 9, 0, 0, 0, 4});
    return ev;
}

/** A tiny deterministic profile (mirrors test_system.cc's). */
workloads::WorkloadProfile
tinyProfile(unsigned threads)
{
    workloads::WorkloadProfile p;
    p.name = "tiny-trace";
    p.suite = "TEST";
    p.threads = threads;
    p.footprintBytes = 64 * 1024;
    p.hotBytes = 8 * 1024;
    p.locality = 0.7;
    p.branchMissRate = 0.0;
    workloads::PhaseSpec ph;
    ph.loads = 2;
    ph.stores = 2;
    ph.alus = 4;
    ph.trip = 64;
    ph.reps = 2;
    ph.pattern = workloads::PhaseSpec::Pattern::Random;
    p.phases.push_back(ph);
    return p;
}

struct TracedRun
{
    core::RunResult result;
    std::vector<Event> events;
};

TracedRun
runTiny(unsigned threads, bool traced,
        std::uint32_t mask = allCategories)
{
    setLogQuiet(true);
    auto prof = tinyProfile(threads);
    auto w = workloads::generate(prof);
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(w.module));
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.traceEnabled = traced;
    cfg.traceMask = mask;
    cfg.applySchemeDefaults();
    core::System sys(cfg, prog, threads);
    TracedRun out;
    out.result = sys.run();
    if (const auto *sink = sys.traceSink())
        out.events = sink->snapshot();
    return out;
}

bool
sameEvent(const Event &a, const Event &b)
{
    return a.tick == b.tick && a.type == b.type && a.unit == b.unit &&
           a.thread == b.thread && a.region == b.region &&
           a.addr == b.addr && a.value == b.value && a.aux == b.aux;
}

} // namespace

// ---- Binary format ---------------------------------------------------------

TEST(TraceBinary, RoundTripPreservesEveryField)
{
    auto ev = syntheticEvents();
    std::stringstream ss;
    ASSERT_TRUE(writeBinary(ss, ev));

    std::vector<Event> back;
    std::string err;
    ASSERT_TRUE(readBinary(ss, back, err)) << err;
    ASSERT_EQ(back.size(), ev.size());
    for (std::size_t i = 0; i < ev.size(); ++i)
        EXPECT_TRUE(sameEvent(ev[i], back[i])) << "event " << i;

    // The packed aux survives intact.
    EXPECT_EQ(releaseKind(back[2].aux), 3);
    EXPECT_EQ(releaseOccupancy(back[2].aux), 12u);
}

TEST(TraceBinary, RejectsBadMagicAndTruncation)
{
    auto ev = syntheticEvents();
    std::stringstream ss;
    ASSERT_TRUE(writeBinary(ss, ev));
    std::string bytes = ss.str();

    std::vector<Event> out;
    std::string err;

    std::string corrupt = bytes;
    corrupt[0] = 'X';
    std::stringstream c1(corrupt);
    EXPECT_FALSE(readBinary(c1, out, err));
    EXPECT_FALSE(err.empty());

    std::stringstream c2(bytes.substr(0, bytes.size() - 13));
    EXPECT_FALSE(readBinary(c2, out, err));
    EXPECT_FALSE(err.empty());
}

TEST(TraceBinary, FileRoundTrip)
{
    auto ev = syntheticEvents();
    std::string path = testing::TempDir() + "lwsp_trace_rt.trc";
    ASSERT_TRUE(writeBinaryFile(path, ev));
    std::vector<Event> back;
    std::string err;
    ASSERT_TRUE(readBinaryFile(path, back, err)) << err;
    ASSERT_EQ(back.size(), ev.size());
    for (std::size_t i = 0; i < ev.size(); ++i)
        EXPECT_TRUE(sameEvent(ev[i], back[i]));
    std::remove(path.c_str());
}

// ---- Sink ------------------------------------------------------------------

TEST(TraceSinkTest, RingWrapKeepsNewestOldestFirst)
{
    TraceSink sink(8);
    for (Tick t = 0; t < 20; ++t)
        sink.emit({t, EventType::RegionBegin, 0, 0, 1, 0, 0, 0});
    EXPECT_TRUE(sink.wrapped());
    EXPECT_EQ(sink.emitted(), 20u);
    EXPECT_EQ(sink.size(), 8u);
    auto snap = sink.snapshot();
    ASSERT_EQ(snap.size(), 8u);
    for (std::size_t i = 0; i < snap.size(); ++i)
        EXPECT_EQ(snap[i].tick, static_cast<Tick>(12 + i));
}

TEST(TraceSinkTest, RuntimeMaskFiltersCategories)
{
    TraceSink sink(64, categoryBit(Category::Region));
    sink.emit({1, EventType::RegionBegin, 0, 0, 1, 0, 0, 0});
    sink.emit({2, EventType::WpqEnqueue, 0, 0, 1, 0, 0, 0});
    sink.emit({3, EventType::PowerFailure, -1, 0, 0, 0, 0, 0});
    sink.emit({4, EventType::RegionClose, 0, 0, 1, 0, 0, 0});
    auto snap = sink.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].type, EventType::RegionBegin);
    EXPECT_EQ(snap[1].type, EventType::RegionClose);
}

TEST(TraceSinkTest, FilterByMaskOnVectors)
{
    auto ev = syntheticEvents();
    auto wpq = filterByMask(ev, categoryBit(Category::Wpq));
    ASSERT_EQ(wpq.size(), 2u);
    EXPECT_EQ(wpq[0].type, EventType::WpqEnqueue);
    EXPECT_EQ(wpq[1].type, EventType::WpqRelease);

    auto both = filterByMask(ev, categoryBit(Category::Wpq) |
                                     categoryBit(Category::Power));
    EXPECT_EQ(both.size(), 3u);
    EXPECT_TRUE(filterByMask(ev, 0).empty());
}

TEST(TraceSinkTest, EmitIfIsNullSafe)
{
    // The hook-site helper must be callable with a null sink (the
    // tracing-off configuration) without any effect.
    emitIf<Category::Region>(nullptr,
                             {0, EventType::RegionBegin, 0, 0, 1, 0, 0,
                              0});
    TraceSink sink(4);
    emitIf<Category::Region>(&sink, {0, EventType::RegionBegin, 0, 0, 1,
                                     0, 0, 0});
    EXPECT_EQ(sink.emitted(), 1u);
}

// ---- Category names --------------------------------------------------------

TEST(TraceEvents, NamesAndParseRoundTrip)
{
    for (Category c :
         {Category::Region, Category::Boundary, Category::Wpq,
          Category::Cache, Category::Checkpoint, Category::Power,
          Category::Sched}) {
        EXPECT_EQ(parseCategory(categoryName(c)), categoryBit(c));
    }
    EXPECT_EQ(parseCategory("no-such-category"), 0u);
    for (std::uint8_t t = 0; t < numEventTypes; ++t) {
        const char *n = eventTypeName(static_cast<EventType>(t));
        ASSERT_NE(n, nullptr);
        EXPECT_GT(std::string(n).size(), 0u);
    }
}

// ---- Traced simulation -----------------------------------------------------

TEST(TraceSystem, TracedRunIsDeterministic)
{
    auto a = runTiny(2, true);
    auto b = runTiny(2, true);
    ASSERT_FALSE(a.events.empty());
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i)
        EXPECT_TRUE(sameEvent(a.events[i], b.events[i])) << "event " << i;
}

TEST(TraceSystem, GoldenTraceStructure)
{
    auto run = runTiny(1, true);
    const auto &ev = run.events;
    ASSERT_FALSE(ev.empty());

    // Chronological, starting with the initial region of thread 0.
    EXPECT_EQ(ev.front().type, EventType::RegionBegin);
    EXPECT_EQ(ev.front().tick, 0u);
    EXPECT_EQ(ev.front().thread, 0u);
    for (std::size_t i = 1; i < ev.size(); ++i)
        EXPECT_LE(ev[i - 1].tick, ev[i].tick) << "at event " << i;

    auto sum = summarize(ev);
    EXPECT_EQ(sum.events, ev.size());
    EXPECT_EQ(sum.numCores, 1u);

    // Every boundary that closed a region was broadcast, and begins can
    // exceed closes by at most the still-open region per thread.
    auto count = [&](EventType t) {
        return static_cast<std::uint64_t>(
            sum.perType[static_cast<std::uint8_t>(t)]);
    };
    EXPECT_EQ(count(EventType::RegionClose),
              count(EventType::BoundaryBcastSend));
    EXPECT_GE(count(EventType::RegionBegin), count(EventType::RegionClose));
    EXPECT_LE(count(EventType::RegionBegin),
              count(EventType::RegionClose) + 1);
    EXPECT_GT(count(EventType::WpqEnqueue), 0u);
    // Releases cover every enqueue on a completed run (drain finished).
    EXPECT_GE(count(EventType::WpqRelease), count(EventType::WpqEnqueue));

    // Region persists advance monotonically per MC.
    std::map<std::int32_t, RegionId> lastPersist;
    for (const auto &e : ev) {
        if (e.type != EventType::RegionPersist)
            continue;
        auto it = lastPersist.find(e.unit);
        if (it != lastPersist.end()) {
            EXPECT_GT(e.region, it->second);
        }
        lastPersist[e.unit] = e.region;
    }
    EXPECT_FALSE(lastPersist.empty());
}

TEST(TraceSystem, RuntimeMaskLimitsSystemTrace)
{
    auto all = runTiny(1, true);
    auto reg = runTiny(1, true, categoryBit(Category::Region));
    ASSERT_FALSE(reg.events.empty());
    for (const auto &e : reg.events)
        EXPECT_EQ(categoryOf(e.type), Category::Region);
    EXPECT_LT(reg.events.size(), all.events.size());
    EXPECT_EQ(reg.events.size(),
              filterByMask(all.events,
                           categoryBit(Category::Region)).size());
}

TEST(TraceSystem, TracingDoesNotPerturbTiming)
{
    // The acceptance contract: arming the sink must not change a single
    // cycle (the sink sits off the timed path), and tracing off must
    // behave identically to the pre-telemetry simulator.
    auto off = runTiny(2, false);
    auto on = runTiny(2, true);
    EXPECT_EQ(off.result.cycles, on.result.cycles);
    EXPECT_EQ(off.result.instsRetired, on.result.instsRetired);
    EXPECT_EQ(off.result.storesRetired, on.result.storesRetired);
    EXPECT_EQ(off.result.boundaries, on.result.boundaries);
    EXPECT_EQ(off.result.wpqFlushedEntries, on.result.wpqFlushedEntries);
    EXPECT_TRUE(off.events.empty());
    EXPECT_FALSE(on.events.empty());
}

// ---- Perfetto export -------------------------------------------------------

TEST(TracePerfetto, JsonIsWellFormedAndShaped)
{
    auto run = runTiny(2, true);
    std::ostringstream os;
    writePerfetto(os, run.events);
    std::string json = os.str();

    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json.substr(0, 400);

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    // Span pairs for regions and at least one counter track.
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("wpq_occupancy"), std::string::npos);

    // B/E balance per tid: depth never goes negative and ends at >= 0.
    std::map<std::string, long> depth;
    std::size_t pos = 0;
    while ((pos = json.find("\"ph\":\"", pos)) != std::string::npos) {
        char ph = json[pos + 6];
        std::size_t tid = json.find("\"tid\":", pos);
        std::size_t end = json.find_first_of(",}", tid + 6);
        std::string key = json.substr(tid + 6, end - tid - 6);
        if (ph == 'B')
            ++depth[key];
        else if (ph == 'E') {
            --depth[key];
            EXPECT_GE(depth[key], 0) << "unbalanced E on tid " << key;
        }
        ++pos;
    }
}

TEST(TracePerfetto, SyntheticEventsExportCleanly)
{
    std::ostringstream os;
    writePerfetto(os, syntheticEvents());
    JsonChecker checker(os.str());
    EXPECT_TRUE(checker.valid());

    std::ostringstream empty;
    writePerfetto(empty, {});
    JsonChecker emptyChecker(empty.str());
    EXPECT_TRUE(emptyChecker.valid());
}

// ---- Fuzz replay cross-check ----------------------------------------------

TEST(TraceFuzz, VictimTraceMatchesOracleCommitView)
{
    setLogQuiet(true);
    fuzz::CaseSpec spec;
    spec.source = fuzz::CaseSpec::Source::Workload;
    spec.seed = 3;
    spec.mode = fuzz::CrashMode::Single;
    spec.crashAt = 1500;

    fuzz::CampaignOptions opt;
    opt.captureTrace = true;
    auto res = fuzz::runCampaign(spec, opt);
    ASSERT_TRUE(res.passed) << res.failure;
    ASSERT_FALSE(res.victimTrace.empty());
    ASSERT_FALSE(res.victimLastCommit.empty());

    // The newest RegionPersist per MC in the trace must agree with the
    // LRPO oracle's committed-prefix view of the same run.
    std::map<std::int32_t, RegionId> lastPersist;
    for (const auto &e : res.victimTrace) {
        if (e.type == EventType::RegionPersist)
            lastPersist[e.unit] = e.region;
    }
    for (std::size_t mc = 0; mc < res.victimLastCommit.size(); ++mc) {
        auto it = lastPersist.find(static_cast<std::int32_t>(mc));
        RegionId traced = it == lastPersist.end() ? 0 : it->second;
        EXPECT_EQ(traced, res.victimLastCommit[mc]) << "mc " << mc;
    }

    // A mid-run crash leaves exactly one power-failure marker.
    auto sum = summarize(res.victimTrace);
    EXPECT_EQ(sum.perType[static_cast<std::uint8_t>(
                  EventType::PowerFailure)],
              1u);
}

// ---- Stats registry --------------------------------------------------------

TEST(TraceStats, RegistryJsonDumpIsValidAndComplete)
{
    setLogQuiet(true);
    auto prof = tinyProfile(2);
    auto w = workloads::generate(prof);
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(w.module));
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.applySchemeDefaults();
    core::System sys(cfg, prog, 2);
    sys.run();

    stats::Registry reg;
    sys.registerStats(reg);
    EXPECT_GT(reg.numGroups(), 4u);

    std::ostringstream os;
    reg.dumpJson(os);
    std::string json = os.str();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json.substr(0, 400);

    for (const char *group : {"\"core0\"", "\"mc0\"", "\"mc0.wpq\"",
                              "\"noc\"", "\"system\""}) {
        EXPECT_NE(json.find(group), std::string::npos) << group;
    }
    EXPECT_NE(json.find("instsRetired"), std::string::npos);
    EXPECT_NE(json.find("wpqOccupancy"), std::string::npos);
    EXPECT_NE(json.find("bcastLatency"), std::string::npos);

    // Callback-backed stats agree with the component counters.
    EXPECT_EQ(reg.group("system").funcValue("cycles"),
              static_cast<double>(sys.now()));
}

// ---- Run reports -----------------------------------------------------------

TEST(TraceReport, RunReportJsonIsValidAndVersioned)
{
    setLogQuiet(true);
    harness::Runner runner;
    harness::SweepExecutor exec(1);
    harness::RunSpec spec;
    spec.workload = "rb";
    spec.scheme = core::Scheme::LightWsp;
    exec.runAll(runner, {spec});
    ASSERT_EQ(exec.runRecords().size(), 1u);

    std::string path = testing::TempDir() + "lwsp_run_report.json";
    harness::writeRunReports(path, "test", exec.runRecords(),
                             exec.totalStats());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::string json = ss.str();
    std::remove(path.c_str());

    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json.substr(0, 400);
    EXPECT_NE(json.find("\"schema\":\"lwsp-run-report-v1.2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"workload\":\"rb\""), std::string::npos);
    EXPECT_NE(json.find("\"cycles\""), std::string::npos);
    EXPECT_NE(json.find("\"compile\""), std::string::npos);
    EXPECT_NE(json.find("\"cycles_percentiles\""), std::string::npos);
    EXPECT_NE(json.find("\"p999\""), std::string::npos);
    // v1.2: recovery lineage on every record ("none" for fresh boots).
    EXPECT_NE(json.find("\"recovery_outcome\":\"none\""),
              std::string::npos);
    EXPECT_NE(json.find("\"failures_survived\":0"), std::string::npos);
}
