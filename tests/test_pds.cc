/**
 * @file
 * Persistent-data-structure library tests: spec/IR round-trips, shadow
 * equivalence of the emitted programs against PdsModel, crash-recovery
 * matrices across every scheme (including the pmtx software-transaction
 * baseline), seeded-bug negatives proving the semantic oracles have
 * teeth, engine A/B identity and static-checker coverage of the pmtx
 * artifacts.
 */

#include <gtest/gtest.h>

#include "analysis/wsp_checker.hh"
#include "common/logging.hh"
#include "core/system.hh"
#include "ir/text_io.hh"
#include "ir/verifier.hh"
#include "pds/pds.hh"

using namespace lwsp;
using pds::Kind;
using pds::PdsScheme;
using pds::PdsSpec;

namespace {

PdsSpec
smallSpec(Kind k, unsigned ops = 48)
{
    PdsSpec s;
    s.kind = k;
    s.sizeClass = 0;
    s.numOps = ops;
    s.mix = 0;
    s.seed = 7;
    return s;
}

/** Materialize a heap window as words (MemImage::diffInRange shares an
 *  internal diff cap with out-of-range addresses — never use it as an
 *  equality oracle across images whose non-heap state differs). */
std::vector<std::uint64_t>
heapWords(const mem::MemImage &img, Addr lo, Addr hi)
{
    std::vector<std::uint64_t> out;
    out.reserve((hi - lo) / 8);
    for (Addr a = lo; a < hi; a += 8)
        out.push_back(img.read(a));
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// Spec and module round-trips.

TEST(PdsSpec, ToStringParseFixpoint)
{
    const char *texts[] = {
        "log,sz=0,ops=48,mix=1,pseed=3",
        "hash,sz=1,ops=128,mix=0,pseed=1",
        "alloc,sz=2,ops=200,mix=2,pseed=9,tx=8",
        "hash,sz=0,ops=16,mix=2,pseed=5,tx=1,broken=2",
    };
    for (const char *t : texts) {
        PdsSpec s;
        std::string err;
        ASSERT_TRUE(PdsSpec::parse(t, s, err)) << t << ": " << err;
        EXPECT_EQ(s.toString(), t);
        PdsSpec s2;
        ASSERT_TRUE(PdsSpec::parse(s.toString(), s2, err));
        EXPECT_EQ(s2.toString(), s.toString());
    }

    PdsSpec bad;
    std::string err;
    EXPECT_FALSE(PdsSpec::parse("hash,sz=3,ops=1,mix=0,pseed=1", bad, err));
    EXPECT_FALSE(PdsSpec::parse("tree,sz=1,ops=1,mix=0,pseed=1", bad, err));
    EXPECT_FALSE(PdsSpec::parse("hash,sz=1,ops=8,mix=0,pseed=1,tx=3",
                                bad, err));
}

TEST(PdsBuilder, ModuleTextRoundTrip)
{
    setLogQuiet(true);
    for (Kind k : {Kind::Log, Kind::Hash, Kind::Alloc}) {
        for (bool pmtx : {false, true}) {
            SCOPED_TRACE(std::string(pds::kindName(k)) +
                         (pmtx ? "/pmtx" : "/plain"));
            auto prog = pds::buildPdsProgram(smallSpec(k), pmtx);
            std::string text = ir::moduleToString(*prog.module);
            auto back = ir::parseModule(text);
            ir::verifyModuleOrDie(*back);
            EXPECT_EQ(ir::moduleToString(*back), text);
        }
    }
}

// ---------------------------------------------------------------------------
// Shadow equivalence: the emitted program and PdsModel are the same
// machine. A clean run's final memory must agree with the model replay
// at every address the model knows about, and the structure walk must
// come back clean.

TEST(PdsShadow, CleanRunMatchesModelAllSchemes)
{
    setLogQuiet(true);
    for (Kind k : {Kind::Log, Kind::Hash, Kind::Alloc}) {
        PdsSpec spec = smallSpec(k, 96);
        pds::PdsModel model(spec);
        for (unsigned i = 0; i < spec.numOps; ++i)
            model.step();
        ASSERT_EQ(model.opsApplied(), spec.numOps);

        for (PdsScheme s : {PdsScheme::LightWsp, PdsScheme::Capri,
                            PdsScheme::Ppa, PdsScheme::Cwsp,
                            PdsScheme::Pmtx}) {
            SCOPED_TRACE(std::string(pds::kindName(k)) + "/" +
                         pds::pdsSchemeName(s));
            auto prog =
                pds::preparePdsProgram(spec, s, pds::PdsRunMode::Perf);
            auto cfg = pds::makePdsConfig(s, pds::PdsRunMode::Perf);
            core::System sys(cfg, prog, 1);
            auto r = sys.run();
            ASSERT_TRUE(r.completed);

            const mem::MemImage &img = sys.execImage();
            const pds::PdsParams &p = prog.module ? model.params()
                                                  : model.params();
            // Every word below the undo area must match the shadow
            // (the undo area's content is scheme-history, not state).
            for (Addr a = p.base; a < p.undoBase; a += 8) {
                ASSERT_EQ(img.read(a), model.read(a))
                    << "word mismatch at +0x" << std::hex << (a - p.base);
            }
            EXPECT_EQ(pds::checkSemantics(spec, img), "");
        }
    }
}

// ---------------------------------------------------------------------------
// Crash/recovery matrix: every structure under every scheme, power cut
// across the whole execution, recovered run must land in the golden
// state with the structure walk clean; LightWSP victims additionally
// satisfy the store-stream prefix oracle.

namespace {

void
crashMatrixFor(PdsScheme s)
{
    setLogQuiet(true);
    const auto mode = pds::PdsRunMode::Recovery;
    for (Kind k : {Kind::Log, Kind::Hash, Kind::Alloc}) {
        PdsSpec spec = smallSpec(k);
        auto prog = pds::preparePdsProgram(spec, s, mode, 16);
        auto cfg = pds::makePdsConfig(s, mode);
        pds::PdsModel model(spec);
        const pds::PdsParams &p = model.params();

        core::System golden(cfg, prog, 1);
        auto gr = golden.run();
        ASSERT_TRUE(gr.completed);
        auto want = heapWords(golden.execImage(), p.base, p.undoBase);

        bool sawOpenTx = false;
        const double fracs[] = {0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95};
        for (double f : fracs) {
            SCOPED_TRACE(std::string(pds::kindName(k)) + "/" +
                         pds::pdsSchemeName(s) + " f=" +
                         std::to_string(f));
            core::System victim(cfg, prog, 1);
            auto vr = victim.runWithPowerFailure(
                static_cast<Tick>(f * gr.cycles));
            if (vr.completed)
                continue;
            ASSERT_TRUE(victim.crashed());

            if (s == PdsScheme::LightWsp) {
                EXPECT_EQ(pds::checkCrashPrefix(spec, victim.pmImage()),
                          "");
            }
            if (s == PdsScheme::Pmtx &&
                victim.pmImage().read(p.undoCount) != 0) {
                sawOpenTx = true;
            }

            auto rec = core::System::recover(cfg, prog, 1,
                                             victim.pmImage(), {});
            auto rr = rec->run();
            ASSERT_TRUE(rr.completed);

            auto got = heapWords(rec->execImage(), p.base, p.undoBase);
            if (s == PdsScheme::Pmtx) {
                // The served counter is exec-level and monotonic: ops
                // replayed after a rollback re-serve, so it legally
                // overshoots the golden count. Everything else matches.
                std::size_t servedIdx = (p.served - p.base) / 8;
                EXPECT_GE(got[servedIdx], want[servedIdx]);
                got[servedIdx] = want[servedIdx];
            }
            EXPECT_EQ(got, want);
            EXPECT_EQ(pds::checkSemantics(spec, rec->execImage()), "");
        }
        if (s == PdsScheme::Pmtx) {
            // The sweep must actually exercise the rollback path.
            EXPECT_TRUE(sawOpenTx)
                << pds::kindName(k)
                << ": no crash landed inside an open transaction";
        }
    }
}

} // namespace

TEST(PdsCrash, LightWspMatrix) { crashMatrixFor(PdsScheme::LightWsp); }
TEST(PdsCrash, CapriMatrix) { crashMatrixFor(PdsScheme::Capri); }
TEST(PdsCrash, PpaMatrix) { crashMatrixFor(PdsScheme::Ppa); }
TEST(PdsCrash, CwspMatrix) { crashMatrixFor(PdsScheme::Cwsp); }
TEST(PdsCrash, PmtxMatrix) { crashMatrixFor(PdsScheme::Pmtx); }

// ---------------------------------------------------------------------------
// Seeded-bug negatives: the oracles must catch the planted defects, or
// a green fuzz campaign means nothing.

TEST(PdsOracle, SemanticWalkCatchesBrokenVariants)
{
    setLogQuiet(true);
    struct Neg { Kind k; unsigned ops; unsigned mix; };
    // Parameters chosen so the planted bug actually fires: the log bug
    // needs a reclaim pass that keeps a live entry, the hash bug needs
    // one insert, the alloc bug needs a free that is not re-allocated
    // through the same handle later.
    const Neg negs[] = {
        {Kind::Log, 96, 2}, {Kind::Hash, 48, 0}, {Kind::Alloc, 48, 0}};
    for (const Neg &n : negs) {
        SCOPED_TRACE(pds::kindName(n.k));
        PdsSpec spec = smallSpec(n.k, n.ops);
        spec.mix = n.mix;
        spec.broken = 2;
        auto prog = pds::preparePdsProgram(spec, PdsScheme::LightWsp,
                                           pds::PdsRunMode::Perf);
        auto cfg =
            pds::makePdsConfig(PdsScheme::LightWsp, pds::PdsRunMode::Perf);
        core::System sys(cfg, prog, 1);
        ASSERT_TRUE(sys.run().completed);
        std::string verdict = pds::checkSemantics(spec, sys.execImage());
        EXPECT_NE(verdict, "") << "broken=2 variant passed the walk";
    }
}

TEST(PdsOracle, PrefixOracleCatchesEarlyOpsDoneCommit)
{
    setLogQuiet(true);
    // broken=1 commits the op counter before the op's own stores. With a
    // small store threshold the two end up in different regions, so some
    // crash images claim an op whose stores never landed.
    unsigned caught = 0;
    for (Kind k : {Kind::Log, Kind::Hash, Kind::Alloc}) {
        PdsSpec spec = smallSpec(k);
        spec.broken = 1;
        auto prog = pds::preparePdsProgram(spec, PdsScheme::LightWsp,
                                           pds::PdsRunMode::Perf, 8);
        ASSERT_TRUE(prog.stats.thresholdConverged);
        auto cfg =
            pds::makePdsConfig(PdsScheme::LightWsp, pds::PdsRunMode::Perf);
        core::System golden(cfg, prog, 1);
        auto gr = golden.run();
        ASSERT_TRUE(gr.completed);
        for (unsigned i = 1; i < 64; ++i) {
            core::System victim(cfg, prog, 1);
            auto vr =
                victim.runWithPowerFailure(gr.cycles * i / 64);
            if (vr.completed)
                continue;
            if (pds::checkCrashPrefix(spec, victim.pmImage()) != "")
                ++caught;
        }
    }
    EXPECT_GE(caught, 3u)
        << "ordering bug slipped past the prefix oracle";
}

// ---------------------------------------------------------------------------
// Engine A/B: the event-driven and cycle-stepped schedulers must agree
// bit-for-bit on the pds programs, crash runs included.

TEST(PdsEngine, EventAndCycleBitIdentical)
{
    setLogQuiet(true);
    for (Kind k : {Kind::Log, Kind::Hash, Kind::Alloc}) {
        SCOPED_TRACE(pds::kindName(k));
        PdsSpec spec = smallSpec(k);
        auto prog = pds::preparePdsProgram(spec, PdsScheme::LightWsp,
                                           pds::PdsRunMode::Perf);
        auto cfg =
            pds::makePdsConfig(PdsScheme::LightWsp, pds::PdsRunMode::Perf);

        cfg.engine = SimEngine::Event;
        core::System ev(cfg, prog, 1);
        auto er = ev.run();
        ASSERT_TRUE(er.completed);

        cfg.engine = SimEngine::Cycle;
        core::System cy(cfg, prog, 1);
        auto cr = cy.run();
        ASSERT_TRUE(cr.completed);

        EXPECT_EQ(er.cycles, cr.cycles);
        pds::PdsModel model(spec);
        const pds::PdsParams &p = model.params();
        EXPECT_EQ(heapWords(ev.execImage(), p.base,
                            p.base + p.footprintBytes),
                  heapWords(cy.execImage(), p.base,
                            p.base + p.footprintBytes));
    }
}

// ---------------------------------------------------------------------------
// Recovery-latency probe: the serve watch must fire on a recovered
// system, and never before an op actually lands.

TEST(PdsRecoveryProbe, WatchFiresOnFirstServedOp)
{
    setLogQuiet(true);
    PdsSpec spec = smallSpec(Kind::Hash);
    auto prog = pds::preparePdsProgram(spec, PdsScheme::LightWsp,
                                       pds::PdsRunMode::Recovery);
    auto cfg =
        pds::makePdsConfig(PdsScheme::LightWsp, pds::PdsRunMode::Recovery);
    pds::PdsModel model(spec);
    const pds::PdsParams &p = model.params();

    core::System golden(cfg, prog, 1);
    auto gr = golden.run();
    ASSERT_TRUE(gr.completed);

    core::System victim(cfg, prog, 1);
    auto vr = victim.runWithPowerFailure(gr.cycles / 2);
    ASSERT_FALSE(vr.completed);

    auto rec = core::System::recover(cfg, prog, 1, victim.pmImage(), {});
    std::uint64_t servedAtBoot = rec->execImage().read(p.served);
    auto probe = rec->runUntilWordChanges(p.served, servedAtBoot);
    ASSERT_TRUE(probe.served);
    EXPECT_GT(probe.serveTick, 0u);
    EXPECT_GT(rec->execImage().read(p.served), servedAtBoot);
    // The probe stops the run mid-flight; the remainder must still
    // complete from there.
    auto rr = rec->run();
    ASSERT_TRUE(rr.completed);
    EXPECT_EQ(pds::checkSemantics(spec, rec->execImage()), "");
}

// ---------------------------------------------------------------------------
// Static-checker coverage of the pmtx artifacts: compile the undo-log
// build through the LightWSP pipeline and discharge every obligation
// (or record the declared store-bound waiver) — no silent skip.

TEST(PdsStatic, PmtxArtifactsDischargeOrWaive)
{
    setLogQuiet(true);
    for (Kind k : {Kind::Log, Kind::Hash, Kind::Alloc}) {
        SCOPED_TRACE(pds::kindName(k));
        auto built = pds::buildPdsProgram(smallSpec(k), /*pmtx=*/true);
        compiler::CompilerConfig ccfg;
        compiler::LightWspCompiler comp(ccfg);
        auto prog = comp.compile(std::move(built.module));
        auto report = analysis::checkCompiledProgram(prog, ccfg);
        EXPECT_GT(report.boundariesSeen, 0u);
        if (!report.ok()) {
            // Only the declared threshold-nonconvergence waiver is an
            // acceptable residue; anything else is a real finding.
            ASSERT_FALSE(prog.stats.thresholdConverged)
                << report.describe();
            for (const auto &v : report.violations)
                EXPECT_EQ(v.obligation, analysis::Obligation::StoreBound)
                    << v.describe();
        }
    }

    // The plain builds must discharge everything outright.
    for (Kind k : {Kind::Log, Kind::Hash, Kind::Alloc}) {
        SCOPED_TRACE(std::string(pds::kindName(k)) + "/plain");
        auto built = pds::buildPdsProgram(smallSpec(k), /*pmtx=*/false);
        compiler::CompilerConfig ccfg;
        compiler::LightWspCompiler comp(ccfg);
        auto prog = comp.compile(std::move(built.module));
        auto report = analysis::checkCompiledProgram(prog, ccfg);
        EXPECT_TRUE(report.ok()) << report.describe();
    }
}
