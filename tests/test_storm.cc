/**
 * @file
 * Failure-storm resilience tests: the re-entrancy contracts behind
 * System::runWithFailureStorm and the storm fuzz mode.
 *
 *  - FailureSchedule string form round-trips (it rides fuzz replay
 *    specs, so print -> parse -> print must be a fixpoint).
 *  - A drain interrupted at any quiescence boundary is invisible: the
 *    post-drain PM image is bit-identical to an uninterrupted drain's.
 *  - recoverChecked is idempotent — a recovery preamble killed by a
 *    second failure re-validates the same image to the same verdict.
 *  - A failure landing exactly on a checkpoint-epoch commit tick (mined
 *    from the golden run's LRPO oracle) still recovers exactly.
 *  - pmtx: crashing the recovered machine mid-undo-replay leaves the
 *    rollback itself recoverable (absolute old-values, so replaying a
 *    replayed prefix is idempotent).
 *  - Storm chains are engine-independent: the event-driven and
 *    cycle-stepped cores produce bit-identical storm lifetimes.
 *  - One reduced crash-at-every-Nth-cycle-of-recovery matrix case and a
 *    small seeded storm campaign run clean end to end.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "fault/storm.hh"
#include "fuzz/campaign.hh"
#include "fuzz/recovery_matrix.hh"
#include "pds/pds.hh"

using namespace lwsp;

namespace {

pds::PdsSpec
smallSpec(pds::Kind k)
{
    pds::PdsSpec spec;
    spec.kind = k;
    spec.sizeClass = 0;
    spec.numOps = 24;
    spec.mix = 0;
    spec.seed = 5;
    spec.opsPerTx = 2;
    return spec;
}

struct Built
{
    core::SystemConfig cfg;
    compiler::CompiledProgram prog;
    pds::PdsParams params;
};

Built
build(pds::PdsScheme scheme, const pds::PdsSpec &spec)
{
    Built b{pds::makePdsConfig(scheme, pds::PdsRunMode::Recovery),
            pds::preparePdsProgram(spec, scheme,
                                   pds::PdsRunMode::Recovery),
            pds::PdsModel(spec).params()};
    return b;
}

} // namespace

TEST(FailureSchedule, RoundTripIsFixpoint)
{
    for (const char *s :
         {"", "r", "d0", "d3", "x1500", "d1+r+x1500+d0", "r+r+x1",
          "x10+x20+d2+r"}) {
        fault::FailureSchedule sched;
        std::string err;
        ASSERT_TRUE(fault::FailureSchedule::parse(s, sched, err))
            << s << ": " << err;
        EXPECT_EQ(sched.toString(), s);
        fault::FailureSchedule again;
        ASSERT_TRUE(
            fault::FailureSchedule::parse(sched.toString(), again, err));
        EXPECT_EQ(again, sched);
    }
}

TEST(FailureSchedule, RejectsMalformed)
{
    fault::FailureSchedule sched;
    std::string err;
    for (const char *s : {"q", "d", "x", "d1+", "+r", "x-3", "r5", "dx1"})
        EXPECT_FALSE(fault::FailureSchedule::parse(s, sched, err)) << s;
}

TEST(FailureSchedule, RandomIsDeterministic)
{
    auto a = fault::FailureSchedule::random(42, 4, 1000);
    auto b = fault::FailureSchedule::random(42, 4, 1000);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 4u);
    // The exec-gap cap is honoured.
    for (const auto &e : a.events) {
        if (e.phase == fault::FailurePhase::Exec) {
            EXPECT_GE(e.at, 1u);
            EXPECT_LE(e.at, 1000u);
        }
    }
    EXPECT_NE(fault::FailureSchedule::random(43, 4, 1000), a);
}

TEST(FuzzSpec, StormRoundTrips)
{
    fuzz::CaseSpec spec;
    spec.source = fuzz::CaseSpec::Source::Workload;
    spec.seed = 7;
    spec.shrink = 2;
    spec.mode = fuzz::CrashMode::Storm;
    spec.crashAt = 1234;
    std::string err;
    ASSERT_TRUE(
        fault::FailureSchedule::parse("d1+r+x1500+d0", spec.storm, err));

    std::string s = spec.toString();
    EXPECT_NE(s.find(":mode=storm:"), std::string::npos) << s;
    EXPECT_NE(s.find(":storm=d1+r+x1500+d0"), std::string::npos) << s;

    fuzz::CaseSpec parsed;
    ASSERT_TRUE(fuzz::CaseSpec::parse(s, parsed, err)) << err;
    EXPECT_EQ(parsed.mode, fuzz::CrashMode::Storm);
    EXPECT_EQ(parsed.crashAt, 1234u);
    EXPECT_EQ(parsed.storm, spec.storm);
    EXPECT_EQ(parsed.toString(), s);
}

// A §IV-F drain interrupted after any number of quiescence iterations —
// including zero — must leave the same PM image as a clean drain: the
// battery-backed WPQ survives, the resumed drain finishes the job, and
// the interrupted progress is invisible.
TEST(Storm, DrainInterruptsAreInvisible)
{
    auto b = build(pds::PdsScheme::LightWsp, smallSpec(pds::Kind::Log));
    core::System golden(b.cfg, b.prog, 1);
    auto gres = golden.run();
    ASSERT_TRUE(gres.completed);
    Tick at = gres.cycles / 2;

    core::System clean(b.cfg, b.prog, 1);
    ASSERT_FALSE(clean.runWithPowerFailure(at).completed);

    for (std::vector<unsigned> iters :
         {std::vector<unsigned>{0}, {1}, {2, 0}, {1, 1, 1}}) {
        core::System stormy(b.cfg, b.prog, 1);
        ASSERT_FALSE(stormy.runWithFailureStorm(at, iters).completed);
        EXPECT_TRUE(stormy.pmImage()
                        .diffInRange(clean.pmImage(), 0, ~Addr(0))
                        .empty())
            << iters.size() << " drain interrupts changed the image";
    }
}

// The same invisibility contract on a sharded 8-MC machine, flat and
// tree fabric: interrupting the quiescence loop while broadcasts/ACK
// aggregates are mid-flight on many controllers (or mid-descent through
// interior tree nodes) must not perturb the drained image.
TEST(Storm, DrainInterruptsAreInvisibleAt8Mcs)
{
    for (bool tree : {false, true}) {
        auto b = build(pds::PdsScheme::LightWsp,
                       smallSpec(pds::Kind::Log));
        b.cfg.numMcs = 8;
        if (tree)
            b.cfg.topology.kind = noc::TopologyConfig::Kind::Tree;
        core::System golden(b.cfg, b.prog, 1);
        auto gres = golden.run();
        ASSERT_TRUE(gres.completed);
        Tick at = gres.cycles / 2;

        core::System clean(b.cfg, b.prog, 1);
        ASSERT_FALSE(clean.runWithPowerFailure(at).completed);

        for (std::vector<unsigned> iters :
             {std::vector<unsigned>{0}, {1}, {2, 0}, {1, 1, 1}}) {
            core::System stormy(b.cfg, b.prog, 1);
            ASSERT_FALSE(stormy.runWithFailureStorm(at, iters)
                             .completed);
            EXPECT_TRUE(stormy.pmImage()
                            .diffInRange(clean.pmImage(), 0, ~Addr(0))
                            .empty())
                << (tree ? "tree" : "flat") << " fabric: "
                << iters.size() << " drain interrupts changed the image";
        }
    }
}

TEST(Storm, RecoveryReentryIsIdempotent)
{
    auto b = build(pds::PdsScheme::Capri, smallSpec(pds::Kind::Hash));
    core::System golden(b.cfg, b.prog, 1);
    auto gres = golden.run();
    ASSERT_TRUE(gres.completed);

    core::System victim(b.cfg, b.prog, 1);
    ASSERT_FALSE(victim.runWithPowerFailure(gres.cycles / 2).completed);

    auto first = core::System::recoverChecked(
        b.cfg, b.prog, 1, victim.pmImage(), {}, &victim.crashReport());
    auto second = core::System::recoverChecked(
        b.cfg, b.prog, 1, victim.pmImage(), {}, &victim.crashReport());
    EXPECT_EQ(first.outcome, second.outcome);
    ASSERT_NE(first.outcome, core::RecoveryOutcome::DetectedUnrecoverable);

    // Both recovered machines replay to the same end state.
    auto r1 = first.sys->run();
    auto r2 = second.sys->run();
    ASSERT_TRUE(r1.completed);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_TRUE(first.sys->pmImage()
                    .diffInRange(second.sys->pmImage(), 0, ~Addr(0))
                    .empty());
}

// Crash exactly on checkpoint-epoch commit ticks mined from the golden
// run's LRPO oracle — the cycle the commit advance becomes visible is
// the sharpest edge of the protocol.
TEST(Storm, FailureExactlyAtCommitTick)
{
    auto spec = smallSpec(pds::Kind::Log);
    auto b = build(pds::PdsScheme::LightWsp, spec);
    b.cfg.oraclesEnabled = true;
    core::System golden(b.cfg, b.prog, 1);
    auto gres = golden.run();
    ASSERT_TRUE(gres.completed);
    ASSERT_NE(golden.oracle(), nullptr);
    auto commits = golden.oracle()->commitTicks();
    ASSERT_FALSE(commits.empty());

    unsigned tried = 0;
    for (std::size_t i = 0; i < commits.size() && tried < 6;
         i += std::max<std::size_t>(1, commits.size() / 6), ++tried) {
        Tick t = std::min(commits[i], gres.cycles - 1);
        core::System victim(b.cfg, b.prog, 1);
        if (victim.runWithPowerFailure(t).completed)
            continue;
        auto rec = core::System::recoverChecked(
            b.cfg, b.prog, 1, victim.pmImage(), {},
            &victim.crashReport());
        ASSERT_NE(rec.outcome,
                  core::RecoveryOutcome::DetectedUnrecoverable)
            << "commit-tick crash at " << t << ": " << rec.detail;
        ASSERT_TRUE(rec.sys->run().completed);
        EXPECT_EQ(pds::checkSemantics(spec, rec.sys->execImage()), "")
            << "commit-tick crash at " << t;
    }
    EXPECT_GT(tried, 0u);
}

// pmtx rollback is itself crash-consistent: kill the recovered machine
// a handful of cycles after power-on — mid-undo-replay — and recover
// again. Undo entries hold absolute old values, so replaying an
// already-replayed prefix is idempotent.
TEST(Storm, PmtxCrashMidUndoReplay)
{
    auto spec = smallSpec(pds::Kind::Hash);
    auto b = build(pds::PdsScheme::Pmtx, spec);
    core::System golden(b.cfg, b.prog, 1);
    auto gres = golden.run();
    ASSERT_TRUE(gres.completed);

    core::System victim(b.cfg, b.prog, 1);
    ASSERT_FALSE(victim.runWithPowerFailure(gres.cycles * 6 / 10)
                     .completed);

    for (Tick mid : {Tick(1), Tick(3), Tick(7), Tick(15), Tick(40)}) {
        auto rec = core::System::recoverChecked(
            b.cfg, b.prog, 1, victim.pmImage(), {},
            &victim.crashReport());
        ASSERT_NE(rec.outcome,
                  core::RecoveryOutcome::DetectedUnrecoverable);
        auto rr = rec.sys->runWithPowerFailure(mid);
        if (rr.completed)
            continue; // replay + rest of tape fit under `mid` cycles
        auto rec2 = core::System::recoverChecked(
            b.cfg, b.prog, 1, rec.sys->pmImage(), {},
            &rec.sys->crashReport());
        ASSERT_NE(rec2.outcome,
                  core::RecoveryOutcome::DetectedUnrecoverable)
            << "mid-undo-replay crash at +" << mid << ": " << rec2.detail;
        ASSERT_TRUE(rec2.sys->run().completed);
        EXPECT_EQ(pds::checkSemantics(spec, rec2.sys->execImage()), "")
            << "mid-undo-replay crash at +" << mid;
    }
}

// The discrete-event and cycle-stepped cores must agree on an entire
// storm lifetime, boot for boot and bit for bit.
TEST(Storm, EngineABBitIdentity)
{
    auto spec = smallSpec(pds::Kind::Alloc);
    fault::FailureSchedule storm;
    std::string err;
    ASSERT_TRUE(fault::FailureSchedule::parse("d1+r+x200+d0+x90", storm,
                                              err));

    // Runs the whole storm chain, returning each segment's cycle count
    // and leaving the final image in `final_img`.
    auto lifetime = [&](SimEngine engine, mem::MemImage &final_img) {
        auto b = build(pds::PdsScheme::LightWsp, spec);
        b.cfg.engine = engine;
        core::System golden(b.cfg, b.prog, 1);
        auto gres = golden.run();
        std::vector<Tick> segs{gres.cycles};

        std::size_t idx = 0;
        auto takeDrains = [&] {
            std::vector<unsigned> iters;
            while (idx < storm.events.size() &&
                   storm.events[idx].phase == fault::FailurePhase::Drain)
                iters.push_back(
                    static_cast<unsigned>(storm.events[idx++].at));
            return iters;
        };

        core::System victim(b.cfg, b.prog, 1);
        auto vr = victim.runWithFailureStorm(gres.cycles / 2,
                                             takeDrains());
        EXPECT_FALSE(vr.completed);
        segs.push_back(vr.cycles);

        const core::System *cur = &victim;
        std::unique_ptr<core::System> hold;
        while (true) {
            auto rec = core::System::recoverChecked(
                b.cfg, b.prog, 1, cur->pmImage(), {},
                &cur->crashReport());
            while (idx < storm.events.size() &&
                   storm.events[idx].phase ==
                       fault::FailurePhase::Recovery) {
                ++idx;
                auto retry = core::System::recoverChecked(
                    b.cfg, b.prog, 1, cur->pmImage(), {},
                    &cur->crashReport());
                EXPECT_EQ(retry.outcome, rec.outcome);
                rec = std::move(retry);
            }
            EXPECT_NE(rec.outcome,
                      core::RecoveryOutcome::DetectedUnrecoverable);
            hold = std::move(rec.sys);
            cur = nullptr;
            if (idx < storm.events.size()) {
                Tick gap = storm.events[idx++].at;
                auto er = hold->runWithFailureStorm(gap, takeDrains());
                segs.push_back(er.cycles);
                if (!er.completed) {
                    cur = hold.get();
                    continue;
                }
                break;
            }
            auto fr = hold->run();
            segs.push_back(fr.cycles);
            EXPECT_TRUE(fr.completed);
            break;
        }
        EXPECT_EQ(pds::checkSemantics(spec, hold->execImage()), "");
        final_img = hold->pmImage();
        return segs;
    };

    mem::MemImage event_img, cycle_img;
    auto event_segs = lifetime(SimEngine::Event, event_img);
    auto cycle_segs = lifetime(SimEngine::Cycle, cycle_img);
    EXPECT_EQ(event_segs, cycle_segs);
    EXPECT_TRUE(event_img.diffInRange(cycle_img, 0, ~Addr(0)).empty());
}

// One reduced crash-at-every-Nth-cycle-of-recovery matrix case; the
// exhaustive step-1 sweep over all 23 cases (incl. the 16-MC flat/tree
// scale-out rows) is `fuzz_crash --recovery-matrix` (tier-2 storm job /
// bench_all.sh --storm).
TEST(Storm, ReducedRecoveryMatrixCase)
{
    auto cases = fuzz::recoveryMatrixCases();
    ASSERT_GE(cases.size(), 21u);
    fuzz::MatrixOptions opt;
    opt.step = 37;
    auto res = fuzz::runRecoveryMatrixCase(cases[0], opt);
    EXPECT_TRUE(res.passed) << res.name << ": " << res.failure;
    EXPECT_GT(res.pointsTried, 0u);
    EXPECT_GT(res.recoveredExact + res.recoveredDegraded, 0u);
}

TEST(Storm, SeededCampaignSurvives)
{
    fuzz::CaseSpec spec;
    spec.source = fuzz::CaseSpec::Source::Workload;
    spec.seed = 3;
    spec.shrink = 2;
    fuzz::CampaignOptions opt;
    opt.minCrashPoints = 4;
    opt.doubleCrash = false;
    opt.stormCrash = true;
    auto res = fuzz::runCampaign(spec, opt);
    EXPECT_TRUE(res.passed)
        << res.failure << " repro: " << res.reproducer.toString();
    EXPECT_GE(res.failuresSurvived, 2u);
}
