/**
 * @file
 * Static WSP-invariant checker tests: clean sweeps over the built-in
 * workloads and the fuzz corpus, seeded-defect detection (stripped
 * checkpoints, corrupted site tables, falsified recipes, removed
 * boundaries, garbage boundary kinds), the call-entry store-count
 * regression the checker originally caught in the compiler, and the
 * divergence diagnostics of the store-count dataflow.
 */

#include <gtest/gtest.h>

#include "analysis/wsp_checker.hh"
#include "compiler/compiler.hh"
#include "compiler/passes.hh"
#include "fuzz/campaign.hh"
#include "fuzz/random_program.hh"
#include "fuzz/random_workload.hh"
#include "ir/verifier.hh"
#include "workloads/generator.hh"

using namespace lwsp;
using namespace lwsp::ir;

namespace {

bool
hasObligation(const analysis::CheckReport &rep, analysis::Obligation ob)
{
    for (const auto &v : rep.violations)
        if (v.obligation == ob)
            return true;
    return false;
}

compiler::CompiledProgram
compileModule(std::unique_ptr<Module> m,
              const compiler::CompilerConfig &cfg)
{
    compiler::LightWspCompiler comp(cfg);
    return comp.compile(std::move(m));
}

/**
 * main loads 6 interleaving-dependent values and both passes them to
 * and keeps them live across a call to @leaf, which consumes all of
 * them. At threshold 8 the leaf's entry region checkpoints those 6
 * non-const live-ins plus the stack pointer — exactly the per-region
 * budget (7 = threshold - 1). That is the shape that exposed the
 * call-entry undercount: the caller's return-address push enters the
 * callee's open region, so a budget-full entry region really holds
 * budget + 1 entries plus the boundary PC-store.
 */
std::unique_ptr<Module>
callPushProgram()
{
    auto m = std::make_unique<Module>();
    Function &mainFn = m->addFunction("main");
    Function &leaf = m->addFunction("leaf");

    BasicBlock &mb = mainFn.addBlock();
    mb.append(Instruction::movi(1, 0x4000));
    for (Reg r = 2; r <= 7; ++r)
        mb.append(Instruction::load(r, 1, 8 * (r - 2)));
    mb.append(Instruction::call(1));
    for (Reg r = 2; r <= 7; ++r)
        mb.append(Instruction::store(1, 64 + 8 * (r - 2), r));
    mb.append(Instruction::simple(Opcode::Halt));

    BasicBlock &lb = leaf.addBlock();
    for (Reg r = 2; r <= 7; ++r)
        lb.append(Instruction::store(1, 128 + 8 * (r - 2), r));
    lb.append(Instruction::simple(Opcode::Ret));
    return m;
}

/** One function, one long store ladder: splits cleanly and converges. */
std::unique_ptr<Module>
storeLadder(unsigned stores)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    b.append(Instruction::movi(1, 0x4000));
    for (unsigned i = 0; i < stores; ++i)
        b.append(Instruction::store(1, 8 * i, 1));
    b.append(Instruction::simple(Opcode::Halt));
    return m;
}

} // namespace

// ---------------------------------------------------------------------
// Clean sweeps: the shipped compiler must satisfy its own invariants.
// ---------------------------------------------------------------------

TEST(Checker, BuiltinWorkloadsCleanUnderAllConfigs)
{
    compiler::CompilerConfig configs[3];
    configs[1].pruneCheckpoints = false;
    configs[2].unrollLoops = false;
    const char *names[3] = {"default", "no-prune", "no-unroll"};

    for (const auto &profile : workloads::paperProfiles()) {
        for (int c = 0; c < 3; ++c) {
            SCOPED_TRACE(profile.name + " [" + names[c] + "]");
            auto prog = compileModule(
                workloads::generate(profile).module, configs[c]);
            auto rep = analysis::checkCompiledProgram(prog, configs[c]);
            EXPECT_TRUE(rep.ok()) << rep.describe();
        }
    }
}

TEST(Checker, FuzzCorpus200Clean)
{
    static const unsigned thresholds[] = {4, 8, 16, 32};
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        fuzz::FuzzProgram src =
            (seed % 2 == 0) ? fuzz::randomIrProgram(seed, 0)
                            : fuzz::randomWorkloadProgram(seed, 0);
        compiler::CompilerConfig cfg;
        cfg.storeThreshold = thresholds[seed % 4];
        auto prog = compileModule(std::move(src.module), cfg);
        auto rep = analysis::checkCompiledProgram(prog, cfg);
        EXPECT_TRUE(rep.ok()) << rep.describe();
    }
}

TEST(Checker, StaticCheckSpecApi)
{
    fuzz::CaseSpec spec;
    spec.source = fuzz::CaseSpec::Source::Ir;
    spec.seed = 41;  // the case that exposed the call-entry undercount
    auto res = fuzz::staticCheck(spec);
    EXPECT_TRUE(res.ok) << res.report;
    EXPECT_FALSE(res.summary.empty());
}

// ---------------------------------------------------------------------
// The call-entry store-count regression (latent until small thresholds).
// ---------------------------------------------------------------------

TEST(Checker, CallEntryPushRegression)
{
    // Without the callee entry seed the compiler sizes the leaf's entry
    // region to the full budget, silently declares convergence, and the
    // checker's independent count flags the ninth persist entry (push +
    // 7 checkpoints + PC-store against capacity 8) un-waived — this
    // test goes red. With the seed the compiler either partitions
    // within capacity or declares non-convergence, which the checker
    // waives to the runtime WPQ-overflow fallback.
    compiler::CompilerConfig cfg;
    cfg.storeThreshold = 8;
    auto prog = compileModule(callPushProgram(), cfg);
    auto rep = analysis::checkCompiledProgram(prog, cfg);
    EXPECT_TRUE(rep.ok()) << rep.describe();
}

TEST(Passes, CalleeEntrySeedTightensTheBound)
{
    // The same entry region holds one more persist entry when the
    // function is entered through a Call (return-address push in
    // flight) than when entered by reset — the undercount the checker
    // originally caught.
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("leaf");
    BasicBlock &b = f.addBlock();
    b.append(Instruction::movi(1, 0x4000));
    for (int i = 0; i < 7; ++i)
        b.append(Instruction::store(1, 8 * i, 2));
    b.append(compiler::makeBoundary(BoundaryKind::FuncEntry));
    b.append(Instruction::simple(Opcode::Ret));
    EXPECT_EQ(compiler::computeStoreCounts(f, 0).worst, 7u);
    EXPECT_EQ(compiler::computeStoreCounts(f, 1).worst, 8u);
}

// ---------------------------------------------------------------------
// Seeded defects: every obligation must actually fire.
// ---------------------------------------------------------------------

TEST(Checker, StrippedCheckpointsAreUncovered)
{
    compiler::CompilerConfig cfg;
    cfg.storeThreshold = 8;
    auto prog = compileModule(callPushProgram(), cfg);
    compiler::stripCheckpointStores(prog.module->function(1));
    analysis::CheckOptions opt;
    opt.sitesAssigned = false;  // judge coverage without the site table
    auto rep = analysis::checkModule(*prog.module, cfg, opt, nullptr);
    ASSERT_FALSE(rep.ok());
    EXPECT_TRUE(hasObligation(rep, analysis::Obligation::CkptCoverage))
        << rep.describe();
}

TEST(Checker, RemovedBoundaryBreaksStoreBound)
{
    compiler::CompilerConfig cfg;
    cfg.storeThreshold = 8;
    auto prog = compileModule(storeLadder(20), cfg);
    ASSERT_TRUE(prog.stats.thresholdConverged);
    ASSERT_TRUE(analysis::checkCompiledProgram(prog, cfg).ok());
    // Fuse two adjacent regions back together by deleting one Split
    // boundary — the fused region exceeds the cap.
    Function &fn = prog.module->function(0);
    bool removed = false;
    for (BlockId b = 0; b < fn.numBlocks() && !removed; ++b) {
        auto &insts = fn.block(b).insts();
        for (std::size_t i = 0; i < insts.size(); ++i) {
            if (insts[i].op == Opcode::Boundary &&
                compiler::boundaryKind(insts[i]) ==
                    BoundaryKind::Split) {
                insts.erase(insts.begin() + i);
                removed = true;
                break;
            }
        }
    }
    ASSERT_TRUE(removed) << "expected a Split boundary in the ladder";
    analysis::CheckOptions opt;
    opt.checkCoverage = false;  // isolate the store-bound obligation
    opt.postSplitShape = false;
    auto rep = analysis::checkModule(*prog.module, cfg, opt, nullptr);
    ASSERT_FALSE(rep.ok());
    EXPECT_TRUE(hasObligation(rep, analysis::Obligation::StoreBound))
        << rep.describe();
}

TEST(Checker, CorruptSiteTableIsFlagged)
{
    compiler::CompilerConfig cfg;
    auto prog = compileModule(workloads::generateByName("lbm").module,
                              cfg);
    ASSERT_FALSE(prog.sites.empty());

    {
        auto broken = prog.sites;
        broken[0].id += 1;  // ids must be dense and unique
        analysis::CheckOptions opt;
        auto rep =
            analysis::checkModule(*prog.module, cfg, opt, &broken);
        EXPECT_TRUE(hasObligation(rep, analysis::Obligation::SiteTable))
            << rep.describe();
    }
    {
        auto broken = prog.sites;
        broken.pop_back();  // that boundary now has no site entry
        analysis::CheckOptions opt;
        auto rep =
            analysis::checkModule(*prog.module, cfg, opt, &broken);
        EXPECT_TRUE(hasObligation(rep, analysis::Obligation::SiteTable))
            << rep.describe();
    }
}

TEST(Checker, FalsifiedRecipeIsUnsound)
{
    // Find any built-in program whose compile produced a Const recipe,
    // corrupt its claimed constant, and expect the replay to notice.
    compiler::CompilerConfig cfg;
    for (const auto &profile : workloads::paperProfiles()) {
        auto prog =
            compileModule(workloads::generate(profile).module, cfg);
        auto sites = prog.sites;
        bool corrupted = false;
        for (auto &s : sites) {
            for (auto &r : s.recipes) {
                if (r.kind == compiler::CkptRecipe::Kind::Const) {
                    r.imm += 1;
                    corrupted = true;
                    break;
                }
            }
            if (corrupted)
                break;
        }
        if (!corrupted)
            continue;
        analysis::CheckOptions opt;
        auto rep = analysis::checkModule(*prog.module, cfg, opt, &sites);
        ASSERT_FALSE(rep.ok());
        EXPECT_TRUE(
            hasObligation(rep, analysis::Obligation::RecipeSoundness))
            << rep.describe();
        return;
    }
    FAIL() << "no built-in compile produced a Const recipe to corrupt";
}

TEST(Checker, GarbageBoundaryKindIsStructural)
{
    compiler::CompilerConfig cfg;
    auto prog = compileModule(callPushProgram(), cfg);
    Function &fn = prog.module->function(0);
    bool poisoned = false;
    for (BlockId b = 0; b < fn.numBlocks() && !poisoned; ++b) {
        for (auto &inst : fn.block(b).insts()) {
            if (inst.op == Opcode::Boundary) {
                inst.rd = 99;
                poisoned = true;
                break;
            }
        }
    }
    ASSERT_TRUE(poisoned);
    EXPECT_FALSE(verifyModule(*prog.module).empty());
    auto rep = analysis::checkCompiledProgram(prog, cfg);
    ASSERT_FALSE(rep.ok());
    EXPECT_TRUE(hasObligation(rep, analysis::Obligation::Structure))
        << rep.describe();
}

TEST(Checker, WaiverCoversDeclaredNonConvergence)
{
    // Hunt a fuzz case whose checkpoint/threshold fixpoint legitimately
    // gives up: its store-bound findings must land in the waived list,
    // leaving the report OK.
    static const unsigned thresholds[] = {4, 8, 16, 32};
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        fuzz::FuzzProgram src =
            (seed % 2 == 0) ? fuzz::randomIrProgram(seed, 0)
                            : fuzz::randomWorkloadProgram(seed, 0);
        compiler::CompilerConfig cfg;
        cfg.storeThreshold = thresholds[seed % 4];
        auto prog = compileModule(std::move(src.module), cfg);
        if (prog.stats.thresholdConverged)
            continue;
        auto rep = analysis::checkCompiledProgram(prog, cfg);
        EXPECT_TRUE(rep.ok()) << rep.describe();
        EXPECT_FALSE(rep.waived.empty());
        return;
    }
    FAIL() << "no fuzz seed in 1..100 hit the non-convergence waiver";
}

// ---------------------------------------------------------------------
// Diagnostics: malformed inputs fail loudly, not silently.
// ---------------------------------------------------------------------

TEST(Passes, StoreCountDivergencePanics)
{
    // A storeful self-loop with no boundary: the max-dataflow has no
    // reset point and must refuse to spin forever.
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    b.append(Instruction::movi(1, 0x4000));
    b.append(Instruction::store(1, 0, 2));
    b.append(Instruction::jmp(0));
    EXPECT_THROW(compiler::computeStoreCounts(f, 0), PanicError);
    compiler::CompilerConfig cfg;
    cfg.storeThreshold = 4;
    EXPECT_THROW(compiler::enforceStoreThreshold(f, cfg), PanicError);
}

TEST(Passes, BoundaryKindRejectsGarbage)
{
    Instruction inst = Instruction::simple(Opcode::Boundary);
    inst.rd = numBoundaryKinds;
    EXPECT_THROW(compiler::boundaryKind(inst), PanicError);
    inst.rd = static_cast<Reg>(BoundaryKind::Sync);
    EXPECT_EQ(compiler::boundaryKind(inst), BoundaryKind::Sync);
}
