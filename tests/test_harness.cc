/**
 * @file
 * Harness tests: result tables (geomeans, suite grouping, CSV), run-spec
 * configuration plumbing, baseline caching, the persistence-efficiency
 * formula, and the baselines' analytic models.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "baselines/baselines.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "noc/noc.hh"

using namespace lwsp;
using namespace lwsp::harness;

TEST(ResultTable, GeomeansPerSuiteAndOverall)
{
    ResultTable t("test");
    t.addColumn("a");
    t.addRow("w1", "S1", {2.0});
    t.addRow("w2", "S1", {8.0});
    t.addRow("w3", "S2", {1.0});
    EXPECT_NEAR(t.suiteGeomean("S1", 0), 4.0, 1e-12);
    EXPECT_NEAR(t.overallGeomean(0), std::cbrt(16.0), 1e-12);
    auto suites = t.suites();
    ASSERT_EQ(suites.size(), 2u);
    EXPECT_EQ(suites[0], "S1");
}

TEST(ResultTable, PrintContainsGeomeanRows)
{
    ResultTable t("My Table");
    t.addColumn("x");
    t.addRow("w1", "S1", {1.5});
    t.addRow("w2", "S2", {2.5});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("My Table"), std::string::npos);
    EXPECT_NE(s.find("geomean"), std::string::npos);
    EXPECT_NE(s.find("geomean(all)"), std::string::npos);
    EXPECT_NE(s.find("w1"), std::string::npos);
}

TEST(ResultTable, CsvFormat)
{
    ResultTable t("t");
    t.addColumn("col1");
    t.addColumn("col2");
    t.addRow("app", "SUITE", {1.25, 2.5});
    std::ostringstream os;
    t.writeCsv(os);
    EXPECT_EQ(os.str(),
              "workload,suite,col1,col2\napp,SUITE,1.25,2.5\n");
}

TEST(ResultTable, RowWidthMismatchPanics)
{
    ResultTable t("t");
    t.addColumn("only");
    EXPECT_THROW(t.addRow("w", "s", {1.0, 2.0}), PanicError);
}

TEST(RunSpecConfig, OverridesPropagate)
{
    const auto &p = workloads::profileByName("xz");
    RunSpec spec;
    spec.workload = "xz";
    spec.scheme = core::Scheme::LightWsp;
    spec.wpqEntries = 128;
    spec.persistPathGBps = 2.0;
    spec.victimPolicy = mem::VictimPolicy::Half;
    spec.pmReadCycles = 500;
    auto cfg = makeConfig(p, spec);
    EXPECT_EQ(cfg.mc.wpqEntries, 128u);
    EXPECT_EQ(cfg.core.febEntries, 128u);  // FEB tracks WPQ (§IV-E)
    EXPECT_EQ(cfg.core.pathCyclesPerEntry, 8u);  // 2 GB/s
    EXPECT_EQ(cfg.victimPolicy, mem::VictimPolicy::Half);
    EXPECT_EQ(cfg.mc.pmReadCycles, 500u);
    EXPECT_EQ(cfg.core.branchMissRate, p.branchMissRate);
}

TEST(RunSpecConfig, ThresholdDefaultsToHalfWpq)
{
    auto w = workloads::generate(workloads::profileByName("hmmer"));
    RunSpec spec;
    spec.workload = "hmmer";
    spec.scheme = core::Scheme::LightWsp;
    spec.wpqEntries = 128;
    auto prog = prepareProgram(std::move(w), spec);
    // Threshold 64: no region may exceed 63 persist entries.
    EXPECT_GT(prog.stats.boundaries, 0u);
}

TEST(Runner, BaselineIsCachedAcrossCalls)
{
    setLogQuiet(true);
    Runner runner;
    RunSpec spec;
    spec.workload = "ep";
    spec.scheme = core::Scheme::LightWsp;
    double a = runner.slowdownVsBaseline(spec);
    double b = runner.slowdownVsBaseline(spec);
    EXPECT_DOUBLE_EQ(a, b);  // deterministic + cached baseline
}

TEST(Efficiency, BoundsAndDirection)
{
    core::SystemConfig cfg;
    cfg.applySchemeDefaults();

    core::RunResult no_waits;
    no_waits.boundaries = 100;
    no_waits.storesRetired = 1000;
    no_waits.wpqFlushedEntries = 1200;
    EXPECT_NEAR(persistenceEfficiency(no_waits, cfg), 100.0, 1e-9);

    core::RunResult waits = no_waits;
    waits.boundaryWaitCycles = 5000;
    double e = persistenceEfficiency(waits, cfg);
    EXPECT_LT(e, 100.0);
    EXPECT_GE(e, 0.0);

    core::RunResult drowned = no_waits;
    drowned.boundaryWaitCycles = 1u << 30;
    EXPECT_DOUBLE_EQ(persistenceEfficiency(drowned, cfg), 0.0);

    core::RunResult no_regions;
    EXPECT_DOUBLE_EQ(persistenceEfficiency(no_regions, cfg), 100.0);
}

TEST(Baselines, HardwareCostMatchesPaper)
{
    core::SystemConfig cfg;
    cfg.applySchemeDefaults();
    EXPECT_DOUBLE_EQ(
        baselines::hardwareCost(core::Scheme::LightWsp, cfg).bytesPerCore,
        0.5);
    EXPECT_DOUBLE_EQ(
        baselines::hardwareCost(core::Scheme::Ppa, cfg).bytesPerCore,
        337.0);
    EXPECT_DOUBLE_EQ(
        baselines::hardwareCost(core::Scheme::Capri, cfg).bytesPerCore,
        54.0 * 1024);
    EXPECT_EQ(
        baselines::hardwareCost(core::Scheme::Baseline, cfg).bytesPerCore,
        0.0);
}

TEST(Baselines, CamLatencyCalibration)
{
    // Paper §V-G2: 64 entries x 8B => 0.99 ns = 2 cycles at 2 GHz.
    EXPECT_NEAR(baselines::camSearchLatencyNs(64, 8), 0.99, 1e-9);
    EXPECT_EQ(baselines::camSearchLatencyCycles(64, 8), 2u);
    // Monotone in entry count.
    EXPECT_LT(baselines::camSearchLatencyNs(32, 8),
              baselines::camSearchLatencyNs(128, 8));
}

TEST(Noc, HopLatencyAndDelivery)
{
    using namespace lwsp::mem;
    struct Sink : McEndpoint
    {
        std::vector<std::pair<Tick, McMsg>> got;
        Tick *now;
        void
        receive(const McMsg &m, Tick t) override
        {
            got.emplace_back(t, m);
            (void)now;
        }
    };
    noc::Noc net(2, 7);
    Sink s0, s1;
    net.attach({&s0, &s1});

    McMsg msg;
    msg.type = McMsg::Type::BdryAck;
    msg.region = 3;
    msg.from = 0;
    net.send(1, msg, 10);
    for (Tick t = 10; t < 30; ++t)
        net.tick(t);
    ASSERT_EQ(s1.got.size(), 1u);
    EXPECT_GE(s1.got[0].first, 17u);  // 10 + hop 7
    EXPECT_EQ(s1.got[0].second.region, 3u);

    net.broadcastBoundary(9, 40);
    net.deliverAllNow(41);  // battery-backed crash delivery
    ASSERT_EQ(s0.got.size(), 1u);
    EXPECT_EQ(s0.got[0].second.type, McMsg::Type::BdryArrival);
    EXPECT_EQ(net.boundariesBroadcast(), 1u);
    EXPECT_GE(net.messagesSent(), 3u);
}
