/**
 * @file
 * Property tests cross-checking the compiler's dataflow analyses against
 * brute-force oracles on randomized CFGs, plus randomized persist-order
 * properties on the protocol.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"
#include "compiler/liveness.hh"
#include "ir/cfg.hh"
#include "ir/verifier.hh"
#include "mem/mem_controller.hh"
#include "mem/mem_image.hh"
#include "noc/noc.hh"

using namespace lwsp;
using namespace lwsp::ir;
using namespace lwsp::compiler;

namespace {

/** Random single-function module: straightline blocks + random edges. */
std::unique_ptr<Module>
randomCfg(std::uint64_t seed, unsigned blocks)
{
    Rng rng(seed);
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    for (unsigned b = 0; b < blocks; ++b)
        f.addBlock();
    for (unsigned b = 0; b < blocks; ++b) {
        BasicBlock &bb = f.block(b);
        // A few register ops with random operands (r1..r7).
        unsigned n = 1 + rng.below(4);
        for (unsigned i = 0; i < n; ++i) {
            Reg rd = static_cast<Reg>(1 + rng.below(7));
            Reg rs1 = static_cast<Reg>(1 + rng.below(7));
            Reg rs2 = static_cast<Reg>(1 + rng.below(7));
            switch (rng.below(3)) {
              case 0:
                bb.append(Instruction::movi(rd, 7));
                break;
              case 1:
                bb.append(Instruction::alu(Opcode::Add, rd, rs1, rs2));
                break;
              default:
                bb.append(Instruction::aluImm(Opcode::AddI, rd, rs1, 1));
            }
        }
        if (b + 1 < blocks) {
            BlockId t1 = static_cast<BlockId>(rng.below(blocks));
            bb.append(Instruction::branch(Opcode::Blt, 1, 2, t1, b + 1));
        } else {
            bb.append(Instruction::simple(Opcode::Halt));
        }
    }
    verifyModuleOrDie(*m);
    return m;
}

/** Oracle: is @p a on every path from entry to @p b? (path enumeration
 *  with visited-set DFS over at most `blocks` length). */
bool
dominatesOracle(const Cfg &cfg, BlockId a, BlockId b)
{
    if (!cfg.reachable(b))
        return false;
    if (a == b)
        return true;
    // BFS from entry avoiding `a`: if we can reach b, a does NOT
    // dominate b.
    std::set<BlockId> seen;
    std::vector<BlockId> work{0};
    if (0 == a)
        return true;  // entry dominates everything reachable
    seen.insert(0);
    while (!work.empty()) {
        BlockId cur = work.back();
        work.pop_back();
        if (cur == b)
            return false;
        for (BlockId s : cfg.successors(cur)) {
            if (s != a && !seen.count(s)) {
                seen.insert(s);
                work.push_back(s);
            }
        }
    }
    return true;
}

/** Oracle liveness: reg r live at entry of block b iff some path reads
 *  it before writing it. */
bool
liveInOracle(const Function &fn, const Cfg &cfg,
             const ModuleLiveness &live, BlockId b0, Reg r)
{
    // DFS over (block) with "not yet defined" state; within a block scan
    // instructions in order.
    std::set<BlockId> visited;
    std::vector<BlockId> work{b0};
    while (!work.empty()) {
        BlockId b = work.back();
        work.pop_back();
        if (visited.count(b))
            continue;
        visited.insert(b);
        bool defined = false;
        for (const auto &inst : fn.block(b).insts()) {
            if (live.instUse(0, inst) & regBit(r))
                return true;
            if (live.instDef(inst) & regBit(r)) {
                defined = true;
                break;
            }
        }
        if (!defined) {
            for (BlockId s : cfg.successors(b))
                work.push_back(s);
        }
    }
    return false;
}

} // namespace

class DominatorOracle : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DominatorOracle, MatchesBruteForce)
{
    auto m = randomCfg(GetParam(), 8);
    Cfg cfg(m->function(0));
    DominatorTree dt(cfg);
    for (BlockId a = 0; a < cfg.numBlocks(); ++a) {
        for (BlockId b = 0; b < cfg.numBlocks(); ++b) {
            if (!cfg.reachable(a) || !cfg.reachable(b))
                continue;
            EXPECT_EQ(dt.dominates(a, b), dominatesOracle(cfg, a, b))
                << "seed=" << GetParam() << " a=" << a << " b=" << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominatorOracle,
                         ::testing::Range<std::uint64_t>(100, 120));

class LivenessOracle : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LivenessOracle, MatchesBruteForce)
{
    auto m = randomCfg(GetParam(), 6);
    const Function &fn = m->function(0);
    Cfg cfg(fn);
    ModuleLiveness live(*m);
    for (BlockId b = 0; b < fn.numBlocks(); ++b) {
        if (!cfg.reachable(b))
            continue;
        for (Reg r = 1; r <= 7; ++r) {
            bool oracle = liveInOracle(fn, cfg, live, b, r);
            bool analysed = (live.liveIn(0, b) & regBit(r)) != 0;
            EXPECT_EQ(analysed, oracle)
                << "seed=" << GetParam() << " block=" << b << " r"
                << static_cast<int>(r);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LivenessOracle,
                         ::testing::Range<std::uint64_t>(200, 220));

// ---- Randomized protocol persist-order property -------------------------

class PersistOrderProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PersistOrderProperty, RegionOrderHoldsUnderRandomArrival)
{
    // Randomly interleave the arrival of stores from R regions at two
    // MCs and randomly time boundary broadcasts; the per-address final
    // values must always equal the highest-region write, and no address
    // may ever hold a lower-region value after a higher-region one was
    // flushed.
    Rng rng(GetParam());
    mem::MemImage pm;
    noc::Noc net(2, 1 + rng.below(20));
    mem::McConfig cfg;
    cfg.numMcs = 2;
    std::vector<std::unique_ptr<mem::MemController>> mcs;
    std::vector<mem::McEndpoint *> eps;
    for (McId i = 0; i < 2; ++i) {
        mcs.push_back(
            std::make_unique<mem::MemController>(i, cfg, pm, net));
        eps.push_back(mcs.back().get());
    }
    net.attach(std::move(eps));

    constexpr unsigned regions = 6;
    constexpr Addr addr0 = 0x8000;  // shared hot address (MC0)

    // Build the event list: each region has 2-4 stores (one to the hot
    // address) and one boundary.
    struct Ev
    {
        bool boundary;
        mem::PersistEntry e;
        RegionId r;
    };
    std::vector<Ev> events;
    for (RegionId r = 1; r <= regions; ++r) {
        unsigned stores = 2 + rng.below(3);
        for (unsigned s = 0; s < stores; ++s) {
            mem::PersistEntry e;
            e.region = r;
            e.value = r * 100 + s;
            e.addr = (s == 0) ? addr0
                              : 0x9000 + r * 0x100 + s * 8;
            events.push_back({false, e, r});
        }
        events.push_back({true, {}, r});
    }
    // Shuffle with the constraint that a region's boundary comes after
    // its own stores (FIFO persist path per core): do random adjacent
    // swaps that respect it.
    for (unsigned k = 0; k < 400; ++k) {
        std::size_t i = rng.below(events.size() - 1);
        auto &a = events[i];
        auto &b = events[i + 1];
        bool same_region = a.r == b.r;
        bool a_bdry_before_store = a.boundary && !b.boundary;
        if (same_region && !a_bdry_before_store)
            continue;  // keep store->boundary order within a region
        if (same_region)
            continue;
        std::swap(a, b);
    }

    Tick now = 0;
    auto tick_all = [&](unsigned n) {
        for (unsigned i = 0; i < n; ++i) {
            for (auto &mc : mcs)
                mc->tick(now);
            net.tick(now);
            ++now;
        }
    };

    // Track the hot address: once a region r value is in PM, no r' < r
    // value may appear later.
    RegionId hot_max = 0;
    bool violated = false;
    for (auto &mc : mcs) {
        mc->setFlushTraceHook([&](int kind, Addr a, std::uint64_t v,
                                  RegionId r) {
            (void)kind;
            (void)v;
            if (a == addr0) {
                if (r < hot_max)
                    violated = true;
                hot_max = std::max(hot_max, r);
            }
        });
    }

    for (const auto &ev : events) {
        if (ev.boundary) {
            net.broadcastBoundary(ev.r, now);
        } else {
            McId mc = static_cast<McId>((ev.e.addr / 64) % 2);
            unsigned guard = 0;
            while (!mcs[mc]->canAccept(ev.e)) {
                tick_all(50);
                ASSERT_LT(++guard, 100u) << "WPQ never made room";
            }
            mcs[mc]->accept(ev.e, now);
        }
        tick_all(1 + rng.below(5));
    }
    tick_all(2000);

    EXPECT_FALSE(violated) << "hot-address persist order inverted";
    EXPECT_EQ(pm.read(addr0), regions * 100 + 0u);
    for (auto &mc : mcs)
        EXPECT_TRUE(mc->wpq().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistOrderProperty,
                         ::testing::Range<std::uint64_t>(300, 316));
