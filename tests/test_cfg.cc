/**
 * @file
 * CFG analyses: predecessors/successors, reverse post-order,
 * reachability, dominators, and natural loop detection.
 */

#include <gtest/gtest.h>

#include "ir/cfg.hh"
#include "ir/program.hh"

using namespace lwsp;
using namespace lwsp::ir;

namespace {

/** Diamond: 0 -> {1, 2} -> 3. */
std::unique_ptr<Module>
diamond()
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b0 = f.addBlock();
    BasicBlock &b1 = f.addBlock();
    BasicBlock &b2 = f.addBlock();
    BasicBlock &b3 = f.addBlock();
    b0.append(Instruction::branch(Opcode::Beq, 1, 2, b1.id(), b2.id()));
    b1.append(Instruction::jmp(b3.id()));
    b2.append(Instruction::jmp(b3.id()));
    b3.append(Instruction::simple(Opcode::Halt));
    return m;
}

/** Loop: 0 -> 1; 1 -> {1, 2}. Block 1 stores (for loop detection use). */
std::unique_ptr<Module>
selfLoop()
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b0 = f.addBlock();
    BasicBlock &b1 = f.addBlock();
    BasicBlock &b2 = f.addBlock();
    b0.append(Instruction::jmp(b1.id()));
    b1.append(Instruction::store(1, 0, 2));
    b1.append(Instruction::aluImm(Opcode::AddI, 3, 3, 1));
    b1.append(Instruction::branch(Opcode::Blt, 3, 4, b1.id(), b2.id()));
    b2.append(Instruction::simple(Opcode::Halt));
    return m;
}

/** Nested loops: 0 -> 1(outer hdr) -> 2(inner) -> {2, 1} ; 1 -> 3. */
std::unique_ptr<Module>
nestedLoops()
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b0 = f.addBlock();
    BasicBlock &b1 = f.addBlock();
    BasicBlock &b2 = f.addBlock();
    BasicBlock &b3 = f.addBlock();
    b0.append(Instruction::jmp(b1.id()));
    b1.append(Instruction::branch(Opcode::Blt, 1, 2, b2.id(), b3.id()));
    b2.append(Instruction::branch(Opcode::Blt, 3, 4, b2.id(), b1.id()));
    b3.append(Instruction::simple(Opcode::Halt));
    return m;
}

} // namespace

TEST(Cfg, DiamondEdges)
{
    auto m = diamond();
    Cfg cfg(m->function(0));
    EXPECT_EQ(cfg.successors(0).size(), 2u);
    EXPECT_EQ(cfg.predecessors(3).size(), 2u);
    EXPECT_EQ(cfg.predecessors(0).size(), 0u);
    for (BlockId b = 0; b < 4; ++b)
        EXPECT_TRUE(cfg.reachable(b));
}

TEST(Cfg, RpoStartsAtEntryEndsAtExit)
{
    auto m = diamond();
    Cfg cfg(m->function(0));
    const auto &rpo = cfg.reversePostOrder();
    ASSERT_EQ(rpo.size(), 4u);
    EXPECT_EQ(rpo.front(), 0u);
    EXPECT_EQ(rpo.back(), 3u);
}

TEST(Cfg, UnreachableBlockDetected)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b0 = f.addBlock();
    BasicBlock &b1 = f.addBlock();  // orphan
    b0.append(Instruction::simple(Opcode::Halt));
    b1.append(Instruction::simple(Opcode::Halt));
    Cfg cfg(f);
    EXPECT_TRUE(cfg.reachable(0));
    EXPECT_FALSE(cfg.reachable(1));
}

TEST(Dominators, Diamond)
{
    auto m = diamond();
    Cfg cfg(m->function(0));
    DominatorTree dt(cfg);
    EXPECT_TRUE(dt.dominates(0, 1));
    EXPECT_TRUE(dt.dominates(0, 2));
    EXPECT_TRUE(dt.dominates(0, 3));
    EXPECT_FALSE(dt.dominates(1, 3));  // join reached around block 1
    EXPECT_FALSE(dt.dominates(2, 3));
    EXPECT_TRUE(dt.dominates(3, 3));   // reflexive
    EXPECT_EQ(dt.idom(3), 0u);
}

TEST(Dominators, LoopHeaderDominatesBody)
{
    auto m = nestedLoops();
    Cfg cfg(m->function(0));
    DominatorTree dt(cfg);
    EXPECT_TRUE(dt.dominates(1, 2));
    EXPECT_TRUE(dt.dominates(1, 3));
    EXPECT_FALSE(dt.dominates(2, 1));
}

TEST(Loops, SelfLoopFound)
{
    auto m = selfLoop();
    Cfg cfg(m->function(0));
    DominatorTree dt(cfg);
    auto loops = findNaturalLoops(cfg, dt);
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops[0].header, 1u);
    EXPECT_TRUE(loops[0].contains(1));
    EXPECT_FALSE(loops[0].contains(2));
    ASSERT_EQ(loops[0].latches.size(), 1u);
    EXPECT_EQ(loops[0].latches[0], 1u);
}

TEST(Loops, NestedLoopsFound)
{
    auto m = nestedLoops();
    Cfg cfg(m->function(0));
    DominatorTree dt(cfg);
    auto loops = findNaturalLoops(cfg, dt);
    ASSERT_EQ(loops.size(), 2u);
    // Outer loop headed at 1 contains 2; inner loop headed at 2.
    const Loop *outer = nullptr, *inner = nullptr;
    for (const auto &l : loops) {
        if (l.header == 1)
            outer = &l;
        if (l.header == 2)
            inner = &l;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_TRUE(outer->contains(2));
    EXPECT_FALSE(inner->contains(1));
}

TEST(Loops, AcyclicHasNone)
{
    auto m = diamond();
    Cfg cfg(m->function(0));
    DominatorTree dt(cfg);
    EXPECT_TRUE(findNaturalLoops(cfg, dt).empty());
}
