/**
 * @file
 * Scale-out machine-model tests: DynBitset, tree-topology geometry,
 * the >= 64-MC broadcast-mask regression, sharded address interleaving
 * and flat-vs-tree protocol equivalence.
 *
 * The headline regression here is historical: broadcast delivery used
 * to be tracked in one `uint64_t` mask, making `1ull << mc` undefined
 * behaviour at 64+ MCs and silently aliasing delivery above 64 (the
 * `inboxes_.size() >= 64 ? ~0ull` branch could both under- and
 * over-count `bcastLostAtCrash`). These tests run a 65-MC fault-armed
 * NoC — one past the word boundary — on both fabrics and assert
 * exactly-once delivery and exact lost-at-crash accounting.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/bitset.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/types.hh"
#include "core/system.hh"
#include "fault/fault.hh"
#include "noc/noc.hh"
#include "noc/topology.hh"
#include "pds/pds.hh"

using namespace lwsp;

// ---- DynBitset -------------------------------------------------------------

TEST(DynBitset, WordBoundarySizes)
{
    for (unsigned n : {1u, 63u, 64u, 65u, 128u, 130u}) {
        DynBitset b(n);
        EXPECT_EQ(b.size(), n);
        EXPECT_TRUE(b.none());
        EXPECT_EQ(b.count(), 0u);

        b.set(0);
        b.set(n - 1);
        EXPECT_TRUE(b.test(0));
        EXPECT_TRUE(b.test(n - 1));
        EXPECT_EQ(b.count(), n == 1 ? 1u : 2u);
        EXPECT_TRUE(b.any());

        b.setAll();
        EXPECT_EQ(b.count(), n);
        for (unsigned i = 0; i < n; ++i)
            EXPECT_TRUE(b.test(i)) << "bit " << i << " of " << n;

        b.clear(n - 1);
        EXPECT_EQ(b.count(), n - 1);
        EXPECT_FALSE(b.test(n - 1));
    }
}

TEST(DynBitset, ContainsAllAndIntersects)
{
    DynBitset all(65), some(65), other(65);
    all.setAll();
    some.set(0);
    some.set(64);
    other.set(33);
    EXPECT_TRUE(all.containsAll(some));
    EXPECT_FALSE(some.containsAll(all));
    EXPECT_TRUE(some.intersects(all));
    EXPECT_FALSE(some.intersects(other));
    EXPECT_TRUE(some.intersects(some));
    DynBitset empty(65);
    EXPECT_TRUE(some.containsAll(empty));
    EXPECT_FALSE(some.intersects(empty));
}

// ---- TopologyConfig spec tokens --------------------------------------------

TEST(Topology, ConfigRoundTripsAndRejects)
{
    for (const char *s : {"flat", "tree2", "tree4", "tree16", "tree1024"}) {
        noc::TopologyConfig tc;
        ASSERT_TRUE(noc::TopologyConfig::parse(s, tc)) << s;
        EXPECT_EQ(tc.toString(), s);
        noc::TopologyConfig again;
        ASSERT_TRUE(noc::TopologyConfig::parse(tc.toString(), again));
        EXPECT_EQ(again, tc);
    }
    noc::TopologyConfig tc;
    for (const char *bad :
         {"", "tree", "tree0", "tree1", "tree1025", "treex", "tree4x",
          "flat2", "ring4"})
        EXPECT_FALSE(noc::TopologyConfig::parse(bad, tc)) << bad;
    EXPECT_EQ(noc::TopologyConfig{}.toString(), "flat");
    EXPECT_FALSE(noc::TopologyConfig{}.isTree());
}

// ---- TreeShape geometry ----------------------------------------------------

TEST(Topology, TreeShapeInvariants)
{
    for (unsigned n : {2u, 3u, 4u, 5u, 8u, 16u, 64u, 65u}) {
        for (unsigned radix : {2u, 3u, 4u, 8u}) {
            noc::TreeShape shape(n, radix);
            SCOPED_TRACE("n=" + std::to_string(n) +
                         " radix=" + std::to_string(radix));
            EXPECT_EQ(shape.numLeaves(), n);
            EXPECT_GE(shape.numNodes(), n);
            EXPECT_EQ(shape.root(), shape.numNodes() - 1);
            EXPECT_EQ(shape.depth(shape.root()), 0u);
            EXPECT_EQ(shape.parent(shape.root()),
                      noc::TreeShape::invalidNode);

            // Every non-root node has a larger-id parent that lists it
            // as a child exactly once; interior fan-out respects radix.
            std::vector<unsigned> child_count(shape.numNodes(), 0);
            for (unsigned node = 0; node + 1 < shape.numNodes();
                 ++node) {
                unsigned p = shape.parent(node);
                ASSERT_NE(p, noc::TreeShape::invalidNode) << node;
                EXPECT_GT(p, node);
                unsigned seen = 0;
                for (unsigned c : shape.children(p))
                    seen += (c == node);
                EXPECT_EQ(seen, 1u) << node;
                ++child_count[p];
            }
            for (unsigned node = 0; node < shape.numNodes(); ++node) {
                EXPECT_LE(shape.children(node).size(), radix);
                if (shape.isLeaf(node))
                    EXPECT_TRUE(shape.children(node).empty());
                else
                    EXPECT_FALSE(shape.children(node).empty());
                EXPECT_EQ(child_count[node],
                          shape.children(node).size());
            }

            // Leaf coverage: a leaf covers itself, an interior node the
            // disjoint union of its children, the root everything.
            EXPECT_EQ(shape.leavesUnder(shape.root()).count(), n);
            for (unsigned node = 0; node < shape.numNodes(); ++node) {
                const DynBitset &cover = shape.leavesUnder(node);
                if (shape.isLeaf(node)) {
                    EXPECT_EQ(cover.count(), 1u);
                    EXPECT_TRUE(cover.test(node));
                    continue;
                }
                unsigned sum = 0;
                for (unsigned c : shape.children(node)) {
                    EXPECT_TRUE(
                        cover.containsAll(shape.leavesUnder(c)));
                    sum += shape.leavesUnder(c).count();
                }
                EXPECT_EQ(cover.count(), sum)
                    << "overlapping subtrees under node " << node;
            }

            // Depth is bounded by ceil(log_radix(n)).
            unsigned levels = 0;
            for (unsigned width = n; width > 1;
                 width = (width + radix - 1) / radix)
                ++levels;
            for (unsigned leaf = 0; leaf < n; ++leaf)
                EXPECT_LE(shape.depth(leaf), levels);
        }
    }
}

// ---- The 65-MC broadcast-mask regression -----------------------------------

namespace {

struct CountingEndpoint : mem::McEndpoint
{
    std::vector<mem::McMsg> got;
    void receive(const mem::McMsg &msg, Tick) override
    {
        got.push_back(msg);
    }
};

struct NocRig
{
    noc::Noc net;
    fault::FaultInjector inj;
    std::vector<CountingEndpoint> eps;

    NocRig(unsigned num_mcs, noc::TopologyConfig topo,
           const fault::FaultConfig &fc)
        : net(num_mcs, /*hop=*/5, topo), inj(fc, 1), eps(num_mcs)
    {
        net.setFaultInjector(&inj);
        std::vector<mem::McEndpoint *> ptrs;
        for (auto &e : eps)
            ptrs.push_back(&e);
        net.attach(ptrs);
    }

    /** Tick until every MC saw @p want broadcasts (or the cap). */
    bool
    converge(unsigned want, Tick cap)
    {
        for (Tick t = 1; t <= cap; ++t) {
            net.tick(t);
            bool done = true;
            for (const auto &e : eps)
                done = done && e.got.size() >= want;
            if (done)
                return true;
        }
        return false;
    }
};

} // namespace

// 65 MCs — one past the uint64_t word boundary that broke the original
// single-word pendingMask — with lossy links: the ack/retry protocol
// must converge to exactly-once delivery at EVERY MC, including #64.
TEST(MaskRegression, LossyBroadcastsDeliverExactlyOnceAt65Mcs)
{
    for (const char *topo_tok : {"flat", "tree4"}) {
        noc::TopologyConfig topo;
        ASSERT_TRUE(noc::TopologyConfig::parse(topo_tok, topo));
        fault::FaultConfig fc;
        fc.enabled = true;
        fc.seed = 7;
        fc.bcastLossPm = 100;
        NocRig rig(65, topo, fc);

        rig.net.broadcastBoundary(11, 0);
        ASSERT_TRUE(rig.converge(1, 200000))
            << topo_tok << ": retries never converged";
        EXPECT_GT(rig.inj.bcastDrops, 0u)
            << topo_tok << ": loss axis never fired (weak test)";

        for (unsigned mc = 0; mc < 65; ++mc) {
            ASSERT_EQ(rig.eps[mc].got.size(), 1u)
                << topo_tok << " MC " << mc
                << ": want exactly one delivery";
            EXPECT_EQ(rig.eps[mc].got[0].region, RegionId(11));
        }
        // The pending entry is fully erased: a crash now loses nothing.
        rig.net.deliverAllNow(300000);
        EXPECT_EQ(rig.inj.bcastLostAtCrash, 0u) << topo_tok;
    }
}

// Crash-time accounting at 65 MCs: a pin-dropped broadcast (copies gone,
// no retry yet) counts as exactly one lost broadcast — not 0 and not 65,
// which is what the saturated `~0ull` mask used to make possible — while
// a fully delivered one counts zero.
TEST(MaskRegression, BcastLostAtCrashIsExactAt65Mcs)
{
    for (const char *topo_tok : {"flat", "tree4"}) {
        noc::TopologyConfig topo;
        ASSERT_TRUE(noc::TopologyConfig::parse(topo_tok, topo));
        fault::FaultConfig fc;
        fc.enabled = true;
        fc.seed = 3;
        fc.bcastLossPinTick = 0;  // first broadcast: every copy dropped
        NocRig rig(65, topo, fc);

        rig.net.broadcastBoundary(1, 0);  // pinned: lost in flight
        rig.net.broadcastBoundary(2, 0);  // delivered normally
        ASSERT_TRUE(rig.converge(1, 30)) << topo_tok;

        rig.net.deliverAllNow(31);  // power failure before the retry
        EXPECT_EQ(rig.inj.bcastLostAtCrash, 1u)
            << topo_tok << ": want exactly the pinned broadcast lost";
        for (unsigned mc = 0; mc < 65; ++mc) {
            ASSERT_EQ(rig.eps[mc].got.size(), 1u)
                << topo_tok << " MC " << mc;
            EXPECT_EQ(rig.eps[mc].got[0].region, RegionId(2));
        }
    }
}

// Fault-null fast path at 65 MCs: no injector, no pending entries, one
// copy per MC on both fabrics.
TEST(MaskRegression, FaultFreeBroadcastAt65Mcs)
{
    for (const char *topo_tok : {"flat", "tree4"}) {
        noc::TopologyConfig topo;
        ASSERT_TRUE(noc::TopologyConfig::parse(topo_tok, topo));
        noc::Noc net(65, 5, topo);
        std::vector<CountingEndpoint> eps(65);
        std::vector<mem::McEndpoint *> ptrs;
        for (auto &e : eps)
            ptrs.push_back(&e);
        net.attach(ptrs);

        net.broadcastBoundary(9, 0);
        for (Tick t = 1; t <= 64; ++t)
            net.tick(t);
        for (unsigned mc = 0; mc < 65; ++mc)
            EXPECT_EQ(eps[mc].got.size(), 1u) << topo_tok << " " << mc;
        EXPECT_EQ(net.boundariesBroadcast(), 1u);
    }
}

// ---- Sharded address interleaving ------------------------------------------

namespace {

struct PdsBuilt
{
    core::SystemConfig cfg;
    compiler::CompiledProgram prog;
};

PdsBuilt
buildPds(unsigned num_mcs, noc::TopologyConfig topo,
         core::SystemConfig::ShardPolicy policy =
             core::SystemConfig::ShardPolicy::LineInterleave)
{
    pds::PdsSpec spec;
    spec.kind = pds::Kind::Log;
    spec.sizeClass = 0;
    spec.numOps = 24;
    spec.mix = 0;
    spec.seed = 5;
    spec.opsPerTx = 2;
    PdsBuilt b{pds::makePdsConfig(pds::PdsScheme::LightWsp,
                                  pds::PdsRunMode::Recovery),
               pds::preparePdsProgram(spec, pds::PdsScheme::LightWsp,
                                      pds::PdsRunMode::Recovery)};
    b.cfg.numMcs = num_mcs;
    b.cfg.topology = topo;
    b.cfg.shardPolicy = policy;
    return b;
}

} // namespace

// Seeded cross-check of System::mcForAddr against the documented
// mapping, for the awkward MC counts: non-powers-of-two 3/5/6 (where a
// power-of-two mask shortcut would silently misroute) and 64 (the mask
// word boundary), under both shard policies. Every address must land on
// a valid controller and consecutive lines must cover all of them.
TEST(Sharding, McForAddrMatchesPolicyAtAwkwardCounts)
{
    for (unsigned n : {3u, 5u, 6u, 64u}) {
        for (auto policy :
             {core::SystemConfig::ShardPolicy::LineInterleave,
              core::SystemConfig::ShardPolicy::HashShard}) {
            PdsBuilt b = buildPds(n, {}, policy);
            core::System sys(b.cfg, b.prog, 1);

            Rng rng(0x5eed0000u + n);
            std::map<McId, unsigned> hits;
            for (unsigned i = 0; i < 4096; ++i) {
                Addr addr = rng.next();
                Addr line = addr / cachelineBytes;
                if (policy ==
                    core::SystemConfig::ShardPolicy::HashShard)
                    line = (line * 0x9E3779B97F4A7C15ull) >> 17;
                McId want = static_cast<McId>(line % n);
                McId got = sys.mcForAddr(addr);
                ASSERT_LT(got, n);
                ASSERT_EQ(got, want)
                    << "n=" << n << " addr=" << addr;
                ++hits[got];
            }
            // A consecutive-line sweep touches every controller.
            for (Addr a = 0; a < static_cast<Addr>(n) * cachelineBytes;
                 a += cachelineBytes)
                ++hits[sys.mcForAddr(a)];
            EXPECT_EQ(hits.size(), n)
                << "n=" << n << ": some controller never addressed";
        }
    }
}

TEST(Sharding, ZeroMcsIsRejected)
{
    PdsBuilt b = buildPds(2, {});
    b.cfg.numMcs = 0;
    EXPECT_THROW(core::System(b.cfg, b.prog, 1), FatalError);
}

// ---- Flat-vs-tree protocol equivalence -------------------------------------

// The fabric is a transport, not a semantic actor: the same program on
// the same sharded 16-MC machine must reach the identical final PM
// image whether boundary rounds ride flat all-to-all ACKs or the
// aggregation tree — and the tree must do it with fewer control
// messages (O(MCs) vs O(MCs^2) per region).
TEST(TreeFabric, FlatAndTreeReachIdenticalFinalState)
{
    PdsBuilt flat = buildPds(16, {});
    noc::TopologyConfig tree4;
    ASSERT_TRUE(noc::TopologyConfig::parse("tree4", tree4));
    PdsBuilt tree = buildPds(16, tree4);

    core::System fsys(flat.cfg, flat.prog, 1);
    auto fr = fsys.run();
    ASSERT_TRUE(fr.completed);

    core::System tsys(tree.cfg, tree.prog, 1);
    auto tr = tsys.run();
    ASSERT_TRUE(tr.completed);

    EXPECT_EQ(fr.instsRetired, tr.instsRetired);
    EXPECT_EQ(fr.boundaries, tr.boundaries);
    EXPECT_TRUE(
        fsys.pmImage().diffInRange(tsys.pmImage(), 0, ~Addr(0)).empty())
        << "fabric changed the final PM image";

    ASSERT_GT(fr.nocMessages, 0u);
    ASSERT_GT(tr.nocMessages, 0u);
    EXPECT_LT(tr.nocMessages, fr.nocMessages)
        << "tree aggregation should shrink control traffic at 16 MCs";
}

// Tree-fabric runs are engine-independent: the discrete-event scheduler
// (driven by Noc::nextActiveTick over the tree's link arrays) and the
// cycle-stepped loop must agree bit for bit.
TEST(TreeFabric, EngineABBitIdentityOnTree)
{
    noc::TopologyConfig tree4;
    ASSERT_TRUE(noc::TopologyConfig::parse("tree4", tree4));
    auto runWith = [&](SimEngine engine, mem::MemImage &img) {
        PdsBuilt b = buildPds(8, tree4);
        b.cfg.engine = engine;
        core::System sys(b.cfg, b.prog, 1);
        auto r = sys.run();
        EXPECT_TRUE(r.completed);
        img = sys.pmImage();
        return r.cycles;
    };
    mem::MemImage event_img, cycle_img;
    Tick event_cycles = runWith(SimEngine::Event, event_img);
    Tick cycle_cycles = runWith(SimEngine::Cycle, cycle_img);
    EXPECT_EQ(event_cycles, cycle_cycles);
    EXPECT_TRUE(event_img.diffInRange(cycle_img, 0, ~Addr(0)).empty());
}

// Crash/recover on the tree fabric at 16 MCs: the §IV-F drain pulls
// in-flight tree traffic to quiescence, and the recovered machine
// replays to the golden application state.
TEST(TreeFabric, CrashRecoveryAt16McsTree)
{
    noc::TopologyConfig tree4;
    ASSERT_TRUE(noc::TopologyConfig::parse("tree4", tree4));
    PdsBuilt b = buildPds(16, tree4);

    pds::PdsSpec spec;
    spec.kind = pds::Kind::Log;
    spec.sizeClass = 0;
    spec.numOps = 24;
    spec.mix = 0;
    spec.seed = 5;
    spec.opsPerTx = 2;

    core::System golden(b.cfg, b.prog, 1);
    auto gr = golden.run();
    ASSERT_TRUE(gr.completed);

    for (unsigned num : {3u, 5u, 7u}) {
        core::System victim(b.cfg, b.prog, 1);
        auto vr = victim.runWithPowerFailure(gr.cycles * num / 8);
        ASSERT_FALSE(vr.completed);
        auto res = core::System::recoverChecked(
            b.cfg, b.prog, 1, victim.pmImage(), {},
            &victim.crashReport());
        ASSERT_NE(res.outcome,
                  core::RecoveryOutcome::DetectedUnrecoverable)
            << res.detail;
        ASSERT_TRUE(res.sys->run().completed);
        EXPECT_EQ(pds::checkSemantics(spec, res.sys->execImage()), "")
            << "crash at " << num << "/8";
    }
}
