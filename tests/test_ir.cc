/**
 * @file
 * LightIR structural tests: instruction constructors, opcode naming,
 * text round-tripping, the verifier, and PC encoding.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "compiler/passes.hh"
#include "cpu/thread_context.hh"
#include "fuzz/random_program.hh"
#include "fuzz/random_workload.hh"
#include "ir/program.hh"
#include "ir/text_io.hh"
#include "ir/verifier.hh"
#include "workloads/generator.hh"

using namespace lwsp;
using namespace lwsp::ir;

namespace {

/** Build a two-function module exercising every operand shape. */
std::unique_ptr<Module>
richModule()
{
    auto m = std::make_unique<Module>();
    Function &helper = m->addFunction("helper");
    {
        BasicBlock &b = helper.addBlock();
        b.append(Instruction::aluImm(Opcode::AddI, 3, 3, -8));
        b.append(Instruction::simple(Opcode::Ret));
    }
    Function &main = m->addFunction("main");
    {
        BasicBlock &b0 = main.addBlock();
        BasicBlock &b1 = main.addBlock();
        BasicBlock &b2 = main.addBlock();
        b0.append(Instruction::movi(1, 0x1000));
        b0.append(Instruction::movi(2, 7));
        b0.append(Instruction::alu(Opcode::Add, 3, 1, 2));
        b0.append(Instruction::alu(Opcode::Fma, 4, 3, 2));
        b0.append(Instruction::load(5, 1, 8));
        b0.append(Instruction::store(1, 16, 5));
        b0.append(Instruction::atomicAdd(1, 24, 2));
        b0.append(Instruction::lockOp(Opcode::LockAcq, 1, 0));
        b0.append(Instruction::lockOp(Opcode::LockRel, 1, 0));
        b0.append(Instruction::simple(Opcode::Fence));
        b0.append(Instruction::call(helper.id()));
        b0.append(Instruction::branch(Opcode::Blt, 3, 2, b1.id(),
                                      b2.id()));
        b1.append(Instruction::jmp(b2.id()));
        b2.append(Instruction::simple(Opcode::Halt));
    }
    m->initialData().emplace_back(0x2000, 99);
    return m;
}

} // namespace

TEST(Opcode, NameRoundTrip)
{
    for (int i = 0; i <= static_cast<int>(Opcode::Nop); ++i) {
        Opcode op = static_cast<Opcode>(i);
        bool ok = false;
        Opcode back = opcodeFromName(opcodeName(op), ok);
        EXPECT_TRUE(ok) << opcodeName(op);
        EXPECT_EQ(back, op);
    }
    bool ok = true;
    opcodeFromName("not-an-op", ok);
    EXPECT_FALSE(ok);
}

TEST(Opcode, Classification)
{
    EXPECT_TRUE(writesReg(Opcode::Load));
    EXPECT_FALSE(writesReg(Opcode::Store));
    EXPECT_TRUE(isTerminator(Opcode::Halt));
    EXPECT_FALSE(isTerminator(Opcode::Call));
    EXPECT_TRUE(isConditionalBranch(Opcode::Bge));
    EXPECT_FALSE(isConditionalBranch(Opcode::Jmp));
    EXPECT_TRUE(isPersistentStore(Opcode::CkptStore));
    EXPECT_TRUE(isSynchronization(Opcode::LockAcq));
    EXPECT_FALSE(isSynchronization(Opcode::Store));
    EXPECT_EQ(executeLatency(Opcode::Div), 12u);
    EXPECT_EQ(executeLatency(Opcode::Mul), 3u);
    EXPECT_EQ(executeLatency(Opcode::Add), 1u);
}

TEST(Program, SuccessorsFollowTerminators)
{
    auto m = richModule();
    const Function &main = m->function(m->findFunction("main"));
    auto succs0 = main.block(0).successors();
    ASSERT_EQ(succs0.size(), 2u);
    EXPECT_EQ(succs0[0], 1u);
    EXPECT_EQ(succs0[1], 2u);
    EXPECT_EQ(main.block(1).successors(), std::vector<BlockId>{2});
    EXPECT_TRUE(main.block(2).successors().empty());
}

TEST(Program, FindFunction)
{
    auto m = richModule();
    EXPECT_NE(m->findFunction("main"), invalidFunc);
    EXPECT_EQ(m->findFunction("nonexistent"), invalidFunc);
}

TEST(TextIo, RoundTripPreservesSemantics)
{
    auto m = richModule();
    std::string text = moduleToString(*m);
    auto parsed = parseModule(text);
    // The round-tripped module prints identically.
    EXPECT_EQ(moduleToString(*parsed), text);
    EXPECT_TRUE(verifyModule(*parsed).empty());
    EXPECT_EQ(parsed->initialData().size(), 1u);
    EXPECT_EQ(parsed->initialData()[0].first, 0x2000u);
}

TEST(TextIo, NegativeOffsetsRoundTrip)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    b.append(Instruction::load(1, 15, -16));
    b.append(Instruction::store(15, -8, 1));
    b.append(Instruction::simple(Opcode::Halt));
    auto parsed = parseModule(moduleToString(*m));
    EXPECT_EQ(parsed->function(0).block(0).insts()[0].imm, -16);
    EXPECT_EQ(parsed->function(0).block(0).insts()[1].imm, -8);
}

TEST(TextIo, ParseErrorsAreFatal)
{
    EXPECT_THROW(parseModule("func main\n"), FatalError);   // missing @
    EXPECT_THROW(parseModule("block 0:\n"), FatalError);     // no function
    EXPECT_THROW(parseModule("func @m\nblock 0:\n  bogus\n"),
                 FatalError);
    EXPECT_THROW(parseModule("func @m\nblock 0:\n  call @nope\n"),
                 FatalError);
    EXPECT_THROW(parseModule("func @m\nblock 0:\n  movi r99, 1\n"),
                 FatalError);
}

TEST(TextIo, TripCountMetadataRoundTrips)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b0 = f.addBlock();
    b0.append(Instruction::simple(Opcode::Halt));
    f.loopTripCounts()[0] = 96;
    auto parsed = parseModule(moduleToString(*m));
    EXPECT_EQ(parsed->function(0).loopTripCounts().at(0), 96u);
}

TEST(Verifier, AcceptsValidModule)
{
    auto m = richModule();
    EXPECT_TRUE(verifyModule(*m).empty());
}

TEST(Verifier, CatchesMissingTerminator)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    b.append(Instruction::movi(1, 1));
    auto problems = verifyModule(*m);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("terminator"), std::string::npos);
}

TEST(Verifier, CatchesMidBlockTerminator)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    b.append(Instruction::simple(Opcode::Halt));
    b.append(Instruction::movi(1, 1));
    b.append(Instruction::simple(Opcode::Halt));
    EXPECT_FALSE(verifyModule(*m).empty());
}

TEST(Verifier, CatchesBadBranchTarget)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    b.append(Instruction::jmp(42));
    EXPECT_FALSE(verifyModule(*m).empty());
    EXPECT_THROW(verifyModuleOrDie(*m), PanicError);
}

TEST(Verifier, CatchesEmptyModuleAndEmptyBlock)
{
    Module empty;
    EXPECT_FALSE(verifyModule(empty).empty());

    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    f.addBlock();  // empty block
    EXPECT_FALSE(verifyModule(*m).empty());
}

TEST(TextIo, BoundaryKindAndSiteRoundTrip)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    Instruction bd = Instruction::simple(Opcode::Boundary);
    bd.rd = static_cast<Reg>(BoundaryKind::LoopHeader);
    bd.imm = 37;
    b.append(bd);
    b.append(Instruction::simple(Opcode::Halt));

    std::string text = moduleToString(*m);
    EXPECT_NE(text.find("boundary loop-header, 37"), std::string::npos);
    auto parsed = parseModule(text);
    const Instruction &got = parsed->function(0).block(0).insts()[0];
    EXPECT_EQ(got.rd, static_cast<Reg>(BoundaryKind::LoopHeader));
    EXPECT_EQ(got.imm, 37);
    EXPECT_EQ(moduleToString(*parsed), text);
}

TEST(TextIo, BoundaryLegacyFormsParse)
{
    // Bare and kind-only forms stay parseable (hand-written modules).
    auto m1 = parseModule("func @m\nblock 0:\n  boundary\n  halt\n");
    EXPECT_EQ(m1->function(0).block(0).insts()[0].rd,
              static_cast<Reg>(BoundaryKind::FuncEntry));
    EXPECT_EQ(m1->function(0).block(0).insts()[0].imm, 0);
    auto m2 = parseModule("func @m\nblock 0:\n  boundary sync\n  halt\n");
    EXPECT_EQ(m2->function(0).block(0).insts()[0].rd,
              static_cast<Reg>(BoundaryKind::Sync));
    // Unknown kinds and over-long forms are rejected.
    EXPECT_THROW(parseModule("func @m\nblock 0:\n  boundary bogus\n"),
                 FatalError);
    EXPECT_THROW(
        parseModule("func @m\nblock 0:\n  boundary sync, 1, 2\n"),
        FatalError);
}

TEST(Verifier, CatchesInvalidBoundaryKind)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    Instruction bd = Instruction::simple(Opcode::Boundary);
    bd.rd = numBoundaryKinds;  // first invalid raw kind
    b.append(bd);
    b.append(Instruction::simple(Opcode::Halt));
    auto problems = verifyModule(*m);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("boundary kind"), std::string::npos);
}

TEST(Opcode, BoundaryKindNameRoundTrip)
{
    for (unsigned k = 0; k < numBoundaryKinds; ++k) {
        const char *name = boundaryKindName(static_cast<BoundaryKind>(k));
        bool ok = false;
        EXPECT_EQ(static_cast<unsigned>(boundaryKindFromName(name, ok)),
                  k);
        EXPECT_TRUE(ok);
    }
    bool ok = true;
    boundaryKindFromName("no-such-kind", ok);
    EXPECT_FALSE(ok);
    EXPECT_FALSE(isValidBoundaryKind(numBoundaryKinds));
    EXPECT_TRUE(isValidBoundaryKind(0));
}

namespace {

/**
 * print -> parse -> print must be a fixpoint, and the recovery site
 * table re-derived from the reparsed module must match the original
 * bit for bit (ids, locations, kinds, recipes) — the text form carries
 * everything recovery needs.
 */
void
expectCompiledRoundTrip(std::unique_ptr<Module> m,
                        const compiler::CompilerConfig &ccfg)
{
    compiler::LightWspCompiler comp(ccfg);
    compiler::CompiledProgram prog = comp.compile(std::move(m));

    std::string text = moduleToString(*prog.module);
    auto parsed = parseModule(text);
    ASSERT_EQ(moduleToString(*parsed), text);

    auto recipes = compiler::computeConstRecipes(*parsed);
    auto sites = compiler::assignBoundarySites(*parsed, recipes);
    ASSERT_EQ(sites.size(), prog.sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i) {
        const auto &a = prog.sites[i];
        const auto &b = sites[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.func, b.func);
        EXPECT_EQ(a.block, b.block);
        EXPECT_EQ(a.instIndex, b.instIndex);
        EXPECT_EQ(static_cast<unsigned>(a.kind),
                  static_cast<unsigned>(b.kind));
        ASSERT_EQ(a.recipes.size(), b.recipes.size());
        for (std::size_t r = 0; r < a.recipes.size(); ++r) {
            EXPECT_EQ(a.recipes[r].reg, b.recipes[r].reg);
            EXPECT_EQ(static_cast<unsigned>(a.recipes[r].kind),
                      static_cast<unsigned>(b.recipes[r].kind));
            EXPECT_EQ(a.recipes[r].imm, b.recipes[r].imm);
            EXPECT_EQ(a.recipes[r].src, b.recipes[r].src);
        }
    }
}

} // namespace

TEST(TextIo, CompiledWorkloadsRoundTrip)
{
    for (const auto &profile : workloads::paperProfiles()) {
        SCOPED_TRACE(profile.name);
        expectCompiledRoundTrip(workloads::generate(profile).module,
                                compiler::CompilerConfig{});
    }
}

TEST(TextIo, CompiledFuzzProgramsRoundTrip)
{
    static const unsigned thresholds[] = {4, 8, 16, 32};
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        fuzz::FuzzProgram src =
            (seed % 2 == 0) ? fuzz::randomIrProgram(seed, 0)
                            : fuzz::randomWorkloadProgram(seed, 0);
        compiler::CompilerConfig ccfg;
        ccfg.storeThreshold = thresholds[seed % 4];
        expectCompiledRoundTrip(std::move(src.module), ccfg);
    }
}

TEST(PcEncoding, RoundTrip)
{
    cpu::ProgramCounter pc{3, 17, 255};
    auto decoded = cpu::decodePc(cpu::encodePc(pc));
    EXPECT_TRUE(decoded == pc);

    cpu::ProgramCounter big{200, 100000, 500000};
    EXPECT_TRUE(cpu::decodePc(cpu::encodePc(big)) == big);
}
