/**
 * @file
 * LightIR structural tests: instruction constructors, opcode naming,
 * text round-tripping, the verifier, and PC encoding.
 */

#include <gtest/gtest.h>

#include "cpu/thread_context.hh"
#include "ir/program.hh"
#include "ir/text_io.hh"
#include "ir/verifier.hh"

using namespace lwsp;
using namespace lwsp::ir;

namespace {

/** Build a two-function module exercising every operand shape. */
std::unique_ptr<Module>
richModule()
{
    auto m = std::make_unique<Module>();
    Function &helper = m->addFunction("helper");
    {
        BasicBlock &b = helper.addBlock();
        b.append(Instruction::aluImm(Opcode::AddI, 3, 3, -8));
        b.append(Instruction::simple(Opcode::Ret));
    }
    Function &main = m->addFunction("main");
    {
        BasicBlock &b0 = main.addBlock();
        BasicBlock &b1 = main.addBlock();
        BasicBlock &b2 = main.addBlock();
        b0.append(Instruction::movi(1, 0x1000));
        b0.append(Instruction::movi(2, 7));
        b0.append(Instruction::alu(Opcode::Add, 3, 1, 2));
        b0.append(Instruction::alu(Opcode::Fma, 4, 3, 2));
        b0.append(Instruction::load(5, 1, 8));
        b0.append(Instruction::store(1, 16, 5));
        b0.append(Instruction::atomicAdd(1, 24, 2));
        b0.append(Instruction::lockOp(Opcode::LockAcq, 1, 0));
        b0.append(Instruction::lockOp(Opcode::LockRel, 1, 0));
        b0.append(Instruction::simple(Opcode::Fence));
        b0.append(Instruction::call(helper.id()));
        b0.append(Instruction::branch(Opcode::Blt, 3, 2, b1.id(),
                                      b2.id()));
        b1.append(Instruction::jmp(b2.id()));
        b2.append(Instruction::simple(Opcode::Halt));
    }
    m->initialData().emplace_back(0x2000, 99);
    return m;
}

} // namespace

TEST(Opcode, NameRoundTrip)
{
    for (int i = 0; i <= static_cast<int>(Opcode::Nop); ++i) {
        Opcode op = static_cast<Opcode>(i);
        bool ok = false;
        Opcode back = opcodeFromName(opcodeName(op), ok);
        EXPECT_TRUE(ok) << opcodeName(op);
        EXPECT_EQ(back, op);
    }
    bool ok = true;
    opcodeFromName("not-an-op", ok);
    EXPECT_FALSE(ok);
}

TEST(Opcode, Classification)
{
    EXPECT_TRUE(writesReg(Opcode::Load));
    EXPECT_FALSE(writesReg(Opcode::Store));
    EXPECT_TRUE(isTerminator(Opcode::Halt));
    EXPECT_FALSE(isTerminator(Opcode::Call));
    EXPECT_TRUE(isConditionalBranch(Opcode::Bge));
    EXPECT_FALSE(isConditionalBranch(Opcode::Jmp));
    EXPECT_TRUE(isPersistentStore(Opcode::CkptStore));
    EXPECT_TRUE(isSynchronization(Opcode::LockAcq));
    EXPECT_FALSE(isSynchronization(Opcode::Store));
    EXPECT_EQ(executeLatency(Opcode::Div), 12u);
    EXPECT_EQ(executeLatency(Opcode::Mul), 3u);
    EXPECT_EQ(executeLatency(Opcode::Add), 1u);
}

TEST(Program, SuccessorsFollowTerminators)
{
    auto m = richModule();
    const Function &main = m->function(m->findFunction("main"));
    auto succs0 = main.block(0).successors();
    ASSERT_EQ(succs0.size(), 2u);
    EXPECT_EQ(succs0[0], 1u);
    EXPECT_EQ(succs0[1], 2u);
    EXPECT_EQ(main.block(1).successors(), std::vector<BlockId>{2});
    EXPECT_TRUE(main.block(2).successors().empty());
}

TEST(Program, FindFunction)
{
    auto m = richModule();
    EXPECT_NE(m->findFunction("main"), invalidFunc);
    EXPECT_EQ(m->findFunction("nonexistent"), invalidFunc);
}

TEST(TextIo, RoundTripPreservesSemantics)
{
    auto m = richModule();
    std::string text = moduleToString(*m);
    auto parsed = parseModule(text);
    // The round-tripped module prints identically.
    EXPECT_EQ(moduleToString(*parsed), text);
    EXPECT_TRUE(verifyModule(*parsed).empty());
    EXPECT_EQ(parsed->initialData().size(), 1u);
    EXPECT_EQ(parsed->initialData()[0].first, 0x2000u);
}

TEST(TextIo, NegativeOffsetsRoundTrip)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    b.append(Instruction::load(1, 15, -16));
    b.append(Instruction::store(15, -8, 1));
    b.append(Instruction::simple(Opcode::Halt));
    auto parsed = parseModule(moduleToString(*m));
    EXPECT_EQ(parsed->function(0).block(0).insts()[0].imm, -16);
    EXPECT_EQ(parsed->function(0).block(0).insts()[1].imm, -8);
}

TEST(TextIo, ParseErrorsAreFatal)
{
    EXPECT_THROW(parseModule("func main\n"), FatalError);   // missing @
    EXPECT_THROW(parseModule("block 0:\n"), FatalError);     // no function
    EXPECT_THROW(parseModule("func @m\nblock 0:\n  bogus\n"),
                 FatalError);
    EXPECT_THROW(parseModule("func @m\nblock 0:\n  call @nope\n"),
                 FatalError);
    EXPECT_THROW(parseModule("func @m\nblock 0:\n  movi r99, 1\n"),
                 FatalError);
}

TEST(TextIo, TripCountMetadataRoundTrips)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b0 = f.addBlock();
    b0.append(Instruction::simple(Opcode::Halt));
    f.loopTripCounts()[0] = 96;
    auto parsed = parseModule(moduleToString(*m));
    EXPECT_EQ(parsed->function(0).loopTripCounts().at(0), 96u);
}

TEST(Verifier, AcceptsValidModule)
{
    auto m = richModule();
    EXPECT_TRUE(verifyModule(*m).empty());
}

TEST(Verifier, CatchesMissingTerminator)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    b.append(Instruction::movi(1, 1));
    auto problems = verifyModule(*m);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("terminator"), std::string::npos);
}

TEST(Verifier, CatchesMidBlockTerminator)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    b.append(Instruction::simple(Opcode::Halt));
    b.append(Instruction::movi(1, 1));
    b.append(Instruction::simple(Opcode::Halt));
    EXPECT_FALSE(verifyModule(*m).empty());
}

TEST(Verifier, CatchesBadBranchTarget)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    b.append(Instruction::jmp(42));
    EXPECT_FALSE(verifyModule(*m).empty());
    EXPECT_THROW(verifyModuleOrDie(*m), PanicError);
}

TEST(Verifier, CatchesEmptyModuleAndEmptyBlock)
{
    Module empty;
    EXPECT_FALSE(verifyModule(empty).empty());

    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    f.addBlock();  // empty block
    EXPECT_FALSE(verifyModule(*m).empty());
}

TEST(PcEncoding, RoundTrip)
{
    cpu::ProgramCounter pc{3, 17, 255};
    auto decoded = cpu::decodePc(cpu::encodePc(pc));
    EXPECT_TRUE(decoded == pc);

    cpu::ProgramCounter big{200, 100000, 500000};
    EXPECT_TRUE(cpu::decodePc(cpu::encodePc(big)) == big);
}
