/**
 * @file
 * The parallel sweep engine's two contracts:
 *
 *  1. "parallel == serial, bit for bit": a SweepExecutor at any job
 *     count returns the same RunOutcome per spec (every counter, not
 *     just cycles) as a jobs=1 executor over a fresh Runner.
 *  2. Quiescence fast-forward is invisible: a System run with
 *     fastForwardEnabled=false matches one with it enabled on every
 *     statistic, across schemes, warmup, and oversubscribed threads
 *     (where context-switch timing caps the jump).
 *
 * Plus the Runner memo: repeated runs of one spec hand back the cached
 * outcome, and SweepExecutor::slowdowns agrees with the scalar
 * slowdownVsBaseline path.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/system.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/generator.hh"
#include "workloads/profile.hh"

using namespace lwsp;

namespace {

void
expectResultEq(const core::RunResult &a, const core::RunResult &b,
               const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.completed, b.completed) << what;
    EXPECT_EQ(a.instsRetired, b.instsRetired) << what;
    EXPECT_EQ(a.storesRetired, b.storesRetired) << what;
    EXPECT_EQ(a.boundaries, b.boundaries) << what;
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc) << what;
    EXPECT_EQ(a.boundaryWaitCycles, b.boundaryWaitCycles) << what;
    EXPECT_EQ(a.sbFullCycles, b.sbFullCycles) << what;
    EXPECT_EQ(a.febFullCycles, b.febFullCycles) << what;
    EXPECT_EQ(a.snoopBlockedCycles, b.snoopBlockedCycles) << what;
    EXPECT_EQ(a.lockBlockedCycles, b.lockBlockedCycles) << what;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << what;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << what;
    EXPECT_EQ(a.staleLoads, b.staleLoads) << what;
    EXPECT_EQ(a.bufferConflicts, b.bufferConflicts) << what;
    EXPECT_EQ(a.divertedVictims, b.divertedVictims) << what;
    EXPECT_EQ(a.wpqLoadHits, b.wpqLoadHits) << what;
    EXPECT_EQ(a.wpqFlushedEntries, b.wpqFlushedEntries) << what;
    EXPECT_EQ(a.wpqFallbackFlushes, b.wpqFallbackFlushes) << what;
    EXPECT_EQ(a.wpqOverflowEvents, b.wpqOverflowEvents) << what;
    EXPECT_EQ(a.maxWpqOccupancy, b.maxWpqOccupancy) << what;
    EXPECT_EQ(a.regionsCommitted, b.regionsCommitted) << what;
    EXPECT_DOUBLE_EQ(a.avgRegionInsts, b.avgRegionInsts) << what;
    EXPECT_DOUBLE_EQ(a.avgRegionStores, b.avgRegionStores) << what;
}

void
expectOutcomeEq(const harness::RunOutcome &a, const harness::RunOutcome &b,
                const std::string &what)
{
    expectResultEq(a.result, b.result, what);
    EXPECT_EQ(a.threads, b.threads) << what;
    EXPECT_EQ(a.compileStats.outputInsts, b.compileStats.outputInsts)
        << what;
    EXPECT_EQ(a.compileStats.boundaries, b.compileStats.boundaries) << what;
    EXPECT_EQ(a.compileStats.checkpointStores,
              b.compileStats.checkpointStores)
        << what;
}

/** The mixed spec list both executors sweep: several schemes and
 *  sensitivity overrides over two fast paper apps. */
std::vector<harness::RunSpec>
mixedSpecs()
{
    std::vector<harness::RunSpec> specs;
    for (const char *app : {"is", "xz"}) {
        for (core::Scheme s : {core::Scheme::LightWsp, core::Scheme::Capri,
                               core::Scheme::Ppa}) {
            harness::RunSpec spec;
            spec.workload = app;
            spec.scheme = s;
            specs.push_back(spec);
        }
        harness::RunSpec wpq;
        wpq.workload = app;
        wpq.scheme = core::Scheme::LightWsp;
        wpq.wpqEntries = 16;
        specs.push_back(wpq);
    }
    return specs;
}

/** Store-dense scratch profile (not in the paper registry) so the
 *  fast-forward tests control threads/cores/warmup directly. */
workloads::WorkloadProfile
scratchProfile(unsigned threads)
{
    workloads::WorkloadProfile p;
    p.name = "sweep-scratch";
    p.suite = "TEST";
    p.threads = threads;
    p.footprintBytes = 64 * 1024;
    p.hotBytes = 16 * 1024;
    p.locality = 0.6;
    p.branchMissRate = 0.01;
    workloads::PhaseSpec ph;
    ph.pattern = workloads::PhaseSpec::Pattern::Random;
    ph.loads = 2;
    ph.stores = 2;
    ph.alus = 3;
    ph.trip = 96;
    ph.reps = 3;
    ph.lockedRmw = threads > 1;
    p.phases.push_back(ph);
    return p;
}

core::RunResult
runDirect(const workloads::WorkloadProfile &profile, core::Scheme scheme,
          unsigned threads, unsigned cores, bool fast_forward,
          std::uint64_t warmup_insts)
{
    auto w = workloads::generate(profile);
    harness::RunSpec spec;
    spec.workload = profile.name;
    spec.scheme = scheme;
    core::SystemConfig cfg = harness::makeConfig(profile, spec);
    cfg.numCores = cores;
    // Pin the legacy engine: the event scheduler ignores
    // fastForwardEnabled (it supersedes it), so the ff-on/ff-off A/B
    // below would degenerate to event-vs-event and assert nothing.
    cfg.engine = SimEngine::Cycle;
    cfg.fastForwardEnabled = fast_forward;
    cfg.warmupInsts = warmup_insts;
    cfg.applySchemeDefaults();
    auto prog = harness::prepareProgram(std::move(w), spec);
    core::System sys(cfg, prog, threads);
    return sys.run();
}

} // namespace

TEST(Sweep, ParallelMatchesSerialBitForBit)
{
    setLogQuiet(true);
    auto specs = mixedSpecs();

    harness::Runner serial_runner;
    harness::SweepExecutor serial(1);
    auto serial_out = serial.runAll(serial_runner, specs);

    harness::Runner parallel_runner;
    harness::SweepExecutor parallel(4);
    auto parallel_out = parallel.runAll(parallel_runner, specs);

    ASSERT_EQ(serial_out.size(), specs.size());
    ASSERT_EQ(parallel_out.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectOutcomeEq(serial_out[i], parallel_out[i],
                        "spec " + harness::specKey(specs[i]));

    EXPECT_EQ(serial.totalStats().simulatedCycles,
              parallel.totalStats().simulatedCycles);
    EXPECT_EQ(serial.totalStats().points, parallel.totalStats().points);
}

TEST(Sweep, SlowdownsMatchScalarPath)
{
    setLogQuiet(true);
    auto specs = mixedSpecs();

    harness::Runner sweep_runner;
    harness::SweepExecutor exec(3);
    auto slow = exec.slowdowns(sweep_runner, specs);

    harness::Runner scalar_runner;
    ASSERT_EQ(slow.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_DOUBLE_EQ(slow[i],
                         scalar_runner.slowdownVsBaseline(specs[i]))
            << harness::specKey(specs[i]);
    }
}

TEST(Sweep, MemoReturnsIdenticalOutcome)
{
    setLogQuiet(true);
    harness::RunSpec spec;
    spec.workload = "is";
    spec.scheme = core::Scheme::LightWsp;

    harness::Runner runner;
    auto first = runner.run(spec);

    // Same key whether the defaults are spelled out or left unset.
    harness::RunSpec explicit_spec = spec;
    explicit_spec.wpqEntries = 64;
    explicit_spec.storeThreshold = 32;
    explicit_spec.persistPathGBps = 4.0;
    EXPECT_EQ(harness::specKey(spec), harness::specKey(explicit_spec));

    auto again = runner.run(explicit_spec);
    expectOutcomeEq(first, again, "memoized rerun");
}

TEST(Sweep, FastForwardIsInvisibleAcrossSchemes)
{
    setLogQuiet(true);
    auto profile = scratchProfile(1);
    for (core::Scheme s :
         {core::Scheme::Baseline, core::Scheme::Capri,
          core::Scheme::LightWsp}) {
        auto off = runDirect(profile, s, 1, 1, false, 0);
        auto on = runDirect(profile, s, 1, 1, true, 0);
        ASSERT_TRUE(off.completed);
        expectResultEq(off, on,
                       std::string("scheme ") + core::schemeName(s));
    }
}

TEST(Sweep, FastForwardIsInvisibleWithWarmup)
{
    setLogQuiet(true);
    auto profile = scratchProfile(4);
    auto off = runDirect(profile, core::Scheme::LightWsp, 4, 4, false,
                         /*warmup_insts=*/2000);
    auto on = runDirect(profile, core::Scheme::LightWsp, 4, 4, true,
                        /*warmup_insts=*/2000);
    ASSERT_TRUE(off.completed);
    expectResultEq(off, on, "4t with warmup");
}

TEST(Sweep, FastForwardIsInvisibleWhenOversubscribed)
{
    setLogQuiet(true);
    // 6 threads on 2 cores: the scheduler's quantum decides when each
    // core switches threads, so the fast-forward jump must stop at every
    // schedule check to keep context switches on identical cycles.
    auto profile = scratchProfile(6);
    auto off = runDirect(profile, core::Scheme::LightWsp, 6, 2, false, 0);
    auto on = runDirect(profile, core::Scheme::LightWsp, 6, 2, true, 0);
    ASSERT_TRUE(off.completed);
    expectResultEq(off, on, "6 threads on 2 cores");
}

TEST(Sweep, ParallelForCoversAllIndicesAndRethrows)
{
    std::vector<int> hits(64, 0);
    harness::parallelFor(4, hits.size(),
                         [&](std::size_t i) { hits[i] = 1; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << i;

    EXPECT_THROW(
        harness::parallelFor(3, 8,
                             [&](std::size_t i) {
                                 if (i == 5)
                                     throw std::runtime_error("boom");
                             }),
        std::runtime_error);
}
