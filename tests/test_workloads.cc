/**
 * @file
 * Workload-generator tests: all 38 paper profiles produce valid,
 * deterministic, runnable programs with the advertised structure.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "cpu/lock_table.hh"
#include "cpu/thread_context.hh"
#include "ir/text_io.hh"
#include "ir/verifier.hh"
#include "workloads/generator.hh"

using namespace lwsp;
using namespace lwsp::workloads;

TEST(Workloads, PaperAppRoster)
{
    // Fig. 7 lists 39 per-app rows (lbm appears in both CPU2006 and
    // CPU2017); the paper's "38 applications" counts it once.
    EXPECT_EQ(paperProfiles().size(), 39u);
    std::map<std::string, unsigned> suite_counts;
    for (const auto &p : paperProfiles())
        ++suite_counts[p.suite];
    EXPECT_EQ(suite_counts["CPU2006"], 8u);
    EXPECT_EQ(suite_counts["CPU2017"], 7u);
    EXPECT_EQ(suite_counts["STAMP"], 4u);
    EXPECT_EQ(suite_counts["NPB"], 7u);
    EXPECT_EQ(suite_counts["SPLASH3"], 10u);
    EXPECT_EQ(suite_counts["WHISPER"], 3u);
}

TEST(Workloads, LookupByName)
{
    EXPECT_EQ(profileByName("lbm").suite, "CPU2006");
    EXPECT_EQ(profileByName("tpcc").threads, 8u);
    EXPECT_THROW(profileByName("not-an-app"), FatalError);
}

TEST(Workloads, MemoryIntensiveNamesResolve)
{
    for (const auto &name : memoryIntensiveNames())
        EXPECT_NO_THROW(profileByName(name));
}

TEST(Workloads, EveryProfileGeneratesValidModule)
{
    for (const auto &p : paperProfiles()) {
        Workload w = generate(p);
        EXPECT_TRUE(ir::verifyModule(*w.module).empty()) << p.name;
        EXPECT_GT(w.estimatedInstsPerThread, 1000u) << p.name;
        bool locked = false;
        for (const auto &ph : p.phases)
            locked = locked || ph.lockedRmw;
        EXPECT_EQ(!w.lockAddrs.empty(), locked) << p.name;
    }
}

TEST(Workloads, GenerationIsDeterministic)
{
    auto a = generate(profileByName("xz"));
    auto b = generate(profileByName("xz"));
    EXPECT_EQ(ir::moduleToString(*a.module),
              ir::moduleToString(*b.module));
}

TEST(Workloads, EveryProfileCompiles)
{
    for (const auto &p : paperProfiles()) {
        Workload w = generate(p);
        compiler::LightWspCompiler comp;
        auto prog = comp.compile(std::move(w.module));
        EXPECT_GT(prog.stats.boundaries, 0u) << p.name;
        EXPECT_TRUE(ir::verifyModule(*prog.module).empty()) << p.name;
    }
}

TEST(Workloads, FunctionalRunMatchesEstimate)
{
    // Execute a single-threaded profile functionally and compare the
    // actual dynamic instruction count to the generator's estimate.
    Workload w = generate(profileByName("hmmer"));
    auto prog = compiler::makeUncompiled(std::move(w.module));
    mem::MemImage mem;
    cpu::LockTable locks;
    cpu::RegionAllocator alloc;
    cpu::ThreadContext tc(prog, 0, mem, locks, alloc);
    tc.reset(0);
    cpu::ExecRecord rec;
    std::uint64_t guard = 0;
    while (!tc.halted()) {
        ASSERT_EQ(tc.step(rec), cpu::StepStatus::Ok);
        ASSERT_LT(++guard, 10'000'000u);
    }
    double actual = static_cast<double>(tc.instsExecuted());
    double est = static_cast<double>(w.estimatedInstsPerThread);
    EXPECT_GT(actual, est * 0.5);
    EXPECT_LT(actual, est * 2.0);
}

TEST(Workloads, StoreDensityTracksProfile)
{
    // A store-heavy profile must execute a larger store fraction than a
    // compute-heavy one.
    auto density = [](const char *name) {
        Workload w = generate(profileByName(name));
        auto prog = compiler::makeUncompiled(std::move(w.module));
        mem::MemImage mem;
        cpu::LockTable locks;
        cpu::RegionAllocator alloc;
        cpu::ThreadContext tc(prog, 0, mem, locks, alloc);
        tc.reset(0);
        cpu::ExecRecord rec;
        std::uint64_t stores = 0, insts = 0, guard = 0;
        while (!tc.halted() && ++guard < 5'000'000) {
            if (tc.step(rec) == cpu::StepStatus::Ok) {
                ++insts;
                stores += rec.isStore;
            }
        }
        return static_cast<double>(stores) / static_cast<double>(insts);
    };
    EXPECT_GT(density("lbm"), density("namd") * 1.5);
}

TEST(Workloads, PartitionsAreDisjointAcrossThreads)
{
    // Two threads of an MT profile must write disjoint heap partitions.
    const auto &p = profileByName("is");
    Workload w = generate(p);
    auto prog = compiler::makeUncompiled(std::move(w.module));
    mem::MemImage mem;
    cpu::LockTable locks;
    cpu::RegionAllocator alloc;

    auto heap_writes = [&](ThreadId tid) {
        cpu::ThreadContext tc(prog, tid, mem, locks, alloc);
        tc.reset(0);
        cpu::ExecRecord rec;
        std::set<Addr> addrs;
        std::uint64_t guard = 0;
        while (!tc.halted() && ++guard < 5'000'000) {
            if (tc.step(rec) == cpu::StepStatus::Ok && rec.isStore &&
                rec.addr >= Workload::heapBase &&
                rec.addr < Workload::sharedBase) {
                addrs.insert(rec.addr);
            }
        }
        return addrs;
    };
    auto a0 = heap_writes(0);
    auto a1 = heap_writes(1);
    for (Addr a : a0)
        EXPECT_EQ(a1.count(a), 0u) << std::hex << a;
}
