/**
 * @file
 * LRPO protocol tests on scripted memory controllers: region-ordered
 * flushing across two MCs, bdry/flush-ACK exchanges, flush-ID advance,
 * deadlock fallback with undo, and the crash-drain consistency rules.
 */

#include <gtest/gtest.h>

#include "mem/mem_controller.hh"
#include "mem/mem_image.hh"
#include "noc/noc.hh"

using namespace lwsp;
using namespace lwsp::mem;

namespace {

struct Rig
{
    MemImage pm;
    noc::Noc net;
    std::vector<std::unique_ptr<MemController>> mcs;
    Tick now = 0;

    explicit Rig(McConfig cfg = {}, unsigned num_mcs = 2)
        : net(num_mcs, /*hop=*/5)
    {
        cfg.numMcs = num_mcs;
        std::vector<McEndpoint *> eps;
        for (McId i = 0; i < num_mcs; ++i) {
            mcs.push_back(
                std::make_unique<MemController>(i, cfg, pm, net));
            eps.push_back(mcs.back().get());
        }
        net.attach(std::move(eps));
    }

    void
    tick(unsigned cycles = 1)
    {
        for (unsigned i = 0; i < cycles; ++i) {
            for (auto &mc : mcs)
                mc->tick(now);
            net.tick(now);
            ++now;
        }
    }

    PersistEntry
    store(Addr addr, std::uint64_t value, RegionId region)
    {
        PersistEntry e;
        e.addr = addr;
        e.value = value;
        e.region = region;
        return e;
    }

    void
    accept(McId mc, const PersistEntry &e)
    {
        ASSERT_TRUE(mcs[mc]->canAccept(e));
        mcs[mc]->accept(e, now);
    }

    void
    crash()
    {
        net.deliverAllNow(now);
        bool progress = true;
        while (progress) {
            progress = false;
            for (auto &mc : mcs)
                progress = mc->crashStep(now) || progress;
            net.deliverAllNow(now);
        }
        for (auto &mc : mcs)
            mc->crashFinish();
    }
};

} // namespace

TEST(McProtocol, EntryNotFlushedBeforeBoundary)
{
    Rig rig;
    rig.accept(0, rig.store(0x1000, 42, 1));
    rig.tick(100);
    EXPECT_EQ(rig.pm.read(0x1000), 0u);  // gated: boundary never arrived
    EXPECT_EQ(rig.mcs[0]->flushedEntries(), 0u);
}

TEST(McProtocol, FlushAfterBoundaryBroadcastAndAcks)
{
    Rig rig;
    rig.accept(0, rig.store(0x1000, 42, 1));
    rig.net.broadcastBoundary(1, rig.now);
    rig.tick(50);
    EXPECT_EQ(rig.pm.read(0x1000), 42u);
    EXPECT_EQ(rig.mcs[0]->flushId(), 2u);
    EXPECT_EQ(rig.mcs[1]->flushId(), 2u);
    EXPECT_EQ(rig.mcs[0]->regionsCommitted(), 1u);
}

TEST(McProtocol, YoungerRegionWaitsForOlder)
{
    Rig rig;
    // Region 2's entry arrives first (NUMA inversion), region 1's later.
    rig.accept(0, rig.store(0x2000, 22, 2));
    rig.net.broadcastBoundary(2, rig.now);
    rig.tick(50);
    // Region 1 hasn't even arrived: nothing of region 2 may flush.
    EXPECT_EQ(rig.pm.read(0x2000), 0u);

    rig.accept(0, rig.store(0x1000, 11, 1));
    rig.net.broadcastBoundary(1, rig.now);
    rig.tick(80);
    EXPECT_EQ(rig.pm.read(0x1000), 11u);
    EXPECT_EQ(rig.pm.read(0x2000), 22u);
}

TEST(McProtocol, SameAddressCrossRegionOrder)
{
    Rig rig;
    // WAW: region 2 overwrites region 1's value; arrival order inverted.
    rig.accept(0, rig.store(0x3000, 200, 2));
    rig.accept(0, rig.store(0x3000, 100, 1));
    rig.net.broadcastBoundary(1, rig.now);
    rig.net.broadcastBoundary(2, rig.now);
    rig.tick(80);
    EXPECT_EQ(rig.pm.read(0x3000), 200u);  // younger region's value wins
}

TEST(McProtocol, EmptyRegionsCommitWithoutEntries)
{
    Rig rig;
    for (RegionId r = 1; r <= 5; ++r)
        rig.net.broadcastBoundary(r, rig.now);
    rig.tick(80);
    EXPECT_EQ(rig.mcs[0]->flushId(), 6u);
    EXPECT_EQ(rig.mcs[1]->flushId(), 6u);
}

TEST(McProtocol, EntriesSpreadAcrossMcsBothFlush)
{
    Rig rig;
    rig.accept(0, rig.store(0x1000, 1, 1));   // line 0x1000 -> MC0
    rig.accept(1, rig.store(0x1040, 2, 1));   // next line -> MC1
    rig.net.broadcastBoundary(1, rig.now);
    rig.tick(80);
    EXPECT_EQ(rig.pm.read(0x1000), 1u);
    EXPECT_EQ(rig.pm.read(0x1040), 2u);
}

TEST(McProtocol, CrashDiscardsUnbroadcastRegion)
{
    Rig rig;
    rig.accept(0, rig.store(0x1000, 11, 1));
    rig.net.broadcastBoundary(1, rig.now);
    rig.tick(50);
    rig.accept(0, rig.store(0x2000, 22, 2));  // boundary 2 never sent
    rig.crash();
    EXPECT_EQ(rig.pm.read(0x1000), 11u);
    EXPECT_EQ(rig.pm.read(0x2000), 0u);
}

TEST(McProtocol, CrashCompletesInFlightAckedRegion)
{
    Rig rig;
    rig.accept(0, rig.store(0x1000, 11, 1));
    rig.net.broadcastBoundary(1, rig.now);
    // Crash immediately: the broadcast + ACKs are in flight but battery
    // delivery must still commit region 1.
    rig.crash();
    EXPECT_EQ(rig.pm.read(0x1000), 11u);
}

TEST(McProtocol, DeadlockFallbackMakesProgress)
{
    McConfig cfg;
    cfg.wpqEntries = 4;
    Rig rig(cfg);
    // Fill the WPQ with region-2 entries while region 1's boundary never
    // arrives: the fallback must undo-log-flush the oldest present
    // region so the (blocked) paths can move again.
    for (unsigned i = 0; i < 4; ++i)
        rig.accept(0, rig.store(0x1000 + 128 * i, i + 1, 2));
    EXPECT_TRUE(rig.mcs[0]->wpq().full());
    rig.tick(40);
    EXPECT_TRUE(rig.mcs[0]->inFallback());
    EXPECT_GT(rig.mcs[0]->fallbackFlushes(), 0u);
    EXPECT_FALSE(rig.mcs[0]->wpq().full());  // room was made
}

TEST(McProtocol, FallbackRolledBackOnCrash)
{
    McConfig cfg;
    cfg.wpqEntries = 2;
    Rig rig(cfg);
    rig.pm.write(0x1000, 7);  // pre-image
    rig.accept(0, rig.store(0x1000, 99, 2));
    rig.accept(0, rig.store(0x1080, 98, 2));
    rig.tick(40);  // fallback flushes region 2 with undo logging
    EXPECT_GT(rig.mcs[0]->fallbackFlushes(), 0u);
    EXPECT_EQ(rig.pm.read(0x1000), 99u);  // speculatively in PM
    rig.crash();  // region 2 never became ready
    EXPECT_EQ(rig.pm.read(0x1000), 7u);   // rolled back to pre-image
    EXPECT_EQ(rig.pm.read(0x1080), 0u);
}

TEST(McProtocol, FallbackKeptWhenRegionCommits)
{
    McConfig cfg;
    cfg.wpqEntries = 2;
    Rig rig(cfg);
    rig.accept(0, rig.store(0x1000, 99, 1));
    rig.accept(0, rig.store(0x1080, 98, 1));
    rig.tick(40);  // fallback may flush region 1 early
    rig.net.broadcastBoundary(1, rig.now);
    rig.tick(80);
    rig.crash();
    EXPECT_EQ(rig.pm.read(0x1000), 99u);  // committed, undo dropped
    EXPECT_EQ(rig.pm.read(0x1080), 98u);
}

TEST(McProtocol, LateOlderWriteAbsorbedIntoFallbackPreImage)
{
    McConfig cfg;
    cfg.wpqEntries = 2;
    Rig rig(cfg);
    // Region 5's write to X fallback-flushes; region 1's write to X
    // arrives later. PM must keep region 5's value, and a crash that
    // commits only region 1 must expose region 1's value.
    rig.accept(0, rig.store(0x1000, 55, 5));
    rig.accept(0, rig.store(0x1080, 54, 5));
    rig.tick(40);  // fallback writes X=55
    EXPECT_EQ(rig.pm.read(0x1000), 55u);

    rig.accept(0, rig.store(0x1000, 11, 1));
    rig.net.broadcastBoundary(1, rig.now);
    rig.tick(80);  // region 1 commits; its X write is absorbed
    EXPECT_EQ(rig.pm.read(0x1000), 55u);  // younger value stays in PM

    rig.crash();  // region 5 never committed
    EXPECT_EQ(rig.pm.read(0x1000), 11u);  // region 1's value restored
}

TEST(McProtocol, CapacityOneWpqFlushesAndFallsBack)
{
    McConfig cfg;
    cfg.wpqEntries = 1;
    Rig rig(cfg);
    // Normal path with the minimal queue: one entry, boundary, flush.
    rig.accept(0, rig.store(0x1000, 11, 1));
    EXPECT_TRUE(rig.mcs[0]->wpq().full());
    rig.net.broadcastBoundary(1, rig.now);
    rig.tick(50);
    EXPECT_EQ(rig.pm.read(0x1000), 11u);
    EXPECT_TRUE(rig.mcs[0]->wpq().empty());

    // A single unboundaried entry saturates the queue: the §IV-D
    // fallback must still make room.
    rig.accept(0, rig.store(0x2000, 22, 3));
    EXPECT_TRUE(rig.mcs[0]->wpq().full());
    rig.tick(40);
    EXPECT_GT(rig.mcs[0]->fallbackFlushes(), 0u);
    EXPECT_FALSE(rig.mcs[0]->wpq().full());

    rig.crash();  // region 3 never committed: undo must restore
    EXPECT_EQ(rig.pm.read(0x2000), 0u);
    EXPECT_EQ(rig.pm.read(0x1000), 11u);
}

TEST(McProtocol, CrashDrainWithEmptyQueue)
{
    Rig rig;
    // Crash with nothing ever accepted: the drain must terminate
    // immediately and leave PM untouched.
    rig.crash();
    EXPECT_EQ(rig.mcs[0]->flushedEntries(), 0u);

    // Boundary-only traffic (empty regions) then crash: the battery
    // drain still commits the broadcast prefix without any PM writes.
    Rig rig2;
    for (RegionId r = 1; r <= 3; ++r)
        rig2.net.broadcastBoundary(r, rig2.now);
    rig2.crash();
    EXPECT_GE(rig2.mcs[0]->flushId(), 4u);
    EXPECT_EQ(rig2.mcs[0]->flushedEntries(), 0u);
}

TEST(McProtocol, RegionStoresExactlyWpqCapacity)
{
    McConfig cfg;
    cfg.wpqEntries = 4;
    Rig rig(cfg);
    // A region whose store count equals the queue capacity fills the
    // WPQ completely but never overflows: once its boundary arrives it
    // drains in order with no fallback.
    for (unsigned i = 0; i < 4; ++i)
        rig.accept(0, rig.store(0x1000 + 128 * i, i + 1, 1));
    EXPECT_TRUE(rig.mcs[0]->wpq().full());
    rig.net.broadcastBoundary(1, rig.now);
    // Land the broadcast before the next MC tick: a full queue whose
    // awaited boundary is still in flight is exactly the §IV-D overflow
    // condition, which is not what this test is about.
    rig.net.deliverAllNow(rig.now);
    rig.tick(100);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(rig.pm.read(0x1000 + 128 * i), i + 1);
    EXPECT_EQ(rig.mcs[0]->fallbackFlushes(), 0u);
    EXPECT_TRUE(rig.mcs[0]->wpq().empty());
    EXPECT_EQ(rig.mcs[0]->regionsCommitted(), 1u);
}

TEST(McProtocol, UngatedModeDrainsFifo)
{
    McConfig cfg;
    cfg.gatingEnabled = false;
    Rig rig(cfg);
    rig.accept(0, rig.store(0x1000, 1, 7));  // arbitrary region ids
    rig.accept(0, rig.store(0x1080, 2, 3));
    rig.tick(20);
    EXPECT_EQ(rig.pm.read(0x1000), 1u);
    EXPECT_EQ(rig.pm.read(0x1080), 2u);
}

TEST(McProtocol, LoadMissPathAndWpqHit)
{
    Rig rig;
    // DRAM-cache miss then PM read; WPQ hit adds the flush-wait penalty.
    auto miss = rig.mcs[0]->serveLoadMiss(0x5000, rig.now);
    EXPECT_FALSE(miss.wpqHit);
    EXPECT_GE(miss.latency, static_cast<Tick>(350));

    rig.accept(0, rig.store(0x6000, 9, 1));
    auto hit = rig.mcs[0]->serveLoadMiss(0x6000, rig.now);
    EXPECT_TRUE(hit.wpqHit);
    EXPECT_GT(hit.latency, miss.latency);
    EXPECT_EQ(rig.mcs[0]->wpqLoadHits(), 1u);
}

TEST(McProtocol, DramCacheHitIsCheap)
{
    Rig rig;
    auto first = rig.mcs[0]->serveLoadMiss(0x7000, rig.now);
    rig.now += 1000;
    auto second = rig.mcs[0]->serveLoadMiss(0x7000, rig.now);
    EXPECT_TRUE(second.dramCacheHit);
    EXPECT_LT(second.latency, first.latency);
}

TEST(McProtocol, SingleMcNeedsNoPeerAcks)
{
    Rig rig(McConfig{}, /*num_mcs=*/1);
    rig.accept(0, rig.store(0x1000, 5, 1));
    rig.net.broadcastBoundary(1, rig.now);
    rig.tick(40);
    EXPECT_EQ(rig.pm.read(0x1000), 5u);
    EXPECT_EQ(rig.mcs[0]->flushId(), 2u);
}

TEST(McProtocol, StrictModeStillCorrect)
{
    McConfig cfg;
    cfg.strictFlushAcks = true;
    Rig rig(cfg);
    for (RegionId r = 1; r <= 3; ++r) {
        rig.accept(0, rig.store(0x1000 + r * 128, r, r));
        rig.net.broadcastBoundary(r, rig.now);
    }
    rig.tick(300);
    for (RegionId r = 1; r <= 3; ++r)
        EXPECT_EQ(rig.pm.read(0x1000 + r * 128), r);
    EXPECT_EQ(rig.mcs[0]->flushId(), 4u);
}

TEST(McProtocol, TraceHookSeesFlushKinds)
{
    Rig rig;
    std::vector<int> kinds;
    rig.mcs[0]->setFlushTraceHook(
        [&](int kind, Addr, std::uint64_t, RegionId) {
            kinds.push_back(kind);
        });
    rig.accept(0, rig.store(0x1000, 1, 1));
    rig.net.broadcastBoundary(1, rig.now);
    rig.tick(50);
    ASSERT_EQ(kinds.size(), 1u);
    EXPECT_EQ(kinds[0], 0);  // normal flush
}
