/**
 * @file
 * Serve-subsystem tests: deterministic samplers (Zipf keys, Poisson +
 * burst arrivals), spec round-trips, request-compiler feasibility, the
 * Lindley latency fold on hand-computed values, and an end-to-end
 * traced run whose ServeMarks must cover the whole op tape.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "core/system.hh"
#include "pds/pds.hh"
#include "serve/serve.hh"
#include "trace/events.hh"

using namespace lwsp;

TEST(ServeZipf, DeterministicAcrossInstances)
{
    serve::ZipfSampler a(64), b(64);
    Rng ra(42), rb(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.sample(ra), b.sample(rb));
}

TEST(ServeZipf, RankFrequencyMonotone)
{
    serve::ZipfSampler z(64);
    Rng rng(7);
    std::map<std::uint64_t, unsigned> count;
    constexpr unsigned draws = 20000;
    for (unsigned i = 0; i < draws; ++i) {
        std::uint64_t k = z.sample(rng);
        ASSERT_GE(k, 1u);
        ASSERT_LE(k, 64u);
        ++count[k];
    }
    // s=1 Zipf: expected counts scale as 1/rank, so widely spaced ranks
    // must order strictly even with sampling noise.
    EXPECT_GT(count[1], count[8]);
    EXPECT_GT(count[8], count[32]);
    // Rank 1 draws ~1/H(64) ~ 21% of the mass.
    EXPECT_GT(count[1], draws / 8);
}

TEST(ServeDetLog, MatchesStdLog)
{
    for (double x : {1e-6, 1e-3, 0.1, 0.5, 0.999, 1.0, 1.5, 2.0, 777.0,
                     1e9}) {
        double want = std::log(x);
        double got = serve::detLog(x);
        EXPECT_NEAR(got, want, 1e-9 * std::max(1.0, std::fabs(want)))
            << "x=" << x;
    }
}

TEST(ServeArrivals, MeanRateWithinTolerance)
{
    serve::ServeSpec spec;
    spec.numRequests = 5000;
    spec.meanIa = 2000;
    spec.burst = 0;
    spec.seed = 3;
    auto arr = serve::arrivalTimes(spec);
    ASSERT_EQ(arr.size(), 5000u);
    for (std::size_t i = 1; i < arr.size(); ++i)
        EXPECT_GE(arr[i], arr[i - 1]);
    double meanIa =
        static_cast<double>(arr.back()) / static_cast<double>(arr.size());
    // Exponential with mean 2000 over 5000 draws: the sample mean sits
    // within a few percent; 10% tolerance leaves seed-luck headroom.
    EXPECT_NEAR(meanIa, 2000.0, 200.0);
}

TEST(ServeArrivals, ReproducibleAndBurstSensitive)
{
    serve::ServeSpec spec;
    spec.numRequests = 800;
    spec.meanIa = 1000;
    spec.seed = 11;

    spec.burst = 2;
    auto a = serve::arrivalTimes(spec);
    auto b = serve::arrivalTimes(spec);
    EXPECT_EQ(a, b);  // burst placement is fully seed-determined

    spec.burst = 0;
    auto plain = serve::arrivalTimes(spec);
    EXPECT_NE(a, plain);
    // Bursts only ever speed arrivals up, so the bursty tape finishes
    // strictly earlier.
    EXPECT_LT(a.back(), plain.back());

    spec.burst = 2;
    spec.seed = 12;
    EXPECT_NE(serve::arrivalTimes(spec), a);
}

TEST(ServeSpec, RoundTripsThroughString)
{
    serve::ServeSpec spec;
    spec.profile = serve::Profile::Horde;
    spec.sizeClass = 2;
    spec.numRequests = 96;
    spec.meanIa = 750;
    spec.burst = 1;
    spec.seed = 99;
    spec.opsPerTx = 8;
    std::string s = spec.toString();
    serve::ServeSpec back;
    std::string err;
    ASSERT_TRUE(serve::ServeSpec::parse(s, back, err)) << err;
    EXPECT_EQ(back.toString(), s);
    EXPECT_EQ(back.profile, serve::Profile::Horde);
    EXPECT_EQ(back.numRequests, 96u);
    EXPECT_EQ(back.burst, 1u);
    EXPECT_EQ(back.opsPerTx, 8u);

    serve::ServeSpec bad;
    EXPECT_FALSE(serve::ServeSpec::parse("squid,sz=1", bad, err));
    EXPECT_FALSE(serve::ServeSpec::parse("varnish,burst=9", bad, err));
    EXPECT_FALSE(serve::ServeSpec::parse("varnish,tx=3", bad, err));
}

TEST(ServeWorkload, LoweringIsFeasibleAndCoversRequests)
{
    for (auto prof : {serve::Profile::Varnish, serve::Profile::Horde}) {
        serve::ServeSpec spec;
        spec.profile = prof;
        spec.numRequests = 300;
        spec.seed = 5;
        serve::ServeWorkload wl = serve::buildWorkload(spec);

        ASSERT_EQ(wl.requests.size(), 300u);
        ASSERT_EQ(wl.opEnd.size(), 300u);
        EXPECT_EQ(wl.opEnd.back(), wl.ops.size());
        EXPECT_EQ(wl.pdsSpec.numOps, wl.ops.size());
        unsigned prev = 0;
        for (unsigned e : wl.opEnd) {
            EXPECT_GT(e, prev);  // every request costs >= 1 op
            prev = e;
        }
        for (const auto &op : wl.ops)
            EXPECT_LE(op.a, 0xffffffull);  // tape-packing key bound
        // The injected-tape model replays the tape and asserts every
        // pds feasibility invariant; constructing it IS the check.
        pds::PdsModel model(wl.pdsSpec, wl.ops);
        EXPECT_EQ(model.spec().numOps, wl.ops.size());

        // Determinism: the tape is independent of rate/burst knobs.
        serve::ServeSpec rateChanged = spec;
        rateChanged.meanIa = 1;
        rateChanged.burst = 2;
        serve::ServeWorkload wl2 = serve::buildWorkload(rateChanged);
        ASSERT_EQ(wl2.ops.size(), wl.ops.size());
        for (std::size_t i = 0; i < wl.ops.size(); ++i) {
            EXPECT_EQ(wl2.ops[i].op, wl.ops[i].op);
            EXPECT_EQ(wl2.ops[i].a, wl.ops[i].a);
            EXPECT_EQ(wl2.ops[i].v, wl.ops[i].v);
        }
    }
}

TEST(ServeLatency, LindleyFoldHandComputed)
{
    // 4 requests, 1 op each, constant 10-cycle service.
    serve::ServeWorkload wl;
    wl.requests.resize(4);
    wl.ops.resize(4);
    wl.opEnd = {1, 2, 3, 4};
    serve::OpMarks marks;
    marks.completion = {10, 20, 30, 40};
    marks.stallCum = {0, 2, 2, 7};
    marks.wpqOcc = {0, 3, 1, 5};

    //   r0: start max(0,0)=0,   W=10,  lat 10
    //   r1: start max(10,5)=10, W=20,  lat 15   <- queueing delay
    //   r2: start max(20,25)=25,W=35,  lat 10
    //   r3: start max(35,100)=100, W=110, lat 10
    auto rep = serve::LatencyRecorder::fold(wl, marks, {0, 5, 25, 100});
    EXPECT_EQ(rep.requests, 4u);
    EXPECT_DOUBLE_EQ(rep.p50, 10.0);   // nearest-rank 2 of {10,10,10,15}
    EXPECT_DOUBLE_EQ(rep.p99, 15.0);
    EXPECT_DOUBLE_EQ(rep.p999, 15.0);
    EXPECT_DOUBLE_EQ(rep.max, 15.0);
    EXPECT_DOUBLE_EQ(rep.mean, 11.25);
    // The p99 request is r1: 2 stall cycles in its service window
    // (stallCum 0 -> 2), WPQ occupancy 3 at its completing mark.
    EXPECT_DOUBLE_EQ(rep.stallAtP99, 2.0);
    EXPECT_EQ(rep.wpqOccAtP99, 3u);
}

namespace {

serve::OpMarks
runAndMark(const serve::ServeWorkload &wl, pds::PdsScheme scheme)
{
    auto cfg = pds::makePdsConfig(scheme, pds::PdsRunMode::Perf);
    cfg.traceEnabled = true;
    cfg.traceMask = trace::categoryBit(trace::Category::Serve) |
                    trace::categoryBit(trace::Category::Wpq);
    cfg.traceBufferEvents = std::size_t(1) << 16;
    cfg.core.serveMarkAddr =
        pds::PdsModel(wl.pdsSpec, wl.ops).params().served;
    auto prog =
        pds::preparePdsProgram(wl.pdsSpec, wl.ops, scheme,
                               pds::PdsRunMode::Perf);
    core::System sys(cfg, prog, 1);
    auto res = sys.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(pds::checkSemantics(wl.pdsSpec, wl.ops, sys.execImage()),
              "");
    return serve::LatencyRecorder::extractMarks(
        wl, sys.traceSink()->snapshot());
}

} // namespace

TEST(ServeEndToEnd, MarksCoverTapeAndPmtxIsSlower)
{
    serve::ServeSpec spec;
    spec.profile = serve::Profile::Horde;
    spec.numRequests = 48;
    spec.seed = 21;
    serve::ServeWorkload wl = serve::buildWorkload(spec);

    serve::OpMarks light = runAndMark(wl, pds::PdsScheme::LightWsp);
    ASSERT_EQ(light.completion.size(), wl.ops.size());
    for (std::size_t i = 1; i < light.completion.size(); ++i)
        EXPECT_GT(light.completion[i], light.completion[i - 1]);

    // The same tape under the software undo-log baseline must take
    // longer end to end (every tx pays fence/log overhead).
    serve::OpMarks pmtx = runAndMark(wl, pds::PdsScheme::Pmtx);
    ASSERT_EQ(pmtx.completion.size(), wl.ops.size());
    EXPECT_GT(pmtx.completion.back(), light.completion.back());

    // Fold under a saturating arrival pattern (everything arrives
    // almost immediately, so latency is dominated by cumulative service
    // time): pmtx's slower tape must show heavier mean and p99. At open
    // load the ordering can flip for tiny tapes — a single lightwsp
    // boundary stall landing on an arrival cluster — which is exactly
    // why fig21 runs 1200 requests; here we pin the saturated case.
    serve::ServeSpec sat = spec;
    sat.meanIa = 1;
    auto arr = serve::arrivalTimes(sat);
    auto lr = serve::LatencyRecorder::fold(wl, light, arr);
    auto pr = serve::LatencyRecorder::fold(wl, pmtx, arr);
    EXPECT_GT(pr.p99, lr.p99);
    EXPECT_GT(pr.mean, lr.mean);
}
