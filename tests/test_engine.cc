/**
 * @file
 * Engine equivalence: the discrete-event scheduler (SimEngine::Event)
 * must be bit-identical to the legacy cycle-stepped loop
 * (SimEngine::Cycle). "Bit-identical" means every RunResult counter,
 * every dumped stat line, every registered-stat JSON byte, every trace
 * event and both memory images — across clean runs, oversubscribed
 * scheduling, crash drains (single and double failure), hardware fault
 * injection and fuzzer-generated programs.
 *
 * A separate test runs the event engine with verifyWakeups on, which
 * asserts at every scheduling decision that the wakeup heap's minimum
 * is never later than a full linear rescan — the "nobody changed state
 * without rearm()" cross-check.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "compiler/compiler.hh"
#include "core/system.hh"
#include "fuzz/random_program.hh"
#include "fuzz/random_workload.hh"
#include "harness/runner.hh"
#include "workloads/generator.hh"
#include "workloads/profile.hh"

using namespace lwsp;

namespace {

void
expectResultEq(const core::RunResult &a, const core::RunResult &b,
               const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.completed, b.completed) << what;
    EXPECT_EQ(a.instsRetired, b.instsRetired) << what;
    EXPECT_EQ(a.storesRetired, b.storesRetired) << what;
    EXPECT_EQ(a.boundaries, b.boundaries) << what;
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc) << what;
    EXPECT_EQ(a.boundaryWaitCycles, b.boundaryWaitCycles) << what;
    EXPECT_EQ(a.sbFullCycles, b.sbFullCycles) << what;
    EXPECT_EQ(a.febFullCycles, b.febFullCycles) << what;
    EXPECT_EQ(a.snoopBlockedCycles, b.snoopBlockedCycles) << what;
    EXPECT_EQ(a.lockBlockedCycles, b.lockBlockedCycles) << what;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << what;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << what;
    EXPECT_EQ(a.staleLoads, b.staleLoads) << what;
    EXPECT_EQ(a.bufferConflicts, b.bufferConflicts) << what;
    EXPECT_EQ(a.divertedVictims, b.divertedVictims) << what;
    EXPECT_EQ(a.wpqLoadHits, b.wpqLoadHits) << what;
    EXPECT_EQ(a.wpqFlushedEntries, b.wpqFlushedEntries) << what;
    EXPECT_EQ(a.wpqFallbackFlushes, b.wpqFallbackFlushes) << what;
    EXPECT_EQ(a.wpqOverflowEvents, b.wpqOverflowEvents) << what;
    EXPECT_EQ(a.maxWpqOccupancy, b.maxWpqOccupancy) << what;
    EXPECT_EQ(a.regionsCommitted, b.regionsCommitted) << what;
    EXPECT_DOUBLE_EQ(a.avgRegionInsts, b.avgRegionInsts) << what;
    EXPECT_DOUBLE_EQ(a.avgRegionStores, b.avgRegionStores) << what;
}

/** Everything observable about one System run, captured for diffing. */
struct EngineRun
{
    core::RunResult result;
    std::string stats;           ///< dumpStats text
    std::string statsJson;       ///< stat-registry JSON
    std::vector<trace::Event> events;
    mem::MemImage pm;
    mem::MemImage exec;
    bool crashed = false;
    core::CrashReport crash;
};

/**
 * Run @p prog once under @p engine. fail_at > 0 crashes at that cycle
 * (via runWithPowerFailure, or runWithDoubleFailureDuringDrain when
 * drain_iters >= 0).
 */
EngineRun
execute(core::SystemConfig cfg, const compiler::CompiledProgram &prog,
        unsigned threads, SimEngine engine, Tick fail_at = 0,
        int drain_iters = -1)
{
    cfg.engine = engine;
    core::System sys(cfg, prog, threads);
    EngineRun out;
    if (fail_at == 0)
        out.result = sys.run();
    else if (drain_iters < 0)
        out.result = sys.runWithPowerFailure(fail_at);
    else
        out.result = sys.runWithDoubleFailureDuringDrain(
            fail_at, static_cast<unsigned>(drain_iters));

    std::ostringstream os;
    sys.dumpStats(os);
    out.stats = os.str();
    {
        stats::Registry reg;
        sys.registerStats(reg);
        std::ostringstream js;
        reg.dumpJson(js);
        out.statsJson = js.str();
    }
    if (const auto *sink = sys.traceSink())
        out.events = sink->snapshot();
    out.pm = sys.pmImage().clone();
    out.exec = sys.execImage().clone();
    out.crashed = sys.crashed();
    out.crash = sys.crashReport();
    return out;
}

bool
sameEvent(const trace::Event &a, const trace::Event &b)
{
    return a.tick == b.tick && a.type == b.type && a.unit == b.unit &&
           a.thread == b.thread && a.region == b.region &&
           a.addr == b.addr && a.value == b.value && a.aux == b.aux;
}

void
expectRunsEq(const EngineRun &ev, const EngineRun &cy,
             const std::string &what)
{
    expectResultEq(ev.result, cy.result, what);
    EXPECT_EQ(ev.stats, cy.stats) << what << ": dumpStats differs";
    EXPECT_EQ(ev.statsJson, cy.statsJson)
        << what << ": stat-registry JSON differs";
    EXPECT_TRUE(ev.pm.diff(cy.pm).empty()) << what << ": PM image differs";
    EXPECT_TRUE(ev.exec.diff(cy.exec).empty())
        << what << ": exec image differs";
    EXPECT_EQ(ev.crashed, cy.crashed) << what;

    ASSERT_EQ(ev.events.size(), cy.events.size())
        << what << ": trace event counts differ";
    for (std::size_t i = 0; i < ev.events.size(); ++i) {
        if (!sameEvent(ev.events[i], cy.events[i])) {
            ADD_FAILURE() << what << ": trace event " << i << " differs "
                          << "(tick " << ev.events[i].tick << " vs "
                          << cy.events[i].tick << ")";
            break;
        }
    }

    EXPECT_EQ(ev.crash.faultsArmed, cy.crash.faultsArmed) << what;
    EXPECT_EQ(ev.crash.corruptBarrier, cy.crash.corruptBarrier) << what;
    EXPECT_EQ(ev.crash.truncationHazard, cy.crash.truncationHazard) << what;
    EXPECT_EQ(ev.crash.wpqDamaged, cy.crash.wpqDamaged) << what;
    EXPECT_EQ(ev.crash.poisonedWords, cy.crash.poisonedWords) << what;
    EXPECT_EQ(ev.crash.silentFlips, cy.crash.silentFlips) << what;
    EXPECT_EQ(ev.crash.stallsInjected, cy.crash.stallsInjected) << what;
    EXPECT_EQ(ev.crash.bcastRetries, cy.crash.bcastRetries) << what;
    EXPECT_EQ(ev.crash.bcastLostAtCrash, cy.crash.bcastLostAtCrash) << what;
}

/** Config + compiled program for a paper app under @p scheme. */
struct Prepared
{
    core::SystemConfig cfg;
    compiler::CompiledProgram prog;
    unsigned threads;
    std::vector<Addr> lockAddrs;
};

Prepared
prepare(const std::string &app, core::Scheme scheme)
{
    const auto &profile = workloads::profileByName(app);
    auto w = workloads::generate(profile);
    auto lock_addrs = w.lockAddrs;
    harness::RunSpec spec;
    spec.workload = app;
    spec.scheme = scheme;
    Prepared p{harness::makeConfig(profile, spec),
               harness::prepareProgram(std::move(w), spec),
               profile.threads,
               lock_addrs};
    return p;
}

/** Store-dense scratch profile so the oversubscription test controls
 *  threads/cores directly (6 threads on 2 cores → multi-queued path). */
workloads::WorkloadProfile
scratchProfile(unsigned threads)
{
    workloads::WorkloadProfile p;
    p.name = "engine-scratch";
    p.suite = "TEST";
    p.threads = threads;
    p.footprintBytes = 64 * 1024;
    p.hotBytes = 16 * 1024;
    p.locality = 0.6;
    p.branchMissRate = 0.01;
    workloads::PhaseSpec ph;
    ph.pattern = workloads::PhaseSpec::Pattern::Random;
    ph.loads = 2;
    ph.stores = 2;
    ph.alus = 3;
    ph.trip = 96;
    ph.reps = 3;
    ph.lockedRmw = threads > 1;
    p.phases.push_back(ph);
    return p;
}

} // namespace

// ---- Clean runs ------------------------------------------------------------

TEST(Engine, BuiltinWorkloadsEverySchemeMatch)
{
    setLogQuiet(true);
    for (core::Scheme s :
         {core::Scheme::Baseline, core::Scheme::PspIdeal,
          core::Scheme::LightWsp, core::Scheme::NaiveSfence,
          core::Scheme::Ppa, core::Scheme::Capri, core::Scheme::Cwsp}) {
        auto p = prepare("is", s);
        auto ev = execute(p.cfg, p.prog, p.threads, SimEngine::Event);
        auto cy = execute(p.cfg, p.prog, p.threads, SimEngine::Cycle);
        expectRunsEq(ev, cy, std::string("is/") + core::schemeName(s));
    }
    for (core::Scheme s : {core::Scheme::LightWsp, core::Scheme::Capri}) {
        auto p = prepare("xz", s);
        auto ev = execute(p.cfg, p.prog, p.threads, SimEngine::Event);
        auto cy = execute(p.cfg, p.prog, p.threads, SimEngine::Cycle);
        expectRunsEq(ev, cy, std::string("xz/") + core::schemeName(s));
    }
}

TEST(Engine, OversubscribedSchedulingMatches)
{
    setLogQuiet(true);
    auto profile = scratchProfile(6);
    auto w = workloads::generate(profile);
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(w.module));
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 2;  // 6 threads on 2 cores: context-switch timing
    cfg.applySchemeDefaults();
    auto ev = execute(cfg, prog, 6, SimEngine::Event);
    auto cy = execute(cfg, prog, 6, SimEngine::Cycle);
    expectRunsEq(ev, cy, "6 threads on 2 cores");
}

TEST(Engine, TraceEventsMatch)
{
    setLogQuiet(true);
    auto p = prepare("is", core::Scheme::LightWsp);
    p.cfg.traceEnabled = true;
    auto ev = execute(p.cfg, p.prog, p.threads, SimEngine::Event);
    auto cy = execute(p.cfg, p.prog, p.threads, SimEngine::Cycle);
    EXPECT_FALSE(ev.events.empty());
    expectRunsEq(ev, cy, "is/lightwsp traced");
}

// ---- Fuzzer-generated programs ---------------------------------------------

TEST(Engine, SeededFuzzWorkloadsMatch)
{
    setLogQuiet(true);
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
        auto fp = fuzz::randomWorkloadProgram(seed, /*shrink=*/0);
        compiler::LightWspCompiler comp;
        auto prog = comp.compile(std::move(fp.module));
        core::SystemConfig cfg;
        cfg.scheme = core::Scheme::LightWsp;
        cfg.applySchemeDefaults();
        auto ev = execute(cfg, prog, fp.threads, SimEngine::Event);
        auto cy = execute(cfg, prog, fp.threads, SimEngine::Cycle);
        expectRunsEq(ev, cy, "fuzz-workload seed " + std::to_string(seed));
    }
}

TEST(Engine, SeededFuzzIrProgramsMatch)
{
    setLogQuiet(true);
    for (std::uint64_t seed : {5ull, 17ull}) {
        auto fp = fuzz::randomIrProgram(seed, /*shrink=*/0);
        compiler::LightWspCompiler comp;
        auto prog = comp.compile(std::move(fp.module));
        core::SystemConfig cfg;
        cfg.scheme = core::Scheme::LightWsp;
        cfg.applySchemeDefaults();
        auto ev = execute(cfg, prog, fp.threads, SimEngine::Event);
        auto cy = execute(cfg, prog, fp.threads, SimEngine::Cycle);
        expectRunsEq(ev, cy, "fuzz-ir seed " + std::to_string(seed));
    }
}

// ---- Crash drains and fault injection --------------------------------------

TEST(Engine, CrashDrainMatches)
{
    setLogQuiet(true);
    auto p = prepare("is", core::Scheme::LightWsp);
    auto golden = execute(p.cfg, p.prog, p.threads, SimEngine::Event);
    ASSERT_TRUE(golden.result.completed);
    Tick fail_at = golden.result.cycles / 3;

    auto ev = execute(p.cfg, p.prog, p.threads, SimEngine::Event,
                      fail_at);
    auto cy = execute(p.cfg, p.prog, p.threads, SimEngine::Cycle,
                      fail_at);
    ASSERT_TRUE(ev.crashed);
    expectRunsEq(ev, cy, "is crash at 1/3");

    // Identical post-crash PM images must recover identically.
    auto rec = core::System::recoverChecked(p.cfg, p.prog, p.threads,
                                            ev.pm, p.lockAddrs);
    ASSERT_EQ(rec.outcome, core::RecoveryOutcome::Recovered) << rec.detail;
    auto rr = rec.sys->run();
    EXPECT_TRUE(rr.completed);
}

TEST(Engine, DoubleFailureDuringDrainMatches)
{
    setLogQuiet(true);
    auto p = prepare("is", core::Scheme::LightWsp);
    auto golden = execute(p.cfg, p.prog, p.threads, SimEngine::Cycle);
    ASSERT_TRUE(golden.result.completed);
    Tick fail_at = golden.result.cycles / 2;

    auto ev = execute(p.cfg, p.prog, p.threads, SimEngine::Event,
                      fail_at, /*drain_iters=*/2);
    auto cy = execute(p.cfg, p.prog, p.threads, SimEngine::Cycle,
                      fail_at, /*drain_iters=*/2);
    ASSERT_TRUE(ev.crashed);
    expectRunsEq(ev, cy, "is double failure at 1/2");
}

TEST(Engine, FaultInjectionMatches)
{
    setLogQuiet(true);
    auto p = prepare("is", core::Scheme::LightWsp);
    auto golden = execute(p.cfg, p.prog, p.threads, SimEngine::Event);
    ASSERT_TRUE(golden.result.completed);
    Tick fail_at = golden.result.cycles / 3;

    // Broadcast loss/delay exercise the NoC retry timers (the fault
    // paths with their own re-arm points); WPQ damage and PM poison
    // exercise the crash-time injection hooks.
    core::SystemConfig cfg = p.cfg;
    cfg.faults.enabled = true;
    cfg.faults.hardenedCkpt = true;
    cfg.faults.seed = 7;
    cfg.faults.bcastLossPm = 50;
    cfg.faults.bcastDelayPm = 50;
    cfg.faults.wpqBitFlip = true;
    cfg.faults.pmPoisonWords = 2;

    auto ev = execute(cfg, p.prog, p.threads, SimEngine::Event,
                      fail_at);
    auto cy = execute(cfg, p.prog, p.threads, SimEngine::Cycle,
                      fail_at);
    ASSERT_TRUE(ev.crashed);
    EXPECT_TRUE(ev.crash.faultsArmed);
    expectRunsEq(ev, cy, "is faulted crash at 1/3");
}

// ---- Scheduler self-check and harness plumbing -----------------------------

TEST(Engine, VerifyWakeupsCrossCheckPasses)
{
    setLogQuiet(true);
    // verifyWakeups asserts heap-minimum <= linear-rescan at every
    // scheduling decision; a missing rearm() aborts the run.
    auto p = prepare("is", core::Scheme::LightWsp);
    p.cfg.verifyWakeups = true;
    auto ev = execute(p.cfg, p.prog, p.threads, SimEngine::Event);
    EXPECT_TRUE(ev.result.completed);

    auto profile = scratchProfile(6);
    auto w = workloads::generate(profile);
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(w.module));
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 2;
    cfg.verifyWakeups = true;
    cfg.applySchemeDefaults();
    auto sv = execute(cfg, prog, 6, SimEngine::Event);
    EXPECT_TRUE(sv.result.completed);
}

TEST(Engine, RunnerMemoKeysEnginesSeparately)
{
    setLogQuiet(true);
    harness::RunSpec ev, cy;
    ev.workload = cy.workload = "is";
    ev.scheme = cy.scheme = core::Scheme::LightWsp;
    ev.engine = SimEngine::Event;
    cy.engine = SimEngine::Cycle;
    // Distinct memo keys (no cross-engine cache hits masquerading as
    // equivalence), identical results through the Runner path.
    EXPECT_NE(harness::specKey(ev), harness::specKey(cy));
    harness::Runner runner;
    auto oe = runner.run(ev);
    auto oc = runner.run(cy);
    expectResultEq(oe.result, oc.result, "runner is/lightwsp");
    EXPECT_EQ(oe.threads, oc.threads);
}
