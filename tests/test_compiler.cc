/**
 * @file
 * LightWSP compiler tests: liveness, constant propagation, boundary
 * insertion, threshold enforcement (property-tested over randomized
 * programs), block splitting, unrolling semantics and checkpoint
 * pruning recipes.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "compiler/compiler.hh"
#include "compiler/constprop.hh"
#include "compiler/liveness.hh"
#include "compiler/passes.hh"
#include "cpu/lock_table.hh"
#include "cpu/thread_context.hh"
#include "ir/verifier.hh"
#include "mem/mem_image.hh"

using namespace lwsp;
using namespace lwsp::ir;
using namespace lwsp::compiler;

namespace {

/** r1 = 10; r2 = r1 + 1; store r2; halt — a tiny straightline program. */
std::unique_ptr<Module>
straightline()
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    b.append(Instruction::movi(1, 0x4000));
    b.append(Instruction::movi(2, 10));
    b.append(Instruction::aluImm(Opcode::AddI, 3, 2, 1));
    b.append(Instruction::store(1, 0, 3));
    b.append(Instruction::simple(Opcode::Halt));
    return m;
}

/** Generate a random but valid store-heavy module. */
std::unique_ptr<Module>
randomModule(std::uint64_t seed, unsigned blocks, unsigned insts_per_block)
{
    Rng rng(seed);
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    for (unsigned b = 0; b < blocks; ++b)
        f.addBlock();
    for (unsigned b = 0; b < blocks; ++b) {
        BasicBlock &bb = f.block(b);
        bb.append(Instruction::movi(1, 0x8000));
        for (unsigned i = 0; i < insts_per_block; ++i) {
            switch (rng.below(4)) {
              case 0:
                bb.append(Instruction::store(
                    1, static_cast<std::int64_t>(rng.below(64)) * 8, 2));
                break;
              case 1:
                bb.append(Instruction::load(
                    3, 1, static_cast<std::int64_t>(rng.below(64)) * 8));
                break;
              default:
                bb.append(Instruction::aluImm(
                    Opcode::AddI, static_cast<Reg>(2 + rng.below(10)),
                    static_cast<Reg>(2 + rng.below(10)),
                    static_cast<std::int64_t>(rng.below(100))));
            }
        }
        // Forward-only edges keep the CFG loop-free; the last block halts.
        if (b + 1 < blocks) {
            BlockId target =
                static_cast<BlockId>(b + 1 + rng.below(blocks - b - 1));
            if (rng.chance(0.5) && target + 1 < blocks) {
                bb.append(Instruction::branch(Opcode::Blt, 2, 3, target,
                                              b + 1));
            } else {
                bb.append(Instruction::jmp(target));
            }
        } else {
            bb.append(Instruction::simple(Opcode::Halt));
        }
    }
    verifyModuleOrDie(*m);
    return m;
}

/** Run @p prog single-threaded functionally; return the final memory. */
mem::MemImage
runFunctionally(const CompiledProgram &prog, std::uint64_t max_steps = 2e6)
{
    mem::MemImage mem;
    for (const auto &[a, v] : prog.module->initialData())
        mem.write(a, v);
    cpu::LockTable locks;
    cpu::RegionAllocator alloc;
    cpu::ThreadContext tc(prog, 0, mem, locks, alloc);
    tc.reset(0);
    cpu::ExecRecord rec;
    std::uint64_t steps = 0;
    while (!tc.halted()) {
        auto st = tc.step(rec);
        LWSP_ASSERT(st != cpu::StepStatus::Blocked, "unexpected block");
        LWSP_ASSERT(++steps < max_steps, "functional run diverged");
    }
    return mem;
}

} // namespace

// ---- Liveness ---------------------------------------------------------

TEST(Liveness, StraightlineUsesAndDefs)
{
    auto m = straightline();
    ModuleLiveness live(*m);
    // Before the store, r1 and r3 are live.
    RegMask before_store = live.liveBefore(0, 0, 3);
    EXPECT_TRUE(before_store & regBit(1));
    EXPECT_TRUE(before_store & regBit(3));
    // r2 is dead after its use by the AddI.
    EXPECT_FALSE(before_store & regBit(2));
    // Nothing is live after the halt.
    EXPECT_EQ(live.liveOut(0, 0), 0u);
}

TEST(Liveness, CallUsesCalleeSummary)
{
    auto m = std::make_unique<Module>();
    Function &callee = m->addFunction("callee");
    {
        BasicBlock &b = callee.addBlock();
        b.append(Instruction::store(5, 0, 6));  // uses r5, r6
        b.append(Instruction::simple(Opcode::Ret));
    }
    Function &main = m->addFunction("main");
    {
        BasicBlock &b = main.addBlock();
        b.append(Instruction::call(callee.id()));
        b.append(Instruction::simple(Opcode::Halt));
    }
    ModuleLiveness live(*m);
    EXPECT_TRUE(live.funcUse(callee.id()) & regBit(5));
    EXPECT_TRUE(live.funcUse(callee.id()) & regBit(6));
    // The call site makes r5/r6 live-in to main.
    EXPECT_TRUE(live.liveIn(main.id(), 0) & regBit(5));
    // And the stack pointer is always implicated by calls.
    EXPECT_TRUE(live.liveIn(main.id(), 0) & regBit(spReg));
}

TEST(Liveness, FuncLiveOutFlowsFromCallers)
{
    auto m = std::make_unique<Module>();
    Function &callee = m->addFunction("callee");
    {
        BasicBlock &b = callee.addBlock();
        b.append(Instruction::movi(4, 42));
        b.append(Instruction::simple(Opcode::Ret));
    }
    Function &main = m->addFunction("main");
    {
        BasicBlock &b = main.addBlock();
        b.append(Instruction::call(callee.id()));
        b.append(Instruction::store(4, 0, 4));  // consumes callee's r4
        b.append(Instruction::simple(Opcode::Halt));
    }
    ModuleLiveness live(*m);
    EXPECT_TRUE(live.funcLiveOut(callee.id()) & regBit(4));
    // r4 is therefore live at the callee's Ret.
    EXPECT_TRUE(live.liveBefore(callee.id(), 0, 1) & regBit(4));
}

// ---- Constant propagation ---------------------------------------------

TEST(ConstProp, FoldsArithmetic)
{
    auto m = straightline();
    ModuleLiveness live(*m);
    ConstProp consts(*m, live);
    auto st = consts.stateBefore(0, 0, 3);  // before the store
    EXPECT_TRUE(st[1].isConst());
    EXPECT_EQ(st[1].constant, 0x4000);
    EXPECT_TRUE(st[3].isConst());
    EXPECT_EQ(st[3].constant, 11);
}

TEST(ConstProp, LoadsAndCallsKill)
{
    auto m = std::make_unique<Module>();
    Function &callee = m->addFunction("callee");
    {
        BasicBlock &b = callee.addBlock();
        b.append(Instruction::movi(2, 5));
        b.append(Instruction::simple(Opcode::Ret));
    }
    Function &main = m->addFunction("main");
    {
        BasicBlock &b = main.addBlock();
        b.append(Instruction::movi(1, 7));
        b.append(Instruction::movi(2, 9));
        b.append(Instruction::load(3, 1, 0));
        b.append(Instruction::call(callee.id()));
        b.append(Instruction::simple(Opcode::Halt));
    }
    ModuleLiveness live(*m);
    ConstProp consts(*m, live);
    auto end = consts.stateBefore(main.id(), 0, 4);
    EXPECT_TRUE(end[1].isConst());   // untouched by the call
    EXPECT_FALSE(end[2].isConst());  // clobbered by callee
    EXPECT_FALSE(end[3].isConst());  // load result
}

TEST(ConstProp, MeetOfDifferingConstsIsNonConst)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b0 = f.addBlock();
    BasicBlock &b1 = f.addBlock();
    BasicBlock &b2 = f.addBlock();
    BasicBlock &b3 = f.addBlock();
    b0.append(Instruction::branch(Opcode::Beq, 1, 2, b1.id(), b2.id()));
    b1.append(Instruction::movi(5, 10));
    b1.append(Instruction::jmp(b3.id()));
    b2.append(Instruction::movi(5, 20));
    b2.append(Instruction::jmp(b3.id()));
    b3.append(Instruction::simple(Opcode::Halt));
    ModuleLiveness live(*m);
    ConstProp consts(*m, live);
    EXPECT_FALSE(consts.blockIn(0, 3)[5].isConst());
}

// ---- Boundary insertion -----------------------------------------------

TEST(Boundaries, EntryExitCallSyncLoop)
{
    auto m = std::make_unique<Module>();
    Function &callee = m->addFunction("callee");
    {
        BasicBlock &b = callee.addBlock();
        b.append(Instruction::simple(Opcode::Ret));
    }
    Function &f = m->addFunction("main");
    BasicBlock &b0 = f.addBlock();
    BasicBlock &b1 = f.addBlock();
    BasicBlock &b2 = f.addBlock();
    b0.append(Instruction::jmp(b1.id()));
    b1.append(Instruction::store(1, 0, 2));
    b1.append(Instruction::simple(Opcode::Fence));
    b1.append(Instruction::call(callee.id()));
    b1.append(Instruction::branch(Opcode::Blt, 3, 4, b1.id(), b2.id()));
    b2.append(Instruction::simple(Opcode::Halt));

    insertInitialBoundaries(f);

    // Function entry boundary.
    EXPECT_EQ(f.block(0).insts().front().op, Opcode::Boundary);
    // Loop header (b1, storeful loop) boundary at its top.
    EXPECT_EQ(f.block(1).insts().front().op, Opcode::Boundary);

    // Fence gets boundaries before and after; the call before and after.
    const auto &insts = f.block(1).insts();
    for (std::size_t i = 0; i < insts.size(); ++i) {
        if (insts[i].op == Opcode::Fence || insts[i].op == Opcode::Call) {
            EXPECT_EQ(insts[i - 1].op, Opcode::Boundary)
                << "missing pre-boundary at " << i;
            EXPECT_EQ(insts[i + 1].op, Opcode::Boundary)
                << "missing post-boundary at " << i;
        }
    }
    // Halt is preceded by a function-exit boundary.
    const auto &exit_insts = f.block(2).insts();
    ASSERT_GE(exit_insts.size(), 2u);
    EXPECT_EQ(exit_insts[exit_insts.size() - 2].op, Opcode::Boundary);
}

TEST(Boundaries, StoreFreeLoopGetsNoHeaderBoundary)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b0 = f.addBlock();
    BasicBlock &b1 = f.addBlock();
    b0.append(Instruction::aluImm(Opcode::AddI, 3, 3, 1));
    b0.append(Instruction::branch(Opcode::Blt, 3, 4, b0.id(), b1.id()));
    b1.append(Instruction::simple(Opcode::Halt));
    insertInitialBoundaries(f);
    // Entry boundary exists, but no *second* boundary for the loop.
    unsigned boundaries = 0;
    for (const auto &i : f.block(0).insts())
        boundaries += (i.op == Opcode::Boundary);
    EXPECT_EQ(boundaries, 1u);  // function entry only
}

// ---- Threshold enforcement (property test) -----------------------------

class ThresholdProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ThresholdProperty, NoPathExceedsBudget)
{
    auto m = randomModule(GetParam(), 6, 40);
    CompilerConfig cfg;
    cfg.storeThreshold = 16;
    Function &f = m->function(0);
    insertInitialBoundaries(f);
    enforceStoreThreshold(f, cfg);
    EXPECT_FALSE(hasThresholdViolation(f, cfg));
    EXPECT_LE(computeStoreCounts(f).worst, cfg.storeThreshold - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThresholdProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(Threshold, CombineRemovesOnlyRedundantSplits)
{
    auto m = randomModule(99, 5, 30);
    CompilerConfig cfg;
    cfg.storeThreshold = 8;
    Function &f = m->function(0);
    insertInitialBoundaries(f);
    enforceStoreThreshold(f, cfg);
    // Make combining meaningful: a larger threshold lets splits merge.
    CompilerConfig relaxed = cfg;
    relaxed.storeThreshold = 32;
    std::size_t removed = combineRegions(f, relaxed);
    EXPECT_FALSE(hasThresholdViolation(f, relaxed));
    (void)removed;  // zero removals are legal; the invariant is above
}

// ---- Block splitting ----------------------------------------------------

TEST(Splitting, BoundariesBecomePenultimate)
{
    auto m = randomModule(7, 4, 30);
    CompilerConfig cfg;
    cfg.storeThreshold = 8;
    Function &f = m->function(0);
    insertInitialBoundaries(f);
    enforceStoreThreshold(f, cfg);
    splitBlocksAtBoundaries(f);
    verifyModuleOrDie(*m);
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        const auto &insts = f.block(b).insts();
        for (std::size_t i = 0; i < insts.size(); ++i) {
            if (insts[i].op == Opcode::Boundary) {
                EXPECT_EQ(i + 2, insts.size())
                    << "boundary not penultimate in block " << b;
            }
        }
    }
}

// ---- Unrolling -----------------------------------------------------------

TEST(Unroll, PreservesSemantics)
{
    // A counted loop writing a recurrence into memory.
    auto build = [](bool unroll) {
        auto m = std::make_unique<Module>();
        Function &f = m->addFunction("main");
        BasicBlock &b0 = f.addBlock();
        BasicBlock &b1 = f.addBlock();
        BasicBlock &b2 = f.addBlock();
        b0.append(Instruction::movi(1, 0x9000));
        b0.append(Instruction::movi(3, 0));
        b0.append(Instruction::movi(7, 24));
        b0.append(Instruction::movi(13, 1));
        b0.append(Instruction::jmp(b1.id()));
        b1.append(Instruction::aluImm(Opcode::MulI, 13, 13, 3));
        b1.append(Instruction::aluImm(Opcode::AddI, 13, 13, 1));
        b1.append(Instruction::alu(Opcode::Shl, 8, 3, 13));
        b1.append(Instruction::store(1, 0, 13));
        b1.append(Instruction::aluImm(Opcode::AddI, 1, 1, 8));
        b1.append(Instruction::aluImm(Opcode::AddI, 3, 3, 1));
        b1.append(Instruction::branch(Opcode::Blt, 3, 7, b1.id(),
                                      b2.id()));
        b2.append(Instruction::simple(Opcode::Halt));
        f.loopTripCounts()[b1.id()] = 24;

        CompilerConfig cfg;
        cfg.unrollLoops = unroll;
        if (unroll) {
            EXPECT_EQ(unrollLoops(f, cfg), 1u);
            verifyModuleOrDie(*m);
        }
        return compiler::makeUncompiled(std::move(m));
    };

    auto plain = build(false);
    auto unrolled = build(true);
    auto mem_plain = runFunctionally(plain);
    auto mem_unrolled = runFunctionally(unrolled);
    EXPECT_TRUE(mem_plain.diff(mem_unrolled).empty());
    // And the unrolled version has more blocks.
    EXPECT_GT(unrolled.module->function(0).numBlocks(),
              plain.module->function(0).numBlocks());
}

TEST(Unroll, FactorDividesKnownTripCount)
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b0 = f.addBlock();
    BasicBlock &b1 = f.addBlock();
    BasicBlock &b2 = f.addBlock();
    b0.append(Instruction::jmp(b1.id()));
    b1.append(Instruction::store(1, 0, 2));
    b1.append(Instruction::aluImm(Opcode::AddI, 3, 3, 1));
    b1.append(Instruction::branch(Opcode::Blt, 3, 7, b1.id(), b2.id()));
    b2.append(Instruction::simple(Opcode::Halt));
    f.loopTripCounts()[b1.id()] = 9;  // factor must divide 9 -> 3

    CompilerConfig cfg;
    cfg.maxUnrollFactor = 4;
    EXPECT_EQ(unrollLoops(f, cfg), 1u);
    // Header + 2 copies (factor 3) -> blocks grew by 2.
    EXPECT_EQ(f.numBlocks(), 5u);
}

// ---- Full pipeline -------------------------------------------------------

TEST(Pipeline, CompilePreservesSemantics)
{
    // Compiled binaries add checkpoint/boundary stores to PM slots, so we
    // compare only the application's heap range.
    auto mk = [] {
        auto m = randomModule(4242, 6, 36);
        return m;
    };
    auto base = compiler::makeUncompiled(mk());
    LightWspCompiler comp;
    auto compiled = comp.compile(mk());

    auto mem_base = runFunctionally(base);
    auto mem_comp = runFunctionally(compiled);
    EXPECT_TRUE(
        mem_base.diffInRange(mem_comp, 0x8000, 0x8000 + 64 * 8).empty());
}

TEST(Pipeline, StatsAreConsistent)
{
    LightWspCompiler comp;
    auto prog = comp.compile(randomModule(777, 6, 36));
    EXPECT_GT(prog.stats.boundaries, 0u);
    EXPECT_EQ(prog.stats.boundaries, prog.sites.size());
    EXPECT_GE(prog.stats.outputInsts, prog.stats.inputInsts);
    // Every site id indexes its own slot and the instruction matches.
    for (std::uint32_t i = 0; i < prog.sites.size(); ++i) {
        const auto &site = prog.sites[i];
        EXPECT_EQ(site.id, i);
        const auto &inst = prog.module->function(site.func)
                               .block(site.block)
                               .insts()[site.instIndex];
        EXPECT_EQ(inst.op, Opcode::Boundary);
        EXPECT_EQ(inst.imm, static_cast<std::int64_t>(i));
    }
}

TEST(Pipeline, ConstRecipesMatchRuntimeValues)
{
    // Compile a program whose loop-invariant constants get pruned, then
    // check each recipe's constant against a functional execution.
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b0 = f.addBlock();
    BasicBlock &b1 = f.addBlock();
    BasicBlock &b2 = f.addBlock();
    b0.append(Instruction::movi(1, 0x6000));
    b0.append(Instruction::movi(5, 1234));   // loop-invariant const
    b0.append(Instruction::movi(3, 0));
    b0.append(Instruction::movi(7, 8));
    b0.append(Instruction::jmp(b1.id()));
    b1.append(Instruction::alu(Opcode::Add, 4, 5, 3));
    b1.append(Instruction::store(1, 0, 4));
    b1.append(Instruction::aluImm(Opcode::AddI, 3, 3, 1));
    b1.append(Instruction::branch(Opcode::Blt, 3, 7, b1.id(), b2.id()));
    b2.append(Instruction::simple(Opcode::Halt));

    LightWspCompiler comp;
    auto prog = comp.compile(std::move(m));
    EXPECT_GT(prog.stats.prunedCheckpoints, 0u);

    bool found_r5 = false;
    for (const auto &site : prog.sites) {
        for (const auto &rec : site.recipes) {
            if (rec.reg == 5) {
                EXPECT_EQ(rec.kind, CkptRecipe::Kind::Const);
                EXPECT_EQ(rec.imm, 1234);
                found_r5 = true;
            }
        }
    }
    EXPECT_TRUE(found_r5) << "r5's pruned checkpoint has no recipe";
}

TEST(Pipeline, CwspModeOmitsCheckpointStores)
{
    CompilerConfig cfg;
    cfg.insertCheckpointStores = false;
    LightWspCompiler comp(cfg);
    auto prog = comp.compile(randomModule(31, 5, 30));
    for (FuncId fi = 0; fi < prog.module->numFunctions(); ++fi) {
        const Function &fn = prog.module->function(fi);
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            for (const auto &inst : fn.block(b).insts())
                EXPECT_NE(inst.op, Opcode::CkptStore);
        }
    }
    EXPECT_GT(prog.stats.boundaries, 0u);
}
