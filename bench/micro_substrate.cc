/**
 * @file
 * google-benchmark microbenchmarks for the substrate itself: cache
 * accesses, WPQ operations, the interpreter, the compiler pipeline and a
 * whole-system cycle. These guard the simulator's own performance (full
 * figure sweeps run hundreds of system simulations).
 */

#include <benchmark/benchmark.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "compiler/compiler.hh"
#include "core/system.hh"
#include "mem/cache.hh"
#include "mem/wpq.hh"
#include "workloads/generator.hh"

using namespace lwsp;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    mem::CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    mem::Cache cache("bm.l1", cfg);
    Rng rng(42);
    for (auto _ : state) {
        Addr addr = (rng.next() & 0xfffff8u);
        benchmark::DoNotOptimize(cache.access(addr, (addr & 64) != 0));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_WpqPushPop(benchmark::State &state)
{
    mem::Wpq wpq(64);
    mem::PersistEntry e;
    e.region = 1;
    std::uint64_t i = 0;
    for (auto _ : state) {
        e.addr = (i++ % 64) * 8;
        wpq.push(e);
        benchmark::DoNotOptimize(wpq.popRegion(1));
    }
}
BENCHMARK(BM_WpqPushPop);

void
BM_WpqCamSearch(benchmark::State &state)
{
    mem::Wpq wpq(64);
    for (unsigned i = 0; i < 64; ++i) {
        mem::PersistEntry e;
        e.addr = i * 8;
        e.region = 1;
        wpq.push(e);
    }
    std::uint64_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(wpq.search((i++ % 128) * 8));
}
BENCHMARK(BM_WpqCamSearch);

void
BM_CompileWorkload(benchmark::State &state)
{
    setLogQuiet(true);
    for (auto _ : state) {
        auto w = workloads::generateByName("xz");
        compiler::LightWspCompiler comp;
        auto prog = comp.compile(std::move(w.module));
        benchmark::DoNotOptimize(prog.stats.boundaries);
    }
}
BENCHMARK(BM_CompileWorkload);

void
BM_SystemKiloCycles(benchmark::State &state)
{
    setLogQuiet(true);
    auto w = workloads::generateByName("hmmer");
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(w.module));
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.applySchemeDefaults();
    for (auto _ : state) {
        state.PauseTiming();
        core::System sys(cfg, prog, 1);
        state.ResumeTiming();
        // Advance exactly 1000 cycles of full-system simulation.
        auto r = sys.runWithPowerFailure(1000);
        benchmark::DoNotOptimize(r.cycles);
    }
}
BENCHMARK(BM_SystemKiloCycles);

} // namespace

BENCHMARK_MAIN();
