/**
 * @file
 * Ablation (DESIGN.md §6.3): paper-literal strict commit — region k+1
 * flushes only after region k's flush-ACK round completes on every MC —
 * vs the relaxed per-MC pipelined commit this implementation defaults
 * to. The strict mode serializes cross-thread regions through the ACK
 * round trip; the gap quantifies what the relaxation buys.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;
    auto exec = bench::makeExecutor(args);

    harness::ResultTable table(
        "Ablation: LightWSP commit pipelining (relaxed vs strict "
        "flush-ACKs)");
    table.addColumn("relaxed");
    table.addColumn("strict");

    const auto profiles = bench::selectedProfiles(args);
    std::vector<harness::RunSpec> specs;
    for (const auto *p : profiles) {
        for (bool strict : {false, true}) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = core::Scheme::LightWsp;
            spec.strictFlushAcks = strict;
            specs.push_back(spec);
        }
    }
    auto slow = exec.slowdowns(runner, specs);

    std::size_t i = 0;
    for (const auto *p : profiles) {
        table.addRow(p->name, p->suite, {slow[i], slow[i + 1]});
        i += 2;
    }

    bench::finish(table, args, exec, /*per_app=*/false);
    return 0;
}
