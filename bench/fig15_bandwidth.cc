/**
 * @file
 * Figure 15: persist-path bandwidth sensitivity (4 / 2 / 1 GB/s). Paper
 * result: lower bandwidth fills the front-end buffer faster, exerting
 * back-pressure on the store buffer and stalling the pipeline.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;

    harness::ResultTable table(
        "Fig 15: LightWSP slowdown per persist-path bandwidth");
    table.addColumn("4GB/s");
    table.addColumn("2GB/s");
    table.addColumn("1GB/s");

    for (const auto *p : bench::selectedProfiles(args)) {
        std::vector<double> row;
        for (double gbps : {4.0, 2.0, 1.0}) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = core::Scheme::LightWsp;
            spec.persistPathGBps = gbps;
            row.push_back(runner.slowdownVsBaseline(spec));
        }
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args, /*per_app=*/false);
    return 0;
}
