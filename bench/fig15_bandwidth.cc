/**
 * @file
 * Figure 15: persist-path bandwidth sensitivity (4 / 2 / 1 GB/s). Paper
 * result: lower bandwidth fills the front-end buffer faster, exerting
 * back-pressure on the store buffer and stalling the pipeline.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;
    auto exec = bench::makeExecutor(args);

    harness::ResultTable table(
        "Fig 15: LightWSP slowdown per persist-path bandwidth");
    table.addColumn("4GB/s");
    table.addColumn("2GB/s");
    table.addColumn("1GB/s");

    const auto profiles = bench::selectedProfiles(args);
    const double bandwidths[] = {4.0, 2.0, 1.0};

    std::vector<harness::RunSpec> specs;
    for (const auto *p : profiles) {
        for (double gbps : bandwidths) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = core::Scheme::LightWsp;
            spec.persistPathGBps = gbps;
            specs.push_back(spec);
        }
    }
    auto slow = exec.slowdowns(runner, specs);

    std::size_t i = 0;
    for (const auto *p : profiles) {
        std::vector<double> row(slow.begin() + i, slow.begin() + i + 3);
        i += 3;
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args, exec, /*per_app=*/false);
    return 0;
}
