/**
 * @file
 * Figure 20 (extension): recovery latency of the persistent
 * data-structure library — power-on to first served operation — as a
 * function of checkpoint distance.
 *
 * Each point crashes a structure run at 60% of its crash-free cycle
 * count, rebuilds a system from the surviving PM image with
 * System::recover(), and times how long the recovered machine takes to
 * serve its first operation (the exec-level served counter moving, via
 * System::runUntilWordChanges). Rows are <structure>/<scheme>; the
 * four distance columns d1..d4 map to compiler storeThreshold
 * {8,16,32,64} for the compiled schemes and to opsPerTx {1,2,4,8} for
 * the pmtx undo-log baseline — in both cases d(i+1) doubles the work
 * redone after a crash.
 *
 * Recovery mode substitutes the LightWSP gated-commit binary for
 * capri/ppa/cwsp's hardware checkpoint mechanisms (their timing knobs
 * are kept) so that recovery is exact — see DESIGN.md §13; the column
 * trend, not cross-scheme magnitude, is the result here.
 *
 * Like fig19_pds this sweeps with parallelFor instead of the
 * profile-name-keyed SweepExecutor; output-indexed result slots keep
 * the CSV byte-identical at any job count, and quick mode runs the
 * identical (already small) grid.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <thread>

#include "bench_util.hh"
#include "core/system.hh"
#include "pds/pds.hh"

using namespace lwsp;

namespace {

constexpr pds::PdsScheme kSchemes[] = {
    pds::PdsScheme::LightWsp, pds::PdsScheme::Capri, pds::PdsScheme::Ppa,
    pds::PdsScheme::Cwsp,     pds::PdsScheme::Pmtx,
};
constexpr pds::Kind kKinds[] = {pds::Kind::Log, pds::Kind::Hash,
                                pds::Kind::Alloc};
constexpr unsigned kThresholds[] = {8, 16, 32, 64}; ///< compiled schemes
constexpr unsigned kOpsPerTx[] = {1, 2, 4, 8};      ///< pmtx
constexpr std::size_t kDists = 4;

struct Point
{
    pds::PdsSpec spec;
    pds::PdsScheme scheme = pds::PdsScheme::LightWsp;
    unsigned threshold = 0;  ///< 0 for pmtx (opsPerTx is in the spec)
    Tick latency = 0;        ///< power-on to first served op
    Tick goldenCycles = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);

    std::vector<Point> points;
    for (auto k : kKinds) {
        for (auto s : kSchemes) {
            for (std::size_t d = 0; d < kDists; ++d) {
                Point p;
                p.spec.kind = k;
                p.spec.sizeClass = 1;
                p.spec.numOps = 128;
                p.spec.mix = 0;
                p.spec.seed = 7;
                p.scheme = s;
                if (s == pds::PdsScheme::Pmtx)
                    p.spec.opsPerTx = kOpsPerTx[d];
                else
                    p.threshold = kThresholds[d];
                points.push_back(p);
            }
        }
    }

    auto t0 = std::chrono::steady_clock::now();
    harness::parallelFor(args.jobs, points.size(), [&](std::size_t i) {
        Point &p = points[i];
        auto cfg = pds::makePdsConfig(p.scheme, pds::PdsRunMode::Recovery);
        cfg.engine = harness::defaultSimEngine(); // honour --engine A/B
        auto prog = pds::preparePdsProgram(
            p.spec, p.scheme, pds::PdsRunMode::Recovery, p.threshold);
        pds::PdsParams params = pds::PdsModel(p.spec).params();

        core::System golden(cfg, prog, 1);
        auto gres = golden.run();
        LWSP_ASSERT(gres.completed, "fig20 golden did not complete: ",
                    p.spec.toString());
        p.goldenCycles = gres.cycles;

        core::System victim(cfg, prog, 1);
        victim.runWithPowerFailure(gres.cycles * 6 / 10);
        auto rec =
            core::System::recover(cfg, prog, 1, victim.pmImage(), {});
        std::uint64_t servedAtBoot = rec->execImage().read(params.served);
        auto probe = rec->runUntilWordChanges(params.served, servedAtBoot);
        LWSP_ASSERT(probe.served, "fig20 recovered run served nothing: ",
                    p.spec.toString(), " scheme ",
                    pds::pdsSchemeName(p.scheme));
        p.latency = probe.serveTick;
    });

    harness::SweepStats stats;
    stats.jobs = args.jobs ? args.jobs
                           : std::max(1u,
                                      std::thread::hardware_concurrency());
    stats.points = points.size();
    stats.wallSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    for (const auto &p : points)
        stats.simulatedCycles += p.goldenCycles + p.latency;

    harness::ResultTable table(
        "Fig 20: pds recovery latency, power-on to first served op "
        "(cycles; crash at 60% of crash-free run, 128 ops). d1..d4 = "
        "storeThreshold 8/16/32/64 (compiled) or opsPerTx 1/2/4/8 "
        "(pmtx)");
    for (std::size_t d = 0; d < kDists; ++d)
        table.addColumn("d" + std::to_string(d + 1));

    std::size_t idx = 0;
    for (auto k : kKinds) {
        for (auto s : kSchemes) {
            std::vector<double> row;
            for (std::size_t d = 0; d < kDists; ++d)
                row.push_back(
                    static_cast<double>(points[idx++].latency));
            table.addRow(std::string(pds::kindName(k)) + "/" +
                             pds::pdsSchemeName(s),
                         pds::pdsSchemeName(s), row);
        }
    }

    table.print(std::cout);
    if (!args.csvPath.empty()) {
        std::ofstream csv(args.csvPath);
        table.writeCsv(csv);
        std::cout << "csv written to " << args.csvPath << '\n';
    }
    if (!args.sweepJsonPath.empty())
        harness::writeSweepJson(args.sweepJsonPath, args.benchName, stats);
    if (!args.reportPath.empty()) {
        std::ofstream rep(args.reportPath);
        rep << "{\"schema\":\"lwsp-pds-report-v1\",\"bench\":\""
            << args.benchName << "\",\"points\":[";
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Point &p = points[i];
            rep << (i ? "," : "") << "{\"spec\":\"" << p.spec.toString()
                << "\",\"scheme\":\"" << pds::pdsSchemeName(p.scheme)
                << "\",\"threshold\":" << p.threshold
                << ",\"golden_cycles\":" << p.goldenCycles
                << ",\"latency_cycles\":" << p.latency << "}";
        }
        rep << "]}\n";
        std::cout << "run report written to " << args.reportPath << '\n';
    }
    return 0;
}
