/**
 * @file
 * Figure 23 (extension): LRPO control-plane scale-out — boundary-ACK
 * latency, WPQ occupancy, fabric traffic and retry counts as the
 * machine grows from the paper's 2 iMCs to sharded 4/8/16/64-MC
 * topologies, flat fan-out vs radix-4 aggregation tree.
 *
 * Grid (quick mode runs the identical grid, so CI can byte-compare the
 * CSV against the committed reference): {flat, tree4} x {4, 8, 16, 64}
 * MCs x two workload rows — the fig16 8-thread point on the `rb`
 * profile, and a fig21-style open-loop service tape lowered onto the
 * pds hash table — x {fault-free, 10% per-link
 * broadcast loss}. Lossy rows run the router's ack/retry protocol at
 * scale; at 64 MCs they cross the word boundary that broke the old
 * single-uint64_t delivery mask (see common/bitset.hh).
 *
 * Reported per row: end-to-end cycles, region boundaries, the mean/max
 * boundary-arrival-to-full-ACK latency sampled at every MC, peak WPQ
 * occupancy, total control messages on the fabric (the O(MCs^2) flat vs
 * O(MCs) tree ablation) and router retry rounds. Rows are independent
 * simulations with per-row deterministic fault seeds and output-indexed
 * result slots, so the CSV is byte-identical at any --jobs count and
 * either --engine.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <thread>

#include "bench_util.hh"
#include "core/system.hh"
#include "pds/pds.hh"
#include "serve/serve.hh"

using namespace lwsp;

namespace {

constexpr unsigned kMcCounts[] = {4, 8, 16, 64};
constexpr unsigned kWlThreads[] = {8};

struct Point
{
    std::string workload;     ///< "rb/t8", "serve/varnish"
    noc::TopologyConfig topo;
    unsigned mcs = 2;
    bool lossy = false;
    unsigned threads = 0;     ///< workload rows; 0 = serve row
    core::RunResult res;
};

fault::FaultConfig
faultsFor(const Point &p, std::size_t row)
{
    fault::FaultConfig fc;
    if (!p.lossy)
        return fc;
    fc.enabled = true;
    fc.seed = 0xf23u + 7919u * static_cast<std::uint64_t>(row);
    fc.bcastLossPm = 100;
    return fc;
}

/** One fig16-style thread point on the `rb` profile. */
core::RunResult
runWorkloadRow(const Point &p, std::size_t row)
{
    const auto &profile = workloads::profileByName("rb");
    harness::RunSpec spec;
    spec.workload = "rb";
    spec.scheme = core::Scheme::LightWsp;
    spec.threads = p.threads;
    spec.numMcs = p.mcs;
    spec.topology = p.topo;

    workloads::Workload w = workloads::generate(profile);
    core::SystemConfig cfg = harness::makeConfig(profile, spec);
    cfg.warmupInsts =
        w.estimatedInstsPerThread * p.threads * 35 / 100;
    cfg.faults = faultsFor(p, row);
    compiler::CompiledProgram prog =
        harness::prepareProgram(std::move(w), spec);

    core::System sys(cfg, prog, p.threads);
    auto res = sys.run();
    LWSP_ASSERT(res.completed, "fig23 workload row did not complete: ",
                p.workload, " mcs=", p.mcs, " ", p.topo.toString());
    return res;
}

/** One fig21-style service tape on the pds hash table. */
core::RunResult
runServeRow(const Point &p, std::size_t row)
{
    serve::ServeSpec spec;
    spec.profile = serve::Profile::Varnish;
    spec.sizeClass = 1;
    spec.numRequests = 64;
    spec.seed = 11;
    auto wl = serve::buildWorkload(spec);

    auto cfg = pds::makePdsConfig(pds::PdsScheme::LightWsp,
                                  pds::PdsRunMode::Perf);
    cfg.engine = harness::defaultSimEngine(); // honour --engine A/B
    cfg.numMcs = p.mcs;
    cfg.topology = p.topo;
    cfg.faults = faultsFor(p, row);
    auto prog = pds::preparePdsProgram(wl.pdsSpec, wl.ops,
                                       pds::PdsScheme::LightWsp,
                                       pds::PdsRunMode::Perf);

    core::System sys(cfg, prog, 1);
    auto res = sys.run();
    LWSP_ASSERT(res.completed, "fig23 serve row did not complete: mcs=",
                p.mcs, " ", p.topo.toString());
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);

    noc::TopologyConfig flat;
    noc::TopologyConfig tree4;
    tree4.kind = noc::TopologyConfig::Kind::Tree;
    tree4.radix = 4;

    std::vector<Point> points;
    for (const auto &topo : {flat, tree4}) {
        for (unsigned mcs : kMcCounts) {
            for (bool lossy : {false, true}) {
                for (unsigned t : kWlThreads) {
                    Point p;
                    p.workload = "rb/t" + std::to_string(t);
                    p.topo = topo;
                    p.mcs = mcs;
                    p.lossy = lossy;
                    p.threads = t;
                    points.push_back(p);
                }
                Point p;
                p.workload = "serve/varnish";
                p.topo = topo;
                p.mcs = mcs;
                p.lossy = lossy;
                points.push_back(p);
            }
        }
    }

    auto t0 = std::chrono::steady_clock::now();
    harness::parallelFor(args.jobs, points.size(), [&](std::size_t i) {
        Point &p = points[i];
        p.res = p.threads ? runWorkloadRow(p, i) : runServeRow(p, i);
    });

    harness::SweepStats stats;
    stats.jobs = args.jobs ? args.jobs
                           : std::max(1u,
                                      std::thread::hardware_concurrency());
    stats.points = points.size();
    stats.wallSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    for (const auto &p : points)
        stats.simulatedCycles += p.res.cycles;

    harness::ResultTable table(
        "Fig 23: control-plane scale-out — boundary-ACK latency, WPQ "
        "occupancy, fabric traffic and retries at 4-64 MCs, flat fan-out "
        "vs radix-4 aggregation tree, fault-free and under 10% per-link "
        "broadcast loss");
    // Table columns must be strictly positive (per-suite geomeans);
    // zero-able metrics (retries, latency in fault-free rows) live in
    // the CSV only.
    for (const char *c : {"cycles", "boundaries", "noc_msgs"})
        table.addColumn(c);

    // The leading `name` column is the unique per-row key bench_all.sh's
    // row-subset checker greps on; keep it first.
    std::ostringstream csvBody;
    csvBody << "name,topology,mcs,workload,fault,cycles,boundaries,"
               "bcast_lat_avg,bcast_lat_max,max_wpq_occupancy,"
               "noc_messages,bcast_retries\n";
    for (const Point &p : points) {
        std::string name = p.topo.toString() + "/" +
                           std::to_string(p.mcs) + "/" + p.workload +
                           (p.lossy ? "/loss100" : "");
        table.addRow(name, p.topo.toString(),
                     {static_cast<double>(p.res.cycles),
                      static_cast<double>(p.res.boundaries),
                      static_cast<double>(p.res.nocMessages)});
        csvBody << name << ',' << p.topo.toString() << ',' << p.mcs
                << ',' << p.workload << ','
                << (p.lossy ? "loss100" : "none") << ',' << p.res.cycles
                << ',' << p.res.boundaries << ','
                << std::setprecision(10) << p.res.bcastLatencyAvg << ','
                << p.res.bcastLatencyMax << ','
                << p.res.maxWpqOccupancy << ',' << p.res.nocMessages
                << ',' << p.res.bcastRetries << '\n';
    }

    table.print(std::cout);
    if (!args.csvPath.empty()) {
        std::ofstream csv(args.csvPath);
        csv << csvBody.str();
        std::cout << "csv written to " << args.csvPath << '\n';
    }
    if (!args.sweepJsonPath.empty())
        harness::writeSweepJson(args.sweepJsonPath, args.benchName, stats);
    if (!args.reportPath.empty()) {
        std::vector<harness::RunRecord> recs;
        for (const Point &p : points) {
            harness::RunRecord rec;
            rec.spec.workload = p.topo.toString() + "/" +
                                std::to_string(p.mcs) + "/" + p.workload;
            rec.spec.numMcs = p.mcs;
            rec.spec.topology = p.topo;
            rec.outcome.threads = p.threads ? p.threads : 1;
            rec.outcome.result = p.res;
            recs.push_back(std::move(rec));
        }
        harness::writeRunReports(args.reportPath, args.benchName, recs,
                                 stats);
        std::cout << "run report written to " << args.reportPath << '\n';
    }
    return 0;
}
