/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries.
 *
 * Every bench accepts:
 *   --quick           run a representative subset of apps (fast smoke mode)
 *   --csv FILE        additionally dump the table as CSV
 *   --jobs N          sweep worker threads (0/default = all hardware threads)
 *   --sweep-json FILE write the sweep's wall-clock/throughput telemetry
 *   --report FILE     write a versioned JSON run report (one record per
 *                     distinct simulation point, full RunResult)
 *   --engine E        simulator core: event (default) or cycle. Tables
 *                     and CSVs are bit-identical either way; the flag
 *                     exists for A/B verification and perf comparison.
 *
 * Benches build a flat RunSpec list (row-major over the table) and hand
 * it to a SweepExecutor; results come back indexed by input order, so
 * tables and CSVs are byte-identical at any job count.
 */

#ifndef LWSP_BENCH_BENCH_UTIL_HH
#define LWSP_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/profile.hh"

namespace lwsp {
namespace bench {

struct BenchArgs
{
    bool quick = false;
    std::string csvPath;
    unsigned jobs = 0;          ///< 0 = hardware concurrency
    std::string sweepJsonPath;  ///< empty = no telemetry file
    std::string reportPath;     ///< empty = no run report
    std::string benchName;      ///< argv[0] basename, for telemetry
};

inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    std::string prog = argv[0];
    std::size_t slash = prog.find_last_of('/');
    args.benchName =
        slash == std::string::npos ? prog : prog.substr(slash + 1);
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--quick") {
            args.quick = true;
        } else if (a == "--csv" && i + 1 < argc) {
            args.csvPath = argv[++i];
        } else if (a == "--jobs" && i + 1 < argc) {
            args.jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (a == "--sweep-json" && i + 1 < argc) {
            args.sweepJsonPath = argv[++i];
        } else if (a == "--report" && i + 1 < argc) {
            args.reportPath = argv[++i];
        } else if (a == "--engine" && i + 1 < argc) {
            std::string e = argv[++i];
            if (e == "event") {
                harness::setDefaultSimEngine(SimEngine::Event);
            } else if (e == "cycle") {
                harness::setDefaultSimEngine(SimEngine::Cycle);
            } else {
                std::cerr << "unknown engine '" << e
                          << "' (want event|cycle)\n";
                std::exit(2);
            }
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--quick] [--csv FILE] [--jobs N]"
                         " [--sweep-json FILE] [--report FILE]"
                         " [--engine event|cycle]\n";
            std::exit(2);
        }
    }
    setLogQuiet(true);
    return args;
}

/** The executor every bench sweeps through (honours --jobs). */
inline harness::SweepExecutor
makeExecutor(const BenchArgs &args)
{
    return harness::SweepExecutor(args.jobs);
}

/** The apps to sweep: all 38, or one representative per suite in quick
 *  mode. */
inline std::vector<const workloads::WorkloadProfile *>
selectedProfiles(const BenchArgs &args)
{
    std::vector<const workloads::WorkloadProfile *> out;
    if (!args.quick) {
        for (const auto &p : workloads::paperProfiles())
            out.push_back(&p);
        return out;
    }
    std::vector<std::string> picks = {"lbm",  "xz", "intruder",
                                      "is",   "radix", "rb"};
    for (const auto &name : picks)
        out.push_back(&workloads::profileByName(name));
    return out;
}

inline void
finish(const harness::ResultTable &table, const BenchArgs &args,
       const harness::SweepExecutor &exec, bool per_app = true)
{
    if (per_app)
        table.print(std::cout);
    else
        table.printSuiteSummary(std::cout);
    if (!args.csvPath.empty()) {
        std::ofstream csv(args.csvPath);
        table.writeCsv(csv);
        std::cout << "csv written to " << args.csvPath << '\n';
    }
    if (!args.sweepJsonPath.empty()) {
        harness::writeSweepJson(args.sweepJsonPath, args.benchName,
                                exec.totalStats());
    }
    if (!args.reportPath.empty()) {
        harness::writeRunReports(args.reportPath, args.benchName,
                                 exec.runRecords(), exec.totalStats());
        std::cout << "run report written to " << args.reportPath << '\n';
    }
}

} // namespace bench
} // namespace lwsp

#endif // LWSP_BENCH_BENCH_UTIL_HH
