/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries.
 *
 * Every bench accepts:
 *   --quick      run a representative subset of apps (fast smoke mode)
 *   --csv FILE   additionally dump the table as CSV
 */

#ifndef LWSP_BENCH_BENCH_UTIL_HH
#define LWSP_BENCH_BENCH_UTIL_HH

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/profile.hh"

namespace lwsp {
namespace bench {

struct BenchArgs
{
    bool quick = false;
    std::string csvPath;
};

inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--quick") {
            args.quick = true;
        } else if (a == "--csv" && i + 1 < argc) {
            args.csvPath = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0] << " [--quick] [--csv FILE]\n";
            std::exit(2);
        }
    }
    setLogQuiet(true);
    return args;
}

/** The apps to sweep: all 38, or one representative per suite in quick
 *  mode. */
inline std::vector<const workloads::WorkloadProfile *>
selectedProfiles(const BenchArgs &args)
{
    std::vector<const workloads::WorkloadProfile *> out;
    if (!args.quick) {
        for (const auto &p : workloads::paperProfiles())
            out.push_back(&p);
        return out;
    }
    std::vector<std::string> picks = {"lbm",  "xz", "intruder",
                                      "is",   "radix", "rb"};
    for (const auto &name : picks)
        out.push_back(&workloads::profileByName(name));
    return out;
}

inline void
finish(const harness::ResultTable &table, const BenchArgs &args,
       bool per_app = true)
{
    if (per_app)
        table.print(std::cout);
    else
        table.printSuiteSummary(std::cout);
    if (!args.csvPath.empty()) {
        std::ofstream csv(args.csvPath);
        table.writeCsv(csv);
        std::cout << "csv written to " << args.csvPath << '\n';
    }
}

} // namespace bench
} // namespace lwsp

#endif // LWSP_BENCH_BENCH_UTIL_HH
