/**
 * @file
 * §V-G4: hardware-cost analysis. Paper result: LightWSP needs 0.5 B per
 * core (two 2B flush-ID registers across 8 cores; the FEB reuses the
 * existing 1KB write-combining buffer and the 512B WPQ matches commodity
 * iMCs), vs 337 B/core for PPA's store-integrity support and 54 KB/core
 * for Capri's logging buffers.
 */

#include <cstdio>

#include "baselines/baselines.hh"
#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    core::SystemConfig cfg;
    cfg.applySchemeDefaults();

    std::printf("== §V-G4: per-core hardware cost of persistence support "
                "==\n");
    std::printf("%-12s %14s   %s\n", "scheme", "bytes/core", "breakdown");
    for (core::Scheme s : {core::Scheme::LightWsp, core::Scheme::Cwsp,
                           core::Scheme::Ppa, core::Scheme::Capri}) {
        auto hc = baselines::hardwareCost(s, cfg);
        std::printf("%-12s %14.1f   %s\n", core::schemeName(s),
                    hc.bytesPerCore, hc.breakdown.c_str());
    }
    std::printf("paper reference: LightWSP 0.5B, PPA 337B, Capri 54KB per "
                "core\n");
    return 0;
}
