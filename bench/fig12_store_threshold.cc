/**
 * @file
 * Figure 12: store-threshold sensitivity at a fixed 64-entry WPQ
 * (thresholds 16 / 32 / 64). Paper result: half the WPQ size (32) is the
 * sweet spot — smaller thresholds multiply checkpoint stores, larger
 * ones quarantine too much per region and stall the pipeline. A thr-8
 * column is added because, at this model's region sizes (unroll-capped
 * to match §V-G3), thresholds of 16+ rarely bind; the checkpoint
 * inflation the paper describes appears clearly at 8.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;
    auto exec = bench::makeExecutor(args);

    harness::ResultTable table(
        "Fig 12: LightWSP slowdown for store thresholds 16/32/64 "
        "(WPQ = 64)");
    table.addColumn("thr-8");
    table.addColumn("thr-16");
    table.addColumn("thr-32");
    table.addColumn("thr-64");

    const auto profiles = bench::selectedProfiles(args);
    const unsigned thresholds[] = {8u, 16u, 32u, 64u};

    std::vector<harness::RunSpec> specs;
    for (const auto *p : profiles) {
        for (unsigned thr : thresholds) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = core::Scheme::LightWsp;
            spec.storeThreshold = thr;
            specs.push_back(spec);
        }
    }
    auto slow = exec.slowdowns(runner, specs);

    std::size_t i = 0;
    for (const auto *p : profiles) {
        std::vector<double> row(slow.begin() + i, slow.begin() + i + 4);
        i += 4;
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args, exec, /*per_app=*/false);
    return 0;
}
