/**
 * @file
 * Figure 11: WPQ-size sensitivity (256 / 128 / 64 entries; store
 * threshold = half the WPQ; the front-end buffer tracks the WPQ size).
 * Paper result: larger WPQs perform best; the 64-entry default matches
 * commodity iMCs at a small cost.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;
    auto exec = bench::makeExecutor(args);

    harness::ResultTable table(
        "Fig 11: LightWSP slowdown for WPQ sizes 256/128/64");
    table.addColumn("wpq-256");
    table.addColumn("wpq-128");
    table.addColumn("wpq-64");
    table.addColumn("wpq-16");

    const auto profiles = bench::selectedProfiles(args);
    const unsigned sizes[] = {256u, 128u, 64u, 16u};

    std::vector<harness::RunSpec> specs;
    for (const auto *p : profiles) {
        for (unsigned wpq : sizes) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = core::Scheme::LightWsp;
            spec.wpqEntries = wpq;
            specs.push_back(spec);
        }
    }
    auto slow = exec.slowdowns(runner, specs);

    std::size_t i = 0;
    for (const auto *p : profiles) {
        std::vector<double> row(slow.begin() + i, slow.begin() + i + 4);
        i += 4;
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args, exec, /*per_app=*/false);
    return 0;
}
