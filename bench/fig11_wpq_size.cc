/**
 * @file
 * Figure 11: WPQ-size sensitivity (256 / 128 / 64 entries; store
 * threshold = half the WPQ; the front-end buffer tracks the WPQ size).
 * Paper result: larger WPQs perform best; the 64-entry default matches
 * commodity iMCs at a small cost.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;

    harness::ResultTable table(
        "Fig 11: LightWSP slowdown for WPQ sizes 256/128/64");
    table.addColumn("wpq-256");
    table.addColumn("wpq-128");
    table.addColumn("wpq-64");
    table.addColumn("wpq-16");

    for (const auto *p : bench::selectedProfiles(args)) {
        std::vector<double> row;
        for (unsigned wpq : {256u, 128u, 64u, 16u}) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = core::Scheme::LightWsp;
            spec.wpqEntries = wpq;
            row.push_back(runner.slowdownVsBaseline(spec));
        }
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args, /*per_app=*/false);
    return 0;
}
