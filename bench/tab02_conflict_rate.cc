/**
 * @file
 * Table II: front-end-buffer conflict rate per suite — the fraction of
 * L1 evictions whose victim line still sat in the FEB. Paper result:
 * effectively zero for the single-threaded suites and at most a few
 * thousandths of a permille elsewhere, which is why the victim policies
 * of Fig. 13 are indistinguishable.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;
    auto exec = bench::makeExecutor(args);

    harness::ResultTable table(
        "Table II: FEB conflict rate (permille of L1 accesses)");
    table.addColumn("conflict");

    const auto profiles = bench::selectedProfiles(args);
    std::vector<harness::RunSpec> specs;
    for (const auto *p : profiles) {
        harness::RunSpec spec;
        spec.workload = p->name;
        spec.scheme = core::Scheme::LightWsp;
        specs.push_back(spec);
    }
    auto outcomes = exec.runAll(runner, specs);

    std::size_t i = 0;
    for (const auto *p : profiles) {
        const auto &r = outcomes[i++].result;
        double accesses = static_cast<double>(r.l1Hits + r.l1Misses);
        double rate =
            accesses > 0
                ? 1000.0 * static_cast<double>(r.bufferConflicts) / accesses
                : 0.0;
        // Epsilon keeps the geomean defined for all-zero suites.
        table.addRow(p->name, p->suite, {rate + 1e-9});
    }

    bench::finish(table, args, exec, /*per_app=*/false);
    return 0;
}
