/**
 * @file
 * Table II: front-end-buffer conflict rate per suite — the fraction of
 * L1 evictions whose victim line still sat in the FEB. Paper result:
 * effectively zero for the single-threaded suites and at most a few
 * thousandths of a permille elsewhere, which is why the victim policies
 * of Fig. 13 are indistinguishable.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;

    harness::ResultTable table(
        "Table II: FEB conflict rate (permille of L1 accesses)");
    table.addColumn("conflict");

    for (const auto *p : bench::selectedProfiles(args)) {
        harness::RunSpec spec;
        spec.workload = p->name;
        spec.scheme = core::Scheme::LightWsp;
        auto outcome = runner.run(spec);
        double accesses = static_cast<double>(outcome.result.l1Hits +
                                              outcome.result.l1Misses);
        double rate =
            accesses > 0
                ? 1000.0 *
                      static_cast<double>(outcome.result.bufferConflicts) /
                      accesses
                : 0.0;
        // Epsilon keeps the geomean defined for all-zero suites.
        table.addRow(p->name, p->suite, {rate + 1e-9});
    }

    bench::finish(table, args, /*per_app=*/false);
    return 0;
}
