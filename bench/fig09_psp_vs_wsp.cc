/**
 * @file
 * Figure 9: ideal PSP (eADR/BBB-class, no DRAM cache) vs LightWSP on the
 * memory-intensive applications. Paper result: 51.2% avg (up to 2.6x on
 * libquantum) for ideal PSP vs 3% for LightWSP — the cost of forfeiting
 * DRAM as LLC dwarfs LightWSP's persistence overhead.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;
    auto exec = bench::makeExecutor(args);

    harness::ResultTable table(
        "Fig 9: slowdown on memory-intensive apps (PSP-ideal / LightWSP)");
    table.addColumn("psp-ideal");
    table.addColumn("lightwsp");

    const auto &names = workloads::memoryIntensiveNames();
    std::vector<harness::RunSpec> specs;
    for (const auto &name : names) {
        for (core::Scheme s :
             {core::Scheme::PspIdeal, core::Scheme::LightWsp}) {
            harness::RunSpec spec;
            spec.workload = name;
            spec.scheme = s;
            specs.push_back(spec);
        }
    }
    auto slow = exec.slowdowns(runner, specs);

    std::size_t i = 0;
    for (const auto &name : names) {
        const auto &p = workloads::profileByName(name);
        table.addRow(name, p.suite, {slow[i], slow[i + 1]});
        i += 2;
    }

    bench::finish(table, args, exec);
    return 0;
}
