/**
 * @file
 * Figure 9: ideal PSP (eADR/BBB-class, no DRAM cache) vs LightWSP on the
 * memory-intensive applications. Paper result: 51.2% avg (up to 2.6x on
 * libquantum) for ideal PSP vs 3% for LightWSP — the cost of forfeiting
 * DRAM as LLC dwarfs LightWSP's persistence overhead.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;

    harness::ResultTable table(
        "Fig 9: slowdown on memory-intensive apps (PSP-ideal / LightWSP)");
    table.addColumn("psp-ideal");
    table.addColumn("lightwsp");

    for (const auto &name : workloads::memoryIntensiveNames()) {
        const auto &p = workloads::profileByName(name);
        std::vector<double> row;
        for (core::Scheme s :
             {core::Scheme::PspIdeal, core::Scheme::LightWsp}) {
            harness::RunSpec spec;
            spec.workload = name;
            spec.scheme = s;
            row.push_back(runner.slowdownVsBaseline(spec));
        }
        table.addRow(name, p.suite, row);
    }

    bench::finish(table, args);
    return 0;
}
