/**
 * @file
 * Figure 18: WPQ load-hit rate (hits per million instructions) for WPQ
 * sizes 256/128/64. Paper result: ~0.039 hits per million instructions
 * on average — low enough that the LLC-miss WPQ-search penalty (§IV-H)
 * is negligible.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;
    auto exec = bench::makeExecutor(args);

    harness::ResultTable table(
        "Fig 18: WPQ load hits per million instructions");
    table.addColumn("wpq-256");
    table.addColumn("wpq-128");
    table.addColumn("wpq-64");

    const auto profiles = bench::selectedProfiles(args);
    std::vector<harness::RunSpec> specs;
    for (const auto *p : profiles) {
        for (unsigned wpq : {256u, 128u, 64u}) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = core::Scheme::LightWsp;
            spec.wpqEntries = wpq;
            specs.push_back(spec);
        }
    }
    auto outcomes = exec.runAll(runner, specs);

    std::size_t i = 0;
    for (const auto *p : profiles) {
        std::vector<double> row;
        for (unsigned c = 0; c < 3; ++c, ++i) {
            const auto &r = outcomes[i].result;
            double per_m =
                r.instsRetired
                    ? 1e6 * static_cast<double>(r.wpqLoadHits) /
                          static_cast<double>(r.instsRetired)
                    : 0.0;
            // Keep zero rows geomean-safe by flooring at a tiny epsilon.
            row.push_back(per_m + 1e-6);
        }
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args, exec, /*per_app=*/false);
    return 0;
}
