/**
 * @file
 * Figure 18: WPQ load-hit rate (hits per million instructions) for WPQ
 * sizes 256/128/64. Paper result: ~0.039 hits per million instructions
 * on average — low enough that the LLC-miss WPQ-search penalty (§IV-H)
 * is negligible.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;

    harness::ResultTable table(
        "Fig 18: WPQ load hits per million instructions");
    table.addColumn("wpq-256");
    table.addColumn("wpq-128");
    table.addColumn("wpq-64");

    for (const auto *p : bench::selectedProfiles(args)) {
        std::vector<double> row;
        for (unsigned wpq : {256u, 128u, 64u}) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = core::Scheme::LightWsp;
            spec.wpqEntries = wpq;
            auto outcome = runner.run(spec);
            double per_m =
                outcome.result.instsRetired
                    ? 1e6 *
                          static_cast<double>(outcome.result.wpqLoadHits) /
                          static_cast<double>(outcome.result.instsRetired)
                    : 0.0;
            // Keep zero rows geomean-safe by flooring at a tiny epsilon.
            row.push_back(per_m + 1e-6);
        }
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args, /*per_app=*/false);
    return 0;
}
