/**
 * @file
 * Figure 8: region-level persistence efficiency (Eq. 1) of PPA and
 * LightWSP, per suite. Paper result: 89.3% (PPA) vs 99.9% (LightWSP) —
 * LRPO hides essentially all persistence latency while PPA pays waits at
 * each hardware region boundary.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;

    harness::ResultTable table(
        "Fig 8: region-level persistence efficiency % (PPA / LightWSP)");
    table.addColumn("ppa");
    table.addColumn("lightwsp");

    for (const auto *p : bench::selectedProfiles(args)) {
        std::vector<double> row;
        for (core::Scheme s : {core::Scheme::Ppa, core::Scheme::LightWsp}) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = s;
            auto outcome = runner.run(spec);
            auto cfg = harness::makeConfig(*p, spec);
            row.push_back(
                harness::persistenceEfficiency(outcome.result, cfg));
        }
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args, /*per_app=*/false);
    return 0;
}
