/**
 * @file
 * Figure 8: region-level persistence efficiency (Eq. 1) of PPA and
 * LightWSP, per suite. Paper result: 89.3% (PPA) vs 99.9% (LightWSP) —
 * LRPO hides essentially all persistence latency while PPA pays waits at
 * each hardware region boundary.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;
    auto exec = bench::makeExecutor(args);

    harness::ResultTable table(
        "Fig 8: region-level persistence efficiency % (PPA / LightWSP)");
    table.addColumn("ppa");
    table.addColumn("lightwsp");

    const auto profiles = bench::selectedProfiles(args);
    const core::Scheme schemes[] = {core::Scheme::Ppa,
                                    core::Scheme::LightWsp};

    std::vector<harness::RunSpec> specs;
    for (const auto *p : profiles) {
        for (core::Scheme s : schemes) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = s;
            specs.push_back(spec);
        }
    }
    auto outcomes = exec.runAll(runner, specs);

    std::size_t i = 0;
    for (const auto *p : profiles) {
        std::vector<double> row;
        for (std::size_t c = 0; c < 2; ++c, ++i) {
            auto cfg = harness::makeConfig(*p, specs[i]);
            row.push_back(
                harness::persistenceEfficiency(outcomes[i].result, cfg));
        }
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args, exec, /*per_app=*/false);
    return 0;
}
