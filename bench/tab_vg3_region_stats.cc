/**
 * @file
 * §V-G3: instruction-count and region statistics. Paper results: 7.03%
 * more dynamic instructions than the baseline (checkpoint stores +
 * boundaries), 91.33 instructions and 11.29 stores per dynamic region on
 * average.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;
    auto exec = bench::makeExecutor(args);

    harness::ResultTable table("§V-G3: instruction & region statistics");
    table.addColumn("inst-ovh%");
    table.addColumn("insts/region");
    table.addColumn("stores/region");
    table.addColumn("ckpt-pruned");

    const auto profiles = bench::selectedProfiles(args);
    std::vector<harness::RunSpec> specs;
    for (const auto *p : profiles) {
        for (core::Scheme s :
             {core::Scheme::Baseline, core::Scheme::LightWsp}) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = s;
            specs.push_back(spec);
        }
    }
    auto outcomes = exec.runAll(runner, specs);

    std::size_t i = 0;
    for (const auto *p : profiles) {
        const auto &b = outcomes[i];
        const auto &o = outcomes[i + 1];
        i += 2;
        double ovh = 100.0 *
                     (static_cast<double>(o.result.instsRetired) /
                          static_cast<double>(b.result.instsRetired) -
                      1.0);
        table.addRow(p->name, p->suite,
                     {std::max(ovh, 1e-6), o.result.avgRegionInsts,
                      std::max(o.result.avgRegionStores, 1e-6),
                      static_cast<double>(
                          o.compileStats.prunedCheckpoints) + 1e-6});
    }

    bench::finish(table, args, exec);
    return 0;
}
