/**
 * @file
 * §V-G3: instruction-count and region statistics. Paper results: 7.03%
 * more dynamic instructions than the baseline (checkpoint stores +
 * boundaries), 91.33 instructions and 11.29 stores per dynamic region on
 * average.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;

    harness::ResultTable table("§V-G3: instruction & region statistics");
    table.addColumn("inst-ovh%");
    table.addColumn("insts/region");
    table.addColumn("stores/region");
    table.addColumn("ckpt-pruned");

    for (const auto *p : bench::selectedProfiles(args)) {
        harness::RunSpec base;
        base.workload = p->name;
        base.scheme = core::Scheme::Baseline;
        auto b = runner.run(base);

        harness::RunSpec spec;
        spec.workload = p->name;
        spec.scheme = core::Scheme::LightWsp;
        auto o = runner.run(spec);

        double ovh = 100.0 *
                     (static_cast<double>(o.result.instsRetired) /
                          static_cast<double>(b.result.instsRetired) -
                      1.0);
        table.addRow(p->name, p->suite,
                     {std::max(ovh, 1e-6), o.result.avgRegionInsts,
                      std::max(o.result.avgRegionStores, 1e-6),
                      static_cast<double>(
                          o.compileStats.prunedCheckpoints) + 1e-6});
    }

    bench::finish(table, args);
    return 0;
}
