/**
 * @file
 * Figure 14: L1 cache miss rate (%) under the three victim-selection
 * policies vs the stale-load configuration (no buffer snooping). Paper
 * result: similar rates for the three policies; the stale-load case is
 * visibly higher on the multi-threaded suites because every stale fetch
 * forces a refetch once the in-flight store lands.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;
    auto exec = bench::makeExecutor(args);

    harness::ResultTable table(
        "Fig 14: L1 miss rate % per victim policy (+ stale-load)");
    table.addColumn("full");
    table.addColumn("half");
    table.addColumn("zero");
    table.addColumn("stale-load");

    const auto profiles = bench::selectedProfiles(args);
    const mem::VictimPolicy policies[] = {
        mem::VictimPolicy::Full, mem::VictimPolicy::Half,
        mem::VictimPolicy::Zero, mem::VictimPolicy::None};

    std::vector<harness::RunSpec> specs;
    for (const auto *p : profiles) {
        for (mem::VictimPolicy v : policies) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = core::Scheme::LightWsp;
            spec.victimPolicy = v;
            specs.push_back(spec);
        }
    }
    auto outcomes = exec.runAll(runner, specs);

    std::size_t i = 0;
    for (const auto *p : profiles) {
        std::vector<double> row;
        for (unsigned c = 0; c < 4; ++c, ++i)
            row.push_back(outcomes[i].result.l1MissRate() * 100.0 + 1e-9);
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args, exec, /*per_app=*/false);
    return 0;
}
