/**
 * @file
 * Figure 13: buffer-snooping victim-selection policy sensitivity
 * (full-way scan / half-way scan / zero — wait for the FEB entry).
 * Paper result: no significant difference, because buffer conflicts are
 * vanishingly rare (Table II).
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;
    auto exec = bench::makeExecutor(args);

    harness::ResultTable table(
        "Fig 13: LightWSP slowdown per victim-selection policy");
    table.addColumn("full");
    table.addColumn("half");
    table.addColumn("zero");

    const auto profiles = bench::selectedProfiles(args);
    const mem::VictimPolicy policies[] = {mem::VictimPolicy::Full,
                                          mem::VictimPolicy::Half,
                                          mem::VictimPolicy::Zero};

    std::vector<harness::RunSpec> specs;
    for (const auto *p : profiles) {
        for (mem::VictimPolicy v : policies) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = core::Scheme::LightWsp;
            spec.victimPolicy = v;
            specs.push_back(spec);
        }
    }
    auto slow = exec.slowdowns(runner, specs);

    std::size_t i = 0;
    for (const auto *p : profiles) {
        std::vector<double> row(slow.begin() + i, slow.begin() + i + 3);
        i += 3;
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args, exec, /*per_app=*/false);
    return 0;
}
