/**
 * @file
 * Figure 13: buffer-snooping victim-selection policy sensitivity
 * (full-way scan / half-way scan / zero — wait for the FEB entry).
 * Paper result: no significant difference, because buffer conflicts are
 * vanishingly rare (Table II).
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;

    harness::ResultTable table(
        "Fig 13: LightWSP slowdown per victim-selection policy");
    table.addColumn("full");
    table.addColumn("half");
    table.addColumn("zero");

    for (const auto *p : bench::selectedProfiles(args)) {
        std::vector<double> row;
        for (mem::VictimPolicy v :
             {mem::VictimPolicy::Full, mem::VictimPolicy::Half,
              mem::VictimPolicy::Zero}) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = core::Scheme::LightWsp;
            spec.victimPolicy = v;
            row.push_back(runner.slowdownVsBaseline(spec));
        }
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args, /*per_app=*/false);
    return 0;
}
