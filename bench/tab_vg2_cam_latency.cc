/**
 * @file
 * §V-G2: front-end-buffer / WPQ CAM search latency. The paper measures
 * 0.99 ns (2 cycles at 2 GHz) with CACTI 7 at 22nm for a 64-entry, 8B
 * structure; this bench prints the analytic model across the sizes used
 * in the sensitivity studies.
 */

#include <cstdio>

#include "baselines/baselines.hh"
#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    std::printf("== §V-G2: CAM search latency model (CACTI 7 @ 22nm "
                "calibration) ==\n");
    std::printf("%-10s %-10s %12s %10s\n", "entries", "granule",
                "latency(ns)", "cycles@2GHz");
    for (unsigned entries : {16u, 32u, 64u, 128u, 256u}) {
        double ns = baselines::camSearchLatencyNs(entries, 8);
        unsigned cyc = baselines::camSearchLatencyCycles(entries, 8);
        std::printf("%-10u %-10s %12.3f %10u\n", entries, "8B", ns, cyc);
    }
    std::printf("paper reference: 64 entries x 8B => 0.99 ns (2 cycles)\n");
    return 0;
}
