/**
 * @file
 * Figure 21 (extension): open-loop request-latency tails of the serve
 * subsystem — p50/p99/p999 per-request latency under every persistence
 * scheme, for both service profiles, across an arrival-rate x
 * burstiness grid.
 *
 * Only the (profile x scheme) grid is simulated — 10 traced runs with
 * ServeMark timestamping. Arrival times enter purely in the
 * LatencyRecorder::fold post-processing (Lindley recursion), so every
 * arrival-rate/burstiness cell reuses the same completion marks and the
 * CSV is byte-identical at any --jobs count; quick mode runs the
 * identical grid. Alongside the latency percentiles each row reports
 * boundary-stall cycles inside the p99 request's service time and the
 * max-over-MCs WPQ occupancy at its completion — the tail-attribution
 * view a service operator cares about (which ROADMAP item 1 asked for).
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <thread>

#include "bench_util.hh"
#include "core/system.hh"
#include "pds/pds.hh"
#include "serve/serve.hh"
#include "trace/events.hh"

using namespace lwsp;

namespace {

constexpr pds::PdsScheme kSchemes[] = {
    pds::PdsScheme::LightWsp, pds::PdsScheme::Capri, pds::PdsScheme::Ppa,
    pds::PdsScheme::Cwsp,     pds::PdsScheme::Pmtx,
};
constexpr serve::Profile kProfiles[] = {serve::Profile::Varnish,
                                        serve::Profile::Horde};
constexpr unsigned kMeanIas[] = {2000, 1000, 500};  ///< arrival rates
constexpr unsigned kBursts[] = {0, 2};              ///< none / heavy

serve::ServeSpec
specFor(serve::Profile prof)
{
    serve::ServeSpec spec;
    spec.profile = prof;
    spec.sizeClass = 1;
    spec.numRequests = 1200;
    spec.seed = 11;
    return spec;
}

/** One simulated (profile, scheme) point; arrival cells fold from it. */
struct SimPoint
{
    serve::Profile profile = serve::Profile::Varnish;
    pds::PdsScheme scheme = pds::PdsScheme::LightWsp;
    serve::ServeWorkload wl;
    serve::OpMarks marks;
    Tick cycles = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);

    std::vector<SimPoint> sims;
    for (auto prof : kProfiles) {
        for (auto s : kSchemes) {
            SimPoint p;
            p.profile = prof;
            p.scheme = s;
            sims.push_back(std::move(p));
        }
    }

    auto t0 = std::chrono::steady_clock::now();
    harness::parallelFor(args.jobs, sims.size(), [&](std::size_t i) {
        SimPoint &p = sims[i];
        p.wl = serve::buildWorkload(specFor(p.profile));

        auto cfg = pds::makePdsConfig(p.scheme, pds::PdsRunMode::Perf);
        cfg.engine = harness::defaultSimEngine(); // honour --engine A/B
        cfg.traceEnabled = true;
        cfg.traceMask = trace::categoryBit(trace::Category::Serve) |
                        trace::categoryBit(trace::Category::Wpq);
        // Must hold every Serve+Wpq event of the run: a wrapped ring
        // would silently drop early request marks (extractMarks panics).
        cfg.traceBufferEvents = std::size_t(1) << 18;
        pds::PdsParams params =
            pds::PdsModel(p.wl.pdsSpec, p.wl.ops).params();
        cfg.core.serveMarkAddr = params.served;

        auto prog = pds::preparePdsProgram(p.wl.pdsSpec, p.wl.ops,
                                           p.scheme, pds::PdsRunMode::Perf);
        core::System sys(cfg, prog, 1);
        auto res = sys.run();
        LWSP_ASSERT(res.completed, "fig21 point did not complete: ",
                    p.wl.spec.toString(), " scheme ",
                    pds::pdsSchemeName(p.scheme));
        std::string err =
            pds::checkSemantics(p.wl.pdsSpec, p.wl.ops, sys.execImage());
        LWSP_ASSERT(err.empty(), "fig21 semantic check failed: ", err);
        p.marks = serve::LatencyRecorder::extractMarks(
            p.wl, sys.traceSink()->snapshot());
        p.cycles = res.cycles;
    });

    harness::SweepStats stats;
    stats.jobs = args.jobs ? args.jobs
                           : std::max(1u,
                                      std::thread::hardware_concurrency());
    stats.points = sims.size();
    stats.wallSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    for (const auto &p : sims)
        stats.simulatedCycles += p.cycles;

    // Fold the arrival grid (pure post-processing, deterministic). The
    // console table carries only the latency columns (strictly positive,
    // so the per-suite geomean rows are meaningful); the CSV adds the
    // tail-attribution columns, which can legitimately be 0 (pmtx has no
    // boundary stalls).
    harness::ResultTable table(
        "Fig 21: open-loop request latency tails (cycles), 1200 requests "
        "per profile, Zipf keys. Rows <profile>/<scheme>/ia=<mean "
        "inter-arrival>/b=<burst preset>");
    for (const char *c : {"p50", "p99", "p999", "max"})
        table.addColumn(c);

    std::ostringstream csvBody;
    csvBody << "workload,suite,p50,p99,p999,max,stall99,wpq99\n";
    std::vector<std::string> repRows;
    for (const SimPoint &p : sims) {
        for (unsigned ia : kMeanIas) {
            for (unsigned b : kBursts) {
                serve::ServeSpec aspec = p.wl.spec;
                aspec.meanIa = ia;
                aspec.burst = b;
                auto arr = serve::arrivalTimes(aspec);
                auto rep =
                    serve::LatencyRecorder::fold(p.wl, p.marks, arr);
                std::string name =
                    std::string(serve::profileName(p.profile)) + "/" +
                    pds::pdsSchemeName(p.scheme) + "/ia=" +
                    std::to_string(ia) + "/b=" + std::to_string(b);
                table.addRow(name, pds::pdsSchemeName(p.scheme),
                             {rep.p50, rep.p99, rep.p999, rep.max});
                csvBody << name << ',' << pds::pdsSchemeName(p.scheme)
                        << ',' << std::setprecision(10) << rep.p50 << ','
                        << rep.p99 << ',' << rep.p999 << ',' << rep.max
                        << ',' << rep.stallAtP99 << ','
                        << rep.wpqOccAtP99 << '\n';
                std::ostringstream rec;
                rec << "{\"row\":\"" << name << "\",\"spec\":\""
                    << aspec.toString() << "\",\"p50\":" << rep.p50
                    << ",\"p99\":" << rep.p99 << ",\"p999\":" << rep.p999
                    << ",\"max\":" << rep.max << ",\"mean\":" << rep.mean
                    << ",\"stall_p99\":" << rep.stallAtP99
                    << ",\"wpq_p99\":" << rep.wpqOccAtP99
                    << ",\"requests\":" << rep.requests << "}";
                repRows.push_back(rec.str());
            }
        }
    }

    table.print(std::cout);
    if (!args.csvPath.empty()) {
        std::ofstream csv(args.csvPath);
        csv << csvBody.str();
        std::cout << "csv written to " << args.csvPath << '\n';
    }
    if (!args.sweepJsonPath.empty())
        harness::writeSweepJson(args.sweepJsonPath, args.benchName, stats);
    if (!args.reportPath.empty()) {
        std::ofstream rep(args.reportPath);
        rep << "{\"schema\":\"lwsp-serve-report-v1\",\"bench\":\""
            << args.benchName << "\",\"cells\":[";
        for (std::size_t i = 0; i < repRows.size(); ++i)
            rep << (i ? "," : "") << repRows[i];
        rep << "]}\n";
        std::cout << "run report written to " << args.reportPath << '\n';
    }
    return 0;
}
