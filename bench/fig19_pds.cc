/**
 * @file
 * Figure 19 (extension): per-operation slowdown of the persistent
 * data-structure library (src/pds) under every persistence scheme.
 *
 * Rows are the three structures (append-only log, chained hash table,
 * free-list allocator); columns are LightWSP, Capri, PPA, cWSP and the
 * pmtx software undo-log-transaction baseline. Each cell is
 * cycles(scheme, Perf mode) / cycles(same program, persistence-free
 * baseline machine) — the same normalization as fig07, but over real
 * crash-consistent structures instead of the paper's synthetic kernels.
 *
 * The pds sweep does not go through SweepExecutor/Runner: those resolve
 * workloads by paper-profile name, and the pds programs are generated
 * IR, not profiles. The sweep here is a flat parallelFor over the
 * (structure x scheme) grid with results landing in input-indexed
 * slots, so the table/CSV stay byte-identical at any job count — same
 * contract, local implementation. Quick mode runs the identical grid
 * (it is already small); bench_all.sh row-subset checking then works
 * unchanged.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <thread>

#include "bench_util.hh"
#include "core/system.hh"
#include "pds/pds.hh"

using namespace lwsp;

namespace {

constexpr pds::PdsScheme kSchemes[] = {
    pds::PdsScheme::LightWsp, pds::PdsScheme::Capri, pds::PdsScheme::Ppa,
    pds::PdsScheme::Cwsp,     pds::PdsScheme::Pmtx,
};
constexpr pds::Kind kKinds[] = {pds::Kind::Log, pds::Kind::Hash,
                                pds::Kind::Alloc};

pds::PdsSpec
specFor(pds::Kind k)
{
    pds::PdsSpec spec;
    spec.kind = k;
    spec.sizeClass = 1;
    spec.numOps = 192;
    spec.mix = 0;
    spec.seed = 7;
    return spec;
}

struct Point
{
    pds::PdsSpec spec;
    bool baseline = false;
    pds::PdsScheme scheme = pds::PdsScheme::LightWsp;
    Tick cycles = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);

    // Row-major grid plus one trailing baseline point per structure.
    std::vector<Point> points;
    for (auto k : kKinds) {
        for (auto s : kSchemes)
            points.push_back({specFor(k), false, s, 0});
        points.push_back({specFor(k), true, pds::PdsScheme::LightWsp, 0});
    }

    auto t0 = std::chrono::steady_clock::now();
    harness::parallelFor(args.jobs, points.size(), [&](std::size_t i) {
        Point &p = points[i];
        core::SystemConfig cfg =
            p.baseline ? pds::makePdsBaselineConfig()
                       : pds::makePdsConfig(p.scheme, pds::PdsRunMode::Perf);
        cfg.engine = harness::defaultSimEngine(); // honour --engine A/B
        compiler::CompiledProgram prog;
        if (p.baseline) {
            auto built = pds::buildPdsProgram(p.spec, false);
            prog = compiler::makeUncompiled(std::move(built.module));
        } else {
            prog = pds::preparePdsProgram(p.spec, p.scheme,
                                          pds::PdsRunMode::Perf);
        }
        core::System sys(cfg, prog, 1);
        auto res = sys.run();
        LWSP_ASSERT(res.completed, "fig19 point did not complete: ",
                    p.spec.toString());
        std::string err = pds::checkSemantics(p.spec, sys.execImage());
        LWSP_ASSERT(err.empty(), "fig19 semantic check failed: ", err);
        p.cycles = res.cycles;
    });

    harness::SweepStats stats;
    stats.jobs = args.jobs ? args.jobs
                           : std::max(1u,
                                      std::thread::hardware_concurrency());
    stats.points = points.size();
    stats.wallSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    for (const auto &p : points)
        stats.simulatedCycles += p.cycles;

    harness::ResultTable table(
        "Fig 19: pds per-op slowdown vs persistence-free baseline "
        "(sz=1, 192 ops, mix 0)");
    for (auto s : kSchemes)
        table.addColumn(pds::pdsSchemeName(s));

    constexpr std::size_t stride =
        sizeof(kSchemes) / sizeof(kSchemes[0]) + 1;
    for (std::size_t k = 0; k < 3; ++k) {
        const Point &base = points[k * stride + stride - 1];
        std::vector<double> row;
        for (std::size_t s = 0; s + 1 < stride; ++s) {
            const Point &p = points[k * stride + s];
            row.push_back(static_cast<double>(p.cycles) /
                          static_cast<double>(base.cycles));
        }
        table.addRow(pds::kindName(kKinds[k]), "pds", row);
    }

    table.print(std::cout);
    if (!args.csvPath.empty()) {
        std::ofstream csv(args.csvPath);
        table.writeCsv(csv);
        std::cout << "csv written to " << args.csvPath << '\n';
    }
    if (!args.sweepJsonPath.empty())
        harness::writeSweepJson(args.sweepJsonPath, args.benchName, stats);
    if (!args.reportPath.empty()) {
        // The harness run-report schema resolves workloads by paper
        // profile; pds points are generated programs, so they get their
        // own (smaller) versioned record stream.
        std::ofstream rep(args.reportPath);
        rep << "{\"schema\":\"lwsp-pds-report-v1\",\"bench\":\""
            << args.benchName << "\",\"points\":[";
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Point &p = points[i];
            rep << (i ? "," : "") << "{\"spec\":\"" << p.spec.toString()
                << "\",\"scheme\":\""
                << (p.baseline ? "baseline" : pds::pdsSchemeName(p.scheme))
                << "\",\"cycles\":" << p.cycles << "}";
        }
        rep << "]}\n";
        std::cout << "run report written to " << args.reportPath << '\n';
    }
    return 0;
}
