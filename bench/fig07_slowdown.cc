/**
 * @file
 * Figure 7: slowdown of Capri, PPA and LightWSP over the memory-mode
 * baseline, per application with per-suite and overall geomeans.
 * Paper result: 50.5% / 8.1% / 9.0% average overhead respectively.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;

    harness::ResultTable table(
        "Fig 7: execution slowdown vs baseline (Capri / PPA / LightWSP)");
    table.addColumn("capri");
    table.addColumn("ppa");
    table.addColumn("lightwsp");

    for (const auto *p : bench::selectedProfiles(args)) {
        std::vector<double> row;
        for (core::Scheme s : {core::Scheme::Capri, core::Scheme::Ppa,
                               core::Scheme::LightWsp}) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = s;
            row.push_back(runner.slowdownVsBaseline(spec));
        }
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args);
    return 0;
}
