/**
 * @file
 * Figure 7: slowdown of Capri, PPA and LightWSP over the memory-mode
 * baseline, per application with per-suite and overall geomeans.
 * Paper result: 50.5% / 8.1% / 9.0% average overhead respectively.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;
    auto exec = bench::makeExecutor(args);

    harness::ResultTable table(
        "Fig 7: execution slowdown vs baseline (Capri / PPA / LightWSP)");
    table.addColumn("capri");
    table.addColumn("ppa");
    table.addColumn("lightwsp");

    const auto profiles = bench::selectedProfiles(args);
    const core::Scheme schemes[] = {core::Scheme::Capri, core::Scheme::Ppa,
                                    core::Scheme::LightWsp};

    std::vector<harness::RunSpec> specs;
    for (const auto *p : profiles) {
        for (core::Scheme s : schemes) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = s;
            specs.push_back(spec);
        }
    }
    auto slow = exec.slowdowns(runner, specs);

    std::size_t i = 0;
    for (const auto *p : profiles) {
        std::vector<double> row(slow.begin() + i, slow.begin() + i + 3);
        i += 3;
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args, exec);
    return 0;
}
