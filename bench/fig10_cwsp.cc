/**
 * @file
 * Figure 10: LightWSP vs the state-of-the-art cWSP, per suite (NPB
 * excluded, matching the paper). Paper result: cWSP 5.7% vs LightWSP
 * 8.5% average — comparable performance, but cWSP needs intrusive
 * core/MC changes while LightWSP's hardware cost is near zero.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;
    auto exec = bench::makeExecutor(args);

    harness::ResultTable table(
        "Fig 10: slowdown vs baseline (cWSP / LightWSP), NPB excluded");
    table.addColumn("cwsp");
    table.addColumn("lightwsp");

    std::vector<const workloads::WorkloadProfile *> profiles;
    for (const auto *p : bench::selectedProfiles(args)) {
        if (p->suite != "NPB")  // cWSP's evaluation does not use NPB
            profiles.push_back(p);
    }

    std::vector<harness::RunSpec> specs;
    for (const auto *p : profiles) {
        for (core::Scheme s :
             {core::Scheme::Cwsp, core::Scheme::LightWsp}) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = s;
            specs.push_back(spec);
        }
    }
    auto slow = exec.slowdowns(runner, specs);

    std::size_t i = 0;
    for (const auto *p : profiles) {
        table.addRow(p->name, p->suite, {slow[i], slow[i + 1]});
        i += 2;
    }

    bench::finish(table, args, exec, /*per_app=*/false);
    return 0;
}
