/**
 * @file
 * Figure 10: LightWSP vs the state-of-the-art cWSP, per suite (NPB
 * excluded, matching the paper). Paper result: cWSP 5.7% vs LightWSP
 * 8.5% average — comparable performance, but cWSP needs intrusive
 * core/MC changes while LightWSP's hardware cost is near zero.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;

    harness::ResultTable table(
        "Fig 10: slowdown vs baseline (cWSP / LightWSP), NPB excluded");
    table.addColumn("cwsp");
    table.addColumn("lightwsp");

    for (const auto *p : bench::selectedProfiles(args)) {
        if (p->suite == "NPB")
            continue;  // cWSP's evaluation does not use NPB
        std::vector<double> row;
        for (core::Scheme s :
             {core::Scheme::Cwsp, core::Scheme::LightWsp}) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = s;
            row.push_back(runner.slowdownVsBaseline(spec));
        }
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args, /*per_app=*/false);
    return 0;
}
