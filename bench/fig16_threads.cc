/**
 * @file
 * Figure 16: thread-count scaling (8 / 16 / 32 / 64 threads on 8 cores,
 * fixed 64-entry WPQ) for the multi-threaded suites. Paper result:
 * overhead grows with thread count from shared-WPQ contention; the
 * overflow (deadlock-fallback) rate stays low (1.9 per 10k instructions
 * at 64 threads) and shrinks ~5x with a 256-entry WPQ.
 */

#include "bench_util.hh"

using namespace lwsp;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;
    auto exec = bench::makeExecutor(args);

    // Quick mode keeps the full thread axis: the event-driven scheduler
    // (plus the lazy shadow-prune heap) took the 64-thread points from
    // minutes to seconds each, so the smoke tier can afford the sweep
    // the paper's figure actually shows.
    std::vector<unsigned> threadAxis = {8, 16, 32, 64};
    unsigned oflowThreads = 64;

    harness::ResultTable table(
        "Fig 16: LightWSP slowdown per thread count (multi-threaded "
        "suites)");
    for (unsigned t : threadAxis)
        table.addColumn(std::to_string(t) + "t");

    harness::ResultTable overflow(
        "Fig 16b: WPQ overflow events per 10k instructions (" +
        std::to_string(oflowThreads) + "t, WPQ 64 vs 256)");
    overflow.addColumn("wpq-64");
    overflow.addColumn("wpq-256");

    std::vector<const workloads::WorkloadProfile *> profiles;
    for (const auto *p : bench::selectedProfiles(args)) {
        if (p->threads >= 2)
            profiles.push_back(p);
    }

    std::vector<harness::RunSpec> specs;
    std::vector<harness::RunSpec> ospecs;
    for (const auto *p : profiles) {
        for (unsigned t : threadAxis) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = core::Scheme::LightWsp;
            spec.threads = t;
            specs.push_back(spec);
        }
        for (unsigned wpq : {64u, 256u}) {
            harness::RunSpec spec;
            spec.workload = p->name;
            spec.scheme = core::Scheme::LightWsp;
            spec.threads = oflowThreads;
            spec.wpqEntries = wpq;
            ospecs.push_back(spec);
        }
    }
    auto slow = exec.slowdowns(runner, specs);
    auto outcomes = exec.runAll(runner, ospecs);

    std::size_t i = 0, oi = 0;
    for (const auto *p : profiles) {
        std::vector<double> row(slow.begin() + i,
                                slow.begin() + i + threadAxis.size());
        i += threadAxis.size();
        table.addRow(p->name, p->suite, row);

        std::vector<double> orow;
        for (unsigned c = 0; c < 2; ++c, ++oi) {
            const auto &r = outcomes[oi].result;
            double per10k =
                r.instsRetired
                    ? 1e4 * static_cast<double>(r.wpqFallbackFlushes) /
                          static_cast<double>(r.instsRetired)
                    : 0.0;
            orow.push_back(per10k);
        }
        overflow.addRow(p->name, p->suite, orow);
    }

    bench::finish(table, args, exec, /*per_app=*/false);
    std::cout << '\n';
    overflow.printSuiteSummary(std::cout);
    return 0;
}
