/**
 * @file
 * Figure 22 (extension): service availability under failure storms —
 * MTTR (power-on to first served request) and the useful-work fraction
 * of a stormed service lifetime, per persistence scheme.
 *
 * Each row puts a fig21 service tape (96 requests, Zipf keys) through a
 * seeded fault::FailureSchedule: an initial power failure at 60% of the
 * crash-free run, then the schedule's drain interrupts, recovery
 * re-entries and post-recovery exec failures, exactly as the fuzz storm
 * campaign replays them. Every boot is recovered with
 * System::recoverChecked (a fault-free image must never be classified
 * unrecoverable) and probed for MTTR on a throwaway replica —
 * System::recover + runUntilWordChanges on the serve counter, the fig20
 * measurement — while the real lineage machine runs on into the next
 * failure. Availability is goldenCycles / wallCycles: the crash-free
 * run's cycle count over the powered cycles the stormed lifetime needed
 * to finish the same tape (re-execution waste + drain/recovery overhead
 * push it below 1).
 *
 * Recovery mode substitutes the LightWSP gated-commit binary for
 * capri/ppa/cwsp's hardware checkpoints (DESIGN.md §13); pmtx rides its
 * own undo-log path, so a storm that lands mid-undo-replay exercises
 * the rollback's own crash consistency. Output-indexed result slots and
 * per-row seeds keep the CSV byte-identical at any --jobs count and
 * either --engine; quick mode runs the identical (already small) grid.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <thread>

#include "bench_util.hh"
#include "core/system.hh"
#include "fault/storm.hh"
#include "pds/pds.hh"
#include "serve/serve.hh"

using namespace lwsp;

namespace {

constexpr pds::PdsScheme kSchemes[] = {
    pds::PdsScheme::LightWsp, pds::PdsScheme::Capri, pds::PdsScheme::Ppa,
    pds::PdsScheme::Cwsp,     pds::PdsScheme::Pmtx,
};
constexpr serve::Profile kProfiles[] = {serve::Profile::Varnish,
                                        serve::Profile::Horde};
constexpr unsigned kStormEvents = 3; ///< extra failures per lifetime

serve::ServeSpec
specFor(serve::Profile prof)
{
    serve::ServeSpec spec;
    spec.profile = prof;
    spec.sizeClass = 1;
    spec.numRequests = 96;
    spec.seed = 11;
    return spec;
}

struct Point
{
    serve::Profile profile = serve::Profile::Varnish;
    pds::PdsScheme scheme = pds::PdsScheme::LightWsp;
    fault::FailureSchedule storm;
    unsigned failures = 0;  ///< power failures actually fired
    unsigned boots = 0;     ///< recoveries (incl. re-entered preambles)
    unsigned mttrSamples = 0;
    Tick mttrSum = 0;
    Tick mttrMax = 0;
    Tick goldenCycles = 0;
    Tick wallCycles = 0;    ///< powered cycles across the whole lifetime
};

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);

    std::vector<Point> points;
    for (auto prof : kProfiles) {
        for (auto s : kSchemes) {
            Point p;
            p.profile = prof;
            p.scheme = s;
            points.push_back(p);
        }
    }

    auto t0 = std::chrono::steady_clock::now();
    harness::parallelFor(args.jobs, points.size(), [&](std::size_t i) {
        Point &p = points[i];
        auto wl = serve::buildWorkload(specFor(p.profile));
        auto cfg = pds::makePdsConfig(p.scheme, pds::PdsRunMode::Recovery);
        cfg.engine = harness::defaultSimEngine(); // honour --engine A/B
        auto prog = pds::preparePdsProgram(wl.pdsSpec, wl.ops, p.scheme,
                                           pds::PdsRunMode::Recovery);
        pds::PdsParams params = pds::PdsModel(wl.pdsSpec, wl.ops).params();

        core::System golden(cfg, prog, 1);
        auto gres = golden.run();
        LWSP_ASSERT(gres.completed, "fig22 golden did not complete: ",
                    wl.spec.toString());
        p.goldenCycles = gres.cycles;

        // The row's storm is deterministic in its grid index, so the
        // CSV never depends on scheduling.
        p.storm = fault::FailureSchedule::random(
            0xf22u + 7919u * static_cast<std::uint64_t>(i), kStormEvents,
            gres.cycles / 4 + 1);
        std::size_t stormIdx = 0;
        auto takeDrains = [&p, &stormIdx] {
            std::vector<unsigned> iters;
            while (stormIdx < p.storm.events.size() &&
                   p.storm.events[stormIdx].phase ==
                       fault::FailurePhase::Drain) {
                iters.push_back(static_cast<unsigned>(
                    p.storm.events[stormIdx].at));
                ++stormIdx;
            }
            return iters;
        };

        core::System victim(cfg, prog, 1);
        auto vr = victim.runWithFailureStorm(gres.cycles * 6 / 10,
                                             takeDrains());
        LWSP_ASSERT(!vr.completed, "fig22 victim outran its failure: ",
                    wl.spec.toString());
        p.wallCycles += vr.cycles;
        p.failures = 1 + static_cast<unsigned>(stormIdx);

        // Loop-head invariant: *cur is a crashed machine whose PM image
        // is the one to recover from.
        const core::System *cur = &victim;
        std::unique_ptr<core::System> hold;
        while (true) {
            auto recres = core::System::recoverChecked(
                cfg, prog, 1, cur->pmImage(), {}, &cur->crashReport());
            ++p.boots;
            while (stormIdx < p.storm.events.size() &&
                   p.storm.events[stormIdx].phase ==
                       fault::FailurePhase::Recovery) {
                ++stormIdx;
                ++p.failures;
                auto retry = core::System::recoverChecked(
                    cfg, prog, 1, cur->pmImage(), {},
                    &cur->crashReport());
                ++p.boots;
                LWSP_ASSERT(retry.outcome == recres.outcome,
                            "fig22 recovery re-entry changed verdict: ",
                            core::recoveryOutcomeName(recres.outcome),
                            " -> ",
                            core::recoveryOutcomeName(retry.outcome));
                recres = std::move(retry);
            }
            LWSP_ASSERT(recres.outcome !=
                            core::RecoveryOutcome::DetectedUnrecoverable,
                        "fig22 fault-free image unrecoverable: ",
                        recres.detail);

            // MTTR probe: a throwaway replica recovered from the same
            // image, run until the serve counter first moves. Late
            // crashes may leave nothing to serve; then there is no
            // sample (MTTR of a finished tape is not defined).
            auto probeSys = core::System::recover(cfg, prog, 1,
                                                  cur->pmImage(), {});
            std::uint64_t servedAtBoot =
                probeSys->execImage().read(params.served);
            auto probe = probeSys->runUntilWordChanges(params.served,
                                                       servedAtBoot);
            if (probe.served) {
                ++p.mttrSamples;
                p.mttrSum += probe.serveTick;
                p.mttrMax = std::max(p.mttrMax, probe.serveTick);
            }

            // All uses of *cur are done; the move below may destroy the
            // machine it points into.
            hold = std::move(recres.sys);
            cur = nullptr;
            if (stormIdx < p.storm.events.size()) {
                Tick gap = p.storm.events[stormIdx].at;
                ++stormIdx;
                ++p.failures;
                auto er = hold->runWithFailureStorm(gap, takeDrains());
                p.wallCycles += er.cycles;
                if (er.completed) {
                    // Finished before the failure landed; the schedule
                    // tail is moot.
                    p.failures = 1 + static_cast<unsigned>(stormIdx);
                    break;
                }
                LWSP_ASSERT(hold->crashed(),
                            "fig22 exec round neither completed nor "
                            "crashed");
                cur = hold.get();
                continue;
            }
            auto fr = hold->run();
            p.wallCycles += fr.cycles;
            LWSP_ASSERT(fr.completed, "fig22 final boot did not complete");
            break;
        }
        std::string err =
            pds::checkSemantics(wl.pdsSpec, wl.ops, hold->execImage());
        LWSP_ASSERT(err.empty(), "fig22 semantic check failed: ", err);
    });

    harness::SweepStats stats;
    stats.jobs = args.jobs ? args.jobs
                           : std::max(1u,
                                      std::thread::hardware_concurrency());
    stats.points = points.size();
    stats.wallSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    for (const auto &p : points)
        stats.simulatedCycles += p.goldenCycles + p.wallCycles;

    harness::ResultTable table(
        "Fig 22: availability under failure storms (96-request service "
        "tapes; initial crash at 60% + 3 scheduled failures). MTTR = "
        "power-on to first served request; avail = crash-free cycles / "
        "powered cycles");
    for (const char *c : {"mttr_mean", "mttr_max", "avail_pct"})
        table.addColumn(c);

    std::ostringstream csvBody;
    csvBody << "workload,scheme,failures,boots,mttr_mean,mttr_max,"
               "golden_cycles,wall_cycles,availability\n";
    for (const Point &p : points) {
        double mean = p.mttrSamples
                          ? static_cast<double>(p.mttrSum) /
                                static_cast<double>(p.mttrSamples)
                          : 0.0;
        double avail = static_cast<double>(p.goldenCycles) /
                       static_cast<double>(p.wallCycles);
        std::string name =
            std::string(serve::profileName(p.profile)) + "/" +
            pds::pdsSchemeName(p.scheme);
        table.addRow(name, pds::pdsSchemeName(p.scheme),
                     {mean, static_cast<double>(p.mttrMax),
                      100.0 * avail});
        csvBody << name << ',' << pds::pdsSchemeName(p.scheme) << ','
                << p.failures << ',' << p.boots << ','
                << std::setprecision(10) << mean << ',' << p.mttrMax
                << ',' << p.goldenCycles << ',' << p.wallCycles << ','
                << avail << '\n';
    }

    table.print(std::cout);
    if (!args.csvPath.empty()) {
        std::ofstream csv(args.csvPath);
        csv << csvBody.str();
        std::cout << "csv written to " << args.csvPath << '\n';
    }
    if (!args.sweepJsonPath.empty())
        harness::writeSweepJson(args.sweepJsonPath, args.benchName, stats);
    if (!args.reportPath.empty()) {
        // Emit the storm rows through the shared v1.2 run-report writer
        // so the recovery-lineage fields carry real values for once.
        std::vector<harness::RunRecord> recs;
        for (const Point &p : points) {
            harness::RunRecord rec;
            rec.spec.workload =
                std::string(serve::profileName(p.profile)) + "/" +
                pds::pdsSchemeName(p.scheme) + "+storm=" +
                p.storm.toString();
            rec.outcome.threads = 1;
            rec.outcome.result.completed = true;
            rec.outcome.result.cycles = p.wallCycles;
            rec.outcome.recovered = true;
            rec.outcome.recoveryOutcome = core::RecoveryOutcome::Recovered;
            rec.outcome.failuresSurvived = p.failures;
            recs.push_back(std::move(rec));
        }
        harness::writeRunReports(args.reportPath, args.benchName, recs,
                                 stats);
        std::cout << "run report written to " << args.reportPath << '\n';
    }
    return 0;
}
