/**
 * @file
 * Figure 17: CXL-attached persistence (Table III device configurations).
 * The persist path gains the CXL interconnect latency and the media's
 * latency/bandwidth replace the Optane iMC numbers. Paper result: under
 * 16% average overhead across all four devices.
 */

#include "bench_util.hh"

using namespace lwsp;

namespace {

struct CxlDevice
{
    const char *name;
    double readNs;
    double writeNs;
    double gbps;       ///< device write bandwidth (persist drain)
    double extraNs;    ///< additional interconnect latency
};

// Table III: CXL-I/II/III from Sun et al. (MICRO'23); CXL-PMEM adds the
// 70ns CXL link on top of Optane media (Pond, ASPLOS'23).
constexpr CxlDevice devices[] = {
    {"CXL-I", 158, 120, 38.4, 0},
    {"CXL-II", 223, 139, 19.2, 0},
    {"CXL-III", 348, 241, 25.6, 0},
    {"CXL-PMem", 245, 160, 2.3, 70},
};

harness::RunSpec
specFor(const workloads::WorkloadProfile &p, const CxlDevice &d)
{
    harness::RunSpec spec;
    spec.workload = p.name;
    spec.scheme = core::Scheme::LightWsp;
    spec.pmReadCycles = nsToCycles(d.readNs + d.extraNs);
    spec.pmWriteCycles = nsToCycles(d.writeNs + d.extraNs);
    spec.extraPathLatency = nsToCycles(d.extraNs);
    // Device write bandwidth sets the WPQ drain rate: cycles per
    // 8B granule at 2 GHz, split across 2 MCs.
    double granules_per_cycle = d.gbps / 8.0 / 2.0 / 2.0;
    Tick interval = granules_per_cycle >= 2.0 ? 1
                    : granules_per_cycle >= 1.0
                        ? 1
                        : static_cast<Tick>(1.0 / granules_per_cycle + 0.5);
    spec.drainInterval = std::max<Tick>(1, interval);
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv);
    harness::Runner runner;
    auto exec = bench::makeExecutor(args);

    harness::ResultTable table(
        "Fig 17: LightWSP slowdown per CXL device configuration");
    for (const auto &d : devices)
        table.addColumn(d.name);

    const auto profiles = bench::selectedProfiles(args);
    std::vector<harness::RunSpec> specs;
    for (const auto *p : profiles)
        for (const auto &d : devices)
            specs.push_back(specFor(*p, d));
    auto slow = exec.slowdowns(runner, specs);

    std::size_t i = 0;
    for (const auto *p : profiles) {
        std::vector<double> row(slow.begin() + i, slow.begin() + i + 4);
        i += 4;
        table.addRow(p->name, p->suite, row);
    }

    bench::finish(table, args, exec, /*per_app=*/false);
    return 0;
}
