#!/usr/bin/env bash
# Run every figure/table reproduction through the parallel sweep engine,
# check the CSVs against the checked-in references, and aggregate the
# per-bench telemetry into one BENCH_sweep.json.
#
#   scripts/bench_all.sh [--quick] [--jobs N] [--build-dir DIR]
#                        [--out-dir DIR] [--speedup] [--fuzz] [--faults]
#                        [--trace] [--serve] [--storm]
#
#   --quick      one representative app per suite (fast smoke pass)
#   --jobs N     sweep worker threads per bench (default: all cores)
#   --build-dir  where the bench binaries live (default: ./build)
#   --out-dir    where CSVs/JSON land (default: BUILD_DIR/bench_out)
#   --trace      additionally run one traced simulation point
#                (lwsp_cli run --trace-out) and round it through the
#                lwsp_trace inspector and the Perfetto converter
#   --speedup    additionally run fig07 at --jobs 1 and --jobs $(nproc),
#                byte-diff the two CSVs and record the wall-clock ratio
#                in BENCH_sweep.json
#   --fuzz       additionally run the long crash-consistency fuzzing
#                campaign (the -DLWSP_FUZZ_TESTS=ON tier: hundreds of
#                seeds; budget tens of minutes)
#   --faults     additionally run the seeded hardware fault-injection
#                campaign (every fault axis in rotation, hardened
#                recovery; deterministic, finishes in seconds)
#   --serve      additionally run the serve-workload crash campaign
#                (open-loop request streams crash-injected mid-stream,
#                with the structure oracle replaying the lowered request
#                tape; deterministic, finishes in seconds)
#   --storm      additionally run the failure-storm gate: the seeded
#                storm campaign (drain interrupts, recovery re-entries,
#                post-recovery crashes, composed with the hardware fault
#                axes) plus the exhaustive crash-at-every-cycle-of-
#                recovery matrix (all 5 schemes x pds/serve/builtin
#                sources; budget several minutes)
#
# CSV checking: quick-mode rows are a subset of the full reference
# tables, so each emitted row is compared against the same-named row in
# results/<bench>.csv when that reference exists. Any mismatch fails the
# script — the sweep engine's whole promise is byte-identical output at
# any job count.

set -euo pipefail

QUICK=""
JOBS=0
SPEEDUP=0
FUZZ=0
FAULTS=0
TRACE=0
SERVE=0
STORM=0
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build"
OUT_DIR=""

while [ $# -gt 0 ]; do
    case "$1" in
        --quick) QUICK="--quick" ;;
        --jobs) JOBS="$2"; shift ;;
        --build-dir) BUILD_DIR="$2"; shift ;;
        --out-dir) OUT_DIR="$2"; shift ;;
        --speedup) SPEEDUP=1 ;;
        --fuzz) FUZZ=1 ;;
        --faults) FAULTS=1 ;;
        --trace) TRACE=1 ;;
        --serve) SERVE=1 ;;
        --storm) STORM=1 ;;
        *) echo "usage: $0 [--quick] [--jobs N] [--build-dir DIR]" \
                "[--out-dir DIR] [--speedup] [--fuzz] [--faults]" \
                "[--trace] [--serve] [--storm]" >&2
           exit 2 ;;
    esac
    shift
done

BENCH_DIR="$BUILD_DIR/bench"
[ -n "$OUT_DIR" ] || OUT_DIR="$BUILD_DIR/bench_out"
mkdir -p "$OUT_DIR"
AGGREGATE="$OUT_DIR/BENCH_sweep.json"

[ -x "$BENCH_DIR/fig07_slowdown" ] || {
    echo "error: bench binaries not found under $BENCH_DIR" \
         "(build the repo first)" >&2
    exit 1
}

# Every sweep-engine bench. tab_vg2/tab_vg4 are analytic (no simulation)
# and micro_substrate is a google-benchmark binary; none take --jobs.
BENCHES="
fig07_slowdown
fig08_efficiency
fig09_psp_vs_wsp
fig10_cwsp
fig11_wpq_size
fig12_store_threshold
fig13_victim_policy
fig14_miss_rate
fig15_bandwidth
fig16_threads
fig17_cxl
fig18_wpq_hit
fig19_pds
fig20_recovery
fig21_service
fig22_availability
fig23_scaleout
tab02_conflict_rate
tab_vg3_region_stats
abl_commit_pipeline
"

check_csv() {
    # $1 = emitted csv, $2 = reference csv. Row-subset comparison keyed
    # on the first column; headers must match exactly.
    local got="$1" ref="$2"
    [ -f "$ref" ] || return 0
    if ! diff <(head -1 "$got") <(head -1 "$ref") >/dev/null; then
        echo "  HEADER MISMATCH vs $(basename "$ref")"
        return 1
    fi
    local bad=0
    while IFS= read -r line; do
        local key="${line%%,*}"
        local refline
        refline="$(grep "^$key," "$ref" || true)"
        [ -z "$refline" ] && continue  # row not in the reference subset
        if [ "$line" != "$refline" ]; then
            echo "  ROW MISMATCH [$key] vs $(basename "$ref")"
            echo "    ref: $refline"
            echo "    got: $line"
            bad=1
        fi
    done < <(tail -n +2 "$got")
    return $bad
}

FAILED=0
: > "$AGGREGATE.records"
for b in $BENCHES; do
    echo "== $b"
    csv="$OUT_DIR/$b.csv"
    json="$OUT_DIR/$b.sweep.json"
    if ! "$BENCH_DIR/$b" $QUICK --jobs "$JOBS" --csv "$csv" \
            --sweep-json "$json" > "$OUT_DIR/$b.txt"; then
        echo "  BENCH FAILED (exit $?)"
        FAILED=1
        continue
    fi
    cat "$json" >> "$AGGREGATE.records"
    if ! check_csv "$csv" "$ROOT/results/$b.csv"; then
        FAILED=1
    else
        echo "  csv ok ($(($(wc -l < "$csv") - 1)) rows)"
    fi
done

SPEEDUP_JSON=""
if [ "$SPEEDUP" = 1 ]; then
    NP="$(nproc)"
    echo "== speedup probe: fig07 --jobs 1 vs --jobs $NP"
    t0=$(date +%s.%N)
    "$BENCH_DIR/fig07_slowdown" $QUICK --jobs 1 \
        --csv "$OUT_DIR/fig07.serial.csv" \
        --sweep-json "$OUT_DIR/fig07.serial.sweep.json" > /dev/null
    t1=$(date +%s.%N)
    "$BENCH_DIR/fig07_slowdown" $QUICK --jobs "$NP" \
        --csv "$OUT_DIR/fig07.parallel.csv" \
        --sweep-json "$OUT_DIR/fig07.parallel.sweep.json" > /dev/null
    t2=$(date +%s.%N)
    if ! cmp -s "$OUT_DIR/fig07.serial.csv" "$OUT_DIR/fig07.parallel.csv"
    then
        echo "  PARALLEL CSV DIFFERS FROM SERIAL — determinism broken"
        FAILED=1
    else
        echo "  parallel csv byte-identical to serial"
    fi
    SERIAL=$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')
    PARALLEL=$(echo "$t2 $t1" | awk '{printf "%.3f", $1 - $2}')
    RATIO=$(echo "$SERIAL $PARALLEL" | awk '{printf "%.3f", $1 / $2}')
    echo "  serial ${SERIAL}s, parallel(${NP}j) ${PARALLEL}s," \
         "speedup ${RATIO}x"
    SPEEDUP_JSON=",\"speedup\":{\"bench\":\"fig07_slowdown\",\
\"serial_seconds\":$SERIAL,\"parallel_jobs\":$NP,\
\"parallel_seconds\":$PARALLEL,\"ratio\":$RATIO}"
fi

if [ "$TRACE" = 1 ]; then
    CLI="$BUILD_DIR/examples/lwsp_cli"
    LT="$BUILD_DIR/src/trace/lwsp_trace"
    echo "== trace smoke: lwsp_cli run rb lightwsp --trace-out"
    if [ ! -x "$CLI" ] || [ ! -x "$LT" ]; then
        echo "error: lwsp_cli / lwsp_trace not found under $BUILD_DIR" >&2
        FAILED=1
    elif "$CLI" run rb lightwsp \
            --trace-out "$OUT_DIR/trace_smoke.trc" \
            --stats-json "$OUT_DIR/trace_smoke.stats.json" \
            > "$OUT_DIR/trace_smoke.txt" \
        && "$LT" info "$OUT_DIR/trace_smoke.trc" \
            >> "$OUT_DIR/trace_smoke.txt" \
        && "$LT" convert "$OUT_DIR/trace_smoke.trc" \
            "$OUT_DIR/trace_smoke.perfetto.json" \
            >> "$OUT_DIR/trace_smoke.txt" \
        && grep -q '"traceEvents"' "$OUT_DIR/trace_smoke.perfetto.json"
    then
        echo "  trace ok:" \
             "$(grep '^events:' "$OUT_DIR/trace_smoke.txt" \
                | awk '{print $2}') events," \
             "perfetto json $OUT_DIR/trace_smoke.perfetto.json"
    else
        echo "  TRACE SMOKE FAILED (log: $OUT_DIR/trace_smoke.txt)"
        FAILED=1
    fi
fi

if [ "$FAULTS" = 1 ]; then
    FC="$BUILD_DIR/src/fuzz/fuzz_crash"
    [ -x "$FC" ] || FC="$(find "$BUILD_DIR" -name fuzz_crash -type f \
                          -perm -u+x | head -1)"
    if [ -z "$FC" ] || [ ! -x "$FC" ]; then
        echo "error: fuzz_crash binary not found under $BUILD_DIR" >&2
        FAILED=1
    else
        echo "== fault-injection campaign (6 seeds x all axes)"
        if "$FC" --seeds 6 --base-seed 1 --crash-points 6 --faults \
                | tee "$OUT_DIR/fault_campaign.txt" | tail -4; then
            echo "  fault campaign clean (no silent corruption)"
        else
            echo "  FAULT CAMPAIGN FAILED (reproducer spec above," \
                 "full log: $OUT_DIR/fault_campaign.txt)"
            FAILED=1
        fi
    fi
fi

if [ "$SERVE" = 1 ]; then
    FC="$BUILD_DIR/src/fuzz/fuzz_crash"
    [ -x "$FC" ] || FC="$(find "$BUILD_DIR" -name fuzz_crash -type f \
                          -perm -u+x | head -1)"
    if [ -z "$FC" ] || [ ! -x "$FC" ]; then
        echo "error: fuzz_crash binary not found under $BUILD_DIR" >&2
        FAILED=1
    else
        echo "== serve crash campaign (12 seeds, both profiles)"
        if "$FC" --seeds 12 --base-seed 1 --mode serve --crash-points 8 \
                | tee "$OUT_DIR/serve_campaign.txt" | tail -3; then
            echo "  serve campaign clean (no silent corruption)"
        else
            echo "  SERVE CAMPAIGN FAILED (reproducer spec above," \
                 "full log: $OUT_DIR/serve_campaign.txt)"
            FAILED=1
        fi
    fi
fi

if [ "$STORM" = 1 ]; then
    FC="$BUILD_DIR/src/fuzz/fuzz_crash"
    [ -x "$FC" ] || FC="$(find "$BUILD_DIR" -name fuzz_crash -type f \
                          -perm -u+x | head -1)"
    if [ -z "$FC" ] || [ ! -x "$FC" ]; then
        echo "error: fuzz_crash binary not found under $BUILD_DIR" >&2
        FAILED=1
    else
        echo "== storm campaign (25 seeds, storms composed with faults)"
        if "$FC" --seeds 25 --base-seed 1 --mode storm --crash-points 8 \
                --faults | tee "$OUT_DIR/storm_campaign.txt" | tail -4
        then
            echo "  storm campaign clean (no silent corruption)"
        else
            echo "  STORM CAMPAIGN FAILED (reproducer spec above," \
                 "full log: $OUT_DIR/storm_campaign.txt)"
            FAILED=1
        fi
        echo "== recovery matrix (crash at every cycle of recovery)"
        if "$FC" --recovery-matrix \
                | tee "$OUT_DIR/recovery_matrix.txt" | tail -3; then
            echo "  recovery matrix clean (0 hangs, 0 corruption)"
        else
            echo "  RECOVERY MATRIX FAILED (full log:" \
                 "$OUT_DIR/recovery_matrix.txt)"
            FAILED=1
        fi
    fi
fi

if [ "$FUZZ" = 1 ]; then
    FC="$BUILD_DIR/src/fuzz/fuzz_crash"
    [ -x "$FC" ] || FC="$(find "$BUILD_DIR" -name fuzz_crash -type f \
                          -perm -u+x | head -1)"
    if [ -z "$FC" ] || [ ! -x "$FC" ]; then
        echo "error: fuzz_crash binary not found under $BUILD_DIR" >&2
        FAILED=1
    else
        echo "== long fuzz campaign (300 seeds, mixed sources)"
        if "$FC" --seeds 300 --base-seed 1000 --mode mixed \
                --crash-points 16 | tee "$OUT_DIR/fuzz_long.txt" \
                | tail -3; then
            echo "  fuzz campaign clean"
        else
            echo "  FUZZ CAMPAIGN FAILED (reproducer spec above," \
                 "full log: $OUT_DIR/fuzz_long.txt)"
            FAILED=1
        fi
    fi
fi

{
    printf '{"benches":['
    paste -sd, "$AGGREGATE.records"
    printf ']%s}\n' "$SPEEDUP_JSON"
} | tr -d '\n' > "$AGGREGATE"
echo >> "$AGGREGATE"
rm -f "$AGGREGATE.records"
echo "aggregate telemetry: $AGGREGATE"

exit $FAILED
