file(REMOVE_RECURSE
  "CMakeFiles/tab02_conflict_rate.dir/tab02_conflict_rate.cc.o"
  "CMakeFiles/tab02_conflict_rate.dir/tab02_conflict_rate.cc.o.d"
  "tab02_conflict_rate"
  "tab02_conflict_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_conflict_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
