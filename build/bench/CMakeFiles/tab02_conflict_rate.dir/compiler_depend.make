# Empty compiler generated dependencies file for tab02_conflict_rate.
# This may be replaced when dependencies are built.
