# Empty dependencies file for fig18_wpq_hit.
# This may be replaced when dependencies are built.
