file(REMOVE_RECURSE
  "CMakeFiles/fig18_wpq_hit.dir/fig18_wpq_hit.cc.o"
  "CMakeFiles/fig18_wpq_hit.dir/fig18_wpq_hit.cc.o.d"
  "fig18_wpq_hit"
  "fig18_wpq_hit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_wpq_hit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
