file(REMOVE_RECURSE
  "CMakeFiles/fig07_slowdown.dir/fig07_slowdown.cc.o"
  "CMakeFiles/fig07_slowdown.dir/fig07_slowdown.cc.o.d"
  "fig07_slowdown"
  "fig07_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
