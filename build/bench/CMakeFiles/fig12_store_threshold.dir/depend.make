# Empty dependencies file for fig12_store_threshold.
# This may be replaced when dependencies are built.
