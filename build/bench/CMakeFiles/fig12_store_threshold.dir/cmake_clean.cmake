file(REMOVE_RECURSE
  "CMakeFiles/fig12_store_threshold.dir/fig12_store_threshold.cc.o"
  "CMakeFiles/fig12_store_threshold.dir/fig12_store_threshold.cc.o.d"
  "fig12_store_threshold"
  "fig12_store_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_store_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
