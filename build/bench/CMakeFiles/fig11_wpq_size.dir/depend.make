# Empty dependencies file for fig11_wpq_size.
# This may be replaced when dependencies are built.
