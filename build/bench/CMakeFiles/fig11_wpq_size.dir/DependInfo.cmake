
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_wpq_size.cc" "bench/CMakeFiles/fig11_wpq_size.dir/fig11_wpq_size.cc.o" "gcc" "bench/CMakeFiles/fig11_wpq_size.dir/fig11_wpq_size.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/lwsp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lwsp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lwsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lwsp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/lwsp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lwsp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/lwsp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lwsp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lwsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
