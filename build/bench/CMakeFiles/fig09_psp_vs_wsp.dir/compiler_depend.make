# Empty compiler generated dependencies file for fig09_psp_vs_wsp.
# This may be replaced when dependencies are built.
