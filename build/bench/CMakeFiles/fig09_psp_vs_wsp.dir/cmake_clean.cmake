file(REMOVE_RECURSE
  "CMakeFiles/fig09_psp_vs_wsp.dir/fig09_psp_vs_wsp.cc.o"
  "CMakeFiles/fig09_psp_vs_wsp.dir/fig09_psp_vs_wsp.cc.o.d"
  "fig09_psp_vs_wsp"
  "fig09_psp_vs_wsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_psp_vs_wsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
