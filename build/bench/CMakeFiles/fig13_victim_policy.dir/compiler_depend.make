# Empty compiler generated dependencies file for fig13_victim_policy.
# This may be replaced when dependencies are built.
