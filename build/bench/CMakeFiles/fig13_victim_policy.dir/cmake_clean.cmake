file(REMOVE_RECURSE
  "CMakeFiles/fig13_victim_policy.dir/fig13_victim_policy.cc.o"
  "CMakeFiles/fig13_victim_policy.dir/fig13_victim_policy.cc.o.d"
  "fig13_victim_policy"
  "fig13_victim_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_victim_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
