# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tab_vg2_cam_latency.
