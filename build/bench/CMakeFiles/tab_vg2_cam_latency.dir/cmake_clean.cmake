file(REMOVE_RECURSE
  "CMakeFiles/tab_vg2_cam_latency.dir/tab_vg2_cam_latency.cc.o"
  "CMakeFiles/tab_vg2_cam_latency.dir/tab_vg2_cam_latency.cc.o.d"
  "tab_vg2_cam_latency"
  "tab_vg2_cam_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_vg2_cam_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
