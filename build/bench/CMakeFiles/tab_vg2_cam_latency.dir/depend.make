# Empty dependencies file for tab_vg2_cam_latency.
# This may be replaced when dependencies are built.
