file(REMOVE_RECURSE
  "CMakeFiles/fig17_cxl.dir/fig17_cxl.cc.o"
  "CMakeFiles/fig17_cxl.dir/fig17_cxl.cc.o.d"
  "fig17_cxl"
  "fig17_cxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
