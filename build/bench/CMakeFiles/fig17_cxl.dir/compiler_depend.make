# Empty compiler generated dependencies file for fig17_cxl.
# This may be replaced when dependencies are built.
