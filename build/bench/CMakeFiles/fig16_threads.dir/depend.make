# Empty dependencies file for fig16_threads.
# This may be replaced when dependencies are built.
