file(REMOVE_RECURSE
  "CMakeFiles/fig16_threads.dir/fig16_threads.cc.o"
  "CMakeFiles/fig16_threads.dir/fig16_threads.cc.o.d"
  "fig16_threads"
  "fig16_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
