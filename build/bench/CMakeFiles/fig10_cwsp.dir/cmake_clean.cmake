file(REMOVE_RECURSE
  "CMakeFiles/fig10_cwsp.dir/fig10_cwsp.cc.o"
  "CMakeFiles/fig10_cwsp.dir/fig10_cwsp.cc.o.d"
  "fig10_cwsp"
  "fig10_cwsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cwsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
