# Empty compiler generated dependencies file for fig10_cwsp.
# This may be replaced when dependencies are built.
