# Empty dependencies file for abl_commit_pipeline.
# This may be replaced when dependencies are built.
