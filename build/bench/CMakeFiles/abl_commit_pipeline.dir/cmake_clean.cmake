file(REMOVE_RECURSE
  "CMakeFiles/abl_commit_pipeline.dir/abl_commit_pipeline.cc.o"
  "CMakeFiles/abl_commit_pipeline.dir/abl_commit_pipeline.cc.o.d"
  "abl_commit_pipeline"
  "abl_commit_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_commit_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
