file(REMOVE_RECURSE
  "CMakeFiles/fig15_bandwidth.dir/fig15_bandwidth.cc.o"
  "CMakeFiles/fig15_bandwidth.dir/fig15_bandwidth.cc.o.d"
  "fig15_bandwidth"
  "fig15_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
