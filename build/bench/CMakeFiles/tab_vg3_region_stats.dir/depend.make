# Empty dependencies file for tab_vg3_region_stats.
# This may be replaced when dependencies are built.
