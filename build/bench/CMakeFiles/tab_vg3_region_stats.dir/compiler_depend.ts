# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tab_vg3_region_stats.
