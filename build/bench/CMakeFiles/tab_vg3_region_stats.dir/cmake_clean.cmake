file(REMOVE_RECURSE
  "CMakeFiles/tab_vg3_region_stats.dir/tab_vg3_region_stats.cc.o"
  "CMakeFiles/tab_vg3_region_stats.dir/tab_vg3_region_stats.cc.o.d"
  "tab_vg3_region_stats"
  "tab_vg3_region_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_vg3_region_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
