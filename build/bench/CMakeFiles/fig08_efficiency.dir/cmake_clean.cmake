file(REMOVE_RECURSE
  "CMakeFiles/fig08_efficiency.dir/fig08_efficiency.cc.o"
  "CMakeFiles/fig08_efficiency.dir/fig08_efficiency.cc.o.d"
  "fig08_efficiency"
  "fig08_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
