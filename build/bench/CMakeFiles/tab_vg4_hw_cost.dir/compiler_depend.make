# Empty compiler generated dependencies file for tab_vg4_hw_cost.
# This may be replaced when dependencies are built.
