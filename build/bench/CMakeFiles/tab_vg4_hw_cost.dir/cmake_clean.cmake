file(REMOVE_RECURSE
  "CMakeFiles/tab_vg4_hw_cost.dir/tab_vg4_hw_cost.cc.o"
  "CMakeFiles/tab_vg4_hw_cost.dir/tab_vg4_hw_cost.cc.o.d"
  "tab_vg4_hw_cost"
  "tab_vg4_hw_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_vg4_hw_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
