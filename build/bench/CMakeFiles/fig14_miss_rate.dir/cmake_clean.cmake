file(REMOVE_RECURSE
  "CMakeFiles/fig14_miss_rate.dir/fig14_miss_rate.cc.o"
  "CMakeFiles/fig14_miss_rate.dir/fig14_miss_rate.cc.o.d"
  "fig14_miss_rate"
  "fig14_miss_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_miss_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
