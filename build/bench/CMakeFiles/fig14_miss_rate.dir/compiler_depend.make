# Empty compiler generated dependencies file for fig14_miss_rate.
# This may be replaced when dependencies are built.
