file(REMOVE_RECURSE
  "CMakeFiles/multithread_ordering.dir/multithread_ordering.cpp.o"
  "CMakeFiles/multithread_ordering.dir/multithread_ordering.cpp.o.d"
  "multithread_ordering"
  "multithread_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multithread_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
