# Empty dependencies file for multithread_ordering.
# This may be replaced when dependencies are built.
