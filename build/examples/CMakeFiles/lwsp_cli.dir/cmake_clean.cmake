file(REMOVE_RECURSE
  "CMakeFiles/lwsp_cli.dir/lwsp_cli.cpp.o"
  "CMakeFiles/lwsp_cli.dir/lwsp_cli.cpp.o.d"
  "lwsp_cli"
  "lwsp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwsp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
