# Empty dependencies file for lwsp_cli.
# This may be replaced when dependencies are built.
