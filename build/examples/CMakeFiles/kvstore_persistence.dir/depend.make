# Empty dependencies file for kvstore_persistence.
# This may be replaced when dependencies are built.
