file(REMOVE_RECURSE
  "CMakeFiles/lwsp_ir.dir/cfg.cc.o"
  "CMakeFiles/lwsp_ir.dir/cfg.cc.o.d"
  "CMakeFiles/lwsp_ir.dir/opcode.cc.o"
  "CMakeFiles/lwsp_ir.dir/opcode.cc.o.d"
  "CMakeFiles/lwsp_ir.dir/text_io.cc.o"
  "CMakeFiles/lwsp_ir.dir/text_io.cc.o.d"
  "CMakeFiles/lwsp_ir.dir/verifier.cc.o"
  "CMakeFiles/lwsp_ir.dir/verifier.cc.o.d"
  "liblwsp_ir.a"
  "liblwsp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwsp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
