# Empty compiler generated dependencies file for lwsp_ir.
# This may be replaced when dependencies are built.
