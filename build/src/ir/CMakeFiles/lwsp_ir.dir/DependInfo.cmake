
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/cfg.cc" "src/ir/CMakeFiles/lwsp_ir.dir/cfg.cc.o" "gcc" "src/ir/CMakeFiles/lwsp_ir.dir/cfg.cc.o.d"
  "/root/repo/src/ir/opcode.cc" "src/ir/CMakeFiles/lwsp_ir.dir/opcode.cc.o" "gcc" "src/ir/CMakeFiles/lwsp_ir.dir/opcode.cc.o.d"
  "/root/repo/src/ir/text_io.cc" "src/ir/CMakeFiles/lwsp_ir.dir/text_io.cc.o" "gcc" "src/ir/CMakeFiles/lwsp_ir.dir/text_io.cc.o.d"
  "/root/repo/src/ir/verifier.cc" "src/ir/CMakeFiles/lwsp_ir.dir/verifier.cc.o" "gcc" "src/ir/CMakeFiles/lwsp_ir.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lwsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
