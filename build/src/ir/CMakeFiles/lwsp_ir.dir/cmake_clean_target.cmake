file(REMOVE_RECURSE
  "liblwsp_ir.a"
)
