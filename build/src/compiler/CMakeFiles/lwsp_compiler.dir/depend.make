# Empty dependencies file for lwsp_compiler.
# This may be replaced when dependencies are built.
