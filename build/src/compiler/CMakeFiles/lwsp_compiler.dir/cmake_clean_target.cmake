file(REMOVE_RECURSE
  "liblwsp_compiler.a"
)
