file(REMOVE_RECURSE
  "CMakeFiles/lwsp_compiler.dir/compiler.cc.o"
  "CMakeFiles/lwsp_compiler.dir/compiler.cc.o.d"
  "CMakeFiles/lwsp_compiler.dir/constprop.cc.o"
  "CMakeFiles/lwsp_compiler.dir/constprop.cc.o.d"
  "CMakeFiles/lwsp_compiler.dir/liveness.cc.o"
  "CMakeFiles/lwsp_compiler.dir/liveness.cc.o.d"
  "CMakeFiles/lwsp_compiler.dir/passes.cc.o"
  "CMakeFiles/lwsp_compiler.dir/passes.cc.o.d"
  "liblwsp_compiler.a"
  "liblwsp_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwsp_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
