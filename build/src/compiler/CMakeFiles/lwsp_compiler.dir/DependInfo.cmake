
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/compiler.cc" "src/compiler/CMakeFiles/lwsp_compiler.dir/compiler.cc.o" "gcc" "src/compiler/CMakeFiles/lwsp_compiler.dir/compiler.cc.o.d"
  "/root/repo/src/compiler/constprop.cc" "src/compiler/CMakeFiles/lwsp_compiler.dir/constprop.cc.o" "gcc" "src/compiler/CMakeFiles/lwsp_compiler.dir/constprop.cc.o.d"
  "/root/repo/src/compiler/liveness.cc" "src/compiler/CMakeFiles/lwsp_compiler.dir/liveness.cc.o" "gcc" "src/compiler/CMakeFiles/lwsp_compiler.dir/liveness.cc.o.d"
  "/root/repo/src/compiler/passes.cc" "src/compiler/CMakeFiles/lwsp_compiler.dir/passes.cc.o" "gcc" "src/compiler/CMakeFiles/lwsp_compiler.dir/passes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/lwsp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lwsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
