file(REMOVE_RECURSE
  "liblwsp_baselines.a"
)
