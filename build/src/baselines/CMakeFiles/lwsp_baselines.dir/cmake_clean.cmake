file(REMOVE_RECURSE
  "CMakeFiles/lwsp_baselines.dir/baselines.cc.o"
  "CMakeFiles/lwsp_baselines.dir/baselines.cc.o.d"
  "liblwsp_baselines.a"
  "liblwsp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwsp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
