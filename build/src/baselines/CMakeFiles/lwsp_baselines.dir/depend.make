# Empty dependencies file for lwsp_baselines.
# This may be replaced when dependencies are built.
