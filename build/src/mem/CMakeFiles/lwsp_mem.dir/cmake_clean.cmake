file(REMOVE_RECURSE
  "CMakeFiles/lwsp_mem.dir/cache.cc.o"
  "CMakeFiles/lwsp_mem.dir/cache.cc.o.d"
  "CMakeFiles/lwsp_mem.dir/mem_controller.cc.o"
  "CMakeFiles/lwsp_mem.dir/mem_controller.cc.o.d"
  "liblwsp_mem.a"
  "liblwsp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwsp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
