file(REMOVE_RECURSE
  "liblwsp_mem.a"
)
