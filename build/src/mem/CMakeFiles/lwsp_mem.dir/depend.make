# Empty dependencies file for lwsp_mem.
# This may be replaced when dependencies are built.
