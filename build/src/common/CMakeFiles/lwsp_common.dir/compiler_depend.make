# Empty compiler generated dependencies file for lwsp_common.
# This may be replaced when dependencies are built.
