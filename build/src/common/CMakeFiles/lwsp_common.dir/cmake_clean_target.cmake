file(REMOVE_RECURSE
  "liblwsp_common.a"
)
