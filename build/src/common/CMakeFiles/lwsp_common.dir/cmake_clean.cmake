file(REMOVE_RECURSE
  "CMakeFiles/lwsp_common.dir/logging.cc.o"
  "CMakeFiles/lwsp_common.dir/logging.cc.o.d"
  "CMakeFiles/lwsp_common.dir/stats.cc.o"
  "CMakeFiles/lwsp_common.dir/stats.cc.o.d"
  "liblwsp_common.a"
  "liblwsp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwsp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
