file(REMOVE_RECURSE
  "liblwsp_workloads.a"
)
