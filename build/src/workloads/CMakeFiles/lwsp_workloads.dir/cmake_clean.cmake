file(REMOVE_RECURSE
  "CMakeFiles/lwsp_workloads.dir/generator.cc.o"
  "CMakeFiles/lwsp_workloads.dir/generator.cc.o.d"
  "CMakeFiles/lwsp_workloads.dir/profiles.cc.o"
  "CMakeFiles/lwsp_workloads.dir/profiles.cc.o.d"
  "liblwsp_workloads.a"
  "liblwsp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwsp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
