# Empty compiler generated dependencies file for lwsp_workloads.
# This may be replaced when dependencies are built.
