file(REMOVE_RECURSE
  "CMakeFiles/lwsp_harness.dir/report.cc.o"
  "CMakeFiles/lwsp_harness.dir/report.cc.o.d"
  "CMakeFiles/lwsp_harness.dir/runner.cc.o"
  "CMakeFiles/lwsp_harness.dir/runner.cc.o.d"
  "liblwsp_harness.a"
  "liblwsp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwsp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
