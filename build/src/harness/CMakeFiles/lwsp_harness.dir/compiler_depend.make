# Empty compiler generated dependencies file for lwsp_harness.
# This may be replaced when dependencies are built.
