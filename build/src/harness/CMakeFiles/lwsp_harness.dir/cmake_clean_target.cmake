file(REMOVE_RECURSE
  "liblwsp_harness.a"
)
