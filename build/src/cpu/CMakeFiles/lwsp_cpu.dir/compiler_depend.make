# Empty compiler generated dependencies file for lwsp_cpu.
# This may be replaced when dependencies are built.
