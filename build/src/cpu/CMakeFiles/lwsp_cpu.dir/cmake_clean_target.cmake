file(REMOVE_RECURSE
  "liblwsp_cpu.a"
)
