file(REMOVE_RECURSE
  "CMakeFiles/lwsp_cpu.dir/core.cc.o"
  "CMakeFiles/lwsp_cpu.dir/core.cc.o.d"
  "CMakeFiles/lwsp_cpu.dir/thread_context.cc.o"
  "CMakeFiles/lwsp_cpu.dir/thread_context.cc.o.d"
  "liblwsp_cpu.a"
  "liblwsp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwsp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
