file(REMOVE_RECURSE
  "CMakeFiles/lwsp_core.dir/system.cc.o"
  "CMakeFiles/lwsp_core.dir/system.cc.o.d"
  "liblwsp_core.a"
  "liblwsp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwsp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
