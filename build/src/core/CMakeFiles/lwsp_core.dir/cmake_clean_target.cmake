file(REMOVE_RECURSE
  "liblwsp_core.a"
)
