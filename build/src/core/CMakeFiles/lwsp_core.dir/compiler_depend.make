# Empty compiler generated dependencies file for lwsp_core.
# This may be replaced when dependencies are built.
