# Empty compiler generated dependencies file for test_mc_protocol.
# This may be replaced when dependencies are built.
