file(REMOVE_RECURSE
  "CMakeFiles/test_mc_protocol.dir/test_mc_protocol.cc.o"
  "CMakeFiles/test_mc_protocol.dir/test_mc_protocol.cc.o.d"
  "test_mc_protocol"
  "test_mc_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
