file(REMOVE_RECURSE
  "CMakeFiles/test_crash_stress.dir/test_crash_stress.cc.o"
  "CMakeFiles/test_crash_stress.dir/test_crash_stress.cc.o.d"
  "test_crash_stress"
  "test_crash_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
