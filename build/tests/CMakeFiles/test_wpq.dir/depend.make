# Empty dependencies file for test_wpq.
# This may be replaced when dependencies are built.
