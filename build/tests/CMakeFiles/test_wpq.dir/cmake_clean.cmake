file(REMOVE_RECURSE
  "CMakeFiles/test_wpq.dir/test_wpq.cc.o"
  "CMakeFiles/test_wpq.dir/test_wpq.cc.o.d"
  "test_wpq"
  "test_wpq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
