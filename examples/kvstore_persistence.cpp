/**
 * @file
 * Transparent persistence for an unmodified "application": a WHISPER-
 * style key-value update workload runs with NO persistence annotations —
 * no transactions, no pmalloc, no clwb/sfence — yet survives a power
 * failure because the whole system is persistent.
 *
 * The example crash-sweeps ten failure points and verifies that after
 * each recovery the store's contents equal a crash-free run — and prints
 * the run-time overhead LightWSP paid for that guarantee.
 */

#include <cstdio>

#include "compiler/compiler.hh"
#include "core/system.hh"
#include "workloads/generator.hh"

using namespace lwsp;

int
main()
{
    setLogQuiet(true);

    // The "rb" profile models WHISPER's red-black-tree workload: 8
    // threads doing random reads/updates with lock-protected shared
    // transactions.
    const auto &profile = workloads::profileByName("rb");
    auto w = workloads::generate(profile);
    auto lock_addrs = w.lockAddrs;

    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(w.module));

    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.applySchemeDefaults();

    std::printf("running 8-thread kv-update workload under LightWSP...\n");
    core::System golden(cfg, prog, profile.threads);
    auto gr = golden.run();
    std::printf("golden: %llu cycles, %llu instructions, "
                "%llu WPQ entries persisted\n",
                static_cast<unsigned long long>(gr.cycles),
                static_cast<unsigned long long>(gr.instsRetired),
                static_cast<unsigned long long>(gr.wpqFlushedEntries));

    // Overhead vs the non-persistent baseline (original binary).
    auto w2 = workloads::generate(profile);
    auto base_prog = compiler::makeUncompiled(std::move(w2.module));
    core::SystemConfig base_cfg;
    base_cfg.scheme = core::Scheme::Baseline;
    base_cfg.applySchemeDefaults();
    core::System base(base_cfg, base_prog, profile.threads);
    auto br = base.run();
    std::printf("persistence overhead vs baseline: %.1f%%\n",
                100.0 * (static_cast<double>(gr.cycles) /
                             static_cast<double>(br.cycles) -
                         1.0));

    // Crash sweep.
    int ok = 0, total = 10;
    for (int i = 1; i <= total; ++i) {
        Tick fail_at = gr.cycles * i / (total + 1);
        core::System victim(cfg, prog, profile.threads);
        auto vr = victim.runWithPowerFailure(fail_at);
        if (vr.completed) {
            ++ok;
            continue;
        }
        auto rec = core::System::recover(cfg, prog, profile.threads,
                                         victim.pmImage(), lock_addrs);
        auto rr = rec->run();
        Addr lo = workloads::Workload::heapBase;
        Addr hi = lo + static_cast<Addr>(profile.threads) *
                           profile.footprintBytes;
        bool heap_ok =
            rr.completed &&
            rec->pmImage().diffInRange(golden.pmImage(), lo, hi).empty();
        Addr sh = workloads::Workload::sharedBase;
        bool shared_ok =
            rec->pmImage().diffInRange(golden.pmImage(), sh, sh + 4096)
                .empty();
        if (heap_ok && shared_ok)
            ++ok;
        std::printf("  crash @ %3d%%: %s\n", 100 * i / (total + 1),
                    heap_ok && shared_ok ? "recovered, state matches"
                                         : "STATE MISMATCH");
    }
    std::printf("%d/%d crash points recovered to the golden state\n", ok,
                total);
    return ok == total ? 0 : 1;
}
