/**
 * @file
 * A guided tour of the recovery machinery (paper §IV-F): run a
 * multi-threaded workload, cut power mid-flight, show what the battery-
 * backed drain protocol commits and discards, where each thread's
 * recovery point lands, and survive a second failure during recovery.
 */

#include <cstdio>

#include "compiler/compiler.hh"
#include "core/system.hh"
#include "workloads/generator.hh"

using namespace lwsp;

int
main()
{
    setLogQuiet(true);

    workloads::WorkloadProfile p;
    p.name = "demo";
    p.suite = "DEMO";
    p.threads = 4;
    p.footprintBytes = 64 * 1024;
    p.hotBytes = 16 * 1024;
    p.locality = 0.6;
    p.branchMissRate = 0.0;
    workloads::PhaseSpec ph;
    ph.pattern = workloads::PhaseSpec::Pattern::Random;
    ph.loads = 2;
    ph.stores = 2;
    ph.alus = 6;
    ph.trip = 128;
    ph.reps = 4;
    ph.lockedRmw = true;
    p.phases.push_back(ph);

    auto w = workloads::generate(p);
    auto lock_addrs = w.lockAddrs;
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(w.module));
    std::printf("compiled: %zu boundary sites, %zu checkpoint stores\n",
                prog.stats.boundaries, prog.stats.checkpointStores);

    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 4;
    cfg.applySchemeDefaults();

    core::System golden(cfg, prog, 4);
    auto gr = golden.run();
    std::printf("golden run: %llu cycles\n\n",
                static_cast<unsigned long long>(gr.cycles));

    // ---- First power failure ------------------------------------------
    core::System victim(cfg, prog, 4);
    victim.runWithPowerFailure(gr.cycles / 2);
    std::printf("power failure at cycle %llu\n",
                static_cast<unsigned long long>(gr.cycles / 2));
    for (McId m = 0; m < 2; ++m) {
        std::printf("  MC%u: flush-ID %llu, %llu entries persisted, "
                    "%llu fallback flushes\n",
                    m,
                    static_cast<unsigned long long>(
                        victim.mcAt(m).flushId()),
                    static_cast<unsigned long long>(
                        victim.mcAt(m).flushedEntries()),
                    static_cast<unsigned long long>(
                        victim.mcAt(m).fallbackFlushes()));
    }
    for (ThreadId t = 0; t < 4; ++t) {
        std::uint64_t site =
            victim.pmImage().read(prog.layout.pcSlot(t));
        if (site == core::noSiteSentinel) {
            std::printf("  thread %u: no boundary persisted yet -> "
                        "restarts from scratch\n", t);
        } else if (site == cpu::haltSite) {
            std::printf("  thread %u: already halted\n", t);
        } else {
            const auto &s = prog.site(static_cast<std::uint32_t>(site));
            std::printf("  thread %u: resumes after boundary %llu "
                        "(%s in @%s)\n",
                        t, static_cast<unsigned long long>(site),
                        compiler::boundaryKindName(s.kind),
                        prog.module->function(s.func).name().c_str());
        }
    }

    // ---- Recovery, with a second failure in the middle of it -----------
    auto rec1 = core::System::recover(cfg, prog, 4, victim.pmImage(),
                                      lock_addrs);
    auto r1 = rec1->runWithPowerFailure(gr.cycles / 4);
    std::unique_ptr<core::System> final_sys;
    if (!r1.completed) {
        std::printf("\nsecond power failure during recovery — "
                    "recovering again\n");
        final_sys = core::System::recover(cfg, prog, 4, rec1->pmImage(),
                                          lock_addrs);
        final_sys->run();
    } else {
        final_sys = std::move(rec1);
    }

    Addr lo = workloads::Workload::heapBase;
    Addr hi = lo + 4 * p.footprintBytes;
    bool ok =
        final_sys->pmImage().diffInRange(golden.pmImage(), lo, hi)
            .empty() &&
        final_sys->pmImage()
            .diffInRange(golden.pmImage(), workloads::Workload::sharedBase,
                         workloads::Workload::sharedBase + 4096)
            .empty();
    std::printf("\nfinal persistent state %s the crash-free run\n",
                ok ? "MATCHES" : "DIFFERS FROM");
    return ok ? 0 : 1;
}
