/**
 * @file
 * Command-line front end to the library — the tool a downstream user
 * reaches for first:
 *
 *   lwsp_cli list                       # the paper-app workload roster
 *   lwsp_cli compile <app|file.lir>     # dump compiled LightIR + stats
 *   lwsp_cli verify <app|file.lir>      # static WSP-invariant check
 *   lwsp_cli run <app> [scheme]         # simulate and print run stats
 *   lwsp_cli crash <app> <fraction>     # crash + recover + verify
 *
 * `run` also accepts `--trace-out FILE` (binary event trace; inspect
 * with lwsp_trace, convert to Perfetto JSON with `lwsp_trace convert`)
 * and `--stats-json FILE` (full component stat registry as JSON).
 *
 * `run` and `crash` accept `--engine event|cycle` to pick the
 * simulator core (discrete-event wakeup heap vs the legacy
 * tick-everyone loop); printed stats are bit-identical either way.
 *
 * `run` and `crash` accept `--faults SPEC` (fault/fault.hh k=v,k=v
 * string, e.g. `seed=7,loss=100` or `ckpt=1`): the machine runs with
 * the hardware fault layer armed and hardened checkpoints. `crash`
 * then recovers through System::recoverChecked and prints the
 * recovery verdict and the crash drain's fault report; exit status 3
 * means the injected fault was detected but unrecoverable.
 *
 * `crash` also accepts `--storm SCHED` (fault/storm.hh '+'-joined
 * schedule, e.g. `d1+r+x1500`): instead of a single clean failure the
 * machine is put through the whole failure storm — drains interrupted
 * mid-quiescence, recovery preambles killed and re-entered, recovered
 * executions crashed again — with each power-on's verdict checked for
 * idempotence. `--stats-json FILE` dumps the surviving system's stat
 * registry (including the system.recoveryOutcome /
 * system.failuresSurvived lineage counters) after the post-recovery
 * run.
 *
 * Schemes: baseline psp-ideal lightwsp naive-sfence ppa capri cwsp.
 * `<file.lir>` is the textual LightIR format (see ir/text_io.hh).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/wsp_checker.hh"
#include "compiler/compiler.hh"
#include "core/system.hh"
#include "fault/storm.hh"
#include "harness/runner.hh"
#include "ir/text_io.hh"
#include "trace/export.hh"
#include "workloads/generator.hh"

using namespace lwsp;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: lwsp_cli list\n"
                 "       lwsp_cli compile <app|file.lir>\n"
                 "       lwsp_cli verify <app|file.lir>\n"
                 "       lwsp_cli run <app> [scheme] [--trace-out FILE]"
                 " [--stats-json FILE] [--faults SPEC]"
                 " [--engine event|cycle]\n"
                 "       lwsp_cli crash <app> <fraction 0..1>"
                 " [--faults SPEC] [--engine event|cycle]\n"
                 "                      [--storm SCHED]"
                 " [--stats-json FILE]\n");
    return 2;
}

/** Parse a --faults spec into @p cfg (arming the layer), or die. */
void
applyFaultSpec(core::SystemConfig &cfg, const std::string &spec)
{
    std::string err;
    if (!fault::FaultConfig::parse(spec, cfg.faults, err))
        fatal("bad --faults spec: ", err);
    cfg.faults.enabled = true;
    cfg.faults.hardenedCkpt = true;
}

SimEngine
engineFromName(const std::string &name)
{
    if (name == "event")
        return SimEngine::Event;
    if (name == "cycle")
        return SimEngine::Cycle;
    fatal("unknown engine '", name, "' (want event|cycle)");
}

core::Scheme
schemeFromName(const std::string &name)
{
    for (core::Scheme s :
         {core::Scheme::Baseline, core::Scheme::PspIdeal,
          core::Scheme::LightWsp, core::Scheme::NaiveSfence,
          core::Scheme::Ppa, core::Scheme::Capri, core::Scheme::Cwsp}) {
        if (name == core::schemeName(s))
            return s;
    }
    fatal("unknown scheme '", name, "'");
}

std::unique_ptr<ir::Module>
loadModule(const std::string &what)
{
    if (what.size() > 4 &&
        what.substr(what.size() - 4) == ".lir") {
        std::ifstream in(what);
        if (!in)
            fatal("cannot open ", what);
        std::stringstream ss;
        ss << in.rdbuf();
        return ir::parseModule(ss.str());
    }
    return workloads::generateByName(what).module;
}

int
cmdList()
{
    std::printf("%-12s %-9s %8s %12s %10s\n", "app", "suite", "threads",
                "footprint", "pattern");
    for (const auto &p : workloads::paperProfiles()) {
        const char *pat =
            p.phases[0].pattern == workloads::PhaseSpec::Pattern::Random
                ? "random"
            : p.phases[0].pattern ==
                      workloads::PhaseSpec::Pattern::Pointer
                ? "pointer"
                : "sequential";
        std::printf("%-12s %-9s %8u %10zuKB %10s\n", p.name.c_str(),
                    p.suite.c_str(), p.threads, p.footprintBytes / 1024,
                    pat);
    }
    return 0;
}

int
cmdVerify(const std::string &what)
{
    auto m = loadModule(what);
    compiler::CompilerConfig cfg;
    compiler::LightWspCompiler comp(cfg);
    auto prog = comp.compile(std::move(m));
    analysis::CheckReport rep = analysis::checkCompiledProgram(prog, cfg);
    std::printf("%s: %s\n", what.c_str(), rep.describe().c_str());
    return rep.ok() ? 0 : 1;
}

int
cmdCompile(const std::string &what)
{
    auto m = loadModule(what);
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(m));
    ir::printModule(*prog.module, std::cout);
    std::fprintf(stderr,
                 "\n; boundaries=%zu ckpt-stores=%zu pruned=%zu "
                 "insts %zu -> %zu (fixpoint %zu iters, %zu loops "
                 "unrolled)\n",
                 prog.stats.boundaries, prog.stats.checkpointStores,
                 prog.stats.prunedCheckpoints, prog.stats.inputInsts,
                 prog.stats.outputInsts, prog.stats.fixpointIterations,
                 prog.stats.unrolledLoops);
    for (const auto &site : prog.sites) {
        if (site.recipes.empty())
            continue;
        std::fprintf(stderr, "; site %u recipes:", site.id);
        for (const auto &r : site.recipes)
            std::fprintf(stderr, " r%u=const(%lld)", r.reg,
                         static_cast<long long>(r.imm));
        std::fprintf(stderr, "\n");
    }
    return 0;
}

void
printRunStats(const std::string &scheme_name, unsigned threads,
              const core::RunResult &r)
{
    std::printf("scheme        %s\n", scheme_name.c_str());
    std::printf("threads       %u\n", threads);
    std::printf("cycles        %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("instructions  %llu (IPC %.2f)\n",
                static_cast<unsigned long long>(r.instsRetired), r.ipc);
    std::printf("stores        %llu\n",
                static_cast<unsigned long long>(r.storesRetired));
    std::printf("regions       %llu (avg %.1f insts, %.1f stores)\n",
                static_cast<unsigned long long>(r.boundaries),
                r.avgRegionInsts, r.avgRegionStores);
    std::printf("l1 miss rate  %.2f%%\n", 100.0 * r.l1MissRate());
    std::printf("wpq flushed   %llu entries (max occupancy %zu, "
                "%llu fallback)\n",
                static_cast<unsigned long long>(r.wpqFlushedEntries),
                r.maxWpqOccupancy,
                static_cast<unsigned long long>(r.wpqFallbackFlushes));
    std::printf("stall cycles  boundary=%llu sbFull=%llu febFull=%llu "
                "lock=%llu\n",
                static_cast<unsigned long long>(r.boundaryWaitCycles),
                static_cast<unsigned long long>(r.sbFullCycles),
                static_cast<unsigned long long>(r.febFullCycles),
                static_cast<unsigned long long>(r.lockBlockedCycles));
}

int
cmdRun(const std::string &app, const std::string &scheme_name,
       const std::string &trace_out, const std::string &stats_json,
       const std::string &faults_spec, const std::string &engine_name)
{
    harness::RunSpec spec;
    spec.workload = app;
    spec.scheme = schemeFromName(scheme_name);
    if (!engine_name.empty())
        spec.engine = engineFromName(engine_name);

    if (trace_out.empty() && stats_json.empty() && faults_spec.empty()) {
        harness::Runner runner;
        auto o = runner.run(spec);
        printRunStats(scheme_name, o.threads, o.result);
        if (spec.scheme != core::Scheme::Baseline) {
            double slow = runner.slowdownVsBaseline(spec);
            std::printf("slowdown      %.3fx vs baseline\n", slow);
        }
        return 0;
    }

    // Telemetry wants the live System (its sink and stat registry),
    // which the memoizing Runner doesn't expose — drive one directly,
    // mirroring Runner::runUncached's warmup setup so the printed
    // numbers match a plain `run`.
    const auto &profile = workloads::profileByName(app);
    auto w = workloads::generate(profile);
    core::SystemConfig cfg = harness::makeConfig(profile, spec);
    cfg.warmupInsts =
        w.estimatedInstsPerThread * profile.threads * 35 / 100;
    if (!trace_out.empty())
        cfg.traceEnabled = true;
    if (!faults_spec.empty())
        applyFaultSpec(cfg, faults_spec);
    compiler::CompiledProgram prog =
        harness::prepareProgram(std::move(w), spec);

    core::System sys(cfg, prog, profile.threads);
    auto r = sys.run();
    printRunStats(scheme_name, profile.threads, r);

    if (const auto *inj = sys.faultInjector()) {
        std::printf("faults        %s\n",
                    inj->config().toString().c_str());
        std::printf("bcast faults  drops=%llu delays=%llu dups=%llu "
                    "retries=%llu\n",
                    static_cast<unsigned long long>(inj->bcastDrops),
                    static_cast<unsigned long long>(inj->bcastDelays),
                    static_cast<unsigned long long>(inj->bcastDups),
                    static_cast<unsigned long long>(inj->bcastRetries));
    }

    if (!trace_out.empty()) {
        const auto *sink = sys.traceSink();
        auto events = sink->snapshot();
        if (!trace::writeBinaryFile(trace_out, events)) {
            std::fprintf(stderr, "cannot write trace to %s\n",
                         trace_out.c_str());
            return 1;
        }
        std::printf("trace         %zu events -> %s%s\n", events.size(),
                    trace_out.c_str(),
                    sink->wrapped() ? " (ring wrapped; oldest dropped)"
                                    : "");
    }
    if (!stats_json.empty()) {
        stats::Registry reg;
        sys.registerStats(reg);
        std::ofstream os(stats_json);
        if (!os) {
            std::fprintf(stderr, "cannot write stats to %s\n",
                         stats_json.c_str());
            return 1;
        }
        reg.dumpJson(os);
        std::printf("stats         %zu groups -> %s\n", reg.numGroups(),
                    stats_json.c_str());
    }
    return 0;
}

int
cmdCrash(const std::string &app, double fraction,
         const std::string &faults_spec, const std::string &engine_name,
         const std::string &storm_spec, const std::string &stats_json)
{
    fault::FailureSchedule storm;
    if (!storm_spec.empty()) {
        std::string err;
        if (!fault::FailureSchedule::parse(storm_spec, storm, err))
            fatal("bad --storm schedule: ", err);
    }

    const auto &profile = workloads::profileByName(app);
    auto w = workloads::generate(profile);
    auto lock_addrs = w.lockAddrs;
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(std::move(w.module));

    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    if (!engine_name.empty())
        cfg.engine = engineFromName(engine_name);
    cfg.applySchemeDefaults();

    core::System golden(cfg, prog, profile.threads);
    auto gr = golden.run();

    // Faults arm the victim only; recovery runs on correct hardware but
    // keeps the hardened checkpoint format so it can verify checksums.
    core::SystemConfig vcfg = cfg;
    core::SystemConfig rcfg = cfg;
    if (!faults_spec.empty()) {
        applyFaultSpec(vcfg, faults_spec);
        rcfg.faults.hardenedCkpt = true;
    }

    // Schedule cursor: runs of consecutive Drain events become the
    // interrupt budgets of whichever crash drain comes next.
    std::size_t stormIdx = 0;
    auto takeDrains = [&storm, &stormIdx] {
        std::vector<unsigned> iters;
        while (stormIdx < storm.events.size() &&
               storm.events[stormIdx].phase ==
                   fault::FailurePhase::Drain) {
            iters.push_back(static_cast<unsigned>(
                storm.events[stormIdx].at));
            ++stormIdx;
        }
        return iters;
    };

    core::System victim(vcfg, prog, profile.threads);
    auto vr = victim.runWithFailureStorm(
        static_cast<Tick>(fraction * static_cast<double>(gr.cycles)),
        takeDrains());
    if (vr.completed) {
        std::printf("program finished before the failure point\n");
        return 0;
    }
    std::printf("crashed at cycle %llu; recovering...\n",
                static_cast<unsigned long long>(vr.cycles));
    const core::CrashReport &cr = victim.crashReport();
    if (cr.faultsArmed) {
        std::printf("crash report  wpqDamaged=%u poisoned=%u "
                    "silentFlips=%u stalls=%u retries=%llu "
                    "lostAtCrash=%llu\n",
                    cr.wpqDamaged, cr.poisonedWords, cr.silentFlips,
                    cr.stallsInjected,
                    static_cast<unsigned long long>(cr.bcastRetries),
                    static_cast<unsigned long long>(cr.bcastLostAtCrash));
        if (cr.corruptBarrier != invalidRegion)
            std::printf("crash report  corrupt barrier at region %llu%s\n",
                        static_cast<unsigned long long>(cr.corruptBarrier),
                        cr.truncationHazard ? " (truncation hazard)" : "");
    }

    // Crash/recover rounds through the rest of the schedule. Loop-head
    // invariant: *cur is a crashed machine whose image we recover from.
    const core::System *cur = &victim;
    std::unique_ptr<core::System> sys;
    core::RunResult rr;
    while (true) {
        auto recres = core::System::recoverChecked(
            rcfg, prog, profile.threads, cur->pmImage(), lock_addrs,
            &cur->crashReport());
        // Recovery-phase failures: power died during the preamble, so
        // the retry re-validates the same image and must agree.
        while (stormIdx < storm.events.size() &&
               storm.events[stormIdx].phase ==
                   fault::FailurePhase::Recovery) {
            ++stormIdx;
            auto retry = core::System::recoverChecked(
                rcfg, prog, profile.threads, cur->pmImage(), lock_addrs,
                &cur->crashReport());
            std::printf("storm         recovery re-entered\n");
            if (retry.outcome != recres.outcome) {
                std::printf("verdict       CHANGED on re-entry: "
                            "%s -> %s\n",
                            core::recoveryOutcomeName(recres.outcome),
                            core::recoveryOutcomeName(retry.outcome));
                return 1;
            }
            recres = std::move(retry);
        }
        std::printf("verdict       %s%s%s\n",
                    core::recoveryOutcomeName(recres.outcome),
                    recres.detail.empty() ? "" : ": ",
                    recres.detail.c_str());
        if (recres.outcome ==
            core::RecoveryOutcome::DetectedUnrecoverable) {
            return 3;
        }
        // All uses of *cur are done; the assignment below may destroy
        // the machine it points into.
        sys = std::move(recres.sys);
        cur = nullptr;
        sys->setRecoveryLineage(recres.outcome,
                                1 + static_cast<unsigned>(stormIdx));
        if (stormIdx >= storm.events.size()) {
            rr = sys->run();
            break;
        }
        Tick gap = storm.events[stormIdx].at;
        ++stormIdx;
        rr = sys->runWithFailureStorm(gap, takeDrains());
        if (rr.completed) {
            std::printf("storm         finished before the next "
                        "failure landed\n");
            break;
        }
        if (!sys->crashed()) {
            std::printf("storm         neither completed nor crashed\n");
            return 1;
        }
        std::printf("crashed again at cycle %llu; recovering...\n",
                    static_cast<unsigned long long>(rr.cycles));
        cur = sys.get();
    }

    Addr lo = workloads::Workload::heapBase;
    Addr hi = lo + static_cast<Addr>(profile.threads) *
                       profile.footprintBytes;
    bool ok = rr.completed &&
              sys->pmImage().diffInRange(golden.pmImage(), lo, hi).empty();
    if (!storm.empty())
        std::printf("storm         survived %u power failures (%s)\n",
                    sys->failuresSurvived(), storm.toString().c_str());
    std::printf("recovery %s: application state %s the crash-free run\n",
                rr.completed ? "completed" : "DID NOT COMPLETE",
                ok ? "matches" : "DIFFERS from");

    if (!stats_json.empty()) {
        stats::Registry reg;
        sys->registerStats(reg);
        std::ofstream os(stats_json);
        if (!os) {
            std::fprintf(stderr, "cannot write stats to %s\n",
                         stats_json.c_str());
            return 1;
        }
        reg.dumpJson(os);
        std::printf("stats         %zu groups -> %s\n", reg.numGroups(),
                    stats_json.c_str());
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "compile" && argc == 3)
            return cmdCompile(argv[2]);
        if (cmd == "verify" && argc == 3)
            return cmdVerify(argv[2]);
        if (cmd == "run" && argc >= 3) {
            std::string scheme = "lightwsp", trace_out, stats_json;
            std::string faults, engine;
            int i = 3;
            if (i < argc && argv[i][0] != '-')
                scheme = argv[i++];
            for (; i < argc; ++i) {
                std::string a = argv[i];
                if (a == "--trace-out" && i + 1 < argc)
                    trace_out = argv[++i];
                else if (a == "--stats-json" && i + 1 < argc)
                    stats_json = argv[++i];
                else if (a == "--faults" && i + 1 < argc)
                    faults = argv[++i];
                else if (a == "--engine" && i + 1 < argc)
                    engine = argv[++i];
                else
                    return usage();
            }
            return cmdRun(argv[2], scheme, trace_out, stats_json, faults,
                          engine);
        }
        if (cmd == "crash" && argc >= 4) {
            std::string faults, engine, storm, stats_json;
            for (int i = 4; i < argc; ++i) {
                std::string a = argv[i];
                if (a == "--faults" && i + 1 < argc)
                    faults = argv[++i];
                else if (a == "--engine" && i + 1 < argc)
                    engine = argv[++i];
                else if (a == "--storm" && i + 1 < argc)
                    storm = argv[++i];
                else if (a == "--stats-json" && i + 1 < argc)
                    stats_json = argv[++i];
                else
                    return usage();
            }
            return cmdCrash(argv[2], std::atof(argv[3]), faults, engine,
                            storm, stats_json);
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
