/**
 * @file
 * Quickstart: the whole LightWSP flow in ~80 lines.
 *
 * 1. Write a small program in LightIR.
 * 2. Compile it with the LightWSP compiler (recoverable regions +
 *    checkpoint stores).
 * 3. Run it on the simulated 8-core system with battery-backed WPQs.
 * 4. Cut power in the middle, run the drain protocol, recover, and show
 *    that the final persistent state matches a crash-free run.
 */

#include <cstdio>

#include "compiler/compiler.hh"
#include "core/system.hh"
#include "ir/program.hh"
#include "ir/text_io.hh"

using namespace lwsp;
using namespace lwsp::ir;

namespace {

/** sum = Σ i for i in [0, 100); each partial sum is stored to memory. */
std::unique_ptr<Module>
buildProgram()
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &entry = f.addBlock();
    BasicBlock &loop = f.addBlock();
    BasicBlock &done = f.addBlock();

    constexpr Reg base = 1, i = 3, n = 7, sum = 13;
    entry.append(Instruction::movi(base, 0x10000));
    entry.append(Instruction::movi(i, 0));
    entry.append(Instruction::movi(n, 100));
    entry.append(Instruction::movi(sum, 0));
    entry.append(Instruction::jmp(loop.id()));

    loop.append(Instruction::alu(Opcode::Add, sum, sum, i));
    loop.append(Instruction::store(base, 0, sum));  // running total
    loop.append(Instruction::aluImm(Opcode::AddI, i, i, 1));
    loop.append(Instruction::branch(Opcode::Blt, i, n, loop.id(),
                                    done.id()));
    f.loopTripCounts()[loop.id()] = 100;

    done.append(Instruction::simple(Opcode::Halt));
    return m;
}

} // namespace

int
main()
{
    setLogQuiet(true);

    // -- Compile: region partitioning + live-out checkpointing ----------
    compiler::LightWspCompiler comp;
    auto prog = comp.compile(buildProgram());
    std::printf("compiled: %zu boundaries, %zu checkpoint stores "
                "(%zu pruned to recipes), %zu -> %zu instructions\n",
                prog.stats.boundaries, prog.stats.checkpointStores,
                prog.stats.prunedCheckpoints, prog.stats.inputInsts,
                prog.stats.outputInsts);

    // -- Golden run -------------------------------------------------------
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.applySchemeDefaults();
    core::System golden(cfg, prog, 1);
    auto gr = golden.run();
    std::printf("golden run: %llu cycles, sum = %llu (expect 4950)\n",
                static_cast<unsigned long long>(gr.cycles),
                static_cast<unsigned long long>(
                    golden.pmImage().read(0x10000)));

    // -- Crash in the middle ---------------------------------------------
    core::System victim(cfg, prog, 1);
    auto vr = victim.runWithPowerFailure(gr.cycles / 2);
    std::printf("power failure at cycle %llu: PM holds partial sum %llu\n",
                static_cast<unsigned long long>(vr.cycles),
                static_cast<unsigned long long>(
                    victim.pmImage().read(0x10000)));

    // -- Recover and finish -------------------------------------------------
    auto recovered =
        core::System::recover(cfg, prog, 1, victim.pmImage(), {});
    auto rr = recovered->run();
    std::printf("recovered run finished: sum = %llu, %s golden\n",
                static_cast<unsigned long long>(
                    recovered->pmImage().read(0x10000)),
                recovered->pmImage().read(0x10000) ==
                        golden.pmImage().read(0x10000)
                    ? "matches"
                    : "DIFFERS FROM");
    return rr.completed &&
                   recovered->pmImage().read(0x10000) ==
                       golden.pmImage().read(0x10000)
               ? 0
               : 1;
}
