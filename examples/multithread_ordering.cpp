/**
 * @file
 * The paper's Fig. 4 walkthrough: three threads pass through a critical
 * section; their stores' region IDs must follow the lock's happens-before
 * order, and the WPQs must release them to PM in exactly that order.
 *
 * The example instruments both memory controllers with flush-trace hooks
 * and prints each flush of the shared counter with its region ID, then
 * checks the persist order was monotone.
 */

#include <cstdio>
#include <vector>

#include "compiler/compiler.hh"
#include "core/system.hh"
#include "ir/program.hh"

using namespace lwsp;
using namespace lwsp::ir;

namespace {

constexpr Addr lockAddr = 0x6000'0000'0000ull;
constexpr Addr counterAddr = lockAddr + 8;

/** Each thread: acquire, counter += tid+1 three times, release. */
std::unique_ptr<Module>
buildProgram()
{
    auto m = std::make_unique<Module>();
    Function &f = m->addFunction("main");
    BasicBlock &b = f.addBlock();
    constexpr Reg shared = 2, tmp = 8, inc = 9;

    b.append(Instruction::movi(shared,
                               static_cast<std::int64_t>(lockAddr)));
    b.append(Instruction::aluImm(Opcode::AddI, inc, 0, 1));  // tid + 1
    b.append(Instruction::lockOp(Opcode::LockAcq, shared, 0));
    for (int i = 0; i < 3; ++i) {
        b.append(Instruction::load(tmp, shared, 8));
        b.append(Instruction::alu(Opcode::Add, tmp, tmp, inc));
        b.append(Instruction::store(shared, 8, tmp));
    }
    b.append(Instruction::lockOp(Opcode::LockRel, shared, 0));
    b.append(Instruction::simple(Opcode::Halt));
    return m;
}

} // namespace

int
main()
{
    setLogQuiet(true);

    compiler::LightWspCompiler comp;
    auto prog = comp.compile(buildProgram());

    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    cfg.numCores = 3;
    cfg.applySchemeDefaults();

    core::System sys(cfg, prog, /*threads=*/3);

    struct Flush
    {
        std::uint64_t value;
        RegionId region;
    };
    std::vector<Flush> counter_flushes;
    for (McId m = 0; m < 2; ++m) {
        sys.mcAt(m).setFlushTraceHook(
            [&](int kind, Addr addr, std::uint64_t value,
                RegionId region) {
                if (kind == 0 && addr == counterAddr)
                    counter_flushes.push_back({value, region});
            });
    }

    auto r = sys.run();
    std::printf("3 threads x 3 locked increments of (tid+1):\n");
    std::printf("final counter = %llu (expect 1*3 + 2*3 + 3*3 = 18)\n\n",
                static_cast<unsigned long long>(
                    sys.pmImage().read(counterAddr)));

    std::printf("%-22s %-10s %s\n", "counter value flushed", "region",
                "note");
    bool monotone_regions = true, monotone_values = true;
    for (std::size_t i = 0; i < counter_flushes.size(); ++i) {
        const auto &f = counter_flushes[i];
        const char *note = "";
        if (i > 0) {
            if (f.region < counter_flushes[i - 1].region) {
                monotone_regions = false;
                note = "REGION ORDER VIOLATION";
            }
            if (f.value < counter_flushes[i - 1].value) {
                monotone_values = false;
                note = "VALUE ORDER VIOLATION";
            }
        }
        std::printf("%-22llu %-10llu %s\n",
                    static_cast<unsigned long long>(f.value),
                    static_cast<unsigned long long>(f.region), note);
    }

    std::printf("\nregion IDs of the counter's flushes are %s; "
                "values are %s\n",
                monotone_regions ? "monotone (happens-before preserved)"
                                 : "OUT OF ORDER",
                monotone_values ? "monotone" : "OUT OF ORDER");

    bool ok = r.completed && monotone_regions && monotone_values &&
              sys.pmImage().read(counterAddr) == 18;
    return ok ? 0 : 1;
}
