#include "cache.hh"

namespace lwsp {
namespace mem {

Cache::Cache(std::string name, const CacheConfig &cfg)
    : name_(std::move(name)), cfg_(cfg)
{
    LWSP_ASSERT(cfg.assoc > 0, "cache assoc must be positive");
    LWSP_ASSERT(cfg.sizeBytes % (cfg.lineBytes * cfg.assoc) == 0,
                "cache size not divisible into sets");
    numSets_ = cfg.sizeBytes / (cfg.lineBytes * cfg.assoc);
    LWSP_ASSERT(isPowerOf2(numSets_), "cache sets must be a power of two");
    lines_.resize(numSets_ * cfg.assoc);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr / cfg_.lineBytes) & (numSets_ - 1);
}

bool
Cache::present(Addr addr) const
{
    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * cfg_.assoc;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        const Line &l = lines_[base + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

void
Cache::invalidate(Addr addr)
{
    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * cfg_.assoc;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Line &l = lines_[base + w];
        if (l.valid && l.tag == tag) {
            l.valid = false;
            l.dirty = false;
        }
    }
}

void
Cache::invalidateAll()
{
    for (auto &l : lines_) {
        l.valid = false;
        l.dirty = false;
    }
}

Cache::AccessResult
Cache::access(Addr addr, bool is_write)
{
    AccessResult res;
    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * cfg_.assoc;
    ++clock_;

    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Line &l = lines_[base + w];
        if (l.valid && l.tag == tag) {
            l.lruStamp = clock_;
            l.dirty = l.dirty || is_write;
            ++hits_;
            res.hit = true;
            return res;
        }
    }
    ++misses_;

    // Choose a victim: invalid way first, else LRU order subject to the
    // snoop filter for dirty victims.
    int victim = -1;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (!lines_[base + w].valid) {
            victim = static_cast<int>(w);
            break;
        }
    }

    if (victim < 0) {
        // Ways sorted by LRU stamp ascending (oldest first).
        std::vector<unsigned> order(cfg_.assoc);
        for (unsigned w = 0; w < cfg_.assoc; ++w)
            order[w] = w;
        for (unsigned i = 1; i < cfg_.assoc; ++i) {
            for (unsigned j = i; j > 0 &&
                 lines_[base + order[j]].lruStamp <
                     lines_[base + order[j - 1]].lruStamp; --j) {
                std::swap(order[j], order[j - 1]);
            }
        }

        unsigned scan_limit = cfg_.assoc;
        if (policy_ == VictimPolicy::Half)
            scan_limit = (cfg_.assoc + 1) / 2;
        else if (policy_ == VictimPolicy::Zero)
            scan_limit = 1;

        bool filter_active = canEvict_ && policy_ != VictimPolicy::None;
        unsigned tried = 0;
        for (unsigned idx = 0; idx < cfg_.assoc && victim < 0; ++idx) {
            unsigned w = order[idx];
            const Line &cand = lines_[base + w];
            if (filter_active && cand.dirty && !canEvict_(cand.tag)) {
                ++bufferConflicts_;
                ++tried;
                if (tried >= scan_limit)
                    break;
                continue;
            }
            victim = static_cast<int>(w);
            if (idx > 0)
                res.victimDiverted = true;
        }
        if (victim < 0) {
            // Every scannable way conflicts (or Zero policy): the access
            // must wait for the front-end buffer to drain.
            res.blocked = true;
            --misses_;  // the retry will re-count
            return res;
        }
        if (res.victimDiverted)
            ++divertedVictims_;
    }

    Line &l = lines_[base + victim];
    if (l.valid && l.dirty) {
        res.evictedDirty = true;
        res.evictedLine = l.tag;
    }
    l.valid = true;
    l.dirty = is_write;
    l.tag = tag;
    l.lruStamp = clock_;
    return res;
}

} // namespace mem
} // namespace lwsp
