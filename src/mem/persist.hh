/**
 * @file
 * Persist-path payloads and memory-controller control messages.
 *
 * Every store leaving a store buffer is tagged with its thread's current
 * region ID (paper §IV-B). Boundary PC-stores additionally trigger a
 * broadcast of that ID to all MCs when they exit the core's FIFO persist
 * path, which is how MCs learn the execution order of regions.
 */

#ifndef LWSP_MEM_PERSIST_HH
#define LWSP_MEM_PERSIST_HH

#include <cstdint>

#include "common/types.hh"

namespace lwsp {
namespace mem {

/** One 8-byte store travelling the non-temporal persist path. */
struct PersistEntry
{
    Addr addr = 0;
    std::uint64_t value = 0;
    RegionId region = invalidRegion;  ///< gating tag of this store
    ThreadId thread = 0;
    bool isBoundary = false;       ///< ends a region when exiting the path
    /**
     * Region broadcast when this boundary exits the persist path. Equals
     * `region` for compiler boundaries; for fused synchronization
     * boundaries (atomics/locks/fences) it is the *previous* region —
     * the sync op's own store already belongs to the freshly allocated
     * one, which is how racing atomics acquire coherence-ordered IDs.
     */
    RegionId broadcastRegion = invalidRegion;
    std::uint32_t site = 0;        ///< boundary site id (when applicable)
    /**
     * ECC state of the queued entry. Nonzero only when the fault layer
     * damaged it at crash time: 1 = detected bit flip, 2 = torn write.
     * A damaged entry must never be applied to PM; the crash drain
     * truncates to the epoch before the lowest damaged region instead.
     */
    std::uint8_t ecc = 0;
};

/** MC-to-MC (and router-to-MC) control messages of the LRPO protocol. */
struct McMsg
{
    enum class Type : std::uint8_t
    {
        BdryArrival,   ///< boundary broadcast reaching this MC
        BdryAck,       ///< "I have received boundary <region>"
        FlushAck,      ///< "I have flushed all my entries of <region>"
        /**
         * Tree-fabric root announcements (see noc/topology.hh): every
         * MC's BdryAck/FlushAck for <region> has aggregated to the root,
         * which broadcasts the completed round back down in place of the
         * flat fabric's all-to-all ACK exchange.
         */
        BdryAllAcked,
        FlushAllAcked,
    };

    Type type = Type::BdryArrival;
    RegionId region = invalidRegion;
    McId from = 0;
    /**
     * Nonzero only for BdryArrival copies sent while fault injection is
     * armed: identifies the broadcast so the router can observe delivery
     * and retry copies that a faulty link dropped.
     */
    std::uint64_t bcastId = 0;
};

/** Delivery target registered with the NoC. */
class McEndpoint
{
  public:
    virtual ~McEndpoint() = default;
    virtual void receive(const McMsg &msg, Tick now) = 0;
};

} // namespace mem
} // namespace lwsp

#endif // LWSP_MEM_PERSIST_HH
