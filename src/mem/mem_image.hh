/**
 * @file
 * Functional memory image: a sparse, paged 64-bit-word store.
 *
 * Two images exist per simulated system: the execution image (what loads
 * observe) and the PM image (updated only when the WPQ releases an entry
 * to persistent memory). Crash-consistency checks compare and clone these.
 */

#ifndef LWSP_MEM_MEM_IMAGE_HH
#define LWSP_MEM_MEM_IMAGE_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace lwsp {
namespace mem {

class MemImage
{
  public:
    static constexpr unsigned pageShift = 12;  // 4 KiB pages
    static constexpr Addr pageWords = (1ull << pageShift) / 8;

    /** Read the 8-byte word at @p addr (must be 8B aligned; 0 if untouched). */
    std::uint64_t
    read(Addr addr) const
    {
        LWSP_ASSERT((addr & 7) == 0, "unaligned read 0x", std::hex, addr);
        auto it = pages_.find(addr >> pageShift);
        if (it == pages_.end())
            return 0;
        return it->second[(addr >> 3) & (pageWords - 1)];
    }

    /** Write the 8-byte word at @p addr (must be 8B aligned). */
    void
    write(Addr addr, std::uint64_t value)
    {
        LWSP_ASSERT((addr & 7) == 0, "unaligned write 0x", std::hex, addr);
        auto &page = pages_[addr >> pageShift];
        if (page.empty())
            page.assign(pageWords, 0);
        page[(addr >> 3) & (pageWords - 1)] = value;
        if (!poisoned_.empty())
            poisoned_.erase(addr);
    }

    // ---- PM media errors (fault injection) ---------------------------
    /**
     * Mark the word at @p addr as a media read error: the device flags
     * it (like a DIMM returning a poison ECC code) and its data are
     * garbage. A fresh write to the address heals it. The stored value
     * is left as-is — the injector scrambles it separately, so code that
     * ignores the flag observes corrupt data rather than a crash.
     */
    void poison(Addr addr) { poisoned_.insert(addr); }

    bool isPoisoned(Addr addr) const { return poisoned_.count(addr) != 0; }
    std::size_t poisonedCount() const { return poisoned_.size(); }

    /** Number of resident pages (for tests). */
    std::size_t residentPages() const { return pages_.size(); }

    /** Deep copy (crash-recovery runs re-execute on a cloned PM image). */
    MemImage clone() const { return *this; }

    /**
     * Compare against @p other over the union of touched pages.
     * @return list of differing addresses (capped at @p max_diffs)
     */
    std::vector<Addr>
    diff(const MemImage &other, std::size_t max_diffs = 16) const
    {
        std::vector<Addr> out;
        auto scan = [&](const MemImage &a, const MemImage &b) {
            for (const auto &[pageno, words] : a.pages_) {
                for (Addr i = 0; i < pageWords; ++i) {
                    Addr addr = (pageno << pageShift) | (i << 3);
                    if (words[i] != b.read(addr)) {
                        bool seen = false;
                        for (Addr d : out)
                            seen = seen || d == addr;
                        if (!seen)
                            out.push_back(addr);
                        if (out.size() >= max_diffs)
                            return;
                    }
                }
            }
        };
        scan(*this, other);
        if (out.size() < max_diffs)
            scan(other, *this);
        return out;
    }

    /**
     * diff() restricted to [lo, hi): used to compare application data
     * while ignoring checkpoint storage and stacks, whose final contents
     * may legitimately differ across thread interleavings.
     */
    std::vector<Addr>
    diffInRange(const MemImage &other, Addr lo, Addr hi,
                std::size_t max_diffs = 16) const
    {
        std::vector<Addr> out;
        for (Addr addr : diff(other, 4096)) {
            if (addr >= lo && addr < hi) {
                out.push_back(addr);
                if (out.size() >= max_diffs)
                    break;
            }
        }
        return out;
    }

  private:
    std::unordered_map<Addr, std::vector<std::uint64_t>> pages_;
    std::unordered_set<Addr> poisoned_;
};

} // namespace mem
} // namespace lwsp

#endif // LWSP_MEM_MEM_IMAGE_HH
