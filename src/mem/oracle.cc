#include "mem/oracle.hh"

#include <sstream>

namespace lwsp {
namespace mem {

namespace {

void
recordTick(std::vector<Tick> &ticks, Tick now, std::size_t cap)
{
    if (ticks.size() < cap &&
        (ticks.empty() || ticks.back() != now)) {
        ticks.push_back(now);
    }
}

} // namespace

LrpoOracle::PerMc &
LrpoOracle::mcState(McId mc)
{
    return mcs_[mc];
}

void
LrpoOracle::violate(Tick now, const std::string &what)
{
    // Cap the list: a genuinely broken protocol would otherwise flag
    // every subsequent flush and drown the first (root-cause) report.
    if (violations_.size() >= 64)
        return;
    std::ostringstream os;
    os << "[tick " << now << "] " << what;
    violations_.push_back(os.str());
}

void
LrpoOracle::onBdryArrival(McId mc, RegionId region, Tick now)
{
    auto &st = mcState(mc);
    ++checksRun_;
    if (!st.arrived.insert(region).second) {
        std::ostringstream os;
        os << "mc" << mc << ": duplicate boundary arrival for region "
           << region;
        violate(now, os.str());
    }
    recordTick(bdryTicks_, now, maxTicksRecorded);
}

void
LrpoOracle::onBdryAck(McId mc, RegionId region, McId from)
{
    ++checksRun_;
    auto &st = mcState(mc);
    if (from == mc || st.acks[region].count(from)) {
        std::ostringstream os;
        os << "mc" << mc << ": unexpected bdry-ACK for region " << region
           << " from mc" << from
           << (from == mc ? " (self-ACK)" : " (duplicate)");
        violate(0, os.str());
    }
    st.acks[region].insert(from);
}

void
LrpoOracle::onBdryAllAcked(McId mc, RegionId region)
{
    ++checksRun_;
    auto &st = mcState(mc);
    if (!treeAcks_) {
        std::ostringstream os;
        os << "mc" << mc << ": BdryAllAcked for region " << region
           << " on a flat fabric";
        violate(0, os.str());
    }
    if (!st.arrived.count(region)) {
        std::ostringstream os;
        os << "mc" << mc << ": BdryAllAcked for region " << region
           << " before its boundary arrived here — an MC cannot have"
           << " ACKed a boundary it never received";
        violate(0, os.str());
    }
    if (!st.allAcked.insert(region).second) {
        std::ostringstream os;
        os << "mc" << mc << ": duplicate BdryAllAcked for region "
           << region;
        violate(0, os.str());
    }
}

void
LrpoOracle::onAccept(McId mc, const PersistEntry &e, std::size_t occupancy,
                     std::size_t capacity, bool fallback_active, Tick now)
{
    ++checksRun_;
    if (occupancy > capacity && !(gated_ && fallback_active)) {
        std::ostringstream os;
        os << "mc" << mc << ": WPQ occupancy " << occupancy
           << " exceeds capacity " << capacity
           << " outside fallback (region " << e.region << ")";
        violate(now, os.str());
    }
}

void
LrpoOracle::onWpqSample(McId mc, std::size_t occupancy, std::size_t capacity,
                        bool fallback_active, Tick now)
{
    ++checksRun_;
    if (occupancy > capacity && !(gated_ && fallback_active)) {
        std::ostringstream os;
        os << "mc" << mc << ": WPQ occupancy " << occupancy
           << " exceeds capacity " << capacity << " outside fallback";
        violate(now, os.str());
    }
}

void
LrpoOracle::onFlush(McId mc, int kind, Addr addr, std::uint64_t value,
                    RegionId region, Tick now)
{
    (void)value;
    ++checksRun_;
    auto &st = mcState(mc);

    switch (kind) {
      case 0: { // Normal in-order flush: region must be globally closed.
        if (gated_) {
            if (!st.arrived.count(region)) {
                std::ostringstream os;
                os << "mc" << mc << ": store of region " << region
                   << " (addr 0x" << std::hex << addr << std::dec
                   << ") released to PM before its boundary arrived"
                   << " — unclosed region leaked";
                violate(now, os.str());
            }
            if (treeAcks_) {
                if (!st.allAcked.count(region)) {
                    std::ostringstream os;
                    os << "mc" << mc << ": store of region " << region
                       << " released to PM before the tree root announced"
                       << " its bdry-ACK round — region not closed on all"
                       << " MCs";
                    violate(now, os.str());
                }
            } else {
                auto it = st.acks.find(region);
                std::size_t have = 0;
                if (it != st.acks.end()) {
                    for (McId from : it->second) {
                        if (from != mc)
                            ++have;
                    }
                }
                if (have + 1 < numMcs_) {
                    std::ostringstream os;
                    os << "mc" << mc << ": store of region " << region
                       << " released to PM with " << have << " of "
                       << (numMcs_ - 1) << " peer bdry-ACKs"
                       << " — region not closed on all MCs";
                    violate(now, os.str());
                }
            }
            if (region < st.lastNormalFlush) {
                std::ostringstream os;
                os << "mc" << mc << ": normal flush of region " << region
                   << " after region " << st.lastNormalFlush
                   << " — boundary release order violated";
                violate(now, os.str());
            }
            if (region > st.lastNormalFlush)
                st.lastNormalFlush = region;
        }
        lastWriter_[addr] = {mc, region, kind};
        break;
      }
      case 1: // §IV-D fallback flush: undo-logged, exempt from ordering.
        if (!gated_) {
            std::ostringstream os;
            os << "mc" << mc << ": fallback flush of region " << region
               << " in ungated mode";
            violate(now, os.str());
        }
        lastWriter_[addr] = {mc, region, kind};
        break;
      case 2: // Absorbed into an undo pre-image: PM not touched.
        break;
      case 3: // Crash-drain undo restore: reverts to the pre-image, whose
              // writer (if any) predates every uncommitted region.
        lastWriter_.erase(addr);
        break;
      default: {
        std::ostringstream os;
        os << "mc" << mc << ": unknown flush kind " << kind;
        violate(now, os.str());
        break;
      }
    }
    recordTick(flushTicks_, now, maxTicksRecorded);
}

void
LrpoOracle::onCommit(McId mc, RegionId region, Tick now)
{
    ++checksRun_;
    auto &st = mcState(mc);
    if (st.lastCommit != 0 && region != st.lastCommit + 1) {
        std::ostringstream os;
        os << "mc" << mc << ": commit of region " << region
           << " after region " << st.lastCommit
           << " — commits must advance densely in id order";
        violate(now, os.str());
    }
    if (gated_ && !st.arrived.count(region)) {
        std::ostringstream os;
        os << "mc" << mc << ": committed region " << region
           << " whose boundary never arrived";
        violate(now, os.str());
    }
    st.lastCommit = region;
    recordTick(commitTicks_, now, maxTicksRecorded);
}

void
LrpoOracle::onCrashFinish(McId mc, RegionId drain_cursor,
                          bool detected_unrecoverable)
{
    // Invariant 4: every surviving PM word owned by this MC must have
    // been written by a committed (id < drain_cursor) region. Fallback
    // writes (kind 1) of uncommitted regions must have been reverted
    // (kind 3) before this point, so any survivor is a violation too.
    if (detected_unrecoverable) {
        // The MC flagged this image detected-unrecoverable: stale words
        // past the truncation barrier are expected and recovery refuses
        // the image, so there is nothing silent left to catch.
        ++checksRun_;
        return;
    }
    for (const auto &[addr, w] : lastWriter_) {
        if (w.mc != mc)
            continue;
        ++checksRun_;
        if (w.region >= drain_cursor) {
            std::ostringstream os;
            os << "mc" << mc << ": post-crash PM holds addr 0x" << std::hex
               << addr << std::dec << " written by region " << w.region
               << " (kind " << w.kind << ") >= persisted cursor "
               << drain_cursor
               << " — recovery would read past the last boundary";
            violate(0, os.str());
        }
    }
}

} // namespace mem
} // namespace lwsp
