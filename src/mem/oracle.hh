/**
 * @file
 * Always-on runtime invariant oracles for LRPO (lazy region-level
 * persist ordering).
 *
 * The oracle is a passive observer of protocol events — boundary
 * arrivals, bdry-ACKs, WPQ insertions, PM releases, region commits and
 * the crash drain — that rebuilds its own view of what the protocol
 * permits and flags any release the view forbids. It deliberately does
 * NOT read the memory controller's internal state (drain cursor, ready
 * bits): deriving legality independently from the event stream is what
 * lets it catch state-machine bugs instead of re-asserting them.
 *
 * Invariants checked (paper §III-B/IV-B/IV-D/IV-F):
 *  1. No store of an unclosed region is released to PM: a normal
 *     (non-fallback) flush of region r at MC m requires r's boundary to
 *     have arrived at m and every peer's bdry-ACK for r to have been
 *     received — fallback releases are exempt but must be undo-logged
 *     (kind 1) and may only occur in gated mode.
 *  2. Region boundaries release in broadcast order on every MC: normal
 *     flushes are per-MC non-decreasing in region id, and regions commit
 *     (flush-ID advance) densely in id order.
 *  3. WPQ occupancy never exceeds capacity, except for the §IV-D
 *     deadlock fallback, and then only for the awaited region's stores.
 *  4. Recovery never reads a byte younger than the last persisted
 *     boundary: after the crash drain, no PM word's last writer may
 *     belong to a region the owning MC did not commit.
 *
 * Zero-cost when disabled: every hook sits behind a null-pointer check
 * in the memory controller (`McConfig::oracle == nullptr`, the default).
 * Violations are collected, not thrown, so a fuzzing campaign can record
 * them alongside differential-check failures; tests assert `ok()`.
 *
 * The oracle also timestamps the events it observes (boundary edges,
 * WPQ drain steps, commits). Crash-consistency fuzzing mines these as
 * adversarial power-failure points — the cycles at which the protocol
 * is mid-handshake are exactly the ones worth crashing at.
 */

#ifndef LWSP_MEM_ORACLE_HH
#define LWSP_MEM_ORACLE_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "mem/persist.hh"

namespace lwsp {
namespace mem {

class LrpoOracle
{
  public:
    /**
     * @param num_mcs memory-controller count (for the peer-ACK census)
     * @param gated true when the WPQ is region-gated (LightWSP); the
     *        ordering invariants only apply to gated operation
     * @param tree_acks true when ACKs aggregate on a tree fabric: MCs
     *        then see BdryAllAcked root announcements instead of
     *        per-peer bdry-ACKs, and invariant 1 checks against those
     */
    explicit LrpoOracle(unsigned num_mcs = 2, bool gated = true,
                        bool tree_acks = false)
        : numMcs_(num_mcs), gated_(gated),
          treeAcks_(tree_acks && num_mcs > 1)
    {
    }

    // ---- Protocol event hooks (called by MemController) ------------------
    /** Boundary broadcast for @p region delivered at MC @p mc. */
    void onBdryArrival(McId mc, RegionId region, Tick now);

    /** Peer @p from's bdry-ACK for @p region received at MC @p mc. */
    void onBdryAck(McId mc, RegionId region, McId from);

    /** Tree root announced the completed bdry-ACK round at MC @p mc. */
    void onBdryAllAcked(McId mc, RegionId region);

    /** Entry accepted into MC @p mc's WPQ (occupancy is post-insert). */
    void onAccept(McId mc, const PersistEntry &e, std::size_t occupancy,
                  std::size_t capacity, bool fallback_active, Tick now);

    /** Per-cycle WPQ occupancy sample (every MC tick while enabled). */
    void onWpqSample(McId mc, std::size_t occupancy, std::size_t capacity,
                     bool fallback_active, Tick now);

    /**
     * PM-affecting release at MC @p mc. @p kind mirrors the flush trace
     * hook: 0 = normal flush, 1 = undo-logged fallback flush, 2 = write
     * absorbed into an undo pre-image (PM untouched), 3 = crash-drain
     * undo restore.
     */
    void onFlush(McId mc, int kind, Addr addr, std::uint64_t value,
                 RegionId region, Tick now);

    /** MC @p mc advanced its persistent flush-ID past @p region. */
    void onCommit(McId mc, RegionId region, Tick now);

    /**
     * MC @p mc finished the §IV-F crash drain; regions < @p drain_cursor
     * are its committed prefix. Verifies invariant 4 for its addresses.
     * With @p detected_unrecoverable the machine itself reported the PM
     * image as damaged beyond sound truncation (fault injection); the
     * oracle hunts *silent* corruption, so invariant 4 is skipped — the
     * hardware already refused to recover from this image.
     */
    void onCrashFinish(McId mc, RegionId drain_cursor,
                       bool detected_unrecoverable = false);

    // ---- Results ---------------------------------------------------------
    bool ok() const { return violations_.empty(); }
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }
    std::string firstViolation() const
    {
        return violations_.empty() ? std::string() : violations_.front();
    }

    /** Total invariant evaluations (proves the checkers are live). */
    std::uint64_t checksRun() const { return checksRun_; }

    // ---- Event timestamps (adversarial crash-point mining) ---------------
    const std::vector<Tick> &boundaryTicks() const { return bdryTicks_; }
    const std::vector<Tick> &flushTicks() const { return flushTicks_; }
    const std::vector<Tick> &commitTicks() const { return commitTicks_; }

    /** Highest region MC @p mc has committed (0 when none). */
    RegionId
    lastCommit(McId mc) const
    {
        auto it = mcs_.find(mc);
        return it == mcs_.end() ? 0 : it->second.lastCommit;
    }

  private:
    void violate(Tick now, const std::string &what);

    struct PerMc
    {
        std::set<RegionId> arrived;
        /**
         * Flat fabric: which peers have bdry-ACKed each region. A set of
         * MC ids, not a shift mask — `1u << from` was UB past 32 MCs and
         * silently aliased wider fabrics.
         */
        std::map<RegionId, std::set<McId>> acks;
        /** Tree fabric: regions whose BdryAllAcked announcement landed. */
        std::set<RegionId> allAcked;
        RegionId lastNormalFlush = 0;
        RegionId lastCommit = 0;
    };

    PerMc &mcState(McId mc);

    /** Last PM write per address: who put the current value there. */
    struct LastWrite
    {
        McId mc = 0;
        RegionId region = 0;
        int kind = 0;
    };

    unsigned numMcs_;
    bool gated_;
    bool treeAcks_;

    std::map<McId, PerMc> mcs_;
    std::unordered_map<Addr, LastWrite> lastWriter_;

    std::vector<std::string> violations_;
    std::uint64_t checksRun_ = 0;

    // Bounded event-tick records (enough resolution for small fuzz
    // workloads; capped so long runs cannot grow without bound).
    static constexpr std::size_t maxTicksRecorded = 65536;
    std::vector<Tick> bdryTicks_;
    std::vector<Tick> flushTicks_;
    std::vector<Tick> commitTicks_;
};

} // namespace mem
} // namespace lwsp

#endif // LWSP_MEM_ORACLE_HH
