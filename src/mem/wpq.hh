/**
 * @file
 * The battery-backed write pending queue (WPQ) used as LightWSP's redo
 * buffer. Entries are 8B granules tagged with region IDs; the owning
 * memory controller flushes them to PM strictly in region order. Supports
 * the CAM operations the paper needs: per-address search for LLC-miss
 * handling (§IV-H) and line-granular conflict checks.
 */

#ifndef LWSP_MEM_WPQ_HH
#define LWSP_MEM_WPQ_HH

#include <deque>
#include <optional>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "mem/persist.hh"

namespace lwsp {
namespace mem {

class Wpq
{
  public:
    explicit Wpq(std::size_t capacity) : capacity_(capacity)
    {
        LWSP_ASSERT(capacity > 0, "WPQ capacity must be positive");
    }

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    /**
     * Insert an entry. @p allow_overflow permits exceeding capacity,
     * which the deadlock-resolution fallback needs (paper §IV-D
     * "exceptionally lets the WPQ overflow").
     */
    void
    push(const PersistEntry &e, bool allow_overflow = false)
    {
        LWSP_ASSERT(allow_overflow || !full(),
                    "WPQ overflow without fallback");
        entries_.push_back(e);
        ++pushes_;
    }

    /** Pop the overall oldest entry (ungated FIFO mode). */
    std::optional<PersistEntry>
    popFront()
    {
        if (entries_.empty())
            return std::nullopt;
        PersistEntry e = entries_.front();
        entries_.pop_front();
        ++pops_;
        return e;
    }

    /**
     * CAM search: newest entry matching the 8B address (the value a load
     * would need). @return the entry value, or nullopt on miss.
     */
    std::optional<std::uint64_t>
    search(Addr addr) const
    {
        ++searches_;
        for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
            if (it->addr == addr) {
                ++searchHits_;
                return it->value;
            }
        }
        return std::nullopt;
    }

    /** @return true if any entry falls within the cacheline at @p line. */
    bool
    containsLine(Addr line) const
    {
        for (const auto &e : entries_) {
            if (alignDown(e.addr, cachelineBytes) == line)
                return true;
        }
        return false;
    }

    /** Smallest region id present; invalidRegion when empty. */
    RegionId
    minRegion() const
    {
        RegionId min = invalidRegion;
        for (const auto &e : entries_) {
            if (e.region < min)
                min = e.region;
        }
        return min;
    }

    bool
    hasRegion(RegionId r) const
    {
        for (const auto &e : entries_) {
            if (e.region == r)
                return true;
        }
        return false;
    }

    /** Pop the oldest entry of region @p r (FIFO within a region). */
    std::optional<PersistEntry>
    popRegion(RegionId r)
    {
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->region == r) {
                PersistEntry e = *it;
                entries_.erase(it);
                ++pops_;
                return e;
            }
        }
        return std::nullopt;
    }

    /** Drop every entry with region id > @p r (crash: unpersisted). */
    std::size_t
    discardRegionsAbove(RegionId r)
    {
        std::size_t dropped = 0;
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (it->region > r) {
                it = entries_.erase(it);
                ++dropped;
            } else {
                ++it;
            }
        }
        return dropped;
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &e : entries_)
            fn(e);
    }

    /**
     * Mutable entry access for the fault layer (crash-time bit flips and
     * torn writes land directly in the battery-backed queue cells).
     */
    PersistEntry &
    entryAt(std::size_t i)
    {
        LWSP_ASSERT(i < entries_.size(), "Wpq::entryAt out of range");
        return entries_[i];
    }

    /** Smallest region with an ECC-damaged entry; invalidRegion if none. */
    RegionId
    minDamagedRegion() const
    {
        RegionId min = invalidRegion;
        for (const auto &e : entries_) {
            if (e.ecc != 0 && e.region < min)
                min = e.region;
        }
        return min;
    }

    void clear() { entries_.clear(); }

    // ---- Statistics ------------------------------------------------------
    std::uint64_t pushes() const { return pushes_; }
    std::uint64_t pops() const { return pops_; }
    std::uint64_t searches() const { return searches_; }
    std::uint64_t searchHits() const { return searchHits_; }

    void
    resetStats()
    {
        pushes_ = pops_ = searches_ = searchHits_ = 0;
    }

  private:
    std::size_t capacity_;
    std::deque<PersistEntry> entries_;
    std::uint64_t pushes_ = 0;
    std::uint64_t pops_ = 0;
    // CAM-port activity counters; search() is const (a lookup), the
    // counters are bookkeeping.
    mutable std::uint64_t searches_ = 0;
    mutable std::uint64_t searchHits_ = 0;
};

} // namespace mem
} // namespace lwsp

#endif // LWSP_MEM_WPQ_HH
