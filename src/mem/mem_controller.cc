#include "mem_controller.hh"

#include <string>

#include "mem/oracle.hh"
#include "noc/noc.hh"
#include "trace/sink.hh"

namespace lwsp {
namespace mem {

MemController::MemController(McId id, const McConfig &cfg, MemImage &pm,
                             noc::Noc &noc_net)
    : Clocked("mc" + std::to_string(id)), id_(id), cfg_(cfg), pm_(pm),
      noc_(noc_net), wpq_(cfg.wpqEntries),
      dramCache_("mc" + std::to_string(id) + ".dramcache", cfg.dramCache),
      wpqOccupancy_(0, static_cast<double>(cfg.wpqEntries + 1), 32)
{
    LWSP_ASSERT(cfg.numMcs >= 1, "bad MC count");
    LWSP_ASSERT(id < cfg.numMcs, "MC id out of range");
    // A one-leaf tree has no fabric to aggregate over: degrade to flat,
    // mirroring the Noc's own single-MC degradation.
    if (cfg_.numMcs <= 1)
        cfg_.treeAcks = false;
    peersAll_.reset(cfg_.numMcs);
    for (McId mc = 0; mc < cfg_.numMcs; ++mc) {
        if (mc != id_)
            peersAll_.set(mc);
    }
}

bool
MemController::ready(RegionId r) const
{
    if (r < flushId_)
        return true;  // already committed (state erased)
    auto it = regions_.find(r);
    if (it == regions_.end() || !it->second.bdryArrived)
        return false;
    return bdryAcksComplete(it->second);
}

bool
MemController::canAccept(const PersistEntry &e) const
{
    if (!cfg_.gatingEnabled)
        return !wpq_.full();
    if (!wpq_.full())
        return true;
    // Deadlock fallback: the draining region's own stores may softly
    // overflow so its boundary can eventually arrive.
    return fallbackActive_ && e.region == drainCursor_;
}

void
MemController::accept(const PersistEntry &e, Tick now)
{
    bool overflow = wpq_.full();
    LWSP_ASSERT(canAccept(e), "accept() without canAccept()");
    wpq_.push(e, overflow);
    if (overflow)
        ++overflowEvents_;
    maxWpqOccupancy_ = std::max(maxWpqOccupancy_, wpq_.size());
    wpqOccupancy_.sample(static_cast<double>(wpq_.size()));
    if (cfg_.oracle) {
        cfg_.oracle->onAccept(id_, e, wpq_.size(), cfg_.wpqEntries,
                              fallbackActive_, now);
    }
    trace::emitIf<trace::Category::Wpq>(
        cfg_.sink,
        {now, trace::EventType::WpqEnqueue,
         static_cast<std::int32_t>(id_), e.thread, e.region, e.addr,
         e.value, wpq_.size()});
    rearm();
}

void
MemController::sendToPeers(McMsg::Type type, RegionId r, Tick now)
{
    McMsg msg;
    msg.type = type;
    msg.region = r;
    msg.from = id_;
    if (cfg_.treeAcks) {
        // One ACK up the aggregation tree; the completed round comes
        // back as the root's BdryAllAcked / FlushAllAcked announcement.
        noc_.ackUp(id_, msg, now);
        return;
    }
    for (McId mc = 0; mc < cfg_.numMcs; ++mc) {
        if (mc != id_)
            noc_.send(mc, msg, now);
    }
}

void
MemController::receive(const McMsg &msg, Tick now)
{
    switch (msg.type) {
      case McMsg::Type::BdryArrival: {
        if (cfg_.oracle)
            cfg_.oracle->onBdryArrival(id_, msg.region, now);
        trace::emitIf<trace::Category::Boundary>(
            cfg_.sink,
            {now, trace::EventType::BoundaryBcastRecv,
             static_cast<std::int32_t>(id_), 0, msg.region, 0, 0,
             msg.from});
        RegionState &st = state(msg.region);
        st.bdryArrived = true;
        st.bdryArrivedAt = now;
        if (bdryAcksComplete(st))
            bcastLatency_.sample(0);
        if (!st.bdryAckSent) {
            st.bdryAckSent = true;
            sendToPeers(McMsg::Type::BdryAck, msg.region, now);
        }
        // Fallback ends once the awaited boundary shows up; the undo log
        // is retained until the region is provably committed (ready).
        if (fallbackActive_ && msg.region == drainCursor_)
            fallbackActive_ = false;
        break;
      }
      case McMsg::Type::BdryAck:
        if (cfg_.oracle)
            cfg_.oracle->onBdryAck(id_, msg.region, msg.from);
        trace::emitIf<trace::Category::Boundary>(
            cfg_.sink,
            {now, trace::EventType::BoundaryAck,
             static_cast<std::int32_t>(id_), 0, msg.region, 0, 0,
             msg.from});
        {
            RegionState &st = state(msg.region);
            bool was_complete = bdryAcksComplete(st);
            st.bdryAcks.set(msg.from);
            if (!was_complete && st.bdryArrived &&
                bdryAcksComplete(st)) {
                bcastLatency_.sample(
                    static_cast<double>(now - st.bdryArrivedAt));
            }
        }
        break;
      case McMsg::Type::FlushAck:
        state(msg.region).flushAcks.set(msg.from);
        maybeAdvanceFlushId(now);
        break;
      case McMsg::Type::BdryAllAcked: {
        // Tree-fabric root announcement: every MC's bdry-ACK for this
        // region aggregated. Stands in for the flat all-to-all round.
        if (cfg_.oracle)
            cfg_.oracle->onBdryAllAcked(id_, msg.region);
        trace::emitIf<trace::Category::Boundary>(
            cfg_.sink,
            {now, trace::EventType::BoundaryAck,
             static_cast<std::int32_t>(id_), 0, msg.region, 0, 0,
             cfg_.numMcs});
        RegionState &st = state(msg.region);
        bool was_complete = st.allBdryAcked;
        st.allBdryAcked = true;
        if (!was_complete && st.bdryArrived) {
            bcastLatency_.sample(
                static_cast<double>(now - st.bdryArrivedAt));
        }
        break;
      }
      case McMsg::Type::FlushAllAcked:
        state(msg.region).allFlushAcked = true;
        maybeAdvanceFlushId(now);
        break;
    }
    rearm();
}

void
MemController::maybeAdvanceFlushId(Tick now)
{
    while (true) {
        auto it = regions_.find(flushId_);
        if (it == regions_.end())
            break;
        const RegionState &st = it->second;
        if (!st.localFlushDone || !flushAcksComplete(st))
            break;
        regions_.erase(it);
        if (cfg_.oracle)
            cfg_.oracle->onCommit(id_, flushId_, now);
        trace::emitIf<trace::Category::Region>(
            cfg_.sink,
            {now, trace::EventType::RegionPersist,
             static_cast<std::int32_t>(id_), 0, flushId_, 0, 0, 0});
        ++flushId_;
        ++regionsCommitted_;
    }
}

void
MemController::traceEvent(int kind, Addr addr, std::uint64_t value,
                          RegionId region, Tick now)
{
    if (traceHook_)
        traceHook_(kind, addr, value, region);
    if (cfg_.oracle)
        cfg_.oracle->onFlush(id_, kind, addr, value, region, now);
    trace::emitIf<trace::Category::Wpq>(
        cfg_.sink,
        {now, trace::EventType::WpqRelease,
         static_cast<std::int32_t>(id_), 0, region, addr, value,
         trace::packReleaseAux(wpq_.size(), kind)});
}

void
MemController::flushEntryToPm(const PersistEntry &e, bool fallback, Tick now)
{
    ++flushedEntries_;

    auto it = shadows_.find(e.addr);
    if (it != shadows_.end()) {
        // Tainted address: record the write; PM itself only holds the
        // newest-region value (an older in-flight store arriving after a
        // younger fallback write must not clobber it).
        Shadow &sh = it->second;
        sh.writes.emplace_back(e.region, e.value);
        if (fallback)
            ++fallbackFlushes_;
        if (e.region >= sh.maxRegion) {
            sh.maxRegion = e.region;
            shadowPruneQ_.emplace(sh.maxRegion, e.addr);
            traceEvent(fallback ? 1 : 0, e.addr, e.value, e.region, now);
            pm_.write(e.addr, e.value);
        } else {
            traceEvent(2, e.addr, e.value, e.region, now);
        }
        return;
    }

    if (fallback) {
        // First out-of-order write to this address: capture the
        // committed pre-image before tainting it.
        Shadow sh;
        sh.base = pm_.read(e.addr);
        sh.maxRegion = e.region;
        sh.writes.emplace_back(e.region, e.value);
        shadows_.emplace(e.addr, std::move(sh));
        shadowPruneQ_.emplace(e.region, e.addr);
        ++fallbackFlushes_;
    }
    if (!fallback && cfg_.gatingEnabled)
        state(e.region).normalFlushStarted = true;
    traceEvent(fallback ? 1 : 0, e.addr, e.value, e.region, now);
    pm_.write(e.addr, e.value);
}

bool
MemController::truncationHazard(RegionId b) const
{
    // A region >= b already committed: its writes are final by contract.
    if (flushId_ > b)
        return true;
    // A normal flush of a region >= b reached PM directly (not through
    // an undo shadow): that write survives crashFinish regardless of
    // where the drain cursor stops, so truncating before it is unsound.
    for (const auto &[region, st] : regions_) {
        if (region >= b && st.normalFlushStarted)
            return true;
    }
    return false;
}

void
MemController::finishLocalFlush(RegionId r, Tick now)
{
    RegionState &st = state(r);
    if (st.localFlushDone)
        return;
    st.localFlushDone = true;
    st.flushAcks.set(id_);
    trace::emitIf<trace::Category::Wpq>(
        cfg_.sink,
        {now, trace::EventType::WpqDrainDone,
         static_cast<std::int32_t>(id_), 0, r, 0, 0, wpq_.size()});
    sendToPeers(McMsg::Type::FlushAck, r, now);
    maybeAdvanceFlushId(now);
}

void
MemController::tick(Tick now)
{
    if (!cfg_.gatingEnabled) {
        // Plain FIFO persist buffer: drain the head at the PM write rate.
        if (now >= nextDrainTick_ && !wpq_.empty()) {
            for (unsigned b = 0; b < cfg_.drainBurst && !wpq_.empty(); ++b)
                flushEntryToPm(*wpq_.popFront(), false, now);
            nextDrainTick_ = now + cfg_.drainInterval;
        }
        return;
    }

    if (cfg_.oracle) {
        cfg_.oracle->onWpqSample(id_, wpq_.size(), cfg_.wpqEntries,
                                 fallbackActive_, now);
    }

    // Test-only fault injection: push one store of a region whose
    // boundary has not reached us out to PM as if it were a normal
    // in-order flush. A live oracle must flag this as an unclosed-region
    // leak; nothing else in the protocol is perturbed afterwards.
    if (cfg_.faultReleaseEarly && !faultFired_) {
        RegionId victim = wpq_.minRegion();
        auto vit = regions_.find(victim);
        bool arrived = (vit != regions_.end() && vit->second.bdryArrived);
        if (victim != invalidRegion && !arrived) {
            if (auto e = wpq_.popRegion(victim)) {
                faultFired_ = true;
                flushEntryToPm(*e, false, now);
            }
        }
    }

    // Skip past ready regions with no local entries (no drain cost).
    while (ready(drainCursor_) && !wpq_.hasRegion(drainCursor_)) {
        bool may_advance = true;
        if (cfg_.strictFlushAcks)
            may_advance = flushAcksComplete(state(drainCursor_));
        finishLocalFlush(drainCursor_, now);
        if (!may_advance)
            return;
        ++drainCursor_;
        pruneCommittedShadows();
    }

    if (now < nextDrainTick_)
        return;

    RegionId r = drainCursor_;
    if (ready(r)) {
        bool flushed = false;
        for (unsigned b = 0; b < cfg_.drainBurst; ++b) {
            if (auto e = wpq_.popRegion(r)) {
                flushEntryToPm(*e, false, now);
                flushed = true;
            } else {
                break;
            }
        }
        if (flushed)
            nextDrainTick_ = now + cfg_.drainInterval;
        if (!wpq_.hasRegion(r))
            finishLocalFlush(r, now);
        return;
    }

    // Region r is not yet flush-eligible. If the WPQ has filled and r's
    // boundary has not even arrived, the persist paths may be blocked on
    // us: enter the undo-logged overflow fallback (§IV-D). The awaited
    // region's own entries go first; when it has none here, the oldest
    // region present is flushed instead — that is what unblocks the FIFO
    // paths carrying the missing boundary. Entries of the oldest present
    // region can never conflict with an older entry still in this WPQ,
    // and conflicts with late-arriving older in-flight entries are
    // absorbed by the undo pre-image update in flushEntryToPm().
    auto it = regions_.find(r);
    bool bdry_here = (it != regions_.end() && it->second.bdryArrived);
    if (wpq_.full() && !bdry_here) {
        fallbackActive_ = true;
        RegionId victim = wpq_.hasRegion(r) ? r : wpq_.minRegion();
        if (victim != invalidRegion) {
            if (auto e = wpq_.popRegion(victim)) {
                flushEntryToPm(*e, true, now);
                nextDrainTick_ = now + cfg_.drainInterval;
            }
        }
    }
}

Tick
MemController::nextActiveTick(Tick now) const
{
    if (!cfg_.gatingEnabled) {
        // Plain FIFO: the head drains at the next drain slot.
        if (wpq_.empty())
            return maxTick;
        return std::max(now, nextDrainTick_);
    }
    if (cfg_.oracle != nullptr)
        return now;  // tick() samples the oracle every cycle
    if (cfg_.faultReleaseEarly && !faultFired_ && !wpq_.empty())
        return now;  // the injected early release happens in tick()
    if (ready(drainCursor_)) {
        // Entry drains are paced by the drain timer; cursor skips over
        // ready-but-entryless regions (and their flush-ACK exchange)
        // happen unconditionally at the top of tick().
        if (!wpq_.hasRegion(drainCursor_))
            return now;
        return std::max(now, nextDrainTick_);
    }
    // Not ready: only the WPQ-full deadlock fallback (awaited boundary
    // not yet arrived) can make progress, at the next drain slot. Any
    // other transition requires an inbound message or WPQ insertion —
    // external stimuli by the fast-forward contract.
    auto it = regions_.find(drainCursor_);
    bool bdry_here = (it != regions_.end() && it->second.bdryArrived);
    if (wpq_.full() && !bdry_here)
        return std::max(now, nextDrainTick_);
    return maxTick;
}

MemController::LoadResult
MemController::serveLoadMiss(Addr addr, Tick now)
{
    (void)now;
    LoadResult res;
    ++loadMisses_;

    if (cfg_.dramCacheEnabled) {
        auto dc = dramCache_.access(addr, false);
        // Queue behind earlier fetches: DDR bandwidth.
        Tick start = std::max(now, nextDcReadSlot_);
        nextDcReadSlot_ = start + cfg_.dcReadInterval;
        res.latency += (start - now) + dramCache_.latency();
        if (dc.hit) {
            res.dramCacheHit = true;
            return res;
        }
        // Dirty DRAM-cache evictions: silently dropped under WSP (the
        // persist path is the only write path to PM); timing-free here.
    }

    // PM read with the WPQ CAM searched in parallel (§IV-H). The CAM
    // latency (2 cycles) is hidden by the PM access; on a hit the load
    // must wait for the entry to flush and then re-read PM. PM media
    // bandwidth is far below DDR's, so fetches queue harder here.
    Tick pm_start = std::max(now, nextPmReadSlot_);
    nextPmReadSlot_ = pm_start + cfg_.pmReadInterval;
    res.latency += (pm_start - now) + cfg_.pmReadCycles;
    if (cfg_.gatingEnabled && wpq_.search(addr & ~7ull)) {
        res.wpqHit = true;
        ++wpqLoadHits_;
        res.latency += cfg_.pmWriteCycles + cfg_.pmReadCycles;
    }
    return res;
}

bool
MemController::crashStep(Tick now)
{
    // A finished drain is terminal for this power cycle: a re-entered
    // drain loop (failure storm) sees an immediately quiescent MC.
    if (crashFinished_)
        return false;
    // Injected MC stall: the controller makes no progress this
    // quiescence iteration but still reports activity, so the drain loop
    // keeps iterating and completes once the stall budget is absorbed.
    if (stallIters_ > 0) {
        --stallIters_;
        ++stallsAbsorbed_;
        return true;
    }
    bool progress = false;
    while (drainCursor_ < corruptBarrier_ && ready(drainCursor_)) {
        RegionId r = drainCursor_;
        while (auto e = wpq_.popRegion(r)) {
            flushEntryToPm(*e, false, now);
            progress = true;
        }
        if (!state(r).localFlushDone) {
            finishLocalFlush(r, now);
            progress = true;
        }
        ++drainCursor_;
        pruneCommittedShadows();
    }
    return progress;
}

void
MemController::pruneCommittedShadows()
{
    // maxRegion is the max over the shadow's writes, so "every write
    // committed" is exactly "maxRegion < drainCursor_". Pop candidates
    // in maxRegion order; a candidate whose shadow has since seen a
    // newer write (or was already erased) is stale — the newer write
    // pushed its own entry.
    while (!shadowPruneQ_.empty() &&
           shadowPruneQ_.top().first < drainCursor_) {
        Addr addr = shadowPruneQ_.top().second;
        shadowPruneQ_.pop();
        auto it = shadows_.find(addr);
        if (it != shadows_.end() && it->second.maxRegion < drainCursor_) {
            // PM already holds the newest-region (hence newest committed)
            // value; the address is clean again.
            shadows_.erase(it);
        }
    }
}

void
MemController::crashFinish(Tick now)
{
    // Idempotent: shadow resolution and WPQ truncation happen exactly
    // once per power cycle even if an interrupted drain is re-entered.
    if (crashFinished_)
        return;
    crashFinished_ = true;
    // Resolve every fallback-tainted address to the newest write of a
    // committed region — the crash drain advanced the cursor past the
    // committed prefix, so regions >= drainCursor_ are unpersisted and
    // their (possibly chronologically interleaved) writes roll back.
    for (const auto &[addr, sh] : shadows_) {
        std::uint64_t value = sh.base;
        RegionId best = 0;
        bool found = false;
        for (const auto &[region, v] : sh.writes) {
            if (region < drainCursor_ && (!found || region >= best)) {
                best = region;
                value = v;
                found = true;
            }
        }
        traceEvent(3, addr, value, best, now);
        pm_.write(addr, value);
    }
    shadows_.clear();
    shadowPruneQ_ = {};
    wpq_.clear();
    if (cfg_.oracle)
        cfg_.oracle->onCrashFinish(id_, drainCursor_,
                                   detectedUnrecoverable_);
}

} // namespace mem
} // namespace lwsp
