/**
 * @file
 * Set-associative cache timing model (tags only; data is functional).
 *
 * Supports the buffer-snooping victim-selection policies of paper §IV-G /
 * §V-F3: on a miss needing an eviction, an external filter can veto dirty
 * victims whose line conflicts with the front-end buffer. Depending on the
 * policy the cache scans all ways (Full), half the ways (Half), or refuses
 * to evict (Zero), in which case the access reports `blocked` and the core
 * must retry.
 */

#ifndef LWSP_MEM_CACHE_HH
#define LWSP_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/intmath.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace lwsp {
namespace mem {

/** How many ways the snoop-conflict victim scan may inspect. */
enum class VictimPolicy : std::uint8_t
{
    Full,  ///< scan every way for a conflict-free victim (default)
    Half,  ///< scan only half the ways
    Zero,  ///< never divert: block until the conflicting entry drains
    None,  ///< snooping disabled entirely (the stale-load configuration)
};

struct CacheConfig
{
    std::size_t sizeBytes = 64 * 1024;
    unsigned assoc = 8;
    unsigned latency = 4;          ///< hit latency in cycles
    unsigned lineBytes = cachelineBytes;
};

class Cache
{
  public:
    struct AccessResult
    {
        bool hit = false;
        bool blocked = false;       ///< Zero-policy conflict: retry later
        bool evictedDirty = false;  ///< a dirty line was displaced
        Addr evictedLine = invalidAddr;
        bool victimDiverted = false; ///< LRU victim vetoed, another chosen
    };

    Cache(std::string name, const CacheConfig &cfg);

    /**
     * Access @p addr; allocate on miss. @p is_write marks the line dirty.
     * Applies the eviction filter (if any) when displacing a dirty line.
     */
    AccessResult access(Addr addr, bool is_write);

    /** @return true if the line containing @p addr is present. */
    bool present(Addr addr) const;

    /** Drop the line containing @p addr, if present (no writeback). */
    void invalidate(Addr addr);

    /** Drop every line (power failure: caches are volatile). */
    void invalidateAll();

    /**
     * Install the snoop filter: @p can_evict returns false when the dirty
     * line's data still sits in the front-end buffer (buffer conflict).
     */
    void
    setEvictionFilter(VictimPolicy policy,
                      std::function<bool(Addr line)> can_evict)
    {
        policy_ = policy;
        canEvict_ = std::move(can_evict);
    }

    unsigned latency() const { return cfg_.latency; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t bufferConflicts() const { return bufferConflicts_; }
    std::uint64_t divertedVictims() const { return divertedVictims_; }
    double
    missRate() const
    {
        std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(misses_) / total : 0.0;
    }

    void
    resetStats()
    {
        hits_ = misses_ = bufferConflicts_ = divertedVictims_ = 0;
    }

    const std::string &name() const { return name_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    Addr lineAddr(Addr addr) const { return alignDown(addr, cfg_.lineBytes); }
    std::size_t setIndex(Addr addr) const;

    std::string name_;
    CacheConfig cfg_;
    std::size_t numSets_;
    std::vector<Line> lines_;  // numSets_ * assoc, row-major by set
    std::uint64_t clock_ = 0;  // LRU stamp source

    VictimPolicy policy_ = VictimPolicy::None;
    std::function<bool(Addr)> canEvict_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t bufferConflicts_ = 0;
    std::uint64_t divertedVictims_ = 0;
};

} // namespace mem
} // namespace lwsp

#endif // LWSP_MEM_CACHE_HH
