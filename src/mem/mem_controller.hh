/**
 * @file
 * Integrated memory controller with LightWSP's gated, battery-backed WPQ.
 *
 * The controller realises lazy region-level persist ordering (LRPO,
 * paper §III-B/IV-B): it learns the execution order of regions from
 * boundary broadcasts, exchanges bdry-ACKs and flush-ACKs with its peer
 * MCs, and releases WPQ entries to PM strictly in region-ID order. It also
 * owns this channel's DRAM cache (Optane-memory-mode style) and serves
 * LLC load misses with the parallel PM-read + WPQ CAM search of §IV-H.
 *
 * Deadlock resolution (§IV-D): when the WPQ fills while the boundary of
 * the region being drained has not arrived, the controller flushes that
 * region's entries with undo logging and accepts only that region's
 * stores (allowing soft overflow) until the boundary shows up.
 */

#ifndef LWSP_MEM_MEM_CONTROLLER_HH
#define LWSP_MEM_MEM_CONTROLLER_HH

#include <functional>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "common/bitset.hh"
#include "common/stats.hh"
#include "mem/cache.hh"
#include "mem/mem_image.hh"
#include "mem/persist.hh"
#include "mem/wpq.hh"
#include "sim/clocked.hh"

namespace lwsp {
namespace noc {
class Noc;
} // namespace noc

namespace trace {
class TraceSink;
} // namespace trace

namespace mem {

class LrpoOracle;

struct McConfig
{
    unsigned numMcs = 2;
    std::size_t wpqEntries = 64;
    Tick pmReadCycles = 350;        ///< 175 ns at 2 GHz
    Tick pmWriteCycles = 180;       ///< 90 ns at 2 GHz
    Tick drainInterval = 1;         ///< cycles between WPQ drain rounds
    unsigned drainBurst = 2;        ///< entries flushed per round
    Tick camCycles = 2;             ///< WPQ CAM search (hidden by PM read)
    bool dramCacheEnabled = true;   ///< false models the ideal-PSP baseline
    CacheConfig dramCache{16ull * 1024 * 1024, 1, 100};
    /**
     * Read-bandwidth modelling: minimum cycles between successive line
     * fetches served by the DRAM cache (DDR4) and by PM media. The gap
     * between the two is what makes streaming workloads suffer without a
     * DRAM cache (the PSP-vs-WSP axis of Fig. 9).
     */
    Tick dcReadInterval = 3;        ///< ~38 GB/s DDR4 per MC
    Tick pmReadInterval = 10;       ///< ~13 GB/s Optane reads per MC
    Tick pmWriteInterval = 12;      ///< Optane line-write occupancy per MC
    /**
     * true  = paper-literal commit: region k+1 flushes only after region
     *         k's flush-ACK round completes on every MC;
     * false = relaxed (default): flush k+1 once its bdry-ACKs complete and
     *         all local entries of k are out (crash drain still completes
     *         any fully-arrived region, so consistency is preserved).
     */
    bool strictFlushAcks = false;
    /** false = plain FIFO drain with no region gating (non-WSP schemes). */
    bool gatingEnabled = true;
    /**
     * ACKs ride a tree aggregation fabric (noc/topology.hh): instead of
     * all-to-all peer unicasts the MC hands a single ACK to its leaf
     * uplink (`Noc::ackUp`) and learns round completion from the root's
     * BdryAllAcked / FlushAllAcked announcements. Set by System when the
     * configured topology is a tree with more than one MC; forced off
     * for a single MC (a one-leaf tree degrades to flat).
     */
    bool treeAcks = false;
    /**
     * When non-null, every protocol event (boundary arrival, ACK, WPQ
     * insert, PM release, commit, crash drain) is reported to the LRPO
     * invariant oracle. Null (the default) keeps the hooks zero-cost.
     */
    LrpoOracle *oracle = nullptr;
    /**
     * When non-null, protocol events (WPQ enqueue/release/drain,
     * boundary arrival/ACK, region commit) are emitted to the telemetry
     * sink. Null (the default) keeps the hooks zero-cost, exactly like
     * the oracle pointer above.
     */
    trace::TraceSink *sink = nullptr;
    /**
     * Test-only fault knob: release one store of a not-yet-closed region
     * to PM ahead of its boundary, without undo logging. Exists solely to
     * prove the oracle's ordering checkers are live — never enable
     * outside oracle-liveness tests.
     */
    bool faultReleaseEarly = false;
};

class MemController : public Clocked, public McEndpoint
{
  public:
    MemController(McId id, const McConfig &cfg, MemImage &pm,
                  noc::Noc &noc_net);

    McId id() const { return id_; }

    // ---- Persist-path side -------------------------------------------
    /**
     * @return true if @p e can enter the WPQ this cycle. Full WPQs decline
     * everything except (in deadlock fallback) the draining region's own
     * stores, which may softly overflow.
     */
    bool canAccept(const PersistEntry &e) const;

    /** Insert @p e; caller must have checked canAccept(). */
    void accept(const PersistEntry &e, Tick now);

    // ---- Control plane ------------------------------------------------
    void receive(const McMsg &msg, Tick now) override;

    void tick(Tick now) override;
    Tick nextActiveTick(Tick now) const override;

    // ---- Load path ------------------------------------------------------
    struct LoadResult
    {
        Tick latency = 0;
        bool wpqHit = false;
        bool dramCacheHit = false;
    };

    /** Serve an LLC (L2) miss for @p addr: DRAM cache, then PM + WPQ CAM. */
    LoadResult serveLoadMiss(Addr addr, Tick now);

    /**
     * Account direct PM write-line traffic (ideal-PSP mode: with no DRAM
     * cache, store lines hit the PM device and delay its reads).
     */
    void
    pmWriteTraffic(Tick now)
    {
        nextPmReadSlot_ =
            std::max(now, nextPmReadSlot_) + cfg_.pmWriteInterval;
    }

    // ---- Power failure ---------------------------------------------------
    /**
     * One quiescence iteration of the recovery drain (paper §IV-F steps
     * 2-5): flush every ready region. @return true if progress was made.
     *
     * Re-entrant: the drain cursor and WPQ are battery-backed, so a
     * power failure between iterations simply resumes here — already-
     * drained regions are skipped (the cursor only advances) and a call
     * after crashFinish() reports no progress.
     */
    bool crashStep(Tick now);

    /**
     * Step 6 + undo restore: discard unpersisted entries. Idempotent —
     * a second call is a no-op, so a failure storm that re-runs the
     * drain epilogue cannot roll PM back twice or double-count with the
     * oracle.
     */
    void crashFinish(Tick now = 0);

    /** True once crashFinish() has run (the drain is fully over). */
    bool crashFinished() const { return crashFinished_; }

    // ---- Fault handling (crash-time ECC damage, §IV-F hardening) ---------
    /**
     * Smallest WPQ region with an ECC-damaged entry (bit flip / torn
     * write detected by the battery-backed queue's ECC); invalidRegion
     * when the queue is clean.
     */
    RegionId minDamagedRegion() const { return wpq_.minDamagedRegion(); }

    /**
     * Would truncating the crash drain before region @p b lose writes
     * that already reached PM without undo logging? True when a region
     * >= @p b committed here or had a normal (non-shadowed) flush start:
     * such writes cannot be rolled back, so stopping at @p b would leave
     * PM holding a *partial* suffix — detected-unrecoverable, never a
     * silent truncation.
     */
    bool truncationHazard(RegionId b) const;

    /**
     * Stop the crash drain before region @p b (the globally lowest
     * damaged region): regions >= @p b are discarded as if the power had
     * failed one epoch earlier. @p hazard marks the image unrecoverable
     * (see truncationHazard); the drain still runs so PM lands in a
     * deterministic state, but recovery must refuse the image.
     */
    void
    setCorruptBarrier(RegionId b, bool hazard)
    {
        corruptBarrier_ = std::min(corruptBarrier_, b);
        detectedUnrecoverable_ = detectedUnrecoverable_ || hazard;
    }

    /** Absorb @p iters crash-drain quiescence iterations (MC stall). */
    void setCrashStall(unsigned iters) { stallIters_ = iters; }

    RegionId corruptBarrier() const { return corruptBarrier_; }
    bool detectedUnrecoverable() const { return detectedUnrecoverable_; }
    unsigned crashStallsAbsorbed() const { return stallsAbsorbed_; }

    /** Mutable WPQ access for the fault layer's crash-time damage. */
    Wpq &wpqMutable() { return wpq_; }

    // ---- Introspection ---------------------------------------------------
    RegionId flushId() const { return flushId_; }
    RegionId drainCursor() const { return drainCursor_; }
    const Wpq &wpq() const { return wpq_; }
    Cache &dramCache() { return dramCache_; }
    bool inFallback() const { return fallbackActive_; }

    /**
     * Test/diagnostic hook invoked on every PM-affecting event:
     * kind 0 = normal flush, 1 = fallback flush, 2 = skipped (absorbed
     * into an undo pre-image), 3 = crash undo restore.
     */
    using FlushTraceHook =
        std::function<void(int kind, Addr addr, std::uint64_t value,
                           RegionId region)>;
    void setFlushTraceHook(FlushTraceHook hook)
    {
        traceHook_ = std::move(hook);
    }

    void
    resetStats()
    {
        wpqLoadHits_ = loadMisses_ = flushedEntries_ = 0;
        fallbackFlushes_ = overflowEvents_ = regionsCommitted_ = 0;
        maxWpqOccupancy_ = 0;
        wpqOccupancy_.reset();
        bcastLatency_.reset();
        wpq_.resetStats();
        dramCache_.resetStats();
    }

    std::uint64_t wpqLoadHits() const { return wpqLoadHits_; }
    std::uint64_t loadMisses() const { return loadMisses_; }
    std::uint64_t flushedEntries() const { return flushedEntries_; }
    std::uint64_t fallbackFlushes() const { return fallbackFlushes_; }
    std::uint64_t overflowEvents() const { return overflowEvents_; }
    std::uint64_t regionsCommitted() const { return regionsCommitted_; }
    std::size_t maxWpqOccupancy() const { return maxWpqOccupancy_; }

    /** WPQ occupancy sampled at every enqueue (fig 11/18 input). */
    const stats::Distribution &wpqOccupancy() const
    {
        return wpqOccupancy_;
    }

    /**
     * Cycles from a boundary's arrival at this MC to its full bdry-ACK
     * round (when the region becomes flush-eligible, §IV-B).
     */
    const stats::Distribution &bcastLatency() const
    {
        return bcastLatency_;
    }

  private:
    struct RegionState
    {
        bool bdryArrived = false;
        DynBitset bdryAcks;           ///< per-peer bdry-ACKs (flat fabric)
        DynBitset flushAcks;          ///< flush-ACKs incl. self (flat)
        bool allBdryAcked = false;    ///< root announcement (tree fabric)
        bool allFlushAcked = false;   ///< root announcement (tree fabric)
        bool localFlushDone = false;
        bool bdryAckSent = false;
        Tick bdryArrivedAt = 0;       ///< stats-only (bcastLatency)
        /**
         * A normal (non-undo-logged) flush of this region reached PM.
         * Such writes cannot be rolled back, so a corruption barrier at
         * or below this region is a truncation hazard.
         */
        bool normalFlushStarted = false;
    };

    RegionState &
    state(RegionId r)
    {
        RegionState &st = regions_[r];
        if (st.bdryAcks.size() == 0) {
            st.bdryAcks.reset(cfg_.numMcs);
            st.flushAcks.reset(cfg_.numMcs);
        }
        return st;
    }

    /** All peers' bdry-ACKs plus our own arrival: safe to flush. */
    bool ready(RegionId r) const;

    /** The round is complete: every peer's bdry-ACK has been observed. */
    bool
    bdryAcksComplete(const RegionState &st) const
    {
        return cfg_.treeAcks ? st.allBdryAcked
                             : st.bdryAcks.containsAll(peersAll_);
    }

    /** Every MC's flush-ACK for the region has been observed. */
    bool
    flushAcksComplete(const RegionState &st) const
    {
        return cfg_.treeAcks ? st.allFlushAcked
                             : st.flushAcks.containsAll(peersAll_);
    }

    void sendToPeers(McMsg::Type type, RegionId r, Tick now);

    /** Mark region @p r locally flushed; exchange flush-ACKs; advance. */
    void finishLocalFlush(RegionId r, Tick now);

    void maybeAdvanceFlushId(Tick now);

    /**
     * Release one entry to PM. Fallback flushes are undo-logged; any
     * flush (normal or fallback) of an entry older than a fallback write
     * to the same address updates that write's undo pre-image instead of
     * touching PM, so region-ordered final values and crash restoration
     * both stay correct despite the out-of-order fallback.
     */
    void flushEntryToPm(const PersistEntry &e, bool fallback, Tick now);

    /** Forward a PM-affecting event to the trace hook and the oracle. */
    void traceEvent(int kind, Addr addr, std::uint64_t value,
                    RegionId region, Tick now);

    /**
     * De-taint addresses whose shadow writes are all committed. A shadow
     * is erasable exactly when its maxRegion (the max over its writes'
     * regions) has dropped below the drain cursor, so the candidates are
     * kept in a lazy min-heap keyed by maxRegion: each cursor advance
     * pops only the shadows that just became erasable instead of
     * rescanning every live shadow's write list (the former O(shadows *
     * writes) hot spot that dominated high-thread-count runs). Entries
     * whose shadow has since grown a newer maxRegion are stale and
     * skipped — the growth pushed a fresh entry.
     */
    void pruneCommittedShadows();

    McId id_;
    McConfig cfg_;
    MemImage &pm_;
    noc::Noc &noc_;
    DynBitset peersAll_;  ///< every MC id except our own
    Wpq wpq_;
    Cache dramCache_;

    std::map<RegionId, RegionState> regions_;
    RegionId drainCursor_ = 1;  ///< next region to drain locally
    RegionId flushId_ = 1;      ///< persistent register (committed prefix)
    Tick nextDrainTick_ = 0;
    Tick nextDcReadSlot_ = 0;   ///< DRAM-cache read-bandwidth cursor
    Tick nextPmReadSlot_ = 0;   ///< PM read-bandwidth cursor

    /**
     * Battery-backed shadow of a fallback-tainted address: the pre-taint
     * value plus every subsequent write (region, value) in flush order.
     * At a crash the address resolves to the newest write of a committed
     * region (or the base value when none committed) — uncommitted
     * fallback writes are thereby rolled back and committed writes that
     * were chronologically overtaken are reinstated.
     */
    struct Shadow
    {
        std::uint64_t base = 0;
        RegionId maxRegion = 0;  ///< newest region that reached PM
        std::vector<std::pair<RegionId, std::uint64_t>> writes;
    };

    bool fallbackActive_ = false;
    bool faultFired_ = false;   ///< faultReleaseEarly one-shot latch
    std::map<Addr, Shadow> shadows_;
    /** Prune candidates: (shadow maxRegion at push time, address). */
    std::priority_queue<std::pair<RegionId, Addr>,
                        std::vector<std::pair<RegionId, Addr>>,
                        std::greater<>>
        shadowPruneQ_;

    // Crash-time fault-handling state (inert without fault injection).
    RegionId corruptBarrier_ = invalidRegion;
    bool detectedUnrecoverable_ = false;
    unsigned stallIters_ = 0;
    unsigned stallsAbsorbed_ = 0;
    bool crashFinished_ = false;  ///< crashFinish() already ran

    FlushTraceHook traceHook_;
    stats::Distribution wpqOccupancy_;
    stats::Distribution bcastLatency_{0, 4096, 32};
    std::uint64_t wpqLoadHits_ = 0;
    std::uint64_t loadMisses_ = 0;
    std::uint64_t flushedEntries_ = 0;
    std::uint64_t fallbackFlushes_ = 0;
    std::uint64_t overflowEvents_ = 0;
    std::uint64_t regionsCommitted_ = 0;
    std::size_t maxWpqOccupancy_ = 0;
};

} // namespace mem
} // namespace lwsp

#endif // LWSP_MEM_MEM_CONTROLLER_HH
