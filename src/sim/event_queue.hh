/**
 * @file
 * Indexed binary min-heap over component wakeup times.
 *
 * Each registered component owns one permanent slot, keyed by the cycle
 * at which it next wants to tick. Ties break on the slot index, so all
 * components due in the same cycle come off the heap in registration
 * order — exactly the order the legacy cycle-stepped engine ticks them,
 * which is what keeps the two engines bit-identical.
 *
 * Slots are never removed: re-arming a component is a decrease/increase
 * key on its slot (O(log n)), and querying the earliest wakeup is O(1).
 */

#ifndef LWSP_SIM_EVENT_QUEUE_HH
#define LWSP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace lwsp {

class EventQueue
{
  public:
    /** Register a new slot armed at @p tick. @return its index. */
    std::uint32_t
    add(Tick tick)
    {
        auto idx = static_cast<std::uint32_t>(key_.size());
        key_.push_back(tick);
        pos_.push_back(static_cast<std::uint32_t>(heap_.size()));
        heap_.push_back(idx);
        siftUp(pos_[idx]);
        return idx;
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Earliest armed tick; requires non-empty. */
    Tick
    topTick() const
    {
        LWSP_ASSERT(!heap_.empty(), "topTick on empty queue");
        return key_[heap_.front()];
    }

    /** Slot index owning the earliest tick; requires non-empty. */
    std::uint32_t
    topIndex() const
    {
        LWSP_ASSERT(!heap_.empty(), "topIndex on empty queue");
        return heap_.front();
    }

    /** Current armed tick of slot @p idx. */
    Tick
    keyOf(std::uint32_t idx) const
    {
        LWSP_ASSERT(idx < key_.size(), "bad slot index");
        return key_[idx];
    }

    /** Re-arm slot @p idx at @p tick (earlier or later than before). */
    void
    set(std::uint32_t idx, Tick tick)
    {
        LWSP_ASSERT(idx < key_.size(), "bad slot index");
        Tick old = key_[idx];
        if (tick == old)
            return;
        key_[idx] = tick;
        if (tick < old)
            siftUp(pos_[idx]);
        else
            siftDown(pos_[idx]);
    }

  private:
    /** Heap order: (tick, index), so same-cycle pops follow
     *  registration order. */
    bool
    before(std::uint32_t a, std::uint32_t b) const
    {
        return key_[a] != key_[b] ? key_[a] < key_[b] : a < b;
    }

    void
    place(std::uint32_t hole, std::uint32_t idx)
    {
        heap_[hole] = idx;
        pos_[idx] = hole;
    }

    void
    siftUp(std::uint32_t hole)
    {
        std::uint32_t idx = heap_[hole];
        while (hole > 0) {
            std::uint32_t parent = (hole - 1) / 2;
            if (!before(idx, heap_[parent]))
                break;
            place(hole, heap_[parent]);
            hole = parent;
        }
        place(hole, idx);
    }

    void
    siftDown(std::uint32_t hole)
    {
        std::uint32_t idx = heap_[hole];
        auto n = static_cast<std::uint32_t>(heap_.size());
        while (true) {
            std::uint32_t child = 2 * hole + 1;
            if (child >= n)
                break;
            if (child + 1 < n && before(heap_[child + 1], heap_[child]))
                ++child;
            if (!before(heap_[child], idx))
                break;
            place(hole, heap_[child]);
            hole = child;
        }
        place(hole, idx);
    }

    std::vector<std::uint32_t> heap_;  ///< heap of slot indices
    std::vector<std::uint32_t> pos_;   ///< slot index -> heap position
    std::vector<Tick> key_;            ///< slot index -> armed tick
};

} // namespace lwsp

#endif // LWSP_SIM_EVENT_QUEUE_HH
