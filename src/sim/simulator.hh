/**
 * @file
 * The top-level clock driver, with two interchangeable engines.
 *
 * Owns no components (they are owned by the System being simulated); holds
 * raw registration pointers plus a wakeup heap with one slot per component.
 *
 * Engines (results are bit-identical, asserted by test_engine):
 *
 *  - Event (default): discrete-event scheduling. Each component's slot in
 *    the wakeup heap is keyed by its own nextActiveTick(); executing a
 *    cycle pops and ticks exactly the due components (registration order
 *    within the cycle, via the heap's (tick, index) key) and re-arms each
 *    from its post-tick self-report. External mutations re-arm through
 *    Clocked::rearm() -> touch(). Idle components cost zero per skipped
 *    cycle, and the per-cycle linear scan over all components is gone
 *    from the hot path entirely.
 *
 *  - Cycle: the legacy engine — tick everyone every cycle, with the
 *    caller optionally fast-forwarding across globally-quiescent windows
 *    via the linear nextActiveTick() scan. Kept selectable
 *    (--engine=cycle) as the ground truth for A/B verification.
 *
 * The linear scan also backs a debug cross-check (LWSP_VERIFY_WAKEUPS=1,
 * or SystemConfig::verifyWakeups): every time the event engine consults
 * the heap it asserts the heap minimum is never later than the full
 * rescan — an early key is just a spurious no-op wakeup, but a late key
 * is a missed event, i.e. a component changed state without re-arming.
 */

#ifndef LWSP_SIM_SIMULATOR_HH
#define LWSP_SIM_SIMULATOR_HH

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/clocked.hh"
#include "sim/event_queue.hh"

namespace lwsp {

/** Which clock driver advances the components. */
enum class SimEngine : std::uint8_t
{
    Event,  ///< discrete-event wakeup heap (default)
    Cycle,  ///< legacy tick-everyone-every-cycle loop
};

constexpr const char *
simEngineName(SimEngine e)
{
    return e == SimEngine::Event ? "event" : "cycle";
}

class Simulator : public Scheduler
{
  public:
    Simulator() = default;

    /** Select the engine; call before the first executeCycle(). */
    void setEngine(SimEngine e) { engine_ = e; }
    SimEngine engine() const { return engine_; }

    /** Enable the heap-vs-rescan cross-check (event engine only). */
    void
    setVerifyWakeups(bool v)
    {
        verify_ = v || std::getenv("LWSP_VERIFY_WAKEUPS") != nullptr;
    }

    /** Register a component; same-cycle ticks follow registration order. */
    void
    add(Clocked *component)
    {
        LWSP_ASSERT(component != nullptr, "null component");
        component->sched_ = this;
        // Armed at the current cycle: every component runs its first
        // tick, matching the cycle engine's unconditional cycle 0.
        component->schedIdx_ = queue_.add(now_);
        components_.push_back(component);
    }

    /** Current cycle (the next cycle to execute). */
    Tick now() const { return now_; }

    /**
     * Earliest cycle >= now() at which any component might act. Event
     * engine: O(1) heap minimum. Cycle engine: the linear rescan over
     * every component (the legacy fast-forward path).
     */
    Tick
    nextEventTick() const
    {
        if (engine_ == SimEngine::Cycle)
            return nextActiveTick();
        Tick next =
            queue_.empty() ? maxTick : std::max(now_, queue_.topTick());
        // A heap key EARLIER than the component's self-report is legal:
        // the component wakes, no-ops (nextActiveTick contract) and
        // re-arms — e.g. the conservative arm-at-registration, or a
        // state change that postponed work without rearm(). A key LATER
        // than the self-report is a missed wakeup: some external
        // mutation advanced the component's schedule without rearm().
        if (verify_ && next > nextActiveTick()) {
            std::uint32_t bad = 0;
            for (std::uint32_t i = 0;
                 i < static_cast<std::uint32_t>(components_.size()); ++i) {
                const Clocked *c = components_[i];
                if (queue_.keyOf(i) >
                    std::max(c->nextActiveTick(now_), now_))
                    bad = i;
            }
            LWSP_ASSERT(false,
                        "missed wakeup: component ", bad, " heap key ",
                        queue_.keyOf(bad), " is past its self-reported ",
                        components_[bad]->nextActiveTick(now_),
                        " at cycle ", now_,
                        " — state changed without rearm()");
        }
        return next;
    }

    /**
     * Execute one cycle. Event engine: tick exactly the due components,
     * re-arming each afterwards; a component touched mid-cycle by an
     * already-ticked peer joins this cycle iff its slot index is still
     * ahead of the tick in progress (see touch()). Cycle engine: tick
     * everyone.
     */
    void
    executeCycle()
    {
        const Tick t = now_;
        if (engine_ == SimEngine::Cycle) {
            for (auto *c : components_)
                c->tick(t);
            ++now_;
            return;
        }
        inCycle_ = true;
        while (!queue_.empty() && queue_.topTick() <= t) {
            curIdx_ = queue_.topIndex();
            Clocked *c = components_[curIdx_];
            c->tick(t);
            // Self-touches during the tick are folded into this re-arm;
            // the contract guarantees the result is strictly past t.
            Tick next = c->nextActiveTick(t + 1);
            LWSP_ASSERT(next > t, "component re-armed in the past");
            queue_.set(curIdx_, next);
        }
        inCycle_ = false;
        ++now_;
    }

    /**
     * Fast-forward the clock to @p target without ticking anything. Only
     * legal when every component is provably inert over the skipped
     * window (target <= nextEventTick()).
     */
    void
    advanceTo(Tick target)
    {
        LWSP_ASSERT(target >= now_, "advanceTo into the past");
        now_ = target;
    }

    /**
     * Linear minimum over every component's nextActiveTick(). The cycle
     * engine's fast-forward path, and the event engine's cross-check
     * oracle — no longer on the event engine's hot path.
     */
    Tick
    nextActiveTick() const
    {
        Tick next = maxTick;
        for (const auto *c : components_) {
            next = std::min(next, c->nextActiveTick(now_));
            if (next <= now_)
                return now_;
        }
        return std::max(next, now_);
    }

    // ---- Scheduler --------------------------------------------------------
    /**
     * Re-arm @p c after an external mutation (Clocked::rearm()).
     *
     * Cycle-position rules keep the event engine bit-identical to
     * ticking everyone in registration order:
     *  - outside a cycle, re-evaluate from the current cycle;
     *  - mid-cycle, a component *ahead* of the tick in progress may
     *    still join this cycle (the cycle engine would tick it after
     *    the mutating peer);
     *  - a component at or *behind* the tick in progress re-evaluates
     *    from the next cycle: the cycle engine already ran (or provably
     *    no-op'd) its slot this cycle before the mutation happened.
     */
    void
    touch(Clocked &c) override
    {
        if (engine_ != SimEngine::Event)
            return;
        std::uint32_t idx = c.schedIdx_;
        Tick base = now_;
        if (inCycle_) {
            if (idx == curIdx_)
                return;  // own tick: the post-tick re-arm covers it
            if (idx < curIdx_)
                base = now_ + 1;
        }
        queue_.set(idx, std::max(c.nextActiveTick(base), base));
    }

  private:
    Tick now_ = 0;
    std::vector<Clocked *> components_;
    EventQueue queue_;
    SimEngine engine_ = SimEngine::Event;
    bool verify_ = false;
    bool inCycle_ = false;
    std::uint32_t curIdx_ = 0;
};

} // namespace lwsp

#endif // LWSP_SIM_SIMULATOR_HH
