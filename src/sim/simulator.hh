/**
 * @file
 * The top-level cycle driver.
 *
 * Owns no components (they are owned by the System being simulated); holds
 * raw registration pointers and advances them in registration order each
 * cycle. Supports bounded runs, run-until-predicate, and scheduling a power
 * failure at an arbitrary cycle for crash-injection experiments.
 */

#ifndef LWSP_SIM_SIMULATOR_HH
#define LWSP_SIM_SIMULATOR_HH

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/clocked.hh"

namespace lwsp {

class Simulator
{
  public:
    Simulator() = default;

    /** Register a component; ticked in registration order. */
    void
    add(Clocked *component)
    {
        LWSP_ASSERT(component != nullptr, "null component");
        components_.push_back(component);
    }

    /** Current cycle (the next cycle to execute). */
    Tick now() const { return now_; }

    /** Advance exactly one cycle. */
    void
    step()
    {
        for (auto *c : components_)
            c->tick(now_);
        ++now_;
    }

    /**
     * Earliest cycle >= now() at which any component might act (see
     * Clocked::nextActiveTick). Equal to now() whenever some component is
     * active this cycle; maxTick when every component is inert until an
     * external stimulus.
     */
    Tick
    nextActiveTick() const
    {
        Tick next = maxTick;
        for (const auto *c : components_) {
            next = std::min(next, c->nextActiveTick(now_));
            if (next <= now_)
                return now_;
        }
        return std::max(next, now_);
    }

    /**
     * Fast-forward the clock to @p target without ticking anything. Only
     * legal when every component is provably inert over the skipped
     * window (target <= nextActiveTick()).
     */
    void
    advanceTo(Tick target)
    {
        LWSP_ASSERT(target >= now_, "advanceTo into the past");
        now_ = target;
    }

    /**
     * Run until @p done returns true or @p max_cycles elapse.
     *
     * The predicate is a template parameter so the per-cycle call inlines
     * instead of going through std::function's type-erased dispatch (it
     * sits on the hottest loop in the simulator).
     *
     * @return true if the predicate fired, false on cycle-limit exhaustion
     */
    template <typename Pred>
    bool
    runUntil(Pred &&done, Tick max_cycles)
    {
        Tick limit = now_ + max_cycles;
        while (now_ < limit) {
            if (done())
                return true;
            step();
        }
        return done();
    }

  private:
    Tick now_ = 0;
    std::vector<Clocked *> components_;
};

} // namespace lwsp

#endif // LWSP_SIM_SIMULATOR_HH
