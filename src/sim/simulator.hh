/**
 * @file
 * The top-level cycle driver.
 *
 * Owns no components (they are owned by the System being simulated); holds
 * raw registration pointers and advances them in registration order each
 * cycle. Supports bounded runs, run-until-predicate, and scheduling a power
 * failure at an arbitrary cycle for crash-injection experiments.
 */

#ifndef LWSP_SIM_SIMULATOR_HH
#define LWSP_SIM_SIMULATOR_HH

#include <functional>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/clocked.hh"

namespace lwsp {

class Simulator
{
  public:
    Simulator() = default;

    /** Register a component; ticked in registration order. */
    void
    add(Clocked *component)
    {
        LWSP_ASSERT(component != nullptr, "null component");
        components_.push_back(component);
    }

    /** Current cycle (the next cycle to execute). */
    Tick now() const { return now_; }

    /** Advance exactly one cycle. */
    void
    step()
    {
        for (auto *c : components_)
            c->tick(now_);
        ++now_;
    }

    /**
     * Run until @p done returns true or @p max_cycles elapse.
     *
     * @return true if the predicate fired, false on cycle-limit exhaustion
     */
    bool
    runUntil(const std::function<bool()> &done, Tick max_cycles)
    {
        Tick limit = now_ + max_cycles;
        while (now_ < limit) {
            if (done())
                return true;
            step();
        }
        return done();
    }

  private:
    Tick now_ = 0;
    std::vector<Clocked *> components_;
};

} // namespace lwsp

#endif // LWSP_SIM_SIMULATOR_HH
