/**
 * @file
 * Cycle-stepped component interface.
 *
 * LightWSP's queues (store buffer, front-end buffer, persist path, WPQ, NoC
 * links) are tightly coupled with back-pressure flowing the whole way from
 * the memory controller to the core pipeline, so the simulation kernel steps
 * every component one cycle at a time rather than using a sparse event
 * queue. Components implement Clocked and are registered with a Simulator.
 */

#ifndef LWSP_SIM_CLOCKED_HH
#define LWSP_SIM_CLOCKED_HH

#include <string>

#include "common/types.hh"

namespace lwsp {

/** A component advanced once per core clock cycle. */
class Clocked
{
  public:
    explicit Clocked(std::string name) : name_(std::move(name)) {}
    virtual ~Clocked() = default;

    Clocked(const Clocked &) = delete;
    Clocked &operator=(const Clocked &) = delete;

    /** Advance one cycle. @p now is the cycle being executed. */
    virtual void tick(Tick now) = 0;

    /**
     * Earliest cycle >= @p now at which tick() might do anything — change
     * state or account a statistic. Components that can prove they are
     * quiescent until a known cycle (a delay-line head still in flight, a
     * drain-interval timer, a ROB head completing later) return that
     * cycle; maxTick means "inert until externally stimulated". The
     * default (always @p now) is safe for any component.
     *
     * Contract: between @p now and the returned tick, skipping this
     * component's tick() calls entirely must be behaviour-preserving,
     * provided no external method (message delivery, queue insertion,
     * thread assignment) is invoked on it in that window. The Simulator
     * uses the minimum over all components to fast-forward through
     * provably dead cycles with bit-identical results.
     */
    virtual Tick
    nextActiveTick(Tick now) const
    {
        return now;
    }

    /** Instance name for logging/statistics. */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

} // namespace lwsp

#endif // LWSP_SIM_CLOCKED_HH
