/**
 * @file
 * Cycle-stepped component interface.
 *
 * LightWSP's queues (store buffer, front-end buffer, persist path, WPQ, NoC
 * links) are tightly coupled with back-pressure flowing the whole way from
 * the memory controller to the core pipeline, so the simulation kernel steps
 * every component one cycle at a time rather than using a sparse event
 * queue. Components implement Clocked and are registered with a Simulator.
 */

#ifndef LWSP_SIM_CLOCKED_HH
#define LWSP_SIM_CLOCKED_HH

#include <string>

#include "common/types.hh"

namespace lwsp {

/** A component advanced once per core clock cycle. */
class Clocked
{
  public:
    explicit Clocked(std::string name) : name_(std::move(name)) {}
    virtual ~Clocked() = default;

    Clocked(const Clocked &) = delete;
    Clocked &operator=(const Clocked &) = delete;

    /** Advance one cycle. @p now is the cycle being executed. */
    virtual void tick(Tick now) = 0;

    /** Instance name for logging/statistics. */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

} // namespace lwsp

#endif // LWSP_SIM_CLOCKED_HH
