/**
 * @file
 * Clocked component interface.
 *
 * LightWSP's queues (store buffer, front-end buffer, persist path, WPQ, NoC
 * links) are tightly coupled with back-pressure flowing the whole way from
 * the memory controller to the core pipeline, so every component models one
 * cycle of work in tick(). Under the legacy cycle-stepped engine the
 * Simulator calls tick() on everyone every cycle; under the event-driven
 * engine each component self-schedules via nextActiveTick() and is woken
 * early by rearm() whenever an external method changes its state.
 */

#ifndef LWSP_SIM_CLOCKED_HH
#define LWSP_SIM_CLOCKED_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace lwsp {

class Clocked;

/**
 * Wakeup sink the event-driven Simulator implements. Components never
 * talk to it directly — they call Clocked::rearm() on themselves.
 */
class Scheduler
{
  public:
    /** Re-evaluate @p c's wakeup time after an external state change. */
    virtual void touch(Clocked &c) = 0;

  protected:
    ~Scheduler() = default;
};

/** A component advanced once per core clock cycle (when active). */
class Clocked
{
  public:
    explicit Clocked(std::string name) : name_(std::move(name)) {}
    virtual ~Clocked() = default;

    Clocked(const Clocked &) = delete;
    Clocked &operator=(const Clocked &) = delete;

    /** Advance one cycle. @p now is the cycle being executed. */
    virtual void tick(Tick now) = 0;

    /**
     * Earliest cycle >= @p now at which tick() might do anything — change
     * state or account a statistic. Components that can prove they are
     * quiescent until a known cycle (a delay-line head still in flight, a
     * drain-interval timer, a ROB head completing later) return that
     * cycle; maxTick means "inert until externally stimulated". The
     * default (always @p now) is safe for any component.
     *
     * Contract: between @p now and the returned tick, skipping this
     * component's tick() calls entirely must be behaviour-preserving,
     * provided no external method (message delivery, queue insertion,
     * thread assignment) is invoked on it in that window. Every external
     * entry point must therefore end with rearm(), which tells the
     * event-driven Simulator to re-evaluate this component's wakeup; the
     * scheduler relies on the pair (nextActiveTick contract + rearm on
     * every external mutation) to skip dead cycles with bit-identical
     * results.
     */
    virtual Tick
    nextActiveTick(Tick now) const
    {
        return now;
    }

    /** Instance name for logging/statistics. */
    const std::string &name() const { return name_; }

  protected:
    /**
     * Notify the scheduler that external state changed and the cached
     * wakeup time may be stale. Cheap no-op under the cycle-stepped
     * engine (and before registration). Call at the end of every
     * externally-invoked mutating method.
     */
    void
    rearm()
    {
        if (sched_ != nullptr)
            sched_->touch(*this);
    }

  private:
    friend class Simulator;
    Scheduler *sched_ = nullptr;   ///< set at Simulator::add()
    std::uint32_t schedIdx_ = 0;   ///< this component's event-queue slot

    std::string name_;
};

} // namespace lwsp

#endif // LWSP_SIM_CLOCKED_HH
