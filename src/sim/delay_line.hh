/**
 * @file
 * A latency- and capacity-modelled FIFO used for the persist path, NoC links
 * and memory response channels.
 *
 * Payloads pushed at cycle T with latency L become visible at the head no
 * earlier than cycle T+L. FIFO order is preserved regardless of per-item
 * latency (items cannot overtake), matching the paper's FIFO persist path
 * (footnote 6: "Based on FIFO buffer, store orders are guaranteed").
 */

#ifndef LWSP_SIM_DELAY_LINE_HH
#define LWSP_SIM_DELAY_LINE_HH

#include <deque>
#include <limits>

#include "common/logging.hh"
#include "common/types.hh"

namespace lwsp {

template <typename T>
class DelayLine
{
  public:
    /**
     * @param capacity maximum in-flight items (0 = unbounded)
     */
    explicit DelayLine(std::size_t capacity = 0) : capacity_(capacity) {}

    /** @return true if another item can be pushed. */
    bool
    canPush() const
    {
        return capacity_ == 0 || items_.size() < capacity_;
    }

    /**
     * Enqueue @p item at cycle @p now, ready at now + @p latency (but never
     * before the item currently at the tail, preserving FIFO arrival order).
     */
    void
    push(Tick now, Tick latency, T item)
    {
        LWSP_ASSERT(canPush(), "DelayLine overflow");
        Tick ready = now + latency;
        if (!items_.empty() && items_.back().ready > ready)
            ready = items_.back().ready;
        items_.push_back({ready, std::move(item)});
    }

    /** @return true if the head item exists and is ready at @p now. */
    bool
    headReady(Tick now) const
    {
        return !items_.empty() && items_.front().ready <= now;
    }

    /** Peek the head item; requires headReady(). */
    const T &
    front() const
    {
        LWSP_ASSERT(!items_.empty(), "DelayLine::front on empty line");
        return items_.front().item;
    }

    /** Pop the head item; requires non-empty. */
    T
    pop()
    {
        LWSP_ASSERT(!items_.empty(), "DelayLine::pop on empty line");
        T item = std::move(items_.front().item);
        items_.pop_front();
        return item;
    }

    /** Cycle at which the head item becomes ready; requires non-empty. */
    Tick
    headReadyTick() const
    {
        LWSP_ASSERT(!items_.empty(), "headReadyTick on empty line");
        return items_.front().ready;
    }

    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Iterate all in-flight items oldest-first (for CAM searches). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &slot : items_)
            fn(slot.item);
    }

    void clear() { items_.clear(); }

  private:
    struct Slot
    {
        Tick ready;
        T item;
    };

    std::size_t capacity_;
    std::deque<Slot> items_;
};

} // namespace lwsp

#endif // LWSP_SIM_DELAY_LINE_HH
