#include "report.hh"

#include <algorithm>
#include <iomanip>

namespace lwsp {
namespace harness {

std::vector<std::string>
ResultTable::suites() const
{
    std::vector<std::string> out;
    for (const auto &row : rows_) {
        if (std::find(out.begin(), out.end(), row.suite) == out.end())
            out.push_back(row.suite);
    }
    return out;
}

double
ResultTable::overallGeomean(std::size_t column) const
{
    std::vector<double> v;
    for (const auto &row : rows_)
        v.push_back(row.values.at(column));
    return stats::geomean(v);
}

double
ResultTable::suiteGeomean(const std::string &suite,
                          std::size_t column) const
{
    std::vector<double> v;
    for (const auto &row : rows_) {
        if (row.suite == suite)
            v.push_back(row.values.at(column));
    }
    return stats::geomean(v);
}

namespace {

void
printHeader(std::ostream &os, const std::string &title,
            const std::vector<std::string> &columns)
{
    os << "== " << title << " ==\n";
    os << std::left << std::setw(14) << "workload" << std::setw(10)
       << "suite";
    for (const auto &c : columns)
        os << std::right << std::setw(14) << c;
    os << '\n';
}

} // namespace

void
ResultTable::print(std::ostream &os, unsigned precision) const
{
    printHeader(os, title_, columns_);
    os << std::fixed << std::setprecision(precision);

    std::string current_suite;
    for (const auto &row : rows_) {
        if (!current_suite.empty() && row.suite != current_suite) {
            os << std::left << std::setw(14) << "geomean"
               << std::setw(10) << current_suite;
            for (std::size_t c = 0; c < columns_.size(); ++c)
                os << std::right << std::setw(14)
                   << suiteGeomean(current_suite, c);
            os << '\n';
        }
        current_suite = row.suite;
        os << std::left << std::setw(14) << row.workload << std::setw(10)
           << row.suite;
        for (double v : row.values)
            os << std::right << std::setw(14) << v;
        os << '\n';
    }
    if (!rows_.empty()) {
        os << std::left << std::setw(14) << "geomean" << std::setw(10)
           << current_suite;
        for (std::size_t c = 0; c < columns_.size(); ++c)
            os << std::right << std::setw(14)
               << suiteGeomean(current_suite, c);
        os << '\n';
        os << std::left << std::setw(14) << "geomean(all)"
           << std::setw(10) << "-";
        for (std::size_t c = 0; c < columns_.size(); ++c)
            os << std::right << std::setw(14) << overallGeomean(c);
        os << '\n';
    }
    os.unsetf(std::ios::fixed);
}

void
ResultTable::printSuiteSummary(std::ostream &os, unsigned precision) const
{
    printHeader(os, title_, columns_);
    os << std::fixed << std::setprecision(precision);
    for (const auto &suite : suites()) {
        os << std::left << std::setw(14) << suite << std::setw(10) << "";
        for (std::size_t c = 0; c < columns_.size(); ++c)
            os << std::right << std::setw(14) << suiteGeomean(suite, c);
        os << '\n';
    }
    if (!rows_.empty()) {
        os << std::left << std::setw(14) << "geomean(all)"
           << std::setw(10) << "";
        for (std::size_t c = 0; c < columns_.size(); ++c)
            os << std::right << std::setw(14) << overallGeomean(c);
        os << '\n';
    }
    os.unsetf(std::ios::fixed);
}

void
ResultTable::writeCsv(std::ostream &os) const
{
    os << "workload,suite";
    for (const auto &c : columns_)
        os << ',' << c;
    os << '\n';
    for (const auto &row : rows_) {
        os << row.workload << ',' << row.suite;
        for (double v : row.values)
            os << ',' << std::setprecision(10) << v;
        os << '\n';
    }
}

} // namespace harness
} // namespace lwsp
