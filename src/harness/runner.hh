/**
 * @file
 * Experiment runner: generates a workload, compiles it for the requested
 * scheme, assembles the system configuration (with per-experiment
 * overrides for the sensitivity studies) and runs it. Baseline runs are
 * cached so slowdown normalization doesn't recompute them.
 */

#ifndef LWSP_HARNESS_RUNNER_HH
#define LWSP_HARNESS_RUNNER_HH

#include <map>
#include <optional>
#include <string>

#include "core/system.hh"
#include "workloads/generator.hh"

namespace lwsp {
namespace harness {

/** One experiment point. */
struct RunSpec
{
    std::string workload;                 ///< paper-app profile name
    core::Scheme scheme = core::Scheme::LightWsp;

    // Sensitivity-study overrides (defaults = Table I values).
    std::optional<unsigned> wpqEntries;        ///< Fig 11 (FEB follows)
    std::optional<unsigned> storeThreshold;    ///< Fig 12
    std::optional<mem::VictimPolicy> victimPolicy;  ///< Figs 13/14
    std::optional<double> persistPathGBps;     ///< Fig 15
    std::optional<unsigned> threads;           ///< Fig 16
    std::optional<Tick> pmReadCycles;          ///< Fig 17 (CXL)
    std::optional<Tick> pmWriteCycles;         ///< Fig 17
    std::optional<Tick> extraPathLatency;      ///< Fig 17 (CXL link)
    std::optional<Tick> drainInterval;         ///< CXL media bandwidth
    std::optional<bool> strictFlushAcks;       ///< commit-pipeline ablation
};

struct RunOutcome
{
    core::RunResult result;
    compiler::CompileStats compileStats;
    unsigned threads = 1;
};

/** Build the SystemConfig for a (profile, spec) pair. */
core::SystemConfig makeConfig(const workloads::WorkloadProfile &profile,
                              const RunSpec &spec);

/** Compile @p workload for @p spec's scheme (consumes the module). */
compiler::CompiledProgram
prepareProgram(workloads::Workload &&workload, const RunSpec &spec);

class Runner
{
  public:
    /** Execute one experiment point. */
    RunOutcome run(const RunSpec &spec);

    /**
     * Cycles of @p spec divided by the matching Baseline run's cycles
     * (same workload, threads and memory configuration).
     */
    double slowdownVsBaseline(const RunSpec &spec);

  private:
    std::string baselineKey(const RunSpec &spec) const;

    std::map<std::string, Tick> baselineCycles_;
};

/**
 * Region-level persistence efficiency, Eq. (1) of the paper:
 * (Tp - Twait) / Tp * 100, where Twait is the scheme's persist-induced
 * core wait time and Tp estimates the unoptimized persistence latency.
 */
double persistenceEfficiency(const core::RunResult &r,
                             const core::SystemConfig &cfg);

} // namespace harness
} // namespace lwsp

#endif // LWSP_HARNESS_RUNNER_HH
