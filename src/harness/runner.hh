/**
 * @file
 * Experiment runner: generates a workload, compiles it for the requested
 * scheme, assembles the system configuration (with per-experiment
 * overrides for the sensitivity studies) and runs it.
 *
 * Every run is memoized behind a canonical spec key, so (a) repeated
 * points — the sensitivity figures all revisit the default LightWSP
 * configuration, and every slowdown normalization revisits its Baseline
 * run — simulate exactly once, and (b) the cache can be shared by the
 * worker threads of a parallel sweep: the first thread to request a key
 * simulates while later requesters block on a shared future, never
 * duplicating work. Simulations themselves are deterministic (fixed
 * per-spec RNG seeding, no global mutable state), so a memoized result
 * is bit-identical to a fresh one.
 */

#ifndef LWSP_HARNESS_RUNNER_HH
#define LWSP_HARNESS_RUNNER_HH

#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/system.hh"
#include "workloads/generator.hh"

namespace lwsp {
namespace harness {

/** One experiment point. */
struct RunSpec
{
    std::string workload;                 ///< paper-app profile name
    core::Scheme scheme = core::Scheme::LightWsp;

    // Sensitivity-study overrides (defaults = Table I values).
    std::optional<unsigned> wpqEntries;        ///< Fig 11 (FEB follows)
    std::optional<unsigned> storeThreshold;    ///< Fig 12
    std::optional<mem::VictimPolicy> victimPolicy;  ///< Figs 13/14
    std::optional<double> persistPathGBps;     ///< Fig 15
    std::optional<unsigned> threads;           ///< Fig 16
    std::optional<Tick> pmReadCycles;          ///< Fig 17 (CXL)
    std::optional<Tick> pmWriteCycles;         ///< Fig 17
    std::optional<Tick> extraPathLatency;      ///< Fig 17 (CXL link)
    std::optional<Tick> drainInterval;         ///< CXL media bandwidth
    std::optional<bool> strictFlushAcks;       ///< commit-pipeline ablation
    std::optional<SimEngine> engine;           ///< A/B: event vs cycle
    std::optional<unsigned> numMcs;            ///< Fig 23 (scale-out)
    std::optional<noc::TopologyConfig> topology;  ///< Fig 23 (flat/tree)
};

/**
 * Process-wide engine default for specs that leave RunSpec::engine unset
 * (what --engine=cycle in the bench/CLI front ends flips). Defaults to
 * SimEngine::Event. Results are bit-identical either way; the knob
 * exists for A/B verification and perf comparison.
 */
SimEngine defaultSimEngine();
void setDefaultSimEngine(SimEngine e);

struct RunOutcome
{
    core::RunResult result;
    compiler::CompileStats compileStats;
    unsigned threads = 1;

    // Recovery lineage (run-report schema v1.2). Fresh-boot runs — all
    // of the sensitivity sweeps — leave recovered false; crash/recover
    // drivers (fig22, lwsp_cli crash) fill these from System's lineage.
    bool recovered = false;
    core::RecoveryOutcome recoveryOutcome =
        core::RecoveryOutcome::Recovered;
    unsigned failuresSurvived = 0;
};

/** Build the SystemConfig for a (profile, spec) pair. */
core::SystemConfig makeConfig(const workloads::WorkloadProfile &profile,
                              const RunSpec &spec);

/** Compile @p workload for @p spec's scheme (consumes the module). */
compiler::CompiledProgram
prepareProgram(workloads::Workload &&workload, const RunSpec &spec);

class Runner
{
  public:
    /**
     * Execute one experiment point (memoized; thread-safe). Concurrent
     * calls with distinct specs simulate in parallel; concurrent calls
     * with the same spec simulate once.
     */
    RunOutcome run(const RunSpec &spec);

    /**
     * Cycles of @p spec divided by the matching Baseline run's cycles
     * (same workload, threads and memory configuration). Both runs go
     * through the shared memo, so neither is ever simulated twice.
     */
    double slowdownVsBaseline(const RunSpec &spec);

    /**
     * The Baseline point @p spec is normalized against: scheme-specific
     * overrides reset, workload/threads/PM-latency overrides kept (the
     * paper normalizes within each memory configuration).
     */
    static RunSpec baselineSpec(const RunSpec &spec);

  private:
    RunOutcome runUncached(const RunSpec &spec);

    std::mutex mutex_;
    std::unordered_map<std::string, std::shared_future<RunOutcome>> memo_;
};

/**
 * Canonical memo key: every optional folded to the value makeConfig /
 * prepareProgram would derive anyway, so a spec with an explicit default
 * (e.g. wpqEntries = 64) and one leaving the field unset map to the same
 * simulation. Must stay in lockstep with makeConfig()/prepareProgram().
 */
std::string specKey(const RunSpec &spec);

/**
 * Region-level persistence efficiency, Eq. (1) of the paper:
 * (Tp - Twait) / Tp * 100, where Twait is the scheme's persist-induced
 * core wait time and Tp estimates the unoptimized persistence latency.
 */
double persistenceEfficiency(const core::RunResult &r,
                             const core::SystemConfig &cfg);

} // namespace harness
} // namespace lwsp

#endif // LWSP_HARNESS_RUNNER_HH
