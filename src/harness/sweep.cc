#include "sweep.hh"

#include "common/stats.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <iostream>
#include <thread>

namespace lwsp {
namespace harness {

void
parallelFor(unsigned jobs, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    jobs = static_cast<unsigned>(
        std::min<std::size_t>(jobs, n));

    if (jobs <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&]() {
        while (true) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n || failed.load(std::memory_order_relaxed))
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

SweepExecutor::SweepExecutor(unsigned jobs)
    : jobs_(jobs ? jobs : std::max(1u, std::thread::hardware_concurrency()))
{
}

template <typename Fn>
void
SweepExecutor::sweep(std::size_t n, Fn &&fn)
{
    auto start = std::chrono::steady_clock::now();
    parallelFor(jobs_, n, std::forward<Fn>(fn));
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    last_.jobs = jobs_;
    last_.points = n;
    last_.wallSeconds = secs;
    total_.jobs = jobs_;
    total_.points += n;
    total_.wallSeconds += secs;
}

void
SweepExecutor::record(Runner &runner, const RunSpec &spec)
{
    // Post-sweep bookkeeping on the calling thread: the memo makes the
    // re-run instant, and serial insertion keeps the record order (and
    // so the report file) independent of worker scheduling.
    std::string key = specKey(spec);
    if (!recordedKeys_.insert(key).second)
        return;
    records_.push_back({spec, runner.run(spec)});
}

std::vector<RunOutcome>
SweepExecutor::runAll(Runner &runner, const std::vector<RunSpec> &specs)
{
    std::vector<RunOutcome> out(specs.size());
    sweep(specs.size(), [&](std::size_t i) { out[i] = runner.run(specs[i]); });
    last_.simulatedCycles = 0;
    for (const auto &o : out)
        last_.simulatedCycles += o.result.cycles;
    total_.simulatedCycles += last_.simulatedCycles;
    for (const auto &s : specs)
        record(runner, s);
    return out;
}

std::vector<double>
SweepExecutor::slowdowns(Runner &runner, const std::vector<RunSpec> &specs)
{
    // Phase the baselines in as explicit points: the memo dedupes them,
    // and claiming them up front lets distinct baselines simulate
    // concurrently instead of each hiding behind its first scheme point.
    std::vector<RunSpec> all;
    all.reserve(specs.size() * 2);
    for (const auto &s : specs)
        all.push_back(Runner::baselineSpec(s));
    for (const auto &s : specs)
        all.push_back(s);

    std::vector<double> out(specs.size());
    std::uint64_t cycles = 0;
    std::mutex cycles_mutex;
    sweep(all.size(), [&](std::size_t i) {
        RunOutcome o = runner.run(all[i]);
        if (i >= specs.size()) {
            std::size_t p = i - specs.size();
            Tick base = runner.run(Runner::baselineSpec(specs[p]))
                            .result.cycles;
            out[p] = static_cast<double>(o.result.cycles) /
                     static_cast<double>(base);
        }
        std::lock_guard<std::mutex> lock(cycles_mutex);
        cycles += o.result.cycles;
    });
    last_.simulatedCycles = cycles;
    total_.simulatedCycles += cycles;
    for (const auto &s : all)
        record(runner, s);
    return out;
}

void
writeSweepJson(const std::string &path, const std::string &bench,
               const SweepStats &stats)
{
    std::ofstream os(path);
    if (!os) {
        // Not warn(): benches run with setLogQuiet(true), and a silently
        // dropped telemetry file defeats the flag's purpose.
        std::cerr << "error: cannot write sweep telemetry to " << path
                  << '\n';
        return;
    }
    os << "{\"bench\":\"" << bench << "\",\"jobs\":" << stats.jobs
       << ",\"points\":" << stats.points << ",\"wall_seconds\":"
       << stats.wallSeconds << ",\"points_per_second\":"
       << stats.pointsPerSecond() << ",\"simulated_cycles\":"
       << stats.simulatedCycles << ",\"simulated_cycles_per_second\":"
       << stats.cyclesPerSecond() << "}\n";
}

void
writeRunReports(const std::string &path, const std::string &bench,
                const std::vector<RunRecord> &records,
                const SweepStats &stats)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "error: cannot write run report to " << path << '\n';
        return;
    }
    // v1.1: adds the "cycles_percentiles" footer (stats::Percentiles
    // over per-run cycle counts). v1.2: adds per-run "recovery_outcome"
    // ("none" for fresh boots) and "failures_survived". Fields are
    // additive; v1 consumers that ignore unknown keys keep working.
    os << "{\"schema\":\"lwsp-run-report-v1.2\",\"bench\":\"" << bench
       << "\",\"jobs\":" << stats.jobs << ",\"wall_seconds\":"
       << stats.wallSeconds << ",\"runs\":[";
    bool first = true;
    for (const auto &rec : records) {
        const auto &r = rec.outcome.result;
        const auto &c = rec.outcome.compileStats;
        os << (first ? "\n" : ",\n") << " {\"key\":\""
           << specKey(rec.spec) << "\",\"workload\":\""
           << rec.spec.workload << "\",\"scheme\":\""
           << core::schemeName(rec.spec.scheme) << "\",\"threads\":"
           << rec.outcome.threads
           << ",\"compile\":{\"input_insts\":" << c.inputInsts
           << ",\"output_insts\":" << c.outputInsts
           << ",\"boundaries\":" << c.boundaries
           << ",\"ckpt_stores\":" << c.checkpointStores
           << ",\"pruned_ckpts\":" << c.prunedCheckpoints
           << ",\"unrolled_loops\":" << c.unrolledLoops
           << ",\"fixpoint_iters\":" << c.fixpointIterations
           << "},\"result\":{\"cycles\":" << r.cycles
           << ",\"completed\":" << (r.completed ? "true" : "false")
           << ",\"insts_retired\":" << r.instsRetired
           << ",\"stores_retired\":" << r.storesRetired
           << ",\"boundaries\":" << r.boundaries
           << ",\"ipc\":" << r.ipc
           << ",\"boundary_wait_cycles\":" << r.boundaryWaitCycles
           << ",\"sb_full_cycles\":" << r.sbFullCycles
           << ",\"feb_full_cycles\":" << r.febFullCycles
           << ",\"snoop_blocked_cycles\":" << r.snoopBlockedCycles
           << ",\"lock_blocked_cycles\":" << r.lockBlockedCycles
           << ",\"l1_hits\":" << r.l1Hits
           << ",\"l1_misses\":" << r.l1Misses
           << ",\"stale_loads\":" << r.staleLoads
           << ",\"buffer_conflicts\":" << r.bufferConflicts
           << ",\"diverted_victims\":" << r.divertedVictims
           << ",\"wpq_load_hits\":" << r.wpqLoadHits
           << ",\"wpq_flushed_entries\":" << r.wpqFlushedEntries
           << ",\"wpq_fallback_flushes\":" << r.wpqFallbackFlushes
           << ",\"wpq_overflow_events\":" << r.wpqOverflowEvents
           << ",\"max_wpq_occupancy\":" << r.maxWpqOccupancy
           << ",\"regions_committed\":" << r.regionsCommitted
           << ",\"avg_region_insts\":" << r.avgRegionInsts
           << ",\"avg_region_stores\":" << r.avgRegionStores
           << "},\"recovery_outcome\":\""
           << (rec.outcome.recovered
                   ? core::recoveryOutcomeName(rec.outcome.recoveryOutcome)
                   : "none")
           << "\",\"failures_survived\":"
           << rec.outcome.failuresSurvived << "}";
        first = false;
    }
    stats::Percentiles cyc;
    for (const auto &rec : records)
        cyc.sample(static_cast<double>(rec.outcome.result.cycles));
    os << "\n],\"cycles_percentiles\":{\"p50\":" << cyc.p50()
       << ",\"p90\":" << cyc.p90() << ",\"p99\":" << cyc.p99()
       << ",\"p999\":" << cyc.p999() << ",\"max\":" << cyc.max()
       << ",\"count\":" << cyc.count() << "}}\n";
}

} // namespace harness
} // namespace lwsp
