#include "runner.hh"

#include <atomic>
#include <sstream>

#include "compiler/compiler.hh"

namespace lwsp {
namespace harness {

using core::Scheme;

namespace {
std::atomic<SimEngine> gDefaultEngine{SimEngine::Event};
} // namespace

SimEngine
defaultSimEngine()
{
    return gDefaultEngine.load(std::memory_order_relaxed);
}

void
setDefaultSimEngine(SimEngine e)
{
    gDefaultEngine.store(e, std::memory_order_relaxed);
}

core::SystemConfig
makeConfig(const workloads::WorkloadProfile &profile, const RunSpec &spec)
{
    core::SystemConfig cfg;
    cfg.scheme = spec.scheme;
    cfg.engine = spec.engine.value_or(defaultSimEngine());

    cfg.core.branchMissRate = profile.branchMissRate;
    cfg.core.hwRegionStores = profile.hwRegionStores;

    unsigned wpq = spec.wpqEntries.value_or(64);
    cfg.mc.wpqEntries = wpq;
    cfg.core.febEntries = wpq;  // front-end buffer follows WPQ size (§IV-E)

    double gbps = spec.persistPathGBps.value_or(4.0);
    cfg.core.pathCyclesPerEntry = bandwidthToCyclesPerGranule(gbps);

    if (spec.pmReadCycles)
        cfg.mc.pmReadCycles = *spec.pmReadCycles;
    if (spec.pmWriteCycles)
        cfg.mc.pmWriteCycles = *spec.pmWriteCycles;
    if (spec.extraPathLatency)
        cfg.core.pathLatency += *spec.extraPathLatency;
    if (spec.drainInterval)
        cfg.mc.drainInterval = *spec.drainInterval;
    if (spec.victimPolicy)
        cfg.victimPolicy = *spec.victimPolicy;
    if (spec.strictFlushAcks)
        cfg.mc.strictFlushAcks = *spec.strictFlushAcks;
    if (spec.numMcs)
        cfg.numMcs = *spec.numMcs;
    if (spec.topology)
        cfg.topology = *spec.topology;

    cfg.applySchemeDefaults();
    return cfg;
}

compiler::CompiledProgram
prepareProgram(workloads::Workload &&workload, const RunSpec &spec)
{
    if (!core::schemeUsesCompiledBinary(spec.scheme))
        return compiler::makeUncompiled(std::move(workload.module));

    compiler::CompilerConfig ccfg;
    unsigned wpq = spec.wpqEntries.value_or(64);
    ccfg.storeThreshold = spec.storeThreshold.value_or(wpq / 2);
    if (spec.scheme == Scheme::Cwsp)
        ccfg.insertCheckpointStores = false;

    compiler::LightWspCompiler comp(ccfg);
    return comp.compile(std::move(workload.module));
}

RunOutcome
Runner::runUncached(const RunSpec &spec)
{
    const auto &profile = workloads::profileByName(spec.workload);
    workloads::Workload w = workloads::generate(profile);

    RunOutcome out;
    out.threads = spec.threads.value_or(profile.threads);

    core::SystemConfig cfg = makeConfig(profile, spec);
    // Warm the caches (stand-in for the paper's 10B-instruction
    // fast-forward): measure only the last ~65% of the run.
    cfg.warmupInsts = w.estimatedInstsPerThread * out.threads * 35 / 100;
    compiler::CompiledProgram prog =
        prepareProgram(std::move(w), spec);
    out.compileStats = prog.stats;

    core::System sys(cfg, prog, out.threads);
    out.result = sys.run();
    if (!out.result.completed)
        warn("run did not complete: ", spec.workload, " on ",
             core::schemeName(spec.scheme));
    return out;
}

RunOutcome
Runner::run(const RunSpec &spec)
{
    std::string key = specKey(spec);
    std::promise<RunOutcome> promise;
    std::shared_future<RunOutcome> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = memo_.find(key);
        if (it == memo_.end()) {
            future = promise.get_future().share();
            memo_.emplace(key, future);
            owner = true;
        } else {
            future = it->second;
        }
    }
    if (owner) {
        // Simulate outside the lock so other points proceed in parallel;
        // same-key requesters block on the shared future instead of
        // re-simulating.
        try {
            promise.set_value(runUncached(spec));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

std::string
specKey(const RunSpec &spec)
{
    // Fold each optional to the value the config/compile path derives
    // from an unset field (see makeConfig/prepareProgram), so explicit
    // defaults share the unset point's cache entry.
    const auto &profile = workloads::profileByName(spec.workload);
    unsigned wpq = spec.wpqEntries.value_or(64);
    unsigned threshold =
        core::schemeUsesCompiledBinary(spec.scheme)
            ? spec.storeThreshold.value_or(wpq / 2)
            : 0;  // uncompiled schemes never consult the threshold
    std::ostringstream os;
    os << spec.workload << '/' << static_cast<int>(spec.scheme) << '/'
       << wpq << '/' << threshold << '/'
       << (spec.victimPolicy ? static_cast<int>(*spec.victimPolicy) : -1)
       << '/' << spec.persistPathGBps.value_or(4.0) << '/'
       << spec.threads.value_or(profile.threads) << '/'
       << spec.pmReadCycles.value_or(350) << '/'
       << spec.pmWriteCycles.value_or(180) << '/'
       << spec.extraPathLatency.value_or(0) << '/'
       << spec.drainInterval.value_or(1) << '/'
       << spec.strictFlushAcks.value_or(false) << '/'
       << simEngineName(spec.engine.value_or(defaultSimEngine())) << '/'
       << spec.numMcs.value_or(2) << '/'
       << spec.topology.value_or(noc::TopologyConfig{}).toString();
    return os.str();
}

RunSpec
Runner::baselineSpec(const RunSpec &spec)
{
    RunSpec base = spec;
    base.scheme = Scheme::Baseline;
    // The baseline keeps Table I memory parameters; CXL media-latency
    // overrides apply to it as well (the paper normalizes within each
    // configuration).
    base.wpqEntries.reset();
    base.storeThreshold.reset();
    base.victimPolicy.reset();
    base.persistPathGBps.reset();
    base.extraPathLatency.reset();
    base.drainInterval.reset();
    base.strictFlushAcks.reset();
    return base;
}

double
Runner::slowdownVsBaseline(const RunSpec &spec)
{
    Tick base_cycles = run(baselineSpec(spec)).result.cycles;
    Tick scheme_cycles = run(spec).result.cycles;
    return static_cast<double>(scheme_cycles) /
           static_cast<double>(base_cycles);
}

double
persistenceEfficiency(const core::RunResult &r,
                      const core::SystemConfig &cfg)
{
    if (r.boundaries == 0)
        return 100.0;

    // Unoptimized persistence latency: every region pays the full path
    // latency, a banked PM write per entry (the write latency amortized
    // over the iMC's internal banking), and one ACK round trip, fully
    // serialized with execution.
    constexpr double pmWriteBanking = 16.0;
    double entries_per_region =
        r.boundaries
            ? static_cast<double>(std::max<std::uint64_t>(
                  r.wpqFlushedEntries, r.storesRetired)) /
                  static_cast<double>(r.boundaries)
            : 0.0;
    double tp = static_cast<double>(r.boundaries) *
                (static_cast<double>(cfg.core.pathLatency) +
                 entries_per_region *
                     static_cast<double>(cfg.mc.pmWriteCycles) /
                     pmWriteBanking +
                 2.0 * static_cast<double>(cfg.nocHopLatency));

    double twait = static_cast<double>(r.boundaryWaitCycles) +
                   static_cast<double>(r.sbFullCycles) +
                   static_cast<double>(r.febFullCycles);

    if (tp <= 0)
        return 100.0;
    double eff = (tp - twait) / tp * 100.0;
    return std::max(0.0, std::min(100.0, eff));
}

} // namespace harness
} // namespace lwsp
