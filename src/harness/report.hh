/**
 * @file
 * Figure/table formatting: fixed-width console tables matching the
 * paper's figure structure (per-app rows, per-suite geomeans) plus CSV
 * emission for plotting.
 */

#ifndef LWSP_HARNESS_REPORT_HH
#define LWSP_HARNESS_REPORT_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace lwsp {
namespace harness {

/** A rectangular result table: rows = workloads, columns = series. */
class ResultTable
{
  public:
    explicit ResultTable(std::string title) : title_(std::move(title)) {}

    void
    addColumn(const std::string &name)
    {
        columns_.push_back(name);
    }

    void
    addRow(const std::string &workload, const std::string &suite,
           const std::vector<double> &values)
    {
        LWSP_ASSERT(values.size() == columns_.size(),
                    "row width mismatch in table ", title_);
        rows_.push_back({workload, suite, values});
    }

    /**
     * Print per-row values, a geomean row per suite, and an overall
     * geomean — the structure of the paper's bar charts.
     */
    void print(std::ostream &os, unsigned precision = 3) const;

    /** Print only the per-suite geomeans (Figs 8/10-17 granularity). */
    void printSuiteSummary(std::ostream &os, unsigned precision = 3) const;

    void writeCsv(std::ostream &os) const;

    /** Geomean of one column over every row. */
    double overallGeomean(std::size_t column) const;

    /** Geomean of one column over rows of @p suite. */
    double suiteGeomean(const std::string &suite,
                        std::size_t column) const;

    /** Suites in first-appearance order. */
    std::vector<std::string> suites() const;

    const std::string &title() const { return title_; }

  private:
    struct Row
    {
        std::string workload;
        std::string suite;
        std::vector<double> values;
    };

    std::string title_;
    std::vector<std::string> columns_;
    std::vector<Row> rows_;
};

} // namespace harness
} // namespace lwsp

#endif // LWSP_HARNESS_REPORT_HH
