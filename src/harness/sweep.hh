/**
 * @file
 * Parallel experiment-sweep engine.
 *
 * Every figure/table reproduction is a sweep over independent
 * (workload x scheme x config) simulation points. SweepExecutor fans a
 * spec list out across worker threads with a shared claim counter
 * (work-stealing at point granularity: whichever worker frees up first
 * takes the next unclaimed index), while results land in a vector slot
 * per input index — so the output order, and therefore every table, CSV
 * byte and geomean, is identical to a serial sweep regardless of job
 * count or scheduling. Points themselves are deterministic: each
 * simulation seeds its RNGs from its own spec (no global RNG, no shared
 * mutable state beyond the Runner's mutex-guarded memo), which is what
 * makes "parallel == serial, bit for bit" a contract rather than a hope.
 *
 * The executor also keeps wall-clock/throughput telemetry per sweep and
 * accumulated across the binary's lifetime, emitted as a BENCH_sweep.json
 * record to track the repo's performance trajectory.
 */

#ifndef LWSP_HARNESS_SWEEP_HH
#define LWSP_HARNESS_SWEEP_HH

#include <cstddef>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace lwsp {
namespace harness {

/**
 * Run @p fn(i) for every i in [0, n) on up to @p jobs threads. Order of
 * execution is unspecified; the call returns once every index finished.
 * The first exception thrown by any index is rethrown to the caller
 * (after all workers have joined). jobs <= 1 degenerates to a plain
 * serial loop with no thread machinery.
 */
void parallelFor(unsigned jobs, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

/** Wall-clock/throughput instrumentation for one or more sweeps. */
struct SweepStats
{
    unsigned jobs = 1;
    std::size_t points = 0;            ///< simulation points dispatched
    double wallSeconds = 0.0;
    std::uint64_t simulatedCycles = 0; ///< sum of per-point cycle counts

    double
    pointsPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(points) / wallSeconds
                   : 0.0;
    }

    /** Simulator throughput: simulated cycles retired per wall second. */
    double
    cyclesPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(simulatedCycles) / wallSeconds
                   : 0.0;
    }
};

/** One executed experiment point, retained for run-report emission. */
struct RunRecord
{
    RunSpec spec;
    RunOutcome outcome;
};

class SweepExecutor
{
  public:
    /** @param jobs worker threads; 0 = std::thread::hardware_concurrency */
    explicit SweepExecutor(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /**
     * Execute every spec through @p runner. Result i corresponds to
     * specs[i]; bit-identical to calling runner.run(specs[i]) in order.
     */
    std::vector<RunOutcome> runAll(Runner &runner,
                                   const std::vector<RunSpec> &specs);

    /**
     * Slowdown-vs-baseline for every spec (deterministic order). The
     * Baseline runs are claimed as sweep points of their own first, so
     * distinct baselines compute in parallel instead of serializing
     * behind the memo of whichever scheme point asked first.
     */
    std::vector<double> slowdowns(Runner &runner,
                                  const std::vector<RunSpec> &specs);

    /** Telemetry for the most recent runAll/slowdowns call. */
    const SweepStats &lastStats() const { return last_; }

    /** Telemetry accumulated over every sweep this executor ran. */
    const SweepStats &totalStats() const { return total_; }

    /**
     * Every point executed by this executor (baselines included),
     * deduplicated by canonical spec key in first-execution order.
     */
    const std::vector<RunRecord> &runRecords() const { return records_; }

  private:
    void record(Runner &runner, const RunSpec &spec);
    template <typename Fn>
    void sweep(std::size_t n, Fn &&fn);

    unsigned jobs_;
    SweepStats last_;
    SweepStats total_;
    std::vector<RunRecord> records_;
    std::set<std::string> recordedKeys_;
};

/**
 * Write one BENCH_sweep.json record (single-line JSON object so shell
 * aggregation in scripts/bench_all.sh stays trivial).
 */
void writeSweepJson(const std::string &path, const std::string &bench,
                    const SweepStats &stats);

/**
 * Versioned machine-readable run report: one record per distinct
 * simulation point with its canonical spec key, resolved configuration
 * axes, compile stats and the full RunResult, plus a cross-run
 * cycles-percentiles footer. Schema identifier "lwsp-run-report-v1.2"
 * (minor bumps are additive: v1.1 added the percentiles footer, v1.2
 * the per-run recovery lineage — "recovery_outcome", "none" on fresh
 * boots, and "failures_survived"); consumers must reject unknown major
 * versions.
 */
void writeRunReports(const std::string &path, const std::string &bench,
                     const std::vector<RunRecord> &records,
                     const SweepStats &stats);

} // namespace harness
} // namespace lwsp

#endif // LWSP_HARNESS_SWEEP_HH
