/**
 * @file
 * Seeded hardware fault injection for the LightWSP machine model.
 *
 * The paper's safety argument (§IV) assumes perfect hardware: boundary
 * broadcasts always arrive, the battery-backed WPQ never loses a bit,
 * and checkpointed registers read back intact. This layer makes each of
 * those assumptions falsifiable. A `FaultConfig` selects fault axes and
 * a `FaultInjector` (created only when `enabled`) rolls seeded,
 * reproducible outcomes for them:
 *
 *  - NoC boundary-broadcast loss / delay / duplication, rolled per
 *    delivery attempt on each fabric link (probabilistic, in permille)
 *    or pinned to the first broadcast at/after a given tick. On the
 *    flat fabric a link is one router->MC path; on a tree fabric the
 *    roll happens per tree link, so one bad high link near the root
 *    loses the whole subtree below it at once (noc/noc.hh);
 *  - WPQ entry damage at crash time: ECC-detected bit flips and torn
 *    (partial-granule) writes, optionally pinned to a checkpoint-area
 *    entry;
 *  - PM media read errors (poisoned words) in the checkpoint area,
 *    surfacing during recovery;
 *  - a silent (ECC-escaping) bit flip in a persisted register slot,
 *    catchable only by the hardened checkpoint checksum;
 *  - MC stalls absorbed during the §IV-F crash drain.
 *
 * Zero-cost-when-off discipline (same pattern as LrpoOracle and
 * TraceSink): components hold a `FaultInjector *` that is null unless
 * faults are enabled, and every hook site is guarded by that pointer.
 * With the injector armed but all knobs at their defaults, timing and
 * traces stay bit-identical to a build without the layer.
 *
 * Configs round-trip through a compact `k=v,k=v` spec string so fault
 * points embed in `lwsp-fuzz:v1:` reproducers and CLI flags.
 */

#ifndef LWSP_FAULT_FAULT_HH
#define LWSP_FAULT_FAULT_HH

#include <cstdint>
#include <string>

#include "common/random.hh"
#include "common/types.hh"

namespace lwsp {
namespace fault {

/**
 * One fault scenario. Defaults mean "no fault"; `toString()` emits only
 * non-default keys in a canonical order, so specs round-trip exactly.
 */
struct FaultConfig
{
    /** Master switch: the System creates a FaultInjector iff true. */
    bool enabled = false;
    /**
     * Use the hardened checkpoint format: PC-slot stores carry a 32-bit
     * checksum over the thread's register slots in their upper half, and
     * recovery verifies it. Off by default so golden traces and CSVs
     * stay bit-identical to the unhardened machine.
     */
    bool hardenedCkpt = false;
    /** Injector RNG seed; 0 derives one from the system seed. */
    std::uint64_t seed = 0;

    // --- NoC boundary-broadcast faults (per per-MC delivery attempt) ---
    /** Permille chance a broadcast copy is dropped on the link. */
    unsigned bcastLossPm = 0;
    /** Permille chance a broadcast copy is delayed. */
    unsigned bcastDelayPm = 0;
    /** Extra cycles added to a delayed copy. */
    Tick bcastDelayCycles = 120;
    /** Permille chance a broadcast copy is duplicated. */
    unsigned bcastDupPm = 0;
    /**
     * Pinned loss: drop every per-MC copy of the first boundary
     * broadcast issued at or after this tick (maxTick = disabled).
     */
    Tick bcastLossPinTick = maxTick;

    // --- Battery-backed WPQ damage, applied once at crash time ---
    /** Flip one bit in one random WPQ entry (ECC detects it). */
    bool wpqBitFlip = false;
    /** Tear one random WPQ entry (partial granule; ECC detects it). */
    bool wpqTear = false;
    /** Pin the damage to a checkpoint-area WPQ entry if one exists. */
    bool ckptEntryDamage = false;

    // --- PM media errors, applied once at crash time ---
    /** Poison this many checkpoint-area words (read errors at recovery). */
    unsigned pmPoisonWords = 0;
    /** Silently flip one bit of a persisted register slot (no poison). */
    bool silentCkptFlip = false;

    // --- Memory-controller drain stalls ---
    /** Quiescence iterations one MC stalls for during the §IV-F drain. */
    unsigned mcStallIters = 0;

    /** True if any fault axis (not just enabled/hardenedCkpt) is set. */
    bool anyArmed() const;

    /** Canonical `k=v,k=v` spec (empty when nothing differs from default). */
    std::string toString() const;
    /** Parse a spec produced by toString(); @p err explains failures. */
    static bool parse(const std::string &s, FaultConfig &out,
                      std::string &err);
};

/** Outcome of one broadcast-copy delivery roll. */
enum class BcastFate : std::uint8_t { Deliver, Drop, Delay, Duplicate };

/**
 * Seeded fault oracle plus injection counters. Pure decision logic —
 * the NoC, MCs and System own the mechanics of acting on each decision.
 */
class FaultInjector
{
  public:
    /**
     * @param cfg the scenario (copied)
     * @param fallback_seed used when cfg.seed == 0, so campaigns get a
     *        distinct stream per case without spelling a seed
     */
    FaultInjector(const FaultConfig &cfg, std::uint64_t fallback_seed)
        : cfg_(cfg),
          rng_(cfg.seed ? cfg.seed : (fallback_seed ^ 0xfa17a17ull))
    {
    }

    const FaultConfig &config() const { return cfg_; }
    Rng &rng() { return rng_; }

    /**
     * Should the whole broadcast issued at @p now be dropped (every
     * per-MC copy)? Latches: fires for at most one broadcast.
     */
    bool
    pinnedBcastDrop(Tick now)
    {
        if (pinConsumed_ || now < cfg_.bcastLossPinTick)
            return false;
        pinConsumed_ = true;
        return true;
    }

    /** Roll the fate of one per-MC broadcast copy. */
    BcastFate
    bcastFate()
    {
        if (cfg_.bcastLossPm == 0 && cfg_.bcastDelayPm == 0 &&
            cfg_.bcastDupPm == 0)
            return BcastFate::Deliver;
        std::uint64_t roll = rng_.below(1000);
        if (roll < cfg_.bcastLossPm)
            return BcastFate::Drop;
        roll -= cfg_.bcastLossPm;
        if (roll < cfg_.bcastDelayPm)
            return BcastFate::Delay;
        roll -= cfg_.bcastDelayPm;
        if (roll < cfg_.bcastDupPm)
            return BcastFate::Duplicate;
        return BcastFate::Deliver;
    }

    Tick bcastDelayCycles() const { return cfg_.bcastDelayCycles; }

    // Injection counters (reported in CrashReport / CLI stats).
    std::uint64_t bcastDrops = 0;
    std::uint64_t bcastDelays = 0;
    std::uint64_t bcastDups = 0;
    std::uint64_t bcastRetries = 0;
    std::uint64_t bcastLostAtCrash = 0;
    std::uint64_t wpqDamaged = 0;
    std::uint64_t poisonedWords = 0;
    std::uint64_t silentFlips = 0;
    std::uint64_t stallsInjected = 0;

  private:
    FaultConfig cfg_;
    Rng rng_;
    bool pinConsumed_ = false;
};

} // namespace fault
} // namespace lwsp

#endif // LWSP_FAULT_FAULT_HH
