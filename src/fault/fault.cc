#include "fault/fault.hh"

#include <cstdio>
#include <cstdlib>

namespace lwsp {
namespace fault {

/*
 * Spec grammar: comma-separated `key=value` pairs, canonical key order,
 * default-valued keys omitted. `enabled` and `hardenedCkpt` are not
 * spelled — whoever applies a parsed config decides those (the fuzz
 * campaign arms both whenever any axis is set).
 *
 *   seed=N     injector RNG seed (decimal)
 *   loss=P     broadcast-copy loss permille
 *   delay=P    broadcast-copy delay permille
 *   delayc=N   delay amount in cycles (only emitted when != 120)
 *   dup=P      broadcast-copy duplication permille
 *   losspin=T  drop the first broadcast at/after tick T entirely
 *   flip=1     WPQ bit flip at crash (ECC-detected)
 *   tear=1     torn WPQ entry at crash (ECC-detected)
 *   ckpt=1     pin WPQ damage to a checkpoint-area entry
 *   poison=N   poison N checkpoint-area PM words at crash
 *   silent=1   silent bit flip in a persisted register slot
 *   stall=N    MC stall iterations during the crash drain
 */

bool
FaultConfig::anyArmed() const
{
    return bcastLossPm || bcastDelayPm || bcastDupPm ||
           bcastLossPinTick != maxTick || wpqBitFlip || wpqTear ||
           ckptEntryDamage || pmPoisonWords || silentCkptFlip ||
           mcStallIters;
}

std::string
FaultConfig::toString() const
{
    std::string s;
    auto add = [&](const char *key, std::uint64_t v) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%s%s=%llu", s.empty() ? "" : ",",
                      key, static_cast<unsigned long long>(v));
        s += buf;
    };
    if (seed)
        add("seed", seed);
    if (bcastLossPm)
        add("loss", bcastLossPm);
    if (bcastDelayPm)
        add("delay", bcastDelayPm);
    if (bcastDelayCycles != 120)
        add("delayc", bcastDelayCycles);
    if (bcastDupPm)
        add("dup", bcastDupPm);
    if (bcastLossPinTick != maxTick)
        add("losspin", bcastLossPinTick);
    if (wpqBitFlip)
        add("flip", 1);
    if (wpqTear)
        add("tear", 1);
    if (ckptEntryDamage)
        add("ckpt", 1);
    if (pmPoisonWords)
        add("poison", pmPoisonWords);
    if (silentCkptFlip)
        add("silent", 1);
    if (mcStallIters)
        add("stall", mcStallIters);
    return s;
}

bool
FaultConfig::parse(const std::string &s, FaultConfig &out, std::string &err)
{
    FaultConfig cfg;
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        std::string tok = s.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? s.size() : comma + 1;
        std::size_t eq = tok.find('=');
        if (eq == std::string::npos || eq == 0) {
            err = "bad fault token '" + tok + "' (want key=value)";
            return false;
        }
        std::string key = tok.substr(0, eq);
        std::string val = tok.substr(eq + 1);
        char *end = nullptr;
        std::uint64_t v = std::strtoull(val.c_str(), &end, 10);
        if (val.empty() || end == nullptr || *end != '\0') {
            err = "bad fault value in '" + tok + "'";
            return false;
        }
        if (key == "seed") {
            cfg.seed = v;
        } else if (key == "loss") {
            cfg.bcastLossPm = static_cast<unsigned>(v);
        } else if (key == "delay") {
            cfg.bcastDelayPm = static_cast<unsigned>(v);
        } else if (key == "delayc") {
            cfg.bcastDelayCycles = v;
        } else if (key == "dup") {
            cfg.bcastDupPm = static_cast<unsigned>(v);
        } else if (key == "losspin") {
            cfg.bcastLossPinTick = v;
        } else if (key == "flip") {
            cfg.wpqBitFlip = v != 0;
        } else if (key == "tear") {
            cfg.wpqTear = v != 0;
        } else if (key == "ckpt") {
            cfg.ckptEntryDamage = v != 0;
        } else if (key == "poison") {
            cfg.pmPoisonWords = static_cast<unsigned>(v);
        } else if (key == "silent") {
            cfg.silentCkptFlip = v != 0;
        } else if (key == "stall") {
            cfg.mcStallIters = static_cast<unsigned>(v);
        } else {
            err = "unknown fault key '" + key + "'";
            return false;
        }
        if (cfg.bcastLossPm > 1000 || cfg.bcastDelayPm > 1000 ||
            cfg.bcastDupPm > 1000) {
            err = "fault permille out of range in '" + tok + "'";
            return false;
        }
    }
    out = cfg;
    return true;
}

} // namespace fault
} // namespace lwsp
