/**
 * @file
 * Failure-storm schedules: sequences of power failures aimed at the
 * machinery that is supposed to survive power failures.
 *
 * WSP's §IV-F argument is that power may fail at *any* instant —
 * including while the crash drain or the recovery run is itself
 * executing. A `FailureSchedule` spells out such an adversarial
 * sequence as ordered events, each naming the phase the next failure
 * lands in:
 *
 *  - `Drain`   — power fails again after N quiescence iterations of the
 *                in-progress §IV-F drain. The battery-backed WPQ and MC
 *                protocol registers survive, so the next drain resumes
 *                where this one stopped (System::runWithFailureStorm).
 *  - `Recovery`— power fails during the recovery preamble, after the
 *                image was read but before execution resumes. PM is
 *                untouched, so the next recovery attempt re-validates
 *                the *same* image: System::recoverChecked must be
 *                idempotent — same verdict, same successor state.
 *  - `Exec`    — the recovered machine runs for N cycles and then loses
 *                power again, drain and all. (Crashing a pmtx program
 *                here with small N lands mid-undo-replay: the rollback
 *                itself must be crash-consistent.)
 *
 * Schedules ride fuzz replay specs as a `storm=` token, so the string
 * form is colon- and comma-free: events joined by '+', each `d<N>`,
 * `r`, or `x<N>` (e.g. "d1+r+x1500+d0"). `toString()` is canonical and
 * `parse(toString())` is the identity, the same fixpoint contract as
 * `FaultConfig` specs.
 */

#ifndef LWSP_FAULT_STORM_HH
#define LWSP_FAULT_STORM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace lwsp {
namespace fault {

/** Which phase of the crash/recover cycle the next failure lands in. */
enum class FailurePhase : std::uint8_t
{
    Drain,     ///< interrupt the §IV-F drain after `at` quiescence iters
    Recovery,  ///< re-enter recovery on the same image (`at` unused)
    Exec,      ///< run the recovered machine `at` cycles, then fail again
};

const char *failurePhaseName(FailurePhase p);

/** One failure in a storm. */
struct FailureEvent
{
    FailurePhase phase = FailurePhase::Exec;
    /** Drain: quiescence iterations; Exec: cycles after power-on. */
    std::uint64_t at = 0;

    bool operator==(const FailureEvent &o) const
    {
        return phase == o.phase && at == o.at;
    }
};

/**
 * An ordered failure schedule. Leading Drain events interrupt the drain
 * of the *initial* crash; Drain events after an Exec event interrupt
 * that failure's drain. The schedule is finite, so every storm
 * terminates: once it is exhausted the final recovered machine runs to
 * completion and is checked against the crash-free golden state.
 */
struct FailureSchedule
{
    std::vector<FailureEvent> events;

    bool empty() const { return events.empty(); }
    std::size_t size() const { return events.size(); }

    bool operator==(const FailureSchedule &o) const
    {
        return events == o.events;
    }

    /** Total failures the schedule injects on top of the initial one. */
    unsigned extraFailures() const
    {
        return static_cast<unsigned>(events.size());
    }

    /** Canonical '+'-joined form ("d1+r+x1500"); "" when empty. */
    std::string toString() const;

    /**
     * Parse a schedule produced by toString(). Accepts the empty string
     * (empty schedule). @p err explains failures.
     */
    static bool parse(const std::string &s, FailureSchedule &out,
                      std::string &err);

    /**
     * Seeded random schedule of @p n events: ~30% drain interrupts
     * (0..3 iterations), ~20% recovery re-entries, the rest exec
     * failures with gaps uniform in [1, max_exec_gap]. Deterministic in
     * (seed, n, max_exec_gap), so campaign reproducer specs regenerate
     * the exact storm.
     */
    static FailureSchedule random(std::uint64_t seed, unsigned n,
                                  Tick max_exec_gap);
};

} // namespace fault
} // namespace lwsp

#endif // LWSP_FAULT_STORM_HH
