#include "fault/storm.hh"

#include <cstdio>
#include <cstdlib>

#include "common/random.hh"

namespace lwsp {
namespace fault {

const char *
failurePhaseName(FailurePhase p)
{
    switch (p) {
      case FailurePhase::Drain: return "drain";
      case FailurePhase::Recovery: return "recovery";
      case FailurePhase::Exec: return "exec";
    }
    return "<bad>";
}

std::string
FailureSchedule::toString() const
{
    std::string s;
    for (const FailureEvent &e : events) {
        if (!s.empty())
            s += '+';
        switch (e.phase) {
          case FailurePhase::Drain:
          case FailurePhase::Exec: {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%c%llu",
                          e.phase == FailurePhase::Drain ? 'd' : 'x',
                          static_cast<unsigned long long>(e.at));
            s += buf;
            break;
          }
          case FailurePhase::Recovery:
            s += 'r';  // no parameter: PM is untouched either way
            break;
        }
    }
    return s;
}

bool
FailureSchedule::parse(const std::string &s, FailureSchedule &out,
                       std::string &err)
{
    FailureSchedule sched;
    if (!s.empty() && s.back() == '+') {
        err = "empty storm event (trailing '+')";
        return false;
    }
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t plus = s.find('+', pos);
        std::string tok = s.substr(
            pos, plus == std::string::npos ? std::string::npos
                                           : plus - pos);
        pos = plus == std::string::npos ? s.size() : plus + 1;
        if (tok.empty()) {
            err = "empty storm event (stray '+')";
            return false;
        }
        FailureEvent e;
        switch (tok[0]) {
          case 'd': e.phase = FailurePhase::Drain; break;
          case 'r': e.phase = FailurePhase::Recovery; break;
          case 'x': e.phase = FailurePhase::Exec; break;
          default:
            err = "bad storm event '" + tok + "' (want d<N>|r|x<N>)";
            return false;
        }
        std::string num = tok.substr(1);
        if (e.phase == FailurePhase::Recovery) {
            if (!num.empty()) {
                err = "storm event '" + tok +
                      "' takes no parameter (want plain 'r')";
                return false;
            }
        } else {
            // Digits only — strtoull would happily wrap "x-3" around.
            bool digits = !num.empty();
            for (char c : num)
                digits = digits && c >= '0' && c <= '9';
            char *end = nullptr;
            e.at = std::strtoull(num.c_str(), &end, 10);
            if (!digits || end == nullptr || *end != '\0') {
                err = "bad storm event value in '" + tok + "'";
                return false;
            }
        }
        sched.events.push_back(e);
    }
    out = std::move(sched);
    err.clear();
    return true;
}

FailureSchedule
FailureSchedule::random(std::uint64_t seed, unsigned n, Tick max_exec_gap)
{
    Rng rng(seed ^ 0x73746f726dull); // "storm"
    if (max_exec_gap < 2)
        max_exec_gap = 2;
    FailureSchedule s;
    for (unsigned i = 0; i < n; ++i) {
        FailureEvent e;
        std::uint64_t roll = rng.below(10);
        if (roll < 3) {
            e.phase = FailurePhase::Drain;
            e.at = rng.below(4);
        } else if (roll < 5) {
            e.phase = FailurePhase::Recovery;
        } else {
            e.phase = FailurePhase::Exec;
            e.at = 1 + rng.below(max_exec_gap);
        }
        s.events.push_back(e);
    }
    return s;
}

} // namespace fault
} // namespace lwsp
