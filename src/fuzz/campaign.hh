/**
 * @file
 * Crash-consistency fuzzing campaigns.
 *
 * One campaign = one seeded random program (workload- or IR-sourced) run
 * crash-free once (the golden run, with the LRPO invariant oracle live),
 * then power-failed at a set of adversarially mined cycles — region-
 * boundary broadcast edges, WPQ drain steps and commit advances observed
 * by the oracle, plus jitter, endpoints and random filler — in single-
 * and double-failure variants. Every recovered execution must finish and
 * reproduce the golden application state exactly, and no run may trip an
 * invariant oracle. On failure the engine shrinks the (program,
 * crash-cycle) pair — first climbing the program-shrink ladder, then
 * minimizing the crash cycle — and reports a one-line seed-spec string
 * that `fuzz_crash --replay` turns back into the exact failing run.
 */

#ifndef LWSP_FUZZ_CAMPAIGN_HH
#define LWSP_FUZZ_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "fault/fault.hh"
#include "fault/storm.hh"
#include "noc/topology.hh"
#include "pds/pds.hh"
#include "serve/serve.hh"
#include "trace/events.hh"

namespace lwsp {
namespace fuzz {

/** How power failure is injected when replaying a single point. */
enum class CrashMode : std::uint8_t
{
    None,           ///< full campaign: mine points, try them all
    Single,         ///< one failure at crashAt
    DoubleRecovery, ///< failure at crashAt, second during the recovery run
    DoubleDrain,    ///< failure at crashAt, second mid-§IV-F drain
    Storm,          ///< failure at crashAt, then the whole storm schedule
};

/**
 * A fully reproducible case: the seed regenerates the program and system
 * configuration, the shrink level sizes the program, and the crash
 * fields (when mode != None) pin one exact injection. Round-trips
 * through the `lwsp-fuzz:v1:...` spec string.
 */
struct CaseSpec
{
    enum class Source : std::uint8_t { Workload, Ir, Pds, Serve };

    Source source = Source::Workload;
    std::uint64_t seed = 1;
    unsigned shrink = 0;
    /**
     * Pds-sourced cases only: which persistent data structure program
     * to run (src/pds). Rides the spec string as a `pds=` token; the
     * structure-specific semantic + crash-prefix oracles check every
     * run on top of the generic golden-state diff.
     */
    pds::PdsSpec pds;
    /**
     * Serve-sourced cases only: the service workload (src/serve) whose
     * request stream is lowered onto the pds hash table and crash-tested
     * mid-stream. Rides the spec string as a `serve=` token; the same
     * structure oracles as pds cases run against the lowered op tape.
     */
    serve::ServeSpec serve;

    CrashMode mode = CrashMode::None;
    Tick crashAt = 0;
    Tick crashAt2 = 0;        ///< DoubleRecovery second failure cycle
    unsigned drainIters = 0;  ///< DoubleDrain: quiescence iters completed
    /**
     * Storm mode: the failure schedule executed after the initial crash
     * at crashAt (fault/storm.hh). Rides the spec string as a `storm=`
     * token; an empty schedule makes Storm equivalent to Single.
     */
    fault::FailureSchedule storm;
    /** Enable the MC's test-only early-release fault on victim runs. */
    bool fault = false;
    /**
     * Hardware fault axes armed on the victim machine (fault/fault.hh).
     * When any axis is armed the victim runs with the fault layer live
     * and hardened checkpoints, and recovery goes through
     * System::recoverChecked — a DetectedUnrecoverable verdict passes
     * (the fault was reported); silent corruption fails.
     */
    fault::FaultConfig faults;

    /**
     * Machine-shape overrides for the scale-out axis (Fig 23). mcs = 0
     * keeps the seed-drawn MC count (1-4); a nonzero value pins it —
     * this is how the campaign reaches the sharded many-MC shapes
     * (including >= 64, the broadcast-mask regression surface). The
     * topology defaults to the flat fabric; a tree value switches the
     * victim to hierarchical boundary broadcast/ACK aggregation. Both
     * ride the spec string as `mcs=` / `topo=` tokens, emitted only
     * when non-default so existing spec strings round-trip unchanged.
     */
    unsigned mcs = 0;
    noc::TopologyConfig topo;

    std::string toString() const;
    /** Parse a spec string; on failure @p err explains why. */
    static bool parse(const std::string &s, CaseSpec &out,
                      std::string &err);
};

struct CampaignOptions
{
    /** Minimum injected crash points per campaign (mode == None). */
    unsigned minCrashPoints = 8;
    /** Also inject double failures (recovery-run and mid-drain). */
    bool doubleCrash = true;
    /**
     * Also inject seeded failure storms (fuzz_crash --storm): every
     * second mined point additionally runs under a random
     * fault::FailureSchedule derived from the campaign seed.
     */
    bool stormCrash = false;
    /** Run every system with the LRPO invariant oracle compiled in. */
    bool oracles = true;
    /** Shrink a failing case before reporting it. */
    bool shrinkOnFailure = true;
    /**
     * Replay path only: run the victim with the telemetry sink armed and
     * return its event trace (and the oracle's per-MC committed-prefix
     * view) in the CampaignResult, for `fuzz_crash --trace-out`.
     */
    bool captureTrace = false;
};

struct CampaignResult
{
    bool passed = true;
    std::string failure;     ///< first failure description (when !passed)
    CaseSpec reproducer;     ///< minimal failing point (when !passed)
    bool shrunk = false;     ///< reproducer is smaller than the original
    unsigned pointsTried = 0;
    unsigned runsExecuted = 0;
    std::uint64_t oracleChecks = 0;
    Tick goldenCycles = 0;

    // Hardened-recovery verdict tallies (fault-armed points only).
    unsigned recoveredExact = 0;
    unsigned recoveredDegraded = 0;
    unsigned detectedUnrecoverable = 0;
    /** Max power failures survived by any single point's final state. */
    unsigned failuresSurvived = 0;

    /** Victim-run event trace (replay path with captureTrace). */
    std::vector<trace::Event> victimTrace;
    /** Oracle's committed-prefix region per MC, same capture path. */
    std::vector<RegionId> victimLastCommit;
};

/**
 * Run the campaign described by @p spec. With spec.mode == None this is
 * a full mine-and-sweep campaign; with a concrete mode it replays that
 * single injection (the `--replay` path).
 */
CampaignResult runCampaign(const CaseSpec &spec,
                           const CampaignOptions &opt = {});

/** Outcome of the static WSP-invariant check on one case's compile. */
struct StaticCheckResult
{
    bool ok = true;
    std::string summary;  ///< one-line case description
    std::string report;   ///< analysis::CheckReport::describe()
};

/**
 * Compile the case exactly as runCampaign would (same program draw,
 * same compiler configuration) and run the static WSP-invariant
 * checker (src/analysis) on the result, without simulating anything.
 * A violation here means the compiler emitted an unsafe partition —
 * report it instead of hunting for the crash point that exposes it.
 */
StaticCheckResult staticCheck(const CaseSpec &spec);

} // namespace fuzz
} // namespace lwsp

#endif // LWSP_FUZZ_CAMPAIGN_HH
