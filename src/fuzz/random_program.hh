/**
 * @file
 * Seeded random LightIR generation for crash-consistency fuzzing.
 *
 * Unlike the workload path (fixed kernel shapes with random knobs), this
 * generator draws whole control-flow graphs — straight-line runs,
 * single-block self-loops with recorded trip counts (exercising the
 * unrolling pass), multi-block natural loops, if/else diamonds, calls,
 * fences and atomics — and pushes them through the complete compiler
 * pipeline: boundary insertion at loop headers / callsites / sync ops,
 * store-threshold enforcement, region combining, checkpoint insertion
 * and pruning. Crash-recovering such a program end to end checks the
 * whole compiler/architecture contract, not just the hand-written
 * workload shapes.
 *
 * Programs are confluent by construction: every load and store is masked
 * into the thread's private partition, cross-thread effects are limited
 * to commutative AtomicAdds on shared cells, and each thread's operand
 * stream is independent of interleaving (no loads from shared memory).
 * Loops use reserved counter registers the random-op pool can never
 * clobber, so termination is guaranteed. All generated CFGs are
 * structured, hence reducible — a requirement of the store-counting
 * dataflow in the threshold pass.
 */

#ifndef LWSP_FUZZ_RANDOM_PROGRAM_HH
#define LWSP_FUZZ_RANDOM_PROGRAM_HH

#include <cstdint>

#include "fuzz/program_source.hh"

namespace lwsp {
namespace fuzz {

/** Generate a verified random module for (@p seed, @p shrink). */
FuzzProgram randomIrProgram(std::uint64_t seed, unsigned shrink);

} // namespace fuzz
} // namespace lwsp

#endif // LWSP_FUZZ_RANDOM_PROGRAM_HH
