/**
 * @file
 * The crash-at-every-cycle-of-recovery matrix.
 *
 * The fuzz campaigns crash *execution* at adversarially mined cycles;
 * this matrix crashes *recovery itself*. Each case crashes a known-good
 * run once, recovers it, measures the recovered run's crash-free length
 * R, and then — for every cycle t in [0, R) at the configured stride —
 * builds a fresh successor from the same victim image, power-fails it at
 * cycle t of its recovery run, recovers *that* crash and runs it out.
 * Every final state must satisfy the structure-semantics oracle (pds and
 * serve cases) or match the golden image (builtin workload case); any
 * DetectedUnrecoverable verdict on these fault-free images, any oracle
 * trip, and any run that hits the cycle cap (a hang) fails the case.
 *
 * Cases cover all five schemes (LightWSP / Capri / PPA / cWSP in
 * Recovery mode, plus the pmtx undo-log baseline, whose rollback
 * preamble gets crashed mid-undo-replay by the small-t points) over the
 * three pds structures and a serve request tape, plus a multi-threaded
 * builtin workload program under LightWSP.
 */

#ifndef LWSP_FUZZ_RECOVERY_MATRIX_HH
#define LWSP_FUZZ_RECOVERY_MATRIX_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "noc/topology.hh"
#include "pds/pds.hh"
#include "serve/serve.hh"
#include "sim/simulator.hh"

namespace lwsp {
namespace fuzz {

/** One row of the recovery re-entrancy matrix. */
struct MatrixCase
{
    enum class Source : std::uint8_t { Pds, Serve, Builtin };

    std::string name;    ///< stable row label ("hash/capri", ...)
    Source source = Source::Pds;
    pds::PdsScheme scheme = pds::PdsScheme::LightWsp;
    pds::PdsSpec pds;        ///< Pds source
    serve::ServeSpec serve;  ///< Serve source
    std::uint64_t wlSeed = 1;  ///< Builtin source: workload-program seed

    /**
     * Machine-shape overrides (Fig 23 scale-out rows). numMcs = 0 keeps
     * the scheme's default shape; nonzero pins the MC count, and a tree
     * topology reruns the whole crash-at-every-recovery-cycle sweep on
     * the hierarchical broadcast/ACK fabric.
     */
    unsigned numMcs = 0;
    noc::TopologyConfig topology;
};

struct MatrixOptions
{
    /** Crash-point stride over the recovered run (1 = every cycle). */
    Tick step = 1;
    /** Clock driver for every run (A/B determinism knob). */
    SimEngine engine = SimEngine::Event;
};

struct MatrixCaseResult
{
    bool passed = true;
    std::string failure;       ///< first failure (when !passed)
    std::string name;
    Tick goldenCycles = 0;     ///< crash-free run length
    Tick recoveryCycles = 0;   ///< crash-free *recovered*-run length
    unsigned pointsTried = 0;  ///< recovery-crash cycles exercised
    unsigned runsExecuted = 0;
    unsigned recoveredExact = 0;
    unsigned recoveredDegraded = 0;
};

/** The standard matrix: 3 pds kinds x 5 schemes + serve x 5 + builtin. */
std::vector<MatrixCase> recoveryMatrixCases();

/** Run one case; opt.step > 1 subsamples the crash points. */
MatrixCaseResult runRecoveryMatrixCase(const MatrixCase &c,
                                       const MatrixOptions &opt = {});

} // namespace fuzz
} // namespace lwsp

#endif // LWSP_FUZZ_RECOVERY_MATRIX_HH
