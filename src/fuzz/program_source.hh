/**
 * @file
 * Common shape of a fuzzer-generated test program: a LightIR module plus
 * the execution parameters the campaign engine needs to run it and
 * differentially compare its application-visible state.
 */

#ifndef LWSP_FUZZ_PROGRAM_SOURCE_HH
#define LWSP_FUZZ_PROGRAM_SOURCE_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "ir/program.hh"

namespace lwsp {
namespace fuzz {

struct FuzzProgram
{
    std::unique_ptr<ir::Module> module;
    unsigned threads = 1;
    /** Per-thread partition size (power of two; differential range). */
    std::size_t footprintBytes = 8 * 1024;
    /** Persisted lock words for post-crash lock reconstruction. */
    std::vector<Addr> lockAddrs;
    /** One-line description for failure reports. */
    std::string summary;
};

} // namespace fuzz
} // namespace lwsp

#endif // LWSP_FUZZ_PROGRAM_SOURCE_HH
