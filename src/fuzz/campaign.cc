#include "fuzz/campaign.hh"

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "analysis/wsp_checker.hh"
#include "common/random.hh"
#include "compiler/compiler.hh"
#include "core/system.hh"
#include "fuzz/random_program.hh"
#include "fuzz/random_workload.hh"
#include "workloads/generator.hh"

namespace lwsp {
namespace fuzz {

// ---- Spec strings ----------------------------------------------------------

namespace {

constexpr const char *specPrefix = "lwsp-fuzz:v1:";

const char *
modeToken(CrashMode m)
{
    switch (m) {
      case CrashMode::None: return "campaign";
      case CrashMode::Single: return "single";
      case CrashMode::DoubleRecovery: return "dbl-rec";
      case CrashMode::DoubleDrain: return "dbl-drain";
      case CrashMode::Storm: return "storm";
    }
    return "?";
}

} // namespace

std::string
CaseSpec::toString() const
{
    std::ostringstream os;
    const char *src = source == Source::Workload ? "wl"
                      : source == Source::Ir     ? "ir"
                      : source == Source::Pds    ? "pds"
                                                 : "serve";
    os << specPrefix << src << ":seed=" << seed << ":shrink=" << shrink;
    if (source == Source::Pds)
        os << ":pds=" << pds.toString();
    if (source == Source::Serve)
        os << ":serve=" << serve.toString();
    if (mode != CrashMode::None) {
        os << ":mode=" << modeToken(mode) << ":crash=" << crashAt;
        if (mode == CrashMode::DoubleRecovery)
            os << ":crash2=" << crashAt2;
        if (mode == CrashMode::DoubleDrain)
            os << ":drain=" << drainIters;
    }
    if (!storm.empty())
        os << ":storm=" << storm.toString();
    if (fault)
        os << ":fault=1";
    if (std::string f = faults.toString(); !f.empty())
        os << ":faults=" << f;
    if (mcs != 0)
        os << ":mcs=" << mcs;
    if (topo.isTree())
        os << ":topo=" << topo.toString();
    return os.str();
}

bool
CaseSpec::parse(const std::string &s, CaseSpec &out, std::string &err)
{
    if (s.rfind(specPrefix, 0) != 0) {
        err = "spec must start with '" + std::string(specPrefix) + "'";
        return false;
    }
    std::string rest = s.substr(std::string(specPrefix).size());
    std::vector<std::string> tokens;
    std::size_t pos = 0;
    while (pos <= rest.size()) {
        std::size_t colon = rest.find(':', pos);
        if (colon == std::string::npos)
            colon = rest.size();
        tokens.push_back(rest.substr(pos, colon - pos));
        pos = colon + 1;
    }
    if (tokens.empty()) {
        err = "empty spec";
        return false;
    }

    CaseSpec spec;
    if (tokens[0] == "wl") {
        spec.source = Source::Workload;
    } else if (tokens[0] == "ir") {
        spec.source = Source::Ir;
    } else if (tokens[0] == "pds") {
        spec.source = Source::Pds;
    } else if (tokens[0] == "serve") {
        spec.source = Source::Serve;
    } else {
        err = "unknown source '" + tokens[0] +
              "' (want wl|ir|pds|serve)";
        return false;
    }

    for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string &tok = tokens[i];
        if (tok.empty())
            continue;
        std::size_t eq = tok.find('=');
        if (eq == std::string::npos) {
            err = "token '" + tok + "' is not key=value";
            return false;
        }
        std::string key = tok.substr(0, eq);
        std::string val = tok.substr(eq + 1);
        try {
            if (key == "seed") {
                spec.seed = std::stoull(val);
            } else if (key == "shrink") {
                spec.shrink = static_cast<unsigned>(std::stoul(val));
            } else if (key == "mode") {
                if (val == "campaign") spec.mode = CrashMode::None;
                else if (val == "single") spec.mode = CrashMode::Single;
                else if (val == "dbl-rec")
                    spec.mode = CrashMode::DoubleRecovery;
                else if (val == "dbl-drain")
                    spec.mode = CrashMode::DoubleDrain;
                else if (val == "storm")
                    spec.mode = CrashMode::Storm;
                else {
                    err = "unknown mode '" + val + "'";
                    return false;
                }
            } else if (key == "crash") {
                spec.crashAt = std::stoull(val);
            } else if (key == "crash2") {
                spec.crashAt2 = std::stoull(val);
            } else if (key == "drain") {
                spec.drainIters = static_cast<unsigned>(std::stoul(val));
            } else if (key == "storm") {
                std::string serr;
                if (!fault::FailureSchedule::parse(val, spec.storm,
                                                   serr)) {
                    err = "bad storm schedule: " + serr;
                    return false;
                }
            } else if (key == "pds") {
                std::string perr;
                if (!pds::PdsSpec::parse(val, spec.pds, perr)) {
                    err = "bad pds spec: " + perr;
                    return false;
                }
            } else if (key == "serve") {
                std::string serr;
                if (!serve::ServeSpec::parse(val, spec.serve, serr)) {
                    err = "bad serve spec: " + serr;
                    return false;
                }
            } else if (key == "fault") {
                spec.fault = val != "0";
            } else if (key == "faults") {
                std::string ferr;
                if (!fault::FaultConfig::parse(val, spec.faults, ferr)) {
                    err = "bad faults spec: " + ferr;
                    return false;
                }
            } else if (key == "mcs") {
                spec.mcs = static_cast<unsigned>(std::stoul(val));
                if (spec.mcs == 0) {
                    err = "mcs must be >= 1";
                    return false;
                }
            } else if (key == "topo") {
                if (!noc::TopologyConfig::parse(val, spec.topo)) {
                    err = "bad topology '" + val +
                          "' (want flat|tree<radix>)";
                    return false;
                }
            } else {
                err = "unknown key '" + key + "'";
                return false;
            }
        } catch (const std::exception &) {
            err = "bad value in '" + tok + "'";
            return false;
        }
    }
    out = spec;
    err.clear();
    return true;
}

// ---- Case construction -----------------------------------------------------

namespace {

struct CaseBuild
{
    compiler::CompiledProgram prog;
    compiler::CompilerConfig ccfg;
    core::SystemConfig cfg;
    unsigned threads = 1;
    std::size_t footprint = 0;
    std::vector<Addr> lockAddrs;
    std::string summary;

    /** Pds- or serve-sourced case: arm the structure-specific oracles. */
    bool isPds = false;
    /** Post-shrink structure spec (what the oracles replay). */
    pds::PdsSpec pdsSpec;
    /**
     * Serve-sourced case: the lowered request op tape. Non-empty means
     * the structure oracles replay this injected tape instead of the
     * spec-generated one.
     */
    std::vector<pds::PdsOp> pdsOps;
    /**
     * The crash-prefix oracle is sound only for converged compiles on
     * the gated scheme: non-convergence hands regions to the runtime
     * WPQ-overflow fallback, which breaks region-prefix durability.
     */
    bool pdsPrefixOk = false;
};

/** Structure-oracle dispatch: generated tape vs injected (serve) tape. */
std::string
pdsSemanticsOf(const CaseBuild &bc, const mem::MemImage &img)
{
    return bc.pdsOps.empty()
               ? pds::checkSemantics(bc.pdsSpec, img)
               : pds::checkSemantics(bc.pdsSpec, bc.pdsOps, img);
}

std::string
pdsPrefixOf(const CaseBuild &bc, const mem::MemImage &img)
{
    return bc.pdsOps.empty()
               ? pds::checkCrashPrefix(bc.pdsSpec, img)
               : pds::checkCrashPrefix(bc.pdsSpec, bc.pdsOps, img);
}

/**
 * The hardware/compiler shape shared by the structure-program sources
 * (pds and serve): gated LightWSP, 1 core, WPQs big enough for the
 * prefix oracle's convergence requirement.
 */
void
drawStructureConfig(std::uint64_t seed, bool oracles,
                    core::SystemConfig &cfg,
                    compiler::CompilerConfig &ccfg)
{
    Rng rng(seed ^ 0x66757a7a2d636667ull); // "fuzz-cfg"
    cfg.scheme = core::Scheme::LightWsp;
    static const unsigned mcChoices[] = {1, 2, 2, 4};
    cfg.numMcs = mcChoices[rng.below(4)];
    // WPQs no smaller than 16: the prefix oracle needs converged
    // compiles, and thresholds below 4 stop converging.
    static const unsigned wpqChoices[] = {16, 64};
    cfg.mc.wpqEntries = wpqChoices[rng.below(2)];
    cfg.mc.strictFlushAcks = rng.chance(0.25);
    cfg.numCores = 1;
    cfg.maxCycles = 30'000'000;
    cfg.oraclesEnabled = oracles;
    cfg.applySchemeDefaults();
    ccfg.storeThreshold = static_cast<unsigned>(
        cfg.mc.wpqEntries / (rng.chance(0.5) ? 2 : 4));
}

/**
 * Apply the spec's machine-shape overrides (mcs=/topo= tokens) on top
 * of the seed draw. The draw itself is untouched — same rng stream, so
 * pinning the shape never perturbs the rest of the case. Scheme
 * defaults are not re-derived: System's constructor syncs mc.numMcs /
 * mc.treeAcks from the top-level fields itself.
 */
void
applyMachineOverrides(const CaseSpec &spec, core::SystemConfig &cfg)
{
    if (spec.mcs != 0)
        cfg.numMcs = spec.mcs;
    cfg.topology = spec.topo;
}

/** The `mcs=N [topo=treeR]` tail every case summary carries. */
std::string
shapeSummary(const core::SystemConfig &cfg)
{
    std::string s = " mcs=" + std::to_string(cfg.numMcs);
    if (cfg.topology.isTree())
        s += " topo=" + cfg.topology.toString();
    return s;
}

/**
 * Derive the system + compiler configuration from the seed. The draw is
 * independent of the shrink level so a shrunk reproducer still runs the
 * same hardware shape it failed on. Ranges follow what the crash-stress
 * suite has proven safe (tiny gated WPQs, strict commit, 1-4 MCs);
 * the spec's mcs=/topo= overrides reach past them for the scale-out
 * shapes (test_fuzz pins a 65-MC tree campaign through this path).
 */
CaseBuild
buildCase(const CaseSpec &spec, bool oracles)
{
    if (spec.source == CaseSpec::Source::Pds ||
        spec.source == CaseSpec::Source::Serve) {
        // Shrink ladder: halve the op tape (pds) / request stream
        // (serve) — the structure geometry is part of the bug surface,
        // so it stays fixed.
        pds::PdsSpec ps;
        std::vector<pds::PdsOp> ops;
        pds::PdsProgram pp;
        std::string srcSummary;
        if (spec.source == CaseSpec::Source::Serve) {
            serve::ServeSpec ss = spec.serve;
            for (unsigned i = 0; i < spec.shrink; ++i)
                ss.numRequests = std::max(8u, ss.numRequests / 2);
            serve::ServeWorkload wl = serve::buildWorkload(ss);
            ps = wl.pdsSpec;
            ops = std::move(wl.ops);
            pp = pds::buildPdsProgram(ps, /*pmtx=*/false, ops);
            srcSummary = "serve " + ss.toString() + " -> " + pp.summary;
        } else {
            ps = spec.pds;
            for (unsigned i = 0; i < spec.shrink; ++i)
                ps.numOps = std::max(8u, ps.numOps / 2);
            pp = pds::buildPdsProgram(ps, /*pmtx=*/false);
            srcSummary = pp.summary;
        }

        core::SystemConfig cfg;
        compiler::CompilerConfig ccfg;
        drawStructureConfig(spec.seed, oracles, cfg, ccfg);
        applyMachineOverrides(spec, cfg);
        compiler::LightWspCompiler comp(ccfg);

        CaseBuild out;
        out.ccfg = ccfg;
        out.prog = comp.compile(std::move(pp.module));
        out.cfg = cfg;
        out.threads = 1;
        out.footprint = pp.params.footprintBytes;
        out.isPds = true;
        out.pdsSpec = ps;
        out.pdsOps = std::move(ops);
        out.pdsPrefixOk = out.prog.stats.thresholdConverged;
        out.summary = srcSummary + shapeSummary(cfg) +
                      " wpq=" + std::to_string(cfg.mc.wpqEntries) +
                      " thr=" + std::to_string(ccfg.storeThreshold) +
                      (cfg.mc.strictFlushAcks ? " strict" : "");
        return out;
    }

    FuzzProgram src = (spec.source == CaseSpec::Source::Workload)
                          ? randomWorkloadProgram(spec.seed, spec.shrink)
                          : randomIrProgram(spec.seed, spec.shrink);

    Rng rng(spec.seed ^ 0x66757a7a2d636667ull); // "fuzz-cfg"
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::LightWsp;
    static const unsigned mcChoices[] = {1, 2, 2, 4};
    cfg.numMcs = mcChoices[rng.below(4)];
    static const unsigned wpqChoices[] = {4, 8, 8, 64};
    cfg.mc.wpqEntries = wpqChoices[rng.below(4)];
    if (cfg.mc.wpqEntries <= 8)
        cfg.core.febEntries = 8;
    cfg.mc.strictFlushAcks = rng.chance(0.25);
    bool oversubscribe = src.threads > 1 && rng.chance(0.3);
    cfg.numCores = oversubscribe ? std::max(1u, src.threads / 2)
                                 : std::min(4u, src.threads);
    if (oversubscribe)
        cfg.ctxQuantum = 1500;
    cfg.maxCycles = 30'000'000;
    cfg.oraclesEnabled = oracles;
    cfg.applySchemeDefaults();
    applyMachineOverrides(spec, cfg);

    compiler::CompilerConfig ccfg;
    static const unsigned thrChoices[] = {4, 8, 16, 32};
    ccfg.storeThreshold = thrChoices[rng.below(4)];
    compiler::LightWspCompiler comp(ccfg);

    CaseBuild out;
    out.ccfg = ccfg;
    out.prog = comp.compile(std::move(src.module));
    out.cfg = cfg;
    out.threads = src.threads;
    out.footprint = src.footprintBytes;
    out.lockAddrs = src.lockAddrs;
    out.summary = src.summary + shapeSummary(cfg) +
                  " wpq=" + std::to_string(cfg.mc.wpqEntries) + " thr=" +
                  std::to_string(ccfg.storeThreshold) +
                  (cfg.mc.strictFlushAcks ? " strict" : "");
    return out;
}

/** Golden state + event mine for one build. */
struct Golden
{
    std::unique_ptr<core::System> sys;
    Tick cycles = 0;
    std::string error;  ///< nonempty: the golden run itself failed
};

Golden
runGolden(const CaseBuild &bc, std::uint64_t &checks, unsigned &runs)
{
    Golden g;
    g.sys = std::make_unique<core::System>(bc.cfg, bc.prog, bc.threads);
    ++runs;
    auto r = g.sys->run();
    g.cycles = r.cycles;
    if (auto *o = g.sys->oracle()) {
        checks += o->checksRun();
        if (!o->ok()) {
            g.error = "golden run tripped oracle: " + o->firstViolation();
            return g;
        }
    }
    if (!r.completed) {
        g.error = "golden run did not complete (live-lock?)";
        return g;
    }
    if (bc.isPds) {
        // Structure-walk the clean final state: a mismatch here is an
        // emission/model bug, not a crash-consistency one — report it
        // before any power failures muddy the water.
        if (auto msg = pdsSemanticsOf(bc, g.sys->execImage());
            !msg.empty()) {
            g.error = "golden " + msg;
        }
    }
    return g;
}

std::string
diffAppState(const core::System &got, const core::System &golden,
             const CaseBuild &bc, const char *what)
{
    Addr lo = workloads::Workload::heapBase;
    Addr hi =
        lo + static_cast<Addr>(bc.threads) * bc.footprint;
    auto heap = got.pmImage().diffInRange(golden.pmImage(), lo, hi);
    if (!heap.empty()) {
        std::ostringstream os;
        os << what << ": heap differs from golden at 0x" << std::hex
           << heap[0] << " (" << std::dec << heap.size() << " words)";
        return os.str();
    }
    Addr sh = workloads::Workload::sharedBase;
    auto shared = got.pmImage().diffInRange(golden.pmImage(), sh,
                                            sh + 4096);
    if (!shared.empty()) {
        std::ostringstream os;
        os << what << ": shared page differs from golden at 0x"
           << std::hex << shared[0];
        return os.str();
    }
    return {};
}

/** Harvest a finished system's oracle; returns a violation or "". */
std::string
harvestOracle(core::System &sys, const char *what, std::uint64_t &checks)
{
    const auto *o = sys.oracle();
    if (!o)
        return {};
    checks += o->checksRun();
    if (!o->ok())
        return std::string(what) + " tripped oracle: " +
               o->firstViolation();
    return {};
}

/**
 * Execute one injection point. @return "" on pass, else the failure.
 * pt.mode selects single / double-recovery / double-drain.
 */
std::string
checkPoint(const CaseBuild &bc, const core::System &golden,
           const CaseSpec &pt, std::uint64_t &checks, unsigned &runs,
           CampaignResult &tally, CampaignResult *capture = nullptr)
{
    // The fault knob models a hardware bug in the victim machine only;
    // recovery always runs on correct hardware. Injected *hardware*
    // faults (pt.faults) likewise arm only the victim; recovery keeps
    // just the hardened checkpoint format so it can decode and verify
    // what the hardened victim persisted.
    core::SystemConfig vcfg = bc.cfg;
    vcfg.mc.faultReleaseEarly = pt.fault;
    bool hw_faults = pt.faults.anyArmed();
    if (hw_faults) {
        vcfg.faults = pt.faults;
        vcfg.faults.enabled = true;
        vcfg.faults.hardenedCkpt = true;
        if (vcfg.faults.seed == 0)
            vcfg.faults.seed = pt.seed;
    }
    core::SystemConfig rcfg = bc.cfg;
    rcfg.faults.hardenedCkpt = hw_faults;
    if (capture)
        vcfg.traceEnabled = true;

    // Storm mode walks pt.storm with a cursor: runs of consecutive Drain
    // events become interrupt budgets for the next crash drain, Recovery
    // events re-enter recoverChecked on the same image, Exec events run
    // the recovered machine into the next failure.
    std::size_t stormIdx = 0;
    auto takeDrains = [&pt, &stormIdx] {
        std::vector<unsigned> iters;
        while (stormIdx < pt.storm.events.size() &&
               pt.storm.events[stormIdx].phase ==
                   fault::FailurePhase::Drain) {
            iters.push_back(static_cast<unsigned>(
                pt.storm.events[stormIdx].at));
            ++stormIdx;
        }
        return iters;
    };

    core::System victim(vcfg, bc.prog, bc.threads);
    ++runs;
    core::RunResult vr;
    if (pt.mode == CrashMode::DoubleDrain) {
        vr = victim.runWithDoubleFailureDuringDrain(pt.crashAt,
                                                    pt.drainIters);
    } else if (pt.mode == CrashMode::Storm) {
        vr = victim.runWithFailureStorm(pt.crashAt, takeDrains());
    } else {
        vr = victim.runWithPowerFailure(pt.crashAt);
    }
    if (capture) {
        if (const auto *sink = victim.traceSink())
            capture->victimTrace = sink->snapshot();
        if (const auto *o = victim.oracle()) {
            for (unsigned m = 0; m < vcfg.numMcs; ++m)
                capture->victimLastCommit.push_back(o->lastCommit(m));
        }
    }
    // Terminal-state check: golden-diff plus, for pds cases, the
    // structure-walk oracle over the final image.
    auto finalCheck = [&](const core::System &sys,
                          const char *what) -> std::string {
        if (auto e = diffAppState(sys, golden, bc, what); !e.empty())
            return e;
        if (bc.isPds) {
            if (auto msg = pdsSemanticsOf(bc, sys.execImage());
                !msg.empty()) {
                return std::string(what) + " " + msg;
            }
        }
        return {};
    };

    if (auto e = harvestOracle(victim, "victim", checks); !e.empty())
        return e;
    if (vr.completed)
        return finalCheck(victim, "uncrashed victim");
    if (!victim.crashed())
        return "victim neither completed nor crashed";

    if (bc.isPds && bc.pdsPrefixOk && !pt.fault && !hw_faults) {
        // Gated LightWSP + converged compile: the crash image must be a
        // program-order prefix of the recorded store stream.
        if (auto msg = pdsPrefixOf(bc, victim.pmImage());
            !msg.empty()) {
            return "victim " + msg;
        }
    }

    auto tallyOutcome = [&tally](core::RecoveryOutcome o) {
        switch (o) {
          case core::RecoveryOutcome::Recovered:
            ++tally.recoveredExact;
            break;
          case core::RecoveryOutcome::RecoveredDegraded:
            ++tally.recoveredDegraded;
            break;
          case core::RecoveryOutcome::DetectedUnrecoverable:
            ++tally.detectedUnrecoverable;
            break;
        }
    };
    if (pt.mode == CrashMode::Storm) {
        // Chain crash/recover rounds through the rest of the schedule.
        // Invariant at the loop head: *cur is a crashed machine whose
        // PM image is the one to recover from.
        const core::System *cur = &victim;
        std::unique_ptr<core::System> hold;
        while (true) {
            auto recres = core::System::recoverChecked(
                rcfg, bc.prog, bc.threads, cur->pmImage(), bc.lockAddrs,
                &cur->crashReport());
            tallyOutcome(recres.outcome);
            // Recovery-phase failures: power died during the recovery
            // preamble. PM is untouched, so the retry re-validates the
            // very same image — recoverChecked must be idempotent.
            while (stormIdx < pt.storm.events.size() &&
                   pt.storm.events[stormIdx].phase ==
                       fault::FailurePhase::Recovery) {
                ++stormIdx;
                auto retry = core::System::recoverChecked(
                    rcfg, bc.prog, bc.threads, cur->pmImage(),
                    bc.lockAddrs, &cur->crashReport());
                tallyOutcome(retry.outcome);
                if (retry.outcome != recres.outcome) {
                    return std::string("recovery re-entry changed "
                                       "verdict: ") +
                           core::recoveryOutcomeName(recres.outcome) +
                           " -> " +
                           core::recoveryOutcomeName(retry.outcome);
                }
                recres = std::move(retry);
            }
            if (recres.outcome ==
                core::RecoveryOutcome::DetectedUnrecoverable) {
                if (!hw_faults && !pt.fault)
                    return "fault-free image classified unrecoverable: " +
                           recres.detail;
                return {};
            }
            // All uses of *cur are done: reassigning hold below may
            // destroy the machine cur points into.
            hold = std::move(recres.sys);
            cur = nullptr;
            hold->setRecoveryLineage(
                recres.outcome, 1 + static_cast<unsigned>(stormIdx));
            ++runs;
            if (stormIdx < pt.storm.events.size()) {
                // Next event is Exec: run into the next power failure
                // (its drain eats any immediately following Drain
                // events' interrupt budgets).
                Tick gap = pt.storm.events[stormIdx].at;
                unsigned firedSoFar = static_cast<unsigned>(stormIdx);
                ++stormIdx;
                auto er = hold->runWithFailureStorm(gap, takeDrains());
                if (auto e = harvestOracle(*hold, "storm-exec", checks);
                    !e.empty()) {
                    return e;
                }
                if (er.completed) {
                    // Finished before the failure landed: the tail of
                    // the schedule is moot (this Exec and its trailing
                    // Drain budgets never fired).
                    tally.failuresSurvived = std::max(
                        tally.failuresSurvived, 1 + firedSoFar);
                    return finalCheck(*hold, "storm");
                }
                if (!hold->crashed())
                    return "storm-exec neither completed nor crashed";
                cur = hold.get();
                continue;
            }
            // Schedule exhausted: the last recovered machine runs out.
            auto fr = hold->run();
            if (auto e = harvestOracle(*hold, "storm-final", checks);
                !e.empty()) {
                return e;
            }
            if (!fr.completed)
                return "storm-final did not complete";
            tally.failuresSurvived =
                std::max(tally.failuresSurvived,
                         1 + static_cast<unsigned>(stormIdx));
            return finalCheck(*hold, "storm");
        }
    }

    auto recres = core::System::recoverChecked(
        rcfg, bc.prog, bc.threads, victim.pmImage(), bc.lockAddrs,
        &victim.crashReport());
    tallyOutcome(recres.outcome);
    if (recres.outcome == core::RecoveryOutcome::DetectedUnrecoverable) {
        // The hardening contract allows giving up, never lying: a
        // reported-unrecoverable image passes. Sanity-check the claim —
        // refusal without any armed fault would be a regression.
        if (!hw_faults && !pt.fault)
            return "fault-free image classified unrecoverable: " +
                   recres.detail;
        return {};
    }
    auto rec = std::move(recres.sys);
    ++runs;
    core::RunResult rr;
    if (pt.mode == CrashMode::DoubleRecovery) {
        rr = rec->runWithPowerFailure(pt.crashAt2);
        if (auto e = harvestOracle(*rec, "recovery-1", checks);
            !e.empty()) {
            return e;
        }
        if (!rr.completed) {
            if (!rec->crashed())
                return "recovery-1 neither completed nor crashed";
            auto rec2res = core::System::recoverChecked(
                rcfg, bc.prog, bc.threads, rec->pmImage(), bc.lockAddrs,
                &rec->crashReport());
            tallyOutcome(rec2res.outcome);
            if (rec2res.outcome ==
                core::RecoveryOutcome::DetectedUnrecoverable) {
                // Unhealed poison from the first fault can survive into
                // the second image; refusing it is within contract.
                if (!hw_faults && !pt.fault)
                    return "fault-free image classified unrecoverable: " +
                           rec2res.detail;
                return {};
            }
            auto rec2 = std::move(rec2res.sys);
            ++runs;
            auto r2 = rec2->run();
            if (auto e = harvestOracle(*rec2, "recovery-2", checks);
                !e.empty()) {
                return e;
            }
            if (!r2.completed)
                return "recovery-2 did not complete";
            tally.failuresSurvived =
                std::max(tally.failuresSurvived, 2u);
            return finalCheck(*rec2, "double-crash");
        }
        tally.failuresSurvived = std::max(tally.failuresSurvived, 2u);
        return finalCheck(*rec, "double-crash(early)");
    }

    rr = rec->run();
    if (auto e = harvestOracle(*rec, "recovery", checks); !e.empty())
        return e;
    if (!rr.completed)
        return "recovery did not complete";
    tally.failuresSurvived = std::max(
        tally.failuresSurvived,
        pt.mode == CrashMode::DoubleDrain ? 2u : 1u);
    return finalCheck(*rec, pt.mode == CrashMode::DoubleDrain
                                ? "drain-interrupted"
                                : "recovered");
}

/**
 * Mine adversarial crash cycles from the golden run's oracle event
 * timeline: spread samples over boundary broadcasts, WPQ drain steps
 * and commit advances (with jitter, so failures land on message edges,
 * not just on them), plus the endpoints and random filler up to
 * @p want points.
 */
std::vector<Tick>
minePoints(const core::System &golden, Tick cycles, unsigned want,
           Rng &rng)
{
    std::vector<Tick> pts;
    auto sample = [&](const std::vector<Tick> &v, unsigned k) {
        for (unsigned i = 0; i < k && !v.empty(); ++i) {
            Tick t = v[(v.size() * i) / k];
            std::uint64_t jitter = rng.below(5); // t-2 .. t+2
            t = (t + jitter >= 2) ? t + jitter - 2 : 0;
            pts.push_back(t);
        }
    };
    if (const auto *o = golden.oracle()) {
        unsigned per = want / 3 + 1;
        sample(o->boundaryTicks(), per);
        sample(o->flushTicks(), per);
        sample(o->commitTicks(), per);
    }
    pts.push_back(0);
    if (cycles > 32)
        pts.push_back(cycles - cycles / 32); // just before the finish
    while (pts.size() < want)
        pts.push_back(rng.below(std::max<Tick>(cycles, 1)));

    for (auto &t : pts)
        t = std::min(t, cycles > 0 ? cycles - 1 : 0);
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
    return pts;
}

/**
 * Minimize a failing point: climb the program-shrink ladder (rescaling
 * the crash cycle by the golden-duration ratio), then take the smallest
 * failing crash cycle from a halving ladder. Every probe re-runs the
 * full victim/recovery check, so the returned spec is failing by
 * construction; if nothing smaller fails, the original is returned.
 */
CaseSpec
shrinkFailure(CaseSpec failing, Tick golden_cycles,
              std::uint64_t &checks, unsigned &runs, bool &shrunk)
{
    shrunk = false;
    CampaignResult scratch;  // shrink probes don't count verdict tallies

    // Phase 0 (storm cases): minimize the failure schedule before the
    // program — drop events one at a time while the case still fails,
    // then halve exec gaps. A schedule that empties entirely reduces the
    // case to a plain single failure.
    if (failing.mode == CrashMode::Storm && !failing.storm.empty()) {
        CaseBuild bc = buildCase(failing, true);
        Golden g = runGolden(bc, checks, runs);
        if (g.error.empty()) {
            bool changed = true;
            while (changed && !failing.storm.empty()) {
                changed = false;
                for (std::size_t i = 0; i < failing.storm.events.size();
                     ++i) {
                    CaseSpec probe = failing;
                    probe.storm.events.erase(
                        probe.storm.events.begin() +
                        static_cast<std::ptrdiff_t>(i));
                    if (!checkPoint(bc, *g.sys, probe, checks, runs,
                                    scratch)
                             .empty()) {
                        failing = probe;
                        shrunk = true;
                        changed = true;
                        break;
                    }
                }
            }
            changed = true;
            while (changed) {
                changed = false;
                for (std::size_t i = 0; i < failing.storm.events.size();
                     ++i) {
                    if (failing.storm.events[i].phase !=
                            fault::FailurePhase::Exec ||
                        failing.storm.events[i].at <= 1) {
                        continue;
                    }
                    CaseSpec probe = failing;
                    probe.storm.events[i].at /= 2;
                    if (!checkPoint(bc, *g.sys, probe, checks, runs,
                                    scratch)
                             .empty()) {
                        failing = probe;
                        shrunk = true;
                        changed = true;
                    }
                }
            }
        }
    }

    // Phase 1: smaller program at the same relative position.
    for (unsigned level = failing.shrink + 1; level <= maxShrinkLevel;
         ++level) {
        CaseSpec cand = failing;
        cand.shrink = level;
        CaseBuild bc = buildCase(cand, true);
        Golden g = runGolden(bc, checks, runs);
        if (!g.error.empty())
            break;
        Tick scaled = golden_cycles
                          ? (failing.crashAt * g.cycles) / golden_cycles
                          : failing.crashAt;
        bool found = false;
        for (Tick t : {scaled, scaled / 2, scaled + scaled / 2}) {
            CaseSpec probe = cand;
            probe.crashAt = std::min(t, g.cycles ? g.cycles - 1 : 0);
            if (probe.mode == CrashMode::DoubleRecovery)
                probe.crashAt2 = probe.crashAt;
            if (!checkPoint(bc, *g.sys, probe, checks, runs, scratch)
                     .empty()) {
                failing = probe;
                golden_cycles = g.cycles;
                found = true;
                shrunk = true;
                break;
            }
        }
        if (!found)
            break;
    }

    // Phase 2: earliest failing crash cycle on a halving ladder.
    {
        CaseBuild bc = buildCase(failing, true);
        Golden g = runGolden(bc, checks, runs);
        if (g.error.empty()) {
            std::vector<Tick> ladder = {0, 1};
            for (Tick t = failing.crashAt / 16; t < failing.crashAt;
                 t *= 2) {
                if (t > 1)
                    ladder.push_back(t);
                if (t == 0)
                    break;
            }
            for (Tick t : ladder) {
                if (t >= failing.crashAt)
                    continue;
                CaseSpec probe = failing;
                probe.crashAt = t;
                if (probe.mode == CrashMode::DoubleRecovery)
                    probe.crashAt2 = t;
                if (!checkPoint(bc, *g.sys, probe, checks, runs,
                                scratch)
                         .empty()) {
                    failing = probe;
                    shrunk = true;
                    break;
                }
            }
        }
    }
    return failing;
}

} // namespace

// ---- Campaign driver -------------------------------------------------------

CampaignResult
runCampaign(const CaseSpec &spec, const CampaignOptions &opt)
{
    CampaignResult res;

    CaseBuild bc = buildCase(spec, opt.oracles);
    Golden g = runGolden(bc, res.oracleChecks, res.runsExecuted);
    res.goldenCycles = g.cycles;
    if (!g.error.empty()) {
        res.passed = false;
        res.failure = g.error + " [" + bc.summary + "]";
        res.reproducer = spec;
        return res;
    }

    // Replay path: one exact injection.
    if (spec.mode != CrashMode::None) {
        ++res.pointsTried;
        std::string err =
            checkPoint(bc, *g.sys, spec, res.oracleChecks,
                       res.runsExecuted, res,
                       opt.captureTrace ? &res : nullptr);
        if (!err.empty()) {
            res.passed = false;
            res.failure = err + " [" + bc.summary + "]";
            res.reproducer = spec;
        }
        return res;
    }

    // Full campaign: mined single crashes, then double variants.
    Rng rng(spec.seed ^ 0x706f696e7473ull); // "points"
    std::vector<Tick> pts =
        minePoints(*g.sys, g.cycles, opt.minCrashPoints, rng);

    std::vector<CaseSpec> injections;
    for (Tick t : pts) {
        CaseSpec pt = spec;
        pt.mode = CrashMode::Single;
        pt.crashAt = t;
        injections.push_back(pt);
    }
    if (opt.doubleCrash) {
        for (std::size_t i = 0; i < pts.size(); i += 3) {
            CaseSpec pt = spec;
            pt.mode = CrashMode::DoubleRecovery;
            pt.crashAt = pts[i];
            pt.crashAt2 =
                pts[(i + pts.size() / 2) % pts.size()];
            injections.push_back(pt);
        }
        for (std::size_t i = 1; i < pts.size(); i += 4) {
            CaseSpec pt = spec;
            pt.mode = CrashMode::DoubleDrain;
            pt.crashAt = pts[i];
            pt.drainIters = static_cast<unsigned>(rng.below(3));
            injections.push_back(pt);
        }
    }
    if (opt.stormCrash) {
        // Every second mined point also runs under a seeded storm; the
        // schedule is a pure function of (campaign seed, point index),
        // so a reproducer spec regenerates the exact storm via its
        // storm= token.
        for (std::size_t i = 0; i < pts.size(); i += 2) {
            CaseSpec pt = spec;
            pt.mode = CrashMode::Storm;
            pt.crashAt = pts[i];
            pt.storm = fault::FailureSchedule::random(
                spec.seed * 1000003 + i,
                2 + static_cast<unsigned>(i % 3),
                g.cycles / 6 + 1);
            injections.push_back(pt);
        }
    }

    for (const CaseSpec &pt : injections) {
        ++res.pointsTried;
        std::string err = checkPoint(bc, *g.sys, pt, res.oracleChecks,
                                     res.runsExecuted, res);
        if (err.empty())
            continue;
        res.passed = false;
        res.failure = err + " [" + bc.summary + "]";
        res.reproducer = pt;
        if (opt.shrinkOnFailure) {
            res.reproducer =
                shrinkFailure(pt, g.cycles, res.oracleChecks,
                              res.runsExecuted, res.shrunk);
        }
        return res;
    }
    return res;
}

StaticCheckResult
staticCheck(const CaseSpec &spec)
{
    CaseBuild bc = buildCase(spec, /*oracles=*/false);
    analysis::CheckReport rep =
        analysis::checkCompiledProgram(bc.prog, bc.ccfg);
    StaticCheckResult out;
    out.ok = rep.ok();
    out.summary = bc.summary;
    out.report = rep.describe();
    return out;
}

} // namespace fuzz
} // namespace lwsp
