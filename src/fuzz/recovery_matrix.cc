#include "fuzz/recovery_matrix.hh"

#include <memory>
#include <sstream>
#include <utility>

#include "compiler/compiler.hh"
#include "core/system.hh"
#include "fuzz/random_workload.hh"
#include "workloads/generator.hh"

namespace lwsp {
namespace fuzz {

namespace {

constexpr pds::PdsScheme kSchemes[] = {
    pds::PdsScheme::LightWsp, pds::PdsScheme::Capri, pds::PdsScheme::Ppa,
    pds::PdsScheme::Cwsp,     pds::PdsScheme::Pmtx,
};

/** Everything one case needs to run: binary, machine, oracles. */
struct MatrixBuild
{
    compiler::CompiledProgram prog;
    core::SystemConfig cfg;
    unsigned threads = 1;
    std::vector<Addr> lockAddrs;

    bool isPds = false;      ///< structure oracle vs golden-image diff
    pds::PdsSpec pdsSpec;
    std::vector<pds::PdsOp> pdsOps;
    Addr heapLo = 0, heapHi = 0;  ///< builtin golden-diff heap range
};

/**
 * Pin the case's MC count / fabric topology on top of the defaults.
 * Deliberately does NOT re-run applySchemeDefaults (its Capri/cWSP
 * branches re-multiply drain intervals); System's constructor derives
 * mc.numMcs / mc.treeAcks from the top-level fields itself.
 */
void
applyShape(const MatrixCase &c, core::SystemConfig &cfg)
{
    if (c.numMcs != 0)
        cfg.numMcs = c.numMcs;
    cfg.topology = c.topology;
}

MatrixBuild
build(const MatrixCase &c, const MatrixOptions &opt)
{
    MatrixBuild b;
    if (c.source == MatrixCase::Source::Builtin) {
        // A multi-threaded workload program under plain gated LightWSP —
        // the only row with locks and inter-thread interleaving. Shrink
        // level 1 keeps the recovered run short enough for per-cycle
        // crashes.
        FuzzProgram src = randomWorkloadProgram(c.wlSeed, /*shrink=*/1);
        b.cfg.scheme = core::Scheme::LightWsp;
        b.cfg.numMcs = 2;
        b.cfg.mc.wpqEntries = 16;
        b.cfg.numCores = std::min(4u, src.threads);
        b.cfg.maxCycles = 30'000'000;
        b.cfg.applySchemeDefaults();
        applyShape(c, b.cfg);
        b.cfg.engine = opt.engine;
        compiler::CompilerConfig ccfg;
        ccfg.storeThreshold = 8;
        compiler::LightWspCompiler comp(ccfg);
        b.prog = comp.compile(std::move(src.module));
        b.threads = src.threads;
        b.lockAddrs = src.lockAddrs;
        b.heapLo = workloads::Workload::heapBase;
        b.heapHi = b.heapLo +
                   static_cast<Addr>(src.threads) * src.footprintBytes;
        return b;
    }

    pds::PdsSpec ps;
    std::vector<pds::PdsOp> ops;
    if (c.source == MatrixCase::Source::Serve) {
        serve::ServeWorkload wl = serve::buildWorkload(c.serve);
        ps = wl.pdsSpec;
        ops = std::move(wl.ops);
        b.prog = pds::preparePdsProgram(ps, ops, c.scheme,
                                        pds::PdsRunMode::Recovery);
    } else {
        ps = c.pds;
        b.prog = pds::preparePdsProgram(ps, c.scheme,
                                        pds::PdsRunMode::Recovery);
    }
    b.cfg = pds::makePdsConfig(c.scheme, pds::PdsRunMode::Recovery);
    applyShape(c, b.cfg);
    // Tight hang backstop: matrix cases are tiny (tens of ops), so a run
    // that needs anywhere near this many cycles is live-locked.
    b.cfg.maxCycles = 30'000'000;
    b.cfg.engine = opt.engine;
    b.threads = 1;
    b.isPds = true;
    b.pdsSpec = ps;
    b.pdsOps = std::move(ops);
    return b;
}

} // namespace

std::vector<MatrixCase>
recoveryMatrixCases()
{
    std::vector<MatrixCase> cases;
    constexpr pds::Kind kinds[] = {pds::Kind::Log, pds::Kind::Hash,
                                   pds::Kind::Alloc};
    for (auto k : kinds) {
        for (auto s : kSchemes) {
            MatrixCase c;
            c.source = MatrixCase::Source::Pds;
            c.scheme = s;
            c.pds.kind = k;
            c.pds.sizeClass = 0;
            c.pds.numOps = 24;
            c.pds.mix = 0;
            c.pds.seed = 5;
            // Small transactions put several commit edges and undo
            // replays inside the crash window (pmtx rows only).
            c.pds.opsPerTx = 2;
            c.name = std::string(pds::kindName(k)) + "/" +
                     pds::pdsSchemeName(s);
            cases.push_back(c);
        }
    }
    for (auto s : kSchemes) {
        MatrixCase c;
        c.source = MatrixCase::Source::Serve;
        c.scheme = s;
        c.serve.profile = serve::Profile::Varnish;
        c.serve.sizeClass = 0;
        c.serve.numRequests = 16;
        c.serve.seed = 3;
        c.serve.opsPerTx = 2;
        c.name = std::string("serve/") + pds::pdsSchemeName(s);
        cases.push_back(c);
    }
    MatrixCase c;
    c.source = MatrixCase::Source::Builtin;
    c.wlSeed = 2;
    c.name = "builtin/lightwsp";
    cases.push_back(c);
    // Scale-out rows: the same hash-table sweep on a sharded 16-MC
    // machine, once on the flat fabric and once on the radix-4
    // aggregation tree — recovery re-entrancy must hold when boundary
    // broadcasts descend a hierarchy and ACKs aggregate at interior
    // nodes (ISSUE: 64-MC broadcast-mask overflow regression family).
    for (bool tree : {false, true}) {
        MatrixCase sc;
        sc.source = MatrixCase::Source::Pds;
        sc.scheme = pds::PdsScheme::LightWsp;
        sc.pds.kind = pds::Kind::Hash;
        sc.pds.sizeClass = 0;
        sc.pds.numOps = 24;
        sc.pds.mix = 0;
        sc.pds.seed = 5;
        sc.pds.opsPerTx = 2;
        sc.numMcs = 16;
        if (tree)
            sc.topology.kind = noc::TopologyConfig::Kind::Tree;
        sc.name = std::string("hash16/") +
                  (tree ? "lightwsp-tree4" : "lightwsp-flat");
        cases.push_back(sc);
    }
    return cases;
}

MatrixCaseResult
runRecoveryMatrixCase(const MatrixCase &c, const MatrixOptions &opt)
{
    MatrixCaseResult res;
    res.name = c.name;
    auto fail = [&res](std::string why) {
        res.passed = false;
        res.failure = std::move(why) + " [" + res.name + "]";
        return res;
    };

    MatrixBuild b = build(c, opt);

    auto finalCheck = [&b](const core::System &sys,
                           const core::System &golden,
                           const char *what) -> std::string {
        if (b.isPds) {
            auto msg = b.pdsOps.empty()
                           ? pds::checkSemantics(b.pdsSpec,
                                                 sys.execImage())
                           : pds::checkSemantics(b.pdsSpec, b.pdsOps,
                                                 sys.execImage());
            if (!msg.empty())
                return std::string(what) + " " + msg;
            return {};
        }
        auto heap =
            sys.pmImage().diffInRange(golden.pmImage(), b.heapLo,
                                      b.heapHi);
        if (!heap.empty()) {
            std::ostringstream os;
            os << what << ": heap differs from golden at 0x" << std::hex
               << heap[0] << " (" << std::dec << heap.size()
               << " words)";
            return os.str();
        }
        Addr sh = workloads::Workload::sharedBase;
        auto shared =
            sys.pmImage().diffInRange(golden.pmImage(), sh, sh + 4096);
        if (!shared.empty()) {
            std::ostringstream os;
            os << what << ": shared page differs from golden at 0x"
               << std::hex << shared[0];
            return os.str();
        }
        return {};
    };

    core::System golden(b.cfg, b.prog, b.threads);
    ++res.runsExecuted;
    auto gr = golden.run();
    if (!gr.completed)
        return fail("golden run did not complete");
    res.goldenCycles = gr.cycles;
    if (auto e = finalCheck(golden, golden, "golden"); !e.empty())
        return fail(e);

    core::System victim(b.cfg, b.prog, b.threads);
    ++res.runsExecuted;
    auto vr = victim.runWithPowerFailure(gr.cycles * 6 / 10);
    if (vr.completed)
        return fail("victim completed before the crash point");
    if (!victim.crashed())
        return fail("victim neither completed nor crashed");

    auto recoverFrom =
        [&](const core::System &crashed,
            std::unique_ptr<core::System> &out) -> std::string {
        auto rr = core::System::recoverChecked(
            b.cfg, b.prog, b.threads, crashed.pmImage(), b.lockAddrs,
            &crashed.crashReport());
        if (rr.outcome == core::RecoveryOutcome::DetectedUnrecoverable)
            return "fault-free image classified unrecoverable: " +
                   rr.detail;
        if (rr.outcome == core::RecoveryOutcome::Recovered)
            ++res.recoveredExact;
        else
            ++res.recoveredDegraded;
        out = std::move(rr.sys);
        return {};
    };

    // Reference recovered run: its crash-free length R bounds the sweep.
    std::unique_ptr<core::System> ref;
    if (auto e = recoverFrom(victim, ref); !e.empty())
        return fail(e);
    ++res.runsExecuted;
    auto refr = ref->run();
    if (!refr.completed)
        return fail("recovered run did not complete (possible hang)");
    res.recoveryCycles = refr.cycles;
    if (auto e = finalCheck(*ref, golden, "recovered"); !e.empty())
        return fail(e);

    // Crash the recovery run at every stride-th cycle of [0, R).
    Tick step = opt.step ? opt.step : 1;
    for (Tick t = 0; t < res.recoveryCycles; t += step) {
        ++res.pointsTried;
        std::unique_ptr<core::System> rec;
        if (auto e = recoverFrom(victim, rec); !e.empty())
            return fail(e + " at t=" + std::to_string(t));
        ++res.runsExecuted;
        auto rr = rec->runWithPowerFailure(t);
        if (rr.completed) {
            // Engine fast-forward can land the completion check past t;
            // the run is clean either way.
            if (auto e = finalCheck(*rec, golden, "recovery(uncrashed)");
                !e.empty()) {
                return fail(e + " at t=" + std::to_string(t));
            }
            continue;
        }
        if (!rec->crashed())
            return fail("recovery run neither completed nor crashed "
                        "at t=" +
                        std::to_string(t));
        std::unique_ptr<core::System> rec2;
        if (auto e = recoverFrom(*rec, rec2); !e.empty())
            return fail(e + " at t=" + std::to_string(t));
        ++res.runsExecuted;
        auto r2 = rec2->run();
        if (!r2.completed)
            return fail("second recovery did not complete (possible "
                        "hang) at t=" +
                        std::to_string(t));
        if (auto e = finalCheck(*rec2, golden, "second recovery");
            !e.empty()) {
            return fail(e + " (recovery crashed at t=" +
                        std::to_string(t) + ")");
        }
    }
    return res;
}

} // namespace fuzz
} // namespace lwsp
