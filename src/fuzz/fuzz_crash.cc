/**
 * @file
 * Crash-consistency fuzzing driver.
 *
 *   fuzz_crash [--seeds N] [--base-seed S]
 *              [--mode wl|ir|pds|serve|mixed|storm]
 *              [--crash-points N] [--jobs N] [--no-double] [--no-shrink]
 *              [--fault] [--faults] [--storm] [--replay SPEC]
 *              [--trace-out FILE] [--recovery-matrix] [--matrix-step N]
 *              [--engine event|cycle]
 *
 * Default: run N seeded campaigns (half workload-sourced, half
 * IR-sourced with --mode mixed), each injecting single and double power
 * failures at adversarially mined cycles, differentially checking every
 * recovery against a crash-free golden run with the LRPO invariant
 * oracles live. On any failure the case is shrunk and its replay spec
 * printed as `REPRODUCER: lwsp-fuzz:v1:...`; rerun exactly that case
 * with `fuzz_crash --replay '<spec>'`. Exit status 0 = all passed.
 *
 * --mode pds runs the persistent-data-structure programs (src/pds)
 * instead of random programs, rotating structure/size/op-mix across
 * the seed set. On top of the golden-state diff, every run is checked
 * by the structure-specific oracles: a semantic walk of the final image
 * (live log multiset, hash chain/bucket integrity, allocator leak and
 * double-free accounting) and, on unfaulted victims, a store-stream
 * prefix check of the crash image against the PdsModel shadow replay.
 * Composes with --faults.
 *
 * --mode serve crash-tests the open-loop service workloads (src/serve)
 * mid-request-stream: each seed generates a Zipf/profile-mixed request
 * tape (rotating varnish/horde profile and table size), lowers it onto
 * the pds hash table, and runs the same mined-crash campaign with the
 * structure oracles replaying the lowered op tape. Composes with
 * --faults.
 *
 * --fault arms the MC's test-only early-release fault on victim runs so
 * the oracle/shrink/replay machinery can be demonstrated on a known bug.
 *
 * --storm additionally runs every second mined point under a seeded
 * fault::FailureSchedule (fault/storm.hh): the initial power failure is
 * followed by drain interruptions, recovery re-entries and post-recovery
 * exec failures, exercising the re-entrancy of the §IV-F drain and of
 * recoverChecked. Composes with --mode pds/serve and --faults; failing
 * schedules shrink event-by-event and ride replay specs as a `storm=`
 * token. `--mode storm` is shorthand for `--mode mixed --storm`.
 *
 * --recovery-matrix runs the crash-at-every-cycle-of-recovery matrix
 * (fuzz/recovery_matrix.hh) instead of seeded campaigns: every scheme x
 * {log, hash, alloc, serve} case plus a builtin workload case is crashed
 * once, recovered, and the recovery run is itself power-failed at every
 * --matrix-step-th cycle (default 1 = exhaustive); each interrupted
 * recovery must recover again and converge to the same final state.
 * --engine selects the clock driver for matrix runs (A/B determinism).
 *
 * --faults runs a hardware fault-injection campaign instead: each seed
 * additionally arms one fault-axis group (broadcast loss / delay+dup /
 * pinned loss / WPQ damage / checkpoint damage+stall / PM poison+silent
 * flip, round-robin) on its victim runs, and recovery goes through the
 * hardened System::recoverChecked path. A detected-unrecoverable
 * verdict passes — the contract is "never silently corrupt", and the
 * summary reports the recovered / degraded / unrecoverable tallies.
 *
 * Exit status: 0 all passed, 1 mismatch/oracle failure, 2 usage,
 * 3 passed but with at least one detected-unrecoverable verdict
 * (replay path: the injected fault was detected and reported),
 * 4 static violation (replay path only: the case's compile fails the
 * static WSP-invariant checker — src/analysis — so the compiler, not
 * the crash machinery, is at fault; the checker's report is printed
 * and no simulation runs).
 *
 * --trace-out FILE (replay path only) re-runs the victim with the
 * telemetry sink armed and writes its event trace in the lwsp binary
 * format; inspect with `lwsp_trace info/dump` or convert to Perfetto
 * JSON with `lwsp_trace convert`.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "fuzz/campaign.hh"
#include "fuzz/recovery_matrix.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "trace/export.hh"

using namespace lwsp;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--seeds N] [--base-seed S]\n"
        "          [--mode wl|ir|pds|serve|mixed|storm]\n"
        "          [--crash-points N] [--jobs N] [--no-double]\n"
        "          [--no-shrink] [--fault] [--faults] [--storm]\n"
        "          [--replay SPEC] [--trace-out FILE]\n"
        "          [--recovery-matrix] [--matrix-step N]\n"
        "          [--engine event|cycle]\n",
        argv0);
    return 2;
}

/**
 * Arm one hardware fault-axis group on @p spec (round-robin by campaign
 * index). The injector seed is pinned to the case seed so the spec
 * string round-trips to the exact same injections.
 */
fuzz::CaseSpec
withFaultAxis(fuzz::CaseSpec spec, unsigned idx)
{
    fault::FaultConfig fc;
    fc.seed = spec.seed;
    switch (idx % 6) {
      case 0:
        fc.bcastLossPm = 150;
        break;
      case 1:
        fc.bcastDelayPm = 200;
        fc.bcastDelayCycles = 240;
        fc.bcastDupPm = 100;
        break;
      case 2:
        fc.bcastLossPinTick = 1500;
        break;
      case 3:
        fc.wpqBitFlip = true;
        fc.wpqTear = true;
        break;
      case 4:
        fc.ckptEntryDamage = true;
        fc.mcStallIters = 2;
        break;
      case 5:
        fc.pmPoisonWords = 2;
        fc.silentCkptFlip = true;
        break;
    }
    spec.faults = fc;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned seeds = 25;
    std::uint64_t base_seed = 1;
    std::string mode = "mixed";
    unsigned jobs = 0;
    std::string replay_spec;
    std::string trace_out;
    fuzz::CampaignOptions opt;
    bool fault = false;
    bool hw_faults = false;
    bool matrix = false;
    Tick matrix_step = 1;

    for (int i = 1; i < argc; ++i) {
        auto arg = [&](const char *name) {
            if (std::strcmp(argv[i], name) != 0)
                return static_cast<const char *>(nullptr);
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", name);
                std::exit(2);
            }
            return static_cast<const char *>(argv[++i]);
        };
        if (const char *v = arg("--seeds")) {
            seeds = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (const char *v = arg("--base-seed")) {
            base_seed = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--mode")) {
            mode = v;
        } else if (const char *v = arg("--crash-points")) {
            opt.minCrashPoints =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (const char *v = arg("--jobs")) {
            jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (const char *v = arg("--replay")) {
            replay_spec = v;
        } else if (const char *v = arg("--trace-out")) {
            trace_out = v;
        } else if (const char *v = arg("--matrix-step")) {
            matrix_step = std::strtoull(v, nullptr, 10);
            if (matrix_step == 0)
                matrix_step = 1;
        } else if (const char *v = arg("--engine")) {
            if (std::strcmp(v, "event") == 0) {
                harness::setDefaultSimEngine(SimEngine::Event);
            } else if (std::strcmp(v, "cycle") == 0) {
                harness::setDefaultSimEngine(SimEngine::Cycle);
            } else {
                return usage(argv[0]);
            }
        } else if (std::strcmp(argv[i], "--recovery-matrix") == 0) {
            matrix = true;
        } else if (std::strcmp(argv[i], "--storm") == 0) {
            opt.stormCrash = true;
        } else if (std::strcmp(argv[i], "--no-double") == 0) {
            opt.doubleCrash = false;
        } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
            opt.shrinkOnFailure = false;
        } else if (std::strcmp(argv[i], "--fault") == 0) {
            fault = true;
        } else if (std::strcmp(argv[i], "--faults") == 0) {
            hw_faults = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (mode == "storm") {
        // Shorthand: the mixed campaign with storm injections on.
        mode = "mixed";
        opt.stormCrash = true;
    }
    if (mode != "wl" && mode != "ir" && mode != "mixed" &&
        mode != "pds" && mode != "serve")
        return usage(argv[0]);

    setLogQuiet(true);
    auto t0 = std::chrono::steady_clock::now();

    if (matrix) {
        auto cases = fuzz::recoveryMatrixCases();
        fuzz::MatrixOptions mopt;
        mopt.step = matrix_step;
        mopt.engine = harness::defaultSimEngine();
        std::vector<fuzz::MatrixCaseResult> mres(cases.size());
        harness::parallelFor(jobs, cases.size(), [&](std::size_t i) {
            mres[i] = fuzz::runRecoveryMatrixCase(cases[i], mopt);
        });
        unsigned mfailed = 0, mpoints = 0, mruns = 0;
        for (const auto &r : mres) {
            mpoints += r.pointsTried;
            mruns += r.runsExecuted;
            std::printf("%-18s %s  recovery=%llu cy, %u points, "
                        "%u recovered + %u degraded\n",
                        r.name.c_str(), r.passed ? "PASS" : "FAIL",
                        static_cast<unsigned long long>(
                            r.recoveryCycles),
                        r.pointsTried, r.recoveredExact,
                        r.recoveredDegraded);
            if (!r.passed) {
                ++mfailed;
                std::printf("  %s\n", r.failure.c_str());
            }
        }
        double msecs = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        std::printf("recovery-matrix: %zu cases, %u crash-in-recovery "
                    "points (step %llu), %u runs, %u failures, %.1fs\n",
                    cases.size(), mpoints,
                    static_cast<unsigned long long>(matrix_step), mruns,
                    mfailed, msecs);
        return mfailed ? 1 : 0;
    }

    if (!replay_spec.empty()) {
        fuzz::CaseSpec spec;
        std::string err;
        if (!fuzz::CaseSpec::parse(replay_spec, spec, err)) {
            std::fprintf(stderr, "bad replay spec: %s\n", err.c_str());
            return 2;
        }
        if (spec.mode == fuzz::CrashMode::None && !trace_out.empty()) {
            std::fprintf(stderr, "--trace-out needs a crash-mode replay "
                                 "spec (mode=single/dbl-*)\n");
            return 2;
        }
        // Gate the replay on the static WSP-invariant checker: if the
        // compiler already emitted an unsafe partition for this case,
        // report that directly — the dynamic crash hunt would only be
        // chasing a symptom of it.
        auto sc = fuzz::staticCheck(spec);
        if (!sc.ok) {
            std::printf("replay %s: STATIC-VIOLATION [%s]\n%s\n",
                        replay_spec.c_str(), sc.summary.c_str(),
                        sc.report.c_str());
            return 4;
        }
        opt.captureTrace = !trace_out.empty();
        auto res = fuzz::runCampaign(spec, opt);
        std::printf("replay %s: %s (%u runs, %llu oracle checks)\n",
                    replay_spec.c_str(),
                    res.passed ? "PASSED" : "FAILED",
                    res.runsExecuted,
                    static_cast<unsigned long long>(res.oracleChecks));
        if (res.recoveredExact + res.recoveredDegraded +
                res.detectedUnrecoverable >
            0) {
            std::printf("  verdicts: %u recovered, %u degraded, "
                        "%u unrecoverable\n",
                        res.recoveredExact, res.recoveredDegraded,
                        res.detectedUnrecoverable);
        }
        if (!res.passed) {
            std::printf("  %s\n", res.failure.c_str());
            std::printf("REPRODUCER: %s\n",
                        res.reproducer.toString().c_str());
        }
        if (!trace_out.empty()) {
            if (!trace::writeBinaryFile(trace_out, res.victimTrace)) {
                std::fprintf(stderr, "trace-out failed: cannot write %s\n",
                             trace_out.c_str());
                return 2;
            }
            std::printf("victim trace (%zu events) written to %s\n",
                        res.victimTrace.size(), trace_out.c_str());
        }
        if (!res.passed)
            return 1;
        return res.detectedUnrecoverable > 0 ? 3 : 0;
    }
    if (!trace_out.empty()) {
        std::fprintf(stderr, "--trace-out requires --replay\n");
        return 2;
    }

    std::vector<fuzz::CampaignResult> results(seeds);
    std::vector<fuzz::CaseSpec> specs(seeds);
    for (unsigned i = 0; i < seeds; ++i) {
        fuzz::CaseSpec spec;
        spec.seed = base_seed + i;
        spec.fault = fault;
        if (mode == "pds") {
            // Rotate structure / size / mix across the campaign set so
            // a small --seeds still covers all three structures.
            spec.source = fuzz::CaseSpec::Source::Pds;
            spec.pds.kind = static_cast<pds::Kind>(i % 3);
            spec.pds.sizeClass = (i / 3) % 3;
            spec.pds.mix = (i / 9) % 3;
            spec.pds.numOps = 120;
            spec.pds.seed = spec.seed;
        } else if (mode == "serve") {
            // Rotate profile / table size so a small --seeds covers
            // both service mixes and both hash geometries.
            spec.source = fuzz::CaseSpec::Source::Serve;
            spec.serve.profile = (i % 2) ? serve::Profile::Horde
                                         : serve::Profile::Varnish;
            spec.serve.sizeClass = (i / 2) % 2;
            spec.serve.numRequests = 96;
            spec.serve.seed = spec.seed;
        } else {
            bool use_ir =
                (mode == "ir") || (mode == "mixed" && i % 2 == 1);
            spec.source = use_ir ? fuzz::CaseSpec::Source::Ir
                                 : fuzz::CaseSpec::Source::Workload;
        }
        if (hw_faults)
            spec = withFaultAxis(spec, i);
        specs[i] = spec;
    }

    // Campaigns are independent: fan them out across worker threads
    // (each campaign's internal runs stay serial for determinism).
    harness::parallelFor(jobs, seeds, [&](std::size_t i) {
        results[i] = fuzz::runCampaign(specs[i], opt);
    });

    unsigned failed = 0, points = 0, runs = 0;
    unsigned exact = 0, degraded = 0, unrec = 0, survived = 0;
    std::uint64_t checks = 0;
    for (unsigned i = 0; i < seeds; ++i) {
        const auto &r = results[i];
        points += r.pointsTried;
        runs += r.runsExecuted;
        checks += r.oracleChecks;
        exact += r.recoveredExact;
        degraded += r.recoveredDegraded;
        unrec += r.detectedUnrecoverable;
        survived = std::max(survived, r.failuresSurvived);
        if (r.passed)
            continue;
        ++failed;
        std::printf("FAIL %s\n  %s\n",
                    specs[i].toString().c_str(), r.failure.c_str());
        std::printf("REPRODUCER: %s%s\n",
                    r.reproducer.toString().c_str(),
                    r.shrunk ? "  (shrunk)" : "");
    }

    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    std::printf("fuzz_crash: %u campaigns, %u crash points, %u runs, "
                "%llu oracle checks, %u failures, %.1fs\n",
                seeds, points, runs,
                static_cast<unsigned long long>(checks), failed, secs);
    if (opt.stormCrash) {
        std::printf("storm: up to %u consecutive power failures "
                    "survived by a single point\n",
                    survived);
    }
    if (hw_faults) {
        // Every fault-armed point is classified; a completed recovery
        // that mismatched golden counts as a failure above — so with
        // 0 failures every injected fault was masked, degraded or
        // reported, never silently absorbed.
        std::printf("fault verdicts: %u recovered, %u degraded, "
                    "%u unrecoverable; silent-corruption failures: %u\n",
                    exact, degraded, unrec, failed);
    }
    return failed ? 1 : 0;
}
