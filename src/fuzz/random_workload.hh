/**
 * @file
 * Seeded random workload generation for crash-consistency fuzzing.
 *
 * Draws a WorkloadProfile — thread count, footprint, locality, and a mix
 * of 1-3 phases with random access patterns, store densities, lock-
 * protected critical sections and atomic updates — and lowers it through
 * the regular workload generator, so every program is confluent by
 * construction (final memory state independent of interleaving). The
 * shrink level trades coverage for size: each level halves trip counts
 * and drops threads/phases, giving the campaign engine a ladder for
 * minimizing a failing case.
 */

#ifndef LWSP_FUZZ_RANDOM_WORKLOAD_HH
#define LWSP_FUZZ_RANDOM_WORKLOAD_HH

#include <cstdint>

#include "fuzz/program_source.hh"
#include "workloads/profile.hh"

namespace lwsp {
namespace fuzz {

/** Highest meaningful shrink level (beyond it programs stop shrinking). */
constexpr unsigned maxShrinkLevel = 2;

/** Draw the profile for (@p seed, @p shrink). Deterministic. */
workloads::WorkloadProfile randomProfile(std::uint64_t seed,
                                         unsigned shrink);

/** Generate the program for (@p seed, @p shrink). Deterministic. */
FuzzProgram randomWorkloadProgram(std::uint64_t seed, unsigned shrink);

} // namespace fuzz
} // namespace lwsp

#endif // LWSP_FUZZ_RANDOM_WORKLOAD_HH
