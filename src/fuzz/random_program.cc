#include "fuzz/random_program.hh"

#include <algorithm>
#include <string>

#include "common/random.hh"
#include "fuzz/random_workload.hh" // maxShrinkLevel
#include "ir/verifier.hh"
#include "workloads/generator.hh"  // Workload::heapBase / sharedBase

namespace lwsp {
namespace fuzz {

using namespace ir;

namespace {

/*
 * Register convention for random programs:
 *   r0  thread id (read-only)      r6      effective address scratch
 *   r1  partition base (r-o)       r7-r12  random-op pool
 *   r2  shared base (r-o)          r13     atomic operand scratch
 *   r3  partition mask (r-o)       r14     unused
 *   r4  loop counter (reserved)    r15     reserved (stack pointer)
 *   r5  loop bound (reserved)
 * The pool is the only set random ops may write; counters, bases and
 * masks stay out of reach so address legality and loop termination hold
 * for every draw.
 */
constexpr Reg rTid = 0, rBase = 1, rShared = 2, rMask = 3, rCtr = 4,
              rBound = 5, rAddr = 6, rPool0 = 7, rAtom = 13;
constexpr unsigned poolSize = 6;

struct Gen
{
    Rng rng;
    unsigned threads;
    bool allowAtomics;

    explicit Gen(std::uint64_t seed, unsigned n_threads)
        : rng(seed ^ 0x726e642d6972ull /* "rnd-ir" */), threads(n_threads),
          allowAtomics(n_threads > 1)
    {
    }

    Reg pool() { return static_cast<Reg>(rPool0 + rng.below(poolSize)); }

    /** Compute a private-partition address from @p src into rAddr. */
    void
    emitAddress(BasicBlock &b, Reg src)
    {
        b.append(Instruction::alu(Opcode::And, rAddr, src, rMask));
        b.append(Instruction::alu(Opcode::Add, rAddr, rAddr, rBase));
    }

    /** One random non-terminator operation appended to @p b. */
    void
    emitOp(BasicBlock &b)
    {
        switch (rng.below(10)) {
          case 0:
          case 1: { // ALU reg-reg
            static const Opcode ops[] = {Opcode::Add, Opcode::Sub,
                                         Opcode::Mul, Opcode::And,
                                         Opcode::Or,  Opcode::Xor,
                                         Opcode::Shl, Opcode::Shr};
            b.append(Instruction::alu(ops[rng.below(8)], pool(), pool(),
                                      pool()));
            break;
          }
          case 2: // ALU reg-imm
            b.append(Instruction::aluImm(
                rng.chance(0.5) ? Opcode::AddI : Opcode::MulI, pool(),
                pool(),
                static_cast<std::int64_t>(rng.range(1, 1024))));
            break;
          case 3: // constant refresh
            b.append(Instruction::movi(
                pool(), static_cast<std::int64_t>(rng.below(1u << 20))));
            break;
          case 4:
          case 5: { // private load
            emitAddress(b, pool());
            b.append(Instruction::load(pool(), rAddr, 0));
            break;
          }
          case 6:
          case 7:
          case 8: { // private store
            emitAddress(b, pool());
            b.append(Instruction::store(rAddr, 0, pool()));
            break;
          }
          default:
            if (allowAtomics && rng.chance(0.5)) {
                // Commutative shared update: mem[shared + 8k] += pool.
                // The added value derives only from this thread's own
                // state, so the final sums are interleaving-independent.
                b.append(Instruction::alu(Opcode::Mov, rAtom, pool(),
                                          0));
                b.append(Instruction::atomicAdd(
                    rShared,
                    8 * static_cast<std::int64_t>(rng.below(8)), rAtom));
            } else {
                b.append(Instruction::simple(Opcode::Fence));
            }
            break;
        }
    }

    void
    emitOps(BasicBlock &b, unsigned lo, unsigned hi)
    {
        unsigned n = static_cast<unsigned>(rng.range(lo, hi));
        for (unsigned i = 0; i < n; ++i)
            emitOp(b);
    }

    /**
     * Append one structured segment to @p fn, starting in @p cur.
     * @return the block subsequent code should continue in.
     */
    BlockId
    emitSegment(Function &fn, BlockId cur, unsigned trip_scale)
    {
        switch (rng.below(4)) {
          case 0: { // straight-line run
            emitOps(fn.block(cur), 3, 10);
            return cur;
          }
          case 1: { // single-block self-loop with a recorded trip count
            std::uint64_t trip = rng.range(4, 16) >> trip_scale;
            trip = std::max<std::uint64_t>(trip, 2);
            BasicBlock &body = fn.addBlock();
            BasicBlock &next = fn.addBlock();
            BasicBlock &pre = fn.block(cur);
            pre.append(Instruction::movi(rCtr, 0));
            pre.append(Instruction::movi(
                rBound, static_cast<std::int64_t>(trip)));
            pre.append(Instruction::jmp(body.id()));
            emitOps(body, 2, 6);
            body.append(Instruction::aluImm(Opcode::AddI, rCtr, rCtr, 1));
            body.append(Instruction::branch(Opcode::Blt, rCtr, rBound,
                                            body.id(), next.id()));
            fn.loopTripCounts()[body.id()] = trip;
            return next.id();
          }
          case 2: { // multi-block natural loop (header + body blocks)
            std::uint64_t trip = rng.range(2, 8) >> trip_scale;
            trip = std::max<std::uint64_t>(trip, 2);
            BasicBlock &head = fn.addBlock();
            BasicBlock &body = fn.addBlock();
            BasicBlock &latch = fn.addBlock();
            BasicBlock &next = fn.addBlock();
            BasicBlock &pre = fn.block(cur);
            pre.append(Instruction::movi(rCtr, 0));
            pre.append(Instruction::movi(
                rBound, static_cast<std::int64_t>(trip)));
            pre.append(Instruction::jmp(head.id()));
            head.append(Instruction::branch(Opcode::Blt, rCtr, rBound,
                                            body.id(), next.id()));
            emitOps(body, 2, 6);
            body.append(Instruction::jmp(latch.id()));
            emitOps(latch, 0, 3);
            latch.append(Instruction::aluImm(Opcode::AddI, rCtr, rCtr,
                                             1));
            latch.append(Instruction::jmp(head.id()));
            return next.id();
          }
          default: { // if/else diamond joining forward
            BasicBlock &then_b = fn.addBlock();
            BasicBlock &else_b = fn.addBlock();
            BasicBlock &join = fn.addBlock();
            static const Opcode cmps[] = {Opcode::Beq, Opcode::Bne,
                                          Opcode::Blt, Opcode::Bge};
            fn.block(cur).append(
                Instruction::branch(cmps[rng.below(4)], pool(), pool(),
                                    then_b.id(), else_b.id()));
            emitOps(then_b, 1, 5);
            then_b.append(Instruction::jmp(join.id()));
            emitOps(else_b, 1, 5);
            else_b.append(Instruction::jmp(join.id()));
            return join.id();
          }
        }
    }
};

} // namespace

FuzzProgram
randomIrProgram(std::uint64_t seed, unsigned shrink)
{
    shrink = std::min(shrink, maxShrinkLevel);

    // Draw the execution parameters first so they are stable across
    // shrink levels where possible (threads shrink, seeds don't).
    Rng param_rng(seed ^ 0x69722d706172616dull); // "ir-param"
    static const unsigned threadChoices[] = {1, 2, 2, 4};
    unsigned threads = threadChoices[param_rng.below(4)];
    if (shrink >= 1)
        threads = std::min(threads, 2u);
    if (shrink >= 2)
        threads = 1;
    std::size_t footprint = 8 * 1024;

    Gen g(seed, threads);
    FuzzProgram out;
    out.module = std::make_unique<Module>();
    Module &m = *out.module;

    Function &main = m.addFunction("main");
    BasicBlock &entry = main.addBlock();

    // r1 = heapBase + tid * footprint; r3 = 8-aligned in-partition mask.
    entry.append(Instruction::aluImm(
        Opcode::MulI, rBase, rTid,
        static_cast<std::int64_t>(footprint)));
    entry.append(Instruction::aluImm(
        Opcode::AddI, rBase, rBase,
        static_cast<std::int64_t>(workloads::Workload::heapBase)));
    entry.append(Instruction::movi(
        rShared,
        static_cast<std::int64_t>(workloads::Workload::sharedBase)));
    entry.append(Instruction::movi(
        rMask, static_cast<std::int64_t>((footprint - 1) & ~7ull)));
    // Pool seeds diverge per thread so partitions hold distinct values.
    for (unsigned i = 0; i < poolSize; ++i) {
        Reg r = static_cast<Reg>(rPool0 + i);
        entry.append(Instruction::movi(
            r, static_cast<std::int64_t>(g.rng.below(1u << 16))));
        if (i % 2 == 0)
            entry.append(Instruction::alu(Opcode::Add, r, r, rTid));
    }

    // Callee functions: their own structured bodies, ending in Ret.
    unsigned callees = shrink ? 1 : 1 + static_cast<unsigned>(
                                        g.rng.below(2));
    std::vector<FuncId> fns;
    for (unsigned f = 0; f < callees; ++f) {
        Function &fn = m.addFunction("f" + std::to_string(f));
        BlockId cur = fn.addBlock().id();
        unsigned segs = 1 + static_cast<unsigned>(g.rng.below(3));
        if (shrink)
            segs = 1;
        for (unsigned s = 0; s < segs; ++s)
            cur = g.emitSegment(fn, cur, shrink);
        fn.block(cur).append(Instruction::simple(Opcode::Ret));
        fns.push_back(fn.id());
    }

    // Main body: segments interleaved with calls (calls stay outside
    // loops, so the reserved counter registers are never live across
    // them).
    BlockId cur = entry.id();
    unsigned segs = shrink ? 2 : 2 + static_cast<unsigned>(g.rng.below(3));
    for (unsigned s = 0; s < segs; ++s) {
        cur = g.emitSegment(main, cur, shrink);
        if (g.rng.chance(0.6))
            main.block(cur).append(
                Instruction::call(fns[g.rng.below(fns.size())]));
    }
    main.block(cur).append(Instruction::simple(Opcode::Halt));

    verifyModuleOrDie(m);

    out.threads = threads;
    out.footprintBytes = footprint;
    out.summary = "fuzz-ir-" + std::to_string(seed) +
                  (shrink ? "-s" + std::to_string(shrink) : "") +
                  " threads=" + std::to_string(threads) + " blocks=" +
                  std::to_string(m.function(0).numBlocks());
    return out;
}

} // namespace fuzz
} // namespace lwsp
