#include "fuzz/random_workload.hh"

#include <algorithm>

#include "common/random.hh"
#include "workloads/generator.hh"

namespace lwsp {
namespace fuzz {

workloads::WorkloadProfile
randomProfile(std::uint64_t seed, unsigned shrink)
{
    // Domain-separate from other consumers of the same seed (the random
    // IR generator and the campaign's crash-point jitter).
    Rng rng(seed ^ 0x776f726b6c6f6164ull); // "workload"
    shrink = std::min(shrink, maxShrinkLevel);

    workloads::WorkloadProfile p;
    p.name = "fuzz-wl-" + std::to_string(seed) +
             (shrink ? "-s" + std::to_string(shrink) : "");
    p.suite = "FUZZ";

    static const unsigned threadChoices[] = {1, 2, 2, 4};
    p.threads = threadChoices[rng.below(4)];
    if (shrink >= 1)
        p.threads = std::min(p.threads, 2u);
    if (shrink >= 2)
        p.threads = 1;

    // Small footprints keep golden runs cheap while still spanning the
    // hot/cold locality split.
    p.footprintBytes = std::size_t(8 * 1024)
                       << (shrink ? 0 : rng.below(3)); // 8/16/32 KB
    p.hotBytes = p.footprintBytes / 4;
    p.locality = 0.5 + 0.4 * rng.uniform();
    p.branchMissRate = 0.0;

    unsigned phases = shrink ? 1 : 1 + static_cast<unsigned>(rng.below(3));
    for (unsigned i = 0; i < phases; ++i) {
        workloads::PhaseSpec ph;
        switch (rng.below(3)) {
          case 0: ph.pattern = workloads::PhaseSpec::Pattern::Sequential;
                  break;
          case 1: ph.pattern = workloads::PhaseSpec::Pattern::Random;
                  break;
          default: ph.pattern = workloads::PhaseSpec::Pattern::Pointer;
                   break;
        }
        ph.loads = 1 + static_cast<unsigned>(rng.below(3));
        ph.stores = 1 + static_cast<unsigned>(rng.below(3));
        ph.alus = static_cast<unsigned>(rng.below(6));
        ph.trip = 16 + static_cast<unsigned>(rng.below(33)); // 16..48
        ph.trip = std::max(8u, ph.trip >> shrink);
        ph.reps = 1 + static_cast<unsigned>(rng.below(2));
        if (p.threads > 1) {
            ph.lockedRmw = rng.chance(0.4);
            ph.atomicUpdate = !ph.lockedRmw && rng.chance(0.4);
        }
        static const unsigned syncChoices[] = {4, 8, 16};
        ph.syncEvery = syncChoices[rng.below(3)];
        ph.csCells = 2 + static_cast<unsigned>(rng.below(5));
        ph.seqStrideBytes = rng.chance(0.5) ? 64 : 8;
        p.phases.push_back(ph);
    }
    return p;
}

FuzzProgram
randomWorkloadProgram(std::uint64_t seed, unsigned shrink)
{
    workloads::WorkloadProfile profile = randomProfile(seed, shrink);
    workloads::Workload w = workloads::generate(profile);

    FuzzProgram out;
    out.module = std::move(w.module);
    out.threads = profile.threads;
    out.footprintBytes = profile.footprintBytes;
    out.lockAddrs = w.lockAddrs;
    out.summary = profile.name + " threads=" +
                  std::to_string(profile.threads) + " phases=" +
                  std::to_string(profile.phases.size());
    return out;
}

} // namespace fuzz
} // namespace lwsp
