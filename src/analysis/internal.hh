/**
 * @file
 * Internals shared by the WSP checker's translation units: the
 * independent liveness and abstract-value analyses, and the common
 * violation-collection plumbing. Not installed; include only from
 * src/analysis.
 *
 * These analyses deliberately re-implement (rather than reuse) the
 * compiler's ModuleLiveness / ConstProp with the same lattices and
 * transfer semantics: the checker must not trust the implementation it
 * is auditing, but it must match its precision — a checker weaker than
 * the pruning analysis would flag sound pruned sites as uncovered.
 */

#ifndef LWSP_ANALYSIS_INTERNAL_HH
#define LWSP_ANALYSIS_INTERNAL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/wsp_checker.hh"
#include "compiler/liveness.hh"  // RegMask / regBit / spReg constants only
#include "ir/cfg.hh"
#include "ir/program.hh"

namespace lwsp {
namespace analysis {

using compiler::RegMask;
using compiler::allRegs;
using compiler::regBit;
using compiler::spReg;

/** Append a located violation to @p out. */
void addViolation(std::vector<Violation> &out, Obligation ob,
                  ir::FuncId f, ir::BlockId b, std::uint32_t idx,
                  std::string msg);

/**
 * Functions reachable from the entry function through Call edges
 * (index 0 is always reachable). Unreached functions are dead code:
 * no thread can execute them, so no obligation applies.
 */
std::vector<bool> reachableFunctions(const ir::Module &m);

/** @return true if any reachable function calls @p f. */
std::vector<bool> calledFunctions(const ir::Module &m);

/**
 * Independent interprocedural liveness over the 16 GPRs. Same summary
 * scheme as the compiler's: funcUse (read-before-write at entry),
 * funcDef (transitively clobbered), funcLiveOut (live after any
 * callsite); Call/Ret implicitly use+define the stack pointer.
 */
class LivenessOracle
{
  public:
    explicit LivenessOracle(const ir::Module &m);

    RegMask liveAfter(ir::FuncId f, ir::BlockId b, std::size_t idx) const;

    RegMask instUse(ir::FuncId f, const ir::Instruction &inst) const;
    RegMask instDef(const ir::Instruction &inst) const;
    RegMask funcDef(ir::FuncId f) const { return funcDef_.at(f); }

  private:
    const ir::Module &m_;
    std::vector<std::vector<RegMask>> blockIn_;
    std::vector<std::vector<RegMask>> blockOut_;
    std::vector<RegMask> funcUse_, funcDef_, funcLiveOut_;
};

/**
 * Forward abstract interpretation used by the recovery replay: per
 * register a constness lattice (Unknown < Const(v) < Varying, matching
 * the pruning analysis so recipes can be re-proved at equal precision)
 * plus two slot facts —
 *  - slotCurrent: PM slot r provably holds r's current value on every
 *    path (established only by an actual CkptStore, killed by any
 *    redefinition of r and conservatively by calls);
 *  - a slot-relative view r == slot[src] + delta (how AddSlot recipes
 *    are validated), killed when slot[src] may be rewritten.
 */
class ValueOracle
{
  public:
    struct AbsVal
    {
        enum class C : std::uint8_t { Unknown, Const, Varying };
        C c = C::Unknown;
        std::int64_t constant = 0;

        bool slotCurrent = false;
        bool hasSlotRel = false;
        ir::Reg slotSrc = 0;
        std::int64_t slotDelta = 0;

        bool isConst() const { return c == C::Const; }
    };

    struct State
    {
        std::array<AbsVal, ir::numGprs> regs;
        bool reached = false;  ///< block never joined any path
    };

    ValueOracle(const ir::Module &m, const LivenessOracle &live);

    /** Abstract state just before instruction @p idx of (f, b). */
    State stateBefore(ir::FuncId f, ir::BlockId b, std::size_t idx) const;

    void transfer(const ir::Instruction &inst, State &st) const;

  private:
    void join(State &into, const State &from) const;

    const ir::Module &m_;
    const LivenessOracle &live_;
    std::vector<std::vector<State>> blockIn_;
    std::vector<State> funcEntry_;
};

/**
 * Independent max-over-paths persist-entry analysis (the StoreBound
 * obligation). Defined in store_bound.cc.
 */
void checkStoreBound(const ir::Module &m, unsigned storeThreshold,
                     bool waive, CheckReport &report);

/** Coverage / recipe / recoverability replay. In abstract_replay.cc. */
void checkRecoverability(const ir::Module &m,
                         const CheckOptions &opt, bool prune_enabled,
                         const std::vector<compiler::BoundarySite> *sites,
                         CheckReport &report);

} // namespace analysis
} // namespace lwsp

#endif // LWSP_ANALYSIS_INTERNAL_HH
