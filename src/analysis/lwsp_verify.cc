/**
 * @file
 * lwsp_verify — run the static WSP-invariant checker over compiled
 * programs without simulating them.
 *
 *   lwsp_verify <app|file.lir> [--threshold N] [--no-prune] [--no-unroll]
 *   lwsp_verify --all [--fuzz N] [--base-seed S]
 *
 * The first form compiles one built-in workload (by profile name) or a
 * LightIR text file and checks the result. The second sweeps every
 * built-in workload under three compiler configurations (default,
 * pruning disabled, unrolling disabled) and optionally a batch of N
 * seeded fuzz programs drawn exactly like the crash fuzzer draws them
 * (alternating IR/workload generators, thresholds from {4,8,16,32}).
 *
 * Exit codes: 0 all checks passed, 1 violations found, 2 usage or
 * input error.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "analysis/wsp_checker.hh"
#include "common/random.hh"
#include "compiler/compiler.hh"
#include "fuzz/random_program.hh"
#include "fuzz/random_workload.hh"
#include "ir/text_io.hh"
#include "workloads/generator.hh"

namespace {

using namespace lwsp;

void
usage()
{
    std::cerr <<
        "usage: lwsp_verify <app|file.lir> [--threshold N] [--no-prune]\n"
        "                   [--no-unroll]\n"
        "       lwsp_verify --all [--fuzz N] [--base-seed S]\n"
        "\n"
        "Statically verifies the WSP region invariants (store bound,\n"
        "checkpoint coverage, recipe soundness, site-table integrity,\n"
        "recoverability) on the compiled form of a program.\n"
        "\n"
        "  <app>          a built-in workload profile name\n"
        "  <file.lir>     a LightIR text module\n"
        "  --threshold N  override the store threshold (default 32)\n"
        "  --no-prune     disable checkpoint pruning\n"
        "  --no-unroll    disable loop unrolling\n"
        "  --all          sweep all built-in workloads x {default,\n"
        "                 no-prune, no-unroll} configurations\n"
        "  --fuzz N       with --all: also check N seeded fuzz programs\n"
        "  --base-seed S  first fuzz seed (default 1)\n"
        "\n"
        "exit: 0 clean, 1 violations, 2 usage/input error\n";
}

bool dumpOnFail = false;

/** Compile @p m under @p cfg and run the full checker. */
bool
checkOne(std::unique_ptr<ir::Module> m,
         const compiler::CompilerConfig &cfg, const std::string &label,
         bool verbose)
{
    compiler::LightWspCompiler comp(cfg);
    compiler::CompiledProgram prog = comp.compile(std::move(m));
    analysis::CheckReport rep = analysis::checkCompiledProgram(prog, cfg);
    if (!rep.ok()) {
        std::cout << label << ": FAIL\n" << rep.describe() << "\n";
        if (dumpOnFail)
            std::cout << ir::moduleToString(*prog.module);
        return false;
    }
    if (verbose)
        std::cout << label << ": " << rep.describe() << "\n";
    return true;
}

/** The three compiler configurations --all sweeps per workload. */
struct NamedConfig
{
    const char *name;
    compiler::CompilerConfig cfg;
};

std::vector<NamedConfig>
sweepConfigs(unsigned threshold)
{
    std::vector<NamedConfig> out(3);
    out[0].name = "default";
    out[1].name = "no-prune";
    out[1].cfg.pruneCheckpoints = false;
    out[2].name = "no-unroll";
    out[2].cfg.unrollLoops = false;
    for (auto &nc : out)
        nc.cfg.storeThreshold = threshold;
    return out;
}

int
runAll(unsigned fuzzCount, std::uint64_t baseSeed, bool verbose)
{
    unsigned checked = 0, failed = 0;

    for (const auto &profile : workloads::paperProfiles()) {
        workloads::Workload base = workloads::generate(profile);
        std::string text = ir::moduleToString(*base.module);
        for (const auto &nc : sweepConfigs(32)) {
            // Re-parse per config: compile() consumes the module.
            auto m = ir::parseModule(text);
            ++checked;
            if (!checkOne(std::move(m), nc.cfg,
                          profile.name + " [" + nc.name + "]", verbose))
                ++failed;
        }
    }

    for (unsigned i = 0; i < fuzzCount; ++i) {
        std::uint64_t seed = baseSeed + i;
        // Same program generators as the crash fuzzer, thresholds from
        // its WPQ-motivated ladder.
        fuzz::FuzzProgram src = (i % 2 == 0)
                                    ? fuzz::randomIrProgram(seed, 0)
                                    : fuzz::randomWorkloadProgram(seed, 0);
        Rng rng(seed ^ 0x66757a7a2d636667ull); // "fuzz-cfg" (as buildCase)
        static const unsigned thrChoices[] = {4, 8, 16, 32};
        compiler::CompilerConfig cfg;
        cfg.storeThreshold = thrChoices[rng.below(4)];
        std::ostringstream label;
        label << "fuzz seed=" << seed << " ("
              << (i % 2 == 0 ? "ir" : "wl")
              << ", thr=" << cfg.storeThreshold << ")";
        ++checked;
        if (!checkOne(std::move(src.module), cfg, label.str(), verbose))
            ++failed;
    }

    std::cout << checked << " program(s) checked, " << failed
              << " with violations\n";
    return failed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool all = false, verbose = true;
    unsigned fuzzCount = 0;
    std::uint64_t baseSeed = 1;
    unsigned threshold = 32;
    compiler::CompilerConfig cfg;
    std::string target;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--all") {
            all = true;
        } else if (arg == "--fuzz") {
            fuzzCount = static_cast<unsigned>(
                std::stoul(value("--fuzz")));
        } else if (arg == "--base-seed") {
            baseSeed = std::stoull(value("--base-seed"));
        } else if (arg == "--threshold") {
            threshold = static_cast<unsigned>(
                std::stoul(value("--threshold")));
        } else if (arg == "--no-prune") {
            cfg.pruneCheckpoints = false;
        } else if (arg == "--no-unroll") {
            cfg.unrollLoops = false;
        } else if (arg == "--quiet" || arg == "-q") {
            verbose = false;
        } else if (arg == "--dump") {
            dumpOnFail = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown flag '" << arg << "'\n";
            usage();
            return 2;
        } else if (target.empty()) {
            target = arg;
        } else {
            std::cerr << "more than one target given\n";
            return 2;
        }
    }

    try {
        if (all) {
            if (!target.empty()) {
                std::cerr << "--all takes no target\n";
                return 2;
            }
            return runAll(fuzzCount, baseSeed, verbose);
        }
        if (target.empty()) {
            usage();
            return 2;
        }

        cfg.storeThreshold = threshold;
        std::unique_ptr<ir::Module> m;
        if (target.size() > 4 &&
            target.compare(target.size() - 4, 4, ".lir") == 0) {
            std::ifstream in(target);
            if (!in) {
                std::cerr << "cannot open '" << target << "'\n";
                return 2;
            }
            std::stringstream buf;
            buf << in.rdbuf();
            m = ir::parseModule(buf.str());
        } else {
            const workloads::WorkloadProfile *p = nullptr;
            for (const auto &prof : workloads::paperProfiles()) {
                if (prof.name == target)
                    p = &prof;
            }
            if (!p) {
                std::cerr << "unknown workload '" << target
                          << "' (and not a .lir file)\n";
                return 2;
            }
            m = std::move(workloads::generate(*p).module);
        }
        return checkOne(std::move(m), cfg, target, verbose) ? 0 : 1;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
