/**
 * @file
 * Static WSP region-safety checker.
 *
 * The LightWSP compiler's output carries a correctness argument the paper
 * states in §III-D/§IV-A: every boundary-free path produces few enough
 * persist-path entries to fit the reserved WPQ slots, and every register
 * that survives a region boundary is reconstructible at recovery — from a
 * fresh checkpoint slot or from a site recipe. `ir::verifyModule` checks
 * only structure; this checker re-proves the persistence invariants with
 * analyses implemented independently of the compiler passes that are
 * supposed to establish them (the checker shares only the IR definitions
 * and the semantic ground truth of the simulator):
 *
 *  - StoreBound: a max-over-paths count of what the persist path really
 *    sees between region-ending events — data stores, checkpoint stores,
 *    Call's return-address push, Fence's marker store, the boundary/halt
 *    PC-store — including the inflow a callee inherits from its caller's
 *    in-flight region. Re-derived from instruction semantics, not from
 *    `computeStoreCounts`.
 *  - CkptCoverage / RecipeSoundness / Recoverability: an abstract replay
 *    of `System::recover` at every resume site. An independent forward
 *    abstract interpretation tracks, per register, (a) whether its PM
 *    checkpoint slot provably holds its current value, (b) a provable
 *    compile-time constant, (c) a provable slot-relative value
 *    (r == slot[src] + delta). Every register live across the boundary
 *    (independent interprocedural liveness) must be reconstructed by
 *    "restore all slots, then apply recipes in order".
 *  - RegionShape / SiteTable: post-split shape (boundary penultimate,
 *    one per block, valid kind) and site-table integrity (dense unique
 *    ids below the recovery sentinels, table<->instruction bijection,
 *    recipes only at boundary blocks, valid recipe operands).
 *  - Structure: `ir::verifyModule`'s findings, folded into the report.
 *
 * The compiler can legitimately give up on the store bound (the runtime
 * WPQ-overflow fallback covers the residue, see LightWspCompiler); such
 * programs declare it via CompileStats::thresholdConverged == false and
 * their StoreBound findings are reported as waived, not failing.
 */

#ifndef LWSP_ANALYSIS_WSP_CHECKER_HH
#define LWSP_ANALYSIS_WSP_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/compiled_program.hh"
#include "compiler/config.hh"
#include "ir/program.hh"

namespace lwsp {
namespace analysis {

/** The proof obligations the checker discharges. */
enum class Obligation : std::uint8_t
{
    Structure,      ///< ir::verifyModule structural validity
    StoreBound,     ///< boundary-free paths fit the WPQ reservation
    CkptCoverage,   ///< live-across register has a current slot or recipe
    RecipeSoundness,///< recipe reconstructs the value the program needs
    Recoverability, ///< resume point of a site is executable
    RegionShape,    ///< post-split boundary placement shape
    SiteTable,      ///< site ids / table / instruction cross-consistency
};

const char *obligationName(Obligation o);

/** One discharged-in-the-negative proof obligation. */
struct Violation
{
    Obligation obligation = Obligation::Structure;
    ir::FuncId func = ir::invalidFunc;    ///< location, when known
    ir::BlockId block = ir::invalidBlock;
    std::uint32_t instIndex = ~0u;
    std::string message;

    std::string describe() const;  ///< "obligation @func:block:idx: msg"
};

/** What to check; stages of the pipeline discharge different subsets. */
struct CheckOptions
{
    /** Enforce the store bound (off before threshold enforcement ran). */
    bool checkStoreBound = true;
    /**
     * Report StoreBound findings as waived rather than failing — the
     * compiler declared threshold non-convergence and the runtime
     * WPQ-overflow fallback absorbs the residue.
     */
    bool waiveStoreBound = false;
    /**
     * Check checkpoint coverage at boundaries (off for cWSP-style
     * artifacts that recover by re-execution, and before checkpoint
     * insertion ran).
     */
    bool checkCoverage = true;
    /**
     * Site table not yet assigned: accept a provably-constant live
     * register in lieu of a recipe (the recipe pass derives exactly
     * those), gated on pruning being enabled.
     */
    bool sitesAssigned = true;
    /** Enforce the post-split boundary shape (off before splitting). */
    bool postSplitShape = true;
};

/** Aggregated result of one checker run. */
struct CheckReport
{
    std::vector<Violation> violations;  ///< failing findings
    std::vector<Violation> waived;      ///< declared-residue StoreBound
    unsigned worstRegionEntries = 0; ///< max persist entries in any region
    unsigned sitesChecked = 0;       ///< resume sites replayed
    unsigned boundariesSeen = 0;

    bool ok() const { return violations.empty(); }
    /** Multi-line human-readable summary (one line per finding). */
    std::string describe() const;
};

/**
 * Check a mid-pipeline module. @p sites may be null (pre-assignment);
 * when given, recipes are taken from it for the recovery replay.
 */
CheckReport checkModule(const ir::Module &m,
                        const compiler::CompilerConfig &cfg,
                        const CheckOptions &opt,
                        const std::vector<compiler::BoundarySite> *sites);

/** Check a finished compiler artifact against every obligation. */
CheckReport checkCompiledProgram(const compiler::CompiledProgram &prog,
                                 const compiler::CompilerConfig &cfg);

} // namespace analysis
} // namespace lwsp

#endif // LWSP_ANALYSIS_WSP_CHECKER_HH
