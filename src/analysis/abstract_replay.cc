/**
 * @file
 * Checkpoint coverage, recipe soundness and recoverability: an abstract
 * replay of `System::recover` at every resume site.
 *
 * Recovery restores all 16 registers from their PM slots, then applies
 * the site's recipes in order (cpu/thread_context.cc recoverAt). For a
 * resume at boundary B this reconstructs register r correctly iff
 *
 *   - r's slot provably holds r's value as of B (a CkptStore with no
 *     intervening redefinition reached B on every path), or
 *   - the last recipe for r is Const(v) and r == v is provable at B, or
 *   - the last recipe for r is AddSlot(src, d), r == slot[src] + d is
 *     provable at B, and slot[src] is provably current;
 *
 * and only registers live across B matter — anything else is dead on
 * every resume path. Liveness and value facts are derived by this file's
 * own interprocedural analyses, which intentionally mirror the *lattice
 * and transfer semantics* of the compiler's ModuleLiveness / ConstProp
 * (so sound pruning decisions check out at equal precision) while
 * sharing none of their code.
 */

#include <algorithm>

#include "analysis/internal.hh"

namespace lwsp {
namespace analysis {

using namespace ir;

// ---------------------------------------------------------------------
// LivenessOracle
// ---------------------------------------------------------------------

RegMask
LivenessOracle::instUse(FuncId f, const Instruction &inst) const
{
    switch (inst.op) {
      case Opcode::Mov:
      case Opcode::AddI:
      case Opcode::MulI:
      case Opcode::Load:
      case Opcode::LockAcq:
      case Opcode::LockRel:
        return regBit(inst.rs1);
      case Opcode::CkptStore:
        // NOT a use, deliberately diverging from the compiler's
        // ModuleLiveness: the compiler derives placement from the
        // ckpt-stripped module, so a register consumed only by later
        // CkptStores is not value-live — a stale restore of it is
        // never observable. Counting it here would demand coverage the
        // compiler correctly never provides (e.g. through a callee
        // whose entry checkpoints the register).
        return 0;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Store:
      case Opcode::AtomicAdd:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return regBit(inst.rs1) | regBit(inst.rs2);
      case Opcode::Fma:
        return regBit(inst.rs1) | regBit(inst.rs2) | regBit(inst.rd);
      case Opcode::Call:
        return funcUse_.at(inst.callee) | regBit(spReg);
      case Opcode::Ret:
        return funcLiveOut_.at(f) | regBit(spReg);
      default:
        return 0;
    }
}

RegMask
LivenessOracle::instDef(const Instruction &inst) const
{
    if (writesReg(inst.op))
        return regBit(inst.rd);
    if (inst.op == Opcode::Call)
        return funcDef_.at(inst.callee) | regBit(spReg);
    if (inst.op == Opcode::Ret)
        return regBit(spReg);
    return 0;
}

LivenessOracle::LivenessOracle(const Module &m)
    : m_(m), blockIn_(m.numFunctions()), blockOut_(m.numFunctions()),
      funcUse_(m.numFunctions(), 0), funcDef_(m.numFunctions(), 0),
      funcLiveOut_(m.numFunctions(), 0)
{
    for (FuncId f = 0; f < m.numFunctions(); ++f) {
        blockIn_[f].assign(m.function(f).numBlocks(), 0);
        blockOut_[f].assign(m.function(f).numBlocks(), 0);
    }

    bool module_changed = true;
    while (module_changed) {
        module_changed = false;
        for (FuncId f = 0; f < m.numFunctions(); ++f) {
            const Function &fn = m.function(f);
            Cfg cfg(fn);

            bool changed = true;
            while (changed) {
                changed = false;
                const auto &rpo = cfg.reversePostOrder();
                for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
                    BlockId b = *it;
                    RegMask out = 0;
                    for (BlockId s : cfg.successors(b))
                        out |= blockIn_[f][s];
                    RegMask in = out;
                    const auto &insts = fn.block(b).insts();
                    for (auto ri = insts.rbegin(); ri != insts.rend();
                         ++ri) {
                        in &= ~instDef(*ri);
                        in |= instUse(f, *ri);
                    }
                    if (out != blockOut_[f][b] || in != blockIn_[f][b]) {
                        blockOut_[f][b] = out;
                        blockIn_[f][b] = in;
                        changed = true;
                        module_changed = true;
                    }
                }
            }

            RegMask new_use = funcUse_[f] | blockIn_[f][0];
            RegMask new_def = funcDef_[f];
            for (BlockId b = 0; b < fn.numBlocks(); ++b) {
                for (const auto &inst : fn.block(b).insts())
                    new_def |= instDef(inst);
            }
            if (new_use != funcUse_[f] || new_def != funcDef_[f]) {
                funcUse_[f] = new_use;
                funcDef_[f] = new_def;
                module_changed = true;
            }

            for (BlockId b = 0; b < fn.numBlocks(); ++b) {
                const auto &insts = fn.block(b).insts();
                for (std::size_t i = 0; i < insts.size(); ++i) {
                    if (insts[i].op != Opcode::Call)
                        continue;
                    RegMask after = liveAfter(f, b, i);
                    FuncId callee = insts[i].callee;
                    RegMask merged = funcLiveOut_[callee] | after;
                    if (merged != funcLiveOut_[callee]) {
                        funcLiveOut_[callee] = merged;
                        module_changed = true;
                    }
                }
            }
        }
    }
}

RegMask
LivenessOracle::liveAfter(FuncId f, BlockId b, std::size_t idx) const
{
    const auto &insts = m_.function(f).block(b).insts();
    LWSP_ASSERT(idx < insts.size(), "liveAfter: bad index");
    RegMask live = blockOut_.at(f).at(b);
    for (std::size_t i = insts.size(); i-- > idx + 1;) {
        live &= ~instDef(insts[i]);
        live |= instUse(f, insts[i]);
    }
    return live;
}

// ---------------------------------------------------------------------
// ValueOracle
// ---------------------------------------------------------------------

namespace {

using AbsVal = ValueOracle::AbsVal;

AbsVal::C
meetC(const AbsVal &a, const AbsVal &b, std::int64_t &constant)
{
    if (a.c == AbsVal::C::Unknown) {
        constant = b.constant;
        return b.c;
    }
    if (b.c == AbsVal::C::Unknown) {
        constant = a.constant;
        return a.c;
    }
    if (a.c == AbsVal::C::Const && b.c == AbsVal::C::Const &&
        a.constant == b.constant) {
        constant = a.constant;
        return AbsVal::C::Const;
    }
    constant = 0;
    return AbsVal::C::Varying;
}

bool
sameState(const ValueOracle::State &a, const ValueOracle::State &b)
{
    if (a.reached != b.reached)
        return false;
    for (Reg r = 0; r < numGprs; ++r) {
        const AbsVal &x = a.regs[r], &y = b.regs[r];
        if (x.c != y.c || (x.c == AbsVal::C::Const &&
                           x.constant != y.constant))
            return false;
        if (x.slotCurrent != y.slotCurrent ||
            x.hasSlotRel != y.hasSlotRel)
            return false;
        if (x.hasSlotRel &&
            (x.slotSrc != y.slotSrc || x.slotDelta != y.slotDelta))
            return false;
    }
    return true;
}

/** Drop every slot fact (used at call-entry merges: callee inherits
 *  nothing provable about slot currency). */
void
clearSlotFacts(ValueOracle::State &st)
{
    for (Reg r = 0; r < numGprs; ++r) {
        st.regs[r].slotCurrent = false;
        st.regs[r].hasSlotRel = false;
    }
}

} // namespace

void
ValueOracle::join(State &into, const State &from) const
{
    if (!from.reached)
        return;
    if (!into.reached) {
        into = from;
        return;
    }
    for (Reg r = 0; r < numGprs; ++r) {
        AbsVal &x = into.regs[r];
        const AbsVal &y = from.regs[r];
        x.c = meetC(x, y, x.constant);
        x.slotCurrent = x.slotCurrent && y.slotCurrent;
        if (x.hasSlotRel &&
            !(y.hasSlotRel && y.slotSrc == x.slotSrc &&
              y.slotDelta == x.slotDelta)) {
            x.hasSlotRel = false;
        }
    }
}

void
ValueOracle::transfer(const Instruction &inst, State &st) const
{
    auto &regs = st.regs;
    auto varying = [&](Reg r) {
        regs[r].c = AbsVal::C::Varying;
        regs[r].constant = 0;
        regs[r].slotCurrent = false;
        regs[r].hasSlotRel = false;
    };
    // A definition of rd invalidates rd's slot facts (the slot now holds
    // a stale value); derived const / slot-relative facts are installed
    // by the per-opcode cases below from the *pre-transfer* operands.
    auto define = [&](Reg rd, AbsVal v) {
        v.slotCurrent = false;
        regs[rd] = v;
    };
    // Slot-relative view of rs1 usable to derive a fact about a copy or
    // offset of it: rs1 == slot[src] + delta.
    auto relOf = [&](Reg rs1, Reg &src, std::int64_t &delta) {
        if (regs[rs1].slotCurrent) {
            src = rs1;
            delta = 0;
            return true;
        }
        if (regs[rs1].hasSlotRel) {
            src = regs[rs1].slotSrc;
            delta = regs[rs1].slotDelta;
            return true;
        }
        return false;
    };

    switch (inst.op) {
      case Opcode::Movi: {
        AbsVal v;
        v.c = AbsVal::C::Const;
        v.constant = inst.imm;
        define(inst.rd, v);
        break;
      }
      case Opcode::Mov: {
        if (inst.rd == inst.rs1)
            break;  // value unchanged; every fact survives
        AbsVal v = regs[inst.rs1];
        Reg src;
        std::int64_t delta;
        v.hasSlotRel = relOf(inst.rs1, src, delta);
        if (v.hasSlotRel) {
            v.slotSrc = src;
            v.slotDelta = delta;
        }
        define(inst.rd, v);
        break;
      }
      case Opcode::AddI: {
        AbsVal v;
        if (regs[inst.rs1].isConst()) {
            v.c = AbsVal::C::Const;
            v.constant = regs[inst.rs1].constant + inst.imm;
        } else {
            v.c = AbsVal::C::Varying;
        }
        Reg src;
        std::int64_t delta;
        if (relOf(inst.rs1, src, delta)) {
            v.hasSlotRel = true;
            v.slotSrc = src;
            v.slotDelta = delta + inst.imm;
        }
        define(inst.rd, v);
        break;
      }
      case Opcode::MulI: {
        AbsVal v;
        if (regs[inst.rs1].isConst()) {
            v.c = AbsVal::C::Const;
            v.constant = regs[inst.rs1].constant * inst.imm;
        } else {
            v.c = AbsVal::C::Varying;
        }
        define(inst.rd, v);
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr: {
        const AbsVal &a = regs[inst.rs1];
        const AbsVal &b = regs[inst.rs2];
        AbsVal v;
        if (a.isConst() && b.isConst()) {
            auto ua = static_cast<std::uint64_t>(a.constant);
            auto ub = static_cast<std::uint64_t>(b.constant);
            std::uint64_t res = 0;
            switch (inst.op) {
              case Opcode::Add: res = ua + ub; break;
              case Opcode::Sub: res = ua - ub; break;
              case Opcode::Mul: res = ua * ub; break;
              case Opcode::Div: res = ub ? ua / ub : 0; break;
              case Opcode::And: res = ua & ub; break;
              case Opcode::Or:  res = ua | ub; break;
              case Opcode::Xor: res = ua ^ ub; break;
              case Opcode::Shl: res = ua << (ub & 63); break;
              case Opcode::Shr: res = ua >> (ub & 63); break;
              default: break;
            }
            v.c = AbsVal::C::Const;
            v.constant = static_cast<std::int64_t>(res);
        } else {
            v.c = AbsVal::C::Varying;
        }
        define(inst.rd, v);
        break;
      }
      case Opcode::Fma:
      case Opcode::Load:
        varying(inst.rd);
        break;
      case Opcode::CkptStore: {
        Reg r = inst.rs1;
        // slot[r] := r. Other registers' slot-relative facts against
        // slot[r] survive only if the slot content does not change,
        // i.e. it was already current.
        if (!regs[r].slotCurrent) {
            for (Reg o = 0; o < numGprs; ++o) {
                if (regs[o].hasSlotRel && regs[o].slotSrc == r)
                    regs[o].hasSlotRel = false;
            }
        }
        regs[r].slotCurrent = true;
        regs[r].hasSlotRel = true;
        regs[r].slotSrc = r;
        regs[r].slotDelta = 0;
        break;
      }
      case Opcode::Call: {
        RegMask killed = live_.funcDef(inst.callee) | regBit(spReg);
        for (Reg r = 0; r < numGprs; ++r) {
            if (killed & regBit(r))
                varying(r);
            // The callee may checkpoint any register from its own
            // sites, rewriting arbitrary slots: no slot-relative fact
            // survives a call. slotCurrent survives for registers the
            // callee provably does not write — a callee CkptStore of
            // such a register rewrites the slot with the same value.
            regs[r].hasSlotRel = false;
        }
        break;
      }
      case Opcode::Ret:
        varying(spReg);
        break;
      default:
        break;  // stores, branches, sync ops, boundaries: no reg effect
    }
}

ValueOracle::ValueOracle(const Module &m, const LivenessOracle &live)
    : m_(m), live_(live), blockIn_(m.numFunctions()),
      funcEntry_(m.numFunctions())
{
    for (FuncId f = 0; f < m.numFunctions(); ++f)
        blockIn_[f].assign(m.function(f).numBlocks(), State{});

    // Thread spawn gives the entry function runtime register state
    // (r0 = tid, r15 = sp, rest zero) over unwritten slots: nothing
    // provable. Callee entries accumulate callsite joins below.
    funcEntry_[0].reached = true;
    for (auto &v : funcEntry_[0].regs)
        v.c = AbsVal::C::Varying;

    bool changed = true;
    while (changed) {
        changed = false;
        for (FuncId f = 0; f < m.numFunctions(); ++f) {
            const Function &fn = m.function(f);
            Cfg cfg(fn);
            for (BlockId b : cfg.reversePostOrder()) {
                State in;
                if (b == 0) {
                    in = funcEntry_[f];
                } else {
                    for (BlockId p : cfg.predecessors(b)) {
                        if (!cfg.reachable(p))
                            continue;
                        State pout = blockIn_[f][p];
                        if (pout.reached) {
                            for (const auto &inst : fn.block(p).insts())
                                transfer(inst, pout);
                        }
                        join(in, pout);
                    }
                }
                if (!sameState(in, blockIn_[f][b])) {
                    blockIn_[f][b] = in;
                    changed = true;
                }

                State walk = blockIn_[f][b];
                if (!walk.reached)
                    continue;
                for (const auto &inst : fn.block(b).insts()) {
                    if (inst.op == Opcode::Call &&
                        inst.callee < m.numFunctions()) {
                        State callee_in = walk;
                        callee_in.regs[spReg].c = AbsVal::C::Varying;
                        callee_in.regs[spReg].constant = 0;
                        clearSlotFacts(callee_in);
                        State merged = funcEntry_[inst.callee];
                        join(merged, callee_in);
                        if (!sameState(merged,
                                       funcEntry_[inst.callee])) {
                            funcEntry_[inst.callee] = merged;
                            changed = true;
                        }
                    }
                    transfer(inst, walk);
                }
            }
        }
    }
}

ValueOracle::State
ValueOracle::stateBefore(FuncId f, BlockId b, std::size_t idx) const
{
    State s = blockIn_.at(f).at(b);
    if (!s.reached)
        return s;
    const auto &insts = m_.function(f).block(b).insts();
    LWSP_ASSERT(idx <= insts.size(), "stateBefore: bad index");
    for (std::size_t i = 0; i < idx; ++i)
        transfer(insts[i], s);
    return s;
}

// ---------------------------------------------------------------------
// Recovery replay at every resume site
// ---------------------------------------------------------------------

namespace {

std::string
regName(Reg r)
{
    return "r" + std::to_string(unsigned(r));
}

class ReplayChecker
{
  public:
    ReplayChecker(const Module &m, const CheckOptions &opt,
                  bool prune_enabled,
                  const std::vector<compiler::BoundarySite> *sites,
                  CheckReport &report)
        : m_(m), opt_(opt), prune_(prune_enabled), sites_(sites),
          report_(report), live_(m), values_(m, live_)
    {
        auto reachable = reachableFunctions(m);
        for (FuncId f = 0; f < m.numFunctions(); ++f) {
            if (!reachable[f])
                continue;
            Cfg cfg(m.function(f));
            for (BlockId b = 0; b < m.function(f).numBlocks(); ++b) {
                if (cfg.reachable(b))
                    checkBlock(f, b);
            }
        }
    }

  private:
    void
    checkBlock(FuncId f, BlockId b)
    {
        const auto &insts = m_.function(f).block(b).insts();
        ValueOracle::State st = values_.stateBefore(f, b, 0);
        for (std::size_t i = 0; i < insts.size(); ++i) {
            if (insts[i].op == Opcode::Boundary && st.reached) {
                checkSite(f, b, i, st);
                ++report_.sitesChecked;
            }
            values_.transfer(insts[i], st);
        }
    }

    /** Last recipe for @p r wins (recoverAt applies them in order). */
    const compiler::CkptRecipe *
    recipeFor(const std::vector<compiler::CkptRecipe> &recipes, Reg r)
    {
        const compiler::CkptRecipe *found = nullptr;
        for (const auto &rec : recipes) {
            if (rec.reg == r)
                found = &rec;
        }
        return found;
    }

    const std::vector<compiler::CkptRecipe> *
    siteRecipes(FuncId f, BlockId b, std::size_t i,
                const Instruction &inst)
    {
        if (!sites_)
            return nullptr;
        auto id = static_cast<std::uint64_t>(inst.imm);
        if (id >= sites_->size())
            return nullptr;  // SiteTable checks report the bad id
        const auto &site = (*sites_)[id];
        if (site.func != f || site.block != b || site.instIndex != i)
            return nullptr;  // likewise
        return &site.recipes;
    }

    void
    checkSite(FuncId f, BlockId b, std::size_t i,
              const ValueOracle::State &st)
    {
        const auto &insts = m_.function(f).block(b).insts();
        if (i + 1 >= insts.size()) {
            emit(Obligation::Recoverability, f, b, i,
                 "resume point past the end of the block: recovery at "
                 "this site cannot execute");
            return;
        }

        static const std::vector<compiler::CkptRecipe> none;
        const auto *recipes = siteRecipes(f, b, i, insts[i]);
        RegMask live = live_.liveAfter(f, b, i);
        for (Reg r = 0; r < numGprs; ++r) {
            if (!(live & regBit(r)))
                continue;
            checkReg(f, b, i, st, recipes ? *recipes : none, r,
                     recipes != nullptr);
        }
    }

    void
    checkReg(FuncId f, BlockId b, std::size_t i,
             const ValueOracle::State &st,
             const std::vector<compiler::CkptRecipe> &recipes, Reg r,
             bool have_recipes)
    {
        const auto &v = st.regs[r];
        if (const auto *rec = recipeFor(recipes, r)) {
            if (rec->kind == compiler::CkptRecipe::Kind::Const) {
                if (!v.isConst()) {
                    emit(Obligation::RecipeSoundness, f, b, i,
                         "Const recipe for " + regName(r) +
                             " claims value " + std::to_string(rec->imm) +
                             " but the register is not provably "
                             "constant here");
                } else if (v.constant != rec->imm) {
                    emit(Obligation::RecipeSoundness, f, b, i,
                         "Const recipe for " + regName(r) +
                             " claims value " + std::to_string(rec->imm) +
                             " but analysis proves " +
                             std::to_string(v.constant));
                }
            } else {  // AddSlot
                if (!(v.hasSlotRel && v.slotSrc == rec->src &&
                      v.slotDelta == rec->imm)) {
                    emit(Obligation::RecipeSoundness, f, b, i,
                         "AddSlot recipe for " + regName(r) +
                             " (slot " + regName(rec->src) + " + " +
                             std::to_string(rec->imm) + ") does not "
                             "match any provable slot-relative value");
                } else if (!st.regs[rec->src].slotCurrent) {
                    emit(Obligation::RecipeSoundness, f, b, i,
                         "AddSlot recipe for " + regName(r) +
                             " reads slot " + regName(rec->src) +
                             ", which is not provably current");
                }
            }
            return;
        }
        if (v.slotCurrent)
            return;
        if (!opt_.sitesAssigned && prune_ && v.isConst())
            return;  // the recipe pass will cover exactly this case
        emit(Obligation::CkptCoverage, f, b, i,
             regName(r) + " is live across this boundary but has "
             "neither a provably current checkpoint slot nor a " +
             (have_recipes ? "recipe" : "provable recovery path"));
    }

    void
    emit(Obligation ob, FuncId f, BlockId b, std::size_t i,
         std::string msg)
    {
        if (emitted_ >= maxEmitted_) {
            if (emitted_ == maxEmitted_) {
                addViolation(report_.violations, ob, invalidFunc,
                             invalidBlock, ~0u,
                             "further recovery findings suppressed");
                ++emitted_;
            }
            return;
        }
        ++emitted_;
        addViolation(report_.violations, ob, f, b,
                     static_cast<std::uint32_t>(i), std::move(msg));
    }

    const Module &m_;
    const CheckOptions &opt_;
    const bool prune_;
    const std::vector<compiler::BoundarySite> *sites_;
    CheckReport &report_;
    LivenessOracle live_;
    ValueOracle values_;
    unsigned emitted_ = 0;
    static constexpr unsigned maxEmitted_ = 32;
};

} // namespace

void
checkRecoverability(const Module &m, const CheckOptions &opt,
                    bool prune_enabled,
                    const std::vector<compiler::BoundarySite> *sites,
                    CheckReport &report)
{
    ReplayChecker run(m, opt, prune_enabled, sites, report);
}

} // namespace analysis
} // namespace lwsp
