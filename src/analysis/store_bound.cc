/**
 * @file
 * StoreBound: independent max-over-paths persist-entry analysis.
 *
 * Counts what the persist path (WPQ) actually sees between region-ending
 * events, from instruction semantics (cpu/thread_context.cc) rather than
 * the compiler's isPersistEntry() model:
 *
 *  - Store / CkptStore: one data store each.
 *  - Call: one store (the return-address push into persisted stack
 *    memory) that lands in the *caller's current region*, which remains
 *    open into the callee until the callee's first boundary fires. This
 *    inflow is the interprocedural edge the compiler's per-function
 *    dataflow historically missed.
 *  - Fence: one marker store (pcSlot + 16), and the fence itself ends
 *    the current region (fused boundary, no PC checkpoint); its marker
 *    opens the next region.
 *  - AtomicAdd / LockAcq / LockRel: like Fence but the op's own data
 *    store opens the next region.
 *  - Boundary: the PC-checkpointing store closes the region *including
 *    itself*; Halt closes it with the halt-sentinel PC store.
 *
 * A region may hold at most `budget + 1` entries where budget is the
 * compiler's reservation (storeThreshold - 1, clamped to >= 1): budget
 * data entries plus the closing PC store. Counters saturate just above
 * that capacity, which both bounds the fixpoint and keeps a storeful
 * cycle with no boundary detectable.
 */

#include <algorithm>

#include "analysis/internal.hh"

namespace lwsp {
namespace analysis {

using namespace ir;

namespace {

struct BoundState
{
    // Max persist entries accumulated since the last region end, at
    // block entry, for every reachable block of every function.
    std::vector<std::vector<unsigned>> in;
    std::vector<std::vector<unsigned>> out;
    std::vector<unsigned> callIn;  ///< max inflow at callee entry
    std::vector<unsigned> retOut;  ///< max count at any Ret of f
};

class StoreBoundAnalysis
{
  public:
    StoreBoundAnalysis(const Module &m, unsigned threshold, bool waive,
                       CheckReport &report)
        : m_(m), report_(report), waive_(waive),
          budget_(threshold > 1 ? threshold - 1 : 1),
          capacity_(budget_ + 1), cap_(capacity_ + 1),
          reachableFn_(reachableFunctions(m))
    {
        st_.in.resize(m.numFunctions());
        st_.out.resize(m.numFunctions());
        st_.callIn.assign(m.numFunctions(), 0);
        st_.retOut.assign(m.numFunctions(), 0);
        for (FuncId f = 0; f < m.numFunctions(); ++f) {
            st_.in[f].assign(m.function(f).numBlocks(), 0);
            st_.out[f].assign(m.function(f).numBlocks(), 0);
            cfgs_.emplace_back(m.function(f));
        }
        solve();
        reportViolations();
    }

  private:
    unsigned sat(unsigned v) const { return std::min(v, cap_); }

    /**
     * Walk one block from @p cnt, returning the out-count. When
     * @p emit is set, closure totals are checked and violations
     * reported (the post-convergence reporting pass).
     */
    unsigned
    walk(FuncId f, BlockId b, unsigned cnt, bool emit, bool &changed)
    {
        const auto &insts = m_.function(f).block(b).insts();
        for (std::size_t i = 0; i < insts.size(); ++i) {
            const Instruction &inst = insts[i];
            switch (inst.op) {
              case Opcode::Boundary:
              case Opcode::Halt:
                // PC-checkpointing store closes the region with itself.
                if (emit)
                    closeRegion(f, b, i, sat(cnt + 1));
                cnt = 0;
                break;
              case Opcode::Fence:
              case Opcode::AtomicAdd:
              case Opcode::LockAcq:
              case Opcode::LockRel:
                // Fused region end: broadcast without a PC checkpoint;
                // the op's own store opens the successor region.
                if (emit)
                    closeRegion(f, b, i, cnt);
                cnt = 1;
                break;
              case Opcode::Store:
              case Opcode::CkptStore:
                cnt = sat(cnt + 1);
                if (emit && cnt > capacity_)
                    openOverflow(f, b, i);
                break;
              case Opcode::Call: {
                cnt = sat(cnt + 1);  // return-address push
                if (emit && cnt > capacity_)
                    openOverflow(f, b, i);
                if (inst.callee < m_.numFunctions()) {
                    unsigned merged = std::max(st_.callIn[inst.callee],
                                               cnt);
                    if (merged != st_.callIn[inst.callee]) {
                        st_.callIn[inst.callee] = merged;
                        changed = true;
                    }
                    cnt = st_.retOut[inst.callee];
                }
                break;
              }
              case Opcode::Ret:
                if (cnt > st_.retOut[f]) {
                    st_.retOut[f] = cnt;
                    changed = true;
                }
                break;
              default:
                break;  // no persist-path effect
            }
        }
        return cnt;
    }

    void
    solve()
    {
        bool changed = true;
        while (changed) {
            changed = false;
            for (FuncId f = 0; f < m_.numFunctions(); ++f) {
                if (!reachableFn_[f])
                    continue;
                const Cfg &cfg = cfgs_[f];
                for (BlockId b : cfg.reversePostOrder()) {
                    unsigned in = (b == 0) ? entryIn(f) : 0;
                    for (BlockId p : cfg.predecessors(b)) {
                        if (cfg.reachable(p))
                            in = std::max(in, st_.out[f][p]);
                    }
                    unsigned out = walk(f, b, in, false, changed);
                    if (in != st_.in[f][b] || out != st_.out[f][b]) {
                        st_.in[f][b] = in;
                        st_.out[f][b] = out;
                        changed = true;
                    }
                }
            }
        }
    }

    unsigned
    entryIn(FuncId f) const
    {
        // The entry function starts with an empty region; a callee
        // inherits the caller's in-flight count (return-address push
        // included).
        return f == 0 ? 0u : st_.callIn[f];
    }

    void
    reportViolations()
    {
        bool changed = false;  // summaries are converged; unused
        for (FuncId f = 0; f < m_.numFunctions(); ++f) {
            if (!reachableFn_[f])
                continue;
            const Cfg &cfg = cfgs_[f];
            for (BlockId b : cfg.reversePostOrder())
                walk(f, b, st_.in[f][b], true, changed);
        }
    }

    void
    closeRegion(FuncId f, BlockId b, std::size_t i, unsigned total)
    {
        report_.worstRegionEntries =
            std::max(report_.worstRegionEntries, total);
        if (total <= capacity_)
            return;
        emit(f, b, i,
             std::string("region closing here holds ") +
                 (total >= cap_ ? ">= " : "") + std::to_string(total) +
                 " persist entries (cap " + std::to_string(capacity_) +
                 " = budget " + std::to_string(budget_) +
                 " + PC store)");
    }

    void
    openOverflow(FuncId f, BlockId b, std::size_t i)
    {
        emit(f, b, i,
             "boundary-free path reaching this store already exceeds "
             "the region capacity of " + std::to_string(capacity_) +
             " persist entries");
    }

    void
    emit(FuncId f, BlockId b, std::size_t i, std::string msg)
    {
        auto &sink = waive_ ? report_.waived : report_.violations;
        if (reported_ >= maxReported_) {
            if (reported_ == maxReported_) {
                addViolation(sink, Obligation::StoreBound, invalidFunc,
                             invalidBlock, ~0u,
                             "further store-bound findings suppressed");
                ++reported_;
            }
            return;
        }
        ++reported_;
        addViolation(sink, Obligation::StoreBound, f, b,
                     static_cast<std::uint32_t>(i), std::move(msg));
    }

    const Module &m_;
    CheckReport &report_;
    const bool waive_;
    const unsigned budget_;
    const unsigned capacity_;
    const unsigned cap_;
    std::vector<bool> reachableFn_;
    std::vector<Cfg> cfgs_;
    BoundState st_;
    unsigned reported_ = 0;
    static constexpr unsigned maxReported_ = 16;
};

} // namespace

void
checkStoreBound(const Module &m, unsigned storeThreshold, bool waive,
                CheckReport &report)
{
    StoreBoundAnalysis run(m, storeThreshold, waive, report);
}

} // namespace analysis
} // namespace lwsp
