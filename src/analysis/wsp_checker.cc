/**
 * @file
 * Checker orchestration: structural gate, post-split shape and
 * site-table integrity, then the semantic obligations (store bound,
 * recovery replay) from store_bound.cc / abstract_replay.cc.
 */

#include <set>
#include <sstream>
#include <tuple>

#include "analysis/internal.hh"
#include "ir/verifier.hh"

namespace lwsp {
namespace analysis {

using namespace ir;

const char *
obligationName(Obligation o)
{
    switch (o) {
      case Obligation::Structure: return "structure";
      case Obligation::StoreBound: return "store-bound";
      case Obligation::CkptCoverage: return "ckpt-coverage";
      case Obligation::RecipeSoundness: return "recipe-soundness";
      case Obligation::Recoverability: return "recoverability";
      case Obligation::RegionShape: return "region-shape";
      case Obligation::SiteTable: return "site-table";
    }
    return "<bad-obligation>";
}

std::string
Violation::describe() const
{
    std::ostringstream os;
    os << "[" << obligationName(obligation) << "]";
    if (func != invalidFunc) {
        os << " func " << func;
        if (block != invalidBlock)
            os << " block " << block;
        if (instIndex != ~0u)
            os << " inst " << instIndex;
    }
    os << ": " << message;
    return os.str();
}

std::string
CheckReport::describe() const
{
    std::ostringstream os;
    if (ok()) {
        os << "OK: " << boundariesSeen << " boundaries, "
           << sitesChecked << " resume sites replayed, worst region "
           << worstRegionEntries << " persist entries";
        if (!waived.empty()) {
            os << "; " << waived.size()
               << " store-bound finding(s) waived (declared threshold "
                  "non-convergence)";
        }
        return os.str();
    }
    os << violations.size() << " violation(s):";
    for (const auto &v : violations)
        os << "\n  " << v.describe();
    for (const auto &v : waived)
        os << "\n  (waived) " << v.describe();
    return os.str();
}

void
addViolation(std::vector<Violation> &out, Obligation ob, FuncId f,
             BlockId b, std::uint32_t idx, std::string msg)
{
    Violation v;
    v.obligation = ob;
    v.func = f;
    v.block = b;
    v.instIndex = idx;
    v.message = std::move(msg);
    out.push_back(std::move(v));
}

std::vector<bool>
reachableFunctions(const Module &m)
{
    std::vector<bool> seen(m.numFunctions(), false);
    std::vector<FuncId> work;
    if (m.numFunctions() > 0) {
        seen[0] = true;
        work.push_back(0);
    }
    while (!work.empty()) {
        FuncId f = work.back();
        work.pop_back();
        const Function &fn = m.function(f);
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            for (const auto &inst : fn.block(b).insts()) {
                if (inst.op == Opcode::Call &&
                    inst.callee < m.numFunctions() &&
                    !seen[inst.callee]) {
                    seen[inst.callee] = true;
                    work.push_back(inst.callee);
                }
            }
        }
    }
    return seen;
}

std::vector<bool>
calledFunctions(const Module &m)
{
    auto reachable = reachableFunctions(m);
    std::vector<bool> called(m.numFunctions(), false);
    for (FuncId f = 0; f < m.numFunctions(); ++f) {
        if (!reachable[f])
            continue;
        const Function &fn = m.function(f);
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            for (const auto &inst : fn.block(b).insts()) {
                if (inst.op == Opcode::Call &&
                    inst.callee < m.numFunctions())
                    called[inst.callee] = true;
            }
        }
    }
    return called;
}

namespace {

// Recovery PC-slot sentinels (core/system.hh noSiteSentinel and
// cpu/exec_record.hh haltSite): a site id at or above either would be
// misread at recovery as "reset from scratch" / "halted".
constexpr std::uint64_t recoverySentinelFloor = 0xffff'fffeull;

void
checkShape(const Module &m, const CheckOptions &opt, CheckReport &rep)
{
    for (FuncId f = 0; f < m.numFunctions(); ++f) {
        const Function &fn = m.function(f);
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            const auto &insts = fn.block(b).insts();
            unsigned count = 0;
            for (std::size_t i = 0; i < insts.size(); ++i) {
                if (insts[i].op != Opcode::Boundary)
                    continue;
                ++count;
                ++rep.boundariesSeen;
                if (!isValidBoundaryKind(insts[i].rd)) {
                    addViolation(rep.violations, Obligation::RegionShape,
                                 f, b, static_cast<std::uint32_t>(i),
                                 "invalid boundary kind " +
                                     std::to_string(insts[i].rd));
                }
                if (opt.postSplitShape && i + 2 != insts.size()) {
                    addViolation(rep.violations, Obligation::RegionShape,
                                 f, b, static_cast<std::uint32_t>(i),
                                 "boundary is not the penultimate "
                                 "instruction of its block");
                }
            }
            if (opt.postSplitShape && count > 1) {
                addViolation(rep.violations, Obligation::RegionShape, f,
                             b, ~0u,
                             "block holds " + std::to_string(count) +
                                 " boundaries (exactly one region may "
                                 "start per block after splitting)");
            }
        }
    }
}

void
checkSiteTable(const Module &m,
               const std::vector<compiler::BoundarySite> &sites,
               CheckReport &rep)
{
    const std::size_t findings_before = rep.violations.size();
    auto emit = [&](std::uint32_t id, std::string msg) {
        addViolation(rep.violations, Obligation::SiteTable, invalidFunc,
                     invalidBlock, ~0u,
                     "site " + std::to_string(id) + ": " +
                         std::move(msg));
    };

    std::set<std::tuple<FuncId, BlockId, std::uint32_t>> claimed;
    for (std::size_t k = 0; k < sites.size(); ++k) {
        const auto &s = sites[k];
        if (s.id != k) {
            emit(s.id, "table index " + std::to_string(k) +
                           " does not match its id (ids must be dense "
                           "and unique)");
            continue;
        }
        if (static_cast<std::uint64_t>(s.id) >= recoverySentinelFloor) {
            emit(s.id, "id collides with a recovery sentinel");
            continue;
        }
        if (s.func >= m.numFunctions()) {
            emit(s.id, "references nonexistent function");
            continue;
        }
        const Function &fn = m.function(s.func);
        if (s.block >= fn.numBlocks()) {
            emit(s.id, "references nonexistent block");
            continue;
        }
        const auto &insts = fn.block(s.block).insts();
        if (s.instIndex >= insts.size() ||
            insts[s.instIndex].op != Opcode::Boundary) {
            emit(s.id, "does not point at a Boundary instruction");
            continue;
        }
        const Instruction &inst = insts[s.instIndex];
        if (static_cast<std::uint64_t>(inst.imm) != s.id) {
            emit(s.id, "boundary instruction carries site id " +
                           std::to_string(inst.imm));
        }
        if (!isValidBoundaryKind(static_cast<std::uint8_t>(s.kind))) {
            emit(s.id, "invalid boundary kind in table");
        } else if (inst.rd != static_cast<std::uint8_t>(s.kind)) {
            emit(s.id, "kind disagrees with the boundary instruction");
        }
        for (const auto &r : s.recipes) {
            if (r.reg >= numGprs || r.src >= numGprs) {
                emit(s.id, "recipe register out of range");
            }
            if (r.kind != compiler::CkptRecipe::Kind::Const &&
                r.kind != compiler::CkptRecipe::Kind::AddSlot) {
                emit(s.id, "invalid recipe kind");
            }
        }
        if (!claimed.insert({s.func, s.block, s.instIndex}).second)
            emit(s.id, "duplicate site for one boundary instruction");
    }

    // Every Boundary in the module must be claimed by exactly one site.
    std::size_t boundaries = 0;
    for (FuncId f = 0; f < m.numFunctions(); ++f) {
        const Function &fn = m.function(f);
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            const auto &insts = fn.block(b).insts();
            for (std::size_t i = 0; i < insts.size(); ++i) {
                if (insts[i].op != Opcode::Boundary)
                    continue;
                ++boundaries;
                if (!claimed.count(
                        {f, b, static_cast<std::uint32_t>(i)})) {
                    addViolation(rep.violations, Obligation::SiteTable,
                                 f, b, static_cast<std::uint32_t>(i),
                                 "boundary has no site-table entry");
                }
            }
        }
    }
    if (boundaries != sites.size() &&
        rep.violations.size() == findings_before) {
        addViolation(rep.violations, Obligation::SiteTable, invalidFunc,
                     invalidBlock, ~0u,
                     "site table holds " + std::to_string(sites.size()) +
                         " entries for " + std::to_string(boundaries) +
                         " boundaries");
    }
}

} // namespace

CheckReport
checkModule(const Module &m, const compiler::CompilerConfig &cfg,
            const CheckOptions &opt,
            const std::vector<compiler::BoundarySite> *sites)
{
    CheckReport rep;

    // Structural validity gates everything: the semantic analyses
    // assume in-range callees, terminated blocks and valid operands.
    for (const auto &problem : verifyModule(m)) {
        addViolation(rep.violations, Obligation::Structure, invalidFunc,
                     invalidBlock, ~0u, problem);
    }
    if (!rep.ok())
        return rep;

    checkShape(m, opt, rep);
    if (sites && opt.sitesAssigned)
        checkSiteTable(m, *sites, rep);

    if (opt.checkStoreBound) {
        checkStoreBound(m, cfg.storeThreshold, opt.waiveStoreBound,
                        rep);
    }
    if (opt.checkCoverage)
        checkRecoverability(m, opt, cfg.pruneCheckpoints, sites, rep);
    return rep;
}

CheckReport
checkCompiledProgram(const compiler::CompiledProgram &prog,
                     const compiler::CompilerConfig &cfg)
{
    LWSP_ASSERT(prog.module, "checkCompiledProgram: null module");
    CheckOptions opt;
    opt.waiveStoreBound = !prog.stats.thresholdConverged;
    opt.checkCoverage = cfg.insertCheckpointStores;
    opt.sitesAssigned = true;
    opt.postSplitShape = true;
    return checkModule(*prog.module, cfg, opt, &prog.sites);
}

} // namespace analysis
} // namespace lwsp
