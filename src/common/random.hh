/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The workload generator and property tests need reproducible streams that
 * are stable across platforms and standard-library versions, so we use a
 * fixed xoshiro256** implementation instead of std::mt19937.
 */

#ifndef LWSP_COMMON_RANDOM_HH
#define LWSP_COMMON_RANDOM_HH

#include <cstdint>

#include "logging.hh"

namespace lwsp {

/** xoshiro256** with splitmix64 seeding; identical streams everywhere. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the 4-word state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        LWSP_ASSERT(bound != 0, "Rng::below(0)");
        // Modulo bias is irrelevant at our bounds (<< 2^64).
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        LWSP_ASSERT(lo <= hi, "Rng::range lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace lwsp

#endif // LWSP_COMMON_RANDOM_HH
