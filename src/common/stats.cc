#include "stats.hh"

#include <cmath>
#include <iomanip>

namespace lwsp {
namespace stats {

void
StatGroup::dump(std::ostream &os) const
{
    auto line = [&](const std::string &stat, double v,
                    const std::string &desc) {
        os << name_ << '.' << stat << ' ' << std::setprecision(12) << v;
        if (!desc.empty())
            os << " # " << desc;
        os << '\n';
    };

    for (const auto &[stat, e] : scalars_)
        line(stat, e.stat->value(), e.desc);
    for (const auto &[stat, e] : averages_) {
        line(stat + ".mean", e.stat->mean(), e.desc);
        line(stat + ".count", static_cast<double>(e.stat->count()), "");
    }
    for (const auto &[stat, e] : dists_) {
        const auto &d = *e.stat;
        line(stat + ".mean", d.summary().mean(), e.desc);
        line(stat + ".min", d.summary().min(), "");
        line(stat + ".max", d.summary().max(), "");
        line(stat + ".count", static_cast<double>(d.summary().count()), "");
    }
}

double
StatGroup::scalarValue(const std::string &stat_name) const
{
    auto it = scalars_.find(stat_name);
    if (it == scalars_.end())
        panic("StatGroup ", name_, " has no scalar '", stat_name, "'");
    return it->second.stat->value();
}

double
geomean(const std::vector<double> &values)
{
    LWSP_ASSERT(!values.empty(), "geomean of empty set");
    double log_sum = 0;
    for (double v : values) {
        LWSP_ASSERT(v > 0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace stats
} // namespace lwsp
