#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

namespace lwsp {
namespace stats {

double
Percentiles::percentile(double q) const
{
    LWSP_ASSERT(q >= 0.0 && q <= 1.0, "percentile rank out of [0,1]");
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    // Nearest-rank: rank ceil(q*n), 1-based, clamped to [1, n].
    auto n = samples_.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank < 1)
        rank = 1;
    if (rank > n)
        rank = n;
    return samples_[rank - 1];
}

double
Percentiles::max() const
{
    if (samples_.empty())
        return 0.0;
    if (sorted_)
        return samples_.back();
    return *std::max_element(samples_.begin(), samples_.end());
}

double
Percentiles::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0;
    for (double v : samples_)
        sum += v;
    return sum / static_cast<double>(samples_.size());
}

void
StatGroup::dump(std::ostream &os) const
{
    auto line = [&](const std::string &stat, double v,
                    const std::string &desc) {
        os << name_ << '.' << stat << ' ' << std::setprecision(12) << v;
        if (!desc.empty())
            os << " # " << desc;
        os << '\n';
    };

    for (const auto &[stat, e] : scalars_)
        line(stat, e.stat->value(), e.desc);
    for (const auto &[stat, e] : averages_) {
        line(stat + ".mean", e.stat->mean(), e.desc);
        line(stat + ".count", static_cast<double>(e.stat->count()), "");
    }
    for (const auto &[stat, e] : dists_) {
        const auto &d = *e.stat;
        line(stat + ".mean", d.summary().mean(), e.desc);
        line(stat + ".min", d.summary().min(), "");
        line(stat + ".max", d.summary().max(), "");
        line(stat + ".count", static_cast<double>(d.summary().count()), "");
    }
    for (const auto &[stat, e] : percs_) {
        const auto &p = *e.stat;
        line(stat + ".p50", p.p50(), e.desc);
        line(stat + ".p90", p.p90(), "");
        line(stat + ".p99", p.p99(), "");
        line(stat + ".p999", p.p999(), "");
        line(stat + ".max", p.max(), "");
        line(stat + ".count", static_cast<double>(p.count()), "");
    }
    for (const auto &[stat, e] : funcs_)
        line(stat, e.fn(), e.desc);
}

namespace {

/** JSON number (JSON has no NaN/Inf — those become null). */
void
jsonNum(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << std::setprecision(12) << v;
    else
        os << "null";
}

} // namespace

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << '{';
    bool first = true;
    auto key = [&](const std::string &stat) -> std::ostream & {
        if (!first)
            os << ',';
        first = false;
        os << '"' << stat << "\":";
        return os;
    };

    for (const auto &[stat, e] : scalars_) {
        key(stat);
        jsonNum(os, e.stat->value());
    }
    for (const auto &[stat, e] : averages_) {
        key(stat);
        os << "{\"mean\":";
        jsonNum(os, e.stat->mean());
        os << ",\"min\":";
        jsonNum(os, e.stat->min());
        os << ",\"max\":";
        jsonNum(os, e.stat->max());
        os << ",\"count\":" << e.stat->count() << '}';
    }
    for (const auto &[stat, e] : dists_) {
        const auto &d = *e.stat;
        key(stat);
        os << "{\"mean\":";
        jsonNum(os, d.summary().mean());
        os << ",\"min\":";
        jsonNum(os, d.summary().min());
        os << ",\"max\":";
        jsonNum(os, d.summary().max());
        os << ",\"count\":" << d.summary().count()
           << ",\"underflow\":" << d.underflow()
           << ",\"overflow\":" << d.overflow() << ",\"buckets\":[";
        for (std::size_t i = 0; i < d.buckets().size(); ++i) {
            if (i)
                os << ',';
            os << d.buckets()[i];
        }
        os << "]}";
    }
    for (const auto &[stat, e] : percs_) {
        const auto &p = *e.stat;
        key(stat);
        os << "{\"p50\":";
        jsonNum(os, p.p50());
        os << ",\"p90\":";
        jsonNum(os, p.p90());
        os << ",\"p99\":";
        jsonNum(os, p.p99());
        os << ",\"p999\":";
        jsonNum(os, p.p999());
        os << ",\"max\":";
        jsonNum(os, p.max());
        os << ",\"count\":" << p.count() << '}';
    }
    for (const auto &[stat, e] : funcs_) {
        key(stat);
        jsonNum(os, e.fn());
    }
    os << '}';
}

double
StatGroup::scalarValue(const std::string &stat_name) const
{
    auto it = scalars_.find(stat_name);
    if (it == scalars_.end())
        panic("StatGroup ", name_, " has no scalar '", stat_name, "'");
    return it->second.stat->value();
}

double
StatGroup::funcValue(const std::string &stat_name) const
{
    auto it = funcs_.find(stat_name);
    if (it == funcs_.end())
        panic("StatGroup ", name_, " has no func stat '", stat_name, "'");
    return it->second.fn();
}

StatGroup &
Registry::group(const std::string &name)
{
    auto it = index_.find(name);
    if (it != index_.end())
        return *groups_[it->second];
    index_.emplace(name, groups_.size());
    groups_.push_back(std::make_unique<StatGroup>(name));
    return *groups_.back();
}

void
Registry::dump(std::ostream &os) const
{
    for (const auto &g : groups_)
        g->dump(os);
}

void
Registry::dumpJson(std::ostream &os) const
{
    os << '{';
    bool first = true;
    for (const auto &g : groups_) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << g->name() << "\":";
        g->dumpJson(os);
    }
    os << '}';
}

double
geomean(const std::vector<double> &values)
{
    LWSP_ASSERT(!values.empty(), "geomean of empty set");
    double log_sum = 0;
    for (double v : values) {
        LWSP_ASSERT(v > 0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace stats
} // namespace lwsp
