#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace lwsp {

namespace {

// Worker threads of a parallel sweep toggle/read quietness and emit
// warnings concurrently; the flag is atomic and emission is serialized
// so interleaved messages never shear mid-line.
std::atomic<bool> logQuiet{false};
std::mutex logMutex;

} // namespace

void
setLogQuiet(bool quiet)
{
    logQuiet.store(quiet, std::memory_order_relaxed);
}

namespace detail {

void
emitLog(const char *level, const std::string &msg)
{
    bool severe = (level[0] == 'p' || level[0] == 'f');
    if (logQuiet.load(std::memory_order_relaxed) && !severe)
        return;
    std::lock_guard<std::mutex> lock(logMutex);
    std::fprintf(stderr, "[%s] %s\n", level, msg.c_str());
}

} // namespace detail
} // namespace lwsp
