#include "logging.hh"

#include <cstdio>

namespace lwsp {

namespace {
bool logQuiet = false;
} // namespace

void
setLogQuiet(bool quiet)
{
    logQuiet = quiet;
}

namespace detail {

void
emitLog(const char *level, const std::string &msg)
{
    bool severe = (level[0] == 'p' || level[0] == 'f');
    if (logQuiet && !severe)
        return;
    std::fprintf(stderr, "[%s] %s\n", level, msg.c_str());
}

} // namespace detail
} // namespace lwsp
