/**
 * @file
 * Small integer/bit-manipulation helpers used across the memory system.
 */

#ifndef LWSP_COMMON_INTMATH_HH
#define LWSP_COMMON_INTMATH_HH

#include <cstdint>

#include "logging.hh"

namespace lwsp {

/** @return true iff @p n is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** @return floor(log2(n)); panics on 0. */
inline unsigned
floorLog2(std::uint64_t n)
{
    LWSP_ASSERT(n != 0, "floorLog2(0)");
    unsigned l = 0;
    while (n >>= 1)
        ++l;
    return l;
}

/** @return ceil(log2(n)); panics on 0. */
inline unsigned
ceilLog2(std::uint64_t n)
{
    LWSP_ASSERT(n != 0, "ceilLog2(0)");
    return floorLog2(n) + (isPowerOf2(n) ? 0 : 1);
}

/** @return ceil(a / b) for positive integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** @return @p a rounded down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignDown(std::uint64_t a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** @return @p a rounded up to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

} // namespace lwsp

#endif // LWSP_COMMON_INTMATH_HH
