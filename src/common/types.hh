/**
 * @file
 * Fundamental scalar types shared by every LightWSP module.
 *
 * The simulator is cycle-stepped at the core clock (2 GHz by default), so
 * all latencies are expressed in cycles. Helpers are provided to convert
 * nanosecond figures quoted by the paper (PM latency, persist-path latency,
 * CAM search time) into cycles for a given clock.
 */

#ifndef LWSP_COMMON_TYPES_HH
#define LWSP_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace lwsp {

/** Simulation time in core clock cycles. */
using Tick = std::uint64_t;

/** A physical memory address (byte granular). */
using Addr = std::uint64_t;

/** Monotonically increasing recoverable-region (epoch) identifier. */
using RegionId = std::uint64_t;

/** Hardware thread / core identifier. */
using CoreId = std::uint32_t;

/** Software thread identifier (may exceed core count when oversubscribed). */
using ThreadId = std::uint32_t;

/** Memory controller identifier. */
using McId = std::uint32_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Sentinel for an invalid region. */
constexpr RegionId invalidRegion = std::numeric_limits<RegionId>::max();

/** Sentinel address. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Persist-path and WPQ transfer granularity (bytes), per the paper. */
constexpr unsigned persistGranuleBytes = 8;

/** Cacheline size used throughout (bytes). */
constexpr unsigned cachelineBytes = 64;

/**
 * Convert a nanosecond latency into core cycles, rounding up.
 *
 * @param ns latency in nanoseconds
 * @param ghz core clock in GHz
 * @return the smallest cycle count covering @p ns
 */
constexpr Tick
nsToCycles(double ns, double ghz = 2.0)
{
    double cycles = ns * ghz;
    Tick whole = static_cast<Tick>(cycles);
    return (static_cast<double>(whole) < cycles) ? whole + 1 : whole;
}

/**
 * Cycles between successive 8B granules for a given persist-path bandwidth.
 *
 * @param gbps bandwidth in GB/s
 * @param ghz core clock in GHz
 * @return inter-granule issue interval in cycles (min 1)
 */
constexpr Tick
bandwidthToCyclesPerGranule(double gbps, double ghz = 2.0,
                            unsigned granule = persistGranuleBytes)
{
    // granule bytes / (gbps bytes per ns) = ns per granule.
    double ns = static_cast<double>(granule) / gbps;
    Tick c = nsToCycles(ns, ghz);
    return c == 0 ? 1 : c;
}

} // namespace lwsp

#endif // LWSP_COMMON_TYPES_HH
