/**
 * @file
 * A size-checked dynamic bitset.
 *
 * Replaces the raw `uint64_t` + `1ull << i` masks that used to track
 * per-MC broadcast delivery and ACK coverage: shifting by >= 64 is
 * undefined behaviour, and the old `size >= 64 ? ~0ull` escape hatch
 * silently collapsed any fabric wider than 64 endpoints onto the same
 * 64 bits (delivery to MC 64+k aliased MC k). Every accessor here
 * bounds-checks its index with LWSP_ASSERT, so an out-of-range endpoint
 * id is a loud simulator panic instead of UB.
 */

#ifndef LWSP_COMMON_BITSET_HH
#define LWSP_COMMON_BITSET_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace lwsp {

class DynBitset
{
  public:
    DynBitset() = default;

    explicit DynBitset(std::size_t size)
        : size_(size), words_((size + 63) / 64, 0)
    {
    }

    std::size_t size() const { return size_; }

    /** Re-size to @p size bits, clearing all bits. */
    void
    reset(std::size_t size)
    {
        size_ = size;
        words_.assign((size + 63) / 64, 0);
    }

    void
    set(std::size_t i)
    {
        LWSP_ASSERT(i < size_, "DynBitset::set out of range");
        words_[i / 64] |= (std::uint64_t{1} << (i % 64));
    }

    void
    clear(std::size_t i)
    {
        LWSP_ASSERT(i < size_, "DynBitset::clear out of range");
        words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
    }

    bool
    test(std::size_t i) const
    {
        LWSP_ASSERT(i < size_, "DynBitset::test out of range");
        return (words_[i / 64] >> (i % 64)) & 1;
    }

    /** Set every bit in [0, size). */
    void
    setAll()
    {
        if (size_ == 0)
            return;
        for (auto &w : words_)
            w = ~std::uint64_t{0};
        maskTail();
    }

    bool
    any() const
    {
        for (auto w : words_) {
            if (w != 0)
                return true;
        }
        return false;
    }

    bool none() const { return !any(); }

    std::size_t
    count() const
    {
        std::size_t n = 0;
        for (auto w : words_) {
            while (w != 0) {
                w &= (w - 1);
                ++n;
            }
        }
        return n;
    }

    /** True when every bit set in @p other is also set here. */
    bool
    containsAll(const DynBitset &other) const
    {
        LWSP_ASSERT(other.size_ == size_, "DynBitset size mismatch");
        for (std::size_t w = 0; w < words_.size(); ++w) {
            if ((other.words_[w] & ~words_[w]) != 0)
                return false;
        }
        return true;
    }

    /** True when some bit is set in both. */
    bool
    intersects(const DynBitset &other) const
    {
        LWSP_ASSERT(other.size_ == size_, "DynBitset size mismatch");
        for (std::size_t w = 0; w < words_.size(); ++w) {
            if ((other.words_[w] & words_[w]) != 0)
                return true;
        }
        return false;
    }

    bool
    operator==(const DynBitset &other) const
    {
        return size_ == other.size_ && words_ == other.words_;
    }

    bool operator!=(const DynBitset &other) const { return !(*this == other); }

  private:
    /** Clear the unused high bits of the last word after setAll(). */
    void
    maskTail()
    {
        std::size_t used = size_ % 64;
        if (used != 0)
            words_.back() &= (std::uint64_t{1} << used) - 1;
    }

    std::size_t size_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace lwsp

#endif // LWSP_COMMON_BITSET_HH
