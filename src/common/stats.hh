/**
 * @file
 * A small statistics package modelled on gem5's: named scalar counters,
 * averages and distributions owned by a per-component StatGroup, plus a
 * registry that can dump everything in a stable text format.
 */

#ifndef LWSP_COMMON_STATS_HH
#define LWSP_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "logging.hh"

namespace lwsp {
namespace stats {

/** A named, monotonically adjustable scalar counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    double value_ = 0;
};

/** Running mean/min/max over sampled values. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void
    reset()
    {
        sum_ = min_ = max_ = 0;
        count_ = 0;
    }

  private:
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets. */
class Distribution
{
  public:
    Distribution() : Distribution(0, 1, 1) {}

    Distribution(double lo, double hi, unsigned buckets)
        : lo_(lo), hi_(hi), counts_(buckets, 0)
    {
        LWSP_ASSERT(hi > lo && buckets > 0, "bad Distribution bounds");
    }

    void
    sample(double v)
    {
        avg_.sample(v);
        if (v < lo_) {
            ++underflow_;
        } else if (v >= hi_) {
            ++overflow_;
        } else {
            auto idx = static_cast<std::size_t>(
                (v - lo_) / (hi_ - lo_) * counts_.size());
            if (idx >= counts_.size())
                idx = counts_.size() - 1;
            ++counts_[idx];
        }
    }

    const Average &summary() const { return avg_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }
    double bucketLow(std::size_t i) const
    {
        return lo_ + (hi_ - lo_) * static_cast<double>(i) / counts_.size();
    }

    void
    reset()
    {
        avg_.reset();
        underflow_ = overflow_ = 0;
        for (auto &c : counts_)
            c = 0;
    }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    Average avg_;
};

/**
 * Exact percentile accumulator: stores every sample and sorts lazily at
 * query time. Intended for request-latency style populations (thousands
 * to low millions of samples) where tail quantiles must be exact, not
 * sketch approximations — p999 over a 10k-request tape is 10 samples,
 * well inside sketch error bars.
 */
class Percentiles
{
  public:
    void
    sample(double v)
    {
        samples_.push_back(v);
        sorted_ = false;
    }

    /**
     * Exact quantile by the nearest-rank method: the smallest sample
     * such that at least ceil(q * count) samples are <= it. q in [0,1];
     * returns 0 for an empty population.
     */
    double percentile(double q) const;

    double p50() const { return percentile(0.50); }
    double p90() const { return percentile(0.90); }
    double p99() const { return percentile(0.99); }
    double p999() const { return percentile(0.999); }
    double max() const;
    double mean() const;
    std::uint64_t count() const { return samples_.size(); }

    void
    reset()
    {
        samples_.clear();
        sorted_ = false;
    }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

/**
 * Owner of a component's named statistics. Components hold their stats as
 * plain members and register them here for dumping.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void
    addScalar(const std::string &stat_name, const Scalar *s,
              const std::string &desc = "")
    {
        scalars_.emplace(stat_name, Entry<Scalar>{s, desc});
    }

    void
    addAverage(const std::string &stat_name, const Average *a,
               const std::string &desc = "")
    {
        averages_.emplace(stat_name, Entry<Average>{a, desc});
    }

    void
    addDistribution(const std::string &stat_name, const Distribution *d,
                    const std::string &desc = "")
    {
        dists_.emplace(stat_name, Entry<Distribution>{d, desc});
    }

    void
    addPercentiles(const std::string &stat_name, const Percentiles *p,
                   const std::string &desc = "")
    {
        percs_.emplace(stat_name, Entry<Percentiles>{p, desc});
    }

    /**
     * Register a callback-backed stat: the value is computed at dump
     * time. This is how components with plain integer counters (the hot
     * paths) join the registry without changing their counting code.
     */
    void
    addFunc(const std::string &stat_name, std::function<double()> fn,
            const std::string &desc = "")
    {
        funcs_.emplace(stat_name, FuncEntry{std::move(fn), desc});
    }

    /** Dump every registered stat in "group.stat value # desc" format. */
    void dump(std::ostream &os) const;

    /** Dump as one JSON object: {"stat": value, "dist": {...}, ...}. */
    void dumpJson(std::ostream &os) const;

    const std::string &name() const { return name_; }

    /** Look up a registered scalar's value (for tests); panics if missing. */
    double scalarValue(const std::string &stat_name) const;

    /** Evaluate a registered func stat (for tests); panics if missing. */
    double funcValue(const std::string &stat_name) const;

  private:
    template <typename T>
    struct Entry
    {
        const T *stat;
        std::string desc;
    };

    struct FuncEntry
    {
        std::function<double()> fn;
        std::string desc;
    };

    std::string name_;
    std::map<std::string, Entry<Scalar>> scalars_;
    std::map<std::string, Entry<Average>> averages_;
    std::map<std::string, Entry<Distribution>> dists_;
    std::map<std::string, Entry<Percentiles>> percs_;
    std::map<std::string, FuncEntry> funcs_;
};

/**
 * Ordered collection of StatGroups — one per component of a system.
 * Groups are created on demand and dumped in creation order, in the
 * established text format or as a single JSON object keyed by group.
 */
class Registry
{
  public:
    /** Get or create the group named @p name (stable reference). */
    StatGroup &group(const std::string &name);

    /** "group.stat value" lines for every group, creation order. */
    void dump(std::ostream &os) const;

    /** {"group": {...}, ...} — the JSON run-report stats section. */
    void dumpJson(std::ostream &os) const;

    std::size_t numGroups() const { return groups_.size(); }

  private:
    std::vector<std::unique_ptr<StatGroup>> groups_;
    std::map<std::string, std::size_t> index_;
};

/** Geometric mean of positive values; panics on empty input. */
double geomean(const std::vector<double> &values);

} // namespace stats
} // namespace lwsp

#endif // LWSP_COMMON_STATS_HH
