/**
 * @file
 * Error/status reporting in the spirit of gem5's base/logging.hh.
 *
 * panic()  — a simulator bug: something that must never happen regardless of
 *            user input. Aborts (throws PanicError so tests can catch it).
 * fatal()  — the user's fault (bad configuration, invalid arguments). Throws
 *            FatalError.
 * warn()   — suspicious but survivable condition.
 * inform() — plain status output.
 */

#ifndef LWSP_COMMON_LOGGING_HH
#define LWSP_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace lwsp {

/** Thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the simulation cannot continue due to user error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

void emitLog(const char *level, const std::string &msg);

template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Report an internal simulator bug and abort via exception. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::formatMessage(std::forward<Args>(args)...);
    detail::emitLog("panic", msg);
    throw PanicError(msg);
}

/** Report an unrecoverable user error and abort via exception. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::formatMessage(std::forward<Args>(args)...);
    detail::emitLog("fatal", msg);
    throw FatalError(msg);
}

/** Report a survivable but suspicious condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLog("warn",
                    detail::formatMessage(std::forward<Args>(args)...));
}

/** Report plain status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLog("info",
                    detail::formatMessage(std::forward<Args>(args)...));
}

/** Silence or re-enable warn()/inform() output (panic/fatal always print). */
void setLogQuiet(bool quiet);

/** panic() unless @p cond holds. */
#define LWSP_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::lwsp::panic("assertion failed: ", #cond, " ", __FILE__, ":",  \
                          __LINE__, " ", ##__VA_ARGS__);                    \
        }                                                                   \
    } while (0)

} // namespace lwsp

#endif // LWSP_COMMON_LOGGING_HH
