#include "liveness.hh"

#include "ir/cfg.hh"

namespace lwsp {
namespace compiler {

using namespace ir;

ModuleLiveness::ModuleLiveness(const Module &m)
    : module_(m), liveIn_(m.numFunctions()), liveOut_(m.numFunctions()),
      funcUse_(m.numFunctions(), 0), funcDef_(m.numFunctions(), 0),
      funcLiveOut_(m.numFunctions(), 0)
{
    for (FuncId f = 0; f < m.numFunctions(); ++f) {
        liveIn_[f].assign(m.function(f).numBlocks(), 0);
        liveOut_[f].assign(m.function(f).numBlocks(), 0);
    }
    recompute();
}

RegMask
ModuleLiveness::instUse(FuncId f, const Instruction &inst) const
{
    (void)f;
    switch (inst.op) {
      case Opcode::Movi:
        return 0;
      case Opcode::Mov:
      case Opcode::AddI:
      case Opcode::MulI:
      case Opcode::Load:
      case Opcode::LockAcq:
      case Opcode::LockRel:
      case Opcode::CkptStore:
        return regBit(inst.rs1);
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Store:
      case Opcode::AtomicAdd:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return regBit(inst.rs1) | regBit(inst.rs2);
      case Opcode::Fma:
        return regBit(inst.rs1) | regBit(inst.rs2) | regBit(inst.rd);
      case Opcode::Call:
        return funcUse_.at(inst.callee) | regBit(spReg);
      case Opcode::Ret:
        return funcLiveOut_.at(f) | regBit(spReg);
      case Opcode::Jmp:
      case Opcode::Halt:
      case Opcode::Fence:
      case Opcode::Boundary:
      case Opcode::Nop:
        return 0;
    }
    return 0;
}

RegMask
ModuleLiveness::instDef(const Instruction &inst) const
{
    if (writesReg(inst.op))
        return regBit(inst.rd);
    switch (inst.op) {
      case Opcode::Call:
        return funcDef_.at(inst.callee) | regBit(spReg);
      case Opcode::Ret:
        return regBit(spReg);
      default:
        return 0;
    }
}

void
ModuleLiveness::recompute()
{
    bool module_changed = true;
    while (module_changed) {
        module_changed = false;

        for (FuncId f = 0; f < module_.numFunctions(); ++f) {
            const Function &fn = module_.function(f);
            Cfg cfg(fn);

            // Intra-function backward fixpoint using current summaries.
            bool changed = true;
            while (changed) {
                changed = false;
                const auto &rpo = cfg.reversePostOrder();
                for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
                    BlockId b = *it;
                    RegMask out = 0;
                    for (BlockId s : cfg.successors(b))
                        out |= liveIn_[f][s];
                    RegMask in = out;
                    const auto &insts = fn.block(b).insts();
                    for (auto ri = insts.rbegin(); ri != insts.rend();
                         ++ri) {
                        in &= ~instDef(*ri);
                        in |= instUse(f, *ri);
                    }
                    if (out != liveOut_[f][b] || in != liveIn_[f][b]) {
                        liveOut_[f][b] = out;
                        liveIn_[f][b] = in;
                        changed = true;
                        module_changed = true;
                    }
                }
            }

            // Update summaries from the fresh intra-function results.
            RegMask new_use = funcUse_[f] | liveIn_[f][0];
            RegMask new_def = funcDef_[f];
            for (BlockId b = 0; b < fn.numBlocks(); ++b) {
                for (const auto &inst : fn.block(b).insts())
                    new_def |= instDef(inst);
            }
            if (new_use != funcUse_[f] || new_def != funcDef_[f]) {
                funcUse_[f] = new_use;
                funcDef_[f] = new_def;
                module_changed = true;
            }

            // Accumulate callee live-out contributions at each callsite.
            for (BlockId b = 0; b < fn.numBlocks(); ++b) {
                const auto &insts = fn.block(b).insts();
                for (std::size_t i = 0; i < insts.size(); ++i) {
                    if (insts[i].op != Opcode::Call)
                        continue;
                    RegMask after = liveAfter(f, b, i);
                    FuncId callee = insts[i].callee;
                    RegMask merged = funcLiveOut_[callee] | after;
                    if (merged != funcLiveOut_[callee]) {
                        funcLiveOut_[callee] = merged;
                        module_changed = true;
                    }
                }
            }
        }
    }
}

RegMask
ModuleLiveness::liveAfter(FuncId f, BlockId b, std::size_t inst_index) const
{
    const Function &fn = module_.function(f);
    const auto &insts = fn.block(b).insts();
    LWSP_ASSERT(inst_index < insts.size(), "liveAfter: bad index");
    RegMask live = liveOut_[f][b];
    for (std::size_t i = insts.size(); i-- > inst_index + 1;) {
        live &= ~instDef(insts[i]);
        live |= instUse(f, insts[i]);
    }
    return live;
}

RegMask
ModuleLiveness::liveBefore(FuncId f, BlockId b,
                           std::size_t inst_index) const
{
    const Function &fn = module_.function(f);
    const auto &insts = fn.block(b).insts();
    LWSP_ASSERT(inst_index < insts.size(), "liveBefore: bad index");
    RegMask live = liveAfter(f, b, inst_index);
    live &= ~instDef(insts[inst_index]);
    live |= instUse(f, insts[inst_index]);
    return live;
}

} // namespace compiler
} // namespace lwsp
