/**
 * @file
 * Interprocedural constant propagation over LightIR registers.
 *
 * Backs checkpoint pruning (§IV-A): a register whose value is a known
 * compile-time constant at a boundary needs no checkpoint store — the
 * recovery runtime reconstructs it from a Const recipe attached to the
 * boundary site. Crucially, the recipe must be valid at *every* boundary
 * where the register may be live at recovery time, which is exactly what
 * a sound ("all paths agree") constant analysis guarantees: if r == v at
 * one boundary and r is not redefined before the next, it is still == v
 * there, and the analysis will report it.
 *
 * The lattice per register is Bottom (unvisited) < Const(v) < NonConst.
 * Movi introduces constants; Mov copies; AddI/MulI fold; every other
 * definition (including call-clobbered registers and the stack pointer
 * around calls) goes to NonConst. Callee entry states are the meet over
 * all callsites.
 */

#ifndef LWSP_COMPILER_CONSTPROP_HH
#define LWSP_COMPILER_CONSTPROP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "compiler/liveness.hh"
#include "ir/program.hh"

namespace lwsp {
namespace compiler {

class ConstProp
{
  public:
    struct Value
    {
        enum class Kind : std::uint8_t { Bottom, Const, NonConst };
        Kind kind = Kind::Bottom;
        std::int64_t constant = 0;

        bool isConst() const { return kind == Kind::Const; }

        static Value
        makeConst(std::int64_t v)
        {
            return {Kind::Const, v};
        }
        static Value nonConst() { return {Kind::NonConst, 0}; }

        /** Lattice meet. */
        static Value
        meet(const Value &a, const Value &b)
        {
            if (a.kind == Kind::Bottom)
                return b;
            if (b.kind == Kind::Bottom)
                return a;
            if (a.kind == Kind::Const && b.kind == Kind::Const &&
                a.constant == b.constant) {
                return a;
            }
            return nonConst();
        }

        bool
        operator==(const Value &o) const
        {
            return kind == o.kind &&
                   (kind != Kind::Const || constant == o.constant);
        }
    };

    using State = std::array<Value, ir::numGprs>;

    /**
     * Run the whole-module fixpoint. @p live supplies funcDef summaries
     * for call clobbering.
     */
    ConstProp(const ir::Module &m, const ModuleLiveness &live);

    /** Register states at the entry of block @p b of function @p f. */
    const State &blockIn(ir::FuncId f, ir::BlockId b) const
    {
        return in_.at(f).at(b);
    }

    /**
     * Apply one instruction's transfer to @p state (public so checkpoint
     * insertion can walk a block maintaining the same abstraction).
     */
    void transfer(const ir::Instruction &inst, State &state) const;

    /** State just before instruction @p idx of block (f, b). */
    State stateBefore(ir::FuncId f, ir::BlockId b, std::size_t idx) const;

  private:
    const ir::Module &module_;
    const ModuleLiveness &live_;
    std::vector<std::vector<State>> in_;
    std::vector<State> funcEntry_;
};

} // namespace compiler
} // namespace lwsp

#endif // LWSP_COMPILER_CONSTPROP_HH
