#include "compiler.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "analysis/wsp_checker.hh"
#include "compiler/passes.hh"
#include "ir/verifier.hh"

namespace lwsp {
namespace compiler {

using namespace ir;

namespace {

/**
 * The verify-each hook (CompilerConfig::verifyEach) can also be forced
 * from the environment so existing drivers (benches, the fuzzer, CI)
 * audit every compile without a recompile: LWSP_VERIFY_EACH=1.
 */
bool
envVerifyEach()
{
    static const bool on = [] {
        const char *v = std::getenv("LWSP_VERIFY_EACH");
        return v != nullptr && *v != '\0' && std::string(v) != "0";
    }();
    return on;
}

/**
 * Which functions are entered through a Call (and therefore start with
 * the caller's return-address push already in the open region)? The
 * entry function is reached by reset, not by Call, so its seed is 0
 * unless something also calls it.
 */
std::vector<unsigned>
entrySeeds(const Module &m)
{
    std::vector<unsigned> seed(m.numFunctions(), 0);
    for (FuncId f = 0; f < m.numFunctions(); ++f) {
        const Function &fn = m.function(f);
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            for (const auto &inst : fn.block(b).insts()) {
                if (inst.op == Opcode::Call &&
                    inst.callee < m.numFunctions())
                    seed[inst.callee] = 1;
            }
        }
    }
    return seed;
}

/** Run the static checker after @p pass and die naming it on failure. */
void
verifyStage(const Module &m, const CompilerConfig &cfg,
            const analysis::CheckOptions &opt,
            const std::vector<BoundarySite> *sites, const char *pass)
{
    analysis::CheckReport rep = analysis::checkModule(m, cfg, opt, sites);
    if (!rep.ok()) {
        panic("verify-each: WSP invariants violated after pass '", pass,
              "':\n", rep.describe());
    }
}

} // namespace

CompiledProgram
LightWspCompiler::compile(std::unique_ptr<Module> input) const
{
    LWSP_ASSERT(input, "compile(nullptr)");
    verifyModuleOrDie(*input);

    const bool veach = cfg_.verifyEach || envVerifyEach();
    analysis::CheckOptions vopt;  // staged: obligations arm as passes run
    vopt.checkStoreBound = false;
    vopt.checkCoverage = false;
    vopt.sitesAssigned = false;
    vopt.postSplitShape = false;

    CompiledProgram out;
    out.stats.inputInsts = input->instCount();
    out.module = std::move(input);
    Module &m = *out.module;

    for (FuncId f = 0; f < m.numFunctions(); ++f)
        out.stats.unrolledLoops += unrollLoops(m.function(f), cfg_);
    if (veach)
        verifyStage(m, cfg_, vopt, nullptr, "unroll-loops");

    for (FuncId f = 0; f < m.numFunctions(); ++f)
        insertInitialBoundaries(m.function(f));
    if (veach)
        verifyStage(m, cfg_, vopt, nullptr, "insert-initial-boundaries");

    // The store bound is a *path* property: a callee is entered with the
    // caller's return-address push already charged to the open region
    // (the call-before boundary closes the caller's region, then the
    // Call pushes), so every function reached by Call counts from 1,
    // not 0. Unrolling and boundary insertion never change the call
    // graph, so the seeds are stable from here on.
    const std::vector<unsigned> seeds = entrySeeds(m);

    // First enforce the cap on the raw program, then break the
    // boundary/checkpoint circular dependence: each iteration re-derives
    // the checkpoint stores for the current boundaries and, if they push
    // a region over the threshold, splits *with the checkpoint stores in
    // place* (they count as persist entries) before re-deriving.
    for (FuncId f = 0; f < m.numFunctions(); ++f)
        enforceStoreThreshold(m.function(f), cfg_, seeds[f]);
    for (FuncId f = 0; f < m.numFunctions(); ++f)
        combineRegions(m.function(f), cfg_, seeds[f]);
    if (veach) {
        vopt.checkStoreBound = true;  // cap enforced from here on
        verifyStage(m, cfg_, vopt, nullptr, "enforce-store-threshold");
    }

    // The loop must exit on a state whose checkpoints were derived for
    // the *final* boundary placement: a boundary inserted after the last
    // insertCheckpoints() has no stores for the registers dirtied on its
    // incoming paths, and a crash that persists its region but not the
    // next recovers one region stale (torn checkpoint). Hence the exit
    // paths below break after insertion, never after enforcement.
    unsigned prev_worst = ~0u;
    for (unsigned iter = 0; iter < cfg_.maxFixpointIterations; ++iter) {
        ++out.stats.fixpointIterations;
        for (FuncId f = 0; f < m.numFunctions(); ++f)
            stripCheckpointStores(m.function(f));

        if (cfg_.insertCheckpointStores) {
            out.stats.prunedCheckpoints = 0;
            out.stats.checkpointStores = insertCheckpoints(
                m, cfg_.pruneCheckpoints, &out.stats.prunedCheckpoints);
        }

        unsigned worst = 0;
        for (FuncId f = 0; f < m.numFunctions(); ++f) {
            worst = std::max(
                worst, computeStoreCounts(m.function(f), seeds[f]).worst);
        }
        const unsigned budget =
            cfg_.storeThreshold > 1 ? cfg_.storeThreshold - 1 : 1;
        if (worst <= budget)
            break;

        // A region can be irreducibly over-threshold: splitting ahead of
        // a loop header's checkpoint run just moves the run to the new
        // boundary on the next derivation. Once splitting stops helping
        // (or the budget runs out), keep the sound checkpoint placement
        // and let the runtime WPQ-overflow fallback absorb the residue.
        if (worst >= prev_worst ||
            iter + 1 == cfg_.maxFixpointIterations) {
            out.stats.thresholdConverged = false;
            warn("region threshold fixpoint did not converge (worst ",
                 worst, " >= threshold ", cfg_.storeThreshold,
                 "); runtime WPQ-overflow fallback will cover the "
                 "residue");
            break;
        }
        prev_worst = worst;

        for (FuncId f = 0; f < m.numFunctions(); ++f)
            enforceStoreThreshold(m.function(f), cfg_, seeds[f]);
    }
    if (veach) {
        vopt.checkCoverage = cfg_.insertCheckpointStores;
        vopt.waiveStoreBound = !out.stats.thresholdConverged;
        verifyStage(m, cfg_, vopt, nullptr, "checkpoint-fixpoint");
    }

    for (FuncId f = 0; f < m.numFunctions(); ++f)
        splitBlocksAtBoundaries(m.function(f));
    if (veach) {
        vopt.postSplitShape = true;
        verifyStage(m, cfg_, vopt, nullptr, "split-blocks-at-boundaries");
    }

    std::map<std::pair<FuncId, BlockId>, std::vector<CkptRecipe>> recipes;
    if (cfg_.insertCheckpointStores)
        recipes = computeConstRecipes(m);

    out.sites = assignBoundarySites(m, recipes);
    out.stats.boundaries = out.sites.size();
    out.stats.outputInsts = m.instCount();

    verifyModuleOrDie(m);
    if (veach) {
        analysis::CheckReport rep =
            analysis::checkCompiledProgram(out, cfg_);
        if (!rep.ok()) {
            panic("verify-each: WSP invariants violated after pass "
                  "'assign-boundary-sites':\n", rep.describe());
        }
    }
    return out;
}

CompiledProgram
makeUncompiled(std::unique_ptr<Module> m)
{
    LWSP_ASSERT(m, "makeUncompiled(nullptr)");
    verifyModuleOrDie(*m);
    CompiledProgram out;
    out.stats.inputInsts = m->instCount();
    out.stats.outputInsts = out.stats.inputInsts;
    out.module = std::move(m);
    return out;
}

} // namespace compiler
} // namespace lwsp
