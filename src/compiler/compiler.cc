#include "compiler.hh"

#include <algorithm>

#include "compiler/passes.hh"
#include "ir/verifier.hh"

namespace lwsp {
namespace compiler {

using namespace ir;

CompiledProgram
LightWspCompiler::compile(std::unique_ptr<Module> input) const
{
    LWSP_ASSERT(input, "compile(nullptr)");
    verifyModuleOrDie(*input);

    CompiledProgram out;
    out.stats.inputInsts = input->instCount();
    out.module = std::move(input);
    Module &m = *out.module;

    for (FuncId f = 0; f < m.numFunctions(); ++f)
        out.stats.unrolledLoops += unrollLoops(m.function(f), cfg_);

    for (FuncId f = 0; f < m.numFunctions(); ++f)
        insertInitialBoundaries(m.function(f));

    // First enforce the cap on the raw program, then break the
    // boundary/checkpoint circular dependence: each iteration re-derives
    // the checkpoint stores for the current boundaries and, if they push
    // a region over the threshold, splits *with the checkpoint stores in
    // place* (they count as persist entries) before re-deriving.
    for (FuncId f = 0; f < m.numFunctions(); ++f)
        enforceStoreThreshold(m.function(f), cfg_);
    for (FuncId f = 0; f < m.numFunctions(); ++f)
        combineRegions(m.function(f), cfg_);

    // The loop must exit on a state whose checkpoints were derived for
    // the *final* boundary placement: a boundary inserted after the last
    // insertCheckpoints() has no stores for the registers dirtied on its
    // incoming paths, and a crash that persists its region but not the
    // next recovers one region stale (torn checkpoint). Hence the exit
    // paths below break after insertion, never after enforcement.
    unsigned prev_worst = ~0u;
    for (unsigned iter = 0; iter < cfg_.maxFixpointIterations; ++iter) {
        ++out.stats.fixpointIterations;
        for (FuncId f = 0; f < m.numFunctions(); ++f)
            stripCheckpointStores(m.function(f));

        if (cfg_.insertCheckpointStores) {
            out.stats.prunedCheckpoints = 0;
            out.stats.checkpointStores = insertCheckpoints(
                m, cfg_.pruneCheckpoints, &out.stats.prunedCheckpoints);
        }

        unsigned worst = 0;
        for (FuncId f = 0; f < m.numFunctions(); ++f)
            worst = std::max(worst,
                             computeStoreCounts(m.function(f)).worst);
        const unsigned budget =
            cfg_.storeThreshold > 1 ? cfg_.storeThreshold - 1 : 1;
        if (worst <= budget)
            break;

        // A region can be irreducibly over-threshold: splitting ahead of
        // a loop header's checkpoint run just moves the run to the new
        // boundary on the next derivation. Once splitting stops helping
        // (or the budget runs out), keep the sound checkpoint placement
        // and let the runtime WPQ-overflow fallback absorb the residue.
        if (worst >= prev_worst ||
            iter + 1 == cfg_.maxFixpointIterations) {
            warn("region threshold fixpoint did not converge (worst ",
                 worst, " >= threshold ", cfg_.storeThreshold,
                 "); runtime WPQ-overflow fallback will cover the "
                 "residue");
            break;
        }
        prev_worst = worst;

        for (FuncId f = 0; f < m.numFunctions(); ++f)
            enforceStoreThreshold(m.function(f), cfg_);
    }

    for (FuncId f = 0; f < m.numFunctions(); ++f)
        splitBlocksAtBoundaries(m.function(f));

    std::map<std::pair<FuncId, BlockId>, std::vector<CkptRecipe>> recipes;
    if (cfg_.insertCheckpointStores)
        recipes = computeConstRecipes(m);

    out.sites = assignBoundarySites(m, recipes);
    out.stats.boundaries = out.sites.size();
    out.stats.outputInsts = m.instCount();

    verifyModuleOrDie(m);
    return out;
}

CompiledProgram
makeUncompiled(std::unique_ptr<Module> m)
{
    LWSP_ASSERT(m, "makeUncompiled(nullptr)");
    verifyModuleOrDie(*m);
    CompiledProgram out;
    out.stats.inputInsts = m->instCount();
    out.stats.outputInsts = out.stats.inputInsts;
    out.module = std::move(m);
    return out;
}

} // namespace compiler
} // namespace lwsp
