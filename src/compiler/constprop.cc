#include "constprop.hh"

#include "ir/cfg.hh"

namespace lwsp {
namespace compiler {

using namespace ir;

void
ConstProp::transfer(const Instruction &inst, State &state) const
{
    auto kill = [&](Reg r) { state[r] = Value::nonConst(); };

    switch (inst.op) {
      case Opcode::Movi:
        state[inst.rd] = Value::makeConst(inst.imm);
        break;
      case Opcode::Mov:
        state[inst.rd] = state[inst.rs1];
        break;
      case Opcode::AddI:
        state[inst.rd] =
            state[inst.rs1].isConst()
                ? Value::makeConst(state[inst.rs1].constant + inst.imm)
                : Value::nonConst();
        break;
      case Opcode::MulI:
        state[inst.rd] =
            state[inst.rs1].isConst()
                ? Value::makeConst(state[inst.rs1].constant * inst.imm)
                : Value::nonConst();
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Mul:
      case Opcode::Div: {
        const Value &a = state[inst.rs1];
        const Value &b = state[inst.rs2];
        if (a.isConst() && b.isConst()) {
            auto ua = static_cast<std::uint64_t>(a.constant);
            auto ub = static_cast<std::uint64_t>(b.constant);
            std::uint64_t v = 0;
            switch (inst.op) {
              case Opcode::Add: v = ua + ub; break;
              case Opcode::Sub: v = ua - ub; break;
              case Opcode::And: v = ua & ub; break;
              case Opcode::Or:  v = ua | ub; break;
              case Opcode::Xor: v = ua ^ ub; break;
              case Opcode::Shl: v = ua << (ub & 63); break;
              case Opcode::Shr: v = ua >> (ub & 63); break;
              case Opcode::Mul: v = ua * ub; break;
              case Opcode::Div: v = ub ? ua / ub : 0; break;
              default: break;
            }
            state[inst.rd] = Value::makeConst(static_cast<std::int64_t>(v));
        } else {
            kill(inst.rd);
        }
        break;
      }
      case Opcode::Fma:
      case Opcode::Load:
        kill(inst.rd);
        break;
      case Opcode::Call:
        for (Reg r = 0; r < numGprs; ++r) {
            if (live_.funcDef(inst.callee) & regBit(r))
                kill(r);
        }
        kill(spReg);
        break;
      case Opcode::Ret:
        kill(spReg);
        break;
      default:
        break;  // stores, branches, sync ops, boundaries: no reg defs
    }
}

ConstProp::ConstProp(const Module &m, const ModuleLiveness &live)
    : module_(m), live_(live), in_(m.numFunctions()),
      funcEntry_(m.numFunctions())
{
    for (FuncId f = 0; f < m.numFunctions(); ++f)
        in_[f].assign(m.function(f).numBlocks(), State{});

    // The thread-spawn convention makes r0 (tid) and r15 (sp) run-time
    // values; everything else starts as constant 0 — but to stay robust
    // against harness-injected register state we treat the whole entry as
    // NonConst.
    State entry_seed;
    for (auto &v : entry_seed)
        v = Value::nonConst();
    funcEntry_[0] = entry_seed;

    bool changed = true;
    while (changed) {
        changed = false;
        for (FuncId f = 0; f < m.numFunctions(); ++f) {
            const Function &fn = m.function(f);
            Cfg cfg(fn);
            for (BlockId b : cfg.reversePostOrder()) {
                State in;
                if (b == 0) {
                    in = funcEntry_[f];
                } else {
                    for (BlockId p : cfg.predecessors(b)) {
                        if (!cfg.reachable(p))
                            continue;
                        // Recompute the predecessor's out state.
                        State pout = in_[f][p];
                        for (const auto &inst : fn.block(p).insts()) {
                            // Calls transfer into the callee; the state
                            // after the call is handled by transfer().
                            transfer(inst, pout);
                        }
                        for (Reg r = 0; r < numGprs; ++r)
                            in[r] = Value::meet(in[r], pout[r]);
                    }
                }
                if (!(in == in_[f][b])) {
                    in_[f][b] = in;
                    changed = true;
                }

                // Propagate callsite states into callee entries.
                State walk = in_[f][b];
                for (const auto &inst : fn.block(b).insts()) {
                    if (inst.op == Opcode::Call) {
                        State callee_in = walk;
                        callee_in[spReg] = Value::nonConst();
                        State &tgt = funcEntry_[inst.callee];
                        State merged;
                        for (Reg r = 0; r < numGprs; ++r)
                            merged[r] =
                                Value::meet(tgt[r], callee_in[r]);
                        if (!(merged == tgt)) {
                            tgt = merged;
                            changed = true;
                        }
                    }
                    transfer(inst, walk);
                }
            }
        }
    }
}

ConstProp::State
ConstProp::stateBefore(FuncId f, BlockId b, std::size_t idx) const
{
    State s = in_.at(f).at(b);
    const auto &insts = module_.function(f).block(b).insts();
    LWSP_ASSERT(idx <= insts.size(), "stateBefore: bad index");
    for (std::size_t i = 0; i < idx; ++i)
        transfer(insts[i], s);
    return s;
}

} // namespace compiler
} // namespace lwsp
