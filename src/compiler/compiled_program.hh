/**
 * @file
 * The LightWSP compiler's output artifact.
 *
 * Alongside the transformed module, the compiler emits the boundary-site
 * table used by the recovery runtime: every Boundary instruction carries a
 * unique site id (in its imm field); the table maps that id back to a static
 * program location and holds the checkpoint-pruning recovery recipes for
 * registers whose checkpoint stores were elided (§IV-A "Checkpoint Pruning").
 */

#ifndef LWSP_COMPILER_COMPILED_PROGRAM_HH
#define LWSP_COMPILER_COMPILED_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "ir/program.hh"

namespace lwsp {
namespace compiler {

// The boundary-kind taxonomy lives in the IR layer (ir/opcode.hh) so the
// verifier, the text round-tripper and the static region-safety checker
// can validate it without depending on the compiler; re-exported here for
// the existing compiler-facing spellings.
using ir::BoundaryKind;
using ir::boundaryKindName;

/**
 * How to reconstruct a register at recovery when its checkpoint store was
 * pruned: either a compile-time constant or slot[src] + imm.
 */
struct CkptRecipe
{
    enum class Kind : std::uint8_t { Const, AddSlot };

    ir::Reg reg = 0;       ///< register being reconstructed
    Kind kind = Kind::Const;
    std::int64_t imm = 0;  ///< constant, or addend for AddSlot
    ir::Reg src = 0;       ///< source slot for AddSlot
};

/** Static location + recovery metadata of one Boundary instruction. */
struct BoundarySite
{
    std::uint32_t id = 0;
    ir::FuncId func = ir::invalidFunc;
    ir::BlockId block = ir::invalidBlock;
    std::uint32_t instIndex = 0;  ///< index of the Boundary in its block
    BoundaryKind kind = BoundaryKind::Split;
    std::vector<CkptRecipe> recipes;
};

/** Aggregate statistics reported by the compiler (feeds §V-G3). */
struct CompileStats
{
    std::size_t inputInsts = 0;       ///< before transformation
    std::size_t outputInsts = 0;      ///< after transformation
    std::size_t boundaries = 0;
    std::size_t checkpointStores = 0; ///< CkptStore instructions emitted
    std::size_t prunedCheckpoints = 0;
    std::size_t unrolledLoops = 0;
    std::size_t fixpointIterations = 0;
    /**
     * False when the threshold/checkpoint fixpoint gave up on an
     * irreducibly over-threshold region and left the residue to the
     * runtime WPQ-overflow fallback; the static checker waives its
     * StoreBound obligation for such artifacts.
     */
    bool thresholdConverged = true;
};

/** Memory layout of the PM-resident checkpoint storage (§IV-A). */
struct CheckpointLayout
{
    /** Base of the per-thread checkpoint array region. */
    Addr base = 0x7000'0000'0000ull;
    /** Stride between threads' checkpoint arrays. */
    Addr threadStride = 4096;

    /** Slot address of register @p r for thread @p t. */
    Addr
    regSlot(ThreadId t, ir::Reg r) const
    {
        return base + static_cast<Addr>(t) * threadStride +
               static_cast<Addr>(r) * 8;
    }

    /** Slot address of the checkpointed PC (boundary site id). */
    Addr
    pcSlot(ThreadId t) const
    {
        return base + static_cast<Addr>(t) * threadStride +
               static_cast<Addr>(ir::numGprs) * 8;
    }
};

/** The complete compiler output. */
struct CompiledProgram
{
    std::unique_ptr<ir::Module> module;
    std::vector<BoundarySite> sites;  ///< indexed by boundary id
    CheckpointLayout layout;
    CompileStats stats;

    const BoundarySite &
    site(std::uint32_t id) const
    {
        LWSP_ASSERT(id < sites.size(), "bad boundary site id ", id);
        return sites[id];
    }
};

} // namespace compiler
} // namespace lwsp

#endif // LWSP_COMPILER_COMPILED_PROGRAM_HH
