/**
 * @file
 * Tunables of the LightWSP compiler (paper §IV-A).
 */

#ifndef LWSP_COMPILER_CONFIG_HH
#define LWSP_COMPILER_CONFIG_HH

#include <cstdint>

namespace lwsp {
namespace compiler {

struct CompilerConfig
{
    /**
     * Maximum persist-path entries (data stores + checkpoint stores + the
     * boundary PC-store) any region may produce. The paper's default is
     * half the WPQ size: 32 for the 64-entry WPQ.
     */
    unsigned storeThreshold = 32;

    /** Enable region-size extension via (speculative) loop unrolling. */
    bool unrollLoops = true;

    /** Upper bound on the unroll factor. */
    unsigned maxUnrollFactor = 4;

    /** Enable checkpoint pruning (reconstructable live-outs, §IV-A). */
    bool pruneCheckpoints = true;

    /**
     * Insert live-out checkpoint stores at boundaries. Disabled by the
     * cWSP baseline model, whose idempotent regions recover by
     * re-execution instead of register restoration.
     */
    bool insertCheckpointStores = true;

    /** Enable the region-combining pass (merging small regions). */
    bool combineRegions = true;

    /**
     * Iteration cap for the combining/repartitioning fixpoint that breaks
     * the circular dependence between boundary placement and checkpoint
     * insertion.
     */
    unsigned maxFixpointIterations = 8;

    /**
     * Run the static WSP-invariant checker (src/analysis) after each
     * pipeline stage and panic naming the offending pass on the first
     * violation. Purely observational — never changes the output.
     * Also enabled by setting LWSP_VERIFY_EACH=1 in the environment.
     */
    bool verifyEach = false;
};

} // namespace compiler
} // namespace lwsp

#endif // LWSP_COMPILER_CONFIG_HH
