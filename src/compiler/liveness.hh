/**
 * @file
 * Interprocedural register liveness over LightIR.
 *
 * LightWSP checkpoints live-out registers at each region boundary, so the
 * compiler needs per-program-point liveness of the 16 architectural
 * registers. Calls are handled with function summaries computed to a
 * fixpoint:
 *  - funcUse(f): registers f may read before writing (live-in of entry);
 *  - funcDef(f): registers f (or its callees) may write;
 *  - funcLiveOut(f): registers live after any callsite of f (what a Ret
 *    must preserve).
 * r15 is the stack pointer by convention: Call/Ret implicitly use and
 * define it (return addresses live in persisted stack memory).
 */

#ifndef LWSP_COMPILER_LIVENESS_HH
#define LWSP_COMPILER_LIVENESS_HH

#include <cstdint>
#include <vector>

#include "ir/program.hh"

namespace lwsp {
namespace compiler {

/** Bitmask over the 16 architectural registers. */
using RegMask = std::uint32_t;

/** Stack-pointer register reserved by the Call/Ret convention. */
constexpr ir::Reg spReg = 15;

constexpr RegMask allRegs = (1u << ir::numGprs) - 1;

constexpr RegMask
regBit(ir::Reg r)
{
    return 1u << r;
}

class ModuleLiveness
{
  public:
    /** Runs the whole-module fixpoint immediately. */
    explicit ModuleLiveness(const ir::Module &m);

    RegMask liveIn(ir::FuncId f, ir::BlockId b) const
    {
        return liveIn_.at(f).at(b);
    }
    RegMask liveOut(ir::FuncId f, ir::BlockId b) const
    {
        return liveOut_.at(f).at(b);
    }

    /**
     * Registers live immediately before instruction @p inst_index of block
     * @p b (backward walk from the block's live-out).
     */
    RegMask liveBefore(ir::FuncId f, ir::BlockId b,
                       std::size_t inst_index) const;

    /** Registers live immediately after instruction @p inst_index. */
    RegMask liveAfter(ir::FuncId f, ir::BlockId b,
                      std::size_t inst_index) const;

    RegMask funcUse(ir::FuncId f) const { return funcUse_.at(f); }
    RegMask funcDef(ir::FuncId f) const { return funcDef_.at(f); }
    RegMask funcLiveOut(ir::FuncId f) const { return funcLiveOut_.at(f); }

    /** Per-instruction operand masks given the current summaries. */
    RegMask instUse(ir::FuncId f, const ir::Instruction &inst) const;
    RegMask instDef(const ir::Instruction &inst) const;

  private:
    void recompute();

    const ir::Module &module_;
    std::vector<std::vector<RegMask>> liveIn_;
    std::vector<std::vector<RegMask>> liveOut_;
    std::vector<RegMask> funcUse_;
    std::vector<RegMask> funcDef_;
    std::vector<RegMask> funcLiveOut_;
};

} // namespace compiler
} // namespace lwsp

#endif // LWSP_COMPILER_LIVENESS_HH
