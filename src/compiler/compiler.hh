/**
 * @file
 * The LightWSP compiler facade: runs the full pass pipeline of paper
 * §IV-A over a LightIR module and produces a CompiledProgram ready for the
 * simulator and the recovery runtime.
 */

#ifndef LWSP_COMPILER_COMPILER_HH
#define LWSP_COMPILER_COMPILER_HH

#include <memory>

#include "compiler/compiled_program.hh"
#include "compiler/config.hh"
#include "ir/program.hh"

namespace lwsp {
namespace compiler {

class LightWspCompiler
{
  public:
    explicit LightWspCompiler(CompilerConfig cfg = {}) : cfg_(cfg) {}

    /**
     * Compile (consume) @p input: partition into recoverable regions with
     * live-out registers checkpointed, enforce the per-region store cap,
     * and emit the boundary-site table for recovery.
     */
    CompiledProgram compile(std::unique_ptr<ir::Module> input) const;

    const CompilerConfig &config() const { return cfg_; }

  private:
    CompilerConfig cfg_;
};

/**
 * Wrap an unmodified module as a CompiledProgram (no boundaries, no
 * checkpoints) — the "original binary" the baseline and the pure-hardware
 * schemes (PPA, Capri) execute.
 */
CompiledProgram makeUncompiled(std::unique_ptr<ir::Module> m);

} // namespace compiler
} // namespace lwsp

#endif // LWSP_COMPILER_COMPILER_HH
