#include "passes.hh"

#include <algorithm>

#include "compiler/constprop.hh"
#include "ir/cfg.hh"

namespace lwsp {
namespace compiler {

using namespace ir;

namespace {

unsigned
persistEntriesInBlock(const BasicBlock &bb)
{
    unsigned n = 0;
    for (const auto &inst : bb.insts()) {
        if (isPersistEntry(inst))
            ++n;
    }
    return n;
}

} // namespace

std::size_t
unrollLoops(Function &fn, const CompilerConfig &cfg)
{
    if (!cfg.unrollLoops || cfg.maxUnrollFactor < 2)
        return 0;

    std::size_t unrolled = 0;
    const std::size_t original_blocks = fn.numBlocks();
    for (BlockId b = 0; b < original_blocks; ++b) {
        BasicBlock &header = fn.block(b);
        if (!header.hasTerminator())
            continue;
        const Instruction &term = header.terminator();
        // Single-block self-loop: conditional branch whose taken edge
        // returns to the header itself.
        if (!isConditionalBranch(term.op) || term.target != b ||
            term.fallthru == b) {
            continue;
        }

        unsigned stores = persistEntriesInBlock(header);
        unsigned budget = cfg.storeThreshold > 1 ? cfg.storeThreshold - 1
                                                 : 1;
        unsigned factor = cfg.maxUnrollFactor;
        if (stores > 0)
            factor = std::min<unsigned>(factor,
                                        std::max(1u, budget / stores));
        // Honour exact trip counts when the generator recorded one: pick
        // a factor dividing the count so no mid-copy exits fire.
        auto trip = fn.loopTripCounts().find(b);
        if (trip != fn.loopTripCounts().end()) {
            while (factor > 1 && trip->second % factor != 0)
                --factor;
        }
        if (factor < 2)
            continue;

        // Copy the body factor-1 times; each copy keeps the exit check
        // (speculative unrolling) and the last copy carries the back edge.
        std::vector<Instruction> body(header.insts().begin(),
                                      header.insts().end() - 1);
        Instruction exit_branch = term;

        std::vector<BlockId> copies;
        for (unsigned k = 1; k < factor; ++k)
            copies.push_back(fn.addBlock().id());

        // Header's continue edge now targets the first copy.
        fn.block(b).insts().back().target = copies.front();

        for (unsigned k = 0; k < copies.size(); ++k) {
            BasicBlock &copy = fn.block(copies[k]);
            for (const auto &inst : body)
                copy.append(inst);
            Instruction br = exit_branch;
            br.target = (k + 1 < copies.size()) ? copies[k + 1] : b;
            copy.append(br);
        }
        ++unrolled;
    }
    return unrolled;
}

void
insertInitialBoundaries(Function &fn)
{
    // Loop headers first (needs loop analysis on the untouched CFG).
    Cfg cfg(fn);
    DominatorTree dt(cfg);
    auto loops = findNaturalLoops(cfg, dt);

    for (const auto &loop : loops) {
        bool has_persist = false;
        for (BlockId b : loop.blocks) {
            if (persistEntriesInBlock(fn.block(b)) > 0) {
                has_persist = true;
                break;
            }
        }
        if (!has_persist)
            continue;
        auto &insts = fn.block(loop.header).insts();
        // Avoid doubling up if the header already starts with a boundary.
        if (!insts.empty() && insts.front().op == Opcode::Boundary)
            continue;
        insts.insert(insts.begin(), makeBoundary(BoundaryKind::LoopHeader));
    }

    // Function entry.
    {
        auto &insts = fn.block(0).insts();
        if (insts.empty() || insts.front().op != Opcode::Boundary) {
            insts.insert(insts.begin(),
                         makeBoundary(BoundaryKind::FuncEntry));
        }
    }

    // Callsites, synchronization operations and function exits.
    for (BlockId b = 0; b < fn.numBlocks(); ++b) {
        auto &insts = fn.block(b).insts();
        for (std::size_t i = 0; i < insts.size(); ++i) {
            Opcode op = insts[i].op;
            if (op == Opcode::Call) {
                // Boundary before and after the call.
                insts.insert(insts.begin() + i,
                             makeBoundary(BoundaryKind::CallBefore));
                ++i;  // now at the Call
                insts.insert(insts.begin() + i + 1,
                             makeBoundary(BoundaryKind::CallAfter));
                ++i;  // skip the inserted after-boundary
            } else if (isSynchronization(op)) {
                // Boundaries before AND after the sync op (§III-D). Sync
                // ops are fused region ends: they broadcast the current
                // region and tag their own store with a freshly allocated
                // ID (coherence-ordering racing atomics), but they write
                // no PC checkpoint. The before-boundary makes the region
                // the sync op terminates empty, so that missing recovery
                // point is unobservable; the after-boundary's PC store is
                // tagged with the sync op's region, keeping "resume past
                // the sync" atomic with the sync store's persistence.
                insts.insert(insts.begin() + i,
                             makeBoundary(BoundaryKind::Sync));
                ++i;  // back at the sync op
                insts.insert(insts.begin() + i + 1,
                             makeBoundary(BoundaryKind::Sync));
                ++i;
            } else if (op == Opcode::Ret || op == Opcode::Halt) {
                if (i == 0 || insts[i - 1].op != Opcode::Boundary) {
                    insts.insert(insts.begin() + i,
                                 makeBoundary(BoundaryKind::FuncExit));
                    ++i;
                }
            }
        }
    }
}

StoreCountResult
computeStoreCounts(const Function &fn, unsigned entry_in)
{
    StoreCountResult r;
    r.in.assign(fn.numBlocks(), 0);
    r.out.assign(fn.numBlocks(), 0);

    Cfg cfg(fn);
    const auto &rpo = cfg.reversePostOrder();

    // Monotone max-dataflow: it converges iff every cycle containing a
    // persist entry also contains a boundary (which resets the count).
    // A malformed input — e.g. a storeful loop whose header boundary was
    // stripped — breaks that premise and grows counts without bound, so
    // cap the passes and fail loudly instead of hanging.
    const unsigned max_passes =
        2 * static_cast<unsigned>(fn.numBlocks()) + 16;
    bool changed = true;
    unsigned passes = 0;
    while (changed) {
        changed = false;
        if (++passes > max_passes) {
            panic("store-count dataflow failed to converge after ",
                  max_passes, " passes over ", fn.numBlocks(),
                  " blocks: a cycle containing persist entries has no "
                  "boundary to reset the count (storeful loop missing "
                  "its header boundary?)");
        }
        for (BlockId b : rpo) {
            unsigned in = (b == 0) ? entry_in : 0;
            for (BlockId p : cfg.predecessors(b)) {
                if (cfg.reachable(p))
                    in = std::max(in, r.out[p]);
            }
            unsigned cnt = in;
            for (const auto &inst : fn.block(b).insts()) {
                if (inst.op == Opcode::Boundary) {
                    cnt = 0;
                } else if (isPersistEntry(inst)) {
                    ++cnt;
                }
                r.worst = std::max(r.worst, cnt);
            }
            if (in != r.in[b] || cnt != r.out[b]) {
                r.in[b] = in;
                r.out[b] = cnt;
                changed = true;
            }
        }
    }
    return r;
}

std::size_t
enforceStoreThreshold(Function &fn, const CompilerConfig &cfg,
                      unsigned entry_in)
{
    const unsigned budget =
        cfg.storeThreshold > 1 ? cfg.storeThreshold - 1 : 1;
    std::size_t inserted = 0;

    // Every round that loops again has inserted at least one Split, and
    // each persist entry needs at most one Split in front of it — so a
    // round count beyond that bound means the dataflow is feeding us
    // nonsense and we must not spin.
    std::size_t total_entries = 0;
    for (BlockId b = 0; b < fn.numBlocks(); ++b)
        total_entries += persistEntriesInBlock(fn.block(b));
    const std::size_t max_rounds = total_entries + fn.numBlocks() + 8;
    std::size_t rounds = 0;

    // Repeat until no block overflows: each pass recomputes the dataflow
    // and inserts at most one boundary per offending block.
    bool again = true;
    while (again) {
        again = false;
        if (++rounds > max_rounds) {
            panic("store-threshold enforcement failed to converge after ",
                  max_rounds, " rounds (", inserted, " splits inserted, ",
                  total_entries, " persist entries): malformed region "
                  "structure");
        }
        StoreCountResult counts = computeStoreCounts(fn, entry_in);
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            auto &insts = fn.block(b).insts();
            unsigned cnt = counts.in[b];
            for (std::size_t i = 0; i < insts.size(); ++i) {
                if (insts[i].op == Opcode::Boundary) {
                    cnt = 0;
                    continue;
                }
                if (!isPersistEntry(insts[i]))
                    continue;
                if (cnt + 1 > budget) {
                    insts.insert(insts.begin() + i,
                                 makeBoundary(BoundaryKind::Split));
                    ++inserted;
                    again = true;
                    break;  // indices shifted; redo this block next pass
                }
                ++cnt;
            }
        }
    }
    return inserted;
}

bool
hasThresholdViolation(const Function &fn, const CompilerConfig &cfg,
                      unsigned entry_in)
{
    const unsigned budget =
        cfg.storeThreshold > 1 ? cfg.storeThreshold - 1 : 1;
    return computeStoreCounts(fn, entry_in).worst > budget;
}

std::size_t
combineRegions(Function &fn, const CompilerConfig &cfg,
               unsigned entry_in)
{
    if (!cfg.combineRegions)
        return 0;

    std::size_t removed = 0;
    Cfg cfg_graph(fn);
    // Topological-ish order: reverse post-order visits a region's blocks
    // before its successors' on reducible CFGs.
    for (BlockId b : cfg_graph.reversePostOrder()) {
        auto &insts = fn.block(b).insts();
        for (std::size_t i = 0; i < insts.size();) {
            if (insts[i].op != Opcode::Boundary ||
                boundaryKind(insts[i]) != BoundaryKind::Split) {
                ++i;
                continue;
            }
            Instruction saved = insts[i];
            insts.erase(insts.begin() + i);
            if (hasThresholdViolation(fn, cfg, entry_in)) {
                insts.insert(insts.begin() + i, saved);
                ++i;
            } else {
                ++removed;
            }
        }
    }
    return removed;
}

void
splitBlocksAtBoundaries(Function &fn)
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            auto &insts = fn.block(b).insts();
            for (std::size_t i = 0; i + 2 < insts.size(); ++i) {
                if (insts[i].op != Opcode::Boundary)
                    continue;
                // Tail [i+1 .. end) moves to a fresh block; this block
                // keeps the boundary and jumps to the continuation.
                BasicBlock &cont = fn.addBlock();
                for (std::size_t j = i + 1; j < insts.size(); ++j)
                    cont.append(insts[j]);
                auto &head = fn.block(b).insts();  // addBlock may realloc
                head.resize(i + 1);
                head.push_back(Instruction::jmp(cont.id()));
                changed = true;
                break;
            }
        }
    }
}

void
stripCheckpointStores(Function &fn)
{
    for (BlockId b = 0; b < fn.numBlocks(); ++b) {
        auto &insts = fn.block(b).insts();
        insts.erase(std::remove_if(insts.begin(), insts.end(),
                                   [](const Instruction &i) {
                                       return i.op == Opcode::CkptStore;
                                   }),
                    insts.end());
    }
}

std::size_t
insertCheckpoints(Module &m, bool prune_constants,
                  std::size_t *pruned_out)
{
    ModuleLiveness live(m);
    ConstProp consts(m, live);
    std::size_t inserted = 0;
    std::size_t pruned = 0;

    for (FuncId f = 0; f < m.numFunctions(); ++f) {
        Function &fn = m.function(f);
        Cfg cfg(fn);

        // Forward "slot-stale" dataflow: a register is stale while its
        // checkpoint slot may not hold its current value, and only an
        // actual CkptStore cleans it. A boundary that prunes a constant
        // covers *that site* with a recovery recipe but writes nothing
        // to the slot, so the register must stay stale: a later site
        // where the constness has been lost (a join of differently-
        // valued paths, a call-site merge) has neither recipe nor
        // current slot unless it stores the register itself.
        std::vector<RegMask> dirty_out(fn.numBlocks(), 0);
        std::vector<RegMask> dirty_in(fn.numBlocks(), 0);

        auto constMask = [&](const ConstProp::State &st) {
            RegMask mk = 0;
            for (Reg r = 0; r < numGprs; ++r)
                if (st[r].isConst())
                    mk |= regBit(r);
            return mk;
        };

        auto transfer = [&](BlockId b, RegMask in) {
            RegMask d = in;
            ConstProp::State cstate = consts.blockIn(f, b);
            const auto &insts = fn.block(b).insts();
            for (std::size_t i = 0; i < insts.size(); ++i) {
                const Instruction &inst = insts[i];
                if (inst.op == Opcode::Boundary) {
                    RegMask stored = d & live.liveAfter(f, b, i);
                    if (prune_constants)
                        stored &= ~constMask(cstate);
                    d &= ~stored;
                } else if (inst.op == Opcode::Call) {
                    // The callee checkpoints what it dirties, but may
                    // prune its live-outs into recipes at its *own*
                    // sites: their slots can come back stale. Ret's
                    // stack pop redefines sp afterwards.
                    d |= live.funcDef(inst.callee) | regBit(spReg);
                } else if (inst.op == Opcode::Ret) {
                    d |= regBit(spReg);
                } else {
                    d |= live.instDef(inst);
                }
                consts.transfer(inst, cstate);
            }
            return d;
        };

        // Nothing is current on function entry. The entry function
        // starts with hardware-initialized registers (r0 = thread id,
        // r15 = stack pointer) over zeroed slots; a callee inherits
        // whatever the caller left stale — in particular a caller
        // register pruned as a constant at every caller site has never
        // been materialized to its slot at all.
        const RegMask entry_seed = allRegs;

        bool changed = true;
        while (changed) {
            changed = false;
            for (BlockId b : cfg.reversePostOrder()) {
                RegMask in = (b == 0) ? entry_seed : 0;
                for (BlockId p : cfg.predecessors(b)) {
                    if (cfg.reachable(p))
                        in |= dirty_out[p];
                }
                RegMask out = transfer(b, in);
                if (in != dirty_in[b] || out != dirty_out[b]) {
                    dirty_in[b] = in;
                    dirty_out[b] = out;
                    changed = true;
                }
            }
        }

        // Insert CkptStores immediately before each boundary for every
        // register that is live after it and dirty at it — except
        // provable constants, which recovery reconstructs from recipes.
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            auto &insts = fn.block(b).insts();
            RegMask d = dirty_in[b];
            ConstProp::State cstate = consts.blockIn(f, b);
            for (std::size_t i = 0; i < insts.size(); ++i) {
                const Instruction inst = insts[i];
                if (inst.op == Opcode::Boundary) {
                    RegMask want = d & live.liveAfter(f, b, i);
                    for (Reg r = 0; r < numGprs; ++r) {
                        if (!(want & regBit(r)))
                            continue;
                        if (prune_constants && cstate[r].isConst()) {
                            // Recipe covers this site; the slot stays
                            // stale for downstream sites.
                            ++pruned;
                            continue;
                        }
                        insts.insert(insts.begin() + i,
                                     Instruction::ckptStore(r));
                        ++i;
                        ++inserted;
                        d &= ~regBit(r);
                    }
                } else if (inst.op == Opcode::Call) {
                    d |= live.funcDef(inst.callee) | regBit(spReg);
                } else if (inst.op == Opcode::Ret) {
                    d |= regBit(spReg);
                } else {
                    d |= live.instDef(inst);
                }
                consts.transfer(inst, cstate);
            }
        }
    }
    if (pruned_out)
        *pruned_out += pruned;
    return inserted;
}

std::map<std::pair<FuncId, BlockId>, std::vector<CkptRecipe>>
computeConstRecipes(const Module &m)
{
    ModuleLiveness live(m);
    ConstProp consts(m, live);
    std::map<std::pair<FuncId, BlockId>, std::vector<CkptRecipe>> out;

    for (FuncId f = 0; f < m.numFunctions(); ++f) {
        const Function &fn = m.function(f);
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            const auto &insts = fn.block(b).insts();
            for (std::size_t i = 0; i < insts.size(); ++i) {
                if (insts[i].op != Opcode::Boundary)
                    continue;
                ConstProp::State st = consts.stateBefore(f, b, i);
                RegMask live_after = live.liveAfter(f, b, i);
                std::vector<CkptRecipe> recipes;
                for (Reg r = 0; r < numGprs; ++r) {
                    if ((live_after & regBit(r)) && st[r].isConst()) {
                        CkptRecipe recipe;
                        recipe.reg = r;
                        recipe.kind = CkptRecipe::Kind::Const;
                        recipe.imm = st[r].constant;
                        recipes.push_back(recipe);
                    }
                }
                if (!recipes.empty())
                    out[{f, b}] = std::move(recipes);
            }
        }
    }
    return out;
}

std::vector<BoundarySite>
assignBoundarySites(Module &m,
                    const std::map<std::pair<FuncId, BlockId>,
                                   std::vector<CkptRecipe>> &recipes)
{
    std::vector<BoundarySite> sites;
    for (FuncId f = 0; f < m.numFunctions(); ++f) {
        Function &fn = m.function(f);
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            auto &insts = fn.block(b).insts();
            for (std::size_t i = 0; i < insts.size(); ++i) {
                if (insts[i].op != Opcode::Boundary)
                    continue;
                BoundarySite site;
                site.id = static_cast<std::uint32_t>(sites.size());
                site.func = f;
                site.block = b;
                site.instIndex = static_cast<std::uint32_t>(i);
                site.kind = boundaryKind(insts[i]);
                auto it = recipes.find({f, b});
                if (it != recipes.end())
                    site.recipes = it->second;
                insts[i].imm = static_cast<std::int64_t>(site.id);
                sites.push_back(std::move(site));
            }
        }
    }
    return sites;
}

} // namespace compiler
} // namespace lwsp
