/**
 * @file
 * The individual LightWSP compiler passes (paper §IV-A). They are exposed
 * separately so tests can exercise each in isolation; LightWspCompiler
 * chains them in the published order:
 *
 *   unroll loops -> initial boundary insertion ->
 *   [ threshold enforcement -> region combining -> checkpoint insertion ]*
 *   -> block splitting -> checkpoint pruning -> boundary-site assignment
 *
 * The bracketed fixpoint breaks the circular dependence between boundary
 * placement and checkpoint-store insertion described in the paper.
 *
 * Boundary instructions carry their BoundaryKind in the (otherwise unused)
 * rd field and, after site assignment, their site id in imm.
 */

#ifndef LWSP_COMPILER_PASSES_HH
#define LWSP_COMPILER_PASSES_HH

#include <cstdint>
#include <map>
#include <vector>

#include "compiler/compiled_program.hh"
#include "compiler/config.hh"
#include "compiler/liveness.hh"
#include "ir/program.hh"

namespace lwsp {
namespace compiler {

/** Make a Boundary instruction of the given kind. */
inline ir::Instruction
makeBoundary(BoundaryKind kind)
{
    ir::Instruction i;
    i.op = ir::Opcode::Boundary;
    i.rd = static_cast<ir::Reg>(kind);
    return i;
}

/**
 * Read the kind back from a Boundary instruction. The kind rides in rd
 * (an ir::Reg), so a corrupted or hand-built instruction can carry any
 * byte — validate instead of silently truncating into the enum.
 */
inline BoundaryKind
boundaryKind(const ir::Instruction &inst)
{
    LWSP_ASSERT(inst.op == ir::Opcode::Boundary, "not a boundary");
    LWSP_ASSERT(ir::isValidBoundaryKind(inst.rd),
                "invalid boundary kind ", unsigned(inst.rd));
    return static_cast<BoundaryKind>(inst.rd);
}

/**
 * @return true if @p inst produces a persist-path entry at run time
 * (data store, atomic, checkpoint store, or the implicit return-address
 * push performed by Call). Boundary PC-stores are accounted separately via
 * the threshold's reserved slot.
 */
inline bool
isPersistEntry(const ir::Instruction &inst)
{
    switch (inst.op) {
      case ir::Opcode::Store:
      case ir::Opcode::AtomicAdd:
      case ir::Opcode::CkptStore:
      case ir::Opcode::Call:
      case ir::Opcode::LockAcq:
      case ir::Opcode::LockRel:
        return true;
      default:
        return false;
    }
}

/**
 * Region-size extension (paper "Region Size Extension"): speculatively
 * unroll single-block self-loops, duplicating body and exit condition, so
 * each trip crosses the loop-header boundary once per @c factor iterations.
 *
 * @return number of loops unrolled
 */
std::size_t unrollLoops(ir::Function &fn, const CompilerConfig &cfg);

/**
 * Initial region boundary insertion: function entry/exit, callsites
 * (before and after), headers of loops containing persist entries, and
 * after every synchronization operation (§III-D).
 */
void insertInitialBoundaries(ir::Function &fn);

/**
 * Result of the store-count dataflow over one function: the maximum number
 * of persist entries accumulated since the last boundary, per block.
 */
struct StoreCountResult
{
    std::vector<unsigned> in;   ///< max count entering each block
    std::vector<unsigned> out;  ///< max count leaving each block
    unsigned worst = 0;         ///< max count observed anywhere
};

/**
 * Compute the max-over-paths persist-entry count between boundaries.
 * Converges because every loop containing persist entries has a header
 * boundary (which resets the count); a malformed input violating that
 * premise is detected and panics instead of iterating forever.
 *
 * @param entry_in persist entries already in flight when control enters
 *     the function: 1 for any function reached by Call (the caller's
 *     return-address push lands in the region that crosses into the
 *     callee until its FuncEntry boundary fires), 0 for the program
 *     entry function.
 */
StoreCountResult computeStoreCounts(const ir::Function &fn,
                                    unsigned entry_in = 0);

/**
 * Enforce the per-region store cap by inserting Split boundaries wherever
 * the running count would exceed cfg.storeThreshold - 1 (one slot is
 * reserved for the region's own boundary PC-store).
 *
 * @param entry_in see computeStoreCounts()
 * @return number of Split boundaries inserted
 */
std::size_t enforceStoreThreshold(ir::Function &fn,
                                  const CompilerConfig &cfg,
                                  unsigned entry_in = 0);

/**
 * Region combining: traverse blocks in topological order and remove Split
 * boundaries whose removal keeps every region under the threshold.
 *
 * @param entry_in see computeStoreCounts()
 * @return number of boundaries removed
 */
std::size_t combineRegions(ir::Function &fn, const CompilerConfig &cfg,
                           unsigned entry_in = 0);

/**
 * Split blocks so each Boundary is the penultimate instruction of its
 * block (immediately before the terminator), giving regions that start at
 * block entry as the paper requires.
 */
void splitBlocksAtBoundaries(ir::Function &fn);

/** @return true if any boundary-free path exceeds the threshold. */
bool hasThresholdViolation(const ir::Function &fn,
                           const CompilerConfig &cfg,
                           unsigned entry_in = 0);

/** Remove every CkptStore (used between fixpoint iterations). */
void stripCheckpointStores(ir::Function &fn);

/**
 * Insert checkpoint stores: at each boundary, every register that is both
 * live after the boundary and "dirty" (modified since its last checkpoint)
 * is stored to its PM slot just before the boundary. Uses a forward dirty
 * dataflow; boundaries reset dirtiness (checkpointed-or-provably-dead).
 *
 * Checkpoint pruning (§IV-A) is folded in when @p prune_constants is set:
 * registers whose value is a provable compile-time constant at the
 * boundary are skipped — sound at every later resume site too, because a
 * constant register stays constant until redefined, and the recipe pass
 * re-derives it at each such site.
 *
 * @param pruned_out incremented by the number of stores elided
 * @return number of CkptStore instructions inserted
 */
std::size_t insertCheckpoints(ir::Module &m, bool prune_constants,
                              std::size_t *pruned_out = nullptr);

/**
 * Post-split recipe computation: for every boundary block, attach a
 * Const recipe for each live-after register whose value is a provable
 * constant there. Recovery applies recipes after slot restoration, so a
 * recipe that merely duplicates a fresh slot is harmless; one that covers
 * a pruned (stale) slot is essential.
 */
std::map<std::pair<ir::FuncId, ir::BlockId>, std::vector<CkptRecipe>>
computeConstRecipes(const ir::Module &m);

/**
 * Assign sequential site ids to every Boundary (written into imm) and
 * build the site table, attaching any recipes gathered by pruning.
 */
std::vector<BoundarySite>
assignBoundarySites(ir::Module &m,
                    const std::map<std::pair<ir::FuncId, ir::BlockId>,
                                   std::vector<CkptRecipe>> &recipes);

} // namespace compiler
} // namespace lwsp

#endif // LWSP_COMPILER_PASSES_HH
