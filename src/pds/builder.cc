/**
 * @file
 * LightIR emission for the persistent data structures. Every persistent
 * store here has a mirror line in model.cc's applyOp() — the two files
 * encode the same store stream and must change together.
 *
 * The pmtx build wraps each instrumented store in the undo-log
 * expansion (log address+old value, fence, bump the count, fence,
 * store), commits every spec.opsPerTx ops with fence/clear/fence, and
 * prepends a rollback-and-resume recovery preamble to the driver entry
 * — the software-transaction protocol of Persistent Memory
 * Transactions (Marathe et al.) expressed at the IR level. Scratch
 * spills, the undo log itself and the served-op counter are plain
 * stores: they carry no crash-relevant state.
 */

#include "pds/pds.hh"

#include <sstream>

#include "common/logging.hh"
#include "ir/verifier.hh"

namespace lwsp {
namespace pds {

namespace {

using ir::BasicBlock;
using ir::BlockId;
using ir::FuncId;
using ir::Instruction;
using ir::Opcode;
using ir::Reg;

constexpr Reg r1 = 1, r2 = 2, r3 = 3, r4 = 4, r5 = 5, r6 = 6, r7 = 7,
              r8 = 8, r9 = 9, r10 = 10, r11 = 11, r12 = 12, r13 = 13,
              r14 = 14;

constexpr std::uint64_t hashMult = 2654435761ull;

/**
 * Per-function emission cursor. pstore() is the one place the pmtx
 * instrumentation exists; everything else is thin sugar over the
 * Instruction factories.
 */
struct Emitter
{
    ir::Function &f;
    const PdsParams &p;
    bool pmtx;
    BasicBlock *cur = nullptr;

    // Base-relative offsets (r1 holds p.base everywhere).
    std::int64_t
    off(Addr a) const
    {
        return static_cast<std::int64_t>(a - p.base);
    }

    BasicBlock &nb() { return f.addBlock(); }
    void at(BasicBlock &b) { cur = &b; }
    void emit(Instruction i) { cur->append(i); }

    void movi(Reg rd, std::uint64_t v)
    {
        emit(Instruction::movi(rd, static_cast<std::int64_t>(v)));
    }
    void alu(Opcode op, Reg rd, Reg a, Reg b)
    {
        emit(Instruction::alu(op, rd, a, b));
    }
    void addi(Reg rd, Reg a, std::int64_t imm)
    {
        emit(Instruction::aluImm(Opcode::AddI, rd, a, imm));
    }
    void muli(Reg rd, Reg a, std::int64_t imm)
    {
        emit(Instruction::aluImm(Opcode::MulI, rd, a, imm));
    }
    void load(Reg rd, Reg base, std::int64_t o)
    {
        emit(Instruction::load(rd, base, o));
    }
    /** Plain store: never undo-logged (scratch, served, undo area). */
    void store(Reg base, std::int64_t o, Reg val)
    {
        emit(Instruction::store(base, o, val));
    }
    void jmp(BasicBlock &t) { emit(Instruction::jmp(t.id())); }
    void br(Opcode op, Reg a, Reg b, BasicBlock &t, BasicBlock &ft)
    {
        emit(Instruction::branch(op, a, b, t.id(), ft.id()));
    }
    void call(FuncId callee) { emit(Instruction::call(callee)); }
    void ret() { emit(Instruction::simple(Opcode::Ret)); }
    void fence() { emit(Instruction::simple(Opcode::Fence)); }

    /**
     * Persistent (crash-relevant) store. Plain build: one Store. pmtx
     * build: undo-log expansion on r12-r14 — callers must not pass
     * r12-r14 as @p base / @p val nor keep live values there.
     */
    void
    pstore(Reg base, std::int64_t o, Reg val)
    {
        LWSP_ASSERT(base < r12 && val < r12,
                    "pstore operand collides with pmtx scratch");
        if (pmtx) {
            addi(r12, base, o);                    // target address
            load(r13, r1, off(p.undoCount));       // n
            muli(r14, r13, 16);
            alu(Opcode::Add, r14, r14, r1);        // entry ptr - undoBase
            store(r14, off(p.undoBase), r12);      // entry.addr
            load(r12, r12, 0);                     // old value
            store(r14, off(p.undoBase) + 8, r12);  // entry.old
            fence();                               // entry durable first
            addi(r13, r13, 1);
            store(r1, off(p.undoCount), r13);
            fence();                               // count durable next
        }
        emit(Instruction::store(base, o, val));
    }
};

// Structure cell offsets, mirrored from model.cc.
struct LogOffs
{
    std::int64_t curSeg, curOff, trim, nextId, segs;
    explicit LogOffs(const Emitter &e)
        : curSeg(e.off(e.p.structBase)), curOff(curSeg + 8),
          trim(curSeg + 16), nextId(curSeg + 24), segs(curSeg + 32)
    {}
};

struct HashOffs
{
    std::int64_t curTbl, mask, freeHead, bump, tbl, pool;
    explicit HashOffs(const Emitter &e)
        : curTbl(e.off(e.p.structBase)), mask(curTbl + 8),
          freeHead(curTbl + 16), bump(curTbl + 24), tbl(curTbl + 32),
          pool(tbl + std::int64_t(3) * e.p.buckets * 8)
    {}
};

struct AllocOffs
{
    std::int64_t freeHead, blocks, handles;
    explicit AllocOffs(const Emitter &e)
        : freeHead(e.off(e.p.structBase)), blocks(freeHead + 8),
          handles(blocks + std::int64_t(e.p.blocks) * 16)
    {}
};

// ---------------------------------------------------------------------------
// Log.

void
buildLogAppend(Emitter &e, unsigned broken)
{
    LogOffs L(e);
    const std::int64_t segStride = (e.p.slotsPerSeg + 1) * 8;

    BasicBlock &entry = e.nb();
    BasicBlock &advance = e.nb();
    BasicBlock &wrap = e.nb();
    BasicBlock &reclaim = e.nb();
    BasicBlock &chdr = e.nb();
    BasicBlock &cbody = e.nb();
    BasicBlock &keep = e.nb();
    BasicBlock &skipj = e.nb();
    BasicBlock &cdone = e.nb();
    BasicBlock &storeb = e.nb();

    e.at(entry);                       // r5 = value to append
    e.load(r6, r1, L.curSeg);
    e.load(r7, r1, L.curOff);
    e.movi(r8, e.p.slotsPerSeg);
    e.br(Opcode::Blt, r7, r8, storeb, advance);

    e.at(advance);                     // rotate to the next segment
    e.addi(r6, r6, 1);
    e.movi(r8, e.p.segs);
    e.br(Opcode::Blt, r6, r8, reclaim, wrap);

    e.at(wrap);
    e.movi(r6, 0);
    e.jmp(reclaim);

    e.at(reclaim);                     // compact: keep live entries
    e.pstore(r1, L.curSeg, r6);
    e.muli(r8, r6, segStride);
    e.alu(Opcode::Add, r8, r8, r1);    // seg ptr (used @ [r8+L.segs])
    e.load(r9, r8, L.segs);            // u = used
    e.load(r10, r1, L.trim);
    e.movi(r4, 0);                     // j
    e.movi(r7, 0);                     // w
    e.jmp(chdr);

    e.at(chdr);
    e.br(Opcode::Bge, r4, r9, cdone, cbody);

    e.at(cbody);
    e.muli(r11, r4, 8);
    e.alu(Opcode::Add, r11, r11, r8);
    e.load(r6, r11, L.segs + 8);       // e = seg[j]
    e.movi(r11, 32);
    e.alu(Opcode::Shr, r11, r6, r11);  // id
    e.br(Opcode::Bge, r11, r10, keep, skipj);

    e.at(keep);
    if (broken == 2) {
        // Seeded bug: survivors of a reclaim get their value half
        // flipped — silent corruption the live-multiset walk must
        // flag. (Deliberately geometry-preserving: a keep-condition
        // bug would diverge segment occupancy from the tape
        // generator's feasibility model and overflow a segment.)
        e.movi(r11, 1);
        e.alu(Opcode::Xor, r6, r6, r11);
    }
    e.muli(r11, r7, 8);
    e.alu(Opcode::Add, r11, r11, r8);
    e.pstore(r11, L.segs + 8, r6);     // seg[w] = e
    e.addi(r7, r7, 1);
    e.jmp(skipj);

    e.at(skipj);
    e.addi(r4, r4, 1);
    e.jmp(chdr);

    e.at(cdone);
    e.pstore(r8, L.segs, r7);          // used = w
    e.pstore(r1, L.curOff, r7);
    e.jmp(storeb);

    e.at(storeb);                      // append at (curSeg, curOff)
    e.load(r6, r1, L.curSeg);
    e.load(r7, r1, L.curOff);
    e.load(r9, r1, L.nextId);
    e.movi(r8, 32);
    e.alu(Opcode::Shl, r8, r9, r8);
    e.alu(Opcode::Or, r8, r8, r5);     // entry = id<<32 | v
    e.muli(r10, r6, segStride);
    e.alu(Opcode::Add, r10, r10, r1);  // seg ptr
    e.muli(r11, r7, 8);
    e.alu(Opcode::Add, r11, r11, r10);
    e.pstore(r11, L.segs + 8, r8);
    e.addi(r7, r7, 1);
    e.pstore(r10, L.segs, r7);
    e.pstore(r1, L.curOff, r7);
    e.addi(r9, r9, 1);
    e.pstore(r1, L.nextId, r9);
    e.ret();
}

void
buildLogTrim(Emitter &e)
{
    LogOffs L(e);
    BasicBlock &entry = e.nb();
    BasicBlock &clamp = e.nb();
    BasicBlock &dostore = e.nb();

    e.at(entry);                       // r4 = n
    e.load(r6, r1, L.trim);
    e.alu(Opcode::Add, r6, r6, r4);
    e.load(r7, r1, L.nextId);
    e.br(Opcode::Bge, r6, r7, clamp, dostore);

    e.at(clamp);
    e.emit(Instruction::alu(Opcode::Mov, r6, r7, 0));
    e.jmp(dostore);

    e.at(dostore);
    e.pstore(r1, L.trim, r6);
    e.ret();
}

// ---------------------------------------------------------------------------
// Hash table.

/** Common prologue: r8 = cur table ptr, r9 = bucket ptr for key r4. */
void
emitHashBucket(Emitter &e, const HashOffs &H, unsigned broken)
{
    e.load(r6, r1, H.curTbl);
    e.load(r7, r1, H.mask);
    e.muli(r8, r6, std::int64_t(e.p.buckets) * 8);
    e.alu(Opcode::Add, r8, r8, r1);    // tbl ptr (buckets @ [r8+H.tbl])
    e.movi(r9, hashMult);
    e.alu(Opcode::Mul, r9, r4, r9);
    if (broken == 2)                   // seeded bug: off-by-one bucket
        e.addi(r9, r9, 1);
    e.alu(Opcode::And, r9, r9, r7);
    e.muli(r9, r9, 8);
    e.alu(Opcode::Add, r9, r9, r8);    // bucket ptr
}

void
buildHashInsert(Emitter &e, unsigned broken)
{
    HashOffs H(e);
    BasicBlock &entry = e.nb();
    BasicBlock &pop = e.nb();
    BasicBlock &bump = e.nb();
    BasicBlock &have = e.nb();

    e.at(entry);                       // r4 = key, r5 = value
    emitHashBucket(e, H, broken);
    e.load(r10, r1, H.freeHead);
    e.movi(r6, 0);
    e.br(Opcode::Beq, r10, r6, bump, pop);

    e.at(pop);                         // node from the free list
    e.addi(r6, r10, -1);
    e.muli(r6, r6, 32);
    e.alu(Opcode::Add, r6, r6, r1);    // node ptr
    e.load(r11, r6, H.pool + 16);
    e.pstore(r1, H.freeHead, r11);
    e.jmp(have);

    e.at(bump);                        // node from bump allocation
    e.load(r10, r1, H.bump);
    e.addi(r10, r10, 1);
    e.pstore(r1, H.bump, r10);
    e.addi(r6, r10, -1);
    e.muli(r6, r6, 32);
    e.alu(Opcode::Add, r6, r6, r1);
    e.jmp(have);

    e.at(have);                        // r6 = node ptr, r10 = idx1
    e.pstore(r6, H.pool + 0, r4);
    e.pstore(r6, H.pool + 8, r5);
    e.load(r11, r9, H.tbl);
    e.pstore(r6, H.pool + 16, r11);    // node.next = old head
    e.pstore(r9, H.tbl, r10);          // bucket = idx1
    e.ret();
}

void
buildHashDelete(Emitter &e)
{
    HashOffs H(e);
    BasicBlock &entry = e.nb();
    BasicBlock &walk = e.nb();
    BasicBlock &chk = e.nb();
    BasicBlock &body = e.nb();
    BasicBlock &adv = e.nb();
    BasicBlock &unlink = e.nb();
    BasicBlock &unhead = e.nb();
    BasicBlock &unmid = e.nb();
    BasicBlock &push = e.nb();
    BasicBlock &done = e.nb();

    e.at(entry);                       // r4 = key
    emitHashBucket(e, H, 0);
    e.load(r10, r9, H.tbl);            // cur (idx1)
    e.movi(r7, 0);                     // prev node ptr (0 = bucket head)
    e.movi(r8, e.p.pool + 1);          // chain bound
    e.jmp(walk);

    e.at(walk);
    e.movi(r11, 0);
    e.br(Opcode::Beq, r10, r11, done, chk);

    e.at(chk);
    e.addi(r8, r8, -1);
    e.movi(r11, 0);
    e.br(Opcode::Beq, r8, r11, done, body);

    e.at(body);
    e.addi(r6, r10, -1);
    e.muli(r6, r6, 32);
    e.alu(Opcode::Add, r6, r6, r1);    // node ptr
    e.load(r11, r6, H.pool + 0);
    e.br(Opcode::Beq, r11, r4, unlink, adv);

    e.at(adv);
    e.emit(Instruction::alu(Opcode::Mov, r7, r6, 0));
    e.load(r10, r6, H.pool + 16);
    e.jmp(walk);

    e.at(unlink);
    e.load(r11, r6, H.pool + 16);      // successor
    e.movi(r8, 0);
    e.br(Opcode::Beq, r7, r8, unhead, unmid);

    e.at(unhead);
    e.pstore(r9, H.tbl, r11);          // bucket = successor
    e.jmp(push);

    e.at(unmid);
    e.pstore(r7, H.pool + 16, r11);    // prev.next = successor
    e.jmp(push);

    e.at(push);                        // node onto the free list
    e.load(r11, r1, H.freeHead);
    e.pstore(r6, H.pool + 16, r11);
    e.pstore(r1, H.freeHead, r10);
    e.jmp(done);

    e.at(done);
    e.ret();
}

void
buildHashLookup(Emitter &e)
{
    HashOffs H(e);
    BasicBlock &entry = e.nb();
    BasicBlock &walk = e.nb();
    BasicBlock &chk = e.nb();
    BasicBlock &body = e.nb();
    BasicBlock &adv = e.nb();
    BasicBlock &found = e.nb();
    BasicBlock &done = e.nb();

    e.at(entry);                       // r4 = key
    emitHashBucket(e, H, 0);
    e.load(r10, r9, H.tbl);
    e.movi(r8, e.p.pool + 1);
    e.movi(r5, 0);                     // found value
    e.jmp(walk);

    e.at(walk);
    e.movi(r11, 0);
    e.br(Opcode::Beq, r10, r11, done, chk);

    e.at(chk);
    e.addi(r8, r8, -1);
    e.movi(r11, 0);
    e.br(Opcode::Beq, r8, r11, done, body);

    e.at(body);
    e.addi(r6, r10, -1);
    e.muli(r6, r6, 32);
    e.alu(Opcode::Add, r6, r6, r1);
    e.load(r11, r6, H.pool + 0);
    e.br(Opcode::Beq, r11, r4, found, adv);

    e.at(adv);
    e.load(r10, r6, H.pool + 16);
    e.jmp(walk);

    e.at(found);
    e.load(r5, r6, H.pool + 8);
    e.jmp(done);

    e.at(done);                        // result += found value
    e.load(r6, r1, e.off(e.p.result));
    e.alu(Opcode::Add, r6, r6, r5);
    e.pstore(r1, e.off(e.p.result), r6);
    e.ret();
}

void
buildHashResize(Emitter &e)
{
    HashOffs H(e);
    const std::int64_t tblStride = std::int64_t(e.p.buckets) * 8;

    BasicBlock &entry = e.nb();
    BasicBlock &grow = e.nb();
    BasicBlock &shrink = e.nb();
    BasicBlock &spill = e.nb();
    BasicBlock &outer = e.nb();
    BasicBlock &outbody = e.nb();
    BasicBlock &pophdr = e.nb();
    BasicBlock &popbody = e.nb();
    BasicBlock &outnext = e.nb();
    BasicBlock &fin = e.nb();

    e.at(entry);
    e.load(r6, r1, H.curTbl);
    e.load(r7, r1, H.mask);
    e.muli(r8, r6, tblStride);
    e.alu(Opcode::Add, r8, r8, r1);    // src tbl ptr
    e.movi(r9, 1);
    e.alu(Opcode::Sub, r9, r9, r6);    // dst index
    e.muli(r10, r9, tblStride);
    e.alu(Opcode::Add, r10, r10, r1);  // dst tbl ptr
    e.movi(r11, 0);
    e.br(Opcode::Beq, r6, r11, grow, shrink);

    e.at(grow);                        // mask: B-1 -> 2B-1
    e.muli(r11, r7, 2);
    e.addi(r11, r11, 1);
    e.jmp(spill);

    e.at(shrink);                      // mask: 2B-1 -> B-1
    e.movi(r4, 1);
    e.alu(Opcode::Shr, r11, r7, r4);
    e.jmp(spill);

    e.at(spill);                       // registers are tight: spill the
    e.store(r1, e.off(e.p.scratch0), r10);  // dst ptr + mask (plain
    e.store(r1, e.off(e.p.scratch1), r11);  // stores: rebuilt on replay)
    e.addi(r7, r7, 1);                 // src bucket count
    e.movi(r4, 0);                     // i
    e.jmp(outer);

    e.at(outer);
    e.br(Opcode::Bge, r4, r7, fin, outbody);

    e.at(outbody);
    e.muli(r5, r4, 8);
    e.alu(Opcode::Add, r5, r5, r8);    // src bucket ptr
    e.jmp(pophdr);

    e.at(pophdr);                      // pop head until bucket empty
    e.load(r6, r5, H.tbl);
    e.movi(r9, 0);
    e.br(Opcode::Beq, r6, r9, outnext, popbody);

    e.at(popbody);
    e.addi(r9, r6, -1);
    e.muli(r9, r9, 32);
    e.alu(Opcode::Add, r9, r9, r1);    // node ptr
    e.load(r10, r9, H.pool + 16);
    e.pstore(r5, H.tbl, r10);          // src bucket = node.next
    e.load(r10, r9, H.pool + 0);       // key
    e.movi(r11, hashMult);
    e.alu(Opcode::Mul, r10, r10, r11);
    e.load(r11, r1, e.off(e.p.scratch1));
    e.alu(Opcode::And, r10, r10, r11); // h' under the dst mask
    e.muli(r10, r10, 8);
    e.load(r11, r1, e.off(e.p.scratch0));
    e.alu(Opcode::Add, r10, r10, r11); // dst bucket ptr
    e.load(r11, r10, H.tbl);
    e.pstore(r9, H.pool + 16, r11);    // node.next = dst head
    e.pstore(r10, H.tbl, r6);          // dst bucket = idx1
    e.jmp(pophdr);

    e.at(outnext);
    e.addi(r4, r4, 1);
    e.jmp(outer);

    e.at(fin);                         // publish the new table
    e.load(r6, r1, H.curTbl);
    e.movi(r9, 1);
    e.alu(Opcode::Sub, r9, r9, r6);
    e.pstore(r1, H.curTbl, r9);
    e.load(r11, r1, e.off(e.p.scratch1));
    e.pstore(r1, H.mask, r11);
    e.ret();
}

// ---------------------------------------------------------------------------
// Allocator.

void
buildAllocAlloc(Emitter &e)
{
    AllocOffs A(e);
    BasicBlock &entry = e.nb();

    e.at(entry);                       // r4 = handle, r5 = payload
    e.load(r6, r1, A.freeHead);        // idx1 (tape guarantees != 0)
    e.addi(r7, r6, -1);
    e.muli(r7, r7, 16);
    e.alu(Opcode::Add, r7, r7, r1);    // block ptr
    e.load(r8, r7, A.blocks);
    e.pstore(r1, A.freeHead, r8);      // free head = block.next
    e.movi(r8, 0);
    e.pstore(r7, A.blocks, r8);        // block.next = 0 (allocated)
    e.pstore(r7, A.blocks + 8, r5);    // payload
    e.muli(r8, r4, 8);
    e.alu(Opcode::Add, r8, r8, r1);
    e.pstore(r8, A.handles, r6);       // handle -> idx1
    e.ret();
}

void
buildAllocFree(Emitter &e, unsigned broken)
{
    AllocOffs A(e);
    BasicBlock &entry = e.nb();

    e.at(entry);                       // r4 = handle
    e.muli(r8, r4, 8);
    e.alu(Opcode::Add, r8, r8, r1);    // handle ptr
    e.load(r6, r8, A.handles);         // idx1 (tape guarantees != 0)
    e.addi(r7, r6, -1);
    e.muli(r7, r7, 16);
    e.alu(Opcode::Add, r7, r7, r1);    // block ptr
    e.load(r9, r1, A.freeHead);
    e.pstore(r7, A.blocks, r9);        // block.next = free head
    e.pstore(r1, A.freeHead, r6);
    if (broken != 2) {
        // Seeded bug (broken==2): the handle keeps pointing at the
        // freed block — the oracle must flag the use-after-free alias.
        e.movi(r9, 0);
        e.pstore(r8, A.handles, r9);
    }
    e.ret();
}

// ---------------------------------------------------------------------------
// Driver.

void
buildDriver(Emitter &e, const PdsSpec &spec,
            const std::vector<FuncId> &opFns)
{
    const PdsParams &p = e.p;
    const std::int64_t tapeOff = e.off(p.tapeBase);

    BasicBlock &entry = e.nb();
    BasicBlock *rollhdr = nullptr, *rollbody = nullptr, *rolldone = nullptr;
    if (e.pmtx) {
        rollhdr = &e.nb();
        rollbody = &e.nb();
        rolldone = &e.nb();
    }
    BasicBlock &resume = e.nb();
    BasicBlock &loop = e.nb();
    BasicBlock &body = e.nb();
    std::vector<BasicBlock *> disp, callb;
    for (std::size_t i = 0; i + 1 < opFns.size(); ++i)
        disp.push_back(&e.nb());
    for (std::size_t i = 0; i < opFns.size(); ++i)
        callb.push_back(&e.nb());
    BasicBlock &opdone = e.nb();
    BasicBlock *commit = e.pmtx ? &e.nb() : nullptr;
    BasicBlock &exitb = e.nb();

    e.at(entry);
    e.movi(r1, p.base);
    if (e.pmtx) {
        // Recovery preamble: roll back any open transaction, newest
        // entry first, then resume from the (rolled-back) opsDone.
        e.load(r11, r1, e.off(p.undoCount));
        e.movi(r12, 0);
        e.br(Opcode::Beq, r11, r12, resume, *rollhdr);

        e.at(*rollhdr);
        e.movi(r12, 0);
        e.br(Opcode::Beq, r11, r12, *rolldone, *rollbody);

        e.at(*rollbody);
        e.addi(r11, r11, -1);
        e.muli(r12, r11, 16);
        e.alu(Opcode::Add, r12, r12, r1);
        e.load(r13, r12, e.off(p.undoBase));      // entry.addr
        e.load(r14, r12, e.off(p.undoBase) + 8);  // entry.old
        e.store(r13, 0, r14);
        e.jmp(*rollhdr);

        e.at(*rolldone);
        e.fence();                     // restores durable before clear
        e.movi(r12, 0);
        e.store(r1, e.off(p.undoCount), r12);
        e.fence();
        e.jmp(resume);
    } else {
        e.jmp(resume);
    }

    e.at(resume);
    e.load(r2, r1, e.off(p.opsDone));  // self-describing op cursor
    e.movi(r3, spec.numOps);
    e.jmp(loop);

    e.at(loop);
    e.br(Opcode::Bge, r2, r3, exitb, body);

    e.at(body);                        // decode tape[i]: op | a<<8, v
    e.muli(r6, r2, 16);
    e.alu(Opcode::Add, r6, r6, r1);
    e.load(r7, r6, tapeOff);
    e.load(r5, r6, tapeOff + 8);
    e.movi(r8, 8);
    e.alu(Opcode::Shr, r4, r7, r8);
    e.movi(r8, 0xffffff);
    e.alu(Opcode::And, r4, r4, r8);    // a
    e.movi(r8, 255);
    e.alu(Opcode::And, r7, r7, r8);    // op
    if (spec.broken == 1) {
        // Seeded ordering bug: the op counter commits before the op's
        // own stores — a crash between them yields an image that claims
        // an op it never performed (checkCrashPrefix must flag it).
        e.addi(r2, r2, 1);
        e.pstore(r1, e.off(p.opsDone), r2);
    }
    e.jmp(opFns.size() > 1 ? *disp[0] : *callb[0]);

    for (std::size_t i = 0; i + 1 < opFns.size(); ++i) {
        e.at(*disp[i]);
        e.movi(r8, i);
        BasicBlock &next =
            i + 2 < opFns.size() ? *disp[i + 1] : *callb[opFns.size() - 1];
        e.br(Opcode::Beq, r7, r8, *callb[i], next);
    }
    for (std::size_t i = 0; i < opFns.size(); ++i) {
        e.at(*callb[i]);
        e.call(opFns[i]);
        e.jmp(opdone);
    }

    e.at(opdone);
    if (spec.broken != 1) {
        e.addi(r2, r2, 1);
        e.pstore(r1, e.off(p.opsDone), r2);
    }
    // Served-op counter: exec-level, monotonic, never rolled back —
    // what the recovery-latency probe watches.
    e.load(r8, r1, e.off(p.served));
    e.addi(r8, r8, 1);
    e.store(r1, e.off(p.served), r8);
    if (e.pmtx) {
        if (spec.opsPerTx > 1) {
            e.movi(r8, spec.opsPerTx - 1);
            e.alu(Opcode::And, r8, r2, r8);
            e.movi(r9, 0);
            e.br(Opcode::Bne, r8, r9, loop, *commit);
        } else {
            e.jmp(*commit);
        }
        e.at(*commit);                 // tx stores durable, then clear
        e.fence();
        e.movi(r8, 0);
        e.store(r1, e.off(p.undoCount), r8);
        e.fence();
        e.jmp(loop);
    } else {
        e.jmp(loop);
    }

    e.at(exitb);
    if (e.pmtx) {
        e.fence();                     // commit a partial tail tx
        e.movi(r8, 0);
        e.store(r1, e.off(p.undoCount), r8);
        e.fence();
    }
    e.emit(Instruction::simple(Opcode::Halt));
}

PdsProgram
buildFromModel(const PdsModel &model, bool pmtx)
{
    const PdsSpec &spec = model.spec();
    PdsProgram out;
    out.params = model.params();

    auto mod = std::make_unique<ir::Module>();
    ir::Function &driver = mod->addFunction("main");

    std::vector<FuncId> opFns;
    switch (spec.kind) {
      case Kind::Log: {
        ir::Function &fa = mod->addFunction("log_append");
        ir::Function &ft = mod->addFunction("log_trim");
        opFns = {fa.id(), ft.id()};
        Emitter ea{fa, out.params, pmtx};
        buildLogAppend(ea, spec.broken);
        Emitter et{ft, out.params, pmtx};
        buildLogTrim(et);
        break;
      }
      case Kind::Hash: {
        ir::Function &fi = mod->addFunction("hash_insert");
        ir::Function &fd = mod->addFunction("hash_delete");
        ir::Function &fl = mod->addFunction("hash_lookup");
        ir::Function &fr = mod->addFunction("hash_resize");
        opFns = {fi.id(), fd.id(), fl.id(), fr.id()};
        Emitter ei{fi, out.params, pmtx};
        buildHashInsert(ei, spec.broken);
        Emitter ed{fd, out.params, pmtx};
        buildHashDelete(ed);
        Emitter el{fl, out.params, pmtx};
        buildHashLookup(el);
        Emitter er{fr, out.params, pmtx};
        buildHashResize(er);
        break;
      }
      case Kind::Alloc: {
        ir::Function &fa = mod->addFunction("alloc_alloc");
        ir::Function &ff = mod->addFunction("alloc_free");
        opFns = {fa.id(), ff.id()};
        Emitter ea{fa, out.params, pmtx};
        buildAllocAlloc(ea);
        Emitter ef{ff, out.params, pmtx};
        buildAllocFree(ef, spec.broken);
        break;
      }
    }

    Emitter ed{driver, out.params, pmtx};
    buildDriver(ed, spec, opFns);

    mod->initialData() = model.initialData();
    ir::verifyModuleOrDie(*mod);
    out.module = std::move(mod);

    std::ostringstream os;
    os << "pds:" << spec.toString() << (pmtx ? " [pmtx]" : "")
       << " footprint=" << out.params.footprintBytes;
    out.summary = os.str();
    return out;
}

} // namespace

PdsProgram
buildPdsProgram(const PdsSpec &spec, bool pmtx)
{
    PdsModel model(spec);
    return buildFromModel(model, pmtx);
}

PdsProgram
buildPdsProgram(const PdsSpec &spec, bool pmtx,
                const std::vector<PdsOp> &ops)
{
    PdsModel model(spec, ops);
    return buildFromModel(model, pmtx);
}

} // namespace pds
} // namespace lwsp
