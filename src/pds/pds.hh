/**
 * @file
 * Crash-consistent persistent data structures emitted as LightIR.
 *
 * Three real structures — an append-only log with LFS-style segment
 * reclaim, a chained hash table with ping-pong resize, and a free-list
 * allocator — are generated as single-threaded LightIR programs driven
 * by a precomputed operation tape, so the same workload runs unchanged
 * under every persistence scheme (LightWSP / Capri / PPA / cWSP) plus a
 * software-transaction baseline (`pmtx`, undo-log transactions in the
 * style of Persistent Memory Transactions, Marathe et al.).
 *
 * A C++ shadow model (PdsModel) transliterates the emitted IR store for
 * store, in program order. That gives the fuzzer two oracles that no
 * synthetic program has:
 *  - checkSemantics(): walk the structure in a memory image and compare
 *    its *live contents* against the shadow (log live multiset, table
 *    key/value map + bucket placement, allocator no-leak/no-double-free
 *    with payload integrity);
 *  - checkCrashPrefix(): a LightWSP crash image must equal the initial
 *    image plus a prefix of the recorded store stream cut at the
 *    self-described op counter (§III gated commit = store-stream prefix).
 *
 * Register convention for emitted programs (single thread, r0 = tid):
 *   r1  heap base (set once in the driver entry, preserved everywhere)
 *   r2  op index   r3  numOps        (driver-owned)
 *   r4  op arg a   r5  op arg v      (scratch inside op bodies)
 *   r6..r11        op-body scratch
 *   r12..r14       reserved for the pmtx undo-log store expansion; op
 *                  bodies never use them as store base/value or keep
 *                  values in them across an instrumented store
 *   r15 stack pointer
 */

#ifndef LWSP_PDS_PDS_HH
#define LWSP_PDS_PDS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/system_config.hh"
#include "compiler/compiler.hh"
#include "ir/program.hh"
#include "mem/mem_image.hh"

namespace lwsp {
namespace pds {

/** The three persistent structures. */
enum class Kind : std::uint8_t { Log, Hash, Alloc };

const char *kindName(Kind k);

/** Everything needed to regenerate a pds program deterministically. */
struct PdsSpec
{
    Kind kind = Kind::Hash;
    unsigned sizeClass = 1;   ///< 0 (tiny) / 1 (small) / 2 (medium)
    unsigned numOps = 128;    ///< operations on the tape
    unsigned mix = 0;         ///< op-mix preset, 0..2
    std::uint64_t seed = 1;   ///< tape RNG seed
    unsigned opsPerTx = 4;    ///< pmtx only: ops per transaction (pow2)
    unsigned broken = 0;      ///< 0 correct; 1 ordering bug; 2 semantic bug

    /**
     * Canonical one-token form, colon-free so it can ride inside a
     * fuzz replay spec: "hash,sz=1,ops=128,mix=0,pseed=1[,tx=K][,broken=N]"
     * (tx/broken omitted at their defaults).
     */
    std::string toString() const;
    static bool parse(const std::string &text, PdsSpec &out,
                      std::string &err);
};

/** Derived memory geometry (all addresses absolute, 8-byte aligned). */
struct PdsParams
{
    Addr base = 0;                 ///< heap base (thread 0)
    std::size_t footprintBytes = 0;

    // Control block.
    Addr opsDone = 0;    ///< +0   self-describing completed-op counter
    Addr undoCount = 0;  ///< +8   pmtx undo-log entry count
    Addr result = 0;     ///< +16  lookup accumulator (app state)
    Addr scratch0 = 0;   ///< +24  resize spill (not crash-relevant)
    Addr scratch1 = 0;   ///< +32
    Addr served = 0;     ///< +40  monotonic served-op counter (exec-level)

    Addr structBase = 0;
    Addr tapeBase = 0;   ///< 2 words per op: op|a<<8, value
    Addr undoBase = 0;   ///< pmtx undo area, placed last
    unsigned undoCap = 0;  ///< entries (16 B each)

    // Log geometry.
    unsigned segs = 0, slotsPerSeg = 0;
    // Hash geometry.
    unsigned buckets = 0, pool = 0;
    // Allocator geometry.
    unsigned blocks = 0, handles = 0;
};

/** One recorded persistent store of the shadow model. */
struct PdsWrite
{
    Addr addr = 0;
    std::uint64_t val = 0;
};

/**
 * One tape operation. Normally drawn by PdsModel's seeded
 * feasibility-aware generator; callers (the serve subsystem's request
 * compiler) may instead inject an externally lowered tape. Meanings of
 * (op, a, v) per Kind match the builder's dispatch table:
 *   Log:   0 append(value=v)  1 trim(count=a)
 *   Hash:  0 insert(key=a, value=v)  1 delete(key=a)  2 lookup(key=a)
 *          3 resize
 *   Alloc: 0 alloc(handle=a, payload=v)  1 free(handle=a)
 * `a` must fit in 24 bits — the tape word packs op | a<<8 and the
 * driver decodes a with a 0xffffff mask. Injected tapes must satisfy
 * the same feasibility invariants the generator maintains (e.g. hash
 * insert only of a non-live key with pool room); the injected-tape
 * constructor replays and asserts them, because the emitted IR carries
 * no precondition checks and an infeasible op corrupts memory silently.
 */
struct PdsOp
{
    unsigned op = 0;
    std::uint64_t a = 0;
    std::uint64_t v = 0;
};

/** Public tape op codes for injected-tape producers (PdsOp::op). */
constexpr unsigned pdsLogAppend = 0, pdsLogTrim = 1;
constexpr unsigned pdsHashInsert = 0, pdsHashDelete = 1,
                   pdsHashLookup = 2, pdsHashResize = 3;
constexpr unsigned pdsAllocAlloc = 0, pdsAllocFree = 1;

/**
 * Geometry-only derivation for @p spec (bucket/pool/segment counts and
 * control-block addresses). undoCap and footprintBytes are tape-
 * dependent and left unset here — use PdsModel::params() for those.
 */
PdsParams pdsGeometry(const PdsSpec &spec);

/**
 * The shadow model: generates the op tape (feasibility-aware, seeded)
 * and replays it store-for-store in the exact order the emitted IR
 * performs them, tracking both the concrete word state and the abstract
 * live contents the semantic oracles compare against.
 */
class PdsModel
{
  public:
    explicit PdsModel(const PdsSpec &spec);

    /**
     * Injected-tape variant: run @p ops instead of generating a tape.
     * spec.numOps is overridden to ops.size(); all other spec fields
     * (kind, sizeClass, opsPerTx, seed for toString) apply unchanged.
     * Feasibility of every op is asserted during the setup replay.
     */
    PdsModel(const PdsSpec &spec, const std::vector<PdsOp> &ops);

    const PdsSpec &spec() const { return spec_; }
    const PdsParams &params() const { return params_; }
    unsigned numOps() const { return spec_.numOps; }

    /** Tape words (2 per op), also emitted as module initial data. */
    const std::vector<std::uint64_t> &tape() const { return tape_; }

    /** Nonzero initial memory contents (structure init + tape). */
    std::vector<std::pair<Addr, std::uint64_t>> initialData() const;

    /** Restart the replay from the initial image. */
    void reset();

    /**
     * Apply the next op; @return its persistent stores in IR order
     * (structure stores, result/scratch stores, the trailing opsDone
     * update and the served-counter bump — everything the plain build
     * stores into the heap).
     */
    const std::vector<PdsWrite> &step();

    unsigned opsApplied() const { return applied_; }

    /** Concrete word state: initial data overlaid with applied stores. */
    std::uint64_t read(Addr a) const;

    // Abstract live contents (valid at the current replay position).
    /** Log: live id -> value (ids in [trimId, nextId)). */
    std::map<std::uint64_t, std::uint64_t> liveLog() const;
    /** Hash: live key -> value. */
    const std::map<std::uint64_t, std::uint64_t> &liveHash() const
    {
        return hashLive_;
    }
    /** Allocator: handle -> payload for allocated handles. */
    const std::map<std::uint64_t, std::uint64_t> &liveAlloc() const
    {
        return allocLive_;
    }

    /** Max instrumented stores in any opsPerTx window (sizes the undo
     *  area; computed during tape generation). */
    unsigned maxTxStores() const { return maxTxStores_; }

  private:
    using OpRec = PdsOp;

    void initStructure();
    void finishInit();
    void generateTape();
    void replayInjected();
    void applyOp(const OpRec &rec);
    void w(Addr a, std::uint64_t v, bool instrumented = true);
    std::uint64_t rd(Addr a) const { return read(a); }

    PdsSpec spec_;
    PdsParams params_;
    std::vector<std::uint64_t> tape_;
    std::vector<OpRec> ops_;

    std::map<Addr, std::uint64_t> init_;
    std::map<Addr, std::uint64_t> state_;
    unsigned applied_ = 0;
    std::vector<PdsWrite> lastWrites_;
    unsigned lastInstrumented_ = 0;
    unsigned maxTxStores_ = 0;

    // Abstract state (kept in lockstep with the concrete replay).
    std::map<std::uint64_t, std::uint64_t> logAll_;  ///< id -> value
    std::map<std::uint64_t, std::uint64_t> hashLive_;
    std::map<std::uint64_t, std::uint64_t> allocLive_;
};

/** A generated pds program ready for compilation. */
struct PdsProgram
{
    std::unique_ptr<ir::Module> module;
    PdsParams params;
    std::string summary;
};

/**
 * Emit the LightIR program for @p spec. With @p pmtx, every persistent
 * store is wrapped in the undo-log expansion, transactions of
 * spec.opsPerTx ops commit with a fence/clear/fence sequence, and the
 * driver entry carries the rollback-and-resume recovery preamble.
 */
PdsProgram buildPdsProgram(const PdsSpec &spec, bool pmtx);

/** Injected-tape variant (spec.numOps is overridden to ops.size()). */
PdsProgram buildPdsProgram(const PdsSpec &spec, bool pmtx,
                           const std::vector<PdsOp> &ops);

/**
 * Structure-walk semantic oracle against a *completed* image (clean
 * final state, or recovered-and-finished state): log live multiset,
 * hash key/value integrity + bucket placement + node accounting,
 * allocator no-leak/no-double-free + payload integrity.
 * @return "" on success, else a failure description.
 */
std::string checkSemantics(const PdsSpec &spec, const mem::MemImage &img);

/** Injected-tape variant of checkSemantics. */
std::string checkSemantics(const PdsSpec &spec,
                           const std::vector<PdsOp> &ops,
                           const mem::MemImage &img);

/**
 * Crash-image prefix-durability oracle (gated LightWSP images from
 * plain builds only): the image must equal initial-data + the recorded
 * store stream of the first C complete ops (C = the image's own opsDone
 * counter) + some prefix of op C's stores. Sound because the gated WPQ
 * commits whole regions in order, so PM is always a program-order
 * prefix of the store stream. @return "" on success.
 */
std::string checkCrashPrefix(const PdsSpec &spec, const mem::MemImage &img);

/** Injected-tape variant of checkCrashPrefix. */
std::string checkCrashPrefix(const PdsSpec &spec,
                             const std::vector<PdsOp> &ops,
                             const mem::MemImage &img);

/** The five schemes the pds benches compare (pmtx is software-only). */
enum class PdsScheme : std::uint8_t { LightWsp, Capri, Ppa, Cwsp, Pmtx };

const char *pdsSchemeName(PdsScheme s);

/**
 * Perf mode runs each scheme's faithful execution configuration (what
 * fig19 measures). Recovery mode is for crash/recover experiments:
 * capri/ppa/cwsp stand in their hardware checkpoint mechanisms with the
 * LightWSP-compiled binary + gated WPQ so recovery is exact, while
 * keeping their timing knobs — fig20 documents the substitution.
 */
enum class PdsRunMode : std::uint8_t { Perf, Recovery };

/** System configuration for running a pds program under @p s. */
core::SystemConfig makePdsConfig(PdsScheme s, PdsRunMode mode);

/** Baseline (no persistence) machine config for fig19 denominators. */
core::SystemConfig makePdsBaselineConfig();

/**
 * Build + prepare the binary for @p s in @p mode. storeThreshold feeds
 * the compiler for compiled schemes (0 = compiler default); for Pmtx
 * the program is the undo-log build run uncompiled (its fences are the
 * persistence points).
 */
compiler::CompiledProgram
preparePdsProgram(const PdsSpec &spec, PdsScheme s, PdsRunMode mode,
                  unsigned storeThreshold = 0);

/** Injected-tape variant of preparePdsProgram. */
compiler::CompiledProgram
preparePdsProgram(const PdsSpec &spec, const std::vector<PdsOp> &ops,
                  PdsScheme s, PdsRunMode mode,
                  unsigned storeThreshold = 0);

} // namespace pds
} // namespace lwsp

#endif // LWSP_PDS_PDS_HH
