/**
 * @file
 * Scheme/configuration plumbing for running pds programs: which binary
 * each scheme executes, on what machine, in perf vs recovery mode.
 */

#include "pds/pds.hh"

#include "common/logging.hh"

namespace lwsp {
namespace pds {

const char *
pdsSchemeName(PdsScheme s)
{
    switch (s) {
      case PdsScheme::LightWsp: return "lightwsp";
      case PdsScheme::Capri:    return "capri";
      case PdsScheme::Ppa:      return "ppa";
      case PdsScheme::Cwsp:     return "cwsp";
      case PdsScheme::Pmtx:     return "pmtx";
    }
    return "?";
}

namespace {

core::Scheme
machineScheme(PdsScheme s)
{
    switch (s) {
      case PdsScheme::LightWsp: return core::Scheme::LightWsp;
      case PdsScheme::Capri:    return core::Scheme::Capri;
      case PdsScheme::Ppa:      return core::Scheme::Ppa;
      case PdsScheme::Cwsp:     return core::Scheme::Cwsp;
      // pmtx persists through its own fences; the machine that honours
      // them as durability points is the stall-at-barrier config.
      case PdsScheme::Pmtx:     return core::Scheme::NaiveSfence;
    }
    return core::Scheme::LightWsp;
}

} // namespace

core::SystemConfig
makePdsConfig(PdsScheme s, PdsRunMode mode)
{
    core::SystemConfig cfg;
    cfg.scheme = machineScheme(s);
    cfg.numCores = 1;
    cfg.maxCycles = 400'000'000;
    cfg.applySchemeDefaults();
    if (mode == PdsRunMode::Recovery &&
        (s == PdsScheme::Capri || s == PdsScheme::Ppa ||
         s == PdsScheme::Cwsp)) {
        // Recovery mode substitutes the gated WPQ + compiled boundaries
        // for the schemes' (unmodelled) hardware checkpoint readers so
        // the recovered image is exact, while keeping each scheme's
        // timing knobs (drain derating, traffic amplification). The
        // boundary policy must move off HwImplicit with it: an implicit
        // region end waits for a full WPQ drain, which a gate held by
        // the current compiled region's open boundary can never grant.
        cfg.mc.gatingEnabled = true;
        cfg.core.boundaryPolicy = cpu::CoreConfig::BoundaryPolicy::Lazy;
    }
    return cfg;
}

core::SystemConfig
makePdsBaselineConfig()
{
    core::SystemConfig cfg;
    cfg.scheme = core::Scheme::Baseline;
    cfg.numCores = 1;
    cfg.maxCycles = 400'000'000;
    cfg.applySchemeDefaults();
    return cfg;
}

namespace {

compiler::CompiledProgram
prepareBuilt(PdsProgram prog, PdsScheme s, PdsRunMode mode,
             unsigned storeThreshold)
{
    const bool pmtx = s == PdsScheme::Pmtx;
    if (pmtx)
        return compiler::makeUncompiled(std::move(prog.module));

    const bool compiled =
        mode == PdsRunMode::Recovery || s == PdsScheme::LightWsp ||
        s == PdsScheme::Cwsp;
    if (!compiled) {
        // Perf mode for PPA/Capri: the original binary; regions are
        // implicit in hardware.
        return compiler::makeUncompiled(std::move(prog.module));
    }

    compiler::CompilerConfig ccfg;
    if (storeThreshold != 0)
        ccfg.storeThreshold = storeThreshold;
    if (mode == PdsRunMode::Perf && s == PdsScheme::Cwsp)
        ccfg.insertCheckpointStores = false;  // recovers by re-execution
    compiler::LightWspCompiler comp(ccfg);
    return comp.compile(std::move(prog.module));
}

} // namespace

compiler::CompiledProgram
preparePdsProgram(const PdsSpec &spec, PdsScheme s, PdsRunMode mode,
                  unsigned storeThreshold)
{
    return prepareBuilt(buildPdsProgram(spec, s == PdsScheme::Pmtx), s,
                        mode, storeThreshold);
}

compiler::CompiledProgram
preparePdsProgram(const PdsSpec &spec, const std::vector<PdsOp> &ops,
                  PdsScheme s, PdsRunMode mode, unsigned storeThreshold)
{
    return prepareBuilt(buildPdsProgram(spec, s == PdsScheme::Pmtx, ops),
                        s, mode, storeThreshold);
}

} // namespace pds
} // namespace lwsp
