/**
 * @file
 * PdsSpec canonical form, geometry derivation, feasibility-aware tape
 * generation, and the shadow model + semantic / crash-prefix oracles.
 *
 * The shadow's applyOp() transliterates builder.cc store for store, in
 * program order — the two files must change together (test_pds pins the
 * equivalence on clean runs; the fuzz campaign pins it across crash
 * cuts via checkCrashPrefix).
 */

#include "pds/pds.hh"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"
#include "workloads/generator.hh"

namespace lwsp {
namespace pds {

namespace {

// Per-size-class geometry. Kept deliberately small: these programs run
// under cycle-accurate simulation, and the structures' interesting
// behavior (reclaim, resize, free-list churn) shows up at tiny sizes.
struct Geometry
{
    unsigned logSegs, logSlots;
    unsigned hashBuckets, hashPool;
    unsigned allocBlocks;
};

constexpr Geometry geoTable[3] = {
    {4, 8, 8, 24, 16},
    {6, 16, 16, 64, 48},
    {8, 32, 32, 160, 128},
};

constexpr std::uint64_t hashMult = 2654435761ull;  // Knuth 2^32/phi

std::uint64_t
hashOf(std::uint64_t key, std::uint64_t mask)
{
    return (key * hashMult) & mask;
}

constexpr unsigned opLogAppend = 0, opLogTrim = 1;
constexpr unsigned opHashInsert = 0, opHashDelete = 1, opHashLookup = 2,
                   opHashResize = 3;
constexpr unsigned opAllocAlloc = 0, opAllocFree = 1;

} // namespace

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Log: return "log";
      case Kind::Hash: return "hash";
      case Kind::Alloc: return "alloc";
    }
    return "?";
}

std::string
PdsSpec::toString() const
{
    std::ostringstream os;
    os << kindName(kind) << ",sz=" << sizeClass << ",ops=" << numOps
       << ",mix=" << mix << ",pseed=" << seed;
    if (opsPerTx != 4)
        os << ",tx=" << opsPerTx;
    if (broken != 0)
        os << ",broken=" << broken;
    return os.str();
}

bool
PdsSpec::parse(const std::string &text, PdsSpec &out, std::string &err)
{
    PdsSpec spec;
    std::istringstream is(text);
    std::string tok;
    bool first = true;
    while (std::getline(is, tok, ',')) {
        if (first) {
            first = false;
            if (tok == "log") {
                spec.kind = Kind::Log;
            } else if (tok == "hash") {
                spec.kind = Kind::Hash;
            } else if (tok == "alloc") {
                spec.kind = Kind::Alloc;
            } else {
                err = "unknown pds kind '" + tok + "'";
                return false;
            }
            continue;
        }
        auto eq = tok.find('=');
        if (eq == std::string::npos) {
            err = "malformed pds field '" + tok + "'";
            return false;
        }
        std::string key = tok.substr(0, eq);
        std::uint64_t val = std::strtoull(tok.c_str() + eq + 1, nullptr, 10);
        if (key == "sz") {
            spec.sizeClass = static_cast<unsigned>(val);
        } else if (key == "ops") {
            spec.numOps = static_cast<unsigned>(val);
        } else if (key == "mix") {
            spec.mix = static_cast<unsigned>(val);
        } else if (key == "pseed") {
            spec.seed = val;
        } else if (key == "tx") {
            spec.opsPerTx = static_cast<unsigned>(val);
        } else if (key == "broken") {
            spec.broken = static_cast<unsigned>(val);
        } else {
            err = "unknown pds key '" + key + "'";
            return false;
        }
    }
    if (first) {
        err = "empty pds spec";
        return false;
    }
    if (spec.sizeClass > 2) {
        err = "pds sz out of range";
        return false;
    }
    if (spec.mix > 2) {
        err = "pds mix out of range";
        return false;
    }
    if (spec.numOps < 1 || spec.numOps > 100000) {
        err = "pds ops out of range";
        return false;
    }
    if (spec.opsPerTx == 0 || (spec.opsPerTx & (spec.opsPerTx - 1)) != 0 ||
        spec.opsPerTx > 64) {
        err = "pds tx must be a power of two <= 64";
        return false;
    }
    if (spec.broken > 2) {
        err = "pds broken out of range";
        return false;
    }
    out = spec;
    return true;
}

// ---------------------------------------------------------------------------
// Geometry.

namespace {

PdsParams
deriveBaseParams(const PdsSpec &spec)
{
    const Geometry &g = geoTable[spec.sizeClass];
    PdsParams p;
    p.base = workloads::Workload::heapBase;
    p.opsDone = p.base + 0;
    p.undoCount = p.base + 8;
    p.result = p.base + 16;
    p.scratch0 = p.base + 24;
    p.scratch1 = p.base + 32;
    p.served = p.base + 40;
    p.structBase = p.base + 0x40;

    std::size_t structWords = 0;
    switch (spec.kind) {
      case Kind::Log:
        p.segs = g.logSegs;
        p.slotsPerSeg = g.logSlots;
        structWords = 4 + std::size_t(p.segs) * (1 + p.slotsPerSeg);
        break;
      case Kind::Hash:
        p.buckets = g.hashBuckets;
        p.pool = g.hashPool;
        structWords = 4 + 3 * std::size_t(p.buckets) + 4 * p.pool;
        break;
      case Kind::Alloc:
        p.blocks = g.allocBlocks;
        p.handles = g.allocBlocks;
        structWords = 1 + 2 * std::size_t(p.blocks) + p.handles;
        break;
    }
    std::size_t structBytes = (structWords * 8 + 63) & ~std::size_t(63);
    p.tapeBase = p.structBase + structBytes;
    p.undoBase = p.tapeBase + std::size_t(spec.numOps) * 16;
    // undoCap filled in once the tape (and so the worst tx) is known.
    return p;
}

// Log cell addresses.
Addr logCurSeg(const PdsParams &p) { return p.structBase + 0; }
Addr logCurOff(const PdsParams &p) { return p.structBase + 8; }
Addr logTrimId(const PdsParams &p) { return p.structBase + 16; }
Addr logNextId(const PdsParams &p) { return p.structBase + 24; }
Addr
logSegUsed(const PdsParams &p, unsigned s)
{
    return p.structBase + 32 + Addr(s) * (p.slotsPerSeg + 1) * 8;
}
Addr
logSegEntry(const PdsParams &p, unsigned s, unsigned j)
{
    return logSegUsed(p, s) + 8 + Addr(j) * 8;
}

// Hash cell addresses.
Addr hashCurTbl(const PdsParams &p) { return p.structBase + 0; }
Addr hashMask(const PdsParams &p) { return p.structBase + 8; }
Addr hashFree(const PdsParams &p) { return p.structBase + 16; }
Addr hashBump(const PdsParams &p) { return p.structBase + 24; }
Addr
hashTbl(const PdsParams &p, unsigned t)
{
    return p.structBase + 32 + Addr(t) * p.buckets * 8;
}
Addr
hashBucket(const PdsParams &p, unsigned t, std::uint64_t h)
{
    return hashTbl(p, t) + h * 8;
}
Addr
hashNode(const PdsParams &p, std::uint64_t idx)
{
    return p.structBase + 32 + Addr(3) * p.buckets * 8 + idx * 32;
}

// Allocator cell addresses.
Addr allocFreeHead(const PdsParams &p) { return p.structBase + 0; }
Addr
allocBlock(const PdsParams &p, std::uint64_t idx)
{
    return p.structBase + 8 + idx * 16;
}
Addr
allocHandle(const PdsParams &p, std::uint64_t h)
{
    return p.structBase + 8 + Addr(p.blocks) * 16 + h * 8;
}

} // namespace

PdsParams
pdsGeometry(const PdsSpec &spec)
{
    return deriveBaseParams(spec);
}

// ---------------------------------------------------------------------------
// PdsModel.

PdsModel::PdsModel(const PdsSpec &spec) : spec_(spec)
{
    initStructure();
    generateTape();
    finishInit();
}

PdsModel::PdsModel(const PdsSpec &spec, const std::vector<PdsOp> &ops)
    : spec_(spec)
{
    LWSP_ASSERT(!ops.empty() && ops.size() <= 100000,
                "injected pds tape size out of range");
    spec_.numOps = static_cast<unsigned>(ops.size());
    initStructure();
    ops_ = ops;
    replayInjected();
    finishInit();
}

void
PdsModel::initStructure()
{
    params_ = deriveBaseParams(spec_);

    // Nonzero initial data only (absent words read as zero).
    switch (spec_.kind) {
      case Kind::Log:
        init_[logNextId(params_)] = 1;
        break;
      case Kind::Hash:
        init_[hashMask(params_)] = params_.buckets - 1;
        break;
      case Kind::Alloc:
        init_[allocFreeHead(params_)] = 1;
        for (unsigned i = 0; i + 1 < params_.blocks; ++i)
            init_[allocBlock(params_, i)] = i + 2;
        break;
    }
}

void
PdsModel::finishInit()
{
    for (unsigned i = 0; i < spec_.numOps; ++i) {
        tape_.push_back(ops_[i].op | (ops_[i].a << 8));
        tape_.push_back(ops_[i].v);
    }
    for (unsigned i = 0; i < tape_.size(); ++i) {
        if (tape_[i])
            init_[params_.tapeBase + Addr(i) * 8] = tape_[i];
    }

    params_.undoCap = maxTxStores_ + 4;
    std::size_t end =
        params_.undoBase + std::size_t(params_.undoCap) * 16 - params_.base;
    params_.footprintBytes = (end + 63) & ~std::size_t(63);

    reset();
}

/**
 * Replay an injected tape forward (mirrors generateTape's replay loop):
 * asserts each op's feasibility invariant — the emitted IR has no
 * precondition checks, so an infeasible op writes outside the structure
 * — and accumulates maxTxStores_ for the pmtx undo-area sizing.
 */
void
PdsModel::replayInjected()
{
    const PdsParams &p = params_;
    unsigned txStores = 0;
    for (unsigned i = 0; i < spec_.numOps; ++i) {
        const OpRec &rec = ops_[i];
        LWSP_ASSERT(rec.a <= 0xffffffull,
                    "injected pds op arg exceeds the 24-bit tape field");
        switch (spec_.kind) {
          case Kind::Log:
            LWSP_ASSERT(rec.op <= opLogTrim, "bad injected log op");
            if (rec.op == opLogAppend) {
                std::uint64_t off = read(logCurOff(p));
                if (off >= p.slotsPerSeg) {
                    std::uint64_t seg = read(logCurSeg(p));
                    seg = seg + 1 == p.segs ? 0 : seg + 1;
                    std::uint64_t u = read(logSegUsed(p, unsigned(seg)));
                    std::uint64_t trim = read(logTrimId(p));
                    std::uint64_t kept = 0;
                    for (std::uint64_t j = 0; j < u; ++j) {
                        if ((read(logSegEntry(p, unsigned(seg),
                                              unsigned(j))) >>
                             32) >= trim)
                            ++kept;
                    }
                    LWSP_ASSERT(kept < p.slotsPerSeg,
                                "injected log append into a full log");
                }
            }
            break;
          case Kind::Hash:
            LWSP_ASSERT(rec.op <= opHashResize, "bad injected hash op");
            if (rec.op == opHashInsert) {
                LWSP_ASSERT(rec.a != 0, "injected hash insert of key 0");
                LWSP_ASSERT(!hashLive_.count(rec.a),
                            "injected hash insert of a live key ", rec.a);
                LWSP_ASSERT(hashLive_.size() < p.pool,
                            "injected hash insert with node pool full");
            }
            break;
          case Kind::Alloc:
            LWSP_ASSERT(rec.op <= opAllocFree, "bad injected alloc op");
            LWSP_ASSERT(rec.a < p.handles,
                        "injected alloc handle out of range");
            if (rec.op == opAllocAlloc) {
                LWSP_ASSERT(read(allocFreeHead(p)) != 0 &&
                                !allocLive_.count(rec.a),
                            "injected alloc with no free block or live "
                            "handle ", rec.a);
            } else {
                LWSP_ASSERT(allocLive_.count(rec.a),
                            "injected free of unallocated handle ", rec.a);
            }
            break;
        }

        lastWrites_.clear();
        lastInstrumented_ = 0;
        applyOp(rec);
        ++applied_;
        w(p.opsDone, applied_);
        w(p.served, read(p.served) + 1, false);

        txStores += lastInstrumented_;
        if ((i + 1) % spec_.opsPerTx == 0 || i + 1 == spec_.numOps) {
            maxTxStores_ = std::max(maxTxStores_, txStores);
            txStores = 0;
        }
    }
}

std::vector<std::pair<Addr, std::uint64_t>>
PdsModel::initialData() const
{
    std::vector<std::pair<Addr, std::uint64_t>> out(init_.begin(),
                                                    init_.end());
    return out;
}

void
PdsModel::reset()
{
    state_.clear();
    applied_ = 0;
    lastWrites_.clear();
    logAll_.clear();
    hashLive_.clear();
    allocLive_.clear();
}

std::uint64_t
PdsModel::read(Addr a) const
{
    auto it = state_.find(a);
    if (it != state_.end())
        return it->second;
    auto ii = init_.find(a);
    return ii != init_.end() ? ii->second : 0;
}

void
PdsModel::w(Addr a, std::uint64_t v, bool instrumented)
{
    state_[a] = v;
    lastWrites_.push_back({a, v});
    if (instrumented)
        ++lastInstrumented_;
}

const std::vector<PdsWrite> &
PdsModel::step()
{
    LWSP_ASSERT(applied_ < spec_.numOps, "PdsModel::step past tape end");
    lastWrites_.clear();
    lastInstrumented_ = 0;
    applyOp(ops_[applied_]);
    ++applied_;
    // The driver epilogue: opsDone (instrumented), then the exec-level
    // served counter (plain store, not undo-logged).
    w(params_.opsDone, applied_);
    w(params_.served, read(params_.served) + 1, /*instrumented=*/false);
    return lastWrites_;
}

std::map<std::uint64_t, std::uint64_t>
PdsModel::liveLog() const
{
    std::map<std::uint64_t, std::uint64_t> out;
    std::uint64_t trim = read(logTrimId(params_));
    std::uint64_t next = read(logNextId(params_));
    for (std::uint64_t id = trim; id < next; ++id)
        out[id] = logAll_.at(id);
    return out;
}

/**
 * Apply one op, recording stores in the exact order builder.cc emits
 * them. Comments name the builder blocks each group corresponds to.
 */
void
PdsModel::applyOp(const OpRec &rec)
{
    const PdsParams &p = params_;
    switch (spec_.kind) {
      case Kind::Log:
        if (rec.op == opLogAppend) {
            std::uint64_t seg = read(logCurSeg(p));
            std::uint64_t off = read(logCurOff(p));
            if (off >= p.slotsPerSeg) {           // advance + reclaim
                seg = seg + 1 == p.segs ? 0 : seg + 1;
                w(logCurSeg(p), seg);
                std::uint64_t u = read(logSegUsed(p, unsigned(seg)));
                std::uint64_t trim = read(logTrimId(p));
                std::uint64_t wi = 0;
                for (std::uint64_t j = 0; j < u; ++j) {
                    std::uint64_t e =
                        read(logSegEntry(p, unsigned(seg), unsigned(j)));
                    if ((e >> 32) >= trim) {
                        w(logSegEntry(p, unsigned(seg), unsigned(wi)), e);
                        ++wi;
                    }
                }
                w(logSegUsed(p, unsigned(seg)), wi);
                w(logCurOff(p), wi);
                off = wi;
            }
            std::uint64_t id = read(logNextId(p));
            std::uint64_t e = (id << 32) | rec.v;
            w(logSegEntry(p, unsigned(seg), unsigned(off)), e);
            w(logSegUsed(p, unsigned(seg)), off + 1);
            w(logCurOff(p), off + 1);
            w(logNextId(p), id + 1);
            logAll_[id] = rec.v;
        } else {                                   // trim
            std::uint64_t t = read(logTrimId(p)) + rec.a;
            std::uint64_t next = read(logNextId(p));
            if (t >= next)
                t = next;
            w(logTrimId(p), t);
        }
        break;

      case Kind::Hash: {
        unsigned t = unsigned(read(hashCurTbl(p)));
        std::uint64_t m = read(hashMask(p));
        if (rec.op == opHashInsert) {
            std::uint64_t h = hashOf(rec.a, m);
            std::uint64_t f = read(hashFree(p));
            std::uint64_t idx1;
            if (f != 0) {                          // pop free list
                idx1 = f;
                w(hashFree(p), read(hashNode(p, f - 1) + 16));
            } else {                               // bump allocation
                std::uint64_t b = read(hashBump(p));
                w(hashBump(p), b + 1);
                idx1 = b + 1;
            }
            Addr np = hashNode(p, idx1 - 1);
            w(np + 0, rec.a);
            w(np + 8, rec.v);
            w(np + 16, read(hashBucket(p, t, h)));
            w(hashBucket(p, t, h), idx1);
            hashLive_[rec.a] = rec.v;
        } else if (rec.op == opHashDelete) {
            std::uint64_t h = hashOf(rec.a, m);
            std::uint64_t cur = read(hashBucket(p, t, h));
            Addr prev = 0;
            while (cur != 0) {
                Addr np = hashNode(p, cur - 1);
                if (read(np + 0) == rec.a) {
                    std::uint64_t nxt = read(np + 16);
                    if (prev == 0)
                        w(hashBucket(p, t, h), nxt);
                    else
                        w(prev + 16, nxt);
                    w(np + 16, read(hashFree(p)));
                    w(hashFree(p), cur);
                    hashLive_.erase(rec.a);
                    break;
                }
                prev = np;
                cur = read(np + 16);
            }
        } else if (rec.op == opHashLookup) {
            std::uint64_t h = hashOf(rec.a, m);
            std::uint64_t cur = read(hashBucket(p, t, h));
            std::uint64_t found = 0;
            while (cur != 0) {
                Addr np = hashNode(p, cur - 1);
                if (read(np + 0) == rec.a) {
                    found = read(np + 8);
                    break;
                }
                cur = read(np + 16);
            }
            w(p.result, read(p.result) + found);
        } else {                                   // resize
            unsigned d = 1 - t;
            std::uint64_t dm = t == 0 ? 2 * m + 1 : m >> 1;
            w(p.scratch0, p.base + Addr(d) * p.buckets * 8,
              /*instrumented=*/false);
            w(p.scratch1, dm, /*instrumented=*/false);
            for (std::uint64_t i = 0; i <= m; ++i) {
                std::uint64_t h0;
                while ((h0 = read(hashBucket(p, t, i))) != 0) {
                    Addr np = hashNode(p, h0 - 1);
                    w(hashBucket(p, t, i), read(np + 16));
                    std::uint64_t h2 = hashOf(read(np + 0), dm);
                    w(np + 16, read(hashBucket(p, d, h2)));
                    w(hashBucket(p, d, h2), h0);
                }
            }
            w(hashCurTbl(p), d);
            w(hashMask(p), dm);
        }
        break;
      }

      case Kind::Alloc:
        if (rec.op == opAllocAlloc) {
            std::uint64_t idx1 = read(allocFreeHead(p));
            Addr bp = allocBlock(p, idx1 - 1);
            w(allocFreeHead(p), read(bp + 0));
            w(bp + 0, 0);
            w(bp + 8, rec.v);
            w(allocHandle(p, rec.a), idx1);
            allocLive_[rec.a] = rec.v;
        } else {                                   // free
            std::uint64_t idx1 = read(allocHandle(p, rec.a));
            Addr bp = allocBlock(p, idx1 - 1);
            w(bp + 0, read(allocFreeHead(p)));
            w(allocFreeHead(p), idx1);
            w(allocHandle(p, rec.a), 0);
            allocLive_.erase(rec.a);
        }
        break;
    }
}

/**
 * Tape generation: draw op types from the mix preset, overriding
 * infeasible choices (full log, exhausted pool, empty free list...)
 * with a feasible one so the emitted IR needs no precondition checks.
 * Runs the shadow forward as it draws, then reset() rewinds.
 */
void
PdsModel::generateTape()
{
    Rng rng(spec_.seed ^ 0x7064732d74617065ull);  // "pds-tape"
    const PdsParams &p = params_;

    unsigned txStores = 0;
    for (unsigned i = 0; i < spec_.numOps; ++i) {
        OpRec rec{0, 0, 0};
        switch (spec_.kind) {
          case Kind::Log: {
            static constexpr unsigned appendPct[3] = {85, 70, 95};
            bool wantAppend = rng.below(100) < appendPct[spec_.mix];
            bool canAppend = true;
            std::uint64_t off = read(logCurOff(p));
            if (off >= p.slotsPerSeg) {
                std::uint64_t seg = read(logCurSeg(p));
                seg = seg + 1 == p.segs ? 0 : seg + 1;
                std::uint64_t u = read(logSegUsed(p, unsigned(seg)));
                std::uint64_t trim = read(logTrimId(p));
                std::uint64_t kept = 0;
                for (std::uint64_t j = 0; j < u; ++j) {
                    if ((read(logSegEntry(p, unsigned(seg), unsigned(j))) >>
                         32) >= trim)
                        ++kept;
                }
                canAppend = kept < p.slotsPerSeg;
            }
            if (wantAppend && canAppend) {
                rec = {opLogAppend, 0, rng.next() & 0xffffffffull};
            } else {
                std::uint64_t live =
                    read(logNextId(p)) - read(logTrimId(p));
                std::uint64_t n = wantAppend
                                      ? std::max<std::uint64_t>(
                                            1, (live + 3) / 4)
                                      : rng.range(1, p.slotsPerSeg);
                rec = {opLogTrim, n, 0};
            }
            break;
          }
          case Kind::Hash: {
            // ins / del / lookup / resize percent per mix.
            static constexpr unsigned cut[3][3] = {
                {40, 65, 98}, {20, 30, 98}, {45, 90, 99}};
            unsigned roll = unsigned(rng.below(100));
            unsigned want = roll < cut[spec_.mix][0]      ? opHashInsert
                            : roll < cut[spec_.mix][1]    ? opHashDelete
                            : roll < cut[spec_.mix][2]    ? opHashLookup
                                                          : opHashResize;
            std::uint64_t universe = 2 * std::uint64_t(p.pool);
            if (want == opHashInsert && hashLive_.size() >= p.pool)
                want = hashLive_.empty() ? opHashResize : opHashLookup;
            if ((want == opHashDelete || want == opHashLookup) &&
                hashLive_.empty())
                want = opHashInsert;
            if (want == opHashInsert) {
                std::uint64_t k = 0;
                do {
                    k = 1 + rng.below(universe);
                } while (hashLive_.count(k));
                rec = {opHashInsert, k, rng.next() & 0xffffffffull};
            } else if (want == opHashDelete || want == opHashLookup) {
                auto it = hashLive_.begin();
                std::advance(it, long(rng.below(hashLive_.size())));
                rec = {want, it->first, 0};
            } else {
                rec = {opHashResize, 0, 0};
            }
            break;
          }
          case Kind::Alloc: {
            static constexpr unsigned allocPct[3] = {55, 70, 50};
            bool wantAlloc = rng.below(100) < allocPct[spec_.mix];
            bool canAlloc = read(allocFreeHead(p)) != 0 &&
                            allocLive_.size() < p.handles;
            bool canFree = !allocLive_.empty();
            unsigned op = wantAlloc ? (canAlloc ? opAllocAlloc : opAllocFree)
                                    : (canFree ? opAllocFree : opAllocAlloc);
            if (op == opAllocAlloc) {
                std::uint64_t h = 0;
                do {
                    h = rng.below(p.handles);
                } while (allocLive_.count(h));
                rec = {opAllocAlloc, h, rng.next() & 0xffffffffull};
            } else {
                auto it = allocLive_.begin();
                std::advance(it, long(rng.below(allocLive_.size())));
                rec = {opAllocFree, it->first, 0};
            }
            break;
          }
        }
        ops_.push_back(rec);

        lastWrites_.clear();
        lastInstrumented_ = 0;
        applyOp(rec);
        ++applied_;
        w(p.opsDone, applied_);
        w(p.served, read(p.served) + 1, false);

        txStores += lastInstrumented_;
        if ((i + 1) % spec_.opsPerTx == 0 || i + 1 == spec_.numOps) {
            maxTxStores_ = std::max(maxTxStores_, txStores);
            txStores = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// Semantic oracle.

namespace {

std::string
failMsg(const PdsSpec &spec, const std::string &what)
{
    return std::string("pds semantic check [") + spec.toString() + "]: " +
           what;
}

} // namespace

namespace {

std::string
checkSemanticsModel(PdsModel &model, const mem::MemImage &img)
{
    const PdsSpec &spec = model.spec();
    while (model.opsApplied() < model.numOps())
        model.step();
    const PdsParams &p = model.params();

    std::uint64_t done = img.read(p.opsDone);
    if (done != spec.numOps) {
        std::ostringstream os;
        os << "opsDone=" << done << " expected " << spec.numOps;
        return failMsg(spec, os.str());
    }

    std::ostringstream os;
    switch (spec.kind) {
      case Kind::Log: {
        std::uint64_t trim = img.read(logTrimId(p));
        std::uint64_t next = img.read(logNextId(p));
        auto expect = model.liveLog();
        std::map<std::uint64_t, std::uint64_t> got;
        for (unsigned s = 0; s < p.segs; ++s) {
            std::uint64_t u = img.read(logSegUsed(p, s));
            if (u > p.slotsPerSeg) {
                os << "seg " << s << " used " << u << " > " << p.slotsPerSeg;
                return failMsg(spec, os.str());
            }
            for (unsigned j = 0; j < u; ++j) {
                std::uint64_t e = img.read(logSegEntry(p, s, j));
                std::uint64_t id = e >> 32;
                if (id < trim || id >= next)
                    continue;  // dead residue awaiting reclaim
                if (got.count(id)) {
                    os << "duplicate live id " << id;
                    return failMsg(spec, os.str());
                }
                got[id] = e & 0xffffffffull;
            }
        }
        if (got != expect) {
            os << "live log multiset mismatch (" << got.size() << " vs "
               << expect.size() << " live entries)";
            return failMsg(spec, os.str());
        }
        break;
      }

      case Kind::Hash: {
        std::uint64_t t = img.read(hashCurTbl(p));
        std::uint64_t m = img.read(hashMask(p));
        if (t > 1) {
            os << "curTbl=" << t;
            return failMsg(spec, os.str());
        }
        std::uint64_t wantMask = t == 0 ? p.buckets - 1 : 2 * p.buckets - 1;
        if (m != wantMask) {
            os << "mask=" << m << " expected " << wantMask;
            return failMsg(spec, os.str());
        }
        std::map<std::uint64_t, std::uint64_t> got;
        std::set<std::uint64_t> liveNodes;
        for (std::uint64_t b = 0; b <= m; ++b) {
            std::uint64_t cur = img.read(hashBucket(p, unsigned(t), b));
            unsigned bound = p.pool + 1;
            while (cur != 0) {
                if (bound-- == 0) {
                    os << "bucket " << b << " chain cycle/overrun";
                    return failMsg(spec, os.str());
                }
                if (cur > p.pool) {
                    os << "bucket " << b << " node index " << cur
                       << " out of pool";
                    return failMsg(spec, os.str());
                }
                Addr np = hashNode(p, cur - 1);
                std::uint64_t k = img.read(np + 0);
                if (hashOf(k, m) != b) {
                    os << "key " << k << " in wrong bucket " << b;
                    return failMsg(spec, os.str());
                }
                if (!liveNodes.insert(cur).second || got.count(k)) {
                    os << "node/key " << k << " linked twice";
                    return failMsg(spec, os.str());
                }
                got[k] = img.read(np + 8);
                cur = img.read(np + 16);
            }
        }
        if (got != model.liveHash()) {
            os << "live key/value map mismatch (" << got.size() << " vs "
               << model.liveHash().size() << " keys)";
            return failMsg(spec, os.str());
        }
        // Node conservation: free list + live chains = bump allocation.
        std::uint64_t bump = img.read(hashBump(p));
        if (bump > p.pool) {
            os << "bump " << bump << " > pool";
            return failMsg(spec, os.str());
        }
        std::set<std::uint64_t> freeNodes;
        std::uint64_t cur = img.read(hashFree(p));
        unsigned bound = p.pool + 1;
        while (cur != 0) {
            if (bound-- == 0 || cur > p.pool) {
                os << "free list cycle/overrun";
                return failMsg(spec, os.str());
            }
            if (liveNodes.count(cur) || !freeNodes.insert(cur).second) {
                os << "node " << cur << " both free and live (or twice free)";
                return failMsg(spec, os.str());
            }
            cur = img.read(hashNode(p, cur - 1) + 16);
        }
        if (freeNodes.size() + liveNodes.size() != bump) {
            os << "node leak: free " << freeNodes.size() << " + live "
               << liveNodes.size() << " != bump " << bump;
            return failMsg(spec, os.str());
        }
        break;
      }

      case Kind::Alloc: {
        std::set<std::uint64_t> freeBlocks;
        std::uint64_t cur = img.read(allocFreeHead(p));
        unsigned bound = p.blocks + 1;
        while (cur != 0) {
            if (bound-- == 0 || cur > p.blocks) {
                os << "free list cycle/overrun";
                return failMsg(spec, os.str());
            }
            if (!freeBlocks.insert(cur).second) {
                os << "block " << cur << " twice on free list";
                return failMsg(spec, os.str());
            }
            cur = img.read(allocBlock(p, cur - 1) + 0);
        }
        std::map<std::uint64_t, std::uint64_t> got;
        std::set<std::uint64_t> usedBlocks;
        for (unsigned h = 0; h < p.handles; ++h) {
            std::uint64_t idx1 = img.read(allocHandle(p, h));
            if (idx1 == 0)
                continue;
            if (idx1 > p.blocks) {
                os << "handle " << h << " block " << idx1 << " out of range";
                return failMsg(spec, os.str());
            }
            if (freeBlocks.count(idx1)) {
                os << "handle " << h << " points at freed block " << idx1
                   << " (double free / use after free)";
                return failMsg(spec, os.str());
            }
            if (!usedBlocks.insert(idx1).second) {
                os << "block " << idx1 << " aliased by two handles";
                return failMsg(spec, os.str());
            }
            got[h] = img.read(allocBlock(p, idx1 - 1) + 8);
        }
        if (got != model.liveAlloc()) {
            os << "allocated handle/payload map mismatch (" << got.size()
               << " vs " << model.liveAlloc().size() << ")";
            return failMsg(spec, os.str());
        }
        if (freeBlocks.size() + usedBlocks.size() != p.blocks) {
            os << "block leak: free " << freeBlocks.size() << " + used "
               << usedBlocks.size() << " != " << p.blocks;
            return failMsg(spec, os.str());
        }
        break;
      }
    }
    return "";
}

} // namespace

std::string
checkSemantics(const PdsSpec &spec, const mem::MemImage &img)
{
    PdsModel model(spec);
    return checkSemanticsModel(model, img);
}

std::string
checkSemantics(const PdsSpec &spec, const std::vector<PdsOp> &ops,
               const mem::MemImage &img)
{
    PdsModel model(spec, ops);
    return checkSemanticsModel(model, img);
}

// ---------------------------------------------------------------------------
// Crash-prefix oracle.

namespace {

std::string
checkCrashPrefixModel(PdsModel &model, const mem::MemImage &img)
{
    const PdsSpec &spec = model.spec();
    const PdsParams &p = model.params();
    std::size_t words = p.footprintBytes / 8;

    std::uint64_t done = img.read(p.opsDone);
    if (done > spec.numOps) {
        std::ostringstream os;
        os << "pds crash-prefix [" << spec.toString() << "]: opsDone "
           << done << " > numOps " << spec.numOps;
        return os.str();
    }

    // Materialize the image's heap window once.
    std::vector<std::uint64_t> got(words);
    for (std::size_t i = 0; i < words; ++i)
        got[i] = img.read(p.base + Addr(i) * 8);

    // Candidate = initial data + all stores of the first `done` ops.
    std::vector<std::uint64_t> cand(words, 0);
    for (const auto &kv : model.initialData())
        cand[(kv.first - p.base) / 8] = kv.second;
    model.reset();
    for (unsigned i = 0; i < done; ++i) {
        for (const PdsWrite &wr : model.step())
            cand[(wr.addr - p.base) / 8] = wr.val;
    }

    if (cand == got)
        return "";  // cut exactly at the op boundary

    if (done < spec.numOps) {
        // Try every store-stream cut inside op `done` (the gated WPQ
        // commits region prefixes; the op's own opsDone update cannot
        // have committed or the counter would read done+1).
        const auto &writes = model.step();
        for (std::size_t j = 0; j < writes.size(); ++j) {
            cand[(writes[j].addr - p.base) / 8] = writes[j].val;
            if (cand == got)
                return "";
        }
    }

    std::ostringstream os;
    os << "pds crash-prefix [" << spec.toString() << "]: PM image is not "
       << "initial+prefix of the store stream at opsDone=" << done;
    return os.str();
}

} // namespace

std::string
checkCrashPrefix(const PdsSpec &spec, const mem::MemImage &img)
{
    PdsModel model(spec);
    return checkCrashPrefixModel(model, img);
}

std::string
checkCrashPrefix(const PdsSpec &spec, const std::vector<PdsOp> &ops,
                 const mem::MemImage &img)
{
    PdsModel model(spec, ops);
    return checkCrashPrefixModel(model, img);
}

} // namespace pds
} // namespace lwsp
