/**
 * @file
 * The interface between functional execution and the timing model.
 *
 * The interpreter executes instructions functionally (in program order,
 * at dispatch) and hands the timing core one ExecRecord per instruction:
 * operand registers for dependence tracking, latency class, memory
 * address, persist-path payload and region tag. The timing model never
 * needs to recompute values.
 */

#ifndef LWSP_CPU_EXEC_RECORD_HH
#define LWSP_CPU_EXEC_RECORD_HH

#include <cstdint>

#include "common/types.hh"
#include "compiler/liveness.hh"
#include "ir/opcode.hh"

namespace lwsp {
namespace cpu {

/** Boundary-site sentinel written to the PC slot when a thread halts. */
constexpr std::uint32_t haltSite = 0xffff'ffffu;

struct ExecRecord
{
    ir::Opcode op = ir::Opcode::Nop;

    compiler::RegMask srcRegs = 0;  ///< registers read (dependences)
    int dstReg = -1;                ///< register written, -1 if none
    unsigned aluLatency = 1;

    bool isLoad = false;
    bool isStore = false;          ///< produces a persist-path entry too
    Addr addr = 0;
    std::uint64_t value = 0;       ///< store payload

    RegionId region = invalidRegion;  ///< tag for persist-path stores
    ThreadId thread = 0;

    bool isBoundary = false;       ///< PC-checkpointing region end
    /** Region broadcast at path exit (see PersistEntry::broadcastRegion). */
    RegionId broadcastRegion = invalidRegion;
    /** Region entered after this boundary (invalid at halt); trace-only. */
    RegionId nextRegion = invalidRegion;
    std::uint32_t site = 0;        ///< boundary site id (or haltSite)

    bool isBranch = false;
    bool isHalt = false;
};

/** Outcome of one interpreter step. */
enum class StepStatus : std::uint8_t
{
    Ok,       ///< record produced
    Blocked,  ///< waiting on a lock; retry later
    Halted,   ///< thread finished earlier; no record
};

/**
 * The HW-managed global region-ID counter (paper §IV-B): IDs are dense,
 * and each allocated ID is broadcast exactly once — at the owning
 * thread's next boundary, or by the implicit final boundary at Halt.
 */
class RegionAllocator
{
  public:
    RegionId alloc() { return next_++; }
    RegionId peek() const { return next_; }

    /** Recovery: resume allocation above every previously seen ID. */
    void
    restartAbove(RegionId floor)
    {
        if (next_ <= floor)
            next_ = floor + 1;
    }

  private:
    RegionId next_ = 1;
};

} // namespace cpu
} // namespace lwsp

#endif // LWSP_CPU_EXEC_RECORD_HH
