#include "core.hh"

#include <string>

#include "trace/sink.hh"

namespace lwsp {
namespace cpu {

Core::Core(CoreId id, const CoreConfig &cfg, MemPort &port)
    : Clocked("core" + std::to_string(id)), id_(id), cfg_(cfg),
      port_(port), rng_(cfg.rngSeed + id * 0x9e37u)
{
}

bool
Core::febContainsLine(Addr line) const
{
    for (const auto &fe : feb_) {
        if (alignDown(fe.entry.addr, cachelineBytes) == line)
            return true;
    }
    return false;
}

RegionId
Core::febMinRegion() const
{
    RegionId min = invalidRegion;
    for (const auto &fe : feb_) {
        if (fe.entry.region < min)
            min = fe.entry.region;
    }
    return min;
}

void
Core::persistEgress(Tick now)
{
    if (feb_.empty())
        return;
    FebEntry &head = feb_.front();
    if (!head.launched || now < head.arriveAt)
        return;
    if (!port_.tryPersistAccept(head.entry, now)) {
        ++pathBlockedCycles_;
        return;
    }
    // Boundary broadcasts happen here, after every earlier granule of the
    // FIFO path has been accepted — the ordering LRPO relies on.
    if (head.entry.isBoundary) {
        port_.broadcastBoundary(head.entry.broadcastRegion, now);
        trace::emitIf<trace::Category::Boundary>(
            cfg_.sink,
            {now, trace::EventType::BoundaryBcastSend,
             static_cast<std::int32_t>(id_), head.entry.thread,
             head.entry.broadcastRegion, head.entry.addr,
             head.entry.value, 0});
    }
    feb_.pop_front();
    LWSP_ASSERT(launchedCount_ > 0, "egress of unlaunched entry");
    --launchedCount_;
}

void
Core::persistLaunch(Tick now)
{
    if (launchedCount_ >= feb_.size() || now < nextLaunch_)
        return;
    FebEntry &fe = feb_[launchedCount_];
    fe.launched = true;
    fe.arriveAt = now + cfg_.pathLatency;
    ++launchedCount_;
    auto slot = static_cast<Tick>(
        static_cast<double>(cfg_.pathCyclesPerEntry) *
        cfg_.trafficAmplification);
    nextLaunch_ = now + (slot ? slot : 1);
}

void
Core::drainStoreBuffer(Tick now)
{
    if (sb_.empty())
        return;
    const ExecRecord &rec = sb_.front();

    // Regular path: write-allocate into L1. A zero-victim snoop conflict
    // blocks the store until the FEB entry drains.
    if (!port_.storeAccess(id_, rec.addr, now)) {
        ++snoopBlockedCycles_;
        return;
    }

    if (cfg_.persistPathEnabled) {
        if (feb_.size() >= cfg_.febEntries) {
            ++febFullCycles_;
            return;
        }
        FebEntry fe;
        fe.entry.addr = rec.addr;
        fe.entry.value = rec.value;
        fe.entry.region = rec.region;
        fe.entry.thread = rec.thread;
        fe.entry.isBoundary = rec.isBoundary;
        fe.entry.broadcastRegion = rec.broadcastRegion;
        fe.entry.site = rec.site;
        feb_.push_back(fe);
    }
    sb_.pop_front();
}

void
Core::retire(Tick now)
{
    for (unsigned n = 0; n < cfg_.commitWidth; ++n) {
        if (waitingDurable_) {
            bool durable =
                (cfg_.boundaryPolicy ==
                 CoreConfig::BoundaryPolicy::StallUntilDurable)
                    ? port_.regionDurable(id_, durableRegion_)
                    : port_.persistsDrained(id_);
            if (!durable) {
                ++boundaryWaitCycles_;
                return;
            }
            waitingDurable_ = false;
        }
        if (rob_.empty() || rob_.front().ready > now)
            return;

        const ExecRecord &rec = rob_.front().rec;
        if (rec.isStore) {
            if (sb_.size() >= cfg_.sbEntries) {
                ++sbFullCycles_;
                return;
            }
            sb_.push_back(rec);
            ++storesRetired_;
            ++storesSinceBoundary_;
            if (cfg_.serveMarkAddr != 0 && rec.addr == cfg_.serveMarkAddr) {
                trace::emitIf<trace::Category::Serve>(
                    cfg_.sink,
                    {now, trace::EventType::ServeMark,
                     static_cast<std::int32_t>(id_), rec.thread, rec.region,
                     rec.addr, rec.value, boundaryWaitCycles_});
            }
        }

        ++instsRetired_;
        ++instsSinceBoundary_;

        if (rec.isBoundary) {
            ++boundariesRetired_;
            regionInsts_.sample(
                static_cast<double>(instsSinceBoundary_));
            regionStores_.sample(
                static_cast<double>(storesSinceBoundary_));
            trace::emitIf<trace::Category::Region>(
                cfg_.sink,
                {now, trace::EventType::RegionClose,
                 static_cast<std::int32_t>(id_), rec.thread,
                 rec.broadcastRegion, rec.addr, rec.value,
                 instsSinceBoundary_});
            if (rec.nextRegion != invalidRegion) {
                trace::emitIf<trace::Category::Region>(
                    cfg_.sink,
                    {now, trace::EventType::RegionBegin,
                     static_cast<std::int32_t>(id_), rec.thread,
                     rec.nextRegion, 0, 0, 0});
            }
            instsSinceBoundary_ = 0;
            storesSinceBoundary_ = 0;
            if (cfg_.boundaryPolicy ==
                CoreConfig::BoundaryPolicy::StallUntilDurable) {
                waitingDurable_ = true;
                durableRegion_ = rec.region;
            }
        } else if (rec.op == ir::Opcode::CkptStore) {
            trace::emitIf<trace::Category::Checkpoint>(
                cfg_.sink,
                {now, trace::EventType::CheckpointStore,
                 static_cast<std::int32_t>(id_), rec.thread, rec.region,
                 rec.addr, rec.value, 0});
        }

        if (cfg_.boundaryPolicy == CoreConfig::BoundaryPolicy::HwImplicit &&
            rec.isStore) {
            if (++hwStoreCount_ >= cfg_.hwRegionStores) {
                hwStoreCount_ = 0;
                waitingDurable_ = true;
                ++boundariesRetired_;
                regionInsts_.sample(
                    static_cast<double>(instsSinceBoundary_));
                regionStores_.sample(
                    static_cast<double>(storesSinceBoundary_));
                instsSinceBoundary_ = 0;
                storesSinceBoundary_ = 0;
            }
        }

        rob_.pop_front();
    }
}

void
Core::dispatch(Tick now)
{
    lockBlocked_ = false;
    if (thread_ == nullptr || thread_->halted())
        return;
    if (now < dispatchBlockedUntil_)
        return;
    // Persist barriers (naive sfence / PPA+Capri region ends) stall the
    // whole pipeline, not just retirement.
    if (waitingDurable_)
        return;

    for (unsigned n = 0; n < cfg_.issueWidth; ++n) {
        if (rob_.size() >= cfg_.robEntries) {
            ++robFullCycles_;
            return;
        }

        ExecRecord rec;
        StepStatus status = thread_->step(rec);
        if (status == StepStatus::Blocked) {
            lockBlocked_ = true;
            ++lockBlockedCycles_;
            return;
        }
        if (status == StepStatus::Halted)
            return;

        Tick issue_at = now;
        for (ir::Reg r = 0; r < ir::numGprs; ++r) {
            if (rec.srcRegs & compiler::regBit(r))
                issue_at = std::max(issue_at, regReady_[r]);
        }

        Tick done;
        if (rec.isLoad) {
            done = issue_at + port_.loadLatency(id_, rec.addr, now);
        } else if (rec.isStore) {
            done = issue_at + 1;  // address/data ready
        } else {
            done = issue_at + rec.aluLatency;
        }

        if (rec.dstReg >= 0)
            regReady_[static_cast<std::size_t>(rec.dstReg)] = done;

        if (rec.isBranch && rng_.chance(cfg_.branchMissRate)) {
            ++branchMisses_;
            dispatchBlockedUntil_ = done + cfg_.branchMissPenalty;
        }

        rob_.push_back({done, rec});

        if (rec.isHalt || now < dispatchBlockedUntil_)
            return;
    }
}

void
Core::tick(Tick now)
{
    persistEgress(now);
    persistLaunch(now);
    drainStoreBuffer(now);
    retire(now);
    dispatch(now);
}

Tick
Core::nextActiveTick(Tick now) const
{
    // Stages that mutate state or account a stall statistic on every
    // cycle pin the core to "active now": a non-empty store buffer
    // retries (or counts snoop/FEB-full stalls) each cycle, and a
    // durability wait counts boundaryWaitCycles each cycle.
    if (waitingDurable_ || !sb_.empty())
        return now;

    Tick next = maxTick;
    if (!feb_.empty()) {
        // Egress acts (or counts pathBlockedCycles) once the launched
        // head arrives; launch acts at the next bandwidth slot.
        if (feb_.front().launched)
            next = std::min(next, std::max(now, feb_.front().arriveAt));
        if (launchedCount_ < feb_.size())
            next = std::min(next, std::max(now, nextLaunch_));
    }
    // Retirement acts when the ROB head's completion time is reached.
    if (!rob_.empty())
        next = std::min(next, std::max(now, rob_.front().ready));
    // Dispatch acts once any flush/context-switch penalty expires. A
    // lock-blocked thread re-steps (and counts lockBlockedCycles) every
    // cycle, which this covers: dispatchBlockedUntil_ <= now then.
    if (thread_ != nullptr && !thread_->halted())
        next = std::min(next, std::max(now, dispatchBlockedUntil_));
    return next;
}

} // namespace cpu
} // namespace lwsp
