/**
 * @file
 * Functional lock table shared by all thread contexts.
 *
 * LockAcq/LockRel model the synchronization primitives of DRF programs
 * (paper §III-D). Lock words live at ordinary memory addresses and are
 * persisted like any store (value = owner+1, or 0 when free), so recovery
 * can rebuild lock ownership from the PM image.
 */

#ifndef LWSP_CPU_LOCK_TABLE_HH
#define LWSP_CPU_LOCK_TABLE_HH

#include <unordered_map>

#include "common/logging.hh"
#include "common/types.hh"

namespace lwsp {
namespace cpu {

class LockTable
{
  public:
    /** @return true if acquired; false if held by another thread. */
    bool
    tryAcquire(Addr addr, ThreadId tid)
    {
        auto it = owners_.find(addr);
        if (it != owners_.end() && it->second != tid)
            return false;
        owners_[addr] = tid;
        return true;
    }

    void
    release(Addr addr, ThreadId tid)
    {
        auto it = owners_.find(addr);
        LWSP_ASSERT(it != owners_.end() && it->second == tid,
                    "releasing a lock not held by thread ", tid);
        owners_.erase(it);
    }

    bool
    heldBy(Addr addr, ThreadId tid) const
    {
        auto it = owners_.find(addr);
        return it != owners_.end() && it->second == tid;
    }

    bool held(Addr addr) const { return owners_.count(addr) != 0; }

    void clear() { owners_.clear(); }

    /** Recovery: mark @p addr held by @p tid (rebuilt from PM lock words). */
    void
    restore(Addr addr, ThreadId tid)
    {
        owners_[addr] = tid;
    }

  private:
    std::unordered_map<Addr, ThreadId> owners_;
};

} // namespace cpu
} // namespace lwsp

#endif // LWSP_CPU_LOCK_TABLE_HH
