#include "thread_context.hh"

namespace lwsp {
namespace cpu {

using namespace ir;
using compiler::regBit;
using compiler::spReg;

ThreadContext::ThreadContext(const compiler::CompiledProgram &program,
                             ThreadId tid, mem::MemImage &memory,
                             LockTable &locks, RegionAllocator &regions)
    : program_(program), tid_(tid), mem_(memory), locks_(locks),
      regions_(regions)
{
}

void
ThreadContext::reset(FuncId entry_func)
{
    pc_ = {entry_func, 0, 0};
    regs_.fill(0);
    // Spawn convention: r0 carries the thread id, r15 the stack pointer.
    regs_[0] = tid_;
    regs_[spReg] = stackBase + static_cast<Addr>(tid_) * stackStride;
    region_ = regions_.alloc();
    halted_ = false;
    instsExecuted_ = 0;
    boundaries_ = 0;
}

bool
ThreadContext::wouldBlock() const
{
    if (halted_)
        return false;
    const Instruction &inst = currentInst();
    if (inst.op != Opcode::LockAcq)
        return false;
    Addr addr = (regs_[inst.rs1] + static_cast<std::uint64_t>(inst.imm)) &
                ~7ull;
    return locks_.held(addr) && !locks_.heldBy(addr, tid_);
}

const Instruction &
ThreadContext::currentInst() const
{
    const Function &fn = program_.module->function(pc_.func);
    const BasicBlock &bb = fn.block(pc_.block);
    LWSP_ASSERT(pc_.idx < bb.insts().size(), "PC past end of block");
    return bb.insts()[pc_.idx];
}

void
ThreadContext::advance()
{
    ++pc_.idx;
}

ExecRecord
ThreadContext::baseRecord(const Instruction &inst) const
{
    ExecRecord rec;
    rec.op = inst.op;
    rec.thread = tid_;
    rec.region = region_;
    rec.aluLatency = executeLatency(inst.op);
    return rec;
}

StepStatus
ThreadContext::step(ExecRecord &rec)
{
    if (halted_)
        return StepStatus::Halted;

    const Instruction &inst = currentInst();
    rec = baseRecord(inst);

    auto rs1 = [&] { return regs_[inst.rs1]; };
    auto rs2 = [&] { return regs_[inst.rs2]; };
    auto setRd = [&](std::uint64_t v) {
        regs_[inst.rd] = v;
        rec.dstReg = inst.rd;
    };
    auto use = [&](Reg r) { rec.srcRegs |= regBit(r); };

    switch (inst.op) {
      case Opcode::Movi:
        setRd(static_cast<std::uint64_t>(inst.imm));
        advance();
        break;
      case Opcode::Mov:
        use(inst.rs1);
        setRd(rs1());
        advance();
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr: {
        use(inst.rs1);
        use(inst.rs2);
        std::uint64_t a = rs1(), b = rs2(), v = 0;
        switch (inst.op) {
          case Opcode::Add: v = a + b; break;
          case Opcode::Sub: v = a - b; break;
          case Opcode::Mul: v = a * b; break;
          case Opcode::Div: v = b ? a / b : 0; break;
          case Opcode::And: v = a & b; break;
          case Opcode::Or:  v = a | b; break;
          case Opcode::Xor: v = a ^ b; break;
          case Opcode::Shl: v = a << (b & 63); break;
          case Opcode::Shr: v = a >> (b & 63); break;
          default: break;
        }
        setRd(v);
        advance();
        break;
      }
      case Opcode::AddI:
        use(inst.rs1);
        setRd(rs1() + static_cast<std::uint64_t>(inst.imm));
        advance();
        break;
      case Opcode::MulI:
        use(inst.rs1);
        setRd(rs1() * static_cast<std::uint64_t>(inst.imm));
        advance();
        break;
      case Opcode::Fma:
        use(inst.rs1);
        use(inst.rs2);
        use(inst.rd);
        setRd(rs1() * rs2() + regs_[inst.rd]);
        advance();
        break;
      case Opcode::Load: {
        use(inst.rs1);
        Addr addr = rs1() + static_cast<std::uint64_t>(inst.imm);
        setRd(mem_.read(addr & ~7ull));
        rec.isLoad = true;
        rec.addr = addr & ~7ull;
        advance();
        break;
      }
      case Opcode::Store: {
        use(inst.rs1);
        use(inst.rs2);
        Addr addr = (rs1() + static_cast<std::uint64_t>(inst.imm)) & ~7ull;
        mem_.write(addr, rs2());
        rec.isStore = true;
        rec.addr = addr;
        rec.value = rs2();
        advance();
        break;
      }
      // Synchronization operations are *fused boundaries* (§III-D): the
      // thread ends its current region (broadcast rides behind the sync
      // op's own store on the FIFO path) and allocates a fresh ID at the
      // synchronization point itself, so the dense region-ID sequence
      // reflects the coherence order of racing atomics and lock
      // hand-offs. The sync op's store is tagged with the *new* region.
      case Opcode::AtomicAdd: {
        use(inst.rs1);
        use(inst.rs2);
        Addr addr = (rs1() + static_cast<std::uint64_t>(inst.imm)) & ~7ull;
        std::uint64_t v = mem_.read(addr) + rs2();
        mem_.write(addr, v);
        rec.isBoundary = true;
        rec.broadcastRegion = region_;
        region_ = regions_.alloc();
        ++boundaries_;
        rec.region = region_;
        rec.nextRegion = region_;
        rec.isLoad = true;
        rec.isStore = true;
        rec.addr = addr;
        rec.value = v;
        advance();
        break;
      }
      case Opcode::LockAcq: {
        use(inst.rs1);
        Addr addr = (rs1() + static_cast<std::uint64_t>(inst.imm)) & ~7ull;
        if (!locks_.tryAcquire(addr, tid_))
            return StepStatus::Blocked;
        mem_.write(addr, static_cast<std::uint64_t>(tid_) + 1);
        rec.isBoundary = true;
        rec.broadcastRegion = region_;
        region_ = regions_.alloc();
        ++boundaries_;
        rec.region = region_;
        rec.nextRegion = region_;
        rec.isStore = true;
        rec.addr = addr;
        rec.value = static_cast<std::uint64_t>(tid_) + 1;
        advance();
        break;
      }
      case Opcode::LockRel: {
        use(inst.rs1);
        Addr addr = (rs1() + static_cast<std::uint64_t>(inst.imm)) & ~7ull;
        locks_.release(addr, tid_);
        mem_.write(addr, 0);
        rec.isBoundary = true;
        rec.broadcastRegion = region_;
        region_ = regions_.alloc();
        ++boundaries_;
        rec.region = region_;
        rec.nextRegion = region_;
        rec.isStore = true;
        rec.addr = addr;
        rec.value = 0;
        advance();
        break;
      }
      case Opcode::Fence: {
        // No data store: ride the broadcast on a scratch-slot marker so
        // FIFO ordering with earlier stores is preserved.
        Addr slot = program_.layout.pcSlot(tid_) + 16;
        mem_.write(slot, 0);
        rec.isBoundary = true;
        rec.broadcastRegion = region_;
        region_ = regions_.alloc();
        ++boundaries_;
        rec.region = region_;
        rec.nextRegion = region_;
        rec.isStore = true;
        rec.addr = slot;
        rec.value = 0;
        advance();
        break;
      }
      case Opcode::Jmp:
        pc_.block = inst.target;
        pc_.idx = 0;
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge: {
        use(inst.rs1);
        use(inst.rs2);
        bool taken = false;
        switch (inst.op) {
          case Opcode::Beq: taken = rs1() == rs2(); break;
          case Opcode::Bne: taken = rs1() != rs2(); break;
          case Opcode::Blt: taken = rs1() < rs2(); break;
          case Opcode::Bge: taken = rs1() >= rs2(); break;
          default: break;
        }
        rec.isBranch = true;
        pc_.block = taken ? inst.target : inst.fallthru;
        pc_.idx = 0;
        break;
      }
      case Opcode::Call: {
        // Push the return address into persisted stack memory.
        ProgramCounter ret = pc_;
        ++ret.idx;
        std::uint64_t sp = regs_[spReg] - 8;
        regs_[spReg] = sp;
        mem_.write(sp, encodePc(ret));
        rec.isStore = true;
        rec.addr = sp;
        rec.value = encodePc(ret);
        rec.srcRegs |= regBit(spReg);
        rec.dstReg = spReg;
        pc_ = {inst.callee, 0, 0};
        break;
      }
      case Opcode::Ret: {
        std::uint64_t sp = regs_[spReg];
        std::uint64_t word = mem_.read(sp);
        regs_[spReg] = sp + 8;
        rec.isLoad = true;
        rec.addr = sp;
        rec.srcRegs |= regBit(spReg);
        rec.dstReg = spReg;
        pc_ = decodePc(word);
        break;
      }
      case Opcode::Boundary: {
        // The PC-checkpointing store ending the current region; the
        // timing core broadcasts the region ID when this exits the
        // persist path. A fresh ID is taken immediately (§IV-B).
        std::uint32_t site = static_cast<std::uint32_t>(inst.imm);
        Addr slot = program_.layout.pcSlot(tid_);
        std::uint64_t word = site;
        if (hardenedCkpt_) {
            word = packCkptWord(
                site, ckptChecksum(mem_, program_.layout, tid_));
        }
        mem_.write(slot, word);
        rec.isStore = true;
        rec.isBoundary = true;
        rec.addr = slot;
        rec.value = word;
        rec.site = site;
        rec.region = region_;           // the boundary PC-store is the
        rec.broadcastRegion = region_;  // ended region's last store
        region_ = regions_.alloc();
        rec.nextRegion = region_;
        ++boundaries_;
        advance();
        break;
      }
      case Opcode::CkptStore: {
        use(inst.rs1);
        Addr slot = program_.layout.regSlot(tid_, inst.rs1);
        mem_.write(slot, rs1());
        rec.isStore = true;
        rec.addr = slot;
        rec.value = rs1();
        advance();
        break;
      }
      case Opcode::Halt: {
        // Implicit final boundary: broadcast the current region so the
        // dense region-ID sequence never stalls peer WPQs (§IV-B), and
        // stamp the PC slot with the halt sentinel.
        Addr slot = program_.layout.pcSlot(tid_);
        mem_.write(slot, haltSite);
        rec.isStore = true;
        rec.isBoundary = true;
        rec.addr = slot;
        rec.value = haltSite;
        rec.site = haltSite;
        rec.region = region_;
        rec.broadcastRegion = region_;
        rec.isHalt = true;
        halted_ = true;
        break;
      }
      case Opcode::Nop:
        advance();
        break;
    }

    ++instsExecuted_;
    return StepStatus::Ok;
}

void
ThreadContext::recoverAt(std::uint32_t site_id, const mem::MemImage &pm)
{
    LWSP_ASSERT(site_id != haltSite, "recoverAt() on a halted thread");
    const compiler::BoundarySite &site = program_.site(site_id);

    // Resume immediately after the boundary instruction.
    pc_ = {site.func, site.block, site.instIndex + 1};

    // Restore registers from their PM checkpoint slots, then apply the
    // pruning recipes recorded for this boundary.
    for (Reg r = 0; r < numGprs; ++r)
        regs_[r] = pm.read(program_.layout.regSlot(tid_, r));
    for (const auto &recipe : site.recipes) {
        switch (recipe.kind) {
          case compiler::CkptRecipe::Kind::Const:
            regs_[recipe.reg] = static_cast<std::uint64_t>(recipe.imm);
            break;
          case compiler::CkptRecipe::Kind::AddSlot:
            regs_[recipe.reg] =
                pm.read(program_.layout.regSlot(tid_, recipe.src)) +
                static_cast<std::uint64_t>(recipe.imm);
            break;
        }
    }

    region_ = regions_.alloc();
    halted_ = false;
}

} // namespace cpu
} // namespace lwsp
