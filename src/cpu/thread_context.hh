/**
 * @file
 * Functional interpreter for one software thread.
 *
 * Executes LightIR in program order over the shared execution memory
 * image, producing one ExecRecord per instruction for the timing core.
 * The calling convention materializes return addresses in (persisted)
 * stack memory via the r15 stack pointer, so a thread's continuation is
 * fully described by PC + registers + memory — exactly what LightWSP's
 * checkpoints capture.
 */

#ifndef LWSP_CPU_THREAD_CONTEXT_HH
#define LWSP_CPU_THREAD_CONTEXT_HH

#include <array>
#include <cstdint>

#include "compiler/compiled_program.hh"
#include "cpu/exec_record.hh"
#include "cpu/lock_table.hh"
#include "ir/program.hh"
#include "mem/mem_image.hh"

namespace lwsp {
namespace cpu {

/** A static program location. */
struct ProgramCounter
{
    ir::FuncId func = 0;
    ir::BlockId block = 0;
    std::uint32_t idx = 0;

    bool
    operator==(const ProgramCounter &o) const
    {
        return func == o.func && block == o.block && idx == o.idx;
    }
};

/** Pack a ProgramCounter into a 64-bit stack word (Call return address). */
constexpr std::uint64_t
encodePc(const ProgramCounter &pc)
{
    return (static_cast<std::uint64_t>(pc.func) << 40) |
           (static_cast<std::uint64_t>(pc.block) << 20) |
           static_cast<std::uint64_t>(pc.idx);
}

constexpr ProgramCounter
decodePc(std::uint64_t word)
{
    ProgramCounter pc;
    pc.func = static_cast<ir::FuncId>(word >> 40);
    pc.block = static_cast<ir::BlockId>((word >> 20) & 0xfffffu);
    pc.idx = static_cast<std::uint32_t>(word & 0xfffffu);
    return pc;
}

// ---- Hardened checkpoint format (fault-tolerant recovery) --------------
//
// In the baseline format a PC-slot store carries the bare 32-bit
// boundary site id. The hardened format (FaultConfig::hardenedCkpt)
// packs a 32-bit checksum over the thread's register checkpoint slots
// into the upper half of the same 64-bit store, so recovery can detect
// register-slot corruption (bit flips that escape ECC) before trusting
// the checkpoint. Region commits are all-entries-atomic, so the register
// slots a recovering thread reads are exactly the values this checksum
// covered when the newest committed boundary retired. Sentinel words
// (the no-site and halt markers) are stored raw; decoding always takes
// the low 32 bits, which both formats agree on for sentinels.

/** Checksum the register checkpoint slots of @p tid as stored in @p img. */
inline std::uint32_t
ckptChecksum(const mem::MemImage &img,
             const compiler::CheckpointLayout &layout, ThreadId tid)
{
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (ir::Reg r = 0; r < ir::numGprs; ++r) {
        h ^= img.read(layout.regSlot(tid, r));
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
    }
    return static_cast<std::uint32_t>(h ^ (h >> 32));
}

constexpr std::uint64_t
packCkptWord(std::uint32_t site, std::uint32_t sum)
{
    return static_cast<std::uint64_t>(site) |
           (static_cast<std::uint64_t>(sum) << 32);
}

/** Boundary site id of a PC-slot word (either checkpoint format). */
constexpr std::uint32_t
ckptSiteOf(std::uint64_t word)
{
    return static_cast<std::uint32_t>(word);
}

/** Stored checksum of a hardened PC-slot word. */
constexpr std::uint32_t
ckptSumOf(std::uint64_t word)
{
    return static_cast<std::uint32_t>(word >> 32);
}

class ThreadContext
{
  public:
    /** Per-thread stack region base (stacks grow downwards). */
    static constexpr Addr stackBase = 0x7800'0000'0000ull;
    static constexpr Addr stackStride = 64 * 1024;

    /**
     * @param program compiled (or original) module to run
     * @param layout checkpoint-storage layout (slot addresses)
     * @param tid this thread's id
     * @param memory shared functional execution image
     * @param locks shared lock table
     * @param regions the global region-ID counter
     */
    ThreadContext(const compiler::CompiledProgram &program, ThreadId tid,
                  mem::MemImage &memory, LockTable &locks,
                  RegionAllocator &regions);

    /** Reset to the entry of @p entry_func with a fresh stack. */
    void reset(ir::FuncId entry_func);

    /**
     * Execute one instruction. On Ok, @p rec describes it; Blocked means
     * a lock is contended (no state change) and Halted means done.
     */
    StepStatus step(ExecRecord &rec);

    bool halted() const { return halted_; }

    /**
     * @return true if the next instruction is a lock acquire that would
     * block right now — the scheduler uses this to avoid swapping a
     * runnable thread out for a waiter that cannot make progress.
     */
    bool wouldBlock() const;
    ThreadId tid() const { return tid_; }
    RegionId currentRegion() const { return region_; }
    const ProgramCounter &pc() const { return pc_; }
    std::uint64_t reg(ir::Reg r) const { return regs_.at(r); }
    std::uint64_t instsExecuted() const { return instsExecuted_; }
    std::uint64_t boundariesCrossed() const { return boundaries_; }

    /**
     * Power-failure recovery (paper §IV-F): reposition the thread just
     * after boundary @p site_id, restore registers from the checkpoint
     * slots in @p pm (applying the site's pruning recipes), and take a
     * fresh region ID.
     */
    void recoverAt(std::uint32_t site_id, const mem::MemImage &pm);

    /** Recovery of a thread whose PC slot says it already halted. */
    void markHalted() { halted_ = true; }

    /**
     * Switch boundary PC-stores to the hardened checkpoint format
     * (site | checksum << 32). Off by default: the bare format keeps
     * traces and timing bit-identical to the unhardened machine.
     */
    void setHardenedCkpt(bool on) { hardenedCkpt_ = on; }

  private:
    const ir::Instruction &currentInst() const;
    void advance();                       ///< pc to next inst (same block)
    ExecRecord baseRecord(const ir::Instruction &inst) const;

    const compiler::CompiledProgram &program_;
    ThreadId tid_;
    mem::MemImage &mem_;
    LockTable &locks_;
    RegionAllocator &regions_;

    ProgramCounter pc_;
    std::array<std::uint64_t, ir::numGprs> regs_{};
    RegionId region_ = invalidRegion;
    bool halted_ = true;
    bool hardenedCkpt_ = false;

    std::uint64_t instsExecuted_ = 0;
    std::uint64_t boundaries_ = 0;
};

} // namespace cpu
} // namespace lwsp

#endif // LWSP_CPU_THREAD_CONTEXT_HH
