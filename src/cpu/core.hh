/**
 * @file
 * Simplified out-of-order core timing model.
 *
 * Instructions are functionally executed at dispatch (by ThreadContext)
 * and flow through a ROB with dependence-tracked completion times; they
 * retire in order up to the commit width. Retired stores enter the store
 * buffer, which drains one store per cycle into the L1 (regular path) and
 * — in persistence schemes — into the front-end buffer (FEB), the head of
 * the non-temporal persist path. The FEB launches one 8B granule per
 * bandwidth slot with the configured path latency; entries leave the FEB
 * only when the target WPQ accepts them, so WPQ back-pressure propagates
 * FEB -> SB -> retirement, exactly the stall chain the paper studies.
 *
 * Boundary policies:
 *  - Lazy: LightWSP/cWSP — boundaries flow like stores, no core stalls.
 *  - StallUntilDurable: the naive-sfence ablation — retirement stalls at
 *    every boundary until the region is durable.
 *  - HwImplicit: PPA/Capri — the binary has no boundary instructions; the
 *    hardware ends a region every hwRegionStores stores and stalls
 *    retirement until this core's persists have drained.
 */

#ifndef LWSP_CPU_CORE_HH
#define LWSP_CPU_CORE_HH

#include <array>
#include <deque>

#include "common/intmath.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "cpu/thread_context.hh"
#include "mem/persist.hh"
#include "sim/clocked.hh"

namespace lwsp {

namespace trace {
class TraceSink;
} // namespace trace

namespace cpu {

struct CoreConfig
{
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;
    unsigned robEntries = 224;
    unsigned sbEntries = 56;
    std::size_t febEntries = 64;

    bool persistPathEnabled = true;
    Tick pathLatency = 40;          ///< 20 ns at 2 GHz
    Tick pathCyclesPerEntry = 4;    ///< 8B at 4 GB/s, 2 GHz
    double trafficAmplification = 1.0;  ///< Capri: 8 (64B per 8B store)

    enum class BoundaryPolicy : std::uint8_t
    {
        Lazy,
        StallUntilDurable,
        HwImplicit,
    };
    BoundaryPolicy boundaryPolicy = BoundaryPolicy::Lazy;
    unsigned hwRegionStores = 32;   ///< implicit region size (PPA/Capri)

    double branchMissRate = 0.02;
    unsigned branchMissPenalty = 14;
    std::uint64_t rngSeed = 1;

    /**
     * When non-null, retirement and persist-path egress emit trace
     * events (region lifecycle, boundary sends, checkpoint stores).
     * Null (the default) keeps the hooks zero-cost — the same
     * discipline as McConfig::oracle.
     */
    trace::TraceSink *sink = nullptr;

    /**
     * When nonzero, retiring a store to this address emits a ServeMark
     * trace event carrying the stored value (the serve subsystem's
     * monotonic served-op counter) and the core's cumulative
     * boundary-stall cycles — the per-request completion timestamps
     * fig21's LatencyRecorder folds into latency percentiles. Zero (the
     * default) keeps the retire hot path free of the comparison's
     * side effects.
     */
    Addr serveMarkAddr = 0;
};

/** Memory-system services the core needs; implemented by the System. */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /** Load latency for @p addr (updates cache state). */
    virtual Tick loadLatency(CoreId core, Addr addr, Tick now) = 0;

    /**
     * Regular-path store (L1 write-allocate). @return false when blocked
     * by a zero-victim snoop conflict; the store buffer head retries.
     */
    virtual bool storeAccess(CoreId core, Addr addr, Tick now) = 0;

    /** Offer a persist-path granule to its target MC's WPQ. */
    virtual bool tryPersistAccept(const mem::PersistEntry &e, Tick now) = 0;

    /** Boundary exited this core's persist path: broadcast its region. */
    virtual void broadcastBoundary(RegionId region, Tick now) = 0;

    /** NaiveSfence: is every store of regions <= @p region durable? */
    virtual bool regionDurable(CoreId core, RegionId region) = 0;

    /** HwImplicit: have all of this core's persists drained to PM? */
    virtual bool persistsDrained(CoreId core) = 0;
};

class Core : public Clocked
{
  public:
    Core(CoreId id, const CoreConfig &cfg, MemPort &port);

    CoreId id() const { return id_; }

    /** Attach (or detach with nullptr) the running thread context. */
    void
    setThread(ThreadContext *t)
    {
        thread_ = t;
        // The flag described the outgoing thread; dispatch() would clear
        // it on the next tick anyway, but clearing it here keeps it
        // accurate across fast-forwarded (skipped) cycles too.
        lockBlocked_ = false;
        rearm();
    }
    ThreadContext *thread() { return thread_; }

    /**
     * Account a context switch: pipeline flush penalty and stale
     * register-ready times cleared. The region ID travels with the
     * ThreadContext, which is how LightWSP virtualizes it (§IV-C).
     */
    void
    applyContextSwitch(Tick now, Tick penalty)
    {
        regReady_.fill(now);
        dispatchBlockedUntil_ = std::max(dispatchBlockedUntil_,
                                         now + penalty);
        rearm();
    }

    void tick(Tick now) override;
    Tick nextActiveTick(Tick now) const override;

    /** @return true when ROB, SB and FEB are all empty. */
    bool
    drained() const
    {
        return rob_.empty() && sb_.empty() && feb_.empty();
    }

    /** @return true if the thread is stuck on a contended lock. */
    bool lockBlocked() const { return lockBlocked_; }

    // ---- FEB CAM interface (buffer snooping, §IV-G) ----------------------
    bool febContainsLine(Addr line) const;
    bool febEmpty() const { return feb_.empty(); }
    RegionId febMinRegion() const;
    std::size_t febSize() const { return feb_.size(); }

    // ---- Statistics -------------------------------------------------------
    /** Zero all counters (end-of-warmup reset). */
    void
    resetStats()
    {
        instsRetired_ = storesRetired_ = robFullCycles_ = 0;
        sbFullCycles_ = febFullCycles_ = boundaryWaitCycles_ = 0;
        lockBlockedCycles_ = pathBlockedCycles_ = snoopBlockedCycles_ = 0;
        branchMisses_ = boundariesRetired_ = 0;
        regionInsts_.reset();
        regionStores_.reset();
    }

    std::uint64_t instsRetired() const { return instsRetired_; }
    std::uint64_t storesRetired() const { return storesRetired_; }
    std::uint64_t robFullCycles() const { return robFullCycles_; }
    std::uint64_t sbFullCycles() const { return sbFullCycles_; }
    std::uint64_t febFullCycles() const { return febFullCycles_; }
    std::uint64_t boundaryWaitCycles() const { return boundaryWaitCycles_; }
    std::uint64_t lockBlockedCycles() const { return lockBlockedCycles_; }
    std::uint64_t pathBlockedCycles() const { return pathBlockedCycles_; }
    std::uint64_t snoopBlockedCycles() const { return snoopBlockedCycles_; }
    std::uint64_t branchMisses() const { return branchMisses_; }
    std::uint64_t boundariesRetired() const { return boundariesRetired_; }
    const stats::Distribution &regionInsts() const { return regionInsts_; }
    const stats::Distribution &regionStores() const
    {
        return regionStores_;
    }

  private:
    struct RobEntry
    {
        Tick ready;
        ExecRecord rec;
    };

    struct FebEntry
    {
        mem::PersistEntry entry;
        Tick arriveAt = 0;
        bool launched = false;
    };

    void persistEgress(Tick now);
    void persistLaunch(Tick now);
    void drainStoreBuffer(Tick now);
    void retire(Tick now);
    void dispatch(Tick now);

    CoreId id_;
    CoreConfig cfg_;
    MemPort &port_;
    ThreadContext *thread_ = nullptr;
    Rng rng_;

    std::deque<RobEntry> rob_;
    std::array<Tick, ir::numGprs> regReady_{};
    std::deque<ExecRecord> sb_;
    std::deque<FebEntry> feb_;
    std::size_t launchedCount_ = 0;
    Tick nextLaunch_ = 0;
    Tick dispatchBlockedUntil_ = 0;

    bool waitingDurable_ = false;
    RegionId durableRegion_ = invalidRegion;
    unsigned hwStoreCount_ = 0;
    bool lockBlocked_ = false;

    // Region statistics (§V-G3): dynamic insts/stores per region.
    std::uint64_t instsSinceBoundary_ = 0;
    std::uint64_t storesSinceBoundary_ = 0;

    std::uint64_t instsRetired_ = 0;
    std::uint64_t storesRetired_ = 0;
    std::uint64_t robFullCycles_ = 0;
    std::uint64_t sbFullCycles_ = 0;
    std::uint64_t febFullCycles_ = 0;
    std::uint64_t boundaryWaitCycles_ = 0;
    std::uint64_t lockBlockedCycles_ = 0;
    std::uint64_t pathBlockedCycles_ = 0;
    std::uint64_t snoopBlockedCycles_ = 0;
    std::uint64_t branchMisses_ = 0;
    std::uint64_t boundariesRetired_ = 0;
    stats::Distribution regionInsts_{0, 512, 64};
    stats::Distribution regionStores_{0, 64, 64};
};

} // namespace cpu
} // namespace lwsp

#endif // LWSP_CPU_CORE_HH
