#include "text_io.hh"

#include <cctype>
#include <ostream>
#include <sstream>
#include <vector>

namespace lwsp {
namespace ir {

namespace {

std::string
regName(Reg r)
{
    // Built via append rather than `"r" + std::to_string(...)`: GCC 12's
    // -Wrestrict false-positives on that operator+ chain at -O2+.
    std::string out("r");
    out += std::to_string(static_cast<unsigned>(r));
    return out;
}

std::string
memOperand(Reg base, std::int64_t off)
{
    // Always emit '+' (even for negative offsets, "[r2+-8]") so the
    // tokenizer can split on it unconditionally.
    std::ostringstream os;
    os << '[' << regName(base) << '+' << off << ']';
    return os.str();
}

} // namespace

std::string
formatInstruction(const Module &m, const Instruction &inst)
{
    std::ostringstream os;
    os << opcodeName(inst.op);
    switch (inst.op) {
      case Opcode::Movi:
        os << ' ' << regName(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::Mov:
        os << ' ' << regName(inst.rd) << ", " << regName(inst.rs1);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Fma:
        os << ' ' << regName(inst.rd) << ", " << regName(inst.rs1) << ", "
           << regName(inst.rs2);
        break;
      case Opcode::AddI:
      case Opcode::MulI:
        os << ' ' << regName(inst.rd) << ", " << regName(inst.rs1) << ", "
           << inst.imm;
        break;
      case Opcode::Load:
        os << ' ' << regName(inst.rd) << ", "
           << memOperand(inst.rs1, inst.imm);
        break;
      case Opcode::Store:
        os << ' ' << memOperand(inst.rs1, inst.imm) << ", "
           << regName(inst.rs2);
        break;
      case Opcode::AtomicAdd:
        os << ' ' << memOperand(inst.rs1, inst.imm) << ", "
           << regName(inst.rs2);
        break;
      case Opcode::LockAcq:
      case Opcode::LockRel:
        os << ' ' << memOperand(inst.rs1, inst.imm);
        break;
      case Opcode::Jmp:
        os << " b" << inst.target;
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        os << ' ' << regName(inst.rs1) << ", " << regName(inst.rs2)
           << ", b" << inst.target << ", b" << inst.fallthru;
        break;
      case Opcode::Call:
        os << " @" << m.function(inst.callee).name();
        break;
      case Opcode::CkptStore:
        os << ' ' << regName(inst.rs1);
        break;
      case Opcode::Boundary:
        // Kind (rd) and site id (imm) are recovery metadata: dropping
        // them in the text form would change what the program means.
        os << ' '
           << boundaryKindName(static_cast<BoundaryKind>(inst.rd))
           << ", " << inst.imm;
        break;
      case Opcode::Ret:
      case Opcode::Halt:
      case Opcode::Fence:
      case Opcode::Nop:
        break;
    }
    return os.str();
}

void
printModule(const Module &m, std::ostream &os)
{
    for (FuncId f = 0; f < m.numFunctions(); ++f) {
        const Function &fn = m.function(f);
        os << "func @" << fn.name() << '\n';
        for (const auto &[header, trips] : fn.loopTripCounts())
            os << "  trip b" << header << ' ' << trips << '\n';
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            os << "block " << b << ":\n";
            for (const auto &inst : fn.block(b).insts())
                os << "    " << formatInstruction(m, inst) << '\n';
        }
    }
    for (const auto &[addr, value] : m.initialData())
        os << "data 0x" << std::hex << addr << std::dec << ' ' << value
           << '\n';
}

std::string
moduleToString(const Module &m)
{
    std::ostringstream os;
    printModule(m, os);
    return os.str();
}

namespace {

/** Splits a line into bare tokens, treating , [ ] + as separators but
 *  keeping '-' attached to numbers. "[r2+8]" -> "r2" "8". */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> out;
    std::string cur;
    auto flush = [&] {
        if (!cur.empty()) {
            out.push_back(cur);
            cur.clear();
        }
    };
    for (std::size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c == ';')
            break;
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',' ||
            c == '[' || c == ']' || c == ':') {
            flush();
        } else if (c == '+') {
            flush();
        } else {
            cur.push_back(c);
        }
    }
    flush();
    return out;
}

struct PendingCall
{
    FuncId func;
    BlockId block;
    std::size_t inst_index;
    std::string callee_name;
    int line_no;
};

[[noreturn]] void
parseError(int line_no, const std::string &msg)
{
    fatal("IR parse error at line ", line_no, ": ", msg);
}

Reg
parseReg(const std::string &tok, int line_no)
{
    if (tok.size() < 2 || tok[0] != 'r')
        parseError(line_no, "expected register, got '" + tok + "'");
    unsigned long v = std::stoul(tok.substr(1));
    if (v >= numGprs)
        parseError(line_no, "register out of range: " + tok);
    return static_cast<Reg>(v);
}

std::int64_t
parseImm(const std::string &tok, int line_no)
{
    try {
        return static_cast<std::int64_t>(std::stoll(tok, nullptr, 0));
    } catch (...) {
        parseError(line_no, "expected immediate, got '" + tok + "'");
    }
}

BlockId
parseBlockRef(const std::string &tok, int line_no)
{
    if (tok.size() < 2 || tok[0] != 'b')
        parseError(line_no, "expected block ref, got '" + tok + "'");
    return static_cast<BlockId>(std::stoul(tok.substr(1)));
}

} // namespace

std::unique_ptr<Module>
parseModule(const std::string &text)
{
    auto m = std::make_unique<Module>();
    Function *fn = nullptr;
    BasicBlock *bb = nullptr;
    std::vector<PendingCall> pending_calls;

    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        auto toks = tokenize(line);
        if (toks.empty())
            continue;

        if (toks[0] == "func") {
            if (toks.size() != 2 || toks[1].empty() || toks[1][0] != '@')
                parseError(line_no, "expected 'func @name'");
            fn = &m->addFunction(toks[1].substr(1));
            bb = nullptr;
            continue;
        }
        if (toks[0] == "trip") {
            if (!fn || toks.size() != 3)
                parseError(line_no, "expected 'trip bN count'");
            fn->loopTripCounts()[parseBlockRef(toks[1], line_no)] =
                static_cast<std::uint64_t>(parseImm(toks[2], line_no));
            continue;
        }
        if (toks[0] == "block") {
            if (!fn)
                parseError(line_no, "block outside function");
            if (toks.size() != 2)
                parseError(line_no, "expected 'block N:'");
            BlockId want = static_cast<BlockId>(std::stoul(toks[1]));
            while (fn->numBlocks() <= want)
                fn->addBlock();
            bb = &fn->block(want);
            continue;
        }
        if (toks[0] == "data") {
            if (toks.size() != 3)
                parseError(line_no, "expected 'data addr value'");
            m->initialData().emplace_back(
                static_cast<Addr>(parseImm(toks[1], line_no)),
                static_cast<std::uint64_t>(parseImm(toks[2], line_no)));
            continue;
        }

        if (!bb)
            parseError(line_no, "instruction outside block");

        bool ok = false;
        Opcode op = opcodeFromName(toks[0].c_str(), ok);
        if (!ok)
            parseError(line_no, "unknown opcode '" + toks[0] + "'");

        Instruction inst;
        inst.op = op;
        auto need = [&](std::size_t n) {
            if (toks.size() != n + 1)
                parseError(line_no, "wrong operand count for " + toks[0]);
        };
        switch (op) {
          case Opcode::Movi:
            need(2);
            inst.rd = parseReg(toks[1], line_no);
            inst.imm = parseImm(toks[2], line_no);
            break;
          case Opcode::Mov:
            need(2);
            inst.rd = parseReg(toks[1], line_no);
            inst.rs1 = parseReg(toks[2], line_no);
            break;
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::Div:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Shl:
          case Opcode::Shr:
          case Opcode::Fma:
            need(3);
            inst.rd = parseReg(toks[1], line_no);
            inst.rs1 = parseReg(toks[2], line_no);
            inst.rs2 = parseReg(toks[3], line_no);
            break;
          case Opcode::AddI:
          case Opcode::MulI:
            need(3);
            inst.rd = parseReg(toks[1], line_no);
            inst.rs1 = parseReg(toks[2], line_no);
            inst.imm = parseImm(toks[3], line_no);
            break;
          case Opcode::Load:
            need(3);
            inst.rd = parseReg(toks[1], line_no);
            inst.rs1 = parseReg(toks[2], line_no);
            inst.imm = parseImm(toks[3], line_no);
            break;
          case Opcode::Store:
          case Opcode::AtomicAdd:
            need(3);
            inst.rs1 = parseReg(toks[1], line_no);
            inst.imm = parseImm(toks[2], line_no);
            inst.rs2 = parseReg(toks[3], line_no);
            break;
          case Opcode::LockAcq:
          case Opcode::LockRel:
            need(2);
            inst.rs1 = parseReg(toks[1], line_no);
            inst.imm = parseImm(toks[2], line_no);
            break;
          case Opcode::Jmp:
            need(1);
            inst.target = parseBlockRef(toks[1], line_no);
            break;
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
            need(4);
            inst.rs1 = parseReg(toks[1], line_no);
            inst.rs2 = parseReg(toks[2], line_no);
            inst.target = parseBlockRef(toks[3], line_no);
            inst.fallthru = parseBlockRef(toks[4], line_no);
            break;
          case Opcode::Call: {
            need(1);
            if (toks[1].empty() || toks[1][0] != '@')
                parseError(line_no, "expected '@callee'");
            pending_calls.push_back({fn->id(), bb->id(),
                                     bb->insts().size(),
                                     toks[1].substr(1), line_no});
            break;
          }
          case Opcode::CkptStore:
            need(1);
            inst.rs1 = parseReg(toks[1], line_no);
            break;
          case Opcode::Boundary: {
            // 'boundary [kind [, site-id]]': the bare and kind-only
            // forms are accepted for hand-written and legacy modules;
            // printModule always emits both operands. Unknown kind
            // names are rejected rather than defaulted — a module
            // claiming a kind we do not have is corrupt.
            if (toks.size() > 3)
                parseError(line_no, "wrong operand count for boundary");
            if (toks.size() >= 2) {
                bool kind_ok = false;
                BoundaryKind k =
                    boundaryKindFromName(toks[1].c_str(), kind_ok);
                if (!kind_ok)
                    parseError(line_no, "unknown boundary kind '" +
                                            toks[1] + "'");
                inst.rd = static_cast<Reg>(k);
            }
            if (toks.size() == 3)
                inst.imm = parseImm(toks[2], line_no);
            break;
          }
          case Opcode::Ret:
          case Opcode::Halt:
          case Opcode::Fence:
          case Opcode::Nop:
            need(0);
            break;
        }
        bb->append(inst);
    }

    // Resolve forward-referenced call targets.
    for (const auto &pc : pending_calls) {
        FuncId callee = m->findFunction(pc.callee_name);
        if (callee == invalidFunc)
            parseError(pc.line_no, "unknown callee '@" + pc.callee_name +
                                       "'");
        m->function(pc.func).block(pc.block).insts()[pc.inst_index].callee =
            callee;
    }
    return m;
}

} // namespace ir
} // namespace lwsp
